// Package lrc implements an Azure-style Local Reconstruction Code
// (Huang et al., USENIX ATC'12 — reference [2] of the FBF paper) as a
// Reed-Solomon-based counterpart to the XOR 3DFT codes, realizing the
// paper's footnote 3: "Reed Solomon based codes like Local
// Reconstruction Codes can be applied with FBF as well, by
// investigating relationships among global/local parity chains."
//
// LRC(k, l, g) protects k data symbols with l local XOR parities (one
// per group of k/l data symbols) and g Reed-Solomon global parities
// over GF(256). A stripe is rows × (k+l+g) chunks where every row is an
// independent codeword; column j is disk j.
//
// Chain mapping onto the FBF machinery: local chains are exposed as
// Horizontal, the first global parity's chain as Diagonal and the
// second's as AntiDiagonal, so the paper's direction-looping scheme
// generator walks local and global chains exactly as it walks the three
// XOR chain directions. Every lost chunk prefers its (short) local
// chain and falls back to a global chain — the local/global
// relationship the footnote points to.
package lrc

import (
	"fmt"
	"math/rand"

	"fbf/internal/chunk"
	"fbf/internal/core"
	"fbf/internal/gf256"
	"fbf/internal/grid"
)

// Code is one LRC instance. Values are immutable and safe for
// concurrent use.
type Code struct {
	k, l, g int
	rows    int
	layout  *grid.Layout
	// coeffs holds, per chain, the GF(256) coefficient of each cell in
	// the chain (aligned with Chain.Cells). Local chains are all-ones.
	coeffs map[grid.ChainID][]byte
	sys    *gf256.System
}

// New constructs LRC(k, l, g) with the given stripe height. Constraints:
// k % l == 0, l >= 1, 1 <= g <= 2 (the two global chains map to the two
// remaining FBF chain directions; Azure uses g = 2).
func New(k, l, g, rows int) (*Code, error) {
	switch {
	case k < 2:
		return nil, fmt.Errorf("lrc: need k >= 2, got %d", k)
	case l < 1 || k%l != 0:
		return nil, fmt.Errorf("lrc: l must divide k (k=%d, l=%d)", k, l)
	case g < 1 || g > 2:
		return nil, fmt.Errorf("lrc: need 1 <= g <= 2, got %d", g)
	case rows < 1:
		return nil, fmt.Errorf("lrc: need rows >= 1, got %d", rows)
	case k+l+g > 255:
		return nil, fmt.Errorf("lrc: k+l+g = %d exceeds GF(256) limits", k+l+g)
	}
	c := &Code{k: k, l: l, g: g, rows: rows, coeffs: map[grid.ChainID][]byte{}}
	n := k + l + g
	group := k / l

	var parity []grid.Coord
	var chains []grid.Chain
	for r := 0; r < rows; r++ {
		for j := 0; j < l+g; j++ {
			parity = append(parity, grid.Coord{Row: r, Col: k + j})
		}
		// Local chains: group j of row r, plus its local parity. All
		// coefficients are 1 (XOR), Azure-style.
		for j := 0; j < l; j++ {
			cells := make([]grid.Coord, 0, group+1)
			co := make([]byte, 0, group+1)
			for d := j * group; d < (j+1)*group; d++ {
				cells = append(cells, grid.Coord{Row: r, Col: d})
				co = append(co, 1)
			}
			cells = append(cells, grid.Coord{Row: r, Col: k + j})
			co = append(co, 1)
			ch := grid.Chain{Kind: grid.Horizontal, Index: r*l + j, Cells: cells}
			chains = append(chains, ch)
			c.coeffs[ch.ID()] = co
		}
		// Global chains: all data cells of the row with Vandermonde
		// coefficients alpha_d^(i+1), plus the global parity cell. The
		// exponent starts at 1 so global equations stay independent of
		// the locals (whose sum is the all-ones row).
		for i := 0; i < g; i++ {
			cells := make([]grid.Coord, 0, k+1)
			co := make([]byte, 0, k+1)
			for d := 0; d < k; d++ {
				cells = append(cells, grid.Coord{Row: r, Col: d})
				co = append(co, gf256.Exp(d*(i+1)))
			}
			cells = append(cells, grid.Coord{Row: r, Col: k + l + i})
			co = append(co, 1)
			kind := grid.Diagonal
			if i == 1 {
				kind = grid.AntiDiagonal
			}
			ch := grid.Chain{Kind: kind, Index: r, Cells: cells}
			chains = append(chains, ch)
			c.coeffs[ch.ID()] = co
		}
	}
	layout, err := grid.NewLayout(rows, n, parity, chains)
	if err != nil {
		return nil, err
	}
	c.layout = layout

	c.sys = gf256.NewSystem(rows * n)
	for _, ch := range layout.Chains() {
		co := c.coeffs[ch.ID()]
		terms := make([]gf256.Term, len(ch.Cells))
		for i, cell := range ch.Cells {
			terms[i] = gf256.Term{Coeff: co[i], Symbol: c.CellIndex(cell)}
		}
		c.sys.AddEquation(terms)
	}
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(k, l, g, rows int) *Code {
	c, err := New(k, l, g, rows)
	if err != nil {
		panic(err)
	}
	return c
}

// K returns the data symbols per codeword.
func (c *Code) K() int { return c.k }

// L returns the number of local parity groups.
func (c *Code) L() int { return c.l }

// G returns the number of global parities.
func (c *Code) G() int { return c.g }

// Name returns "lrc".
func (c *Code) Name() string { return "lrc" }

// String renders the code as LRC(k,l,g).
func (c *Code) String() string { return fmt.Sprintf("lrc(%d,%d,%d)", c.k, c.l, c.g) }

// Layout implements core.Geometry.
func (c *Code) Layout() *grid.Layout { return c.layout }

// Disks implements core.Geometry.
func (c *Code) Disks() int { return c.layout.Cols() }

// Rows implements core.Geometry.
func (c *Code) Rows() int { return c.rows }

// MaxPartialSize implements core.Geometry: any vertical run within a
// stripe is a partial error (rows are independent codewords).
func (c *Code) MaxPartialSize() int { return c.rows }

// CellIndex maps a coordinate to the row-major stripe index.
func (c *Code) CellIndex(coord grid.Coord) int { return core.CellIndex(c.layout, coord) }

// Encode fills the parity chunks of a stripe from its data chunks.
// Stripe slices are indexed by CellIndex.
func (c *Code) Encode(s []chunk.Chunk) {
	if len(s) != c.layout.Cells() {
		panic(fmt.Sprintf("lrc: stripe has %d cells, want %d", len(s), c.layout.Cells()))
	}
	for r := 0; r < c.rows; r++ {
		// Locals: XOR of each group.
		group := c.k / c.l
		for j := 0; j < c.l; j++ {
			dst := s[c.CellIndex(grid.Coord{Row: r, Col: c.k + j})]
			clear(dst)
			for d := j * group; d < (j+1)*group; d++ {
				chunk.XORInto(dst, s[c.CellIndex(grid.Coord{Row: r, Col: d})])
			}
		}
		// Globals: Vandermonde-weighted sums.
		for i := 0; i < c.g; i++ {
			dst := s[c.CellIndex(grid.Coord{Row: r, Col: c.k + c.l + i})]
			clear(dst)
			for d := 0; d < c.k; d++ {
				gf256.MulSlice(gf256.Exp(d*(i+1)), dst, s[c.CellIndex(grid.Coord{Row: r, Col: d})])
			}
		}
	}
}

// Verify reports whether every chain equation of the stripe holds.
func (c *Code) Verify(s []chunk.Chunk) bool {
	acc := chunk.New(len(s[0])) // reused across chains
	for i := range c.layout.Chains() {
		ch := &c.layout.Chains()[i]
		co := c.coeffs[ch.ID()]
		clear(acc)
		for j, cell := range ch.Cells {
			gf256.MulSlice(co[j], acc, s[c.CellIndex(cell)])
		}
		if !acc.IsZero() {
			return false
		}
	}
	return true
}

// Recover reconstructs the lost cells of a stripe in place using the
// generic GF(256) decoder.
func (c *Code) Recover(s []chunk.Chunk, lost []grid.Coord) error {
	unknowns := make([]int, len(lost))
	for i, cell := range lost {
		if !c.layout.InBounds(cell) {
			return fmt.Errorf("lrc: lost cell %v out of bounds", cell)
		}
		unknowns[i] = c.CellIndex(cell)
	}
	sol, unsolved := c.sys.Solve(unknowns)
	if len(unsolved) > 0 {
		return fmt.Errorf("lrc: %v: %d cells unrecoverable", c, len(unsolved))
	}
	for _, cell := range lost {
		dst := s[c.CellIndex(cell)]
		clear(dst)
		for _, term := range sol.Terms[c.CellIndex(cell)] {
			gf256.MulSlice(term.Coeff, dst, s[term.Symbol])
		}
	}
	return nil
}

// CanRecoverColumns reports whether losing the given whole disks is
// recoverable.
func (c *Code) CanRecoverColumns(cols ...int) bool {
	var lost []int
	for _, col := range cols {
		if col < 0 || col >= c.layout.Cols() {
			return false
		}
		for r := 0; r < c.rows; r++ {
			lost = append(lost, c.CellIndex(grid.Coord{Row: r, Col: col}))
		}
	}
	return c.sys.Solvable(lost)
}

// TripleFaultCoverage mirrors codes.Code: it checks every three-column
// combination. Azure's LRC(12,2,2) decodes all of them (it is
// maximally recoverable); smaller configurations may not.
func (c *Code) TripleFaultCoverage() (ok, total int, failing [][3]int) {
	n := c.layout.Cols()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for d := b + 1; d < n; d++ {
				total++
				if c.CanRecoverColumns(a, b, d) {
					ok++
				} else {
					failing = append(failing, [3]int{a, b, d})
				}
			}
		}
	}
	return ok, total, failing
}

// MaterializeStripe implements core.Rebuilder.
func (c *Code) MaterializeStripe(seed int64, chunkSize int) []chunk.Chunk {
	s := make([]chunk.Chunk, c.layout.Cells())
	for i := range s {
		s[i] = chunk.New(chunkSize)
	}
	c.MaterializeStripeInto(s, seed)
	return s
}

// MaterializeStripeInto implements core.RebuilderInto: dst may come
// from a pool un-zeroed — the RNG overwrites every data byte and Encode
// clears each parity chunk before accumulating into it.
func (c *Code) MaterializeStripeInto(dst []chunk.Chunk, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, cell := range c.layout.DataCells() {
		rng.Read(dst[c.CellIndex(cell)])
	}
	c.Encode(dst)
}

// RebuildChunk implements core.Rebuilder: the chain equation
// sum(co_i * x_i) = 0 solved for the lost cell gives
// x_lost = (1/co_lost) * sum of the other weighted members.
func (c *Code) RebuildChunk(id grid.ChainID, lost grid.Coord, stripe []chunk.Chunk) (chunk.Chunk, error) {
	acc := chunk.New(len(stripe[0]))
	if err := c.RebuildChunkInto(acc, id, lost, stripe); err != nil {
		return nil, err
	}
	return acc, nil
}

// RebuildChunkInto implements core.RebuilderInto: dst is cleared, the
// weighted survivors accumulate into it, and the in-place scale by the
// lost coefficient's inverse replaces the scratch buffer RebuildChunk
// used to allocate.
func (c *Code) RebuildChunkInto(dst chunk.Chunk, id grid.ChainID, lost grid.Coord, stripe []chunk.Chunk) error {
	ch, ok := c.layout.Chain(id)
	if !ok {
		return fmt.Errorf("lrc: no chain %v", id)
	}
	co := c.coeffs[id]
	lostCoeff := byte(0)
	clear(dst)
	for i, cell := range ch.Cells {
		if cell == lost {
			lostCoeff = co[i]
			continue
		}
		gf256.MulSlice(co[i], dst, stripe[c.CellIndex(cell)])
	}
	if lostCoeff == 0 {
		return fmt.Errorf("lrc: chain %v does not contain %v", id, lost)
	}
	gf256.ScaleSlice(gf256.Inv(lostCoeff), dst)
	return nil
}

// Interface conformance.
var (
	_ core.Geometry      = (*Code)(nil)
	_ core.Rebuilder     = (*Code)(nil)
	_ core.RebuilderInto = (*Code)(nil)
)
