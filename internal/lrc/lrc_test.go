package lrc

import (
	"math/rand"
	"testing"

	"fbf/internal/chunk"
	"fbf/internal/core"
	"fbf/internal/grid"
)

func azure(t testing.TB, rows int) *Code {
	t.Helper()
	c, err := New(12, 2, 2, rows)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randomStripe(t testing.TB, c *Code, seed int64, chunkSize int) []chunk.Chunk {
	t.Helper()
	return c.MaterializeStripe(seed, chunkSize)
}

func TestNewValidation(t *testing.T) {
	cases := []struct{ k, l, g, rows int }{
		{1, 1, 1, 1},  // k too small
		{12, 5, 2, 1}, // l does not divide k
		{12, 2, 0, 1}, // g too small
		{12, 2, 3, 1}, // g too large (only two global chain slots)
		{12, 2, 2, 0}, // rows too small
	}
	for _, c := range cases {
		if _, err := New(c.k, c.l, c.g, c.rows); err == nil {
			t.Errorf("New(%d,%d,%d,%d) accepted", c.k, c.l, c.g, c.rows)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustNew should panic")
			}
		}()
		MustNew(1, 1, 1, 1)
	}()
}

func TestGeometry(t *testing.T) {
	c := azure(t, 6)
	if c.Disks() != 16 || c.Rows() != 6 || c.MaxPartialSize() != 6 {
		t.Errorf("geometry: disks=%d rows=%d max=%d", c.Disks(), c.Rows(), c.MaxPartialSize())
	}
	if c.K() != 12 || c.L() != 2 || c.G() != 2 {
		t.Error("parameter accessors wrong")
	}
	if c.Name() != "lrc" || c.String() != "lrc(12,2,2)" {
		t.Errorf("naming wrong: %s", c)
	}
	// 4 parity cells per row.
	if got := len(c.Layout().ParityCells()); got != 4*6 {
		t.Errorf("parity cells = %d", got)
	}
}

func TestChainStructure(t *testing.T) {
	c := azure(t, 2)
	layout := c.Layout()
	counts := map[grid.ChainKind]int{}
	for _, ch := range layout.Chains() {
		counts[ch.Kind]++
	}
	// 2 local chains per row (Horizontal), one chain per row per global.
	if counts[grid.Horizontal] != 4 || counts[grid.Diagonal] != 2 || counts[grid.AntiDiagonal] != 2 {
		t.Errorf("chain counts = %v", counts)
	}
	// A data cell lies on exactly one local and both global chains.
	chains := layout.ChainsThrough(grid.Coord{Row: 0, Col: 3})
	if len(chains) != 3 {
		t.Errorf("data cell on %d chains, want 3", len(chains))
	}
	// A local parity cell lies only on its local chain.
	chains = layout.ChainsThrough(grid.Coord{Row: 0, Col: 12})
	if len(chains) != 1 || chains[0].Kind != grid.Horizontal {
		t.Errorf("local parity chains = %v", chains)
	}
	// Local chains are short (k/l + 1), global chains long (k + 1).
	local, _ := layout.Chain(grid.ChainID{Kind: grid.Horizontal, Index: 0})
	global, _ := layout.Chain(grid.ChainID{Kind: grid.Diagonal, Index: 0})
	if len(local.Cells) != 7 || len(global.Cells) != 13 {
		t.Errorf("chain lengths local=%d global=%d", len(local.Cells), len(global.Cells))
	}
}

func TestEncodeVerify(t *testing.T) {
	c := azure(t, 3)
	s := randomStripe(t, c, 1, 128)
	if !c.Verify(s) {
		t.Fatal("encoded stripe fails verification")
	}
	s[c.CellIndex(grid.Coord{Row: 1, Col: 5})][7] ^= 0xA5
	if c.Verify(s) {
		t.Fatal("corrupted stripe passes verification")
	}
}

func TestRecoverSingleColumn(t *testing.T) {
	c := azure(t, 4)
	for col := 0; col < c.Disks(); col++ {
		s := randomStripe(t, c, int64(col), 64)
		var lost []grid.Coord
		want := map[grid.Coord]chunk.Chunk{}
		for r := 0; r < c.Rows(); r++ {
			cell := grid.Coord{Row: r, Col: col}
			cp := chunk.New(64)
			copy(cp, s[c.CellIndex(cell)])
			want[cell] = cp
			clear(s[c.CellIndex(cell)])
			lost = append(lost, cell)
		}
		if err := c.Recover(s, lost); err != nil {
			t.Fatalf("col %d: %v", col, err)
		}
		for cell, w := range want {
			if !s[c.CellIndex(cell)].Equal(w) {
				t.Fatalf("col %d cell %v wrong after recovery", col, cell)
			}
		}
	}
}

func TestTripleFaultCoverageAzure(t *testing.T) {
	// LRC(12,2,2) is maximally recoverable: every 3-column loss decodes.
	c := azure(t, 1)
	ok, total, failing := c.TripleFaultCoverage()
	if ok != total {
		t.Errorf("coverage %d/%d, first failing %v", ok, total, failing[0])
	}
}

func TestFourFailuresMostlyUnrecoverable(t *testing.T) {
	// Only 4 parities per codeword: some 4-column losses decode (e.g.
	// spread across groups), but losing 4 columns of one local group
	// must fail. Columns 0..5 are group 0.
	c := azure(t, 1)
	if c.CanRecoverColumns(0, 1, 2, 3) {
		t.Error("four losses in one local group should be unrecoverable")
	}
	// 2 per group + 2 parities... losing both globals and both locals
	// leaves pure data: recoverable (nothing lost among data).
	if !c.CanRecoverColumns(12, 13, 14, 15) {
		t.Error("losing only parity columns must be recoverable")
	}
}

func TestRecoverOutOfBounds(t *testing.T) {
	c := azure(t, 1)
	if err := c.Recover(randomStripe(t, c, 3, 16), []grid.Coord{{Row: 9, Col: 0}}); err == nil {
		t.Error("out-of-bounds lost cell accepted")
	}
}

func TestEncodePanicsOnWrongStripe(t *testing.T) {
	c := azure(t, 1)
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	c.Encode(make([]chunk.Chunk, 3))
}

func TestRebuildChunkMatchesOriginal(t *testing.T) {
	c := azure(t, 2)
	s := randomStripe(t, c, 5, 64)
	for _, cell := range []grid.Coord{{Row: 0, Col: 3}, {Row: 1, Col: 11}, {Row: 0, Col: 12}, {Row: 1, Col: 14}} {
		for _, ch := range c.Layout().ChainsThrough(cell) {
			got, err := c.RebuildChunk(ch.ID(), cell, s)
			if err != nil {
				t.Fatalf("cell %v chain %v: %v", cell, ch.ID(), err)
			}
			if !got.Equal(s[c.CellIndex(cell)]) {
				t.Fatalf("cell %v chain %v: rebuild mismatch", cell, ch.ID())
			}
		}
	}
}

func TestRebuildChunkErrors(t *testing.T) {
	c := azure(t, 1)
	s := randomStripe(t, c, 6, 16)
	if _, err := c.RebuildChunk(grid.ChainID{Kind: grid.Diagonal, Index: 99}, grid.Coord{}, s); err == nil {
		t.Error("unknown chain accepted")
	}
	// Cell not on the chain.
	if _, err := c.RebuildChunk(grid.ChainID{Kind: grid.Horizontal, Index: 0}, grid.Coord{Row: 0, Col: 11}, s); err == nil {
		t.Error("cell outside chain accepted")
	}
}

// TestSchemeGenerationOnLRC drives the paper's scheme generator over
// LRC chains: every lost chunk is repaired via its local chain first
// (typical) and via looped local/global chains (FBF). Row codewords are
// independent, so single-disk partial errors share no chunks — the
// boundary result recorded in EXPERIMENTS.md.
func TestSchemeGenerationOnLRC(t *testing.T) {
	c := azure(t, 6)
	e := core.PartialStripeError{Disk: 2, Row: 0, Size: 5}
	typ, err := core.GenerateScheme(c, e, core.StrategyTypical)
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range typ.Selected {
		if sel.Chain.Kind != grid.Horizontal {
			t.Errorf("typical scheme used %v for %v, want local chain", sel.Chain, sel.Lost)
		}
		// Local repair touches k/l survivors, far fewer than k.
		if len(sel.Fetch) != 6 {
			t.Errorf("local repair fetches %d chunks, want 6", len(sel.Fetch))
		}
	}
	looped, err := core.GenerateScheme(c, e, core.StrategyLooped)
	if err != nil {
		t.Fatal(err)
	}
	if looped.SharedChunks() != 0 {
		t.Errorf("row-codeword LRC cannot share chunks across rows, got %d", looped.SharedChunks())
	}
	// Greedy should discover that local-only repair reads least.
	greedy, err := core.GenerateScheme(c, e, core.StrategyGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.UniqueFetches() > typ.UniqueFetches() {
		t.Errorf("greedy reads %d > local-only %d", greedy.UniqueFetches(), typ.UniqueFetches())
	}
}

// TestSchemeXORRecoversViaRebuilder ties scheme selection to real data:
// each selected chain rebuilds its lost chunk byte-exactly.
func TestSchemeXORRecoversViaRebuilder(t *testing.T) {
	c := azure(t, 4)
	s := randomStripe(t, c, 7, 64)
	for _, strategy := range []core.Strategy{core.StrategyTypical, core.StrategyLooped, core.StrategyGreedy} {
		e := core.PartialStripeError{Disk: 4, Row: 0, Size: 4}
		scheme, err := core.GenerateScheme(c, e, strategy)
		if err != nil {
			t.Fatal(err)
		}
		for _, sel := range scheme.Selected {
			got, err := c.RebuildChunk(sel.Chain, sel.Lost, s)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(s[c.CellIndex(sel.Lost)]) {
				t.Fatalf("%v: chain %v rebuild mismatch", strategy, sel.Chain)
			}
		}
	}
}

func TestSingleGlobalParity(t *testing.T) {
	// g = 1: only Diagonal chains exist; everything still decodes any
	// two-column loss... (k=4, l=2, g=1 tolerates any 2? check a couple
	// of cases rather than asserting full coverage).
	c, err := New(4, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !c.CanRecoverColumns(0) || !c.CanRecoverColumns(4) {
		t.Error("single column loss must decode")
	}
	s := randomStripe(t, c, 8, 32)
	if !c.Verify(s) {
		t.Error("g=1 stripe fails verification")
	}
}

func TestDeterministicMaterialize(t *testing.T) {
	c := azure(t, 2)
	a := c.MaterializeStripe(42, 32)
	b := c.MaterializeStripe(42, 32)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("MaterializeStripe not deterministic")
		}
	}
	d := c.MaterializeStripe(43, 32)
	same := true
	for i := range a {
		if !a[i].Equal(d[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestRandomErasuresWithinBudget(t *testing.T) {
	// Property: random erasures of up to l+g cells in ONE row always
	// decode when no local group loses more cells than its parity budget
	// allows... simpler robust property: up to g+1 random single-row
	// erasures decode when at most one cell per local group plus
	// globals. Use the solver as ground truth against Recover.
	c := azure(t, 1)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		s := randomStripe(t, c, int64(trial), 32)
		n := 1 + rng.Intn(3)
		cols := rng.Perm(c.Disks())[:n]
		var lost []grid.Coord
		want := map[grid.Coord]chunk.Chunk{}
		for _, col := range cols {
			cell := grid.Coord{Row: 0, Col: col}
			cp := chunk.New(32)
			copy(cp, s[c.CellIndex(cell)])
			want[cell] = cp
			clear(s[c.CellIndex(cell)])
			lost = append(lost, cell)
		}
		if err := c.Recover(s, lost); err != nil {
			t.Fatalf("trial %d: %d-cell erasure should decode: %v", trial, n, err)
		}
		for cell, w := range want {
			if !s[c.CellIndex(cell)].Equal(w) {
				t.Fatalf("trial %d: wrong bytes at %v", trial, cell)
			}
		}
	}
}
