package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// backends is the conformance registry: every Backend implementation
// registers a fresh-store constructor here and the shared contract
// table below runs against each, mirroring the cache Policy contract
// test. A new backend passes the whole suite or it is not a Backend.
var backends = map[string]func(t *testing.T) Backend{
	"dirstore": func(t *testing.T) Backend {
		d, err := OpenDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return d
	},
	"memstore": func(t *testing.T) Backend { return NewMem() },
	"objstore": func(t *testing.T) Backend { return NewObj(NewMemObjects()) },
	// Instrument is a transparent wrapper: it must pass the full
	// contract over any backend, alone and stacked on a Throttle.
	"instrumented": func(t *testing.T) Backend { return Instrument(NewMem()) },
	"throttled-instrumented": func(t *testing.T) Backend {
		th, err := NewThrottle(NewMem(), 1<<30) // ample: the suite must not stall
		if err != nil {
			t.Fatal(err)
		}
		return Instrument(th)
	},
}

// payload derives a deterministic test payload for an address.
func payload(a Addr, size int) []byte {
	rng := rand.New(rand.NewSource(int64(a.Disk)<<40 ^ int64(a.Stripe)<<16 ^ int64(a.Chunk) + 1))
	b := make([]byte, size)
	rng.Read(b)
	return b
}

func TestConformance(t *testing.T) {
	for name, open := range backends {
		t.Run(name, func(t *testing.T) {
			for _, c := range contractCases() {
				t.Run(c.name, func(t *testing.T) {
					c.run(t, open(t))
				})
			}
		})
	}
}

type contractCase struct {
	name string
	run  func(t *testing.T, b Backend)
}

func contractCases() []contractCase {
	return []contractCase{
		{"read-after-write", testReadAfterWrite},
		{"overwrite", testOverwrite},
		{"missing-chunk-errors", testMissingChunkErrors},
		{"delete", testDelete},
		{"list-ordering", testListOrdering},
		{"list-empty-disk", testListEmptyDisk},
		{"stat", testStat},
		{"short-destination", testShortDestination},
		{"concurrent-reads", testConcurrentReads},
	}
}

func testReadAfterWrite(t *testing.T, b Backend) {
	a := Addr{Disk: 2, Stripe: 11, Chunk: 3}
	want := payload(a, 513) // odd size: exercises any padding assumptions
	if err := b.WriteChunk(a, want); err != nil {
		t.Fatalf("WriteChunk: %v", err)
	}
	dst := make([]byte, 1024)
	n, err := b.ReadChunk(a, dst)
	if err != nil {
		t.Fatalf("ReadChunk: %v", err)
	}
	if n != len(want) || !bytes.Equal(dst[:n], want) {
		t.Fatalf("read back %d bytes, want %d identical bytes", n, len(want))
	}
}

func testOverwrite(t *testing.T, b Backend) {
	a := Addr{Disk: 0, Stripe: 0, Chunk: 0}
	first := payload(a, 256)
	second := payload(Addr{Disk: 9, Stripe: 9, Chunk: 9}, 128) // different bytes AND size
	for _, p := range [][]byte{first, second} {
		if err := b.WriteChunk(a, p); err != nil {
			t.Fatalf("WriteChunk: %v", err)
		}
	}
	dst := make([]byte, 512)
	n, err := b.ReadChunk(a, dst)
	if err != nil {
		t.Fatalf("ReadChunk after overwrite: %v", err)
	}
	if n != len(second) || !bytes.Equal(dst[:n], second) {
		t.Fatalf("overwrite did not replace contents: got %d bytes", n)
	}
	info, err := b.Stat(a)
	if err != nil || info.Size != len(second) {
		t.Fatalf("Stat after overwrite = %+v, %v; want size %d", info, err, len(second))
	}
}

func testMissingChunkErrors(t *testing.T, b Backend) {
	a := Addr{Disk: 1, Stripe: 2, Chunk: 3}
	dst := make([]byte, 64)
	if _, err := b.ReadChunk(a, dst); !IsNotFound(err) {
		t.Errorf("ReadChunk(missing) = %v, want ErrNotFound", err)
	} else if !errors.Is(err, ErrNotFound) {
		t.Errorf("error %v does not match errors.Is(ErrNotFound)", err)
	}
	if _, err := b.Stat(a); !IsNotFound(err) {
		t.Errorf("Stat(missing) = %v, want ErrNotFound", err)
	}
	if err := b.Delete(a); !IsNotFound(err) {
		t.Errorf("Delete(missing) = %v, want ErrNotFound", err)
	}
	// The taxonomy is exclusive: a missing chunk is not corrupt.
	if _, err := b.ReadChunk(a, dst); IsCorrupt(err) {
		t.Errorf("ReadChunk(missing) matches ErrCorrupt: %v", err)
	}
	// Errors name the address for operator diagnostics.
	if _, err := b.ReadChunk(a, dst); err == nil || !errors.As(err, new(*NotFoundError)) {
		t.Errorf("ReadChunk(missing) = %T, want *NotFoundError", err)
	}
}

func testDelete(t *testing.T, b Backend) {
	a := Addr{Disk: 4, Stripe: 7, Chunk: 1}
	if err := b.WriteChunk(a, payload(a, 64)); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(a); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := b.ReadChunk(a, make([]byte, 64)); !IsNotFound(err) {
		t.Errorf("ReadChunk after Delete = %v, want ErrNotFound", err)
	}
	addrs, err := b.List(a.Disk)
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range addrs {
		if got == a {
			t.Errorf("List still contains deleted %v", a)
		}
	}
}

func testListOrdering(t *testing.T, b Backend) {
	// Write shuffled addresses on two disks; List must return each
	// disk's addresses sorted by (Stripe, Chunk) and nothing from the
	// other disk.
	var want []Addr
	for stripe := 0; stripe < 4; stripe++ {
		for chunkRow := 0; chunkRow < 3; chunkRow++ {
			want = append(want, Addr{Disk: 5, Stripe: stripe, Chunk: chunkRow})
		}
	}
	shuffled := append([]Addr(nil), want...)
	rand.New(rand.NewSource(42)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	for _, a := range shuffled {
		if err := b.WriteChunk(a, payload(a, 32)); err != nil {
			t.Fatal(err)
		}
	}
	other := Addr{Disk: 6, Stripe: 0, Chunk: 0}
	if err := b.WriteChunk(other, payload(other, 32)); err != nil {
		t.Fatal(err)
	}

	got, err := b.List(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("List(5) returned %d addrs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("List(5)[%d] = %v, want %v (ordering contract)", i, got[i], want[i])
		}
	}
}

func testListEmptyDisk(t *testing.T, b Backend) {
	got, err := b.List(37)
	if err != nil {
		t.Fatalf("List(empty disk) = %v, want empty, nil", err)
	}
	if len(got) != 0 {
		t.Fatalf("List(empty disk) returned %d addrs", len(got))
	}
}

func testStat(t *testing.T, b Backend) {
	a := Addr{Disk: 3, Stripe: 5, Chunk: 2}
	want := payload(a, 777)
	if err := b.WriteChunk(a, want); err != nil {
		t.Fatal(err)
	}
	info, err := b.Stat(a)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if info.Addr != a || info.Size != len(want) {
		t.Fatalf("Stat = %+v, want addr %v size %d", info, a, len(want))
	}
}

func testShortDestination(t *testing.T, b Backend) {
	a := Addr{Disk: 0, Stripe: 1, Chunk: 0}
	if err := b.WriteChunk(a, payload(a, 128)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadChunk(a, make([]byte, 64)); err == nil {
		t.Error("ReadChunk into a too-short buffer succeeded")
	} else if IsNotFound(err) || IsCorrupt(err) {
		t.Errorf("short-buffer error misclassified in the taxonomy: %v", err)
	}
}

func testConcurrentReads(t *testing.T, b Backend) {
	// Shared-address and distinct-address readers race; run under
	// -race this pins the "safe for concurrent readers" contract.
	const disks, stripes = 3, 4
	for d := 0; d < disks; d++ {
		for s := 0; s < stripes; s++ {
			a := Addr{Disk: d, Stripe: s, Chunk: 0}
			if err := b.WriteChunk(a, payload(a, 256)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]byte, 256)
			for i := 0; i < 50; i++ {
				a := Addr{Disk: (g + i) % disks, Stripe: i % stripes, Chunk: 0}
				n, err := b.ReadChunk(a, dst)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", g, err)
					return
				}
				if !bytes.Equal(dst[:n], payload(a, 256)) {
					errs <- fmt.Errorf("reader %d: wrong bytes at %v", g, a)
					return
				}
				if _, err := b.List(a.Disk); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
