package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
)

// resealHeader recomputes the header CRC after a test mutates header
// fields, so the mutation is seen as a (valid) different header rather
// than a checksum failure.
func resealHeader(b []byte) {
	binary.LittleEndian.PutUint32(b[28:32], crc32.Checksum(b[:28], castagnoli))
}

func TestHeaderRoundTrip(t *testing.T) {
	a := Addr{Disk: 3, Stripe: 123456, Chunk: 7}
	p := payload(a, 333)
	enc := EncodeChunk(a, p)
	if len(enc) != HeaderSize+len(p) {
		t.Fatalf("encoded size %d, want %d", len(enc), HeaderSize+len(p))
	}
	h, got, err := DecodeChunk(enc, a)
	if err != nil {
		t.Fatalf("DecodeChunk: %v", err)
	}
	if h.Version != HeaderVersion || h.Addr != a || h.Length != len(p) {
		t.Fatalf("decoded header %+v", h)
	}
	if string(got) != string(p) {
		t.Fatal("payload does not round-trip")
	}
}

func TestHeaderZeroLengthPayload(t *testing.T) {
	a := Addr{Disk: 0, Stripe: 0, Chunk: 0}
	enc := EncodeChunk(a, nil)
	if _, p, err := DecodeChunk(enc, a); err != nil || len(p) != 0 {
		t.Fatalf("zero-length chunk: %v, payload %d bytes", err, len(p))
	}
}

func TestDecodeHeaderTaxonomy(t *testing.T) {
	a := Addr{Disk: 1, Stripe: 2, Chunk: 3}
	valid := EncodeChunk(a, payload(a, 64))

	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short-header", valid[:HeaderSize-1], ErrTruncated},
		{"bad-magic", mutate(func(b []byte) { b[2] = 'X' }), ErrBadMagic},
		{"flipped-length", mutate(func(b []byte) { b[20] ^= 0xFF }), ErrChecksum},
		{"flipped-crc", mutate(func(b []byte) { b[30] ^= 0x01 }), ErrChecksum},
		{"version-skew", mutate(func(b []byte) {
			binary.LittleEndian.PutUint16(b[4:6], 99)
			resealHeader(b)
		}), ErrVersion},
		{"reserved-set", mutate(func(b []byte) {
			b[6] = 1
			resealHeader(b)
		}), ErrChecksum},
		{"oversize-length", mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[20:24], uint32(MaxPayload+1))
			resealHeader(b)
		}), ErrChecksum},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := DecodeHeader(c.in); !errors.Is(err, c.want) {
				t.Errorf("DecodeHeader = %v, want %v", err, c.want)
			}
		})
	}

	t.Run("payload-framing", func(t *testing.T) {
		if _, _, err := DecodeChunk(valid[:len(valid)-3], a); !errors.Is(err, ErrTruncated) {
			t.Errorf("truncated payload = %v, want ErrTruncated", err)
		}
		flipped := mutate(func(b []byte) { b[HeaderSize+10] ^= 0x80 })
		if _, _, err := DecodeChunk(flipped, a); !errors.Is(err, ErrChecksum) {
			t.Errorf("flipped payload = %v, want ErrChecksum", err)
		}
		if _, _, err := DecodeChunk(valid, Addr{Disk: 9}); !errors.Is(err, ErrAddrMismatch) {
			t.Errorf("wrong address = %v, want ErrAddrMismatch", err)
		}
	})
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := ArrayManifest{Code: "star", P: 5, Disks: 8, Rows: 4, Stripes: 16, ChunkSize: 1024}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	m.Version = ManifestVersion
	if got != m {
		t.Fatalf("manifest round trip: got %+v, want %+v", got, m)
	}
	if got.Chunks() != 8*4*16 {
		t.Fatalf("Chunks() = %d", got.Chunks())
	}
}

func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	bad := []ArrayManifest{
		{Code: "", P: 5, Disks: 8, Rows: 4, Stripes: 1, ChunkSize: 1},
		{Code: "star", P: 5, Disks: 0, Rows: 4, Stripes: 1, ChunkSize: 1},
		{Code: "star", P: 5, Disks: 8, Rows: 4, Stripes: 1, ChunkSize: 0},
	}
	for _, m := range bad {
		if err := WriteManifest(dir, m); err == nil {
			t.Errorf("WriteManifest accepted invalid %+v", m)
		}
	}
	if _, err := ReadManifest(t.TempDir()); err == nil {
		t.Error("ReadManifest of an empty dir succeeded")
	}

	// Version skew must be a typed, explicit error.
	m := ArrayManifest{Version: ManifestVersion + 1, Code: "star", P: 5, Disks: 8, Rows: 4, Stripes: 1, ChunkSize: 1}
	if err := m.Validate(); !errors.Is(err, ErrVersion) || !strings.Contains(err.Error(), "manifest") {
		t.Errorf("version-skewed manifest Validate = %v", err)
	}
}
