package store

import (
	"errors"
	"testing"
	"time"
)

// countingBackend tallies calls so instrumented counts can be compared
// op-for-op against ground truth.
type countingBackend struct {
	inner Backend
	calls map[Op]uint64
}

func newCounting(inner Backend) *countingBackend {
	return &countingBackend{inner: inner, calls: map[Op]uint64{}}
}

func (c *countingBackend) ReadChunk(a Addr, dst []byte) (int, error) {
	c.calls[OpRead]++
	return c.inner.ReadChunk(a, dst)
}
func (c *countingBackend) WriteChunk(a Addr, data []byte) error {
	c.calls[OpWrite]++
	return c.inner.WriteChunk(a, data)
}
func (c *countingBackend) Delete(a Addr) error { c.calls[OpDelete]++; return c.inner.Delete(a) }
func (c *countingBackend) List(disk int) ([]Addr, error) {
	c.calls[OpList]++
	return c.inner.List(disk)
}
func (c *countingBackend) Stat(a Addr) (Info, error) { c.calls[OpStat]++; return c.inner.Stat(a) }

// TestInstrumentCountsMatchBackend drives a mixed workload and checks
// every instrumented op count against the raw backend's own tally, and
// the byte counters against the payloads moved.
func TestInstrumentCountsMatchBackend(t *testing.T) {
	raw := newCounting(NewMem())
	in := Instrument(raw)

	var wantReadBytes, wantWriteBytes uint64
	for i := 0; i < 7; i++ {
		a := Addr{Disk: i % 3, Stripe: i, Chunk: 0}
		data := payload(a, 100+i)
		if err := in.WriteChunk(a, data); err != nil {
			t.Fatalf("WriteChunk: %v", err)
		}
		wantWriteBytes += uint64(len(data))
	}
	dst := make([]byte, 256)
	for i := 0; i < 5; i++ {
		a := Addr{Disk: i % 3, Stripe: i, Chunk: 0}
		n, err := in.ReadChunk(a, dst)
		if err != nil {
			t.Fatalf("ReadChunk: %v", err)
		}
		wantReadBytes += uint64(n)
	}
	if _, err := in.Stat(Addr{Disk: 0, Stripe: 0, Chunk: 0}); err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if _, err := in.List(1); err != nil {
		t.Fatalf("List: %v", err)
	}
	if err := in.Delete(Addr{Disk: 0, Stripe: 0, Chunk: 0}); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// Error-path calls count too: every call is an op.
	if _, err := in.ReadChunk(Addr{Disk: 9, Stripe: 9, Chunk: 9}, dst); !IsNotFound(err) {
		t.Fatalf("read of absent chunk: %v, want not-found", err)
	}

	for _, op := range Ops() {
		if got, want := in.Stats(op).Ops, raw.calls[op]; got != want {
			t.Errorf("%v: instrumented %d ops, backend saw %d", op, got, want)
		}
	}
	if got := in.Stats(OpRead).Bytes; got != wantReadBytes {
		t.Errorf("read bytes = %d, want %d", got, wantReadBytes)
	}
	if got := in.Stats(OpWrite).Bytes; got != wantWriteBytes {
		t.Errorf("write bytes = %d, want %d", got, wantWriteBytes)
	}
	if got := in.Stats(OpRead).NotFound; got != 1 {
		t.Errorf("read not-found count = %d, want 1", got)
	}
	rs := in.Stats(OpRead)
	if total := histTotal(rs.LatencyCounts); total != rs.Ops {
		t.Errorf("read latency observations = %d, want %d (one per op)", total, rs.Ops)
	}
}

func histTotal(counts []uint64) uint64 {
	var n uint64
	for _, c := range counts {
		n += c
	}
	return n
}

// failingBackend returns a fixed error from every operation.
type failingBackend struct{ err error }

func (f failingBackend) ReadChunk(Addr, []byte) (int, error) { return 0, f.err }
func (f failingBackend) WriteChunk(Addr, []byte) error       { return f.err }
func (f failingBackend) Delete(Addr) error                   { return f.err }
func (f failingBackend) List(int) ([]Addr, error)            { return nil, f.err }
func (f failingBackend) Stat(Addr) (Info, error)             { return Info{}, f.err }

// TestInstrumentErrorTaxonomy checks each error class lands in its own
// counter: not-found, corrupt, and everything else as io.
func TestInstrumentErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		err  error
		read func(OpStats) uint64
	}{
		{"notfound", &NotFoundError{Addr: Addr{}}, func(s OpStats) uint64 { return s.NotFound }},
		{"corrupt", &CorruptError{Addr: Addr{}}, func(s OpStats) uint64 { return s.Corrupt }},
		{"io", errors.New("disk on fire"), func(s OpStats) uint64 { return s.IO }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := Instrument(failingBackend{err: tc.err})
			dst := make([]byte, 8)
			in.ReadChunk(Addr{}, dst)
			in.WriteChunk(Addr{}, dst)
			in.Delete(Addr{})
			in.List(0)
			in.Stat(Addr{})
			for _, op := range Ops() {
				st := in.Stats(op)
				if st.Ops != 1 {
					t.Errorf("%v: %d ops, want 1", op, st.Ops)
				}
				if got := tc.read(st); got != 1 {
					t.Errorf("%v: %s count = %d, want 1", op, tc.name, got)
				}
				if st.Bytes != 0 {
					t.Errorf("%v: %d bytes counted on a failed call", op, st.Bytes)
				}
			}
		})
	}
}

// TestInstrumentIncludesThrottleWait pins the composition contract:
// instrumenting outside a Throttle, the recorded latency includes the
// time the throttle slept repaying its token deficit. Both clocks are
// faked, so the test is deterministic and sleep-free.
func TestInstrumentIncludesThrottleWait(t *testing.T) {
	const rate = 1000 // bytes/sec, so a 2000-byte write overdraws a full bucket by 1s
	th, err := NewThrottle(NewMem(), rate)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	var slept time.Duration
	th.now = func() time.Time { return now }
	th.sleep = func(d time.Duration) { slept += d; now = now.Add(d) }

	in := Instrument(th)
	in.now = func() time.Time { return now }

	a := Addr{Disk: 0, Stripe: 0, Chunk: 0}
	data := make([]byte, 2*rate) // drains the 1-second burst and overdraws by rate bytes
	if err := in.WriteChunk(a, data); err != nil {
		t.Fatalf("WriteChunk: %v", err)
	}
	if slept != time.Second {
		t.Fatalf("throttle slept %v, want 1s (overdraw of %d bytes at %d B/s)", slept, rate, rate)
	}
	st := in.Stats(OpWrite)
	if st.LatencySum != slept.Seconds() {
		t.Fatalf("instrumented write latency %.3fs, want the full throttle wait %.3fs", st.LatencySum, slept.Seconds())
	}
	ts := th.Stats()
	if ts.Waits != 1 || ts.Waited != time.Second {
		t.Fatalf("throttle stats = %+v, want 1 wait of 1s", ts)
	}
	if ts.Rate != rate {
		t.Fatalf("throttle rate = %v, want %d", ts.Rate, rate)
	}

	// A second small write inside the repaid budget must not wait, and
	// its recorded latency stays zero under the fake clock.
	now = now.Add(2 * time.Second) // refill
	before := slept
	if err := in.WriteChunk(a, make([]byte, 10)); err != nil {
		t.Fatalf("WriteChunk: %v", err)
	}
	if slept != before {
		t.Fatalf("unthrottled write slept %v", slept-before)
	}
	st = in.Stats(OpWrite)
	if st.Ops != 2 || st.LatencySum != time.Second.Seconds() {
		t.Fatalf("after 2 writes: ops=%d sum=%.3fs, want ops=2 sum=1.000s", st.Ops, st.LatencySum)
	}
}
