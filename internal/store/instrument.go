package store

import (
	"time"

	"fbf/internal/stats"
)

// Op enumerates the Backend operations an Instrumented wrapper counts.
type Op int

const (
	OpRead Op = iota
	OpWrite
	OpDelete
	OpList
	OpStat
	numOps
)

// Ops lists every instrumented operation, in exposition order.
func Ops() []Op { return []Op{OpRead, OpWrite, OpDelete, OpList, OpStat} }

// String names the operation as it appears in metric labels.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpDelete:
		return "delete"
	case OpList:
		return "list"
	case OpStat:
		return "stat"
	}
	return "unknown"
}

// instrumentBoundsSec buckets per-op latency: geometric from a
// microsecond (an in-memory hit) to ~10 s (a throttled or stalled I/O),
// factor 2 — 24 buckets.
var instrumentBoundsSec = func() []float64 {
	b, err := stats.LogBounds(1e-6, 10, 2)
	if err != nil {
		panic("store: instrument latency bounds: " + err.Error()) // fixed valid parameters
	}
	return b
}()

// InstrumentBounds returns the latency bucket bounds (seconds) every
// per-op histogram uses.
func InstrumentBounds() []float64 { return append([]float64(nil), instrumentBoundsSec...) }

// OpStats is one operation's counters at a point in time.
type OpStats struct {
	Ops      uint64 // calls completed
	NotFound uint64 // calls failing with ErrNotFound
	Corrupt  uint64 // calls failing with ErrCorrupt
	IO       uint64 // calls failing with any other error (EIO class)
	Bytes    uint64 // payload bytes moved (reads return, writes submit)

	// Latency histogram over InstrumentBounds (seconds): per-bucket
	// counts with a final overflow bucket, and the summed latency.
	LatencyCounts []uint64
	LatencySum    float64
}

// opRecorder accumulates one operation's counters. The scalar counters
// and the histogram share the mutex: an operation's count and its
// latency observation land atomically, so a scrape never sees one
// without the other.
type opRecorder struct {
	stats OpStats
	hist  *stats.Histogram
}

// Instrumented wraps a Backend, counting calls, payload bytes and
// errors by taxonomy class (not-found / corrupt / io) per operation,
// and recording each call's wall-clock latency — including any time a
// wrapped Throttle spends repaying its token deficit — into a
// stats.LogBounds histogram. It passes the backend conformance suite
// unchanged and composes with Throttle and faultstore: instrument the
// outermost wrapper to see what callers see.
//
// Safe for the same concurrency the wrapped backend supports; the
// counters themselves never race (pinned under -race).
type Instrumented struct {
	inner Backend
	ops   [numOps]struct {
		mu  chan struct{} // 1-buffered mutex; see lock/unlock
		rec opRecorder
	}

	// now is the clock seam (time.Now outside tests).
	now func() time.Time
}

// Instrument wraps a backend with operation counters and latency
// histograms. The wrapper is transparent: every call, result and error
// passes through unchanged.
func Instrument(b Backend) *Instrumented {
	in := &Instrumented{inner: b, now: time.Now}
	for i := range in.ops {
		h, err := stats.NewHistogram(instrumentBoundsSec)
		if err != nil {
			panic("store: instrument histogram: " + err.Error()) // fixed valid bounds
		}
		in.ops[i].mu = make(chan struct{}, 1)
		in.ops[i].rec.hist = h
	}
	return in
}

func (in *Instrumented) lock(op Op)   { in.ops[op].mu <- struct{}{} }
func (in *Instrumented) unlock(op Op) { <-in.ops[op].mu }

// record folds one completed call into the operation's counters.
func (in *Instrumented) record(op Op, start time.Time, bytes int, err error) {
	sec := in.now().Sub(start).Seconds()
	in.lock(op)
	defer in.unlock(op)
	r := &in.ops[op].rec
	r.stats.Ops++
	if bytes > 0 {
		r.stats.Bytes += uint64(bytes)
	}
	switch {
	case err == nil:
	case IsNotFound(err):
		r.stats.NotFound++
	case IsCorrupt(err):
		r.stats.Corrupt++
	default:
		r.stats.IO++
	}
	r.stats.LatencySum += sec
	r.hist.Add(sec)
}

// Stats snapshots one operation's counters.
func (in *Instrumented) Stats(op Op) OpStats {
	in.lock(op)
	defer in.unlock(op)
	r := &in.ops[op].rec
	out := r.stats
	out.LatencyCounts = r.hist.Counts()
	return out
}

// ReadChunk implements Backend.
func (in *Instrumented) ReadChunk(a Addr, dst []byte) (int, error) {
	start := in.now()
	n, err := in.inner.ReadChunk(a, dst)
	bytes := n
	if err != nil {
		bytes = 0
	}
	in.record(OpRead, start, bytes, err)
	return n, err
}

// WriteChunk implements Backend.
func (in *Instrumented) WriteChunk(a Addr, data []byte) error {
	start := in.now()
	err := in.inner.WriteChunk(a, data)
	bytes := len(data)
	if err != nil {
		bytes = 0
	}
	in.record(OpWrite, start, bytes, err)
	return err
}

// Delete implements Backend.
func (in *Instrumented) Delete(a Addr) error {
	start := in.now()
	err := in.inner.Delete(a)
	in.record(OpDelete, start, 0, err)
	return err
}

// List implements Backend.
func (in *Instrumented) List(disk int) ([]Addr, error) {
	start := in.now()
	addrs, err := in.inner.List(disk)
	in.record(OpList, start, 0, err)
	return addrs, err
}

// Stat implements Backend.
func (in *Instrumented) Stat(a Addr) (Info, error) {
	start := in.now()
	info, err := in.inner.Stat(a)
	in.record(OpStat, start, 0, err)
	return info, err
}
