package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// openDirT opens a dirstore in a fresh temp dir with one chunk written.
func openDirT(t *testing.T) (*Dir, Addr, []byte) {
	t.Helper()
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := Addr{Disk: 1, Stripe: 4, Chunk: 2}
	p := payload(a, 512)
	if err := d.WriteChunk(a, p); err != nil {
		t.Fatal(err)
	}
	return d, a, p
}

// TestDirCorruptionTaxonomy damages the on-disk chunk file in every way
// the codec distinguishes and asserts each reads back as ErrCorrupt
// with the right codec-level cause.
func TestDirCorruptionTaxonomy(t *testing.T) {
	damage := []struct {
		name  string
		mutil func(t *testing.T, path string)
		cause error
		stat  bool // Dir.Stat must also detect it (header-only check)
	}{
		{"payload-bit-flip", func(t *testing.T, path string) {
			flipByte(t, path, HeaderSize+100)
		}, ErrChecksum, false},
		{"header-bit-flip", func(t *testing.T, path string) {
			flipByte(t, path, 9) // inside the disk field, breaks the header CRC
		}, ErrChecksum, true},
		{"bad-magic", func(t *testing.T, path string) {
			flipByte(t, path, 0)
		}, ErrBadMagic, true},
		{"truncated-header", func(t *testing.T, path string) {
			truncateTo(t, path, HeaderSize-4)
		}, ErrTruncated, true},
		{"truncated-payload", func(t *testing.T, path string) {
			truncateTo(t, path, HeaderSize+17)
		}, ErrTruncated, true},
		{"trailing-garbage", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("junk")); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}, ErrTruncated, true},
		{"misdirected-write", func(t *testing.T, path string) {
			// A chunk validly written for a different address, copied
			// over this one (e.g. a fat-fingered file move).
			other := Addr{Disk: 7, Stripe: 7, Chunk: 0}
			if err := os.WriteFile(path, EncodeChunk(other, payload(other, 512)), 0o644); err != nil {
				t.Fatal(err)
			}
		}, ErrAddrMismatch, true},
		{"version-skew", func(t *testing.T, path string) {
			rewriteVersion(t, path, 2)
		}, ErrVersion, true},
	}
	for _, c := range damage {
		t.Run(c.name, func(t *testing.T) {
			d, a, _ := openDirT(t)
			c.mutil(t, d.chunkPath(a))
			_, err := d.ReadChunk(a, make([]byte, 512))
			if !IsCorrupt(err) {
				t.Fatalf("ReadChunk = %v, want ErrCorrupt", err)
			}
			if !errors.Is(err, c.cause) {
				t.Errorf("ReadChunk cause = %v, want %v", err, c.cause)
			}
			if IsNotFound(err) {
				t.Errorf("corrupt chunk also matches ErrNotFound: %v", err)
			}
			if _, err := d.Stat(a); c.stat != IsCorrupt(err) {
				t.Errorf("Stat = %v, want corrupt=%v", err, c.stat)
			}
		})
	}
}

// TestDirIgnoresStrayFiles pins that non-chunk files in a disk
// directory are invisible to List rather than misparsed.
func TestDirIgnoresStrayFiles(t *testing.T) {
	d, a, _ := openDirT(t)
	dir := filepath.Dir(d.chunkPath(a))
	for _, name := range []string{"README", "s0001-c1.bak", "sX0000001-c001.chk", ".tmp-chunk-12345"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.List(a.Disk)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != a {
		t.Fatalf("List = %v, want exactly [%v]", got, a)
	}
}

// TestDirKilledDisk pins the scan-side view of the e2e failure mode:
// removing a whole disk directory lists as empty, and each chunk reads
// as ErrNotFound.
func TestDirKilledDisk(t *testing.T) {
	d, a, _ := openDirT(t)
	if err := os.RemoveAll(filepath.Join(d.Root(), DiskDirName(a.Disk))); err != nil {
		t.Fatal(err)
	}
	got, err := d.List(a.Disk)
	if err != nil || len(got) != 0 {
		t.Fatalf("List(killed disk) = %v, %v; want empty, nil", got, err)
	}
	if _, err := d.ReadChunk(a, make([]byte, 512)); !IsNotFound(err) {
		t.Fatalf("ReadChunk(killed disk) = %v, want ErrNotFound", err)
	}
}

func TestParseChunkFileNameRoundTrip(t *testing.T) {
	for _, a := range []Addr{{0, 0, 0}, {3, 12, 5}, {1, 99999999, 999}, {2, 123456789, 1234}} {
		got, ok := parseChunkFileName(a.Disk, chunkFileName(a))
		if !ok || got != a {
			t.Errorf("round trip %v -> %q -> %v, ok=%v", a, chunkFileName(a), got, ok)
		}
	}
	for _, name := range []string{"", "s1-c1", "s1c1.chk", "s-1-c1.chk", "s+1-c01.chk", "s 1-c1.chk", "x00000001-c001.chk", "s00000001-x001.chk"} {
		if a, ok := parseChunkFileName(0, name); ok {
			t.Errorf("parseChunkFileName(%q) accepted as %v", name, a)
		}
	}
}

// TestDirSweepsOrphansOnOpen pins the crash-recovery half of the atomic
// write: temp files stranded by a killed writer are removed when the
// store is reopened, and the chunks themselves are untouched.
func TestDirSweepsOrphansOnOpen(t *testing.T) {
	d, a, want := openDirT(t)
	// Strand debris in an existing disk dir and in a fresh one.
	if err := d.CrashWrite(a, []byte("new bytes that must not land"), 20); err != nil {
		t.Fatal(err)
	}
	other := Addr{Disk: 5, Stripe: 0, Chunk: 0}
	if err := d.CrashWrite(other, payload(other, 64), 10); err != nil {
		t.Fatal(err)
	}
	if n := countOrphans(t, d.Root()); n != 2 {
		t.Fatalf("stranded %d orphans, want 2", n)
	}

	reopened, err := OpenDir(d.Root())
	if err != nil {
		t.Fatal(err)
	}
	if n := countOrphans(t, d.Root()); n != 0 {
		t.Fatalf("%d orphans survive reopen, want 0", n)
	}
	// The crashed overwrite is invisible: old bytes read back.
	dst := make([]byte, 1024)
	n, err := reopened.ReadChunk(a, dst)
	if err != nil || !equalBytes(dst[:n], want) {
		t.Fatalf("old chunk not intact after crashed overwrite: %d bytes, %v", n, err)
	}
	// The crashed first write is invisible: typed not-found.
	if _, err := reopened.ReadChunk(other, dst); !IsNotFound(err) {
		t.Fatalf("crashed first write reads as %v, want ErrNotFound", err)
	}
}

// TestDirTornWriteReadsCorrupt pins that a torn in-place overwrite is
// detected by the codec, never served as bytes.
func TestDirTornWriteReadsCorrupt(t *testing.T) {
	d, a, _ := openDirT(t)
	if err := d.TornWrite(a, payload(a, 512), HeaderSize+100); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadChunk(a, make([]byte, 1024)); !IsCorrupt(err) {
		t.Fatalf("torn chunk reads as %v, want ErrCorrupt", err)
	}
	if _, err := d.Stat(a); !IsCorrupt(err) {
		t.Fatalf("torn chunk stats as %v, want ErrCorrupt", err)
	}
}

// TestDirNoSyncOption pins that the durability opt-out still writes
// correct chunks — only the fsyncs differ.
func TestDirNoSyncOption(t *testing.T) {
	d, err := OpenDirWith(t.TempDir(), DirOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	a := Addr{Disk: 0, Stripe: 1, Chunk: 2}
	want := payload(a, 256)
	if err := d.WriteChunk(a, want); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 256)
	n, err := d.ReadChunk(a, dst)
	if err != nil || !equalBytes(dst[:n], want) {
		t.Fatalf("no-sync write read back wrong: %d bytes, %v", n, err)
	}
}

func countOrphans(t *testing.T, root string) int {
	t.Helper()
	n := 0
	disks, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, disk := range disks {
		if !disk.IsDir() {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(root, disk.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if len(e.Name()) >= len(tmpChunkPrefix) && e.Name()[:len(tmpChunkPrefix)] == tmpChunkPrefix {
				n++
			}
		}
	}
	return n
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func flipByte(t *testing.T, path string, off int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off >= len(data) {
		t.Fatalf("offset %d beyond file size %d", off, len(data))
	}
	data[off] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func truncateTo(t *testing.T, path string, size int) {
	t.Helper()
	if err := os.Truncate(path, int64(size)); err != nil {
		t.Fatal(err)
	}
}

// rewriteVersion rewrites the header's version field and re-seals the
// header CRC, simulating a chunk written by a future codec version.
func rewriteVersion(t *testing.T, path string, version uint16) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[4] = byte(version)
	data[5] = byte(version >> 8)
	resealHeader(data)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
