package faultstore

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"fbf/internal/store"
)

func testPayload(a store.Addr, size int) []byte {
	rng := rand.New(rand.NewSource(int64(a.Disk)<<40 ^ int64(a.Stripe)<<16 ^ int64(a.Chunk) + 1))
	b := make([]byte, size)
	rng.Read(b)
	return b
}

// TestPassThrough pins that a zero plan is a transparent wrapper.
func TestPassThrough(t *testing.T) {
	s := Wrap(store.NewMem(), Plan{})
	a := store.Addr{Disk: 1, Stripe: 2, Chunk: 3}
	want := testPayload(a, 128)
	if err := s.WriteChunk(a, want); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 128)
	n, err := s.ReadChunk(a, dst)
	if err != nil || !bytes.Equal(dst[:n], want) {
		t.Fatalf("read through zero plan: %d bytes, %v", n, err)
	}
	if _, err := s.Stat(a); err != nil {
		t.Fatal(err)
	}
	if got, err := s.List(a.Disk); err != nil || len(got) != 1 {
		t.Fatalf("List = %v, %v", got, err)
	}
	if err := s.Delete(a); err != nil {
		t.Fatal(err)
	}
	if s.Ops() != 5 {
		t.Fatalf("Ops = %d, want 5", s.Ops())
	}
}

// TestDeterministicFaults pins the seeded-coin contract: two stores with
// the same plan over the same operation sequence inject identical
// faults; a different seed injects a different set.
func TestDeterministicFaults(t *testing.T) {
	sequence := func(seed int64) []bool {
		s := Wrap(store.NewMem(), Plan{Seed: seed, WriteErrRate: 0.3, ReadErrRate: 0.3})
		var outcomes []bool
		data := make([]byte, 32)
		dst := make([]byte, 32)
		for i := 0; i < 64; i++ {
			a := store.Addr{Disk: 0, Stripe: i, Chunk: 0}
			outcomes = append(outcomes, s.WriteChunk(a, data) == nil)
			_, err := s.ReadChunk(a, dst)
			outcomes = append(outcomes, err == nil || store.IsNotFound(err))
		}
		return outcomes
	}
	a, b, c := sequence(7), sequence(7), sequence(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
	// And at a 0.3 rate some of each outcome must appear.
	failures := 0
	for _, ok := range a {
		if !ok {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Fatalf("fault rate not exercised: %d/%d failures", failures, len(a))
	}
}

// TestInjectedErrorsAreTyped pins the error taxonomy: injected faults
// match their sentinels and never masquerade as NotFound/Corrupt.
func TestInjectedErrorsAreTyped(t *testing.T) {
	s := Wrap(store.NewMem(), Plan{Seed: 1, ReadErrRate: 1})
	_, err := s.ReadChunk(store.Addr{}, make([]byte, 8))
	if !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("injected read error = %v, want ErrInjectedIO", err)
	}
	if store.IsNotFound(err) || store.IsCorrupt(err) {
		t.Fatalf("injected error leaks into the store taxonomy: %v", err)
	}
}

// TestNoSpaceBudget pins ENOSPC: the first N writes succeed, every
// later one fails, and reads are unaffected.
func TestNoSpaceBudget(t *testing.T) {
	s := Wrap(store.NewMem(), Plan{NoSpaceAfterWrites: 3})
	data := make([]byte, 16)
	for i := 0; i < 3; i++ {
		if err := s.WriteChunk(store.Addr{Stripe: i}, data); err != nil {
			t.Fatalf("write %d within budget: %v", i, err)
		}
	}
	for i := 3; i < 6; i++ {
		if err := s.WriteChunk(store.Addr{Stripe: i}, data); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("write %d over budget = %v, want ErrNoSpace", i, err)
		}
	}
	dst := make([]byte, 16)
	if _, err := s.ReadChunk(store.Addr{Stripe: 0}, dst); err != nil {
		t.Fatalf("read after ENOSPC: %v", err)
	}
}

// TestCrashPointHaltsEverything pins the crash semantics: operation N
// and everything after fail with ErrCrashed, across all five methods.
func TestCrashPointHaltsEverything(t *testing.T) {
	mem := store.NewMem()
	a := store.Addr{Disk: 0, Stripe: 0, Chunk: 0}
	if err := mem.WriteChunk(a, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	s := Wrap(mem, Plan{CrashAfterOps: 3})
	if _, err := s.Stat(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.List(0); err != nil {
		t.Fatal(err)
	}
	if s.Crashed() {
		t.Fatal("crashed before the crash point")
	}
	checks := []func() error{
		func() error { _, err := s.ReadChunk(a, make([]byte, 8)); return err },
		func() error { return s.WriteChunk(a, make([]byte, 8)) },
		func() error { return s.Delete(a) },
		func() error { _, err := s.List(0); return err },
		func() error { _, err := s.Stat(a); return err },
	}
	for i, op := range checks {
		if err := op(); !errors.Is(err, ErrCrashed) {
			t.Fatalf("op %d after crash point = %v, want ErrCrashed", i, err)
		}
	}
	if !s.Crashed() {
		t.Fatal("Crashed() false after the crash point")
	}
	// The medium is untouched by post-crash attempts.
	if n, err := mem.ReadChunk(a, make([]byte, 8)); err != nil || n != 8 {
		t.Fatalf("underlying chunk disturbed: %d, %v", n, err)
	}
}

// TestTornWriteLeavesCorruptChunk pins the torn-write debris on a
// codec-carrying backend: the injected EIO leaves a truncated chunk at
// the final path that reads back as typed ErrCorrupt — never as bytes.
func TestTornWriteLeavesCorruptChunk(t *testing.T) {
	dir, err := store.OpenDirWith(t.TempDir(), store.DirOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s := Wrap(dir, Plan{Seed: 3, WriteErrRate: 1, TornWrites: true})
	a := store.Addr{Disk: 2, Stripe: 5, Chunk: 1}
	if err := s.WriteChunk(a, testPayload(a, 256)); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("torn write = %v, want ErrInjectedIO", err)
	}
	if _, err := dir.ReadChunk(a, make([]byte, 512)); !store.IsCorrupt(err) {
		t.Fatalf("torn chunk reads as %v, want ErrCorrupt", err)
	}
}

// TestStallInjection pins the latency hook: every StallEvery-th
// operation sleeps Stall, through the injectable sleeper.
func TestStallInjection(t *testing.T) {
	s := Wrap(store.NewMem(), Plan{StallEvery: 2, Stall: 5 * time.Millisecond})
	var slept []time.Duration
	s.sleep = func(d time.Duration) { slept = append(slept, d) }
	data := make([]byte, 8)
	for i := 0; i < 6; i++ {
		if err := s.WriteChunk(store.Addr{Stripe: i}, data); err != nil {
			t.Fatal(err)
		}
	}
	if len(slept) != 3 {
		t.Fatalf("6 ops at StallEvery=2 slept %d times, want 3", len(slept))
	}
	for _, d := range slept {
		if d != 5*time.Millisecond {
			t.Fatalf("stall = %v, want 5ms", d)
		}
	}
}
