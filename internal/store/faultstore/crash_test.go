package faultstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fbf/internal/store"
)

// crashFixture extends the store conformance registry with a "reopen"
// notion: open constructs a fresh store, reopen models the next process
// attaching to the same medium (for dirstore that re-runs the orphan
// sweep; memstore and objstore media live in the shared state).
type crashFixture struct {
	open   func(t *testing.T) store.Backend
	reopen func(t *testing.T) store.Backend
}

func crashFixtures(t *testing.T) map[string]crashFixture {
	root := t.TempDir()
	api := store.NewMemObjects()
	mem := store.NewMem()
	return map[string]crashFixture{
		"dirstore": {
			open: func(t *testing.T) store.Backend {
				d, err := store.OpenDir(root)
				if err != nil {
					t.Fatal(err)
				}
				return d
			},
			reopen: func(t *testing.T) store.Backend {
				d, err := store.OpenDir(root)
				if err != nil {
					t.Fatal(err)
				}
				return d
			},
		},
		"memstore": {
			open:   func(t *testing.T) store.Backend { return mem },
			reopen: func(t *testing.T) store.Backend { return mem },
		},
		"objstore": {
			open:   func(t *testing.T) store.Backend { return store.NewObj(api) },
			reopen: func(t *testing.T) store.Backend { return store.NewObj(api) },
		},
	}
}

// TestReopenAfterCrashConformance is the crash-consistency conformance
// case, run against all three backends: a backend killed mid-WriteChunk
// (via the faultstore crash point, with torn debris where the backend
// can materialize it) must, after reopen, either return the old chunk
// byte-identically or a typed ErrNotFound — never a torn read.
func TestReopenAfterCrashConformance(t *testing.T) {
	for name := range crashFixtures(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("overwrite", func(t *testing.T) {
				fx := crashFixtures(t)[name]
				b := fx.open(t)
				a := store.Addr{Disk: 1, Stripe: 3, Chunk: 0}
				old := testPayload(a, 300)
				if err := b.WriteChunk(a, old); err != nil {
					t.Fatal(err)
				}
				// Kill the next write mid-flight.
				faulty := Wrap(b, Plan{Seed: 11, CrashAfterOps: 1, TornWrites: true})
				if err := faulty.WriteChunk(a, testPayload(a, 300)); !errors.Is(err, ErrCrashed) {
					t.Fatalf("crashed write = %v, want ErrCrashed", err)
				}

				re := fx.reopen(t)
				dst := make([]byte, 1024)
				n, err := re.ReadChunk(a, dst)
				if err != nil {
					t.Fatalf("read after crashed overwrite = %v, want old chunk", err)
				}
				if !bytes.Equal(dst[:n], old) {
					t.Fatalf("torn read: got %d bytes differing from the old chunk", n)
				}
			})
			t.Run("first-write", func(t *testing.T) {
				fx := crashFixtures(t)[name]
				b := fx.open(t)
				a := store.Addr{Disk: 2, Stripe: 8, Chunk: 1}
				faulty := Wrap(b, Plan{Seed: 12, CrashAfterOps: 1, TornWrites: true})
				if err := faulty.WriteChunk(a, testPayload(a, 300)); !errors.Is(err, ErrCrashed) {
					t.Fatalf("crashed write = %v, want ErrCrashed", err)
				}

				re := fx.reopen(t)
				if _, err := re.ReadChunk(a, make([]byte, 1024)); !store.IsNotFound(err) {
					t.Fatalf("read after crashed first write = %v, want typed ErrNotFound", err)
				}
				addrs, err := re.List(a.Disk)
				if err != nil {
					t.Fatal(err)
				}
				for _, got := range addrs {
					if got == a {
						t.Fatalf("crashed write is visible in List")
					}
				}
			})
		})
	}
}

// TestCrashedDirWriteLeavesSweptDebris pins the dirstore-specific half:
// the crash materializes an orphan temp file (the realistic on-disk
// state of a killed writer) and reopening the store sweeps it.
func TestCrashedDirWriteLeavesSweptDebris(t *testing.T) {
	root := t.TempDir()
	d, err := store.OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	a := store.Addr{Disk: 0, Stripe: 0, Chunk: 0}
	faulty := Wrap(d, Plan{Seed: 5, CrashAfterOps: 1, TornWrites: true})
	if err := faulty.WriteChunk(a, testPayload(a, 128)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashed write = %v, want ErrCrashed", err)
	}
	if n := countTmpFiles(t, root); n != 1 {
		t.Fatalf("crash left %d orphan temp files, want 1", n)
	}
	if _, err := store.OpenDir(root); err != nil {
		t.Fatal(err)
	}
	if n := countTmpFiles(t, root); n != 0 {
		t.Fatalf("%d orphans survive reopen, want 0", n)
	}
}

func countTmpFiles(t *testing.T, root string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), ".tmp-chunk-") {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}
