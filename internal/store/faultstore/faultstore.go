// Package faultstore injects deterministic, seeded faults at the
// chunk-store boundary: a wrapping store.Backend that fails reads and
// writes with EIO-style errors, exhausts space, tears writes, stalls,
// and crashes — halting all further I/O mid-operation, the way a killed
// process or a yanked power cord does.
//
// It carries the FaultPlan philosophy of internal/disk one layer down:
// every injected outcome is a pure function of (seed, operation index),
// so a (plan, operation sequence) pair always yields identical faults
// and a failing drill replays bit-for-bit. Where the simulator's plan
// decides the fate of modeled I/O, this one decides the fate of real
// bytes — which lets the rebuild journal's crash-resume property test
// enumerate every crash point of an actual repair.
package faultstore

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fbf/internal/store"
)

// Injected-fault sentinels, matchable with errors.Is. None of them maps
// onto store.ErrNotFound or store.ErrCorrupt: an injected fault is an
// environment failure, not a statement about the chunk, so the rebuild
// service treats it as fatal (and the daemon as retryable) rather than
// escalating the cell.
var (
	// ErrInjectedIO is the injected EIO: the operation failed and the
	// on-media state is whatever the tear policy left behind.
	ErrInjectedIO = errors.New("faultstore: injected I/O error")
	// ErrNoSpace is the injected ENOSPC: writes fail once the plan's
	// write budget is spent.
	ErrNoSpace = errors.New("faultstore: no space left on device")
	// ErrCrashed reports the crash point has been reached: the
	// in-flight operation and every operation after it fail, modeling
	// process death mid-I/O.
	ErrCrashed = errors.New("faultstore: crashed (all further I/O halted)")
)

// Plan parameterizes the injected faults. The zero value injects
// nothing.
type Plan struct {
	// Seed drives every probabilistic decision; same seed, same
	// operation sequence, same faults.
	Seed int64

	// ReadErrRate and WriteErrRate inject per-operation EIO failures on
	// ReadChunk and WriteChunk.
	ReadErrRate  float64
	WriteErrRate float64

	// TornWrites makes injected write failures (EIO and the crash
	// point) leave torn on-media debris when the wrapped backend can
	// materialize it — a truncated chunk at the final location
	// (store.Dir.TornWrite, store.Obj.TornWrite) for EIO, an orphaned
	// partial temp file (store.Dir.CrashWrite) for the crash point.
	// Backends without the hooks fail cleanly, which models an atomic
	// medium.
	TornWrites bool

	// NoSpaceAfterWrites fails every write after the first N succeed
	// with ErrNoSpace. Zero never runs out.
	NoSpaceAfterWrites int

	// CrashAfterOps makes operation number N (1-based, counting every
	// backend call) and all later operations fail with ErrCrashed.
	// Zero never crashes.
	CrashAfterOps int

	// StallEvery sleeps Stall before every N-th operation — latency
	// injection for timeout and pacing drills. Zero never stalls.
	StallEvery int
	Stall      time.Duration
}

// tornWriter is the optional debris hook a backend implements to
// materialize a non-atomic torn write (store.Dir, store.Obj).
type tornWriter interface {
	TornWrite(a store.Addr, data []byte, keep int) error
}

// crashWriter is the optional debris hook a backend implements to
// materialize a write killed mid-flight (store.Dir's orphan temp file).
type crashWriter interface {
	CrashWrite(a store.Addr, data []byte, keep int) error
}

// Store wraps a Backend with a fault Plan. Safe for concurrent use; the
// operation counter serializes fault decisions, so concurrent callers
// see a deterministic fault *set* (though its distribution over callers
// follows scheduling).
type Store struct {
	inner store.Backend
	plan  Plan

	mu      sync.Mutex
	ops     int
	writes  int // successful writes, for the ENOSPC budget
	crashed bool

	sleep func(time.Duration) // test seam; default time.Sleep
}

// Wrap puts a fault plan in front of a backend.
func Wrap(inner store.Backend, plan Plan) *Store {
	return &Store{inner: inner, plan: plan, sleep: time.Sleep}
}

// Ops returns the number of operations the store has seen — the
// coordinate space CrashAfterOps indexes, so a counting run bounds a
// crash-point sweep.
func (s *Store) Ops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Crashed reports whether the crash point has been reached.
func (s *Store) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// begin accounts one operation and returns its index, whether the
// crash point fires on it, and any stall to serve first.
func (s *Store) begin() (op int, crash bool) {
	s.mu.Lock()
	s.ops++
	op = s.ops
	if s.crashed {
		s.mu.Unlock()
		return op, true
	}
	if s.plan.CrashAfterOps > 0 && op >= s.plan.CrashAfterOps {
		s.crashed = true
		s.mu.Unlock()
		return op, true
	}
	stall := s.plan.StallEvery > 0 && op%s.plan.StallEvery == 0 && s.plan.Stall > 0
	s.mu.Unlock()
	if stall {
		s.sleep(s.plan.Stall)
	}
	return op, false
}

// ReadChunk implements store.Backend.
func (s *Store) ReadChunk(a store.Addr, dst []byte) (int, error) {
	op, crash := s.begin()
	if crash {
		return 0, fmt.Errorf("faultstore: read %v: %w", a, ErrCrashed)
	}
	if s.plan.ReadErrRate > 0 && draw(s.plan.Seed, uint64(op), 0xEAD) < s.plan.ReadErrRate {
		return 0, fmt.Errorf("faultstore: read %v: %w", a, ErrInjectedIO)
	}
	return s.inner.ReadChunk(a, dst)
}

// WriteChunk implements store.Backend. A write that fails at the crash
// point leaves the debris a killed writer would (an orphan partial temp
// file, via the backend's CrashWrite hook); an injected EIO with
// TornWrites leaves a torn chunk at the final location (TornWrite
// hook). Backends without the hooks fail with the old contents intact.
func (s *Store) WriteChunk(a store.Addr, data []byte) error {
	op, crash := s.begin()
	if crash {
		if s.plan.TornWrites {
			if cw, ok := s.inner.(crashWriter); ok {
				// Debris errors are secondary; the crash dominates.
				_ = cw.CrashWrite(a, data, s.keep(op, len(data)))
			}
		}
		return fmt.Errorf("faultstore: write %v: %w", a, ErrCrashed)
	}
	s.mu.Lock()
	budgetSpent := s.plan.NoSpaceAfterWrites > 0 && s.writes >= s.plan.NoSpaceAfterWrites
	s.mu.Unlock()
	if budgetSpent {
		return fmt.Errorf("faultstore: write %v: %w", a, ErrNoSpace)
	}
	if s.plan.WriteErrRate > 0 && draw(s.plan.Seed, uint64(op), 0x217E) < s.plan.WriteErrRate {
		if s.plan.TornWrites {
			if tw, ok := s.inner.(tornWriter); ok {
				_ = tw.TornWrite(a, data, s.keep(op, len(data)))
			}
		}
		return fmt.Errorf("faultstore: write %v: %w", a, ErrInjectedIO)
	}
	if err := s.inner.WriteChunk(a, data); err != nil {
		return err
	}
	s.mu.Lock()
	s.writes++
	s.mu.Unlock()
	return nil
}

// keep derives the deterministic prefix length a torn or crashed write
// retains: somewhere strictly inside the encoded chunk, so the debris
// is genuinely partial.
func (s *Store) keep(op, payloadLen int) int {
	total := store.HeaderSize + payloadLen
	if total <= 1 {
		return 0
	}
	return 1 + int(draw(s.plan.Seed, uint64(op), 0x7EA2)*float64(total-1))
}

// Delete implements store.Backend.
func (s *Store) Delete(a store.Addr) error {
	_, crash := s.begin()
	if crash {
		return fmt.Errorf("faultstore: delete %v: %w", a, ErrCrashed)
	}
	return s.inner.Delete(a)
}

// List implements store.Backend.
func (s *Store) List(disk int) ([]store.Addr, error) {
	_, crash := s.begin()
	if crash {
		return nil, fmt.Errorf("faultstore: list disk %d: %w", disk, ErrCrashed)
	}
	return s.inner.List(disk)
}

// Stat implements store.Backend.
func (s *Store) Stat(a store.Addr) (store.Info, error) {
	_, crash := s.begin()
	if crash {
		return store.Info{}, fmt.Errorf("faultstore: stat %v: %w", a, ErrCrashed)
	}
	return s.inner.Stat(a)
}

// draw hashes (seed, op, salt) into a uniform float in [0, 1) with a
// splitmix64 finalizer — the same deterministic coin internal/disk's
// SeededFaultPlan flips, keyed by operation index instead of address so
// a plan is reproducible across address orders too.
func draw(seed int64, op, salt uint64) float64 {
	x := uint64(seed)
	for _, v := range [...]uint64{op, salt} {
		x += v + 0x9E3779B97F4A7C15
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		x ^= x >> 31
	}
	return float64(x>>11) / (1 << 53)
}
