package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Chunk-file header codec. Every chunk written by Dir and Obj starts
// with this fixed-size header so the chunk is self-describing: a read
// after a misdirected write, a torn write or silent media corruption
// fails validation instead of returning wrong bytes.
//
// Layout (little-endian, HeaderSize bytes):
//
//	[0,4)   magic "FBFC"
//	[4,6)   version (currently 1)
//	[6,8)   reserved, must be zero
//	[8,12)  disk
//	[12,16) stripe
//	[16,20) chunk row
//	[20,24) payload length in bytes
//	[24,28) payload CRC32-Castagnoli
//	[28,32) header CRC32-Castagnoli over bytes [0,28)
//
// The header CRC makes every other field trustworthy before it is used:
// in particular the payload length is never believed from a header that
// fails its own checksum, so a bit-flipped length cannot cause an
// over-read. DecodeHeader itself never reads past HeaderSize.
const (
	// HeaderSize is the fixed encoded size of a chunk-file header.
	HeaderSize = 32
	// HeaderVersion is the codec version this build reads and writes.
	HeaderVersion = 1
	// MaxPayload bounds the payload length a header may declare — a
	// final guard against pathological (but checksum-valid) headers
	// causing huge allocations.
	MaxPayload = 1 << 30
)

var headerMagic = [4]byte{'F', 'B', 'F', 'C'}

// Codec-level errors, wrapped into CorruptError by the backends. Each
// is a distinct typed condition so tests (and the fuzzer) can assert
// the taxonomy instead of matching message strings.
var (
	// ErrTruncated reports input shorter than the structure it should
	// hold (header or declared payload).
	ErrTruncated = errors.New("truncated")
	// ErrBadMagic reports a header that does not start with "FBFC".
	ErrBadMagic = errors.New("bad magic")
	// ErrVersion reports a well-formed header of an unsupported codec
	// version.
	ErrVersion = errors.New("unsupported header version")
	// ErrChecksum reports a header or payload failing its CRC, or a
	// reserved field that is not zero.
	ErrChecksum = errors.New("checksum mismatch")
	// ErrAddrMismatch reports a valid chunk stored under the wrong
	// address — a misdirected write or renamed file.
	ErrAddrMismatch = errors.New("address mismatch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the decoded chunk-file header.
type Header struct {
	Version    uint16
	Addr       Addr
	Length     int    // payload bytes
	PayloadCRC uint32 // CRC32-Castagnoli of the payload
}

// EncodeHeader appends the encoded header for a payload at addr to dst
// and returns the extended slice.
func EncodeHeader(dst []byte, addr Addr, payload []byte) []byte {
	var b [HeaderSize]byte
	copy(b[0:4], headerMagic[:])
	binary.LittleEndian.PutUint16(b[4:6], HeaderVersion)
	binary.LittleEndian.PutUint32(b[8:12], uint32(addr.Disk))
	binary.LittleEndian.PutUint32(b[12:16], uint32(addr.Stripe))
	binary.LittleEndian.PutUint32(b[16:20], uint32(addr.Chunk))
	binary.LittleEndian.PutUint32(b[20:24], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[24:28], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(b[28:32], crc32.Checksum(b[:28], castagnoli))
	return append(dst, b[:]...)
}

// DecodeHeader parses and validates a chunk-file header from the start
// of b. It reads at most HeaderSize bytes and returns a typed error
// (ErrTruncated, ErrBadMagic, ErrChecksum, ErrVersion) on any invalid
// input — never a panic.
func DecodeHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("%w: header is %d bytes, want %d", ErrTruncated, len(b), HeaderSize)
	}
	b = b[:HeaderSize]
	if [4]byte(b[0:4]) != headerMagic {
		return Header{}, fmt.Errorf("%w: %q", ErrBadMagic, b[0:4])
	}
	if got, want := binary.LittleEndian.Uint32(b[28:32]), crc32.Checksum(b[:28], castagnoli); got != want {
		return Header{}, fmt.Errorf("%w: header CRC %08x, computed %08x", ErrChecksum, got, want)
	}
	// Past the CRC every field is authentic; version and reserved
	// checks now distinguish skew from corruption.
	h := Header{
		Version: binary.LittleEndian.Uint16(b[4:6]),
		Addr: Addr{
			Disk:   int(binary.LittleEndian.Uint32(b[8:12])),
			Stripe: int(binary.LittleEndian.Uint32(b[12:16])),
			Chunk:  int(binary.LittleEndian.Uint32(b[16:20])),
		},
		Length:     int(binary.LittleEndian.Uint32(b[20:24])),
		PayloadCRC: binary.LittleEndian.Uint32(b[24:28]),
	}
	if h.Version != HeaderVersion {
		return Header{}, fmt.Errorf("%w: %d (this build reads %d)", ErrVersion, h.Version, HeaderVersion)
	}
	if reserved := binary.LittleEndian.Uint16(b[6:8]); reserved != 0 {
		return Header{}, fmt.Errorf("%w: reserved field %#x is not zero", ErrChecksum, reserved)
	}
	if h.Length > MaxPayload {
		return Header{}, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrChecksum, h.Length, MaxPayload)
	}
	return h, nil
}

// EncodeChunk encodes a complete chunk file (header + payload) for
// addr.
func EncodeChunk(addr Addr, payload []byte) []byte {
	out := make([]byte, 0, HeaderSize+len(payload))
	out = EncodeHeader(out, addr, payload)
	return append(out, payload...)
}

// DecodeChunk parses a complete chunk file, validating the header, the
// exact framing (no missing or trailing payload bytes) and the payload
// CRC, and checking the stored address against want. The returned
// payload aliases b. Like DecodeHeader it returns typed errors and
// never over-reads.
func DecodeChunk(b []byte, want Addr) (Header, []byte, error) {
	h, err := DecodeHeader(b)
	if err != nil {
		return Header{}, nil, err
	}
	if got := len(b) - HeaderSize; got != h.Length {
		return Header{}, nil, fmt.Errorf("%w: payload is %d bytes, header declares %d", ErrTruncated, got, h.Length)
	}
	payload := b[HeaderSize : HeaderSize+h.Length]
	if got := crc32.Checksum(payload, castagnoli); got != h.PayloadCRC {
		return Header{}, nil, fmt.Errorf("%w: payload CRC %08x, computed %08x", ErrChecksum, h.PayloadCRC, got)
	}
	if h.Addr != want {
		return Header{}, nil, fmt.Errorf("%w: chunk stored as %v, addressed as %v", ErrAddrMismatch, h.Addr, want)
	}
	return h, payload, nil
}

// ArrayManifest describes the array a store holds: which erasure code
// its chunks encode and the array dimensions. It is written by `fbfctl
// init` at the store root and read back by `status` and `rebuild`, so
// operator commands need no geometry flags.
type ArrayManifest struct {
	Version   int    `json:"version"`
	Code      string `json:"code"` // code family name ("star", "tip", ...)
	P         int    `json:"p"`
	Disks     int    `json:"disks"`
	Rows      int    `json:"rows"`
	Stripes   int    `json:"stripes"`
	ChunkSize int    `json:"chunk_size"`
}

// ManifestVersion is the array-manifest schema version this build
// reads and writes.
const ManifestVersion = 1

// ManifestName is the array manifest's file/object name at the store
// root.
const ManifestName = "manifest.json"

// Validate checks the manifest's invariants (schema version and
// positive dimensions). Code-name resolution is the caller's concern —
// the store is geometry-agnostic.
func (m *ArrayManifest) Validate() error {
	// Zero means "current": manifests built in code need not repeat the
	// version; anything decoded from disk carries an explicit one.
	if m.Version != 0 && m.Version != ManifestVersion {
		return fmt.Errorf("store: manifest %w: %d (this build reads %d)", ErrVersion, m.Version, ManifestVersion)
	}
	if m.Code == "" {
		return fmt.Errorf("store: manifest has no code name")
	}
	if m.P < 2 || m.Disks <= 0 || m.Rows <= 0 || m.Stripes <= 0 || m.ChunkSize <= 0 {
		return fmt.Errorf("store: manifest has non-positive dimensions (p=%d disks=%d rows=%d stripes=%d chunk=%d)",
			m.P, m.Disks, m.Rows, m.Stripes, m.ChunkSize)
	}
	return nil
}

// Chunks returns the total number of chunks a clean array holds.
func (m *ArrayManifest) Chunks() int { return m.Disks * m.Rows * m.Stripes }

// WriteManifest writes the array manifest to dir/manifest.json.
func WriteManifest(dir string, m ArrayManifest) error {
	m.Version = ManifestVersion
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), append(data, '\n'), 0o644)
}

// ReadManifest reads and validates dir/manifest.json.
func ReadManifest(dir string) (ArrayManifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return ArrayManifest{}, fmt.Errorf("store: reading array manifest: %w", err)
	}
	var m ArrayManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return ArrayManifest{}, fmt.Errorf("store: parsing array manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return ArrayManifest{}, err
	}
	return m, nil
}
