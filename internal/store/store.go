// Package store is the data plane under the rebuild service: a
// pluggable chunk store addressed by (disk, stripe, chunk) holding real
// bytes, where the simulator's disk.Array only counts I/O.
//
// Three backends implement the Backend contract: Dir (one directory per
// disk, one self-describing file per chunk), Mem (an in-memory map for
// tests) and Obj (an object-store-style backend over a flat key
// namespace that shares Dir's layout and chunk codec). The contract is
// pinned by a shared conformance suite (conformance_test.go) that every
// backend must pass, mirroring the cache Policy contract test.
//
// On-media format: every chunk file/object starts with a fixed-size
// versioned header (magic, version, address, payload length, payload
// CRC, header CRC — see manifest.go) so a chunk is self-describing and
// misdirected or torn writes are detected on read. The store root
// additionally carries an array manifest (manifest.json) describing the
// geometry the chunks encode.
package store

import (
	"errors"
	"fmt"
)

// Addr identifies one chunk on the array: the disk (stripe column) it
// lives on, the stripe index, and the chunk row within the stripe.
type Addr struct {
	Disk   int
	Stripe int
	Chunk  int
}

// String renders the address compactly as "d<disk>/s<stripe>/c<chunk>".
func (a Addr) String() string { return fmt.Sprintf("d%d/s%d/c%d", a.Disk, a.Stripe, a.Chunk) }

// Less orders addresses by (Disk, Stripe, Chunk) — the order List
// returns chunks in.
func (a Addr) Less(o Addr) bool {
	if a.Disk != o.Disk {
		return a.Disk < o.Disk
	}
	if a.Stripe != o.Stripe {
		return a.Stripe < o.Stripe
	}
	return a.Chunk < o.Chunk
}

// Valid reports whether every coordinate is non-negative.
func (a Addr) Valid() bool { return a.Disk >= 0 && a.Stripe >= 0 && a.Chunk >= 0 }

// Info describes one stored chunk.
type Info struct {
	Addr Addr
	Size int // payload bytes
}

// Backend is a pluggable chunk store. Implementations must be safe for
// concurrent readers; concurrent writers to distinct addresses must not
// interfere. The conformance suite in conformance_test.go is the
// executable contract.
type Backend interface {
	// ReadChunk reads the payload stored at a into dst and returns the
	// payload length. dst must be at least Stat(a).Size bytes (the
	// store's chunk size in practice); a shorter dst is an error. A
	// missing chunk reads as ErrNotFound; a chunk whose on-media codec
	// fails validation reads as ErrCorrupt.
	ReadChunk(a Addr, dst []byte) (int, error)
	// WriteChunk stores the payload at a, replacing any previous
	// contents. Backends with an on-media codec write atomically enough
	// that a reader sees either the old or the new chunk, never a blend.
	WriteChunk(a Addr, data []byte) error
	// Delete removes the chunk at a; deleting a missing chunk is
	// ErrNotFound.
	Delete(a Addr) error
	// List returns the addresses present on one disk in ascending
	// (Stripe, Chunk) order. A disk with no chunks (including one whose
	// directory was destroyed) lists as empty, not as an error.
	List(disk int) ([]Addr, error)
	// Stat describes the chunk at a without reading its payload, but
	// validating what can be validated cheaply (header codec and stored
	// size for Dir/Obj). Missing chunks stat as ErrNotFound; chunks with
	// an invalid header or a size mismatch as ErrCorrupt.
	Stat(a Addr) (Info, error)
}

// Error taxonomy: the two sentinel conditions every backend maps its
// failures onto, matchable with errors.Is. Concrete errors carry the
// address (and for corruption, the codec-level cause) via the
// NotFoundError / CorruptError types.
var (
	// ErrNotFound reports a chunk absent from the store.
	ErrNotFound = errors.New("chunk not found")
	// ErrCorrupt reports a chunk present but failing on-media
	// validation (bad header, checksum mismatch, truncated payload).
	ErrCorrupt = errors.New("chunk corrupt")
)

// NotFoundError is the concrete ErrNotFound, naming the address.
type NotFoundError struct {
	Addr Addr
}

func (e *NotFoundError) Error() string { return fmt.Sprintf("store: %v: chunk not found", e.Addr) }

// Is matches ErrNotFound.
func (e *NotFoundError) Is(target error) bool { return target == ErrNotFound }

// CorruptError is the concrete ErrCorrupt, naming the address and
// wrapping the codec error that failed (ErrTruncated, ErrBadMagic,
// ErrVersion, ErrChecksum or ErrAddrMismatch).
type CorruptError struct {
	Addr Addr
	Err  error
}

func (e *CorruptError) Error() string { return fmt.Sprintf("store: %v: corrupt chunk: %v", e.Addr, e.Err) }

// Unwrap exposes the codec-level cause.
func (e *CorruptError) Unwrap() error { return e.Err }

// Is matches ErrCorrupt.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// IsNotFound reports whether err denotes a missing chunk.
func IsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }

// IsCorrupt reports whether err denotes a corrupt chunk.
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }
