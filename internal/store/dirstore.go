package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Layout naming shared by Dir and Obj: one "disk-NNN" namespace per
// disk, one "sSSSSSSSS-cCCC.chk" entry per chunk. The zero-padding
// keeps lexicographic order equal to numeric order, so a plain
// directory or key listing is already in List's contract order.

// DiskDirName returns the directory/prefix name for one disk.
func DiskDirName(disk int) string { return fmt.Sprintf("disk-%03d", disk) }

// chunkFileName returns the file/object name for one chunk within its
// disk directory.
func chunkFileName(a Addr) string { return fmt.Sprintf("s%08d-c%03d.chk", a.Stripe, a.Chunk) }

// ChunkPath returns the chunk's path relative to the store root —
// dirstore's on-disk layout and the object backend's key space share
// it. Exposed for tooling and tests that reach past the Backend
// interface (fault injection, corruption drills).
func ChunkPath(a Addr) string { return DiskDirName(a.Disk) + "/" + chunkFileName(a) }

// parseChunkFileName inverts chunkFileName, rejecting anything that is
// not exactly a chunk file (so stray files in a disk directory are
// ignored rather than misread).
func parseChunkFileName(disk int, name string) (Addr, bool) {
	rest, ok := strings.CutSuffix(name, ".chk")
	if !ok {
		return Addr{}, false
	}
	s, c, ok := strings.Cut(rest, "-")
	if !ok || len(s) < 2 || len(c) < 2 || s[0] != 's' || c[0] != 'c' {
		return Addr{}, false
	}
	stripe, ok := parseDigits(s[1:])
	if !ok {
		return Addr{}, false
	}
	chunkRow, ok := parseDigits(c[1:])
	if !ok {
		return Addr{}, false
	}
	return Addr{Disk: disk, Stripe: stripe, Chunk: chunkRow}, true
}

// parseDigits parses a non-negative decimal integer, rejecting signs,
// spaces and any other syntax strconv would tolerate.
func parseDigits(s string) (int, bool) {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Dir is the directory-backed chunk store: one directory per disk under
// a root, one self-describing chunk file per chunk (header + payload,
// see manifest.go). Writes go through a temp file and rename, so a
// reader sees either the old chunk or the new one, and by default the
// temp file is fsynced before the rename and the parent directory after
// it, so a committed chunk survives a crash or power cut.
//
// Dir methods are safe for concurrent use; concurrency control is the
// filesystem's.
type Dir struct {
	root   string
	noSync bool
}

// DirOptions tunes a directory store.
type DirOptions struct {
	// NoSync disables the fsync-before-rename and parent-directory
	// fsync on WriteChunk — the O_SYNC-style durability switch.
	// Benchmarks and throwaway test stores opt out; anything holding
	// real data should not: without the syncs a crash can lose a
	// renamed chunk or leave a torn one.
	NoSync bool
}

// OpenDir opens (creating if necessary) a directory store rooted at
// root, with durable writes. Orphaned temp files from writes
// interrupted by a crash are swept on open.
func OpenDir(root string) (*Dir, error) { return OpenDirWith(root, DirOptions{}) }

// OpenDirWith is OpenDir with explicit options.
func OpenDirWith(root string, opts DirOptions) (*Dir, error) {
	if root == "" {
		return nil, fmt.Errorf("store: empty dirstore root")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating root: %w", err)
	}
	d := &Dir{root: root, noSync: opts.NoSync}
	if err := d.sweepOrphans(); err != nil {
		return nil, err
	}
	return d, nil
}

// tmpChunkPrefix names in-flight chunk temp files. A crash between
// CreateTemp and the rename strands one; sweepOrphans collects them on
// the next open, so the debris of a killed writer never accumulates and
// never shadows a real chunk (the parser ignores non-.chk names
// anyway).
const tmpChunkPrefix = ".tmp-chunk-"

// sweepOrphans removes stranded temp chunk files from every disk
// directory — the on-disk state a writer killed mid-WriteChunk leaves
// behind.
func (d *Dir) sweepOrphans() error {
	disks, err := os.ReadDir(d.root)
	if err != nil {
		return fmt.Errorf("store: sweeping orphans: %w", err)
	}
	for _, disk := range disks {
		if !disk.IsDir() || !strings.HasPrefix(disk.Name(), "disk-") {
			continue
		}
		dir := filepath.Join(d.root, disk.Name())
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("store: sweeping orphans: %w", err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasPrefix(e.Name(), tmpChunkPrefix) {
				continue
			}
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("store: sweeping orphan %s: %w", e.Name(), err)
			}
		}
	}
	return nil
}

// Root returns the store's root directory.
func (d *Dir) Root() string { return d.root }

func (d *Dir) chunkPath(a Addr) string {
	return filepath.Join(d.root, DiskDirName(a.Disk), chunkFileName(a))
}

// ReadChunk implements Backend.
func (d *Dir) ReadChunk(a Addr, dst []byte) (int, error) {
	if !a.Valid() {
		return 0, &NotFoundError{Addr: a}
	}
	data, err := os.ReadFile(d.chunkPath(a))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, &NotFoundError{Addr: a}
		}
		return 0, fmt.Errorf("store: reading %v: %w", a, err)
	}
	_, payload, err := DecodeChunk(data, a)
	if err != nil {
		return 0, &CorruptError{Addr: a, Err: err}
	}
	if len(dst) < len(payload) {
		return 0, fmt.Errorf("store: %v: destination buffer %d bytes, chunk payload %d", a, len(dst), len(payload))
	}
	return copy(dst, payload), nil
}

// WriteChunk implements Backend. The durable sequence is write temp →
// fsync temp → rename → fsync parent directory: the first fsync
// guarantees the renamed file's bytes are on media (a rename alone can
// commit the name before the data, leaving a torn chunk after a crash),
// the second makes the rename itself survive. DirOptions.NoSync skips
// both fsyncs.
func (d *Dir) WriteChunk(a Addr, data []byte) error {
	if !a.Valid() {
		return fmt.Errorf("store: invalid address %v", a)
	}
	dir := filepath.Join(d.root, DiskDirName(a.Disk))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: creating disk directory: %w", err)
	}
	tmp, err := os.CreateTemp(dir, tmpChunkPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: writing %v: %w", a, err)
	}
	encoded := EncodeChunk(a, data)
	if _, err := tmp.Write(encoded); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %v: %w", a, err)
	}
	if !d.noSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("store: syncing %v: %w", a, err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %v: %w", a, err)
	}
	if err := os.Rename(tmp.Name(), d.chunkPath(a)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %v: %w", a, err)
	}
	if !d.noSync {
		if err := syncDir(dir); err != nil {
			return fmt.Errorf("store: syncing %v: %w", a, err)
		}
	}
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// CrashWrite materializes the on-disk debris of a WriteChunk killed
// mid-flight: the first keep bytes of the encoded chunk land in an
// orphan temp file and the final path is never touched. Fault drills
// (internal/store/faultstore) use it to prove that a crashed write is
// invisible after reopen — the old chunk (or its absence) is what
// readers see, and sweepOrphans collects the temp file.
func (d *Dir) CrashWrite(a Addr, data []byte, keep int) error {
	if !a.Valid() {
		return fmt.Errorf("store: invalid address %v", a)
	}
	dir := filepath.Join(d.root, DiskDirName(a.Disk))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: creating disk directory: %w", err)
	}
	tmp, err := os.CreateTemp(dir, tmpChunkPrefix+"*")
	if err != nil {
		return err
	}
	encoded := EncodeChunk(a, data)
	keep = min(max(keep, 0), len(encoded))
	_, err = tmp.Write(encoded[:keep])
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	return err
}

// TornWrite materializes a torn chunk at the final path: the first keep
// bytes of the encoded chunk, in place, with no temp file and no
// atomicity — the state a non-atomic overwrite interrupted by a crash
// leaves behind. The codec guarantees such a chunk reads as ErrCorrupt,
// never as wrong bytes; fault drills depend on that.
func (d *Dir) TornWrite(a Addr, data []byte, keep int) error {
	if !a.Valid() {
		return fmt.Errorf("store: invalid address %v", a)
	}
	dir := filepath.Join(d.root, DiskDirName(a.Disk))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: creating disk directory: %w", err)
	}
	encoded := EncodeChunk(a, data)
	keep = min(max(keep, 0), len(encoded))
	return os.WriteFile(d.chunkPath(a), encoded[:keep], 0o644)
}

// Delete implements Backend.
func (d *Dir) Delete(a Addr) error {
	if !a.Valid() {
		return &NotFoundError{Addr: a}
	}
	err := os.Remove(d.chunkPath(a))
	if errors.Is(err, fs.ErrNotExist) {
		return &NotFoundError{Addr: a}
	}
	return err
}

// List implements Backend. A missing disk directory (the "disk died"
// state the rebuild service scans for) lists as empty.
func (d *Dir) List(disk int) ([]Addr, error) {
	entries, err := os.ReadDir(filepath.Join(d.root, DiskDirName(disk)))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: listing disk %d: %w", disk, err)
	}
	var out []Addr
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if a, ok := parseChunkFileName(disk, e.Name()); ok {
			out = append(out, a)
		}
	}
	// ReadDir sorts by name and the zero-padded names sort numerically,
	// but re-sorting keeps the contract independent of the encoding.
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// Stat implements Backend: it reads and validates only the header, plus
// the file size against the header's declared payload length, so a
// truncated or grown chunk stats as corrupt without reading its
// payload. (Payload bit-rot needs a full read — the rebuild service's
// scrub pass.)
func (d *Dir) Stat(a Addr) (Info, error) {
	if !a.Valid() {
		return Info{}, &NotFoundError{Addr: a}
	}
	f, err := os.Open(d.chunkPath(a))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Info{}, &NotFoundError{Addr: a}
		}
		return Info{}, fmt.Errorf("store: stat %v: %w", a, err)
	}
	defer f.Close()
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return Info{}, &CorruptError{Addr: a, Err: fmt.Errorf("%w: header is shorter than %d bytes", ErrTruncated, HeaderSize)}
	}
	h, err := DecodeHeader(hdr[:])
	if err != nil {
		return Info{}, &CorruptError{Addr: a, Err: err}
	}
	if h.Addr != a {
		return Info{}, &CorruptError{Addr: a, Err: fmt.Errorf("%w: chunk stored as %v, addressed as %v", ErrAddrMismatch, h.Addr, a)}
	}
	fi, err := f.Stat()
	if err != nil {
		return Info{}, fmt.Errorf("store: stat %v: %w", a, err)
	}
	if fi.Size() != int64(HeaderSize+h.Length) {
		return Info{}, &CorruptError{Addr: a, Err: fmt.Errorf("%w: file is %d bytes, header declares %d", ErrTruncated, fi.Size(), HeaderSize+h.Length)}
	}
	return Info{Addr: a, Size: h.Length}, nil
}
