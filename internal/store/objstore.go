package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ObjectAPI is the minimal object-store client surface the Obj backend
// drives — the subset of an S3-style SDK the chunk store needs. Keys
// are flat strings; List returns the keys under a prefix in ascending
// order. A real cloud client slots in here; MemObjects is the built-in
// stub used until one is wired up (no new dependencies).
type ObjectAPI interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	List(prefix string) ([]string, error)
}

// ErrNoObject is the sentinel an ObjectAPI's Get/Delete return for a
// missing key; Obj maps it onto the store error taxonomy.
var ErrNoObject = errors.New("object not found")

// Obj is the object-store-style Backend: chunks live under flat keys
// "disk-NNN/sSSSSSSSS-cCCC.chk" — the dirstore layout with "/" as the
// separator — and carry the same self-describing header codec, so a
// dirstore tree uploaded object-by-object is a valid object store and
// vice versa.
type Obj struct {
	api ObjectAPI
}

// NewObj wraps an ObjectAPI into a chunk store Backend.
func NewObj(api ObjectAPI) *Obj { return &Obj{api: api} }

func objKey(a Addr) string { return DiskDirName(a.Disk) + "/" + chunkFileName(a) }

// ReadChunk implements Backend.
func (o *Obj) ReadChunk(a Addr, dst []byte) (int, error) {
	if !a.Valid() {
		return 0, &NotFoundError{Addr: a}
	}
	data, err := o.api.Get(objKey(a))
	if err != nil {
		if errors.Is(err, ErrNoObject) {
			return 0, &NotFoundError{Addr: a}
		}
		return 0, fmt.Errorf("store: reading %v: %w", a, err)
	}
	_, payload, err := DecodeChunk(data, a)
	if err != nil {
		return 0, &CorruptError{Addr: a, Err: err}
	}
	if len(dst) < len(payload) {
		return 0, fmt.Errorf("store: %v: destination buffer %d bytes, chunk payload %d", a, len(dst), len(payload))
	}
	return copy(dst, payload), nil
}

// WriteChunk implements Backend.
func (o *Obj) WriteChunk(a Addr, data []byte) error {
	if !a.Valid() {
		return fmt.Errorf("store: invalid address %v", a)
	}
	return o.api.Put(objKey(a), EncodeChunk(a, data))
}

// TornWrite materializes a torn object under a's key: the first keep
// bytes of the encoded chunk. Real object stores commit a PUT
// atomically, so this models a misbehaving or non-S3-semantics store;
// the codec guarantees the torn object reads as ErrCorrupt. Fault
// drills (internal/store/faultstore) use it.
func (o *Obj) TornWrite(a Addr, data []byte, keep int) error {
	if !a.Valid() {
		return fmt.Errorf("store: invalid address %v", a)
	}
	encoded := EncodeChunk(a, data)
	keep = min(max(keep, 0), len(encoded))
	return o.api.Put(objKey(a), encoded[:keep])
}

// Delete implements Backend.
func (o *Obj) Delete(a Addr) error {
	if !a.Valid() {
		return &NotFoundError{Addr: a}
	}
	err := o.api.Delete(objKey(a))
	if errors.Is(err, ErrNoObject) {
		return &NotFoundError{Addr: a}
	}
	return err
}

// List implements Backend.
func (o *Obj) List(disk int) ([]Addr, error) {
	prefix := DiskDirName(disk) + "/"
	keys, err := o.api.List(prefix)
	if err != nil {
		return nil, fmt.Errorf("store: listing disk %d: %w", disk, err)
	}
	var out []Addr
	for _, k := range keys {
		name, ok := strings.CutPrefix(k, prefix)
		if !ok || strings.Contains(name, "/") {
			continue
		}
		if a, ok := parseChunkFileName(disk, name); ok {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// Stat implements Backend. Object stores have no cheap partial read, so
// Stat fetches the object and validates the full codec — stricter than
// Dir.Stat, which skips the payload CRC.
func (o *Obj) Stat(a Addr) (Info, error) {
	if !a.Valid() {
		return Info{}, &NotFoundError{Addr: a}
	}
	data, err := o.api.Get(objKey(a))
	if err != nil {
		if errors.Is(err, ErrNoObject) {
			return Info{}, &NotFoundError{Addr: a}
		}
		return Info{}, fmt.Errorf("store: stat %v: %w", a, err)
	}
	h, _, err := DecodeChunk(data, a)
	if err != nil {
		return Info{}, &CorruptError{Addr: a, Err: err}
	}
	return Info{Addr: a, Size: h.Length}, nil
}

// MemObjects is the in-memory ObjectAPI stub: a mutex-guarded map of
// object copies, enough to run the Obj backend through the conformance
// suite and the rebuild service without any cloud dependency.
type MemObjects struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemObjects returns an empty in-memory object store.
func NewMemObjects() *MemObjects { return &MemObjects{m: make(map[string][]byte)} }

// Put implements ObjectAPI.
func (s *MemObjects) Put(key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	return nil
}

// Get implements ObjectAPI.
func (s *MemObjects) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.m[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoObject, key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Delete implements ObjectAPI.
func (s *MemObjects) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok {
		return fmt.Errorf("%w: %q", ErrNoObject, key)
	}
	delete(s.m, key)
	return nil
}

// List implements ObjectAPI.
func (s *MemObjects) List(prefix string) ([]string, error) {
	s.mu.RLock()
	var out []string
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}
