package store

import (
	"testing"
	"time"
)

// fakeClock drives a Throttle deterministically: sleep advances the
// clock instead of blocking, and every sleep is recorded.
type fakeClock struct {
	t      time.Time
	sleeps []time.Duration
}

func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) sleep(d time.Duration) {
	c.sleeps = append(c.sleeps, d)
	c.t = c.t.Add(d)
}

func throttled(t *testing.T, bps int64) (*Throttle, *Mem, *fakeClock) {
	t.Helper()
	mem := NewMem()
	th, err := NewThrottle(mem, bps)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	th.now, th.sleep = clk.now, clk.sleep
	return th, mem, clk
}

// TestThrottlePacesWrites pins the token-bucket arithmetic: at 1000 B/s
// with a 1000-byte burst, four 1000-byte writes cost three seconds of
// sleep (the first rides the initial burst).
func TestThrottlePacesWrites(t *testing.T) {
	th, _, clk := throttled(t, 1000)
	data := make([]byte, 1000)
	for i := 0; i < 4; i++ {
		if err := th.WriteChunk(Addr{Disk: 0, Stripe: i, Chunk: 0}, data); err != nil {
			t.Fatal(err)
		}
	}
	var total time.Duration
	for _, d := range clk.sleeps {
		total += d
	}
	if total < 2900*time.Millisecond || total > 3100*time.Millisecond {
		t.Fatalf("4x1000B at 1000B/s slept %v, want ~3s", total)
	}
}

// TestThrottleChargesReads pins that reads are charged by bytes
// actually returned.
func TestThrottleChargesReads(t *testing.T) {
	th, mem, clk := throttled(t, 100)
	a := Addr{Disk: 0, Stripe: 0, Chunk: 0}
	if err := mem.WriteChunk(a, make([]byte, 300)); err != nil { // direct: uncharged
		t.Fatal(err)
	}
	dst := make([]byte, 300)
	if _, err := th.ReadChunk(a, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := th.ReadChunk(a, dst); err != nil {
		t.Fatal(err)
	}
	// First read overdraws the 100-byte burst by 200, second adds 300.
	var total time.Duration
	for _, d := range clk.sleeps {
		total += d
	}
	if total < 4900*time.Millisecond || total > 5100*time.Millisecond {
		t.Fatalf("600B at 100B/s slept %v, want ~5s", total)
	}
}

// TestThrottleMetadataIsFree pins that Stat/List/Delete never sleep.
func TestThrottleMetadataIsFree(t *testing.T) {
	th, mem, clk := throttled(t, 1)
	a := Addr{Disk: 2, Stripe: 1, Chunk: 0}
	if err := mem.WriteChunk(a, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Stat(a); err != nil {
		t.Fatal(err)
	}
	if _, err := th.List(a.Disk); err != nil {
		t.Fatal(err)
	}
	if err := th.Delete(a); err != nil {
		t.Fatal(err)
	}
	if len(clk.sleeps) != 0 {
		t.Fatalf("metadata ops slept: %v", clk.sleeps)
	}
}

// TestThrottleValidation rejects nil backends and non-positive rates.
func TestThrottleValidation(t *testing.T) {
	if _, err := NewThrottle(nil, 100); err == nil {
		t.Error("nil backend accepted")
	}
	for _, rate := range []int64{0, -5} {
		if _, err := NewThrottle(NewMem(), rate); err == nil {
			t.Errorf("rate %d accepted", rate)
		}
	}
}

// TestThrottleRefills pins that idle time refills the bucket (capped at
// one second of budget), so a paced workload at or below the rate never
// sleeps.
func TestThrottleRefills(t *testing.T) {
	th, _, clk := throttled(t, 1000)
	data := make([]byte, 500)
	for i := 0; i < 5; i++ {
		if err := th.WriteChunk(Addr{Disk: 0, Stripe: i, Chunk: 0}, data); err != nil {
			t.Fatal(err)
		}
		clk.t = clk.t.Add(time.Second) // idle long enough to refill
	}
	if len(clk.sleeps) != 0 {
		t.Fatalf("paced workload below the rate slept: %v", clk.sleeps)
	}
}
