package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzManifest fuzzes the chunk-file codec end to end: arbitrary bytes
// fed to DecodeHeader/DecodeChunk must either decode to a header whose
// canonical re-encoding reproduces the input bit-for-bit, or fail with
// one of the typed codec errors — never panic, never over-read, never
// return an out-of-bounds payload. The checked-in corpus
// (testdata/fuzz/FuzzManifest) pins a valid chunk plus the truncation,
// bit-flip and version-skew shapes as replayable regression cases.
func FuzzManifest(f *testing.F) {
	a := Addr{Disk: 2, Stripe: 7, Chunk: 1}
	valid := EncodeChunk(a, payload(a, 48))
	f.Add(valid)
	f.Add(valid[:HeaderSize])              // header only, zero... truncated payload
	f.Add(valid[:HeaderSize-5])            // truncated header
	f.Add(append([]byte("FBFX"), valid[4:]...)) // bad magic
	skew := append([]byte(nil), valid...)
	skew[4] = 3 // version 3
	resealHeader(skew)
	f.Add(skew)
	flip := append([]byte(nil), valid...)
	flip[HeaderSize+20] ^= 0x40
	f.Add(flip)
	f.Add([]byte{})
	f.Add(EncodeChunk(Addr{}, nil))

	typed := []error{ErrTruncated, ErrBadMagic, ErrVersion, ErrChecksum, ErrAddrMismatch}
	isTyped := func(err error) bool {
		for _, want := range typed {
			if errors.Is(err, want) {
				return true
			}
		}
		return false
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHeader(data)
		if err != nil {
			if !isTyped(err) {
				t.Fatalf("DecodeHeader returned an untyped error: %v", err)
			}
			// A header the codec rejects must make the full decode fail
			// identically — no path may believe an invalid header.
			if _, _, cerr := DecodeChunk(data, Addr{}); cerr == nil {
				t.Fatal("DecodeChunk accepted input DecodeHeader rejected")
			}
			return
		}
		if h.Version != HeaderVersion {
			t.Fatalf("decoded unsupported version %d without error", h.Version)
		}
		if h.Length < 0 || h.Length > MaxPayload {
			t.Fatalf("decoded out-of-bounds payload length %d", h.Length)
		}
		_, p, err := DecodeChunk(data, h.Addr)
		if err != nil {
			if !isTyped(err) {
				t.Fatalf("DecodeChunk returned an untyped error: %v", err)
			}
			return
		}
		if len(p) != h.Length {
			t.Fatalf("payload length %d, header declares %d", len(p), h.Length)
		}
		// The codec is canonical: a successful decode re-encodes to the
		// exact input, so no two distinct byte strings decode equal.
		if !bytes.Equal(EncodeChunk(h.Addr, p), data) {
			t.Fatal("decode/encode round trip is not the identity")
		}
		// Misaddressed reads must be rejected.
		if _, _, err := DecodeChunk(data, Addr{Disk: h.Addr.Disk + 1}); !errors.Is(err, ErrAddrMismatch) {
			t.Fatalf("wrong-address decode = %v, want ErrAddrMismatch", err)
		}
	})
}
