package store

import (
	"fmt"
	"sync"
	"time"
)

// Throttle wraps a Backend with a token-bucket byte budget: chunk reads
// and writes consume tokens at payload size, the bucket refills at
// BytesPerSec, and an operation that overdraws the bucket sleeps until
// the deficit is repaid. Metadata operations (Stat, List, Delete) are
// free — the budget models data bandwidth, the resource a rebuild
// steals from foreground traffic.
//
// The bucket holds at most one second of budget, so an idle throttle
// cannot bank an unbounded burst; a single chunk larger than the burst
// still proceeds (the bucket goes negative and the next operation pays
// the debt). Safe for concurrent use.
type Throttle struct {
	inner Backend
	rate  float64 // bytes per second

	mu     sync.Mutex
	tokens float64
	last   time.Time
	waits  uint64        // operations that slept for budget
	waited time.Duration // total time slept

	// Test seams; real use keeps the defaults.
	now   func() time.Time
	sleep func(time.Duration)
}

// NewThrottle wraps inner with a bytesPerSec data-bandwidth budget.
// bytesPerSec must be positive — callers express "unlimited" by not
// wrapping.
func NewThrottle(inner Backend, bytesPerSec int64) (*Throttle, error) {
	if inner == nil {
		return nil, fmt.Errorf("store: throttle over nil backend")
	}
	if bytesPerSec <= 0 {
		return nil, fmt.Errorf("store: throttle rate %d B/s is not positive", bytesPerSec)
	}
	return &Throttle{
		inner:  inner,
		rate:   float64(bytesPerSec),
		tokens: float64(bytesPerSec), // start with a full one-second burst
		now:    time.Now,
		sleep:  time.Sleep,
	}, nil
}

// take withdraws n bytes of budget, sleeping while the bucket is in
// deficit.
func (t *Throttle) take(n int) {
	if n <= 0 {
		return
	}
	t.mu.Lock()
	now := t.now()
	if !t.last.IsZero() {
		t.tokens += now.Sub(t.last).Seconds() * t.rate
		if t.tokens > t.rate {
			t.tokens = t.rate
		}
	}
	t.last = now
	t.tokens -= float64(n)
	var wait time.Duration
	if t.tokens < 0 {
		wait = time.Duration(-t.tokens / t.rate * float64(time.Second))
	}
	if wait > 0 {
		t.waits++
		t.waited += wait
	}
	t.mu.Unlock()
	if wait > 0 {
		t.sleep(wait)
	}
}

// ThrottleStats is a Throttle's budget state at a point in time.
type ThrottleStats struct {
	Rate   float64       // configured bytes per second
	Tokens float64       // current bucket level (negative while in debt)
	Waits  uint64        // operations that slept for budget
	Waited time.Duration // total time slept
}

// Stats snapshots the throttle's budget state.
func (t *Throttle) Stats() ThrottleStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return ThrottleStats{Rate: t.rate, Tokens: t.tokens, Waits: t.waits, Waited: t.waited}
}

// ReadChunk implements Backend, charging the payload size after the
// read (the size is not known up front).
func (t *Throttle) ReadChunk(a Addr, dst []byte) (int, error) {
	n, err := t.inner.ReadChunk(a, dst)
	t.take(n)
	return n, err
}

// WriteChunk implements Backend, charging the payload size.
func (t *Throttle) WriteChunk(a Addr, data []byte) error {
	t.take(len(data))
	return t.inner.WriteChunk(a, data)
}

// Delete implements Backend (uncharged).
func (t *Throttle) Delete(a Addr) error { return t.inner.Delete(a) }

// List implements Backend (uncharged).
func (t *Throttle) List(disk int) ([]Addr, error) { return t.inner.List(disk) }

// Stat implements Backend (uncharged).
func (t *Throttle) Stat(a Addr) (Info, error) { return t.inner.Stat(a) }
