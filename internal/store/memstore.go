package store

import (
	"fmt"
	"sort"
	"sync"
)

// Mem is the in-memory Backend for tests: a mutex-guarded map of
// payload copies. It has no on-media codec, so chunks never read as
// corrupt — corruption-path tests use Dir or Obj, whose codec is real.
type Mem struct {
	mu sync.RWMutex
	m  map[Addr][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{m: make(map[Addr][]byte)} }

// ReadChunk implements Backend.
func (s *Mem) ReadChunk(a Addr, dst []byte) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.m[a]
	if !ok {
		return 0, &NotFoundError{Addr: a}
	}
	if len(dst) < len(data) {
		return 0, fmt.Errorf("store: %v: destination buffer %d bytes, chunk payload %d", a, len(dst), len(data))
	}
	return copy(dst, data), nil
}

// WriteChunk implements Backend.
func (s *Mem) WriteChunk(a Addr, data []byte) error {
	if !a.Valid() {
		return fmt.Errorf("store: invalid address %v", a)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.m[a] = cp
	s.mu.Unlock()
	return nil
}

// Delete implements Backend.
func (s *Mem) Delete(a Addr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[a]; !ok {
		return &NotFoundError{Addr: a}
	}
	delete(s.m, a)
	return nil
}

// List implements Backend.
func (s *Mem) List(disk int) ([]Addr, error) {
	s.mu.RLock()
	var out []Addr
	for a := range s.m {
		if a.Disk == disk {
			out = append(out, a)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// Stat implements Backend.
func (s *Mem) Stat(a Addr) (Info, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.m[a]
	if !ok {
		return Info{}, &NotFoundError{Addr: a}
	}
	return Info{Addr: a, Size: len(data)}, nil
}

// Len returns the number of stored chunks.
func (s *Mem) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
