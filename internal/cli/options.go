package cli

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Options is a repeated `-o key[=value]` operator-option flag, the
// rclone `backend ... -o option=value` convention: free-form switches a
// subcommand interprets without growing one top-level flag per knob.
// Register with flag.Var; each -o occurrence adds one option. A bare
// key (no '=') holds the empty value and reads as a boolean switch.
type Options struct {
	order []string
	vals  map[string]string
}

// Set implements flag.Value. Duplicate and empty keys are rejected so
// typos fail loudly instead of silently winning or losing.
func (o *Options) Set(s string) error {
	key, val, _ := strings.Cut(s, "=")
	key = strings.TrimSpace(key)
	if key == "" {
		return fmt.Errorf("cli: empty option key in -o %q", s)
	}
	if _, dup := o.vals[key]; dup {
		return fmt.Errorf("cli: duplicate option %q", key)
	}
	if o.vals == nil {
		o.vals = make(map[string]string)
	}
	o.vals[key] = val
	o.order = append(o.order, key)
	return nil
}

// String implements flag.Value, rendering options in the order given.
func (o *Options) String() string {
	if o == nil {
		return ""
	}
	parts := make([]string, 0, len(o.order))
	for _, k := range o.order {
		if v := o.vals[k]; v != "" {
			parts = append(parts, k+"="+v)
		} else {
			parts = append(parts, k)
		}
	}
	return strings.Join(parts, ",")
}

// Has reports whether the option was given at all.
func (o *Options) Has(key string) bool {
	_, ok := o.vals[key]
	return ok
}

// Get returns the option's value and whether it was given.
func (o *Options) Get(key string) (string, bool) {
	v, ok := o.vals[key]
	return v, ok
}

// Value returns the option's value, or def when absent or bare.
func (o *Options) Value(key, def string) string {
	if v, ok := o.vals[key]; ok && v != "" {
		return v
	}
	return def
}

// Bool reads the option as a switch: absent is false; bare, "true" and
// "1" are true; "false" and "0" are false; anything else is an error.
func (o *Options) Bool(key string) (bool, error) {
	v, ok := o.vals[key]
	if !ok {
		return false, nil
	}
	switch v {
	case "", "true", "1":
		return true, nil
	case "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("bad -o %s=%s: not a boolean (want true/false)", key, v)
}

// Int64 reads the option as a base-10 integer, returning def when
// absent. A bare key or a non-numeric value is an error.
func (o *Options) Int64(key string, def int64) (int64, error) {
	v, ok := o.vals[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad -o %s=%s: not an integer", key, v)
	}
	return n, nil
}

// Keys returns the option keys in the order given.
func (o *Options) Keys() []string { return append([]string(nil), o.order...) }

// Unknown returns the given options not in the known set, sorted — the
// caller turns a non-empty result into a usage error, so a misspelled
// -o never silently no-ops.
func (o *Options) Unknown(known ...string) []string {
	set := make(map[string]bool, len(known))
	for _, k := range known {
		set[k] = true
	}
	var out []string
	for _, k := range o.order {
		if !set[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
