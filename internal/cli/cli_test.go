package cli

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a,b,c", []string{"a", "b", "c"}},
		{" a , b ", []string{"a", "b"}},
		{"", nil},
		{",,", nil},
		{"one", []string{"one"}},
	}
	for _, c := range cases {
		got := SplitList(c.in)
		if len(got) != len(c.want) {
			t.Errorf("SplitList(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitList(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := ParseInts("5, 7,11")
	if err != nil || len(got) != 3 || got[0] != 5 || got[1] != 7 || got[2] != 11 {
		t.Errorf("ParseInts = %v, %v", got, err)
	}
	if _, err := ParseInts("1,x"); err == nil {
		t.Error("non-integer accepted")
	}
	if got, err := ParseInts(""); err != nil || len(got) != 0 {
		t.Errorf("empty = %v, %v", got, err)
	}
}

func TestParseFlagVariantsNameTheFlag(t *testing.T) {
	if _, err := ParseIntsFlag("p", "1,x"); err == nil || !strings.Contains(err.Error(), "bad -p") {
		t.Errorf("ParseIntsFlag error does not name the flag: %v", err)
	}
	if _, err := ParseFloatsFlag("ure-rates", "0.1,nope"); err == nil || !strings.Contains(err.Error(), "bad -ure-rates") {
		t.Errorf("ParseFloatsFlag error does not name the flag: %v", err)
	}
	if got, err := ParseIntsFlag("p", "5,7"); err != nil || len(got) != 2 {
		t.Errorf("valid list rejected: %v, %v", got, err)
	}
}

func TestCreateOutput(t *testing.T) {
	dir := t.TempDir()
	ok := filepath.Join(dir, "out.json")
	f, err := CreateOutput("trace-out", ok)
	if err != nil {
		t.Fatalf("writable path rejected: %v", err)
	}
	f.Close()

	cases := []struct {
		name string
		path string
	}{
		{"empty path", ""},
		{"directory", dir},
		{"missing parent", filepath.Join(dir, "nope", "out.json")},
	}
	for _, c := range cases {
		if _, err := CreateOutput("trace-out", c.path); err == nil {
			t.Errorf("%s accepted", c.name)
		} else if !strings.Contains(err.Error(), "bad -trace-out") {
			t.Errorf("%s error does not name the flag: %v", c.name, err)
		}
	}
}
