package cli

import "testing"

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a,b,c", []string{"a", "b", "c"}},
		{" a , b ", []string{"a", "b"}},
		{"", nil},
		{",,", nil},
		{"one", []string{"one"}},
	}
	for _, c := range cases {
		got := SplitList(c.in)
		if len(got) != len(c.want) {
			t.Errorf("SplitList(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitList(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := ParseInts("5, 7,11")
	if err != nil || len(got) != 3 || got[0] != 5 || got[1] != 7 || got[2] != 11 {
		t.Errorf("ParseInts = %v, %v", got, err)
	}
	if _, err := ParseInts("1,x"); err == nil {
		t.Error("non-integer accepted")
	}
	if got, err := ParseInts(""); err != nil || len(got) != 0 {
		t.Errorf("empty = %v, %v", got, err)
	}
}
