package cli

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func TestOptionsSetGet(t *testing.T) {
	var o Options
	for _, s := range []string{"check-only", "priority=vulnerable", "depth=3"} {
		if err := o.Set(s); err != nil {
			t.Fatalf("Set(%q): %v", s, err)
		}
	}
	if !o.Has("check-only") || o.Has("dry-run") {
		t.Error("Has is wrong")
	}
	if v, ok := o.Get("priority"); !ok || v != "vulnerable" {
		t.Errorf("Get(priority) = %q, %v", v, ok)
	}
	if v, ok := o.Get("check-only"); !ok || v != "" {
		t.Errorf("bare option Get = %q, %v", v, ok)
	}
	if got := o.Value("priority", "sequential"); got != "vulnerable" {
		t.Errorf("Value = %q", got)
	}
	if got := o.Value("absent", "fallback"); got != "fallback" {
		t.Errorf("Value default = %q", got)
	}
	if got := o.String(); got != "check-only,priority=vulnerable,depth=3" {
		t.Errorf("String = %q", got)
	}
	if got := strings.Join(o.Keys(), " "); got != "check-only priority depth" {
		t.Errorf("Keys = %q", got)
	}
}

func TestOptionsBool(t *testing.T) {
	var o Options
	for _, s := range []string{"bare", "yes=true", "one=1", "no=false", "zero=0", "junk=maybe"} {
		if err := o.Set(s); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		key  string
		want bool
		err  bool
	}{
		{"bare", true, false}, {"yes", true, false}, {"one", true, false},
		{"no", false, false}, {"zero", false, false},
		{"absent", false, false},
		{"junk", false, true},
	}
	for _, c := range cases {
		got, err := o.Bool(c.key)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("Bool(%q) = %v, %v; want %v, err=%v", c.key, got, err, c.want, c.err)
		}
	}
	// Boolean errors follow the "bad -o key=value" convention.
	if _, err := o.Bool("junk"); err == nil || !strings.Contains(err.Error(), "bad -o junk=maybe") {
		t.Errorf("Bool error does not name the option: %v", err)
	}
}

func TestOptionsRejections(t *testing.T) {
	var o Options
	if err := o.Set(""); err == nil {
		t.Error("empty option accepted")
	}
	if err := o.Set("=value"); err == nil {
		t.Error("empty key accepted")
	}
	if err := o.Set("k=1"); err != nil {
		t.Fatal(err)
	}
	if err := o.Set("k=2"); err == nil {
		t.Error("duplicate key accepted")
	}
}

func TestOptionsUnknown(t *testing.T) {
	var o Options
	for _, s := range []string{"scrub", "priority=x", "chekc-only"} {
		if err := o.Set(s); err != nil {
			t.Fatal(err)
		}
	}
	got := o.Unknown("check-only", "dry-run", "scrub", "priority")
	if len(got) != 1 || got[0] != "chekc-only" {
		t.Errorf("Unknown = %v, want [chekc-only]", got)
	}
	if rest := o.Unknown("scrub", "priority", "chekc-only"); len(rest) != 0 {
		t.Errorf("Unknown = %v, want none", rest)
	}
}

// TestOptionsAsFlagValue wires Options through a real flag.FlagSet the
// way fbfctl does, pinning the repeated -o convention end to end.
func TestOptionsAsFlagValue(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var o Options
	fs.Var(&o, "o", "operator option")
	if err := fs.Parse([]string{"-o", "check-only", "-o", "priority=vulnerable"}); err != nil {
		t.Fatal(err)
	}
	if !o.Has("check-only") || o.Value("priority", "") != "vulnerable" {
		t.Errorf("parsed options: %v", o.String())
	}
	// A duplicate across separate -o flags must fail the parse itself.
	fs2 := flag.NewFlagSet("x", flag.ContinueOnError)
	fs2.SetOutput(io.Discard)
	var o2 Options
	fs2.Var(&o2, "o", "operator option")
	if err := fs2.Parse([]string{"-o", "scrub", "-o", "scrub"}); err == nil {
		t.Error("duplicate -o accepted by flag parse")
	}
}

// TestOptionsInt64 pins the numeric accessor: absent yields the
// default, a base-10 value parses, and junk (including bare keys) is a
// loud error.
func TestOptionsInt64(t *testing.T) {
	var o Options
	for _, s := range []string{"rate-limit=1048576", "max-scans", "retries=x"} {
		if err := o.Set(s); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := o.Int64("rate-limit", 0); err != nil || n != 1048576 {
		t.Errorf("Int64(rate-limit) = %d, %v", n, err)
	}
	if n, err := o.Int64("absent", 42); err != nil || n != 42 {
		t.Errorf("Int64(absent) = %d, %v, want the default", n, err)
	}
	if _, err := o.Int64("max-scans", 0); err == nil {
		t.Error("bare key parsed as an integer")
	}
	if _, err := o.Int64("retries", 0); err == nil {
		t.Error("junk value parsed as an integer")
	}
}
