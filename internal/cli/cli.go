// Package cli holds small flag-parsing helpers shared by the command
// binaries.
package cli

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// SplitList splits a comma-separated list, trimming blanks and dropping
// empty elements.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ParseInts parses a comma-separated list of integers.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, part := range SplitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("cli: %q is not an integer: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloats parses a comma-separated list of floating-point numbers.
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range SplitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("cli: %q is not a number: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseIntsFlag is ParseInts with the offending flag named in the
// error, so binaries report "bad -p: ..." instead of a bare parse
// failure.
func ParseIntsFlag(flagName, s string) ([]int, error) {
	out, err := ParseInts(s)
	if err != nil {
		return nil, fmt.Errorf("bad -%s: %w", flagName, err)
	}
	return out, nil
}

// ParseFloatsFlag is ParseFloats with the offending flag named in the
// error.
func ParseFloatsFlag(flagName, s string) ([]float64, error) {
	out, err := ParseFloats(s)
	if err != nil {
		return nil, fmt.Errorf("bad -%s: %w", flagName, err)
	}
	return out, nil
}

// CreateOutput creates (truncating) the output file a flag points at,
// validating writability up front so a long run cannot fail at write
// time; errors name the flag and reject directories and missing parent
// directories explicitly.
func CreateOutput(flagName, path string) (*os.File, error) {
	if path == "" {
		return nil, fmt.Errorf("bad -%s: empty output path", flagName)
	}
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		return nil, fmt.Errorf("bad -%s: %q is a directory", flagName, path)
	}
	if dir := filepath.Dir(path); dir != "." {
		if info, err := os.Stat(dir); err != nil || !info.IsDir() {
			return nil, fmt.Errorf("bad -%s: output directory %q does not exist", flagName, dir)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("bad -%s: cannot create %q: %w", flagName, path, err)
	}
	return f, nil
}
