// Package cli holds small flag-parsing helpers shared by the command
// binaries.
package cli

import (
	"fmt"
	"strconv"
	"strings"
)

// SplitList splits a comma-separated list, trimming blanks and dropping
// empty elements.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ParseInts parses a comma-separated list of integers.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, part := range SplitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("cli: %q is not an integer: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloats parses a comma-separated list of floating-point numbers.
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range SplitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("cli: %q is not a number: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
