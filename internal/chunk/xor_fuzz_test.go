package chunk

import (
	"bytes"
	"testing"
)

// xorRef is the trivially-correct byte-wise reference the unrolled
// kernel is diffed against.
func xorRef(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// FuzzXORInto diffs the unrolled kernel against the byte-wise reference
// across arbitrary lengths and slice alignments. length trims the
// operands below the block/word boundaries and off selects a sub-slice
// start, so every combination of 64-byte blocks, 8-byte words, byte
// tails and unaligned bases gets exercised.
func FuzzXORInto(f *testing.F) {
	f.Add([]byte{}, []byte{}, uint8(0))
	f.Add([]byte{1}, []byte{2}, uint8(0))
	f.Add(bytes.Repeat([]byte{0xAB}, 7), bytes.Repeat([]byte{0x5C}, 7), uint8(3))
	f.Add(bytes.Repeat([]byte{0x11}, 64), bytes.Repeat([]byte{0x22}, 64), uint8(1))
	f.Add(bytes.Repeat([]byte{0x01}, 200), bytes.Repeat([]byte{0xFE}, 301), uint8(9))
	f.Fuzz(func(t *testing.T, a, b []byte, off uint8) {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		start := int(off)
		if start > n {
			start = n
		}
		dst := append([]byte(nil), a[start:n]...)
		src := append([]byte(nil), b[start:n]...)
		want := append([]byte(nil), dst...)
		xorRef(want, src)
		srcBefore := append([]byte(nil), src...)

		XORInto(dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("len=%d off=%d: kernel diverges from byte-wise reference", len(dst), start)
		}
		// The scalar 8-way unrolled kernel must agree too, at every
		// length — XORInto only routes long buffers through it.
		scalar := append([]byte(nil), a[start:n]...)
		xorWords(scalar, src)
		if !bytes.Equal(scalar, want) {
			t.Fatalf("len=%d off=%d: xorWords diverges from byte-wise reference", len(scalar), start)
		}
		if !bytes.Equal(src, srcBefore) {
			t.Fatalf("len=%d off=%d: kernel wrote to src", len(src), start)
		}
		// Involution: XORing the same src again restores the original.
		XORInto(dst, src)
		if !bytes.Equal(dst, a[start:n]) {
			t.Fatalf("len=%d off=%d: double XOR is not the identity", len(dst), start)
		}
	})
}

// TestXORIntoAllSmallLengths sweeps every length through the tail-heavy
// region deterministically (the fuzz corpus may not cover each one).
func TestXORIntoAllSmallLengths(t *testing.T) {
	for n := 0; n <= 256; n++ {
		dst := make([]byte, n)
		src := make([]byte, n)
		for i := range dst {
			dst[i] = byte(i*7 + 3)
			src[i] = byte(i*13 + 1)
		}
		want := append([]byte(nil), dst...)
		xorRef(want, src)
		scalar := append([]byte(nil), dst...)
		XORInto(dst, src)
		xorWords(scalar, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("length %d: kernel diverges from reference", n)
		}
		if !bytes.Equal(scalar, want) {
			t.Fatalf("length %d: xorWords diverges from reference", n)
		}
	}
}

// TestXORIntoUnaligned exercises sub-slice bases so the kernel sees
// pointers off any 64-byte alignment.
func TestXORIntoUnaligned(t *testing.T) {
	base := make([]byte, 512)
	other := make([]byte, 512)
	for i := range base {
		base[i] = byte(i)
		other[i] = byte(255 - i)
	}
	for off := 0; off < 64; off++ {
		dst := append([]byte(nil), base[off:off+300]...)
		src := other[off : off+300]
		want := append([]byte(nil), dst...)
		xorRef(want, src)
		XORInto(dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("offset %d: kernel diverges from reference", off)
		}
	}
}
