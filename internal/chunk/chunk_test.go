package chunk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randChunk(rng *rand.Rand, n int) Chunk {
	c := New(n)
	rng.Read(c)
	return c
}

func TestNewZeroed(t *testing.T) {
	c := New(100)
	if len(c) != 100 || !c.IsZero() {
		t.Error("New chunk not zeroed")
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestXORIntoSelfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Odd length exercises the byte tail after the word loop.
	a := randChunk(rng, 1003)
	b := randChunk(rng, 1003)
	orig := make(Chunk, len(a))
	copy(orig, a)
	XORInto(a, b)
	if a.Equal(orig) {
		t.Error("XOR changed nothing")
	}
	XORInto(a, b)
	if !a.Equal(orig) {
		t.Error("double XOR did not restore original")
	}
}

func TestXORIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on length mismatch")
		}
	}()
	XORInto(New(8), New(9))
}

func TestXORVariadic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, b, c := randChunk(rng, 64), randChunk(rng, 64), randChunk(rng, 64)
	got := XOR(a, b, c)
	want := New(64)
	for i := range want {
		want[i] = a[i] ^ b[i] ^ c[i]
	}
	if !got.Equal(want) {
		t.Error("XOR(a,b,c) wrong")
	}
	// Inputs must not be mutated.
	if a.IsZero() && b.IsZero() {
		t.Error("inputs look mutated")
	}
	if !XOR(a).Equal(a) {
		t.Error("XOR(a) != a")
	}
}

func TestXOREmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for XOR()")
		}
	}()
	XOR()
}

func TestXORProperties(t *testing.T) {
	// Commutativity and associativity, checked on random contents.
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(257)
		a, b, c := randChunk(rng, n), randChunk(rng, n), randChunk(rng, n)
		ab := XOR(a, b)
		ba := XOR(b, a)
		abc1 := XOR(XOR(a, b), c)
		abc2 := XOR(a, XOR(b, c))
		return ab.Equal(ba) && abc1.Equal(abc2) && XOR(a, a).IsZero()
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestEqual(t *testing.T) {
	a := Chunk{1, 2, 3}
	if !a.Equal(Chunk{1, 2, 3}) || a.Equal(Chunk{1, 2}) || a.Equal(Chunk{1, 2, 4}) {
		t.Error("Equal wrong")
	}
}

func TestChecksumDistinguishes(t *testing.T) {
	a := Chunk{1, 2, 3, 4}
	b := Chunk{1, 2, 3, 5}
	if a.Checksum() == b.Checksum() {
		t.Error("checksum collision on near-identical chunks (CRC32 must differ)")
	}
	if a.Checksum() != (Chunk{1, 2, 3, 4}).Checksum() {
		t.Error("checksum not deterministic")
	}
}

func TestPool(t *testing.T) {
	p := NewPool(64)
	if p.Size() != 64 {
		t.Errorf("Size = %d", p.Size())
	}
	c := p.Get()
	if len(c) != 64 || !c.IsZero() {
		t.Error("Get returned wrong chunk")
	}
	c[0] = 0xFF
	p.Put(c)
	c2 := p.Get()
	if !c2.IsZero() {
		t.Error("recycled chunk not zeroed")
	}
	p.Put(New(10)) // wrong size must be dropped, not corrupt the pool
	c3 := p.Get()
	if len(c3) != 64 {
		t.Error("pool served wrong-size chunk")
	}
}

func TestPoolPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for NewPool(0)")
		}
	}()
	NewPool(0)
}
