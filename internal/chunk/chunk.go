// Package chunk provides chunk buffers and the XOR kernels used during
// stripe encoding and reconstruction. A chunk is the unit of recovery in
// the paper (32 KB by default, matching the evaluation's stripe-unit
// size).
package chunk

import (
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// DefaultSize is the chunk size used throughout the paper's evaluation.
const DefaultSize = 32 * 1024

// Chunk is a byte buffer holding one chunk's contents.
type Chunk []byte

// New returns a zeroed chunk of the given size.
func New(size int) Chunk {
	if size <= 0 {
		panic(fmt.Sprintf("chunk: non-positive size %d", size))
	}
	return make(Chunk, size)
}

// xorVectorMin is the length at or above which XORInto routes through
// crypto/subtle.XORBytes: below it the call overhead beats the SIMD
// win, above it the stdlib's platform-vectorized kernel is ~1.5x the
// scalar ceiling (27 GB/s vs 17 GB/s at the paper's 32 KB chunks on
// the reference host).
const xorVectorMin = 256

// XORInto XORs src into dst in place. The two chunks must have equal
// length. Full-size chunks go through crypto/subtle.XORBytes — the
// stdlib's memory-safe vectorized XOR, called with dst aliasing x
// exactly, which its contract allows. Short buffers and platforms
// without the asm route run xorWords, an unsafe-free 8-way unrolled
// 64-bit-word kernel. XOR is position-wise, so both paths are
// bit-identical to the byte loop — pinned by FuzzXORInto against a
// byte-wise reference across all lengths and alignments.
func XORInto(dst, src Chunk) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("chunk: length mismatch %d != %d", len(dst), len(src)))
	}
	if len(dst) >= xorVectorMin {
		subtle.XORBytes(dst, dst, src)
		return
	}
	xorWords(dst, src)
}

// xorWords is the portable scalar kernel: each iteration loads, XORs
// and stores a 64-byte block as eight 64-bit words through fixed-offset
// subslices, which lets the compiler hoist every bounds check to the
// single len(d) >= 64 test and keep the words in registers. A word loop
// and a byte loop mop up the tail.
func xorWords(dst, src Chunk) {
	d, s := []byte(dst), []byte(src)
	for len(d) >= 64 {
		db, sb := d[:64], s[:64:64]
		d0 := binary.LittleEndian.Uint64(db[0:8]) ^ binary.LittleEndian.Uint64(sb[0:8])
		d1 := binary.LittleEndian.Uint64(db[8:16]) ^ binary.LittleEndian.Uint64(sb[8:16])
		d2 := binary.LittleEndian.Uint64(db[16:24]) ^ binary.LittleEndian.Uint64(sb[16:24])
		d3 := binary.LittleEndian.Uint64(db[24:32]) ^ binary.LittleEndian.Uint64(sb[24:32])
		d4 := binary.LittleEndian.Uint64(db[32:40]) ^ binary.LittleEndian.Uint64(sb[32:40])
		d5 := binary.LittleEndian.Uint64(db[40:48]) ^ binary.LittleEndian.Uint64(sb[40:48])
		d6 := binary.LittleEndian.Uint64(db[48:56]) ^ binary.LittleEndian.Uint64(sb[48:56])
		d7 := binary.LittleEndian.Uint64(db[56:64]) ^ binary.LittleEndian.Uint64(sb[56:64])
		binary.LittleEndian.PutUint64(db[0:8], d0)
		binary.LittleEndian.PutUint64(db[8:16], d1)
		binary.LittleEndian.PutUint64(db[16:24], d2)
		binary.LittleEndian.PutUint64(db[24:32], d3)
		binary.LittleEndian.PutUint64(db[32:40], d4)
		binary.LittleEndian.PutUint64(db[40:48], d5)
		binary.LittleEndian.PutUint64(db[48:56], d6)
		binary.LittleEndian.PutUint64(db[56:64], d7)
		d, s = d[64:], s[64:]
	}
	for len(d) >= 8 {
		binary.LittleEndian.PutUint64(d[:8],
			binary.LittleEndian.Uint64(d[:8])^binary.LittleEndian.Uint64(s[:8]))
		d, s = d[8:], s[8:]
	}
	for i := range d {
		d[i] ^= s[i]
	}
}

// XOR returns the XOR of all chunks into a fresh buffer. All chunks must
// share one length; XOR of zero chunks is invalid.
func XOR(chunks ...Chunk) Chunk {
	if len(chunks) == 0 {
		panic("chunk: XOR of no chunks")
	}
	out := make(Chunk, len(chunks[0]))
	copy(out, chunks[0])
	for _, c := range chunks[1:] {
		XORInto(out, c)
	}
	return out
}

// IsZero reports whether every byte of the chunk is zero.
func (c Chunk) IsZero() bool {
	for _, b := range c {
		if b != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether two chunks have identical contents.
func (c Chunk) Equal(o Chunk) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Checksum returns a CRC32 (Castagnoli) of the chunk, used by tests and
// the simulator's integrity checks.
func (c Chunk) Checksum() uint32 {
	return crc32.Checksum(c, castagnoli)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Pool recycles chunk buffers of one fixed size to keep reconstruction
// allocation-free in steady state.
type Pool struct {
	size int
	pool sync.Pool
}

// NewPool returns a pool of chunks with the given size.
func NewPool(size int) *Pool {
	if size <= 0 {
		panic(fmt.Sprintf("chunk: non-positive pool size %d", size))
	}
	p := &Pool{size: size}
	p.pool.New = func() any { return New(size) }
	return p
}

// Size returns the chunk size served by the pool.
func (p *Pool) Size() int { return p.size }

// Get returns a zeroed chunk from the pool.
func (p *Pool) Get() Chunk {
	c := p.pool.Get().(Chunk)
	clear(c)
	return c
}

// GetRaw returns a chunk from the pool WITHOUT zeroing it — the
// contents are whatever the previous user left behind. Callers must
// overwrite every byte before reading any: XOR accumulators that copy
// their first operand, encode targets that clear themselves, and
// materialized data cells filled by an RNG all qualify, and skipping
// the redundant clear keeps the recovery hot path from touching each
// buffer twice.
func (p *Pool) GetRaw() Chunk {
	return p.pool.Get().(Chunk)
}

// Put returns a chunk to the pool. Chunks of the wrong size are dropped.
func (p *Pool) Put(c Chunk) {
	if len(c) == p.size {
		p.pool.Put(c) //nolint:staticcheck // Chunk is a slice; boxing is fine here.
	}
}
