// Package chunk provides chunk buffers and the XOR kernels used during
// stripe encoding and reconstruction. A chunk is the unit of recovery in
// the paper (32 KB by default, matching the evaluation's stripe-unit
// size).
package chunk

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// DefaultSize is the chunk size used throughout the paper's evaluation.
const DefaultSize = 32 * 1024

// Chunk is a byte buffer holding one chunk's contents.
type Chunk []byte

// New returns a zeroed chunk of the given size.
func New(size int) Chunk {
	if size <= 0 {
		panic(fmt.Sprintf("chunk: non-positive size %d", size))
	}
	return make(Chunk, size)
}

// XORInto XORs src into dst in place. The two chunks must have equal
// length. The loop runs over 64-bit words with a byte tail, which is the
// whole of the "XOR calculation" cost modeled during reconstruction.
func XORInto(dst, src Chunk) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("chunk: length mismatch %d != %d", len(dst), len(src)))
	}
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// XOR returns the XOR of all chunks into a fresh buffer. All chunks must
// share one length; XOR of zero chunks is invalid.
func XOR(chunks ...Chunk) Chunk {
	if len(chunks) == 0 {
		panic("chunk: XOR of no chunks")
	}
	out := make(Chunk, len(chunks[0]))
	copy(out, chunks[0])
	for _, c := range chunks[1:] {
		XORInto(out, c)
	}
	return out
}

// IsZero reports whether every byte of the chunk is zero.
func (c Chunk) IsZero() bool {
	for _, b := range c {
		if b != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether two chunks have identical contents.
func (c Chunk) Equal(o Chunk) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Checksum returns a CRC32 (Castagnoli) of the chunk, used by tests and
// the simulator's integrity checks.
func (c Chunk) Checksum() uint32 {
	return crc32.Checksum(c, castagnoli)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Pool recycles chunk buffers of one fixed size to keep reconstruction
// allocation-free in steady state.
type Pool struct {
	size int
	pool sync.Pool
}

// NewPool returns a pool of chunks with the given size.
func NewPool(size int) *Pool {
	if size <= 0 {
		panic(fmt.Sprintf("chunk: non-positive pool size %d", size))
	}
	p := &Pool{size: size}
	p.pool.New = func() any { return New(size) }
	return p
}

// Size returns the chunk size served by the pool.
func (p *Pool) Size() int { return p.size }

// Get returns a zeroed chunk from the pool.
func (p *Pool) Get() Chunk {
	c := p.pool.Get().(Chunk)
	clear(c)
	return c
}

// Put returns a chunk to the pool. Chunks of the wrong size are dropped.
func (p *Pool) Put(c Chunk) {
	if len(c) == p.size {
		p.pool.Put(c) //nolint:staticcheck // Chunk is a slice; boxing is fine here.
	}
}
