package chunk

import (
	"sync"
	"testing"
)

// TestPoolConcurrentGetPut hammers the pool from many goroutines under
// -race: concurrent Get/GetRaw/Put with XOR work on the buffers in
// between. The pool hands each buffer to exactly one goroutine at a
// time, so the data races the detector would flag are real sharing
// bugs.
func TestPoolConcurrentGetPut(t *testing.T) {
	const (
		workers = 8
		rounds  = 500
		size    = 1024
	)
	p := NewPool(size)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := New(size)
			for i := range src {
				src[i] = byte(w*31 + i)
			}
			for r := 0; r < rounds; r++ {
				acc := p.Get()
				if !acc.IsZero() {
					t.Error("Get returned a dirty chunk")
					return
				}
				raw := p.GetRaw()
				copy(raw, src)
				XORInto(acc, raw)
				XORInto(acc, src)
				if !acc.IsZero() {
					t.Error("x ^ x != 0")
					return
				}
				p.Put(raw)
				p.Put(acc)
			}
		}()
	}
	wg.Wait()
}

// TestGetRawReusesBuffers pins the reason GetRaw exists: a returned
// buffer comes back without being rezeroed.
func TestGetRawReusesBuffers(t *testing.T) {
	p := NewPool(64)
	c := p.Get()
	for i := range c {
		c[i] = 0xEE
	}
	p.Put(c)
	raw := p.GetRaw()
	// sync.Pool may or may not return the same buffer; only assert the
	// contract on the buffer we actually got back.
	if &raw[0] == &c[0] {
		if raw[0] != 0xEE {
			t.Error("GetRaw cleared the recycled buffer")
		}
	}
	p.Put(raw)
	z := p.Get()
	if !z.IsZero() {
		t.Error("Get returned a dirty chunk")
	}
}
