// Package gf2 implements dense linear algebra over GF(2) using bit-packed
// rows. It is the algebraic backbone of the erasure-code layer: parity
// chains are linear equations over GF(2) per byte position, so encoding
// (solving for parity cells), decoding (solving for erased cells) and
// fault-coverage verification all reduce to Gaussian elimination on a
// small boolean matrix whose columns are stripe cells.
package gf2

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Matrix is a dense boolean matrix with bit-packed rows. Rows may carry
// an optional augmented part used when solving systems whose right-hand
// sides are symbolic combinations of known cells.
type Matrix struct {
	rows, cols int
	words      int // words per row
	data       []uint64
}

// NewMatrix returns a zero rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("gf2: negative dimensions %dx%d", rows, cols))
	}
	words := (cols + wordBits - 1) / wordBits
	return &Matrix{rows: rows, cols: cols, words: words, data: make([]uint64, rows*words)}
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// Get returns the bit at (r, c).
func (m *Matrix) Get(r, c int) bool {
	m.check(r, c)
	return m.data[r*m.words+c/wordBits]&(1<<(uint(c)%wordBits)) != 0
}

// Set assigns the bit at (r, c).
func (m *Matrix) Set(r, c int, v bool) {
	m.check(r, c)
	idx := r*m.words + c/wordBits
	mask := uint64(1) << (uint(c) % wordBits)
	if v {
		m.data[idx] |= mask
	} else {
		m.data[idx] &^= mask
	}
}

// Flip toggles the bit at (r, c).
func (m *Matrix) Flip(r, c int) {
	m.check(r, c)
	m.data[r*m.words+c/wordBits] ^= 1 << (uint(c) % wordBits)
}

func (m *Matrix) check(r, c int) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("gf2: index (%d,%d) out of %dx%d", r, c, m.rows, m.cols))
	}
}

// XORRows adds (XORs) row src into row dst.
func (m *Matrix) XORRows(dst, src int) {
	if dst == src {
		// Adding a row to itself zeroes it in GF(2); callers never want
		// that implicitly.
		panic("gf2: XORRows with dst == src")
	}
	d := m.data[dst*m.words : (dst+1)*m.words]
	s := m.data[src*m.words : (src+1)*m.words]
	for i := range d {
		d[i] ^= s[i]
	}
}

// SwapRows exchanges two rows.
func (m *Matrix) SwapRows(a, b int) {
	if a == b {
		return
	}
	ra := m.data[a*m.words : (a+1)*m.words]
	rb := m.data[b*m.words : (b+1)*m.words]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, words: m.words, data: make([]uint64, len(m.data))}
	copy(c.data, m.data)
	return c
}

// RowWeight returns the number of set bits in a row.
func (m *Matrix) RowWeight(r int) int {
	w := 0
	for _, word := range m.data[r*m.words : (r+1)*m.words] {
		w += bits.OnesCount64(word)
	}
	return w
}

// firstSet returns the lowest set column index at or after from in row r,
// or -1 if none.
func (m *Matrix) firstSet(r, from int) int {
	if from >= m.cols {
		return -1
	}
	row := m.data[r*m.words : (r+1)*m.words]
	w := from / wordBits
	word := row[w] &^ ((1 << (uint(from) % wordBits)) - 1)
	for {
		if word != 0 {
			c := w*wordBits + bits.TrailingZeros64(word)
			if c < m.cols {
				return c
			}
			return -1
		}
		w++
		if w >= m.words {
			return -1
		}
		word = row[w]
	}
}

// Eliminate performs in-place Gauss-Jordan elimination restricted to the
// first solveCols columns (pivot columns are chosen only among those);
// the remaining columns ride along as an augmented part. It returns the
// pivot column for each pivot row, in order.
func (m *Matrix) Eliminate(solveCols int) []int {
	if solveCols < 0 || solveCols > m.cols {
		panic(fmt.Sprintf("gf2: solveCols %d out of range [0,%d]", solveCols, m.cols))
	}
	pivots := make([]int, 0, min(m.rows, solveCols))
	row := 0
	for col := 0; col < solveCols && row < m.rows; col++ {
		pivot := -1
		for r := row; r < m.rows; r++ {
			if m.Get(r, col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.SwapRows(row, pivot)
		for r := 0; r < m.rows; r++ {
			if r != row && m.Get(r, col) {
				m.XORRows(r, row)
			}
		}
		pivots = append(pivots, col)
		row++
	}
	return pivots
}

// Rank returns the matrix rank over the first solveCols columns,
// computed on a copy.
func (m *Matrix) Rank(solveCols int) int {
	return len(m.Clone().Eliminate(solveCols))
}

// System solves linear systems whose unknowns and right-hand sides are
// both sets of "symbols" (stripe cells in our use). Each equation states
// that the XOR of a set of symbols is zero. Given a subset of symbols
// marked unknown, Solve expresses every solvable unknown as a XOR of
// known symbols.
type System struct {
	symbols   int
	equations [][]int
}

// NewSystem creates a system over the given number of symbols.
func NewSystem(symbols int) *System {
	if symbols < 0 {
		panic("gf2: negative symbol count")
	}
	return &System{symbols: symbols}
}

// Symbols returns the symbol-space size.
func (s *System) Symbols() int { return s.symbols }

// AddEquation appends one equation: the XOR of the listed symbols is
// zero. Symbols may repeat (an even number of repeats cancels).
func (s *System) AddEquation(syms []int) {
	eq := make([]int, len(syms))
	copy(eq, syms)
	for _, sym := range eq {
		if sym < 0 || sym >= s.symbols {
			panic(fmt.Sprintf("gf2: symbol %d out of range [0,%d)", sym, s.symbols))
		}
	}
	s.equations = append(s.equations, eq)
}

// Equations returns the number of equations added.
func (s *System) Equations() int { return len(s.equations) }

// Solution maps each solved unknown symbol to the known symbols whose
// XOR reproduces it.
type Solution struct {
	// Terms[u] lists the known symbols to XOR to obtain unknown u.
	// A solved unknown with an empty list is identically zero.
	Terms map[int][]int
}

// Solve attempts to express every symbol in unknowns as a XOR of symbols
// outside unknowns. It returns the solution and the list of unknowns
// that could not be determined (nil if all solved).
func (s *System) Solve(unknowns []int) (*Solution, []int) {
	unknownIdx := make(map[int]int, len(unknowns)) // symbol -> matrix column
	for i, u := range unknowns {
		if u < 0 || u >= s.symbols {
			panic(fmt.Sprintf("gf2: unknown symbol %d out of range", u))
		}
		if _, dup := unknownIdx[u]; dup {
			panic(fmt.Sprintf("gf2: duplicate unknown symbol %d", u))
		}
		unknownIdx[u] = i
	}
	nu := len(unknowns)

	// Matrix columns: [unknown coefficients | known-symbol coefficients].
	// Known symbols are assigned columns lazily.
	knownIdx := make(map[int]int)
	knownList := make([]int, 0, s.symbols-nu)
	colOfKnown := func(sym int) int {
		if c, ok := knownIdx[sym]; ok {
			return c
		}
		c := len(knownList)
		knownIdx[sym] = c
		knownList = append(knownList, sym)
		return c
	}
	// First pass: assign known columns so the matrix width is final.
	for _, eq := range s.equations {
		for _, sym := range eq {
			if _, isU := unknownIdx[sym]; !isU {
				colOfKnown(sym)
			}
		}
	}
	m := NewMatrix(len(s.equations), nu+len(knownList))
	for r, eq := range s.equations {
		for _, sym := range eq {
			if u, isU := unknownIdx[sym]; isU {
				m.Flip(r, u)
			} else {
				m.Flip(r, nu+knownIdx[sym])
			}
		}
	}
	pivots := m.Eliminate(nu)

	sol := &Solution{Terms: make(map[int][]int, nu)}
	solvedCol := make(map[int]bool, len(pivots))
	for row, col := range pivots {
		// Row solves unknown `col` only if no other unknown column is set
		// in that row (Gauss-Jordan leaves at most the pivot among pivot
		// columns; a non-pivot unknown column set means underdetermined).
		clean := true
		for c := 0; c < nu; c++ {
			if c != col && m.Get(row, c) {
				clean = false
				break
			}
		}
		if !clean {
			continue
		}
		terms := []int{}
		for c := nu; c < m.Cols(); c++ {
			if m.Get(row, c) {
				terms = append(terms, knownList[c-nu])
			}
		}
		sol.Terms[unknowns[col]] = terms
		solvedCol[col] = true
	}
	var unsolved []int
	for i, u := range unknowns {
		if !solvedCol[i] {
			unsolved = append(unsolved, u)
		}
	}
	return sol, unsolved
}

// Solvable reports whether every symbol in unknowns can be recovered
// from the remaining symbols.
func (s *System) Solvable(unknowns []int) bool {
	_, unsolved := s.Solve(unknowns)
	return len(unsolved) == 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
