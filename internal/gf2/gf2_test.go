package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixGetSetFlip(t *testing.T) {
	m := NewMatrix(3, 130) // spans three words per row
	if m.Rows() != 3 || m.Cols() != 130 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 0, true)
	m.Set(1, 64, true)
	m.Set(1, 129, true)
	if !m.Get(1, 0) || !m.Get(1, 64) || !m.Get(1, 129) {
		t.Error("Set/Get failed across word boundaries")
	}
	if m.Get(0, 0) || m.Get(2, 129) {
		t.Error("unexpected set bits")
	}
	m.Flip(1, 64)
	if m.Get(1, 64) {
		t.Error("Flip did not clear")
	}
	m.Set(1, 0, false)
	if m.Get(1, 0) {
		t.Error("Set(false) did not clear")
	}
	if got := m.RowWeight(1); got != 1 {
		t.Errorf("RowWeight = %d, want 1", got)
	}
}

func TestMatrixOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, f := range []func(){
		func() { m.Get(2, 0) },
		func() { m.Get(0, 2) },
		func() { m.Set(-1, 0, true) },
		func() { m.Flip(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic on out-of-range access")
				}
			}()
			f()
		}()
	}
}

func TestXORRowsAndSwap(t *testing.T) {
	m := NewMatrix(2, 70)
	m.Set(0, 3, true)
	m.Set(0, 69, true)
	m.Set(1, 3, true)
	m.XORRows(1, 0)
	if m.Get(1, 3) || !m.Get(1, 69) {
		t.Error("XORRows wrong")
	}
	m.SwapRows(0, 1)
	if m.Get(0, 3) || !m.Get(0, 69) || !m.Get(1, 3) {
		t.Error("SwapRows wrong")
	}
	m.SwapRows(1, 1) // no-op must not corrupt
	if !m.Get(1, 3) {
		t.Error("self-swap corrupted row")
	}
}

func TestXORRowsSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for XORRows(dst==src)")
		}
	}()
	NewMatrix(2, 2).XORRows(1, 1)
}

func TestEliminateIdentity(t *testing.T) {
	m := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, true)
	}
	pivots := m.Eliminate(3)
	if len(pivots) != 3 {
		t.Errorf("rank = %d, want 3", len(pivots))
	}
}

func TestEliminateDependentRows(t *testing.T) {
	// Row2 = Row0 XOR Row1 → rank 2.
	m := NewMatrix(3, 4)
	m.Set(0, 0, true)
	m.Set(0, 2, true)
	m.Set(1, 1, true)
	m.Set(1, 2, true)
	m.Set(2, 0, true)
	m.Set(2, 1, true)
	if got := m.Rank(4); got != 2 {
		t.Errorf("Rank = %d, want 2", got)
	}
}

func TestEliminateRestrictedColumns(t *testing.T) {
	// Pivots only among the first 2 columns even though column 3 has bits.
	m := NewMatrix(2, 3)
	m.Set(0, 0, true)
	m.Set(0, 2, true)
	m.Set(1, 2, true)
	pivots := m.Eliminate(2)
	if len(pivots) != 1 || pivots[0] != 0 {
		t.Errorf("pivots = %v, want [0]", pivots)
	}
}

func TestRankBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(80)
		m := NewMatrix(rows, cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if rng.Intn(2) == 1 {
					m.Set(r, c, true)
				}
			}
		}
		rank := m.Rank(cols)
		if rank > rows || rank > cols {
			t.Fatalf("rank %d exceeds dims %dx%d", rank, rows, cols)
		}
		// Rank is invariant under row XOR of distinct rows.
		if rows >= 2 {
			m2 := m.Clone()
			m2.XORRows(0, 1)
			if got := m2.Rank(cols); got != rank {
				t.Fatalf("rank changed by row op: %d -> %d", rank, got)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMatrix(1, 1)
	c := m.Clone()
	c.Set(0, 0, true)
	if m.Get(0, 0) {
		t.Error("Clone shares storage")
	}
}

func TestFirstSet(t *testing.T) {
	m := NewMatrix(1, 130)
	m.Set(0, 5, true)
	m.Set(0, 128, true)
	if got := m.firstSet(0, 0); got != 5 {
		t.Errorf("firstSet(0) = %d, want 5", got)
	}
	if got := m.firstSet(0, 6); got != 128 {
		t.Errorf("firstSet(6) = %d, want 128", got)
	}
	if got := m.firstSet(0, 129); got != -1 {
		t.Errorf("firstSet(129) = %d, want -1", got)
	}
	if got := m.firstSet(0, 200); got != -1 {
		t.Errorf("firstSet(200) = %d, want -1", got)
	}
}

func TestSystemSolveSimple(t *testing.T) {
	// x0 ^ x1 ^ x2 = 0, with x1 unknown → x1 = x0 ^ x2.
	s := NewSystem(3)
	s.AddEquation([]int{0, 1, 2})
	sol, unsolved := s.Solve([]int{1})
	if len(unsolved) != 0 {
		t.Fatalf("unsolved = %v", unsolved)
	}
	terms := sol.Terms[1]
	if len(terms) != 2 {
		t.Fatalf("terms = %v", terms)
	}
	seen := map[int]bool{terms[0]: true, terms[1]: true}
	if !seen[0] || !seen[2] {
		t.Errorf("terms = %v, want {0,2}", terms)
	}
}

func TestSystemSolveChained(t *testing.T) {
	// eq1: x0^x1^x2 = 0; eq2: x2^x3 = 0. Unknowns {x1, x2}:
	// x2 = x3, x1 = x0 ^ x2 = x0 ^ x3.
	s := NewSystem(4)
	s.AddEquation([]int{0, 1, 2})
	s.AddEquation([]int{2, 3})
	sol, unsolved := s.Solve([]int{1, 2})
	if len(unsolved) != 0 {
		t.Fatalf("unsolved = %v", unsolved)
	}
	if got := sol.Terms[2]; len(got) != 1 || got[0] != 3 {
		t.Errorf("x2 terms = %v, want [3]", got)
	}
	x1 := map[int]int{}
	for _, term := range sol.Terms[1] {
		x1[term]++
	}
	if x1[0]%2 != 1 || x1[3]%2 != 1 {
		t.Errorf("x1 terms = %v, want odd counts of 0 and 3", sol.Terms[1])
	}
}

func TestSystemUnsolvable(t *testing.T) {
	// Two unknowns, one equation → underdetermined.
	s := NewSystem(3)
	s.AddEquation([]int{0, 1, 2})
	_, unsolved := s.Solve([]int{0, 1})
	if len(unsolved) != 2 {
		t.Fatalf("unsolved = %v, want both", unsolved)
	}
	if s.Solvable([]int{0, 1}) {
		t.Error("Solvable should be false")
	}
	if !s.Solvable([]int{2}) {
		t.Error("single unknown should be solvable")
	}
}

func TestSystemRepeatedSymbolCancels(t *testing.T) {
	// x0 ^ x0 ^ x1 = 0 → x1 = 0 (empty term list).
	s := NewSystem(2)
	s.AddEquation([]int{0, 0, 1})
	sol, unsolved := s.Solve([]int{1})
	if len(unsolved) != 0 {
		t.Fatalf("unsolved = %v", unsolved)
	}
	if got := sol.Terms[1]; len(got) != 0 {
		t.Errorf("terms = %v, want empty (identically zero)", got)
	}
}

func TestSystemPanics(t *testing.T) {
	s := NewSystem(2)
	for _, f := range []func(){
		func() { s.AddEquation([]int{2}) },
		func() { s.AddEquation([]int{-1}) },
		func() { s.Solve([]int{5}) },
		func() { s.Solve([]int{0, 0}) },
		func() { NewSystem(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}

// TestSolveRoundTrip generates random linear systems from a known ground
// truth assignment and verifies that solved expressions reproduce the
// ground truth values.
func TestSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(20)
		values := make([]uint8, n)
		for i := range values {
			values[i] = uint8(rng.Intn(256))
		}
		s := NewSystem(n)
		// Equations of the form: XOR of a random subset plus a correction
		// symbol chosen so the equation holds. We append an extra symbol
		// whose value we overwrite to make the XOR zero.
		eqs := 3 + rng.Intn(8)
		for e := 0; e < eqs; e++ {
			size := 2 + rng.Intn(5)
			var syms []int
			var acc uint8
			for k := 0; k < size; k++ {
				sym := rng.Intn(n - 1) // keep symbol n-1 as correction slot
				syms = append(syms, sym)
				acc ^= values[sym]
			}
			// Correct with a dedicated fresh ground-truth pair: tweak the
			// last symbol list by adding symbols until XOR is zero is
			// impossible in general, so instead define the equation to
			// include a virtual correction: use symbol n-1 only if needed
			// by adjusting its value once (first equation wins).
			if e == 0 {
				values[n-1] = acc
				syms = append(syms, n-1)
			} else {
				// Make the equation self-consistent: duplicate symbols to
				// cancel, then re-add a pair whose XOR equals acc... the
				// simplest valid equation is subset ∪ subset (cancels to
				// zero); use that for structural variety.
				syms = append(syms, syms...)
			}
			s.AddEquation(syms)
		}
		// Choose unknowns among symbols and check solved terms evaluate
		// to the ground truth.
		u := rng.Intn(n)
		sol, unsolved := s.Solve([]int{u})
		if len(unsolved) > 0 {
			continue // underdetermined is fine; nothing to verify
		}
		var acc uint8
		for _, term := range sol.Terms[u] {
			acc ^= values[term]
		}
		if acc != values[u] {
			t.Fatalf("trial %d: solved value %d != ground truth %d", trial, acc, values[u])
		}
	}
}

func TestSolvableQuickProperty(t *testing.T) {
	// Property: adding equations never makes a solvable set unsolvable.
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		s := NewSystem(n)
		for e := 0; e < 4; e++ {
			size := 2 + rng.Intn(4)
			syms := make([]int, size)
			for k := range syms {
				syms[k] = rng.Intn(n)
			}
			s.AddEquation(syms)
		}
		u := []int{rng.Intn(n)}
		before := s.Solvable(u)
		s.AddEquation([]int{rng.Intn(n), rng.Intn(n)})
		after := s.Solvable(u)
		return !before || after
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
