package gf2

import (
	"testing"
)

// FuzzSolve fuzzes the symbolic GF(2) solver that serves as the
// independent decode oracle for every erasure code in the repository.
// Equations are decoded from the byte stream (low bits pick a symbol,
// the high bit terminates the current equation); the unknown set comes
// from a bitmask. For every solved unknown the returned expression must
// (a) reference only known symbols and (b) lie in the row space of the
// equations — checked by rank equality, which is itself independent of
// the elimination order Solve used.
func FuzzSolve(f *testing.F) {
	f.Add(6, uint64(0b000101), []byte{0x00, 0x01, 0x82, 0x02, 0x03, 0x84, 0x04, 0x05, 0x80})
	f.Add(4, uint64(0b1111), []byte{0x00, 0x81, 0x02, 0x83})
	f.Add(8, uint64(0b10000001), []byte{0x00, 0x00, 0x87, 0x01, 0x02, 0x03, 0x84})
	f.Fuzz(func(t *testing.T, symbols int, unknownMask uint64, data []byte) {
		if symbols < 1 || symbols > 16 {
			t.Skip()
		}
		var unknowns []int
		for u := 0; u < symbols; u++ {
			if unknownMask&(1<<uint(u)) != 0 {
				unknowns = append(unknowns, u)
			}
		}
		sys := NewSystem(symbols)
		var equations [][]int
		cur := []int{}
		for _, b := range data {
			cur = append(cur, int(b&0x7F)%symbols)
			if b&0x80 != 0 {
				sys.AddEquation(cur)
				equations = append(equations, cur)
				cur = []int{}
				if len(equations) >= 24 {
					break
				}
			}
		}
		if len(cur) > 0 {
			sys.AddEquation(cur)
			equations = append(equations, cur)
		}

		sol, unsolved := sys.Solve(unknowns)
		if got, want := sys.Equations(), len(equations); got != want {
			t.Fatalf("system has %d equations, want %d", got, want)
		}
		if sys.Solvable(unknowns) != (len(unsolved) == 0) {
			t.Fatalf("Solvable disagrees with Solve's unsolved list %v", unsolved)
		}

		// Solved and unsolved must partition the unknown set.
		seen := make(map[int]bool, len(unknowns))
		for u := range sol.Terms {
			seen[u] = true
		}
		for _, u := range unsolved {
			if seen[u] {
				t.Fatalf("unknown %d is both solved and unsolved", u)
			}
			seen[u] = true
		}
		if len(seen) != len(unknowns) {
			t.Fatalf("solved+unsolved covers %d unknowns, want %d", len(seen), len(unknowns))
		}
		for _, u := range unknowns {
			if !seen[u] {
				t.Fatalf("unknown %d missing from both solved and unsolved", u)
			}
		}

		isUnknown := make(map[int]bool, len(unknowns))
		for _, u := range unknowns {
			isUnknown[u] = true
		}
		// Row space of the original equations (repeated symbols cancel,
		// matching GF(2) semantics).
		base := NewMatrix(len(equations), symbols)
		for r, eq := range equations {
			for _, sym := range eq {
				base.Flip(r, sym)
			}
		}
		baseRank := base.Rank(symbols)
		for u, terms := range sol.Terms {
			for _, sym := range terms {
				if isUnknown[sym] {
					t.Fatalf("unknown %d solved in terms of unknown %d", u, sym)
				}
			}
			// The identity u XOR terms... = 0 must be a linear combination
			// of the input equations: appending its vector must not raise
			// the rank.
			ext := NewMatrix(len(equations)+1, symbols)
			for r, eq := range equations {
				for _, sym := range eq {
					ext.Flip(r, sym)
				}
			}
			ext.Flip(len(equations), u)
			for _, sym := range terms {
				ext.Flip(len(equations), sym)
			}
			if ext.Rank(symbols) != baseRank {
				t.Fatalf("solution for unknown %d (terms %v) is not implied by the equations", u, terms)
			}
		}
	})
}
