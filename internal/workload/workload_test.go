package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"fbf/internal/grid"
	"fbf/internal/sim"
)

func testCells() []grid.Coord {
	var cells []grid.Coord
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			cells = append(cells, grid.Coord{Row: r, Col: c})
		}
	}
	return cells
}

func drain(t *testing.T, cfg Config) []Op {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]Op, 0, cfg.Ops)
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	if len(ops) != cfg.Ops {
		t.Fatalf("generated %d ops, want %d", len(ops), cfg.Ops)
	}
	return ops
}

// fingerprint hashes the full op stream, timestamps included.
func fingerprint(ops []Op) uint64 {
	h := fnv.New64a()
	for _, op := range ops {
		fmt.Fprintf(h, "%d|%d|%d|%d|%d|%d\n", op.Seq, op.At, op.Kind, op.Stripe, op.Cell.Row, op.Cell.Col)
	}
	return h.Sum64()
}

// keyFingerprint hashes everything except arrival times.
func keyFingerprint(ops []Op) uint64 {
	h := fnv.New64a()
	for _, op := range ops {
		fmt.Fprintf(h, "%d|%d|%d|%d|%d\n", op.Seq, op.Kind, op.Stripe, op.Cell.Row, op.Cell.Col)
	}
	return h.Sum64()
}

// TestGeneratorDeterministic pins the package's core contract: the same
// Config reproduces the identical stream (timestamps included) on
// repeated instantiations — the property the sweep harness relies on to
// make -parallel invisible in serving results.
func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{
		Ops: 5000, Rate: 2000, Stripes: 1 << 12, Cells: testCells(),
		ZipfS: 1.2, WriteFrac: 0.1, HotStripes: []int{3, 99, 512}, HotFrac: 0.3,
		Seed: 42,
	}
	want := fingerprint(drain(t, cfg))
	for i := 0; i < 3; i++ {
		if got := fingerprint(drain(t, cfg)); got != want {
			t.Fatalf("instantiation %d drifted: fingerprint %x, want %x", i, got, want)
		}
	}
}

// TestKeyStreamRateInvariant pins that changing only the client rate
// rescales timestamps without perturbing the key/kind stream: every
// rate on a latency/throughput frontier serves exactly the same
// requests.
func TestKeyStreamRateInvariant(t *testing.T) {
	base := Config{
		Ops: 4000, Rate: 500, Stripes: 1 << 10, Cells: testCells(),
		ZipfS: 1.3, WriteFrac: 0.2, HotStripes: []int{1, 2, 3}, HotFrac: 0.25,
		Seed: 7,
	}
	slow := drain(t, base)
	fast := base
	fast.Rate = 16000
	fastOps := drain(t, fast)
	if keyFingerprint(slow) != keyFingerprint(fastOps) {
		t.Fatal("key stream changed with the client rate")
	}
	for i := range slow {
		if fastOps[i].At >= slow[i].At {
			t.Fatalf("op %d: arrival %v at 16000 ops/s not before %v at 500 ops/s", i, fastOps[i].At, slow[i].At)
		}
	}
}

// TestArrivalsOpenLoop pins the arrival process: strictly increasing,
// independent of service completions (there are none here), and at the
// configured rate.
func TestArrivalsOpenLoop(t *testing.T) {
	cfg := Config{Ops: 1000, Rate: 4000, Stripes: 64, Cells: testCells(), Seed: 1}
	ops := drain(t, cfg)
	for i := 1; i < len(ops); i++ {
		if ops[i].At <= ops[i-1].At {
			t.Fatalf("arrivals not strictly increasing at %d: %v then %v", i, ops[i-1].At, ops[i].At)
		}
	}
	last := ops[len(ops)-1].At
	want := sim.Time(math.Round(float64(cfg.Ops) * float64(sim.Second) / cfg.Rate))
	if last != want {
		t.Fatalf("last arrival %v, want %v", last, want)
	}
}

// TestWriteFraction sanity-checks the read/write mix converges to the
// configured fraction.
func TestWriteFraction(t *testing.T) {
	cfg := Config{Ops: 100000, Rate: 1000, Stripes: 64, Cells: testCells(), WriteFrac: 0.3, Seed: 5}
	writes := 0
	for _, op := range drain(t, cfg) {
		if op.Kind == Write {
			writes++
		}
	}
	frac := float64(writes) / float64(cfg.Ops)
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("write fraction %.4f, want 0.3 +- 0.01", frac)
	}
}

// TestZipfFrequenciesMatchAnalytic chi-squares >= 100k Zipf draws
// against the analytic P(k) ~ 1/(1+k)^s distribution. Categories with
// small expected counts are pooled into a tail bucket, and the bound is
// mean + 10 sigma of the chi-square distribution — astronomically
// unlikely to trip for a correct sampler, deterministic for this seed
// either way.
func TestZipfFrequenciesMatchAnalytic(t *testing.T) {
	const draws = 200000
	const s = 1.4
	const stripes = 1 << 10
	cfg := Config{Ops: draws, Rate: 1000, Stripes: stripes, Cells: testCells(), ZipfS: s, Seed: 99}
	counts := make([]int, stripes)
	for _, op := range drain(t, cfg) {
		counts[op.Stripe]++
	}
	pmf := ZipfPMF(s, stripes)

	// Pool categories until each has an expected count of at least 10.
	var chi2 float64
	df := -1 // categories - 1
	var obsPool, expPool float64
	for k := 0; k < stripes; k++ {
		obsPool += float64(counts[k])
		expPool += pmf[k] * draws
		if expPool >= 10 {
			d := obsPool - expPool
			chi2 += d * d / expPool
			df++
			obsPool, expPool = 0, 0
		}
	}
	if expPool > 0 {
		d := obsPool - expPool
		chi2 += d * d / expPool
		df++
	}
	if df < 10 {
		t.Fatalf("degenerate pooling: only %d degrees of freedom", df)
	}
	bound := float64(df) + 10*math.Sqrt(2*float64(df))
	if chi2 > bound {
		t.Fatalf("chi-square %.1f over %d df exceeds bound %.1f: Zipf frequencies drifted from analytic distribution", chi2, df, bound)
	}
}

// TestZipfPMFNormalized pins the analytic reference itself.
func TestZipfPMFNormalized(t *testing.T) {
	pmf := ZipfPMF(1.4, 1000)
	var sum float64
	for k, p := range pmf {
		if p <= 0 {
			t.Fatalf("pmf[%d] = %v not positive", k, p)
		}
		if k > 0 && p >= pmf[k-1] {
			t.Fatalf("pmf not strictly decreasing at %d", k)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pmf sums to %v, want 1", sum)
	}
}

// TestConfigValidate walks the rejection table.
func TestConfigValidate(t *testing.T) {
	good := Config{Ops: 10, Rate: 100, Stripes: 4, Cells: testCells()}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Ops: -1, Rate: 100, Stripes: 4, Cells: testCells()},
		{Ops: 10, Rate: 0, Stripes: 4, Cells: testCells()},
		{Ops: 10, Rate: 100, Stripes: 0, Cells: testCells()},
		{Ops: 10, Rate: 100, Stripes: 4},
		{Ops: 10, Rate: 100, Stripes: 4, Cells: testCells(), WriteFrac: 1.5},
		{Ops: 10, Rate: 100, Stripes: 4, Cells: testCells(), HotFrac: -0.1},
		{Ops: 10, Rate: 100, Stripes: 4, Cells: testCells(), HotFrac: 0.5},
		{Ops: 10, Rate: 100, Stripes: 1, Cells: testCells(), ZipfS: 1.2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
