// Package workload generates deterministic foreground request streams
// for the serving experiments: an open-loop arrival process at a
// configurable client rate over a YCSB-style read/write mix with
// Zipf-skewed stripe popularity and an optional hot set (the stripes
// under repair, modeling the spatial locality of traffic around failing
// regions).
//
// Determinism is the package's contract. Every draw comes from one
// seeded RNG, so a Config reproduces the identical operation stream on
// any host at any sweep parallelism. Arrival timestamps are computed
// arithmetically from Rate without consuming randomness, so two
// generators that differ only in Rate produce byte-identical key and
// kind streams — only the timestamps compress. That is what makes a
// latency/throughput frontier comparable across client rates: every
// rate serves exactly the same requests, faster.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"fbf/internal/grid"
	"fbf/internal/sim"
)

// Kind is the operation type.
type Kind uint8

const (
	// Read fetches one chunk.
	Read Kind = iota
	// Write updates one data chunk with a parity read-modify-write.
	Write
)

// String names the kind.
func (k Kind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Op is one foreground operation.
type Op struct {
	Seq    int      // 0-based ordinal in the stream
	At     sim.Time // open-loop arrival time
	Kind   Kind
	Stripe int
	Cell   grid.Coord
}

// Config parameterizes a stream.
type Config struct {
	Ops     int     // total operations to generate
	Rate    float64 // arrivals per second of simulated time (open loop)
	Stripes int     // stripe-address space
	Cells   []grid.Coord // candidate cells within a stripe (typically the layout's data cells)

	ZipfS     float64 // stripe-popularity skew; <= 1 means uniform
	WriteFrac float64 // fraction of operations that are writes, [0, 1]

	// HotStripes is an optional hot set (e.g. the stripes with partial
	// stripe errors); each operation lands on a uniformly drawn hot
	// stripe with probability HotFrac, and on the Zipf/uniform-popular
	// stripe otherwise.
	HotStripes []int
	HotFrac    float64

	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Ops < 0:
		return fmt.Errorf("workload: negative op count %d", c.Ops)
	case !(c.Rate > 0):
		return fmt.Errorf("workload: non-positive rate %v ops/sec", c.Rate)
	case c.Stripes <= 0:
		return fmt.Errorf("workload: non-positive stripe count %d", c.Stripes)
	case len(c.Cells) == 0:
		return fmt.Errorf("workload: no candidate cells")
	case c.WriteFrac < 0 || c.WriteFrac > 1:
		return fmt.Errorf("workload: write fraction %v outside [0, 1]", c.WriteFrac)
	case c.HotFrac < 0 || c.HotFrac > 1:
		return fmt.Errorf("workload: hot fraction %v outside [0, 1]", c.HotFrac)
	case c.HotFrac > 0 && len(c.HotStripes) == 0:
		return fmt.Errorf("workload: hot fraction %v with no hot stripes", c.HotFrac)
	case c.ZipfS > 1 && c.Stripes < 2:
		return fmt.Errorf("workload: Zipf-skewed popularity needs at least 2 stripes")
	}
	return nil
}

// Generator produces the operation stream one Op at a time.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	seq  int
}

// New builds a generator. The same Config always yields the same
// stream.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.ZipfS > 1 {
		g.zipf = rand.NewZipf(g.rng, cfg.ZipfS, 1, uint64(cfg.Stripes-1))
	}
	return g, nil
}

// ArrivalAt returns the open-loop arrival time of operation seq at the
// given rate: (seq+1)/rate seconds, rounded to the nanosecond. Pure
// arithmetic — no randomness — so the key stream is rate-invariant.
func ArrivalAt(seq int, rate float64) sim.Time {
	return sim.Time(math.Round(float64(seq+1) * float64(sim.Second) / rate))
}

// Next returns the next operation, or ok=false when the stream is
// exhausted.
func (g *Generator) Next() (op Op, ok bool) {
	if g.seq >= g.cfg.Ops {
		return Op{}, false
	}
	op.Seq = g.seq
	op.At = ArrivalAt(g.seq, g.cfg.Rate)
	g.seq++

	// Draw order is fixed (kind, placement, stripe, cell) so streams
	// with the same seed stay aligned draw for draw.
	if g.cfg.WriteFrac > 0 && g.rng.Float64() < g.cfg.WriteFrac {
		op.Kind = Write
	}
	hot := false
	if g.cfg.HotFrac > 0 {
		hot = g.rng.Float64() < g.cfg.HotFrac
	}
	switch {
	case hot:
		op.Stripe = g.cfg.HotStripes[g.rng.Intn(len(g.cfg.HotStripes))]
	case g.zipf != nil:
		op.Stripe = int(g.zipf.Uint64())
	default:
		op.Stripe = g.rng.Intn(g.cfg.Stripes)
	}
	op.Cell = g.cfg.Cells[g.rng.Intn(len(g.cfg.Cells))]
	return op, true
}

// ZipfPMF returns the analytic probability mass function of the
// generator's stripe-popularity distribution with skew s over n
// stripes: P(k) proportional to 1/(1+k)^s, the distribution
// math/rand's Zipf sampler draws from (v = 1). The workload tests
// chi-square the generated frequencies against it.
func ZipfPMF(s float64, n int) []float64 {
	pmf := make([]float64, n)
	var sum float64
	for k := range pmf {
		pmf[k] = math.Pow(1+float64(k), -s)
		sum += pmf[k]
	}
	for k := range pmf {
		pmf[k] /= sum
	}
	return pmf
}
