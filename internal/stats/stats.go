// Package stats provides the small statistical accumulators the
// experiment harness reports with: streaming mean/variance, min/max and
// fixed-boundary histograms.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean is a streaming mean/variance accumulator (Welford's algorithm).
type Mean struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in.
func (m *Mean) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// N returns the observation count.
func (m *Mean) N() uint64 { return m.n }

// Mean returns the running mean (0 with no observations).
func (m *Mean) Mean() float64 { return m.mean }

// Min returns the smallest observation (0 with no observations).
func (m *Mean) Min() float64 { return m.min }

// Max returns the largest observation (0 with no observations).
func (m *Mean) Max() float64 { return m.max }

// Variance returns the sample variance (0 with fewer than two
// observations).
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// String summarizes the accumulator.
func (m *Mean) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f", m.n, m.Mean(), m.StdDev(), m.min, m.max)
}

// Histogram counts observations into fixed bucket boundaries:
// bucket i holds values in (bounds[i-1], bounds[i]]; an implicit last
// bucket catches everything above the final bound.
type Histogram struct {
	bounds []float64
	counts []uint64
	total  uint64
}

// LogBounds returns geometrically spaced bucket bounds for latency
// histograms: lo, lo*factor, lo*factor^2, ... until the first bound at
// or above hi. Quantiles read from such a histogram are upper bounds
// with a worst-case relative error of factor-1, which is what the
// serving experiments use for p50/p99/p999 percentiles spanning cache
// hits (sub-millisecond) to deep saturation (seconds).
func LogBounds(lo, hi, factor float64) ([]float64, error) {
	if !(lo > 0) || !(hi > lo) {
		return nil, fmt.Errorf("stats: log bounds need 0 < lo < hi, got [%g, %g]", lo, hi)
	}
	if !(factor > 1) {
		return nil, fmt.Errorf("stats: log bounds growth factor %g not above 1", factor)
	}
	var bounds []float64
	for b := lo; ; b *= factor {
		bounds = append(bounds, b)
		if b >= hi {
			return bounds, nil
		}
	}
}

// NewHistogram builds a histogram over strictly increasing bounds.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("stats: histogram bounds not increasing at %d", i)
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(bounds)+1)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	for i, b := range h.bounds {
		if x <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Total returns the observation count.
func (h *Histogram) Total() uint64 { return h.total }

// Bounds returns a copy of the bucket boundaries.
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// Merge folds other's counts into h. The two histograms must share
// identical bucket boundaries (merging differently bucketed histograms
// has no well-defined result).
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if len(other.bounds) != len(h.bounds) {
		return fmt.Errorf("stats: merge of mismatched histograms (%d vs %d bounds)", len(h.bounds), len(other.bounds))
	}
	for i, b := range h.bounds {
		if other.bounds[i] != b {
			return fmt.Errorf("stats: merge of mismatched histograms (bound %d: %g vs %g)", i, b, other.bounds[i])
		}
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	return nil
}

// Reset clears every count, keeping the bounds. The QoS controller's
// per-window latency histogram is recycled this way between decision
// intervals.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
}

// Counts returns a copy of the bucket counts (len(bounds)+1 entries; the
// last is the overflow bucket).
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Quantile returns an upper bound for the q-quantile based on bucket
// boundaries; the overflow bucket reports +Inf. q is clamped to [0, 1]
// (NaN included): q <= 0 reports the first non-empty bucket's bound and
// q >= 1 the last non-empty bucket's. With no observations it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if !(q > 0) { // also catches NaN
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// String renders the non-empty buckets, or "empty" with no
// observations (so log lines never silently print a blank).
func (h *Histogram) String() string {
	if h.total == 0 {
		return "empty"
	}
	var sb strings.Builder
	prev := math.Inf(-1)
	for i, c := range h.counts {
		if c == 0 {
			if i < len(h.bounds) {
				prev = h.bounds[i]
			}
			continue
		}
		upper := math.Inf(1)
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		fmt.Fprintf(&sb, "(%g,%g]:%d ", prev, upper, c)
		prev = upper
	}
	return strings.TrimSpace(sb.String())
}

// Improvement returns the relative improvement of measured over
// baseline, as a fraction: (baseline - measured) / baseline for
// lower-is-better metrics. Use Gain for higher-is-better metrics.
func Improvement(baseline, measured float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - measured) / baseline
}

// Gain returns measured/baseline - 1 for higher-is-better metrics (a
// gain of 1.47 means "2.47x the baseline" in the paper's phrasing).
func Gain(baseline, measured float64) float64 {
	if baseline == 0 {
		return 0
	}
	return measured/baseline - 1
}
