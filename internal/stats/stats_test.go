package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 {
		t.Errorf("N = %d", m.N())
	}
	if m.Mean() != 5 {
		t.Errorf("Mean = %f", m.Mean())
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Errorf("min/max = %f/%f", m.Min(), m.Max())
	}
	// Sample variance of this classic dataset is 32/7.
	if got, want := m.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Variance = %f, want %f", got, want)
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}

func TestMeanEdge(t *testing.T) {
	var m Mean
	if m.Mean() != 0 || m.Variance() != 0 || m.StdDev() != 0 {
		t.Error("empty accumulator should be zeroes")
	}
	m.Add(3)
	if m.Variance() != 0 {
		t.Error("single-sample variance should be 0")
	}
}

func TestMeanMatchesDirectComputation(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		var m Mean
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			m.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(n-1)
		return math.Abs(m.Mean()-mean) < 1e-6 && math.Abs(m.Variance()-wantVar) < 1e-4
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1, 5, 50, 500} {
		h.Add(x)
	}
	counts := h.Counts()
	want := []uint64{2, 1, 1, 1} // (−inf,1], (1,10], (10,100], overflow
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], want[i])
		}
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Errorf("median bound = %f, want 10", q)
	}
	if q := h.Quantile(1.0); !math.IsInf(q, 1) {
		t.Errorf("max quantile = %f, want +Inf", q)
	}
	if h.String() == "" {
		t.Error("empty String")
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("non-increasing bounds accepted")
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h, _ := NewHistogram([]float64{1})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestImprovementAndGain(t *testing.T) {
	if got := Improvement(10, 8); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Improvement = %f", got)
	}
	if got := Improvement(0, 8); got != 0 {
		t.Errorf("Improvement with zero baseline = %f", got)
	}
	if got := Gain(0.2, 0.494); math.Abs(got-1.47) > 1e-9 {
		t.Errorf("Gain = %f", got)
	}
	if got := Gain(0, 1); got != 0 {
		t.Errorf("Gain with zero baseline = %f", got)
	}
}

func TestHistogramBounds(t *testing.T) {
	h, _ := NewHistogram([]float64{1, 5})
	b := h.Bounds()
	if len(b) != 2 || b[0] != 1 || b[1] != 5 {
		t.Fatalf("Bounds = %v", b)
	}
	b[0] = 99 // must be a copy
	if h.Bounds()[0] != 1 {
		t.Fatal("Bounds returned backing store")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, _ := NewHistogram([]float64{1, 5})
	b, _ := NewHistogram([]float64{1, 5})
	a.Add(0.5)
	b.Add(3)
	b.Add(100)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 3 {
		t.Fatalf("merged total = %d", a.Total())
	}
	if got := a.Counts(); got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("merged counts = %v", got)
	}
	// Merging nil is a no-op.
	if err := a.Merge(nil); err != nil || a.Total() != 3 {
		t.Fatalf("nil merge: err=%v total=%d", err, a.Total())
	}
	// Mismatched bounds are rejected, by count and by value.
	c, _ := NewHistogram([]float64{1})
	if err := a.Merge(c); err == nil {
		t.Error("merge with fewer bounds accepted")
	}
	d, _ := NewHistogram([]float64{1, 6})
	if err := a.Merge(d); err == nil {
		t.Error("merge with different bounds accepted")
	}
}

func TestHistogramStringEmpty(t *testing.T) {
	h, _ := NewHistogram([]float64{1})
	if got := h.String(); got != "empty" {
		t.Fatalf("empty String() = %q", got)
	}
	h.Add(0.5)
	if got := h.String(); got == "empty" || got == "" {
		t.Fatalf("non-empty String() = %q", got)
	}
}

// bucketUpperBound returns the upper bound of the bucket x falls in
// (the overflow bucket reports +Inf) — the value Quantile is specified
// to report for any quantile whose exact order statistic is x.
func bucketUpperBound(bounds []float64, x float64) float64 {
	for _, b := range bounds {
		if x <= b {
			return b
		}
	}
	return math.Inf(1)
}

// TestQuantileMatchesSortedSlice cross-checks Histogram.Quantile
// against exact order statistics on random inputs: for every q, the
// reported bound must be the upper bound of the bucket holding the
// exact sorted-slice quantile ceil(q*n). This is the contract the
// serving experiments' p50/p99/p999 reporting rests on.
func TestQuantileMatchesSortedSlice(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bounds, err := LogBounds(0.25, 1e4, 1+0.05+rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHistogram(bounds)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			// Log-uniform over the bound range, with excursions past both
			// ends to exercise the first and overflow buckets.
			xs[i] = 0.1 * math.Pow(10, rng.Float64()*6)
			h.Add(xs[i])
		}
		sort.Float64s(xs)
		for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := xs[rank-1]
			want := bucketUpperBound(bounds, exact)
			got := h.Quantile(q)
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Errorf("seed %d n %d q %v: Quantile = %v, exact %v lies in bucket bounded by %v", seed, n, q, got, exact, want)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

// TestMergeMatchesPooledQuantiles pins that merging shards and then
// reading quantiles equals accumulating every observation into one
// histogram — the property that lets sweep workers histogram privately
// and merge at the end.
func TestMergeMatchesPooledQuantiles(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bounds, _ := LogBounds(0.5, 1e3, 1.3)
		pooled, _ := NewHistogram(bounds)
		merged, _ := NewHistogram(bounds)
		shards := 1 + rng.Intn(5)
		for s := 0; s < shards; s++ {
			shard, _ := NewHistogram(bounds)
			for i, n := 0, rng.Intn(200); i < n; i++ {
				x := math.Pow(10, rng.Float64()*4-0.5)
				pooled.Add(x)
				shard.Add(x)
			}
			if err := merged.Merge(shard); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Total() != pooled.Total() {
			return false
		}
		pc, mc := pooled.Counts(), merged.Counts()
		for i := range pc {
			if pc[i] != mc[i] {
				return false
			}
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
			pq, mq := pooled.Quantile(q), merged.Quantile(q)
			if pq != mq && !(math.IsInf(pq, 1) && math.IsInf(mq, 1)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestLogBounds(t *testing.T) {
	b, err := LogBounds(0.25, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0.25 {
		t.Fatalf("first bound %v", b[0])
	}
	if last := b[len(b)-1]; last < 1000 {
		t.Fatalf("last bound %v below hi", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %v", i, b)
		}
	}
	// LogBounds output must be accepted by NewHistogram verbatim.
	if _, err := NewHistogram(b); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][3]float64{{0, 10, 2}, {1, 1, 2}, {5, 1, 2}, {1, 10, 1}, {1, 10, 0.5}} {
		if _, err := LogBounds(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("LogBounds(%v) accepted", bad)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h, _ := NewHistogram([]float64{1, 5, 10})
	h.Add(0.5) // bucket (-inf,1]
	h.Add(7)   // bucket (5,10]
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1},    // clamped: first non-empty bucket
		{-3, 1},   // clamped below
		{math.NaN(), 1},
		{0.5, 1},
		{1, 10},  // last non-empty bucket
		{2, 10},  // clamped above
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Overflow bucket reports +Inf.
	h.Add(50)
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("Quantile(1) with overflow = %v, want +Inf", got)
	}
	// Single-bucket histogram.
	s, _ := NewHistogram([]float64{1})
	s.Add(0.1)
	if got := s.Quantile(0.5); got != 1 {
		t.Errorf("single-bucket Quantile = %v", got)
	}
}
