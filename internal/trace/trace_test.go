package trace

import (
	"bytes"
	"strings"
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
)

func TestSizeDistNames(t *testing.T) {
	for _, d := range []SizeDist{SizeUniform, SizeFixed, SizeGeometric} {
		parsed, err := ParseSizeDist(d.String())
		if err != nil || parsed != d {
			t.Errorf("round trip %v failed: %v %v", d, parsed, err)
		}
	}
	if _, err := ParseSizeDist("nope"); err == nil {
		t.Error("ParseSizeDist(nope) should fail")
	}
	if SizeDist(9).String() != "SizeDist(9)" {
		t.Error("invalid dist String wrong")
	}
}

func TestGenerateUniform(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors, err := Generate(code, Config{Groups: 500, Stripes: 1000, Seed: 1, Disk: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(errors) != 500 {
		t.Fatalf("got %d groups", len(errors))
	}
	sizes := map[int]int{}
	for _, e := range errors {
		if err := e.Validate(code); err != nil {
			t.Fatalf("invalid error %v: %v", e, err)
		}
		sizes[e.Size]++
	}
	// Uniform over [1,6]: every size must occur.
	for s := 1; s <= 6; s++ {
		if sizes[s] == 0 {
			t.Errorf("size %d never drawn", s)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	code := codes.MustNew("star", 5)
	a, _ := Generate(code, Config{Groups: 50, Stripes: 100, Seed: 7, Disk: -1})
	b, _ := Generate(code, Config{Groups: 50, Stripes: 100, Seed: 7, Disk: -1})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c, _ := Generate(code, Config{Groups: 50, Stripes: 100, Seed: 8, Disk: -1})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGeneratePinnedDisk(t *testing.T) {
	code := codes.MustNew("hdd1", 5)
	errors, err := Generate(code, Config{Groups: 30, Stripes: 100, Seed: 2, Disk: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range errors {
		if e.Disk != 3 {
			t.Fatalf("error on disk %d, want 3", e.Disk)
		}
	}
}

func TestGenerateDistinctStripesWhilePossible(t *testing.T) {
	code := codes.MustNew("tip", 5)
	errors, err := Generate(code, Config{Groups: 50, Stripes: 100, Seed: 3, Disk: 0})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, e := range errors {
		if seen[e.Stripe] {
			t.Fatalf("stripe %d reused with %d stripes available", e.Stripe, 100)
		}
		seen[e.Stripe] = true
	}
}

func TestGenerateFixedSize(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors, err := Generate(code, Config{Groups: 20, Stripes: 50, Seed: 4, Disk: 0, Dist: SizeFixed, FixedSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range errors {
		if e.Size != 5 {
			t.Fatalf("size %d, want 5", e.Size)
		}
	}
}

func TestGenerateGeometric(t *testing.T) {
	code := codes.MustNew("tip", 13)
	errors, err := Generate(code, Config{Groups: 400, Stripes: 1000, Seed: 5, Disk: 0, Dist: SizeGeometric})
	if err != nil {
		t.Fatal(err)
	}
	small, large := 0, 0
	for _, e := range errors {
		if e.Size <= 2 {
			small++
		}
		if e.Size >= 10 {
			large++
		}
	}
	if small <= large {
		t.Errorf("geometric sizes not skewed small: small=%d large=%d", small, large)
	}
}

func TestGenerateErrors(t *testing.T) {
	code := codes.MustNew("tip", 5)
	cases := []Config{
		{Groups: 0, Stripes: 10},
		{Groups: 10, Stripes: 0},
		{Groups: 10, Stripes: 10, Disk: 99},
		{Groups: 10, Stripes: 10, Dist: SizeFixed, FixedSize: 0},
		{Groups: 10, Stripes: 10, Dist: SizeFixed, FixedSize: 99},
		{Groups: 10, Stripes: 10, Dist: SizeDist(42)},
	}
	for i, cfg := range cases {
		if _, err := Generate(code, cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	code := codes.MustNew("star", 7)
	errors, err := Generate(code, Config{Groups: 40, Stripes: 80, Seed: 6, Disk: -1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, errors); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(errors) {
		t.Fatalf("round trip count %d != %d", len(back), len(errors))
	}
	for i := range errors {
		if back[i] != errors[i] {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, back[i], errors[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("stripe,disk,row,size\n1,2,3\n")); err == nil {
		t.Error("short row accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,x,3,4\n")); err == nil {
		t.Error("non-numeric accepted")
	}
	out, err := ReadCSV(strings.NewReader("stripe,disk,row,size\n\n1,2,0,1\n"))
	if err != nil || len(out) != 1 {
		t.Errorf("blank lines not skipped: %v %v", out, err)
	}
}

func TestGenerateClustered(t *testing.T) {
	code := codes.MustNew("tip", 7)
	// neighborFrac reports the fraction of errors with a same-disk
	// neighbour within `within` stripes — the statistic Schroeder et al.
	// report for latent sector errors (20-60% within ten sectors).
	neighborFrac := func(errors []core.PartialStripeError, within int) float64 {
		n := 0
		for i, e := range errors {
			for j, o := range errors {
				if i == j || o.Disk != e.Disk {
					continue
				}
				gap := e.Stripe - o.Stripe
				if gap < 0 {
					gap = -gap
				}
				if gap <= within {
					n++
					break
				}
			}
		}
		return float64(n) / float64(len(errors))
	}
	base := Config{Groups: 200, Stripes: 100000, Seed: 9, Disk: -1}
	uniform, err := Generate(code, base)
	if err != nil {
		t.Fatal(err)
	}
	clustered := base
	clustered.Clustered = true
	burst, err := Generate(code, clustered)
	if err != nil {
		t.Fatal(err)
	}
	if len(burst) != 200 {
		t.Fatalf("clustered generated %d groups", len(burst))
	}
	for _, e := range burst {
		if err := e.Validate(code); err != nil {
			t.Fatalf("invalid clustered error %v: %v", e, err)
		}
	}
	u, c := neighborFrac(uniform, 16), neighborFrac(burst, 16)
	if c < 0.35 {
		t.Errorf("clustered neighbour fraction %.2f, want >= 0.35 (paper cites 20-60%%)", c)
	}
	if c <= u {
		t.Errorf("clustering no denser than uniform: %.2f vs %.2f", c, u)
	}
	// No duplicate (stripe, disk) pairs even when clustered.
	seen := map[[2]int]bool{}
	for _, e := range burst {
		k := [2]int{e.Stripe, e.Disk}
		if seen[k] {
			t.Fatalf("duplicate error location %v", k)
		}
		seen[k] = true
	}
}

func TestGenerateClusteredDeterministic(t *testing.T) {
	code := codes.MustNew("star", 5)
	cfg := Config{Groups: 60, Stripes: 5000, Seed: 3, Disk: -1, Clustered: true, ClusterSpread: 8}
	a, _ := Generate(code, cfg)
	b, _ := Generate(code, cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("clustered generation not deterministic")
		}
	}
}
