// Package trace generates and (de)serializes the synthetic partial
// stripe error workloads of the paper's evaluation: groups of contiguous
// chunk errors on a disk, with sizes drawn from a configurable
// distribution (uniform over [1, p-1] chunks in the paper, mean half a
// stripe).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"fbf/internal/core"
)

// SizeDist selects the distribution of partial-stripe error sizes.
type SizeDist uint8

const (
	// SizeUniform draws sizes uniformly from [1, p-1] — the paper's
	// distribution, with mean (p-1)/2 chunks ("half size of the stripe").
	SizeUniform SizeDist = iota
	// SizeFixed uses Config.FixedSize for every group.
	SizeFixed
	// SizeGeometric draws sizes geometrically (small errors frequent,
	// footnote 2 of the paper: "FBF can be proved under other
	// distributions as well"), clamped to [1, p-1].
	SizeGeometric
)

// String names the distribution.
func (d SizeDist) String() string {
	switch d {
	case SizeUniform:
		return "uniform"
	case SizeFixed:
		return "fixed"
	case SizeGeometric:
		return "geometric"
	default:
		return fmt.Sprintf("SizeDist(%d)", uint8(d))
	}
}

// ParseSizeDist converts a name into a SizeDist.
func ParseSizeDist(name string) (SizeDist, error) {
	switch name {
	case "uniform":
		return SizeUniform, nil
	case "fixed":
		return SizeFixed, nil
	case "geometric":
		return SizeGeometric, nil
	default:
		return 0, fmt.Errorf("trace: unknown size distribution %q", name)
	}
}

// Config parameterizes workload generation.
type Config struct {
	Groups  int   // number of partial stripe error groups
	Stripes int   // stripes on the array (errors land on distinct stripes when possible)
	Seed    int64 // RNG seed; equal seeds give equal traces

	// Disk pins every error to one disk (the paper's Figure 3 scenario).
	// When negative, each group picks a disk uniformly at random.
	Disk int

	Dist      SizeDist
	FixedSize int     // for SizeFixed
	GeoP      float64 // success probability for SizeGeometric (default 0.4)

	// Clustered generates errors in spatial bursts, modeling the strong
	// locality of latent sector errors (Bairavasundaram et al.;
	// Schroeder et al. — 20–60% of errors have a neighbour within ten
	// sectors, Section II-C of the paper): with probability
	// ClusterAffinity a new group lands within ClusterSpread stripes of
	// an earlier one, on the same disk.
	Clustered       bool
	ClusterAffinity float64 // default 0.5
	ClusterSpread   int     // default 16 stripes
}

// Generate produces the error groups for a code under the config.
// Errors on the same stripe and disk are avoided by drawing distinct
// stripes while enough exist.
func Generate(code core.Geometry, cfg Config) ([]core.PartialStripeError, error) {
	if cfg.Groups <= 0 {
		return nil, fmt.Errorf("trace: non-positive group count %d", cfg.Groups)
	}
	if cfg.Stripes <= 0 {
		return nil, fmt.Errorf("trace: non-positive stripe count %d", cfg.Stripes)
	}
	if cfg.Disk >= code.Disks() {
		return nil, fmt.Errorf("trace: disk %d out of range [0,%d)", cfg.Disk, code.Disks())
	}
	maxSize := code.MaxPartialSize()
	if maxSize > code.Rows() {
		maxSize = code.Rows()
	}
	if cfg.Dist == SizeFixed && (cfg.FixedSize < 1 || cfg.FixedSize > maxSize) {
		return nil, fmt.Errorf("trace: fixed size %d out of range [1,%d]", cfg.FixedSize, maxSize)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	geoP := cfg.GeoP
	if geoP <= 0 || geoP >= 1 {
		geoP = 0.4
	}

	affinity := cfg.ClusterAffinity
	if affinity <= 0 || affinity >= 1 {
		affinity = 0.5
	}
	spread := cfg.ClusterSpread
	if spread <= 0 {
		spread = 16
	}

	// Draw distinct stripes while possible, then allow reuse; never
	// place two error groups on the same (stripe, disk).
	perm := rng.Perm(cfg.Stripes)
	used := make(map[[2]int]bool, cfg.Groups)
	type anchor struct{ stripe, disk int }
	var anchors []anchor
	out := make([]core.PartialStripeError, 0, cfg.Groups)
	for g := 0; g < cfg.Groups; g++ {
		var stripe, disk int
		placed := false
		if cfg.Clustered && len(anchors) > 0 && rng.Float64() < affinity {
			// Burst near an earlier error: same disk, nearby stripe.
			for attempt := 0; attempt < 8; attempt++ {
				a := anchors[rng.Intn(len(anchors))]
				s := a.stripe + rng.Intn(2*spread+1) - spread
				if s < 0 {
					s = 0
				}
				if s >= cfg.Stripes {
					s = cfg.Stripes - 1
				}
				if !used[[2]int{s, a.disk}] {
					stripe, disk, placed = s, a.disk, true
					break
				}
			}
		}
		if !placed {
			if g < len(perm) {
				stripe = perm[g]
			} else {
				stripe = rng.Intn(cfg.Stripes)
			}
			disk = cfg.Disk
			if disk < 0 {
				disk = rng.Intn(code.Disks())
			}
			anchors = append(anchors, anchor{stripe: stripe, disk: disk})
		}
		used[[2]int{stripe, disk}] = true
		var size int
		switch cfg.Dist {
		case SizeUniform:
			size = 1 + rng.Intn(maxSize)
		case SizeFixed:
			size = cfg.FixedSize
		case SizeGeometric:
			size = 1
			for size < maxSize && rng.Float64() > geoP {
				size++
			}
		default:
			return nil, fmt.Errorf("trace: invalid size distribution %d", cfg.Dist)
		}
		row := 0
		if span := code.Rows() - size; span > 0 {
			row = rng.Intn(span + 1)
		}
		e := core.PartialStripeError{Stripe: stripe, Disk: disk, Row: row, Size: size}
		if err := e.Validate(code); err != nil {
			return nil, fmt.Errorf("trace: generated invalid error: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}

// WriteCSV serializes errors as "stripe,disk,row,size" lines with a
// header.
func WriteCSV(w io.Writer, errors []core.PartialStripeError) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "stripe,disk,row,size"); err != nil {
		return err
	}
	for _, e := range errors {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d\n", e.Stripe, e.Disk, e.Row, e.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the format written by WriteCSV.
func ReadCSV(r io.Reader) ([]core.PartialStripeError, error) {
	sc := bufio.NewScanner(r)
	var out []core.PartialStripeError
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 && strings.HasPrefix(text, "stripe") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", line, len(parts))
		}
		var vals [4]int
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("trace: line %d field %d: %w", line, i+1, err)
			}
			vals[i] = v
		}
		out = append(out, core.PartialStripeError{Stripe: vals[0], Disk: vals[1], Row: vals[2], Size: vals[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
