package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"fbf/internal/sim"
)

// Event schema: the categories and names the instrumented engines emit.
// DESIGN.md §10 documents the args of each. Keep these stable — traces
// are parsed by name.
const (
	CatGroup  = "group"  // span "group": one error group's repair
	CatChunk  = "chunk"  // span "repair": one lost chunk's chain replay
	CatScheme = "scheme" // span "scheme-gen": recovery-scheme generation
	CatCache  = "cache"  // instants "hit", "miss", "evict", "invalidate", "demote"
	CatIO     = "io"     // spans "read"/"write" and counter "queue" on disk lanes
	CatXOR    = "xor"    // span "xor": chain XOR compute
	CatFault  = "fault"  // instants "retry", "escalate", "disk-fail", "re-plan", "regenerate", "data-loss"
	CatApp    = "app"    // instants "hit", "miss" of the foreground workload
	CatServe  = "serve"  // instants "read", "write", "failed" of the serving workload (stripe class + latency)
)

// DiskUtil is one disk lane's time-weighted load in a Summary.
type DiskUtil struct {
	Disk        int
	Busy        sim.Time // summed io span time
	Utilization float64  // Busy / Makespan
	PeakQueue   int64    // max of the "queue" counter
	Reads       int      // successful read spans
	Writes      int      // successful write spans
}

// NameCount is one (category, name) event tally.
type NameCount struct {
	Cat   string
	Name  string
	Count int
}

// ServeLatency digests one stripe class's foreground serving latency
// from the CatServe instants ("read"/"write" with class and us args).
// Percentiles are exact (nearest-rank over the sorted latencies), in
// simulated microseconds.
type ServeLatency struct {
	Class  string // "healthy", "degraded", "lost"
	Ops    int
	MeanUs int64
	P50Us  int64
	P99Us  int64
	MaxUs  int64
}

// serveClassName maps the serving instants' class arg (the engine's
// StripeClass: 0 healthy, 1 degraded, 2 lost) to its report label.
func serveClassName(class int64) string {
	switch class {
	case 0:
		return "healthy"
	case 1:
		return "degraded"
	case 2:
		return "lost"
	}
	return fmt.Sprintf("class-%d", class)
}

// Summary is the per-phase breakdown of one trace: where simulated time
// went (scheme generation, disk reads, XOR compute, spare writes),
// how evenly the disks carried the load, and how often each event
// fired.
type Summary struct {
	Events   int
	Makespan sim.Time // latest event end

	// Summed simulated span time per phase. Disk phases overlap across
	// disks and workers, so these exceed Makespan on parallel runs —
	// they are resource-time, not wall-time.
	SchemeGen sim.Time
	Read      sim.Time
	Write     sim.Time
	XOR       sim.Time

	Groups int // error groups repaired
	Chunks int // lost chunks repaired

	Disks  []DiskUtil  // per disk lane, ordered by id
	Counts []NameCount // instant tallies, ordered by (cat, name)

	// Serving latency per stripe class, ordered healthy → degraded →
	// lost; empty for traces without CatServe instants (pre-serving
	// runs), which keeps their reports unchanged.
	Serving []ServeLatency
}

// PeakQueue returns the maximum queue occupancy across all disks.
func (s *Summary) PeakQueue() int64 {
	var peak int64
	for _, d := range s.Disks {
		if d.PeakQueue > peak {
			peak = d.PeakQueue
		}
	}
	return peak
}

// MeanUtilization returns the mean per-disk utilization.
func (s *Summary) MeanUtilization() float64 {
	if len(s.Disks) == 0 {
		return 0
	}
	var sum float64
	for _, d := range s.Disks {
		sum += d.Utilization
	}
	return sum / float64(len(s.Disks))
}

// Summarize computes the per-phase breakdown of an event stream.
func Summarize(events []Event) *Summary {
	s := &Summary{Events: len(events)}
	disks := map[int]*DiskUtil{}
	counts := map[[2]string]int{}
	serveUs := map[int64][]int64{}
	for _, e := range events {
		if end := e.TS + e.Dur; end > s.Makespan {
			s.Makespan = end
		}
		switch e.Ph {
		case PhaseSpan:
			switch e.Cat {
			case CatScheme:
				s.SchemeGen += e.Dur
			case CatXOR:
				s.XOR += e.Dur
			case CatGroup:
				s.Groups++
			case CatChunk:
				s.Chunks++
			case CatIO:
				d, ok := disks[e.Track.ID]
				if !ok {
					d = &DiskUtil{Disk: e.Track.ID}
					disks[e.Track.ID] = d
				}
				d.Busy += e.Dur
				failed := false
				for _, a := range e.Args {
					if a.Key == "failed" && a.Val != 0 {
						failed = true
					}
				}
				switch e.Name {
				case "write":
					s.Write += e.Dur
					if !failed {
						d.Writes++
					}
				default:
					s.Read += e.Dur
					if !failed {
						d.Reads++
					}
				}
			}
		case PhaseInstant:
			counts[[2]string{e.Cat, e.Name}]++
			if e.Cat == CatServe && (e.Name == "read" || e.Name == "write") {
				class, us := int64(-1), int64(-1)
				for _, a := range e.Args {
					switch a.Key {
					case "class":
						class = a.Val
					case "us":
						us = a.Val
					}
				}
				if class >= 0 && us >= 0 {
					serveUs[class] = append(serveUs[class], us)
				}
			}
		case PhaseCounter:
			if e.Cat == CatIO && e.Name == "queue" {
				d, ok := disks[e.Track.ID]
				if !ok {
					d = &DiskUtil{Disk: e.Track.ID}
					disks[e.Track.ID] = d
				}
				for _, a := range e.Args {
					if a.Key == "depth" && a.Val > d.PeakQueue {
						d.PeakQueue = a.Val
					}
				}
			}
		}
	}
	for _, d := range disks {
		if s.Makespan > 0 {
			d.Utilization = float64(d.Busy) / float64(s.Makespan)
		}
		s.Disks = append(s.Disks, *d)
	}
	sort.Slice(s.Disks, func(i, j int) bool { return s.Disks[i].Disk < s.Disks[j].Disk })
	for k, n := range counts {
		s.Counts = append(s.Counts, NameCount{Cat: k[0], Name: k[1], Count: n})
	}
	sort.Slice(s.Counts, func(i, j int) bool {
		if s.Counts[i].Cat != s.Counts[j].Cat {
			return s.Counts[i].Cat < s.Counts[j].Cat
		}
		return s.Counts[i].Name < s.Counts[j].Name
	})
	classes := make([]int64, 0, len(serveUs))
	for class := range serveUs {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, class := range classes {
		lats := serveUs[class]
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum int64
		for _, us := range lats {
			sum += us
		}
		s.Serving = append(s.Serving, ServeLatency{
			Class:  serveClassName(class),
			Ops:    len(lats),
			MeanUs: sum / int64(len(lats)),
			P50Us:  nearestRank(lats, 0.50),
			P99Us:  nearestRank(lats, 0.99),
			MaxUs:  lats[len(lats)-1],
		})
	}
	return s
}

// nearestRank returns the exact q-quantile of sorted latencies by the
// nearest-rank method (the smallest value with at least ceil(q*n)
// observations at or below it).
func nearestRank(sorted []int64, q float64) int64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RenderSummary prints the breakdown as an aligned text report (the
// fbftrace default output; EXPERIMENTS.md documents the fields).
func RenderSummary(w io.Writer, s *Summary) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace: %d events, makespan %v, %d groups, %d chunks repaired\n",
		s.Events, s.Makespan, s.Groups, s.Chunks)
	fmt.Fprintf(bw, "phase time (resource-time, overlaps across disks/workers):\n")
	fmt.Fprintf(bw, "  scheme-gen %12v\n", s.SchemeGen)
	fmt.Fprintf(bw, "  read       %12v\n", s.Read)
	fmt.Fprintf(bw, "  xor        %12v\n", s.XOR)
	fmt.Fprintf(bw, "  write      %12v\n", s.Write)
	if len(s.Disks) > 0 {
		fmt.Fprintf(bw, "disk utilization (mean %.3f, peak queue %d):\n", s.MeanUtilization(), s.PeakQueue())
		fmt.Fprintf(bw, "  %-6s %12s %7s %7s %7s %6s\n", "disk", "busy", "util", "reads", "writes", "peakq")
		for _, d := range s.Disks {
			fmt.Fprintf(bw, "  %-6d %12v %7.3f %7d %7d %6d\n",
				d.Disk, d.Busy, d.Utilization, d.Reads, d.Writes, d.PeakQueue)
		}
	}
	if len(s.Serving) > 0 {
		fmt.Fprintf(bw, "serving latency by stripe class (simulated, exact percentiles):\n")
		fmt.Fprintf(bw, "  %-9s %8s %10s %10s %10s %10s\n", "class", "ops", "mean", "p50", "p99", "max")
		for _, sl := range s.Serving {
			fmt.Fprintf(bw, "  %-9s %8d %10s %10s %10s %10s\n", sl.Class, sl.Ops,
				usDur(sl.MeanUs), usDur(sl.P50Us), usDur(sl.P99Us), usDur(sl.MaxUs))
		}
	}
	if len(s.Counts) > 0 {
		fmt.Fprintf(bw, "event counts:\n")
		for _, c := range s.Counts {
			fmt.Fprintf(bw, "  %-24s %8d\n", c.Cat+"/"+c.Name, c.Count)
		}
	}
	return bw.Flush()
}

// usDur renders a microsecond latency through sim.Time's duration
// formatting, matching the phase-time columns above.
func usDur(us int64) string { return fmt.Sprintf("%v", sim.Time(us)*sim.Microsecond) }
