package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fbf/internal/sim"
)

func TestRegistrySampling(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	depth := 0
	r.Gauge("depth", func() float64 { return float64(depth) })
	h, err := r.Histogram("resp_ms", []float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}

	r.Sample(0)
	c.Inc()
	c.Add(2)
	depth = 7
	h.Add(5)
	r.Sample(10 * sim.Millisecond)

	if got := r.Columns(); len(got) != 2 || got[0] != "hits" || got[1] != "depth" {
		t.Fatalf("columns = %v", got)
	}
	if r.Samples() != 2 {
		t.Fatalf("samples = %d", r.Samples())
	}
	at, row := r.Row(1)
	if at != 10*sim.Millisecond || row[0] != 3 || row[1] != 7 {
		t.Fatalf("row 1 = %v %v", at, row)
	}

	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := "t_ms,hits,depth\n0,0,0\n10,3,7\n"
	if csv.String() != want {
		t.Fatalf("csv:\n%s\nwant:\n%s", csv.String(), want)
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Columns []string `json:"columns"`
		Samples []struct {
			TNs    int64     `json:"t_ns"`
			Values []float64 `json:"values"`
		} `json:"samples"`
		Histograms []struct {
			Name   string    `json:"name"`
			Total  uint64    `json:"total"`
			Bounds []float64 `json:"bounds"`
			Counts []uint64  `json:"counts"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("registry JSON invalid: %v\n%s", err, js.String())
	}
	if len(doc.Samples) != 2 || doc.Samples[1].TNs != int64(10*sim.Millisecond) {
		t.Fatalf("samples = %+v", doc.Samples)
	}
	if len(doc.Histograms) != 1 || doc.Histograms[0].Name != "resp_ms" || doc.Histograms[0].Total != 1 {
		t.Fatalf("histograms = %+v", doc.Histograms)
	}
	if len(doc.Histograms[0].Counts) != len(doc.Histograms[0].Bounds)+1 {
		t.Fatalf("histogram counts/bounds mismatch: %+v", doc.Histograms[0])
	}

	var js2 bytes.Buffer
	if err := r.WriteJSON(&js2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js.Bytes(), js2.Bytes()) {
		t.Fatal("registry JSON not byte-deterministic")
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("a")
	expectPanic("duplicate", func() { r.Counter("a") })
	expectPanic("empty name", func() { r.Counter("") })
	r.Sample(0)
	expectPanic("late registration", func() { r.Counter("b") })

	if _, err := NewRegistry().Histogram("h", nil); err == nil {
		t.Error("histogram with no bounds accepted")
	}
}

func TestRegistryTickIntegration(t *testing.T) {
	// A registry sampled via sim.Tick covers the whole run and the tick
	// does not keep the simulation alive after the last real event.
	s := sim.New()
	r := NewRegistry()
	work := 0
	r.Gauge("work", func() float64 { return float64(work) })
	for i := 1; i <= 5; i++ {
		s.Schedule(sim.Time(i)*10*sim.Millisecond, func() { work++ })
	}
	r.Sample(0)
	s.Tick(25*sim.Millisecond, func(now sim.Time) { r.Sample(now) })
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("tick left %d pending events", s.Pending())
	}
	// Samples at 0, 25, 50 and the final one at 75 ms (>= the last event).
	if r.Samples() < 3 {
		t.Fatalf("too few samples: %d", r.Samples())
	}
	at, row := r.Row(r.Samples() - 1)
	if at < 50*sim.Millisecond || row[0] != 5 {
		t.Fatalf("final sample %v %v, want >=50ms with all work seen", at, row)
	}
}

func TestNumFormatting(t *testing.T) {
	if num(0.5) != "0.5" || num(3) != "3" {
		t.Fatalf("num formatting changed: %s %s", num(0.5), num(3))
	}
	if !strings.Contains(num(1e21), "e+21") {
		t.Fatalf("num(1e21) = %s", num(1e21))
	}
}
