package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"fbf/internal/sim"
)

func sampleEvents() []Event {
	w0 := Track{Group: GroupWorkers, ID: 0}
	d1 := Track{Group: GroupDisks, ID: 1}
	return []Event{
		{Name: "scheme-gen", Cat: CatScheme, Ph: PhaseSpan, Track: w0, TS: 0, Dur: 0,
			Args: []Arg{{"stripe", 3}, {"chains", 2}}},
		{Name: "miss", Cat: CatCache, Ph: PhaseInstant, Track: w0, TS: 500 * sim.Microsecond,
			Args: []Arg{{"stripe", 3}, {"row", 0}, {"col", 1}}},
		{Name: "queue", Cat: CatIO, Ph: PhaseCounter, Track: d1, TS: 500 * sim.Microsecond,
			Args: []Arg{{"depth", 2}}},
		{Name: "read", Cat: CatIO, Ph: PhaseSpan, Track: d1, TS: 500 * sim.Microsecond,
			Dur: 10 * sim.Millisecond, Args: []Arg{{"addr", 42}}},
		{Name: "xor", Cat: CatXOR, Ph: PhaseSpan, Track: w0, TS: 11 * sim.Millisecond,
			Dur: 20 * sim.Microsecond, Args: []Arg{{"chunks", 2}}},
		{Name: "write", Cat: CatIO, Ph: PhaseSpan, Track: d1, TS: 12 * sim.Millisecond,
			Dur: 10 * sim.Millisecond, Args: []Arg{{"addr", 99}}},
		{Name: "repair", Cat: CatChunk, Ph: PhaseSpan, Track: w0, TS: 0, Dur: 22 * sim.Millisecond,
			Args: []Arg{{"stripe", 3}}},
		{Name: "group", Cat: CatGroup, Ph: PhaseSpan, Track: w0, TS: 0, Dur: 22 * sim.Millisecond,
			Args: []Arg{{"stripe", 3}}},
	}
}

func TestCollectorAndValidate(t *testing.T) {
	c := NewCollector()
	for _, e := range sampleEvents() {
		c.Emit(e)
	}
	if c.Len() != len(sampleEvents()) {
		t.Fatalf("got %d events, want %d", c.Len(), len(sampleEvents()))
	}
	if err := Validate(c.Events()); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	bad := []struct {
		name string
		ev   Event
	}{
		{"unknown phase", Event{Name: "x", Ph: 'Z', Track: Track{Group: "g"}}},
		{"empty name", Event{Ph: PhaseInstant, Track: Track{Group: "g"}}},
		{"empty group", Event{Name: "x", Ph: PhaseInstant}},
		{"negative ts", Event{Name: "x", Ph: PhaseInstant, Track: Track{Group: "g"}, TS: -1}},
		{"dur on instant", Event{Name: "x", Ph: PhaseInstant, Track: Track{Group: "g"}, Dur: 1}},
		{"counter without values", Event{Name: "x", Ph: PhaseCounter, Track: Track{Group: "g"}}},
		{"empty arg key", Event{Name: "x", Ph: PhaseInstant, Track: Track{Group: "g"}, Args: []Arg{{"", 1}}}},
	}
	for _, tc := range bad {
		if err := Validate([]Event{tc.ev}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestWriteChromeIsValidJSONAndDeterministic(t *testing.T) {
	events := sampleEvents()
	var a, b bytes.Buffer
	if err := WriteChrome(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Chrome export not byte-deterministic")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v\n%s", err, a.String())
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	// 2 process_name + 2 thread_name metadata events precede the payload.
	if got, want := len(doc.TraceEvents), len(events)+4; got != want {
		t.Fatalf("got %d trace events, want %d", got, want)
	}
	var sawProc, sawThread bool
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		if ph == "" {
			t.Fatalf("event without ph: %v", e)
		}
		if name, _ := e["name"].(string); name == "process_name" {
			sawProc = true
		} else if name == "thread_name" {
			sawThread = true
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event without pid: %v", e)
		}
	}
	if !sawProc || !sawThread {
		t.Fatal("missing track metadata events")
	}
	// Sub-microsecond timestamps keep exact fractional digits.
	if !strings.Contains(a.String(), `"ts":500,`) {
		t.Errorf("expected 500us timestamp in output")
	}
}

func TestChromeTS(t *testing.T) {
	cases := []struct {
		ns   sim.Time
		want string
	}{
		{0, "0"},
		{1, "0.001"},
		{999, "0.999"},
		{1000, "1"},
		{1500, "1.500"},
		{10 * sim.Millisecond, "10000"},
	}
	for _, c := range cases {
		if got := chromeTS(c.ns); got != c.want {
			t.Errorf("chromeTS(%d) = %q, want %q", int64(c.ns), got, c.want)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := WriteJSONL(&again, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("JSONL export not byte-deterministic")
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d -> %d", len(events), len(back))
	}
	for i, e := range events {
		g := back[i]
		if g.Name != e.Name || g.Cat != e.Cat || g.Ph != e.Ph || g.Track != e.Track || g.TS != e.TS || g.Dur != e.Dur {
			t.Fatalf("event %d: got %+v, want %+v", i, g, e)
		}
		if len(g.Args) != len(e.Args) {
			t.Fatalf("event %d: got %d args, want %d", i, len(g.Args), len(e.Args))
		}
	}
	if err := Validate(back); err != nil {
		t.Fatalf("round-tripped stream invalid: %v", err)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"ph":"XX","name":"x"}` + "\n")); err == nil {
		t.Fatal("accepted multi-byte phase")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleEvents())
	if s.Events != len(sampleEvents()) {
		t.Fatalf("events = %d", s.Events)
	}
	if s.Makespan != 22*sim.Millisecond {
		t.Fatalf("makespan = %v", s.Makespan)
	}
	if s.Read != 10*sim.Millisecond || s.Write != 10*sim.Millisecond {
		t.Fatalf("read = %v write = %v", s.Read, s.Write)
	}
	if s.XOR != 20*sim.Microsecond || s.SchemeGen != 0 {
		t.Fatalf("xor = %v scheme = %v", s.XOR, s.SchemeGen)
	}
	if s.Groups != 1 || s.Chunks != 1 {
		t.Fatalf("groups = %d chunks = %d", s.Groups, s.Chunks)
	}
	if len(s.Disks) != 1 || s.Disks[0].Disk != 1 {
		t.Fatalf("disks = %+v", s.Disks)
	}
	d := s.Disks[0]
	if d.Reads != 1 || d.Writes != 1 || d.PeakQueue != 2 {
		t.Fatalf("disk util = %+v", d)
	}
	wantUtil := float64(20*sim.Millisecond) / float64(22*sim.Millisecond)
	if math.Abs(d.Utilization-wantUtil) > 1e-12 {
		t.Fatalf("utilization = %v, want %v", d.Utilization, wantUtil)
	}
	if s.PeakQueue() != 2 {
		t.Fatalf("peak queue = %d", s.PeakQueue())
	}
	var buf bytes.Buffer
	if err := RenderSummary(&buf, s); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scheme-gen", "disk utilization", "cache/miss", "peak queue 2"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("summary output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestSummarizeCountsFailedIO(t *testing.T) {
	d0 := Track{Group: GroupDisks, ID: 0}
	s := Summarize([]Event{
		{Name: "read", Cat: CatIO, Ph: PhaseSpan, Track: d0, TS: 0, Dur: sim.Millisecond,
			Args: []Arg{{"addr", 1}, {"failed", 1}}},
	})
	if s.Disks[0].Reads != 0 {
		t.Fatalf("failed read counted as success: %+v", s.Disks[0])
	}
	if s.Read != sim.Millisecond {
		t.Fatalf("failed read's busy time dropped: %v", s.Read)
	}
}
