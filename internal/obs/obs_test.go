package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"fbf/internal/sim"
)

func sampleEvents() []Event {
	w0 := Track{Group: GroupWorkers, ID: 0}
	d1 := Track{Group: GroupDisks, ID: 1}
	return []Event{
		{Name: "scheme-gen", Cat: CatScheme, Ph: PhaseSpan, Track: w0, TS: 0, Dur: 0,
			Args: []Arg{{"stripe", 3}, {"chains", 2}}},
		{Name: "miss", Cat: CatCache, Ph: PhaseInstant, Track: w0, TS: 500 * sim.Microsecond,
			Args: []Arg{{"stripe", 3}, {"row", 0}, {"col", 1}}},
		{Name: "queue", Cat: CatIO, Ph: PhaseCounter, Track: d1, TS: 500 * sim.Microsecond,
			Args: []Arg{{"depth", 2}}},
		{Name: "read", Cat: CatIO, Ph: PhaseSpan, Track: d1, TS: 500 * sim.Microsecond,
			Dur: 10 * sim.Millisecond, Args: []Arg{{"addr", 42}}},
		{Name: "xor", Cat: CatXOR, Ph: PhaseSpan, Track: w0, TS: 11 * sim.Millisecond,
			Dur: 20 * sim.Microsecond, Args: []Arg{{"chunks", 2}}},
		{Name: "write", Cat: CatIO, Ph: PhaseSpan, Track: d1, TS: 12 * sim.Millisecond,
			Dur: 10 * sim.Millisecond, Args: []Arg{{"addr", 99}}},
		{Name: "repair", Cat: CatChunk, Ph: PhaseSpan, Track: w0, TS: 0, Dur: 22 * sim.Millisecond,
			Args: []Arg{{"stripe", 3}}},
		{Name: "group", Cat: CatGroup, Ph: PhaseSpan, Track: w0, TS: 0, Dur: 22 * sim.Millisecond,
			Args: []Arg{{"stripe", 3}}},
	}
}

func TestCollectorAndValidate(t *testing.T) {
	c := NewCollector()
	for _, e := range sampleEvents() {
		c.Emit(e)
	}
	if c.Len() != len(sampleEvents()) {
		t.Fatalf("got %d events, want %d", c.Len(), len(sampleEvents()))
	}
	if err := Validate(c.Events()); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	bad := []struct {
		name string
		ev   Event
	}{
		{"unknown phase", Event{Name: "x", Ph: 'Z', Track: Track{Group: "g"}}},
		{"empty name", Event{Ph: PhaseInstant, Track: Track{Group: "g"}}},
		{"empty group", Event{Name: "x", Ph: PhaseInstant}},
		{"negative ts", Event{Name: "x", Ph: PhaseInstant, Track: Track{Group: "g"}, TS: -1}},
		{"dur on instant", Event{Name: "x", Ph: PhaseInstant, Track: Track{Group: "g"}, Dur: 1}},
		{"counter without values", Event{Name: "x", Ph: PhaseCounter, Track: Track{Group: "g"}}},
		{"empty arg key", Event{Name: "x", Ph: PhaseInstant, Track: Track{Group: "g"}, Args: []Arg{{"", 1}}}},
	}
	for _, tc := range bad {
		if err := Validate([]Event{tc.ev}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestWriteChromeIsValidJSONAndDeterministic(t *testing.T) {
	events := sampleEvents()
	var a, b bytes.Buffer
	if err := WriteChrome(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Chrome export not byte-deterministic")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v\n%s", err, a.String())
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	// 2 process_name + 2 thread_name metadata events precede the payload.
	if got, want := len(doc.TraceEvents), len(events)+4; got != want {
		t.Fatalf("got %d trace events, want %d", got, want)
	}
	var sawProc, sawThread bool
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		if ph == "" {
			t.Fatalf("event without ph: %v", e)
		}
		if name, _ := e["name"].(string); name == "process_name" {
			sawProc = true
		} else if name == "thread_name" {
			sawThread = true
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event without pid: %v", e)
		}
	}
	if !sawProc || !sawThread {
		t.Fatal("missing track metadata events")
	}
	// Sub-microsecond timestamps keep exact fractional digits.
	if !strings.Contains(a.String(), `"ts":500,`) {
		t.Errorf("expected 500us timestamp in output")
	}
}

func TestChromeTS(t *testing.T) {
	cases := []struct {
		ns   sim.Time
		want string
	}{
		{0, "0"},
		{1, "0.001"},
		{999, "0.999"},
		{1000, "1"},
		{1500, "1.500"},
		{10 * sim.Millisecond, "10000"},
	}
	for _, c := range cases {
		if got := chromeTS(c.ns); got != c.want {
			t.Errorf("chromeTS(%d) = %q, want %q", int64(c.ns), got, c.want)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := WriteJSONL(&again, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("JSONL export not byte-deterministic")
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d -> %d", len(events), len(back))
	}
	for i, e := range events {
		g := back[i]
		if g.Name != e.Name || g.Cat != e.Cat || g.Ph != e.Ph || g.Track != e.Track || g.TS != e.TS || g.Dur != e.Dur {
			t.Fatalf("event %d: got %+v, want %+v", i, g, e)
		}
		if len(g.Args) != len(e.Args) {
			t.Fatalf("event %d: got %d args, want %d", i, len(g.Args), len(e.Args))
		}
	}
	if err := Validate(back); err != nil {
		t.Fatalf("round-tripped stream invalid: %v", err)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"ph":"XX","name":"x"}` + "\n")); err == nil {
		t.Fatal("accepted multi-byte phase")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleEvents())
	if s.Events != len(sampleEvents()) {
		t.Fatalf("events = %d", s.Events)
	}
	if s.Makespan != 22*sim.Millisecond {
		t.Fatalf("makespan = %v", s.Makespan)
	}
	if s.Read != 10*sim.Millisecond || s.Write != 10*sim.Millisecond {
		t.Fatalf("read = %v write = %v", s.Read, s.Write)
	}
	if s.XOR != 20*sim.Microsecond || s.SchemeGen != 0 {
		t.Fatalf("xor = %v scheme = %v", s.XOR, s.SchemeGen)
	}
	if s.Groups != 1 || s.Chunks != 1 {
		t.Fatalf("groups = %d chunks = %d", s.Groups, s.Chunks)
	}
	if len(s.Disks) != 1 || s.Disks[0].Disk != 1 {
		t.Fatalf("disks = %+v", s.Disks)
	}
	d := s.Disks[0]
	if d.Reads != 1 || d.Writes != 1 || d.PeakQueue != 2 {
		t.Fatalf("disk util = %+v", d)
	}
	wantUtil := float64(20*sim.Millisecond) / float64(22*sim.Millisecond)
	if math.Abs(d.Utilization-wantUtil) > 1e-12 {
		t.Fatalf("utilization = %v, want %v", d.Utilization, wantUtil)
	}
	if s.PeakQueue() != 2 {
		t.Fatalf("peak queue = %d", s.PeakQueue())
	}
	var buf bytes.Buffer
	if err := RenderSummary(&buf, s); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scheme-gen", "disk utilization", "cache/miss", "peak queue 2"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("summary output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestSummarizeCountsFailedIO(t *testing.T) {
	d0 := Track{Group: GroupDisks, ID: 0}
	s := Summarize([]Event{
		{Name: "read", Cat: CatIO, Ph: PhaseSpan, Track: d0, TS: 0, Dur: sim.Millisecond,
			Args: []Arg{{"addr", 1}, {"failed", 1}}},
	})
	if s.Disks[0].Reads != 0 {
		t.Fatalf("failed read counted as success: %+v", s.Disks[0])
	}
	if s.Read != sim.Millisecond {
		t.Fatalf("failed read's busy time dropped: %v", s.Read)
	}
}

// serveInstant builds one foreground-serving completion event the way
// the simulator's serving workload emits them.
func serveInstant(name string, ts sim.Time, class, us int64) Event {
	return Event{Name: name, Cat: CatServe, Ph: PhaseInstant,
		Track: Track{Group: GroupEngine, ID: 0}, TS: ts,
		Args: []Arg{{"class", class}, {"us", us}}}
}

// TestSummarizeServingLatency pins the per-class digest: exact
// nearest-rank percentiles, classes sorted, failed instants (no
// class/us args) excluded, and no section for serving-free traces.
func TestSummarizeServingLatency(t *testing.T) {
	var events []Event
	// Healthy: 1..100µs in shuffled-enough order (descending) so the
	// digest has to sort; nearest-rank p50=50, p99=99.
	for us := int64(100); us >= 1; us-- {
		events = append(events, serveInstant("read", sim.Time(us)*sim.Microsecond, 0, us))
	}
	// Lost: a skewed pair, p50 = first value under nearest-rank.
	events = append(events,
		serveInstant("write", sim.Millisecond, 2, 300),
		serveInstant("read", 2*sim.Millisecond, 2, 9700),
		// A failed serve carries no class/us and must not be digested.
		Event{Name: "failed", Cat: CatServe, Ph: PhaseInstant,
			Track: Track{Group: GroupEngine, ID: 0}, TS: 3 * sim.Millisecond},
	)
	s := Summarize(events)

	want := []ServeLatency{
		{Class: "healthy", Ops: 100, MeanUs: 50, P50Us: 50, P99Us: 99, MaxUs: 100},
		{Class: "lost", Ops: 2, MeanUs: 5000, P50Us: 300, P99Us: 9700, MaxUs: 9700},
	}
	if len(s.Serving) != len(want) {
		t.Fatalf("serving digest has %d classes, want %d: %+v", len(s.Serving), len(want), s.Serving)
	}
	for i, w := range want {
		if s.Serving[i] != w {
			t.Errorf("serving[%d] = %+v, want %+v", i, s.Serving[i], w)
		}
	}

	var buf bytes.Buffer
	if err := RenderSummary(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, wantStr := range []string{
		"serving latency by stripe class (simulated, exact percentiles):",
		"healthy", "lost", "serve/failed",
	} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("summary output missing %q:\n%s", wantStr, out)
		}
	}

	// A serving-free trace renders no serving section: older reports
	// stay byte-identical.
	var bare bytes.Buffer
	if err := RenderSummary(&bare, Summarize(sampleEvents())); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(bare.String(), "serving latency") {
		t.Fatalf("serving section leaked into a serving-free trace:\n%s", bare.String())
	}
}

// TestSummarizeServingClassNames pins the class-index naming, including
// the fallback for indices the simulator does not emit today.
func TestSummarizeServingClassNames(t *testing.T) {
	s := Summarize([]Event{
		serveInstant("read", 0, 1, 10),
		serveInstant("read", 0, 7, 10),
	})
	if len(s.Serving) != 2 || s.Serving[0].Class != "degraded" || s.Serving[1].Class != "class-7" {
		t.Fatalf("class names = %+v, want degraded then class-7", s.Serving)
	}
}
