package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"fbf/internal/sim"
)

// WriteChrome serializes events as Chrome trace-event JSON (the JSON
// object format with a traceEvents array), loadable in Perfetto and
// chrome://tracing. Track groups become processes and track ids become
// threads, each named via metadata events so one lane per disk and per
// worker shows up labelled in the UI.
//
// The output is written deterministically — explicit key order, integer
// microsecond.nanosecond timestamps — so identical event streams
// serialize to identical bytes.
func WriteChrome(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)

	// Assign pids to track groups in first-appearance order and collect
	// the distinct lanes of each group, preserving appearance order.
	type lane struct {
		group string
		id    int
	}
	pids := map[string]int{}
	var groups []string
	seenLane := map[lane]bool{}
	var lanes []lane
	for _, e := range events {
		if _, ok := pids[e.Track.Group]; !ok {
			pids[e.Track.Group] = len(groups) + 1
			groups = append(groups, e.Track.Group)
		}
		l := lane{e.Track.Group, e.Track.ID}
		if !seenLane[l] {
			seenLane[l] = true
			lanes = append(lanes, l)
		}
	}

	fmt.Fprint(bw, "{\"traceEvents\":[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	for _, g := range groups {
		emit(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
			pids[g], strconv.Quote(g))
	}
	for _, l := range lanes {
		emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			pids[l.group], l.id, strconv.Quote(fmt.Sprintf("%s %d", l.group, l.id)))
	}
	for _, e := range events {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, `{"ph":%s,"pid":%d,"tid":%d,"ts":%s,`,
			strconv.Quote(e.Ph.String()), pids[e.Track.Group], e.Track.ID, chromeTS(e.TS))
		if e.Ph == PhaseSpan {
			fmt.Fprintf(bw, `"dur":%s,`, chromeTS(e.Dur))
		}
		if e.Ph == PhaseInstant {
			bw.WriteString(`"s":"t",`)
		}
		if e.Cat != "" {
			fmt.Fprintf(bw, `"cat":%s,`, strconv.Quote(e.Cat))
		}
		fmt.Fprintf(bw, `"name":%s,"args":{`, strconv.Quote(e.Name))
		for i, a := range e.Args {
			if i > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "%s:%d", strconv.Quote(a.Key), a.Val)
		}
		bw.WriteString("}}")
	}
	fmt.Fprint(bw, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// chromeTS renders simulated nanoseconds as the microsecond timestamps
// the Chrome format expects, with exact fractional digits (no float
// formatting involved, so the bytes are platform-independent).
func chromeTS(t sim.Time) string {
	us, ns := int64(t)/1000, int64(t)%1000
	if ns == 0 {
		return strconv.FormatInt(us, 10)
	}
	return fmt.Sprintf("%d.%03d", us, ns)
}
