package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"fbf/internal/sim"
)

// WriteJSONL serializes events as one JSON object per line — the
// compact sink for programmatic analysis (cmd/fbftrace consumes it).
// Keys appear in a fixed order and args in attachment order, so
// identical event streams serialize to identical bytes.
//
// Line schema:
//
//	{"ph":"X","group":"disks","id":3,"ts":1500000,"dur":10000000,
//	 "cat":"io","name":"read","args":{"addr":42}}
//
// ts and dur are integer simulated nanoseconds; dur is omitted for
// instants and counters.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		fmt.Fprintf(bw, `{"ph":%s,"group":%s,"id":%d,"ts":%d`,
			strconv.Quote(e.Ph.String()), strconv.Quote(e.Track.Group), e.Track.ID, int64(e.TS))
		if e.Ph == PhaseSpan {
			fmt.Fprintf(bw, `,"dur":%d`, int64(e.Dur))
		}
		if e.Cat != "" {
			fmt.Fprintf(bw, `,"cat":%s`, strconv.Quote(e.Cat))
		}
		fmt.Fprintf(bw, `,"name":%s,"args":{`, strconv.Quote(e.Name))
		for i, a := range e.Args {
			if i > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "%s:%d", strconv.Quote(a.Key), a.Val)
		}
		bw.WriteString("}}\n")
	}
	return bw.Flush()
}

// jsonlEvent is the wire form ReadJSONL decodes.
type jsonlEvent struct {
	Ph    string           `json:"ph"`
	Group string           `json:"group"`
	ID    int              `json:"id"`
	TS    int64            `json:"ts"`
	Dur   int64            `json:"dur"`
	Cat   string           `json:"cat"`
	Name  string           `json:"name"`
	Args  map[string]int64 `json:"args"`
}

// ReadJSONL parses a JSONL trace back into events. JSON objects do not
// preserve arg order, so args come back sorted by key; everything the
// summary and validation paths consume is order-independent.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		if len(je.Ph) != 1 {
			return nil, fmt.Errorf("obs: jsonl line %d: bad phase %q", line, je.Ph)
		}
		e := Event{
			Name:  je.Name,
			Cat:   je.Cat,
			Ph:    Phase(je.Ph[0]),
			Track: Track{Group: je.Group, ID: je.ID},
			TS:    sim.Time(je.TS),
			Dur:   sim.Time(je.Dur),
		}
		if len(je.Args) > 0 {
			keys := make([]string, 0, len(je.Args))
			for k := range je.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				e.Args = append(e.Args, Arg{Key: k, Val: je.Args[k]})
			}
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading jsonl: %w", err)
	}
	return out, nil
}
