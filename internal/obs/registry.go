package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"fbf/internal/sim"
	"fbf/internal/stats"
)

// Counter is a monotonically adjustable metric owned by instrumented
// code; the Registry reads it at each sample tick.
type Counter struct {
	v float64
}

// Add folds a delta in.
func (c *Counter) Add(d float64) { c.v += d }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current value.
func (c *Counter) Value() float64 { return c.v }

// Registry is an ordered set of named time-series metrics sampled on a
// simulated-time tick, plus end-of-run histograms (reusing
// internal/stats). Registration order fixes the column order of every
// export, so identical runs serialize to identical bytes.
//
// A Registry belongs to one simulation run and is not safe for
// concurrent use; like a Tracer, it is only touched from inside the
// single-threaded simulation loop.
type Registry struct {
	names []string
	reads []func() float64
	seen  map[string]bool

	sampleTS []sim.Time
	samples  [][]float64

	histNames []string
	hists     []*stats.Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{seen: map[string]bool{}} }

func (r *Registry) register(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	if r.seen[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	if len(r.sampleTS) > 0 {
		panic(fmt.Sprintf("obs: metric %q registered after sampling started", name))
	}
	r.seen[name] = true
}

// Counter registers a counter column and returns the cell the
// instrumented code updates.
func (r *Registry) Counter(name string) *Counter {
	r.register(name)
	c := &Counter{}
	r.names = append(r.names, name)
	r.reads = append(r.reads, c.Value)
	return c
}

// Gauge registers a callback column: read is invoked at every sample
// tick (from the simulation loop) and must be cheap and side-effect
// free.
func (r *Registry) Gauge(name string, read func() float64) {
	r.register(name)
	r.names = append(r.names, name)
	r.reads = append(r.reads, read)
}

// Histogram registers an end-of-run histogram with the given bucket
// bounds. Histograms are not sampled per tick; they appear once in the
// JSON export with their final counts.
func (r *Registry) Histogram(name string, bounds []float64) (*stats.Histogram, error) {
	h, err := stats.NewHistogram(bounds)
	if err != nil {
		return nil, err
	}
	r.register(name)
	r.histNames = append(r.histNames, name)
	r.hists = append(r.hists, h)
	return h, nil
}

// Columns returns the sampled metric names in column order.
func (r *Registry) Columns() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Sample snapshots every column at the given simulated time, appending
// one row to the time series.
func (r *Registry) Sample(at sim.Time) {
	row := make([]float64, len(r.reads))
	for i, read := range r.reads {
		row[i] = read()
	}
	r.sampleTS = append(r.sampleTS, at)
	r.samples = append(r.samples, row)
}

// Samples returns the number of rows collected.
func (r *Registry) Samples() int { return len(r.samples) }

// Row returns the timestamp and values of sample i.
func (r *Registry) Row(i int) (sim.Time, []float64) { return r.sampleTS[i], r.samples[i] }

// num renders a float deterministically for both exporters.
func num(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV writes the time series as CSV: a header of "t_ms" plus the
// column names, then one row per sample tick.
func (r *Registry) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("t_ms")
	for _, name := range r.names {
		bw.WriteByte(',')
		bw.WriteString(name)
	}
	bw.WriteByte('\n')
	for i, row := range r.samples {
		bw.WriteString(num(r.sampleTS[i].Milliseconds()))
		for _, v := range row {
			bw.WriteByte(',')
			bw.WriteString(num(v))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteJSON writes the full registry — columns, sample rows (timestamps
// in integer simulated nanoseconds) and histograms — as one
// deterministic JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"columns\":[")
	for i, name := range r.names {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(strconv.Quote(name))
	}
	bw.WriteString("],\"samples\":[")
	for i, row := range r.samples {
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "{\"t_ns\":%d,\"values\":[", int64(r.sampleTS[i]))
		for j, v := range row {
			if j > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(num(v))
		}
		bw.WriteString("]}")
	}
	bw.WriteString("],\"histograms\":[")
	for i, h := range r.hists {
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "{\"name\":%s,\"total\":%d,\"bounds\":[", strconv.Quote(r.histNames[i]), h.Total())
		for j, b := range h.Bounds() {
			if j > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(num(b))
		}
		bw.WriteString("],\"counts\":[")
		for j, c := range h.Counts() {
			if j > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "%d", c)
		}
		bw.WriteString("]}")
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}
