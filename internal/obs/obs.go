// Package obs is the observability layer of the simulator: event
// tracing on the simulated clock, a metrics registry sampled on a
// simulated-time tick, and exporters for both (Chrome trace-event JSON
// for Perfetto, JSONL and CSV for programmatic analysis).
//
// The design contract is zero overhead when disabled: every
// instrumentation site in the engines guards on a single nil check of
// the installed Tracer (or *Registry), so a run without observability
// executes exactly the instructions it executed before the layer
// existed and allocates nothing for it (pinned by
// internal/rebuild's obs tests).
//
// All timestamps are simulated time (sim.Time). Instrumented code runs
// inside the single-threaded simulation loop, so events arrive in
// deterministic order and a trace is bit-identical across host
// parallelism levels — the experiments package's parallel sweeps
// produce byte-for-byte the traces of a serial sweep.
package obs

import (
	"fmt"

	"fbf/internal/sim"
)

// Track identifies one timeline of the trace: a named group of lanes
// (rendered as a Perfetto process) and a lane id within it (rendered as
// a thread). The engines use groups "workers", "disks" and "engine".
type Track struct {
	Group string
	ID    int
}

// Standard track groups.
const (
	GroupEngine  = "engine"  // run-wide events (re-plans, data loss)
	GroupWorkers = "workers" // one lane per reconstruction worker
	GroupDisks   = "disks"   // one lane per disk
)

// Phase classifies an event, mirroring the Chrome trace-event phases
// the exporters emit.
type Phase byte

const (
	// PhaseSpan is a complete duration event ('X'): TS is the start,
	// Dur the length, both in simulated time.
	PhaseSpan Phase = 'X'
	// PhaseInstant is a point event ('i') at TS.
	PhaseInstant Phase = 'i'
	// PhaseCounter is a counter sample ('C'): each Arg is one series
	// value at TS.
	PhaseCounter Phase = 'C'
)

// String returns the phase's one-byte trace-format code ("X", "i",
// "C"). A Phase is a byte, not a rune — converting through rune would
// re-encode values above 0x7f as multi-byte UTF-8, which is why both
// exporters render phases through this method.
func (p Phase) String() string { return string([]byte{byte(p)}) }

// Arg is one integer annotation on an event. Args are ordered; the
// exporters preserve the order they were attached in.
type Arg struct {
	Key string
	Val int64
}

// Event is one trace record. Name and Cat are short stable strings
// (the event schema in DESIGN.md §10 enumerates them); Dur is zero for
// instants and counters.
type Event struct {
	Name  string
	Cat   string
	Ph    Phase
	Track Track
	TS    sim.Time
	Dur   sim.Time
	Args  []Arg
}

// Tracer receives events from instrumented code. Implementations are
// called from inside the simulation loop and must not block; they need
// not be safe for concurrent use (each simulation run gets its own
// Tracer).
type Tracer interface {
	Emit(Event)
}

// Collector is the standard Tracer: an in-memory, insertion-ordered
// event log that the exporters serialize.
type Collector struct {
	events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit implements Tracer.
func (c *Collector) Emit(e Event) { c.events = append(c.events, e) }

// Events returns the recorded events in emission order. The slice is
// the collector's backing store; callers must not mutate it.
func (c *Collector) Events() []Event { return c.events }

// Len returns the number of recorded events.
func (c *Collector) Len() int { return len(c.events) }

// Validate checks the structural invariants of an event stream (the
// schema fbftrace -validate enforces on serialized traces): known
// phase, non-empty name and track group, non-negative timestamps,
// durations only on spans, and at least one arg on counters.
func Validate(events []Event) error {
	for i, e := range events {
		switch e.Ph {
		case PhaseSpan, PhaseInstant, PhaseCounter:
		default:
			return fmt.Errorf("obs: event %d (%q): unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Name == "" {
			return fmt.Errorf("obs: event %d: empty name", i)
		}
		if e.Track.Group == "" {
			return fmt.Errorf("obs: event %d (%q): empty track group", i, e.Name)
		}
		if e.TS < 0 {
			return fmt.Errorf("obs: event %d (%q): negative timestamp %v", i, e.Name, e.TS)
		}
		if e.Dur < 0 {
			return fmt.Errorf("obs: event %d (%q): negative duration %v", i, e.Name, e.Dur)
		}
		if e.Ph != PhaseSpan && e.Dur != 0 {
			return fmt.Errorf("obs: event %d (%q): duration on non-span phase %q", i, e.Name, e.Ph)
		}
		if e.Ph == PhaseCounter && len(e.Args) == 0 {
			return fmt.Errorf("obs: event %d (%q): counter without values", i, e.Name)
		}
		for _, a := range e.Args {
			if a.Key == "" {
				return fmt.Errorf("obs: event %d (%q): empty arg key", i, e.Name)
			}
		}
	}
	return nil
}
