package rebuild

import (
	"fmt"
	"time"

	"fbf/internal/cache"
	"fbf/internal/core"
	"fbf/internal/disk"
	"fbf/internal/grid"
	"fbf/internal/sim"
)

// Mode selects the engine's parallelization strategy (Section III-B of
// the paper).
type Mode uint8

const (
	// ModeSOR is stripe-oriented reconstruction: N workers each repair
	// one error group at a time with a private cache partition. This is
	// the mode the paper extends FBF with and the default.
	ModeSOR Mode = iota
	// ModeDOR is disk-oriented reconstruction: one process per disk
	// drains the read operations pending on that disk, sharing a single
	// global cache; chains assemble as their members arrive and spare
	// writes go to the failed disks. Parallelism equals the disk count.
	ModeDOR
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeSOR:
		return "sor"
	case ModeDOR:
		return "dor"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// dorTask is one parity chain waiting for its surviving members.
type dorTask struct {
	stripe    int
	failDisk  int
	fetch     []grid.Coord
	remaining int
}

// dorOp is one acquire operation: bring a chunk into reach (cache hit
// or disk read) on behalf of a task.
type dorOp struct {
	task *dorTask
	cell grid.Coord
}

// runDOR executes disk-oriented reconstruction. All schemes are
// generated up front (their priorities merge into one global
// dictionary), the acquire operations are distributed to per-disk
// queues, and each disk process serves its queue sequentially.
func runDOR(cfg Config, errors []core.PartialStripeError) (*Result, error) {
	s := sim.New()
	array, err := disk.NewArray(s, disk.ArrayConfig{
		Disks:     cfg.Code.Disks(),
		Rows:      cfg.Code.Rows(),
		Stripes:   cfg.Stripes,
		ChunkSize: cfg.ChunkSize,
		ModelFor:  cfg.ModelFor,
		Scheduler: cfg.Scheduler,
	})
	if err != nil {
		return nil, err
	}
	policy, err := cache.New(cfg.Policy, cfg.CacheChunks)
	if err != nil {
		return nil, err
	}

	res := &Result{Policy: cfg.Policy, Strategy: cfg.Strategy, Groups: len(errors)}

	// Phase 1: generate every scheme, building the per-disk op queues
	// and the merged priority dictionary.
	queues := make([][]*dorOp, cfg.Code.Disks())
	merged := map[cache.ChunkID]int{}
	var allRequests []cache.ChunkID
	tasks := 0
	for _, group := range errors {
		start := time.Now()
		scheme, err := core.GenerateScheme(cfg.Code, group, cfg.Strategy)
		res.SchemeGenWall += time.Since(start)
		if err != nil {
			return nil, err
		}
		for id, pr := range scheme.PriorityIDs() {
			merged[id] += pr
		}
		for _, sel := range scheme.Selected {
			task := &dorTask{
				stripe:    group.Stripe,
				failDisk:  group.Disk,
				fetch:     sel.Fetch,
				remaining: len(sel.Fetch),
			}
			tasks++
			for _, cell := range sel.Fetch {
				queues[cell.Col] = append(queues[cell.Col], &dorOp{task: task, cell: cell})
				allRequests = append(allRequests, cache.ChunkID{Stripe: group.Stripe, Cell: cell})
			}
		}
	}
	if pa, ok := policy.(cache.PriorityAware); ok {
		pa.SetPriorities(merged)
	}
	if fa, ok := policy.(cache.FutureAware); ok {
		fa.SetFuture(allRequests)
	}

	// Phase 2: run the disk processes.
	remainingTasks := tasks
	var taskDone func(t *dorTask)
	taskDone = func(t *dorTask) {
		xor := cfg.XORPerChunk * sim.Time(len(t.fetch))
		res.XORChunks += uint64(len(t.fetch))
		s.Schedule(xor, func() {
			finish := func() {
				remainingTasks--
				if remainingTasks == 0 {
					res.Makespan = s.Now()
				}
			}
			if cfg.SkipSpareWrites {
				finish()
				return
			}
			if err := array.WriteSpare(t.failDisk, func(_, _ sim.Time) { finish() }); err != nil {
				panic(fmt.Sprintf("rebuild: dor spare write failed: %v", err))
			}
		})
	}

	var serve func(diskID int)
	serve = func(diskID int) {
		q := queues[diskID]
		if len(q) == 0 {
			return
		}
		op := q[0]
		queues[diskID] = q[1:]
		// The controller's cache lookup costs CacheAccess of this disk
		// process's time; hits skip the media read.
		res.TotalRequests++
		id := cache.ChunkID{Stripe: op.task.stripe, Cell: op.cell}
		hit := policy.Request(id)
		s.Schedule(cfg.CacheAccess, func() {
			if hit {
				res.Cache.Hits++
				res.SumResponse += cfg.CacheAccess
				op.task.remaining--
				if op.task.remaining == 0 {
					taskDone(op.task)
				}
				serve(diskID)
				return
			}
			res.Cache.Misses++
			err := array.ReadChunk(op.task.stripe, op.cell, func(issued, completed sim.Time) {
				res.SumResponse += cfg.CacheAccess + (completed - issued)
				op.task.remaining--
				if op.task.remaining == 0 {
					taskDone(op.task)
				}
				serve(diskID)
			})
			if err != nil {
				panic(fmt.Sprintf("rebuild: dor read failed: %v", err))
			}
		})
	}
	for d := 0; d < cfg.Code.Disks(); d++ {
		d := d
		s.Schedule(0, func() { serve(d) })
	}
	s.Run()

	if remainingTasks != 0 {
		return nil, fmt.Errorf("rebuild: dor finished with %d tasks outstanding", remainingTasks)
	}
	res.Cache.Evictions = policy.Stats().Evictions
	total := array.TotalStats()
	res.DiskReads = total.Reads
	res.DiskWrites = total.Writes
	for i := 0; i < array.Disks(); i++ {
		res.PerDisk = append(res.PerDisk, array.Disk(i).Stats())
	}
	return res, nil
}
