package rebuild

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fbf/internal/store"
)

// instantAfter is the timer seam for daemon tests: every wait fires
// immediately, so loops run at full speed without wall-clock sleeps.
func instantAfter(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- time.Time{}
	return ch
}

func daemonService(t *testing.T, b store.Backend, m store.ArrayManifest) ServiceConfig {
	t.Helper()
	return ServiceConfig{
		Backend: b, Manifest: m,
		JournalPath: filepath.Join(t.TempDir(), "rebuild.journal"),
	}
}

// TestDaemonRepairsOnDamage pins the watch loop: the first scan finds
// and repairs the damage, the second confirms clean, and the loop ends
// at MaxScans.
func TestDaemonRepairsOnDamage(t *testing.T) {
	m := testManifest("star", 5, 2, 64)
	b := initMem(t, m, resumeSeed)
	killDisk(t, b, 1)
	var logs []string
	res, err := RunDaemon(DaemonConfig{
		Service:  daemonService(t, b, m),
		MaxScans: 2,
		after:    instantAfter,
		Logf:     func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scans != 2 || res.Rebuilds != 1 || res.Interrupted || res.DataLoss {
		t.Fatalf("daemon result: %+v", res)
	}
	if res.ChunksRebuilt != m.Rows*m.Stripes {
		t.Fatalf("rebuilt %d chunks, want the killed disk's %d", res.ChunksRebuilt, m.Rows*m.Stripes)
	}
	checkAgainstGroundTruth(t, b, m, resumeSeed)
	if len(logs) != 2 || !strings.Contains(logs[0], "rebuilt") || !strings.Contains(logs[1], "clean") {
		t.Fatalf("daemon log: %q", logs)
	}
}

// flakyBackend fails every operation with a transient error until its
// countdown reaches zero.
type flakyBackend struct {
	store.Backend
	failures int
}

var errFlaky = errors.New("transient backend failure")

func (f *flakyBackend) List(disk int) ([]store.Addr, error) {
	if f.failures > 0 {
		f.failures--
		return nil, errFlaky
	}
	return f.Backend.List(disk)
}

// TestDaemonRetriesTransientFaults pins the backoff ladder: transient
// scan failures are retried (with exponentially growing waits) and a
// later pass completes the repair.
func TestDaemonRetriesTransientFaults(t *testing.T) {
	m := testManifest("star", 5, 2, 64)
	b := initMem(t, m, resumeSeed)
	killDisk(t, b, 2)
	flaky := &flakyBackend{Backend: b, failures: 3}
	svc := daemonService(t, flaky, m)
	var waits []time.Duration
	res, err := RunDaemon(DaemonConfig{
		Service:  svc,
		MaxScans: 5, // budget: 3 failed + 1 repairing + 1 clean
		Retries:  4,
		Backoff:  time.Second,
		after: func(d time.Duration) <-chan time.Time {
			waits = append(waits, d)
			return instantAfter(d)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 3 || res.Rebuilds != 1 || res.DataLoss {
		t.Fatalf("daemon result: %+v", res)
	}
	checkAgainstGroundTruth(t, b, m, resumeSeed)
	// The first three waits are the exponential retry backoffs.
	if len(waits) < 3 || waits[0] != time.Second || waits[1] != 2*time.Second || waits[2] != 4*time.Second {
		t.Fatalf("backoff waits = %v, want 1s, 2s, 4s prefix", waits)
	}
}

// TestDaemonGivesUpAfterRetryBudget pins the failure exit: persistent
// errors exhaust the budget and surface as a daemon error.
func TestDaemonGivesUpAfterRetryBudget(t *testing.T) {
	m := testManifest("star", 5, 1, 32)
	b := initMem(t, m, resumeSeed)
	flaky := &flakyBackend{Backend: b, failures: 1 << 30}
	res, err := RunDaemon(DaemonConfig{
		Service: daemonService(t, flaky, m),
		Retries: 2,
		after:   instantAfter,
	})
	if err == nil || !errors.Is(err, errFlaky) {
		t.Fatalf("exhausted daemon returned %v, want the transient error", err)
	}
	if res.Retries != 3 {
		t.Fatalf("took %d retries, want 3 attempts before giving up", res.Retries)
	}
}

// TestDaemonGracefulStop pins shutdown: a pre-closed stop exits before
// any scan; a stop landing mid-repair finishes the in-flight chunk,
// keeps the journal, and a later daemon run resumes to byte-exact.
func TestDaemonGracefulStop(t *testing.T) {
	m := testManifest("star", 5, 2, 64)

	stopped := make(chan struct{})
	close(stopped)
	res, err := RunDaemon(DaemonConfig{
		Service: daemonService(t, initMem(t, m, resumeSeed), m),
		Stop:    stopped,
		after:   instantAfter,
	})
	if err != nil || !res.Interrupted || res.Scans != 0 {
		t.Fatalf("pre-closed stop: %+v, %v", res, err)
	}

	root := t.TempDir()
	journal := filepath.Join(root, "rebuild.journal")
	d := initResumeDir(t, root, m)
	hook := &stopAfterWrites{Backend: d, n: 2, stop: make(chan struct{})}
	svc := ServiceConfig{Backend: hook, Manifest: m, JournalPath: journal}
	res, err = RunDaemon(DaemonConfig{Service: svc, Stop: hook.stop, after: instantAfter})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted || res.ChunksRebuilt != 2 {
		t.Fatalf("mid-repair stop: %+v", res)
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("journal missing after daemon stop: %v", err)
	}

	res, err = RunDaemon(DaemonConfig{
		Service:  ServiceConfig{Backend: d, Manifest: m, JournalPath: journal},
		MaxScans: 1,
		after:    instantAfter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted || res.DataLoss || res.Last.ResumedCommits != 2 {
		t.Fatalf("daemon resume: %+v (last %+v)", res, res.Last)
	}
	checkAgainstGroundTruth(t, d, m, resumeSeed)
	if _, err := os.Stat(journal); !os.IsNotExist(err) {
		t.Fatalf("journal survives completed daemon resume: %v", err)
	}
}

// TestDaemonConfigGuards pins the wiring rules: the daemon owns the
// stop channel and plan-only service modes are rejected.
func TestDaemonConfigGuards(t *testing.T) {
	m := testManifest("star", 5, 1, 32)
	b := initMem(t, m, resumeSeed)
	svc := daemonService(t, b, m)
	svc.Stop = make(chan struct{})
	if _, err := RunDaemon(DaemonConfig{Service: svc, after: instantAfter}); err == nil {
		t.Fatal("daemon accepted a pre-wired Service.Stop")
	}
	svc = daemonService(t, b, m)
	svc.CheckOnly = true
	if _, err := RunDaemon(DaemonConfig{Service: svc, after: instantAfter}); err == nil {
		t.Fatal("daemon accepted a check-only service")
	}
}
