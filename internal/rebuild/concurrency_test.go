package rebuild

import (
	"reflect"
	"sync"
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/sim"
)

// TestCachePartitionDistributesRemainder is the regression test for the
// capacity-loss bug: cfg.CacheChunks / cfg.Workers silently discarded
// the remainder (1000 chunks across 128 workers lost 104 chunks, over
// 10% of the configured capacity). The partition must use every chunk,
// spread the extras across the first total%n workers, and never skew
// any two partitions by more than one chunk.
func TestCachePartitionDistributesRemainder(t *testing.T) {
	cases := []struct {
		total, n int
	}{
		{1000, 128}, // the reported bug: 104 chunks vanished
		{1000, 1},
		{7, 4},
		{3, 8}, // fewer chunks than workers
		{0, 16},
		{256, 16}, // exact division
	}
	for _, c := range cases {
		parts := cachePartition(c.total, c.n)
		if len(parts) != c.n {
			t.Fatalf("cachePartition(%d, %d): %d partitions", c.total, c.n, len(parts))
		}
		sum, minP, maxP := 0, parts[0], parts[0]
		for _, p := range parts {
			sum += p
			if p < minP {
				minP = p
			}
			if p > maxP {
				maxP = p
			}
		}
		if sum != c.total {
			t.Errorf("cachePartition(%d, %d) allocates %d chunks", c.total, c.n, sum)
		}
		if maxP-minP > 1 {
			t.Errorf("cachePartition(%d, %d) skew %d (partitions %v...)", c.total, c.n, maxP-minP, parts[:min(8, len(parts))])
		}
	}
	// The exact shape of the reported case.
	parts := cachePartition(1000, 128)
	for i, p := range parts {
		want := 7
		if i < 104 {
			want = 8
		}
		if p != want {
			t.Fatalf("partition %d = %d chunks, want %d", i, p, want)
		}
	}
	if got := cachePartition(5, 0); got != nil {
		t.Errorf("cachePartition(5, 0) = %v, want nil", got)
	}
}

// TestRemainderCapacityIsUsed pins that the recovered remainder shows up
// in behaviour: under LRU (whose per-partition hit count is monotone in
// capacity by the inclusion property), a capacity whose division used to
// truncate must do at least as well as its truncated floor — and for
// this deterministic trace, strictly better.
func TestRemainderCapacityIsUsed(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 40, 256, 5)
	run := func(cacheChunks int) *Result {
		res, err := Run(Config{
			Code: code, Policy: "lru", Strategy: core.StrategyLooped,
			Workers: 4, CacheChunks: cacheChunks, Stripes: 256,
		}, errors)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// 11 chunks over 4 workers: pre-fix [2,2,2,2] (8 usable), post-fix
	// [3,3,3,2] (all 11).
	full := run(11)
	floor := run(8)
	if full.Cache.Hits < floor.Cache.Hits {
		t.Errorf("hits dropped with more cache: %d (11 chunks) < %d (8 chunks)", full.Cache.Hits, floor.Cache.Hits)
	}
	if full.Cache.Hits == floor.Cache.Hits && full.Cache.Misses == floor.Cache.Misses {
		t.Errorf("11 configured chunks behave identically to the truncated 8 — remainder capacity still discarded (hits=%d misses=%d)",
			full.Cache.Hits, full.Cache.Misses)
	}
}

// TestStaggeredArrivalMakespan pins the makespan accounting under
// staggered error detection with more configured workers than groups:
// the makespan must equal the last group's completion time (last
// arrival + one group's recovery), not the last arrival itself, even
// though most workers park in engine.idle and never hit the retirement
// branch of nextGroup.
func TestStaggeredArrivalMakespan(t *testing.T) {
	code := codes.MustNew("tip", 5)
	// Identical-shape groups on distinct stripes: same chain geometry,
	// so each takes exactly the same recovery time on a cold cache.
	groups := []core.PartialStripeError{
		{Stripe: 0, Disk: 0, Row: 0, Size: 1},
		{Stripe: 1, Disk: 0, Row: 0, Size: 1},
		{Stripe: 2, Disk: 0, Row: 0, Size: 1},
	}
	base := Config{Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 8, CacheChunks: 0, Stripes: 4}

	single, err := Run(base, groups[:1])
	if err != nil {
		t.Fatal(err)
	}
	if single.Makespan <= 0 {
		t.Fatal("single-group makespan not positive")
	}

	// Interarrival far beyond one group's recovery: every group is long
	// finished before the next is detected.
	ia := 4 * single.Makespan
	cfg := base
	cfg.ErrorInterarrival = ia
	res, err := Run(cfg, groups)
	if err != nil {
		t.Fatal(err)
	}
	lastArrival := sim.Time(len(groups)-1) * ia
	want := lastArrival + single.Makespan
	if res.Makespan != want {
		t.Errorf("staggered makespan = %v, want last completion %v (last arrival %v + group time %v)",
			res.Makespan, want, lastArrival, single.Makespan)
	}
	if res.Makespan <= lastArrival {
		t.Errorf("makespan %v does not extend past the last arrival %v", res.Makespan, lastArrival)
	}
	if res.Groups != len(groups) {
		t.Errorf("processed %d groups, want %d", res.Groups, len(groups))
	}
}

// TestConcurrentRunsShareGeometryAndTrace enforces rebuild.Run's
// documented concurrency contract: many simultaneous runs may share one
// geometry and one error-trace slice because both are strictly
// read-only. Under `go test -race` this fails loudly if anyone adds
// hidden mutable state to the engine, the codes/lrc geometries or the
// trace; without the race detector it still verifies that concurrent
// results are identical to serial ones.
func TestConcurrentRunsShareGeometryAndTrace(t *testing.T) {
	code := codes.MustNew("star", 7) // STAR exercises adjuster-cell chains
	errors := genErrors(t, code, 32, 512, 3)

	cfgFor := func(policy string, cacheChunks int) Config {
		return Config{
			Code: code, Policy: policy, Strategy: core.StrategyLooped,
			Workers: 8, CacheChunks: cacheChunks, Stripes: 512,
		}
	}
	type job struct {
		policy string
		chunks int
	}
	var jobs []job
	for _, policy := range []string{"fifo", "lru", "lfu", "arc", "fbf"} {
		for _, chunks := range []int{25, 100, 1000} {
			jobs = append(jobs, job{policy, chunks})
		}
	}

	// Serial reference results.
	want := make([]*Result, len(jobs))
	for i, j := range jobs {
		res, err := Run(cfgFor(j.policy, j.chunks), errors)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	// The same runs, all concurrent, sharing code and errors.
	got := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			got[i], errs[i] = Run(cfgFor(j.policy, j.chunks), errors)
		}(i, j)
	}
	wg.Wait()

	for i, j := range jobs {
		if errs[i] != nil {
			t.Fatalf("%s/%d: %v", j.policy, j.chunks, errs[i])
		}
		w, g := *want[i], *got[i]
		w.SchemeGenWall, g.SchemeGenWall = 0, 0 // real wall time, not simulated
		if !reflect.DeepEqual(w, g) {
			t.Errorf("%s/%d: concurrent result differs from serial:\n  serial     %+v\n  concurrent %+v", j.policy, j.chunks, w, g)
		}
	}
}
