// journal.go is the write-ahead rebuild journal: an append-only,
// CRC-framed record stream that makes RunService crash-safe and
// resumable. The service journals its scan, a plan record per stripe it
// starts, and a commit record per chunk it durably writes back; a
// process that dies mid-rebuild leaves a journal whose replay says
// exactly which repairs committed, so the next run re-verifies the
// stripe that was in flight and continues instead of starting over.
//
// Framing reuses the store's CRC32-Castagnoli discipline: an 8-byte
// file header (magic + version), then frames of
//
//	[1 type][4 payload length LE][payload][4 CRC32C over type+len+payload]
//
// Replay accepts the longest valid prefix and truncates a torn tail —
// the state a crash mid-append leaves — so the journal heals itself the
// same way the chunk store does: detection, never a misread.
package rebuild

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"fbf/internal/grid"
	"fbf/internal/store"
)

// Journal framing constants.
const (
	// JournalVersion is the record-stream version this build reads and
	// writes.
	JournalVersion = 1
	// journalHeaderSize is the fixed file header: 4 magic + 4 version.
	journalHeaderSize = 8
	// frameOverhead is the per-record framing cost: type + length + CRC.
	frameOverhead = 9
	// maxRecordPayload bounds a declared record length, so a corrupt
	// frame cannot trigger a huge allocation.
	maxRecordPayload = 1 << 20
)

var journalMagic = [4]byte{'F', 'B', 'F', 'J'}

// Record types.
const (
	recScan       byte = 1 // array geometry + damage summary
	recPlan       byte = 2 // stripe + lost cells about to be repaired
	recCommit     byte = 3 // chunk durably written back (+ payload CRC)
	recStripeDone byte = 4 // stripe fully repaired
	recDone       byte = 5 // rebuild complete
)

// ErrJournalVersion reports a journal written by an incompatible build.
var ErrJournalVersion = errors.New("rebuild: unsupported journal version")

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

// JournalScan is the journaled scan summary: the array geometry (the
// guard against resuming one store's journal on another) and the damage
// totals the plan was made for.
type JournalScan struct {
	Disks, Rows, Stripes, ChunkSize int
	Missing, Corrupt                int
	DamagedStripes                  int
}

// JournalState is the replayed content of a journal: the authoritative
// "what did the previous run get done" view a resuming service starts
// from.
type JournalState struct {
	Scan *JournalScan
	// Plans holds the latest journaled lost-cell set per stripe.
	Plans map[int][]grid.Coord
	// Commits maps each durably-written chunk to the CRC32C of the
	// payload the previous run wrote.
	Commits map[store.Addr]uint32
	// Done marks stripes whose repair fully completed.
	Done map[int]bool
	// Complete reports a terminal done record: the rebuild finished and
	// the journal is history, not progress.
	Complete bool
}

// InFlight returns the stripes that were planned but never completed —
// the repairs a crash interrupted — in ascending order.
func (st *JournalState) InFlight() []int {
	var out []int
	for stripe := range st.Plans {
		if !st.Done[stripe] {
			out = append(out, stripe)
		}
	}
	sort.Ints(out)
	return out
}

// Journal is an open write-ahead rebuild journal. Records append at the
// end of the valid prefix; Sync makes them durable. Not safe for
// concurrent use — the rebuild service is single-threaded by design.
type Journal struct {
	f    *os.File
	path string
	off  int64
}

// OpenJournal opens (creating if necessary) the journal at path and
// replays it. A fresh file gets the header; an existing one is
// validated, its longest intact prefix replayed into the returned
// state, and any torn tail truncated so appends continue cleanly.
func OpenJournal(path string) (*Journal, *JournalState, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("rebuild: opening journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	state, err := j.replay()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, state, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Offset returns the byte offset appends will land at — the "how far
// did we get" coordinate surfaced in interrupt summaries.
func (j *Journal) Offset() int64 { return j.off }

// Sync flushes appended records to stable storage.
func (j *Journal) Sync() error { return j.f.Sync() }

// Close closes the journal file (without removing it).
func (j *Journal) Close() error { return j.f.Close() }

// Remove closes and deletes the journal — the end state of a rebuild
// that ran to completion, leaving the store tree exactly as a clean
// init would.
func (j *Journal) Remove() error {
	if err := j.f.Close(); err != nil {
		os.Remove(j.path)
		return err
	}
	return os.Remove(j.path)
}

// Reset truncates the journal back to its header — used when an
// existing journal records a *completed* rebuild, so a new damage
// episode starts fresh instead of appending to history.
func (j *Journal) Reset() error {
	if err := j.f.Truncate(journalHeaderSize); err != nil {
		return fmt.Errorf("rebuild: resetting journal: %w", err)
	}
	// Truncate does not move the write offset; seek back so the next
	// append lands right after the header instead of beyond a zero gap.
	if _, err := j.f.Seek(journalHeaderSize, io.SeekStart); err != nil {
		return fmt.Errorf("rebuild: resetting journal: %w", err)
	}
	j.off = journalHeaderSize
	return nil
}

// replay validates the header (writing one into an empty file) and
// decodes records until EOF or the first torn/corrupt frame, truncating
// the tail in the latter case.
func (j *Journal) replay() (*JournalState, error) {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return nil, fmt.Errorf("rebuild: reading journal: %w", err)
	}
	state := &JournalState{
		Plans:   make(map[int][]grid.Coord),
		Commits: make(map[store.Addr]uint32),
		Done:    make(map[int]bool),
	}
	if len(data) == 0 {
		var hdr [journalHeaderSize]byte
		copy(hdr[0:4], journalMagic[:])
		binary.LittleEndian.PutUint32(hdr[4:8], JournalVersion)
		if _, err := j.f.Write(hdr[:]); err != nil {
			return nil, fmt.Errorf("rebuild: writing journal header: %w", err)
		}
		j.off = journalHeaderSize
		return state, nil
	}
	if len(data) < journalHeaderSize || [4]byte(data[0:4]) != journalMagic {
		return nil, fmt.Errorf("rebuild: %s is not a rebuild journal", j.path)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != JournalVersion {
		return nil, fmt.Errorf("%w: %d (this build reads %d)", ErrJournalVersion, v, JournalVersion)
	}
	off := int64(journalHeaderSize)
	rest := data[journalHeaderSize:]
	for {
		typ, payload, n, ok := nextFrame(rest)
		if !ok {
			break
		}
		if err := state.apply(typ, payload); err != nil {
			// A structurally valid frame with nonsense content is
			// corruption the CRC missed conceptually, not a torn tail;
			// fail loudly rather than resuming from lies.
			return nil, err
		}
		off += int64(n)
		rest = rest[n:]
	}
	if int(off) != len(data) {
		// Torn tail from a crash mid-append: truncate to the valid
		// prefix so new records never interleave with debris.
		if err := j.f.Truncate(off); err != nil {
			return nil, fmt.Errorf("rebuild: truncating torn journal tail: %w", err)
		}
	}
	if _, err := j.f.Seek(off, io.SeekStart); err != nil {
		return nil, fmt.Errorf("rebuild: seeking journal: %w", err)
	}
	j.off = off
	return state, nil
}

// nextFrame decodes one frame from b, returning its type, payload and
// total encoded size. ok is false for a torn or corrupt frame (or plain
// EOF).
func nextFrame(b []byte) (typ byte, payload []byte, n int, ok bool) {
	if len(b) < frameOverhead {
		return 0, nil, 0, false
	}
	typ = b[0]
	length := int(binary.LittleEndian.Uint32(b[1:5]))
	if length > maxRecordPayload || len(b) < frameOverhead+length {
		return 0, nil, 0, false
	}
	payload = b[5 : 5+length]
	want := binary.LittleEndian.Uint32(b[5+length : frameOverhead+length])
	if crc32.Checksum(b[:5+length], journalCRC) != want {
		return 0, nil, 0, false
	}
	return typ, payload, frameOverhead + length, true
}

// apply folds one replayed record into the state. Later records win:
// a re-plan after an escalation supersedes the stripe's earlier plan.
func (st *JournalState) apply(typ byte, p []byte) error {
	u32 := func(off int) int { return int(binary.LittleEndian.Uint32(p[off:])) }
	switch typ {
	case recScan:
		if len(p) != 28 {
			return fmt.Errorf("rebuild: journal scan record is %d bytes, want 28", len(p))
		}
		st.Scan = &JournalScan{
			Disks: u32(0), Rows: u32(4), Stripes: u32(8), ChunkSize: u32(12),
			Missing: u32(16), Corrupt: u32(20), DamagedStripes: u32(24),
		}
	case recPlan:
		if len(p) < 8 || (len(p)-8)%8 != 0 {
			return fmt.Errorf("rebuild: journal plan record is %d bytes", len(p))
		}
		stripe, count := u32(0), u32(4)
		if count != (len(p)-8)/8 {
			return fmt.Errorf("rebuild: journal plan record declares %d cells, carries %d", count, (len(p)-8)/8)
		}
		cells := make([]grid.Coord, count)
		for i := range cells {
			cells[i] = grid.Coord{Row: u32(8 + 8*i), Col: u32(12 + 8*i)}
		}
		st.Plans[stripe] = cells
	case recCommit:
		if len(p) != 16 {
			return fmt.Errorf("rebuild: journal commit record is %d bytes, want 16", len(p))
		}
		a := store.Addr{Disk: u32(0), Stripe: u32(4), Chunk: u32(8)}
		st.Commits[a] = binary.LittleEndian.Uint32(p[12:])
	case recStripeDone:
		if len(p) != 4 {
			return fmt.Errorf("rebuild: journal stripe-done record is %d bytes, want 4", len(p))
		}
		st.Done[u32(0)] = true
	case recDone:
		if len(p) != 0 {
			return fmt.Errorf("rebuild: journal done record carries %d bytes", len(p))
		}
		st.Complete = true
	default:
		return fmt.Errorf("rebuild: unknown journal record type %d", typ)
	}
	return nil
}

// append frames and writes one record.
func (j *Journal) append(typ byte, payload []byte) error {
	frame := make([]byte, 0, frameOverhead+len(payload))
	frame = append(frame, typ)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(frame, journalCRC))
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("rebuild: appending journal record: %w", err)
	}
	j.off += int64(len(frame))
	return nil
}

// AppendScan journals the scan summary and array geometry.
func (j *Journal) AppendScan(s JournalScan) error {
	p := make([]byte, 0, 28)
	for _, v := range [...]int{s.Disks, s.Rows, s.Stripes, s.ChunkSize, s.Missing, s.Corrupt, s.DamagedStripes} {
		p = binary.LittleEndian.AppendUint32(p, uint32(v))
	}
	return j.append(recScan, p)
}

// AppendPlan journals the lost-cell set a stripe repair is starting
// from (re-appended after every escalation re-plan; replay keeps the
// latest).
func (j *Journal) AppendPlan(stripe int, lost []grid.Coord) error {
	p := make([]byte, 0, 8+8*len(lost))
	p = binary.LittleEndian.AppendUint32(p, uint32(stripe))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(lost)))
	for _, c := range lost {
		p = binary.LittleEndian.AppendUint32(p, uint32(c.Row))
		p = binary.LittleEndian.AppendUint32(p, uint32(c.Col))
	}
	return j.append(recPlan, p)
}

// AppendCommit journals one durably-written chunk and its payload CRC.
func (j *Journal) AppendCommit(a store.Addr, payloadCRC uint32) error {
	p := make([]byte, 0, 16)
	p = binary.LittleEndian.AppendUint32(p, uint32(a.Disk))
	p = binary.LittleEndian.AppendUint32(p, uint32(a.Stripe))
	p = binary.LittleEndian.AppendUint32(p, uint32(a.Chunk))
	p = binary.LittleEndian.AppendUint32(p, payloadCRC)
	return j.append(recCommit, p)
}

// AppendStripeDone journals the completion of one stripe's repair.
func (j *Journal) AppendStripeDone(stripe int) error {
	return j.append(recStripeDone, binary.LittleEndian.AppendUint32(nil, uint32(stripe)))
}

// AppendDone journals rebuild completion.
func (j *Journal) AppendDone() error { return j.append(recDone, nil) }

// PayloadCRC computes the CRC32-Castagnoli a commit record carries for
// a chunk payload — exported so drills and tests can cross-check
// journal records against store contents.
func PayloadCRC(payload []byte) uint32 { return crc32.Checksum(payload, journalCRC) }
