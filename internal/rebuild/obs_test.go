package rebuild

import (
	"bytes"
	"runtime"
	"runtime/debug"
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/obs"
	"fbf/internal/sim"
)

func obsTestConfig(code *codes.Code) Config {
	return Config{
		Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Workers: 4, CacheChunks: 64, Stripes: 100,
	}
}

// TestTracedRunMatchesUntraced pins that attaching a tracer and a
// metrics registry perturbs nothing: every measurement of the observed
// run must equal the plain run's bit for bit. The observability layer
// is a pure reader of the simulation.
func TestTracedRunMatchesUntraced(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 20, 100, 1)

	plain, err := Run(obsTestConfig(code), errors)
	if err != nil {
		t.Fatal(err)
	}
	cfg := obsTestConfig(code)
	collector := obs.NewCollector()
	cfg.Tracer = collector
	cfg.Metrics = obs.NewRegistry()
	observed, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cache != observed.Cache || plain.DiskReads != observed.DiskReads ||
		plain.DiskWrites != observed.DiskWrites || plain.Makespan != observed.Makespan ||
		plain.SumResponse != observed.SumResponse || plain.TotalRequests != observed.TotalRequests ||
		plain.XORChunks != observed.XORChunks || plain.Groups != observed.Groups {
		t.Fatalf("observed run drifted from plain run:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
	if collector.Len() == 0 {
		t.Fatal("traced run emitted no events")
	}
	if err := obs.Validate(collector.Events()); err != nil {
		t.Fatalf("invalid event stream: %v", err)
	}
	if cfg.Metrics.Samples() < 2 {
		t.Fatalf("metrics registry sampled only %d times", cfg.Metrics.Samples())
	}
}

// TestTracedRunDeterministic pins byte-level trace reproducibility:
// two identical traced runs must serialize to identical JSONL.
func TestTracedRunDeterministic(t *testing.T) {
	code := codes.MustNew("star", 5)
	errors := genErrors(t, code, 12, 80, 3)
	export := func() []byte {
		cfg := obsTestConfig(code)
		cfg.Code = code
		c := obs.NewCollector()
		cfg.Tracer = c
		if _, err := Run(cfg, errors); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, c.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(export(), export()) {
		t.Fatal("identical traced runs produced different traces")
	}
}

// TestTracedFaultRunEmitsLadderEvents drives the fault ladder under a
// tracer and checks the fault-category instants appear.
func TestTracedFaultRunEmitsLadderEvents(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 20, 100, 1)
	cfg := obsTestConfig(code)
	cfg.Faults = &FaultConfig{Seed: 5, URERate: 0.02, TransientRate: 0.05,
		DiskFailures: []DiskFailure{{Disk: 2, At: 40 * sim.Millisecond}}}
	c := obs.NewCollector()
	cfg.Tracer = c
	res, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range c.Events() {
		if e.Cat == obs.CatFault {
			counts[e.Name]++
		}
	}
	if res.Retries > 0 && counts["retry"] == 0 {
		t.Errorf("%d retries but no retry events", res.Retries)
	}
	if res.Escalations > 0 && counts["escalate"] == 0 {
		t.Errorf("%d escalations but no escalate events", res.Escalations)
	}
	if res.Regenerations > 0 && counts["regenerate"] == 0 {
		t.Errorf("%d regenerations but no regenerate events", res.Regenerations)
	}
	if res.RePlans > 0 && counts["re-plan"] == 0 {
		t.Errorf("%d re-plans but no re-plan events", res.RePlans)
	}
	if counts["retry"] == 0 && counts["escalate"] == 0 {
		t.Fatalf("fault run triggered no ladder events at all: %+v", res)
	}
}

// TestObsDisabledHotPathAllocs pins the zero-overhead-when-disabled
// contract at the allocation level: the helpers reachable with a nil
// tracer must not allocate, and two identical untraced runs must
// perform exactly the same number of heap allocations (the
// instrumentation cannot leak allocations into the disabled path
// without breaking this).
func TestObsDisabledHotPathAllocs(t *testing.T) {
	e := &engine{}
	w := &worker{engine: e}
	if n := testing.AllocsPerRun(200, func() { w.closeChain(false) }); n != 0 {
		t.Errorf("closeChain with no open span allocates %.0f times", n)
	}
	if n := testing.AllocsPerRun(200, func() { e.recordResponse(sim.Millisecond) }); n != 0 {
		t.Errorf("recordResponse without histograms allocates %.0f times", n)
	}

	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 10, 100, 1)
	// An automatic GC landing inside one run but not the other clears
	// sync.Pool victim caches and shifts the count by the refills; the
	// contract under test is about instrumentation, not GC timing, so
	// collection is paused for the comparison.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	mallocs := func() uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		if _, err := Run(obsTestConfig(code), errors); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	mallocs() // warm up shared state (code tables, pools)
	a, b := mallocs(), mallocs()
	if a != b {
		t.Errorf("untraced run allocation count is not deterministic: %d vs %d", a, b)
	}
}

// TestDORRejectsObservability pins that the DOR engine refuses sinks it
// would silently ignore.
func TestDORRejectsObservability(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 4, 100, 1)
	cfg := obsTestConfig(code)
	cfg.Mode = ModeDOR
	cfg.Tracer = obs.NewCollector()
	if _, err := Run(cfg, errors); err == nil {
		t.Fatal("DOR accepted a tracer it would ignore")
	}
	cfg.Tracer = nil
	cfg.Metrics = obs.NewRegistry()
	if _, err := Run(cfg, errors); err == nil {
		t.Fatal("DOR accepted a metrics registry it would ignore")
	}
}

// TestMetricsValidation pins the MetricsInterval validation.
func TestMetricsValidation(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 4, 100, 1)
	cfg := obsTestConfig(code)
	cfg.MetricsInterval = -sim.Millisecond
	if _, err := Run(cfg, errors); err == nil {
		t.Fatal("negative MetricsInterval accepted")
	}
	cfg.MetricsInterval = sim.Millisecond // without a registry
	if _, err := Run(cfg, errors); err == nil {
		t.Fatal("MetricsInterval without Metrics accepted")
	}
}

// TestMetricsRegistrySampling checks the sampled columns cover the
// cache, disk and FBF-queue gauges and that fault gauges appear only
// when faults are armed.
func TestMetricsRegistrySampling(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 20, 100, 1)
	cfg := obsTestConfig(code)
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	cfg.MetricsInterval = 5 * sim.Millisecond
	res, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	cols := map[string]int{}
	for i, c := range reg.Columns() {
		cols[c] = i
	}
	for _, want := range []string{"requests", "hits", "misses", "hit_ratio", "evictions",
		"disks_inflight", "disk0_inflight", "fbf_q1", "fbf_q2", "fbf_q3", "groups_done"} {
		if _, ok := cols[want]; !ok {
			t.Errorf("missing metric column %q (have %v)", want, reg.Columns())
		}
	}
	if _, ok := cols["retries"]; ok {
		t.Error("fault gauges registered without fault injection")
	}
	// The final sample must agree with the run's result counters.
	_, last := reg.Row(reg.Samples() - 1)
	if got := uint64(last[cols["requests"]]); got != res.TotalRequests {
		t.Errorf("final requests sample %d != result %d", got, res.TotalRequests)
	}
	if got := uint64(last[cols["misses"]]); got != res.Cache.Misses {
		t.Errorf("final misses sample %d != result %d", got, res.Cache.Misses)
	}
	if got := int(last[cols["groups_done"]]); got != res.Groups {
		t.Errorf("final groups_done sample %d != %d groups", got, res.Groups)
	}

	// Fault gauges appear when armed.
	cfg = obsTestConfig(code)
	cfg.Faults = &FaultConfig{Seed: 1, URERate: 0.01}
	cfg.Metrics = obs.NewRegistry()
	if _, err := Run(cfg, errors); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cfg.Metrics.Columns() {
		if c == "retries" {
			found = true
		}
	}
	if !found {
		t.Error("fault run missing fault gauges")
	}
}
