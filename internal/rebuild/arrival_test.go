package rebuild

import (
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/sim"
)

func TestStaggeredArrivalStretchesMakespan(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 20, 100, 51)
	base := Config{
		Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Workers: 8, CacheChunks: 64, Stripes: 100,
	}
	immediate, err := Run(base, errors)
	if err != nil {
		t.Fatal(err)
	}
	staggered := base
	staggered.ErrorInterarrival = 500 * sim.Millisecond
	slow, err := Run(staggered, errors)
	if err != nil {
		t.Fatal(err)
	}
	// The last group arrives at 19 * 500 ms; recovery cannot end before.
	if slow.Makespan < 19*500*sim.Millisecond {
		t.Errorf("makespan %v earlier than last arrival", slow.Makespan)
	}
	if slow.Makespan <= immediate.Makespan {
		t.Errorf("staggered arrival did not stretch makespan: %v <= %v", slow.Makespan, immediate.Makespan)
	}
	// Work content is identical: same reads, writes, requests.
	if slow.DiskReads == 0 || slow.DiskWrites != immediate.DiskWrites || slow.TotalRequests != immediate.TotalRequests {
		t.Errorf("staggered arrival changed work: %+v vs %+v", slow, immediate)
	}
}

func TestStaggeredArrivalAllGroupsProcessed(t *testing.T) {
	code := codes.MustNew("star", 5)
	errors := genErrors(t, code, 12, 60, 52)
	res, err := Run(Config{
		Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 3, CacheChunks: 16, Stripes: 60,
		ErrorInterarrival: 2 * sim.Millisecond,
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	var lost uint64
	for _, e := range errors {
		lost += uint64(e.Size)
	}
	if res.DiskWrites != lost {
		t.Errorf("wrote %d spare chunks, want %d (groups dropped?)", res.DiskWrites, lost)
	}
}

func TestStaggeredArrivalDeterministic(t *testing.T) {
	code := codes.MustNew("hdd1", 5)
	errors := genErrors(t, code, 10, 50, 53)
	cfg := Config{
		Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Workers: 4, CacheChunks: 32, Stripes: 50,
		ErrorInterarrival: 7 * sim.Millisecond,
	}
	a, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Cache != b.Cache {
		t.Error("staggered arrival not deterministic")
	}
}

func TestDORRejectsStaggeredArrival(t *testing.T) {
	code := codes.MustNew("tip", 5)
	_, err := Run(Config{
		Code: code, Policy: "lru", Mode: ModeDOR,
		Workers: 1, CacheChunks: 8, Stripes: 10,
		ErrorInterarrival: sim.Millisecond,
	}, []core.PartialStripeError{{Stripe: 0, Disk: 0, Row: 0, Size: 1}})
	if err == nil {
		t.Error("DOR with staggered arrival accepted")
	}
}
