package rebuild

import (
	"fmt"
	"sort"
	"time"

	"fbf/internal/cache"
	"fbf/internal/core"
	"fbf/internal/disk"
	"fbf/internal/grid"
	"fbf/internal/obs"
	"fbf/internal/sim"
)

// ConfigError reports an invalid Config field with the field path and
// the reason, matching the typed-validation style of the experiments
// package.
type ConfigError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("rebuild: invalid %s: %s", e.Field, e.Reason)
}

// DiskFailure schedules the whole-disk failure of one disk at a
// simulated time after the error groups arrive (t = 0).
type DiskFailure struct {
	Disk int
	At   sim.Time
}

// FaultConfig arms deterministic fault injection for a run. All
// outcomes derive from Seed, so identical configurations reproduce
// identical fault schedules regardless of host parallelism.
//
// The engine's escalation ladder:
//
//  1. a transient read timeout retries with capped exponential backoff
//     (up to RetryMax total attempts per fetch);
//  2. an unrecoverable read error (URE) — or an exhausted retry budget —
//     escalates the chunk to lost: its cached copy is invalidated, the
//     current recovery scheme is regenerated around it (GF(2) decoder
//     fallback for multi-erasure chains), and repair continues;
//  3. a whole-disk failure re-plans the remaining work once per failure,
//     with completed chunks checkpointed in spare areas and re-read from
//     there instead of being rebuilt again;
//  4. a pattern beyond the code's tolerance ends in a graceful DataLoss
//     result with per-chunk accounting — never a panic.
type FaultConfig struct {
	Seed          int64
	URERate       float64 // per-address latent-sector-error probability, [0, 1)
	TransientRate float64 // per-attempt transient-timeout probability, [0, 1)

	// RetryMax caps total read attempts per chunk fetch (initial attempt
	// included). Zero selects the default of 4.
	RetryMax int
	// RetryBackoff is the delay before the first retry; each further
	// retry doubles it up to RetryBackoffCap. Zeros select the defaults
	// of 1 ms and 8 ms.
	RetryBackoff    sim.Time
	RetryBackoffCap sim.Time

	// DiskFailures lists whole-disk failures to inject mid-rebuild.
	DiskFailures []DiskFailure
}

// withDefaults returns a copy with unset knobs filled in.
func (f FaultConfig) withDefaults() FaultConfig {
	if f.RetryMax == 0 {
		f.RetryMax = 4
	}
	if f.RetryBackoff == 0 {
		f.RetryBackoff = sim.Millisecond
	}
	if f.RetryBackoffCap == 0 {
		f.RetryBackoffCap = 8 * sim.Millisecond
	}
	return f
}

// Validate checks the fault fields against the array width, returning a
// *ConfigError naming the offending field.
func (f *FaultConfig) Validate(disks int) error {
	if f.URERate < 0 || f.URERate >= 1 {
		return &ConfigError{Field: "Faults.URERate", Reason: fmt.Sprintf("rate %v outside [0, 1)", f.URERate)}
	}
	if f.TransientRate < 0 || f.TransientRate >= 1 {
		return &ConfigError{Field: "Faults.TransientRate", Reason: fmt.Sprintf("rate %v outside [0, 1)", f.TransientRate)}
	}
	if f.RetryMax < 0 {
		return &ConfigError{Field: "Faults.RetryMax", Reason: fmt.Sprintf("retry cap %d below 1 (zero selects the default)", f.RetryMax)}
	}
	if f.RetryBackoff < 0 {
		return &ConfigError{Field: "Faults.RetryBackoff", Reason: fmt.Sprintf("negative backoff %v", f.RetryBackoff)}
	}
	if f.RetryBackoffCap < 0 {
		return &ConfigError{Field: "Faults.RetryBackoffCap", Reason: fmt.Sprintf("negative backoff cap %v", f.RetryBackoffCap)}
	}
	for i, df := range f.DiskFailures {
		if df.Disk < 0 || df.Disk >= disks {
			return &ConfigError{
				Field:  fmt.Sprintf("Faults.DiskFailures[%d].Disk", i),
				Reason: fmt.Sprintf("disk %d out of range [0,%d)", df.Disk, disks),
			}
		}
		if df.At <= 0 {
			return &ConfigError{
				Field:  fmt.Sprintf("Faults.DiskFailures[%d].At", i),
				Reason: fmt.Sprintf("failure time %v not after error arrival (t=0)", df.At),
			}
		}
	}
	return nil
}

// spareLoc records where a checkpointed (already rebuilt) chunk lives.
type spareLoc struct {
	disk int
	addr int64
}

// armFaults installs the per-disk fault plans on the array config and
// returns the earliest failure time per disk.
func armFaults(f *FaultConfig, arrayCfg *disk.ArrayConfig) map[int]sim.Time {
	failAt := make(map[int]sim.Time)
	for _, df := range f.DiskFailures {
		if cur, ok := failAt[df.Disk]; !ok || df.At < cur {
			failAt[df.Disk] = df.At
		}
	}
	arrayCfg.FaultFor = func(i int) disk.FaultPlan {
		at := failAt[i]
		if f.URERate == 0 && f.TransientRate == 0 && at == 0 {
			return nil
		}
		return disk.NewSeededFaultPlan(i, f.Seed, f.URERate, f.TransientRate, at)
	}
	return failAt
}

// scheduleFailures arms the engine's re-planning reaction to each
// distinct disk failure. The disks themselves fail first at the same
// timestamp (their failure events were scheduled during array
// construction and the simulator breaks time ties by insertion order).
func (e *engine) scheduleFailures(failAt map[int]sim.Time) {
	cols := make([]int, 0, len(failAt))
	for c := range failAt {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	for _, col := range cols {
		col := col
		e.sim.ScheduleAt(failAt[col], func() { e.onDiskFailure(col) })
	}
}

// onDiskFailure reacts to one whole-disk failure: the remaining work is
// re-planned exactly once per failure by flagging every active worker
// to regenerate its scheme at the next barrier.
func (e *engine) onDiskFailure(col int) {
	if e.failedCols[col] {
		return
	}
	e.failedCols[col] = true
	e.rePlans++
	if e.tr != nil {
		e.instant(engineLane, obs.CatFault, "re-plan", obs.Arg{Key: "disk", Val: int64(col)})
	}
	for _, w := range e.workers {
		if w.scheme != nil {
			w.regen = true
		}
	}
}

// loseChunk accounts one chunk as unrecoverable.
func (e *engine) loseChunk(id cache.ChunkID) {
	e.lostChunks = append(e.lostChunks, id)
	if e.serving != nil {
		// The cell stays in the serving lost set forever: reads of it
		// keep going through chain reconstruction (or failing).
		e.serving.addLost(id)
	}
	if e.tr != nil {
		e.instant(engineLane, obs.CatFault, "data-loss", coordArgs(id)...)
	}
}

// escalate promotes a fetch chunk to lost after an unrecoverable read
// error (or an exhausted retry budget): its now-stale cached copy is
// invalidated and the current scheme is marked for regeneration.
func (w *worker) escalate(cell grid.Coord, id cache.ChunkID) {
	e := w.engine
	e.escalations++
	if e.tr != nil {
		e.instant(w.lane(), obs.CatFault, "escalate", coordArgs(id)...)
	}
	if w.escalSet == nil {
		w.escalSet = make(map[grid.Coord]bool)
	}
	if !w.escalSet[cell] {
		w.escalSet[cell] = true
		w.escalated = append(w.escalated, cell)
	}
	if e.serving != nil {
		e.serving.addLost(id)
	}
	// If the cell had been checkpointed its spare copy is what just
	// failed to read; it needs rebuilding again.
	delete(w.recovered, cell)
	if inv, ok := w.cache.(cache.Invalidator); ok {
		inv.Invalidate(id)
	}
	w.aborted = true
}

// markRecovered checkpoints one rebuilt chunk: after a re-plan it is
// re-read from its spare location instead of being rebuilt again.
func (w *worker) markRecovered(cell grid.Coord, diskID int, addr int64) {
	e := w.engine
	if e.faults == nil {
		return
	}
	if w.recovered == nil {
		w.recovered = make(map[grid.Coord]spareLoc)
	}
	w.recovered[cell] = spareLoc{disk: diskID, addr: addr}
	if e.sim.Now() > e.lastRepair {
		e.lastRepair = e.sim.Now()
	}
}

// fetchOp is one miss fetch in flight: the chunk being read, the retry
// count, and the disk request itself. Ops are recycled through the
// worker's freelist with run and the request's completion bound once at
// creation, so a steady-state fetch — including its retries — allocates
// nothing. A chain's ops all retire (success, escalation or
// abandonment) before its barrier fires, so completion always reports
// to the owning worker's current chain.
type fetchOp struct {
	w        *worker
	stripe   int
	cell     grid.Coord
	id       cache.ChunkID
	attempt  int
	req      disk.Request // Handler == the op itself: no completion closure
	runFn    func()       // prebound run, created lazily for the retry path
	submitFn func()       // prebound submit, created lazily for the QoS-delayed path
	next     *fetchOp     // freelist / pending-FIFO link (one at a time)
}

// fetchOpSlab is how many ops one freelist refill allocates at once.
const fetchOpSlab = 8

// getFetchOp takes an op from the freelist, refilling it a slab at a
// time on exhaustion.
func (w *worker) getFetchOp() *fetchOp {
	if w.freeOps == nil {
		slab := make([]fetchOp, fetchOpSlab)
		for i := range slab {
			o := &slab[i]
			o.w = w
			o.req.Handler = o
			o.next = w.freeOps
			w.freeOps = o
		}
	}
	o := w.freeOps
	w.freeOps = o.next
	o.next = nil
	return o
}

// putFetchOp returns a retired op to the freelist.
func (w *worker) putFetchOp(o *fetchOp) {
	o.next = w.freeOps
	w.freeOps = o
}

// run dispatches the op's read, pacing it through the QoS throttle when
// one is armed: an overdrawn token bucket books the submission at a
// future timestamp instead of issuing now.
func (o *fetchOp) run() {
	w := o.w
	e := w.engine
	if e.qos != nil {
		d := o.cell.Col
		if loc, ok := w.recovered[o.cell]; ok {
			d = loc.disk
		}
		now := e.sim.Now()
		if at := e.qos.gate(d, now); at > now {
			if o.submitFn == nil {
				o.submitFn = o.submit
			}
			e.sim.ScheduleAt(at, o.submitFn)
			return
		}
	}
	o.submit()
}

// submit issues the op's read: from the chunk's spare checkpoint when
// one exists, otherwise from its home cell.
func (o *fetchOp) submit() {
	w := o.w
	e := w.engine
	var err error
	if loc, ok := w.recovered[o.cell]; ok {
		err = e.array.ReadAddrReq(loc.disk, loc.addr, &o.req)
	} else {
		err = e.array.ReadChunkReq(o.stripe, o.cell, &o.req)
	}
	if err != nil {
		panic(fmt.Sprintf("rebuild: read failed: %v", err))
	}
}

// pushPending appends the op to the worker's issue FIFO. Each miss
// schedules the worker's prebound issueNextFn at its lookup-completion
// time; a chain's lookup times strictly increase and the FIFO drains
// before its barrier, so the k-th firing issues the k-th pushed op —
// exactly the pairing the old per-miss closures encoded, without the
// per-miss allocation.
func (w *worker) pushPending(o *fetchOp) {
	if w.pendTail != nil {
		w.pendTail.next = o
	} else {
		w.pendHead = o
	}
	w.pendTail = o
}

// issueNext pops the oldest pending op and submits its read.
func (w *worker) issueNext() {
	o := w.pendHead
	w.pendHead = o.next
	if w.pendHead == nil {
		w.pendTail = nil
	}
	o.next = nil
	o.run()
}

// OnComplete implements disk.Handler: it reacts to the read's outcome
// per the escalation ladder. It fires exactly once per submission; a
// retry resubmits the same op after backoff.
func (o *fetchOp) OnComplete(_ *disk.Request, issued, completed sim.Time) {
	w := o.w
	e := w.engine
	if !o.req.Failed {
		e.recordResponse(e.cfg.CacheAccess + (completed - issued))
		w.putFetchOp(o)
		w.chainDone()
		return
	}
	e.failedReads++
	switch o.req.Fault {
	case disk.FaultTransient:
		if o.attempt+1 < e.faults.RetryMax {
			e.retries++
			if e.tr != nil {
				e.instant(w.lane(), obs.CatFault, "retry",
					obs.Arg{Key: "row", Val: int64(o.cell.Row)},
					obs.Arg{Key: "col", Val: int64(o.cell.Col)},
					obs.Arg{Key: "attempt", Val: int64(o.attempt + 1)})
			}
			if o.runFn == nil {
				o.runFn = o.run
			}
			e.sim.Schedule(w.backoff(o.attempt), o.runFn)
			o.attempt++
			return
		}
		w.escalate(o.cell, o.id)
		w.putFetchOp(o)
		w.chainDone()
	case disk.FaultURE:
		// UREs are permanent per address; retrying cannot help.
		w.escalate(o.cell, o.id)
		w.putFetchOp(o)
		w.chainDone()
	default: // whole-disk failure: the re-plan handles this column
		w.regen = true
		w.putFetchOp(o)
		w.chainDone()
	}
}

// backoff returns the capped exponential retry delay for the given
// prior-attempt count.
func (w *worker) backoff(attempt int) sim.Time {
	f := w.engine.faults
	d := f.RetryBackoff
	for i := 0; i < attempt && d < f.RetryBackoffCap; i++ {
		d *= 2
	}
	if d > f.RetryBackoffCap {
		d = f.RetryBackoffCap
	}
	return d
}

// writeRecovered writes one rebuilt chunk to the spare area of its home
// disk, failing over to the next surviving disk, and checkpoints the
// result. With every disk dead the chunk has nowhere to live and is
// accounted lost. The worker's preallocated spare request carries the
// write; its completion (spareDone) was bound at construction.
func (w *worker) writeRecovered(sel core.SelectedChain) {
	e := w.engine
	w.curSel = sel
	if e.qos != nil {
		// Pace the spare write like any other rebuild I/O. The gate disk
		// is resolved now; issueSpare re-resolves the actual target, so a
		// failover between gate and issue still lands on a survivor.
		if target := e.array.SpareTarget(sel.Lost.Col); target >= 0 {
			now := e.sim.Now()
			if at := e.qos.gate(target, now); at > now {
				if w.spareIssueFn == nil {
					w.spareIssueFn = w.issueSpare
				}
				e.sim.ScheduleAt(at, w.spareIssueFn)
				return
			}
		}
	}
	w.issueSpare()
}

// issueSpare submits the spare write of the current chain's recovered
// chunk.
func (w *worker) issueSpare() {
	e := w.engine
	sel := w.curSel
	target, addr := e.array.WriteSpareReq(sel.Lost.Col, &w.spareReq)
	if target < 0 {
		e.loseChunk(cache.ChunkID{Stripe: w.scheme.Err.Stripe, Cell: sel.Lost})
		w.startChain()
		return
	}
	w.spareTarget, w.spareAddr = target, addr
}

// spareDone completes the spare write of the current chain's recovered
// chunk.
func (w *worker) spareDone(issued, completed sim.Time) {
	if w.spareReq.Failed {
		// The spare target died mid-write; try the next survivor.
		w.writeRecovered(w.curSel)
		return
	}
	w.markRecovered(w.curSel.Lost, w.spareTarget, w.spareAddr)
	// The repair is durable: the stripe's serving class improves.
	if sv := w.engine.serving; sv != nil {
		sv.repaired(w.scheme.Err.Stripe, w.curSel.Lost)
	}
	w.startChain()
}

// unavailableCells lists this stripe's chunks on failed columns that
// are not covered by exclude (cells being repaired here or readable
// from a live spare checkpoint). Columns are walked in sorted order so
// regeneration is deterministic.
func (e *engine) unavailableCells(exclude func(grid.Coord) bool) []grid.Coord {
	layout := e.cfg.Code.Layout()
	cols := make([]int, 0, len(e.failedCols))
	for c := range e.failedCols {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	var out []grid.Coord
	for _, col := range cols {
		for r := 0; r < layout.Rows(); r++ {
			c := grid.Coord{Row: r, Col: col}
			if !exclude(c) {
				out = append(out, c)
			}
		}
	}
	return out
}

// regenerate rebuilds the worker's recovery scheme mid-group after
// escalations or disk failures changed the erasure pattern. Chunks
// already rebuilt stay checkpointed in their spare areas (unless the
// spare's disk died); cells even the GF(2) decoder cannot solve are
// accounted as data loss and repair continues with the rest.
func (w *worker) regenerate() {
	e := w.engine
	w.aborted, w.regen = false, false
	e.regenerations++
	group := w.scheme.Err

	inRepair := make(map[grid.Coord]bool)
	var repair []grid.Coord
	addRepair := func(c grid.Coord) {
		if inRepair[c] {
			return
		}
		if loc, ok := w.recovered[c]; ok {
			if !e.failedCols[loc.disk] {
				return // checkpointed: readable from its live spare
			}
			delete(w.recovered, c) // the spare died with its disk
		}
		inRepair[c] = true
		repair = append(repair, c)
	}
	for _, c := range group.LostCells() {
		addRepair(c)
	}
	for _, c := range w.escalated {
		addRepair(c)
	}
	e.checkpointed += uint64(len(w.recovered))

	unavailable := e.unavailableCells(func(c grid.Coord) bool {
		if inRepair[c] {
			return true
		}
		_, ok := w.recovered[c]
		return ok
	})

	start := time.Now()
	scheme, lost, err := core.RegenerateScheme(e.cfg.Code, group, repair, unavailable, e.cfg.Strategy)
	wall := time.Since(start)
	e.schemeWall += wall
	if err != nil {
		// Inputs were validated and bounds-checked; this is a bug.
		panic(fmt.Sprintf("rebuild: scheme regeneration failed: %v", err))
	}
	for _, c := range lost {
		e.loseChunk(cache.ChunkID{Stripe: group.Stripe, Cell: c})
	}
	if e.tr != nil {
		e.instant(w.lane(), obs.CatFault, "regenerate",
			obs.Arg{Key: "stripe", Val: int64(group.Stripe)},
			obs.Arg{Key: "repair", Val: int64(len(repair))},
			obs.Arg{Key: "lost", Val: int64(len(lost))})
	}
	w.installScheme(scheme, wall)
}
