package rebuild

import (
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/sim"
)

// TestExactTimingSingleChain verifies the engine's time accounting
// against a hand computation: one worker, one single-chunk error group,
// zero cache. The chain's fetches are looked up sequentially (0.5 ms
// each) with each miss's disk read issued at its own lookup-completion
// time; reads to distinct disks proceed in parallel; then the XOR and
// the spare write follow.
func TestExactTimingSingleChain(t *testing.T) {
	code := codes.MustNew("tip", 5) // horizontal chains: 6 cells → 5 fetches
	e := core.PartialStripeError{Stripe: 0, Disk: 0, Row: 0, Size: 1}
	scheme, err := core.GenerateScheme(code, e, core.StrategyTypical)
	if err != nil {
		t.Fatal(err)
	}
	fetches := len(scheme.Selected[0].Fetch)
	if fetches != 5 {
		t.Fatalf("expected 5 fetches, got %d", fetches)
	}

	const (
		access = sim.Millisecond / 2
		read   = 10 * sim.Millisecond
		xor    = 10 * sim.Microsecond
	)
	res, err := Run(Config{
		Code: code, Policy: "lru", Strategy: core.StrategyTypical,
		Workers: 1, CacheChunks: 0, Stripes: 1,
		CacheAccess: access, XORPerChunk: xor,
	}, []core.PartialStripeError{e})
	if err != nil {
		t.Fatal(err)
	}

	// Fetches hit 5 distinct disks (horizontal chain, one cell per
	// column): read i is issued at (i+1)*access and completes
	// read-time later. The last read (i=4) completes at 5*access + read,
	// which also dominates the lookup-phase end (5*access). Then the XOR
	// of 5 chunks and the 10 ms spare write.
	wantMakespan := 5*access + read + 5*xor + read
	if res.Makespan != wantMakespan {
		t.Errorf("makespan = %v, want %v", res.Makespan, wantMakespan)
	}
	// Response time of read i = access (lookup) + read (no queueing,
	// distinct disks).
	wantSum := 5 * (access + read)
	if res.SumResponse != wantSum {
		t.Errorf("sum response = %v, want %v", res.SumResponse, wantSum)
	}
	if res.DiskReads != 5 || res.DiskWrites != 1 {
		t.Errorf("I/O counts: reads %d writes %d", res.DiskReads, res.DiskWrites)
	}
	if res.XORChunks != 5 {
		t.Errorf("XORChunks = %d", res.XORChunks)
	}
}

// TestExactTimingSameDiskSerialization: when two fetches of one chain
// land on the same disk, the second queues behind the first.
func TestExactTimingSameDiskSerialization(t *testing.T) {
	// STAR's diagonal chains include adjuster cells that can share a
	// column with regular members. Find such a chain via the layout.
	code := codes.MustNew("star", 5)
	var e core.PartialStripeError
	var found bool
	var fetches int
outer:
	for disk := 0; disk < code.Disks(); disk++ {
		for row := 0; row < code.Rows(); row++ {
			s, err := core.GenerateScheme(code, core.PartialStripeError{Disk: disk, Row: row, Size: 2}, core.StrategyLooped)
			if err != nil {
				continue
			}
			for _, sel := range s.Selected {
				cols := map[int]int{}
				for _, f := range sel.Fetch {
					cols[f.Col]++
				}
				for _, n := range cols {
					if n >= 2 {
						e = s.Err
						fetches = s.TotalRequests()
						found = true
						break outer
					}
				}
			}
		}
	}
	if !found {
		t.Skip("no same-column chain found (layout change?)")
	}
	res, err := Run(Config{
		Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 1, CacheChunks: 0, Stripes: 1,
	}, []core.PartialStripeError{e})
	if err != nil {
		t.Fatal(err)
	}
	// With same-disk contention, at least one response exceeds the
	// no-queueing baseline of access + read.
	base := sim.Millisecond/2 + 10*sim.Millisecond
	if res.SumResponse <= sim.Time(fetches)*base {
		t.Errorf("expected queueing to inflate responses: sum %v <= %d * %v", res.SumResponse, fetches, base)
	}
}

// TestRecoveryEndExcludesAppTail: the makespan is when the last worker
// retires, not when trailing app events drain.
func TestRecoveryEndExcludesAppTail(t *testing.T) {
	code := codes.MustNew("tip", 5)
	e := []core.PartialStripeError{{Stripe: 0, Disk: 0, Row: 0, Size: 1}}
	quiet, err := Run(Config{
		Code: code, Policy: "lru", Workers: 1, CacheChunks: 0, Stripes: 4,
	}, e)
	if err != nil {
		t.Fatal(err)
	}
	// A sparse app stream stretching far past recovery.
	loaded, err := Run(Config{
		Code: code, Policy: "lru", Workers: 1, CacheChunks: 0, Stripes: 4,
		App: &AppWorkload{Requests: 50, Interarrival: 20 * sim.Millisecond, Seed: 1},
	}, e)
	if err != nil {
		t.Fatal(err)
	}
	// App events run until 1000 ms; recovery itself ends much earlier.
	if loaded.Makespan >= 500*sim.Millisecond {
		t.Errorf("makespan %v includes the app tail", loaded.Makespan)
	}
	if loaded.Makespan < quiet.Makespan {
		t.Errorf("load cannot speed recovery up: %v < %v", loaded.Makespan, quiet.Makespan)
	}
}
