// service.go promotes the simulator's data plane into a storage engine:
// rebuild.Service drives the same scheme/cache/escalation machinery the
// event-driven engine replays — core.RegenerateScheme chain selection,
// cache.Policy residency with FBF priorities, the escalate-and-replan
// ladder — against real bytes in a store.Backend, byte-checking every
// recovered chunk with internal/verify's GF(2) oracle before it is
// written back.
package rebuild

import (
	"fmt"
	"sort"
	"strings"

	"fbf/internal/cache"
	"fbf/internal/chunk"
	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/grid"
	"fbf/internal/store"
	"fbf/internal/telemetry"
	"fbf/internal/verify"
)

// Service priority orders: which damaged stripes are repaired first.
const (
	// PrioritySequential repairs stripes in ascending index order — the
	// mdadm-style default.
	PrioritySequential = "sequential"
	// PriorityVulnerable repairs the stripes with the most lost chunks
	// first, shrinking the window in which a further failure causes
	// data loss.
	PriorityVulnerable = "vulnerable"
)

// Priorities lists the valid Service priority orders.
func Priorities() []string { return []string{PrioritySequential, PriorityVulnerable} }

// ServiceConfig parameterizes one storage-engine rebuild.
type ServiceConfig struct {
	Backend  store.Backend
	Manifest store.ArrayManifest

	Policy   string        // cache policy for surviving-chunk bytes (default "fbf")
	Strategy core.Strategy // chain-selection strategy

	// CacheChunks bounds the in-memory byte cache holding surviving
	// chunks across chains (default 64). Zero keeps the default; a
	// negative value disables caching entirely.
	CacheChunks int

	// CheckOnly scans and reports damage without planning or writing —
	// `fbfctl rebuild -o check-only`.
	CheckOnly bool
	// DryRun scans and plans the full rebuild (schemes included) but
	// performs no reads of chunk payloads and no writes.
	DryRun bool
	// Scrub makes the damage scan read and CRC-check every payload
	// instead of trusting the cheap header Stat, catching silent
	// payload bit-rot at scan time.
	Scrub bool
	// NoVerify skips the GF(2) oracle cross-check of recovered chunks.
	NoVerify bool

	// Priority selects the stripe repair order (PrioritySequential
	// default, PriorityVulnerable).
	Priority string

	// JournalPath, when set, makes the rebuild crash-safe: scan results,
	// per-stripe plans, and per-chunk commits append to a write-ahead
	// journal at this path, and a rerun with the same path resumes —
	// re-verifying the interrupted stripe's committed chunks against the
	// journaled payload CRCs and the GF(2) oracle before continuing. The
	// journal is removed on clean completion. Incompatible with
	// CheckOnly and DryRun, which perform no repairs to journal.
	JournalPath string

	// Stop, when non-nil, requests graceful shutdown: once the channel
	// is closed the service finishes the chunk repair in flight, syncs
	// the journal, and returns with Interrupted set instead of an error.
	Stop <-chan struct{}

	// Progress, when non-nil, is called after every repaired stripe —
	// the hook fbfctl turns into mdadm-style percent-complete lines.
	Progress func(Progress)

	// Metrics, when non-nil, receives live wall-clock telemetry as the
	// repair advances (scrapeable mid-run); nil runs take no extra work.
	Metrics *telemetry.RebuildMetrics
}

// Progress reports how far a rebuild has advanced.
type Progress struct {
	Stripe        int // stripe just repaired
	StripesTotal  int // damaged stripes to repair
	StripesDone   int
	ChunksRebuilt int
}

// Percent returns completion as 0–100.
func (p Progress) Percent() int {
	if p.StripesTotal == 0 {
		return 100
	}
	return 100 * p.StripesDone / p.StripesTotal
}

func (c *ServiceConfig) defaults() {
	if c.Policy == "" {
		c.Policy = "fbf"
	}
	if c.CacheChunks == 0 {
		c.CacheChunks = 64
	}
	if c.Priority == "" {
		c.Priority = PrioritySequential
	}
}

func (c *ServiceConfig) validate() error {
	if c.Backend == nil {
		return &ConfigError{Field: "Backend", Reason: "nil backend"}
	}
	if err := c.Manifest.Validate(); err != nil {
		return err
	}
	if _, err := cache.New(c.Policy, 0); err != nil {
		return err
	}
	if c.CheckOnly && c.DryRun {
		return &ConfigError{Field: "CheckOnly", Reason: "check-only and dry-run are mutually exclusive"}
	}
	if c.JournalPath != "" && (c.CheckOnly || c.DryRun) {
		return &ConfigError{Field: "JournalPath", Reason: "journaling applies only to executing rebuilds (not check-only or dry-run)"}
	}
	switch c.Priority {
	case PrioritySequential, PriorityVulnerable:
	default:
		return &ConfigError{Field: "Priority", Reason: fmt.Sprintf("unknown priority %q (have %s)", c.Priority, strings.Join(Priorities(), ", "))}
	}
	return nil
}

// ResolveCode constructs the manifest's erasure code and checks the
// manifest dimensions against the code geometry, so a store initialized
// under one prime cannot be silently rebuilt under another.
func ResolveCode(m store.ArrayManifest) (*codes.Code, error) {
	code, err := codes.New(m.Code, m.P)
	if err != nil {
		return nil, err
	}
	if code.Disks() != m.Disks || code.Rows() != m.Rows {
		return nil, fmt.Errorf("rebuild: manifest says %dx%d (disks x rows), %v has %dx%d",
			m.Disks, m.Rows, code, code.Disks(), code.Rows())
	}
	return code, nil
}

// AddrOf maps a stripe-local cell to its store address: the cell's
// column is the disk, its row the chunk slot.
func AddrOf(stripe int, cell grid.Coord) store.Addr {
	return store.Addr{Disk: cell.Col, Stripe: stripe, Chunk: cell.Row}
}

// StripeSeed derives the data seed of one stripe from the store's base
// seed — the convention InitStore writes with and tests recompute
// ground truth from.
func StripeSeed(base int64, stripe int) int64 { return base + int64(stripe) }

// InitStore materializes a full, clean array into a backend: every
// stripe's data chunks are filled deterministically from seed, parity
// is encoded, and all chunks are written. The chunk buffers are pooled
// and flow straight into the backend's file/object I/O.
func InitStore(b store.Backend, m store.ArrayManifest, seed int64) error {
	code, err := ResolveCode(m)
	if err != nil {
		return err
	}
	pool := chunk.NewPool(m.ChunkSize)
	stripeBuf := make([]chunk.Chunk, code.Layout().Cells())
	for i := range stripeBuf {
		stripeBuf[i] = pool.GetRaw()
	}
	defer func() {
		for _, c := range stripeBuf {
			pool.Put(c)
		}
	}()
	for s := 0; s < m.Stripes; s++ {
		code.MaterializeStripeInto(stripeBuf, StripeSeed(seed, s))
		for idx, c := range stripeBuf {
			if err := b.WriteChunk(AddrOf(s, code.CoordOf(idx)), c); err != nil {
				return err
			}
		}
	}
	return nil
}

// StripeDamage lists one stripe's unreadable cells.
type StripeDamage struct {
	Stripe  int
	Missing []grid.Coord // absent chunks, sorted
	Corrupt []grid.Coord // present but failing validation, sorted
}

// Lost merges missing and corrupt cells in sorted order.
func (d *StripeDamage) Lost() []grid.Coord {
	out := make([]grid.Coord, 0, len(d.Missing)+len(d.Corrupt))
	out = append(out, d.Missing...)
	out = append(out, d.Corrupt...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// DamageReport is the outcome of a store scan.
type DamageReport struct {
	Stripes []StripeDamage // damaged stripes, ascending index

	MissingChunks int
	CorruptChunks int

	// PerDiskPresent counts readable chunks per disk; FailedDisks lists
	// disks with nothing present at all (the killed-directory state).
	PerDiskPresent []int
	FailedDisks    []int

	// ExtraChunks are addresses present in the store but outside the
	// manifest geometry — reported, never touched.
	ExtraChunks []store.Addr
}

// Clean reports an undamaged store.
func (r *DamageReport) Clean() bool { return r.MissingChunks == 0 && r.CorruptChunks == 0 }

// LostChunks returns the total unreadable chunks.
func (r *DamageReport) LostChunks() int { return r.MissingChunks + r.CorruptChunks }

// ScanStore assesses a store against its manifest: every in-geometry
// address is checked for presence and validity (Stat's header check by
// default; full payload CRC reads with scrub) and grouped into
// per-stripe damage.
func ScanStore(b store.Backend, m store.ArrayManifest, scrub bool) (*DamageReport, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	report := &DamageReport{PerDiskPresent: make([]int, m.Disks)}
	perStripe := make(map[int]*StripeDamage)
	damage := func(stripe int, cell grid.Coord, corrupt bool) {
		d := perStripe[stripe]
		if d == nil {
			d = &StripeDamage{Stripe: stripe}
			perStripe[stripe] = d
		}
		if corrupt {
			d.Corrupt = append(d.Corrupt, cell)
			report.CorruptChunks++
		} else {
			d.Missing = append(d.Missing, cell)
			report.MissingChunks++
		}
	}
	var buf chunk.Chunk
	if scrub {
		buf = chunk.New(m.ChunkSize)
	}
	for disk := 0; disk < m.Disks; disk++ {
		addrs, err := b.List(disk)
		if err != nil {
			return nil, err
		}
		present := make(map[store.Addr]bool, len(addrs))
		for _, a := range addrs {
			if a.Stripe >= m.Stripes || a.Chunk >= m.Rows {
				report.ExtraChunks = append(report.ExtraChunks, a)
				continue
			}
			present[a] = true
		}
		for stripe := 0; stripe < m.Stripes; stripe++ {
			for row := 0; row < m.Rows; row++ {
				cell := grid.Coord{Row: row, Col: disk}
				a := AddrOf(stripe, cell)
				if !present[a] {
					damage(stripe, cell, false)
					continue
				}
				var err error
				var size int
				if scrub {
					size, err = b.ReadChunk(a, buf)
				} else {
					var info store.Info
					info, err = b.Stat(a)
					size = info.Size
				}
				switch {
				case store.IsCorrupt(err):
					damage(stripe, cell, true)
				case store.IsNotFound(err):
					damage(stripe, cell, false)
				case err != nil:
					return nil, err
				case size != m.ChunkSize:
					// Valid codec, wrong array: a chunk of another
					// store's geometry cannot serve reads here.
					damage(stripe, cell, true)
				default:
					report.PerDiskPresent[disk]++
				}
			}
		}
		if report.PerDiskPresent[disk] == 0 && m.Stripes*m.Rows > 0 {
			report.FailedDisks = append(report.FailedDisks, disk)
		}
	}
	for _, d := range perStripe {
		sort.Slice(d.Missing, func(i, j int) bool { return d.Missing[i].Less(d.Missing[j]) })
		sort.Slice(d.Corrupt, func(i, j int) bool { return d.Corrupt[i].Less(d.Corrupt[j]) })
		report.Stripes = append(report.Stripes, *d)
	}
	sort.Slice(report.Stripes, func(i, j int) bool { return report.Stripes[i].Stripe < report.Stripes[j].Stripe })
	sort.Slice(report.ExtraChunks, func(i, j int) bool { return report.ExtraChunks[i].Less(report.ExtraChunks[j]) })
	return report, nil
}

// ServiceResult aggregates one service run.
type ServiceResult struct {
	Report *DamageReport

	StripesRepaired int
	ChunksRebuilt   int
	ChunksVerified  int // oracle cross-checks that passed
	ChunksDecoded   int // rebuilt via the GF(2) decoder fallback rather than a single chain

	// Planned work (populated by DryRun instead of the executed
	// counters above).
	PlannedChunks int // chunks a rebuild would write
	PlannedReads  int // distinct source chunks it would read

	DiskReads   uint64 // backend payload reads during repair
	VerifyReads uint64 // extra backend reads by the oracle cross-check
	CacheHits   uint64
	CacheMisses uint64

	Escalations   int // surviving chunks found unreadable mid-chain
	Regenerations int // schemes regenerated after an escalation

	// Data loss: cells even the decoder could not solve.
	DataLoss bool
	Lost     []store.Addr

	BytesWritten int64

	// Crash-safety accounting (journaled runs only).
	Interrupted    bool  // a Stop request ended the run early; the journal is kept
	JournalOffset  int64 // journal append offset at exit (zero once the journal is removed)
	ResumedCommits int   // chunk commits replayed from a prior run's journal
	ResumeVerified int   // replayed commits that re-passed the CRC and oracle checks
}

// RunService scans the store and repairs every damaged stripe through
// the scheme/cache/escalation machinery, byte-checking recovered chunks
// against the GF(2) oracle before writing them back. CheckOnly stops
// after the scan; DryRun stops after planning. Unsolvable cells are
// accounted as data loss, not an error — errors mean the engine itself
// could not proceed (I/O failures, bad configuration).
func RunService(cfg ServiceConfig) (*ServiceResult, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	code, err := ResolveCode(cfg.Manifest)
	if err != nil {
		return nil, err
	}
	var jn *Journal
	var jstate *JournalState
	if cfg.JournalPath != "" {
		jn, jstate, err = OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		if jstate.Complete {
			// The journal records a finished rebuild (a crash landed
			// between its done record and its removal); this run is a
			// new damage episode, not a resume.
			if err := jn.Reset(); err != nil {
				jn.Close()
				return nil, err
			}
			jstate = &JournalState{Plans: map[int][]grid.Coord{}, Commits: map[store.Addr]uint32{}, Done: map[int]bool{}}
		}
		if sc := jstate.Scan; sc != nil {
			m := cfg.Manifest
			if sc.Disks != m.Disks || sc.Rows != m.Rows || sc.Stripes != m.Stripes || sc.ChunkSize != m.ChunkSize {
				jn.Close()
				return nil, fmt.Errorf("rebuild: journal %s was written for a %dx%d array of %d stripes (chunk %d bytes); manifest says %dx%d, %d stripes (chunk %d bytes)",
					cfg.JournalPath, sc.Disks, sc.Rows, sc.Stripes, sc.ChunkSize, m.Disks, m.Rows, m.Stripes, m.ChunkSize)
			}
		}
	}
	report, err := ScanStore(cfg.Backend, cfg.Manifest, cfg.Scrub)
	if err != nil {
		if jn != nil {
			jn.Close()
		}
		return nil, err
	}
	res := &ServiceResult{Report: report}
	if m := cfg.Metrics; m != nil {
		m.ScanMissing.Set(float64(report.MissingChunks))
		m.ScanCorrupt.Set(float64(report.CorruptChunks))
	}
	if cfg.CheckOnly {
		return res, nil
	}
	if report.Clean() && (jn == nil || len(jstate.InFlight()) == 0) {
		// Nothing to repair and nothing in flight to re-verify. A
		// leftover journal here recorded repairs that all landed; drop
		// it so the store tree matches a never-damaged one.
		if jn != nil {
			if err := jn.Remove(); err != nil {
				return nil, err
			}
		}
		return res, nil
	}

	s := &service{cfg: &cfg, code: code, res: res, pool: chunk.NewPool(cfg.Manifest.ChunkSize), journal: jn}
	if cfg.CacheChunks > 0 {
		s.policy, err = cache.New(cfg.Policy, cfg.CacheChunks)
		if err != nil {
			if jn != nil {
				jn.Close()
			}
			return nil, err
		}
		s.bufs = make(map[cache.ChunkID]chunk.Chunk, cfg.CacheChunks)
	}

	err = s.execute(jstate)
	if s.policy != nil {
		st := s.policy.Stats()
		res.CacheHits, res.CacheMisses = st.Hits, st.Misses
	}
	res.DataLoss = len(res.Lost) > 0
	if m := cfg.Metrics; m != nil {
		m.DataLossChunks.Set(float64(len(res.Lost)))
	}
	if jn != nil {
		res.JournalOffset = jn.Offset()
		if err != nil || res.Interrupted {
			// Keep the journal: sync what we know so the next run
			// resumes from it. The sync error (if any) must not shadow
			// the run's own outcome.
			if serr := jn.Sync(); serr != nil && err == nil {
				err = serr
			}
			jn.Close()
		} else {
			// Clean completion: mark done, then remove — the done
			// record covers a crash inside this window.
			if m := cfg.Metrics; m != nil {
				m.JournalRecords.Inc()
			}
			ferr := jn.AppendDone()
			if ferr == nil {
				ferr = jn.Sync()
			}
			if ferr == nil {
				ferr = jn.Remove()
				res.JournalOffset = 0
			} else {
				jn.Close()
			}
			if ferr != nil {
				return nil, ferr
			}
		}
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// execute runs the repair pass: resume verification of journaled
// commits, stripe ordering, and the repair loop with graceful-stop
// checks between stripes.
func (s *service) execute(jstate *JournalState) error {
	cfg, res, report := s.cfg, s.res, s.res.Report
	if s.journal != nil {
		res.ResumedCommits = len(jstate.Commits)
		if mt := cfg.Metrics; mt != nil {
			mt.ResumedCommits.Add(uint64(res.ResumedCommits))
		}
		if err := s.verifyResumed(jstate); err != nil {
			return err
		}
		m := cfg.Manifest
		if err := s.journal.AppendScan(JournalScan{
			Disks: m.Disks, Rows: m.Rows, Stripes: m.Stripes, ChunkSize: m.ChunkSize,
			Missing: report.MissingChunks, Corrupt: report.CorruptChunks,
			DamagedStripes: len(report.Stripes),
		}); err != nil {
			return err
		}
		if mt := cfg.Metrics; mt != nil {
			mt.JournalRecords.Inc()
		}
		if err := s.journal.Sync(); err != nil {
			return err
		}
	}
	order := append([]StripeDamage(nil), report.Stripes...)
	if cfg.Priority == PriorityVulnerable {
		sort.SliceStable(order, func(i, j int) bool {
			li, lj := len(order[i].Missing)+len(order[i].Corrupt), len(order[j].Missing)+len(order[j].Corrupt)
			if li != lj {
				return li > lj
			}
			return order[i].Stripe < order[j].Stripe
		})
	}
	if mt := cfg.Metrics; mt != nil {
		mt.StripesPlanned.Add(uint64(len(order)))
	}
	for _, d := range order {
		if s.stopRequested() {
			res.Interrupted = true
		}
		if res.Interrupted {
			break
		}
		if err := s.repairStripe(d); err != nil {
			return err
		}
		if res.Interrupted {
			// The stop landed mid-stripe: the chunk in flight was
			// finished and committed, but the stripe was not.
			break
		}
		res.StripesRepaired++
		if mt := cfg.Metrics; mt != nil {
			mt.StripesDone.Inc()
			mt.Percent.Set(float64(Progress{StripesTotal: len(order), StripesDone: res.StripesRepaired}.Percent()))
		}
		if cfg.Progress != nil {
			cfg.Progress(Progress{Stripe: d.Stripe, StripesTotal: len(order), StripesDone: res.StripesRepaired, ChunksRebuilt: res.ChunksRebuilt})
		}
	}
	return nil
}

// stopRequested polls the graceful-shutdown channel.
func (s *service) stopRequested() bool {
	if s.cfg.Stop == nil {
		return false
	}
	select {
	case <-s.cfg.Stop:
		return true
	default:
		return false
	}
}

// verifyResumed re-checks every chunk a prior run journaled as
// committed in a stripe it never finished: the payload must match the
// journaled CRC and (when the journaled lost set makes the cell
// solvable) re-derive identically through the GF(2) oracle. A chunk
// that fails either check is flagged as corrupt damage so the repair
// loop rebuilds it; a chunk the fresh scan already flagged needs no
// second opinion.
func (s *service) verifyResumed(st *JournalState) error {
	m := s.cfg.Manifest
	buf := s.pool.GetRaw()
	defer s.pool.Put(buf)
	for _, stripe := range st.InFlight() {
		lost := st.Plans[stripe]
		var cells []grid.Coord
		for a := range st.Commits {
			if a.Stripe == stripe {
				cells = append(cells, grid.Coord{Row: a.Chunk, Col: a.Disk})
			}
		}
		if len(cells) == 0 {
			continue
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].Less(cells[j]) })
		oracle, err := verify.NewOracle(s.code, lost)
		if err != nil {
			return err
		}
		for _, cell := range cells {
			a := AddrOf(stripe, cell)
			n, err := s.cfg.Backend.ReadChunk(a, buf)
			switch {
			case store.IsNotFound(err) || store.IsCorrupt(err):
				// The fresh scan already re-flagged this one.
				continue
			case err != nil:
				return err
			case n != m.ChunkSize || PayloadCRC(buf[:n]) != st.Commits[a]:
				s.flagResumedCorrupt(stripe, cell)
				continue
			}
			if oracle.Solvable(cell) {
				var readErr error
				err := oracle.Check(cell, buf, func(src grid.Coord, dst chunk.Chunk) error {
					rn, rerr := s.cfg.Backend.ReadChunk(AddrOf(stripe, src), dst)
					if rerr != nil {
						readErr = rerr
						return rerr
					}
					if rn != len(dst) {
						rerr = fmt.Errorf("rebuild: resume oracle read %v: %d bytes, want %d", src, rn, len(dst))
						readErr = rerr
						return rerr
					}
					s.res.VerifyReads++
					if mt := s.cfg.Metrics; mt != nil {
						mt.VerifyReads.Inc()
					}
					return nil
				})
				switch {
				case err == nil:
				case readErr != nil && (store.IsNotFound(readErr) || store.IsCorrupt(readErr)):
					// A source the oracle needs is itself damaged; the
					// CRC match stands and repairing the stripe's fresh
					// damage is what restores full verifiability.
					continue
				case readErr != nil:
					return err
				default:
					// Structurally valid bytes that do not re-derive:
					// the commit lied (tampering, silent corruption).
					s.flagResumedCorrupt(stripe, cell)
					continue
				}
			}
			s.res.ResumeVerified++
			if mt := s.cfg.Metrics; mt != nil {
				mt.ResumedVerified.Inc()
			}
		}
	}
	return nil
}

// flagResumedCorrupt folds a failed resume verification into the damage
// report, so the repair loop treats the chunk like any other corrupt
// cell.
func (s *service) flagResumedCorrupt(stripe int, cell grid.Coord) {
	report := s.res.Report
	var d *StripeDamage
	for i := range report.Stripes {
		if report.Stripes[i].Stripe == stripe {
			d = &report.Stripes[i]
			break
		}
	}
	if d == nil {
		report.Stripes = append(report.Stripes, StripeDamage{Stripe: stripe})
		sort.Slice(report.Stripes, func(i, j int) bool { return report.Stripes[i].Stripe < report.Stripes[j].Stripe })
		for i := range report.Stripes {
			if report.Stripes[i].Stripe == stripe {
				d = &report.Stripes[i]
				break
			}
		}
	}
	for _, have := range d.Corrupt {
		if have == cell {
			return
		}
	}
	d.Corrupt = mergeCell(d.Corrupt, cell)
	report.CorruptChunks++
	if mt := s.cfg.Metrics; mt != nil {
		mt.ResumedCorrupt.Inc()
		mt.ScanCorrupt.Set(float64(report.CorruptChunks))
	}
}

// service is the run state of one RunService call.
type service struct {
	cfg  *ServiceConfig
	code *codes.Code
	res  *ServiceResult
	pool *chunk.Pool

	// Byte cache: the policy decides residency (with FBF priorities
	// from each scheme), bufs mirrors its resident set with the actual
	// bytes. nil policy disables caching.
	policy cache.Policy
	bufs   map[cache.ChunkID]chunk.Chunk

	// Scheme and oracle memoization: killed whole disks damage every
	// stripe with the same cell pattern, so the (expensive) chain
	// selection and decoder elimination are shared across stripes.
	schemes map[string]*schemePlan

	// journal is the write-ahead rebuild journal, nil for unjournaled
	// runs (the default path stays byte-identical to prior releases).
	journal *Journal
}

// schemePlan caches one lost-cell pattern's generated scheme, its
// unsolvable cells, and the matching oracle.
type schemePlan struct {
	scheme   *core.Scheme
	unsolved []grid.Coord
	oracle   *verify.Oracle
}

func lostKey(lost []grid.Coord) string {
	var b strings.Builder
	for _, c := range lost {
		fmt.Fprintf(&b, "%d,%d;", c.Row, c.Col)
	}
	return b.String()
}

// planFor generates (or recalls) the recovery scheme for one sorted
// lost-cell pattern. The synthetic PartialStripeError only carries
// stripe/cell bookkeeping into the Scheme; RegenerateScheme does not
// re-validate it, which is exactly what lets the service repair
// multi-disk and whole-column damage a plain partial-stripe error
// cannot describe.
func (s *service) planFor(stripe int, lost []grid.Coord) (*schemePlan, error) {
	key := lostKey(lost)
	if p, ok := s.schemes[key]; ok {
		return p, nil
	}
	e := core.PartialStripeError{Stripe: stripe, Disk: lost[0].Col, Row: lost[0].Row, Size: len(lost)}
	scheme, unsolved, err := core.RegenerateScheme(s.code, e, lost, nil, s.cfg.Strategy)
	if err != nil {
		return nil, err
	}
	oracle, err := verify.NewOracle(s.code, lost)
	if err != nil {
		return nil, err
	}
	p := &schemePlan{scheme: scheme, unsolved: unsolved, oracle: oracle}
	if s.schemes == nil {
		s.schemes = make(map[string]*schemePlan)
	}
	s.schemes[key] = p
	return p, nil
}

// repairStripe rebuilds one damaged stripe: plan, replay each selected
// chain through the byte cache, oracle-check, write back — escalating
// and re-planning when a surviving chunk turns out unreadable, exactly
// like the simulator's fault ladder.
func (s *service) repairStripe(d StripeDamage) error {
	lost := d.Lost()
	plan, err := s.planFor(d.Stripe, lost)
	if err != nil {
		return err
	}
	if s.cfg.DryRun {
		s.res.PlannedChunks += len(plan.scheme.Selected)
		s.res.PlannedReads += plan.scheme.UniqueFetches()
		for _, c := range plan.unsolved {
			s.loseCell(d.Stripe, c)
		}
		return nil
	}
	for _, c := range plan.unsolved {
		s.loseCell(d.Stripe, c)
	}
	if s.journal != nil {
		if err := s.journal.AppendPlan(d.Stripe, lost); err != nil {
			return err
		}
		if mt := s.cfg.Metrics; mt != nil {
			mt.JournalRecords.Inc()
		}
	}

	scheme, oracle := plan.scheme, plan.oracle
	if pa, ok := s.policy.(cache.PriorityAware); ok && s.policy != nil {
		pa.SetPriorities(prioritiesFor(scheme, d.Stripe))
	}
	if fa, ok := s.policy.(cache.FutureAware); ok && s.policy != nil {
		fa.SetFuture(requestsFor(scheme, d.Stripe))
	}

	repaired := make(map[grid.Coord]bool)
	acc := s.pool.GetRaw()
	defer s.pool.Put(acc)
	// The escalation loop: a failed source read escalates that cell to
	// lost and regenerates the plan for whatever is still unrepaired.
	// Every escalation strictly grows the lost set, so the loop is
	// bounded by the stripe's cell count.
	for attempt := 0; attempt <= s.code.Layout().Cells(); attempt++ {
		esc, err := s.replayChains(d.Stripe, scheme, oracle, repaired, acc)
		if err != nil {
			return err
		}
		if esc == nil {
			if s.res.Interrupted {
				// A stop landed mid-stripe: the in-flight chunk was
				// finished, but the stripe was not — no done record, so
				// the next run resumes right here.
				return nil
			}
			if s.journal != nil {
				if err := s.journal.AppendStripeDone(d.Stripe); err != nil {
					return err
				}
				if mt := s.cfg.Metrics; mt != nil {
					mt.JournalRecords.Inc()
				}
				if err := s.journal.Sync(); err != nil {
					return err
				}
			}
			return nil
		}
		// Escalate: the cell joins the lost set; regenerate for the
		// cells still needing repair (unsolved ones are lost).
		s.res.Escalations++
		if mt := s.cfg.Metrics; mt != nil {
			mt.Escalations.Inc()
		}
		if inv, ok := s.policy.(cache.Invalidator); ok && s.policy != nil {
			if id := (cache.ChunkID{Stripe: d.Stripe, Cell: *esc}); inv.Invalidate(id) {
				s.dropBuf(id)
			}
		}
		lost = mergeCell(lost, *esc)
		var remaining []grid.Coord
		for _, c := range lost {
			if !repaired[c] {
				remaining = append(remaining, c)
			}
		}
		plan, err = s.planFor(d.Stripe, remaining)
		if err != nil {
			return err
		}
		if s.journal != nil {
			// Journal the cumulative lost set (not just the remaining
			// cells): resume verification derives its oracle from this
			// record, and the full set is what keeps already-repaired
			// cells solvable while never reading a lost source.
			if err := s.journal.AppendPlan(d.Stripe, lost); err != nil {
				return err
			}
			if mt := s.cfg.Metrics; mt != nil {
				mt.JournalRecords.Inc()
			}
		}
		s.res.Regenerations++
		if mt := s.cfg.Metrics; mt != nil {
			mt.Regenerations.Inc()
		}
		scheme, oracle = plan.scheme, plan.oracle
		for _, c := range plan.unsolved {
			s.loseCell(d.Stripe, c)
		}
	}
	return fmt.Errorf("rebuild: stripe %d: escalation loop did not terminate", d.Stripe)
}

// replayChains executes the scheme's selected chains in order. It
// returns a non-nil cell when a source read failed and the caller must
// escalate, nil when the stripe's solvable cells are all repaired.
func (s *service) replayChains(stripe int, scheme *core.Scheme, oracle *verify.Oracle, repaired map[grid.Coord]bool, acc chunk.Chunk) (*grid.Coord, error) {
	lostSet := make(map[grid.Coord]bool)
	for _, a := range s.res.Lost {
		if a.Stripe == stripe {
			lostSet[grid.Coord{Row: a.Chunk, Col: a.Disk}] = true
		}
	}
	for _, sel := range scheme.Selected {
		if s.stopRequested() {
			// Graceful stop between chunk repairs: everything committed
			// so far is journaled; the caller keeps the journal.
			s.res.Interrupted = true
			return nil, nil
		}
		if repaired[sel.Lost] || lostSet[sel.Lost] {
			continue
		}
		if len(sel.Fetch) == 0 {
			clear(acc)
		}
		for i, cell := range sel.Fetch {
			err := s.fetchInto(stripe, cell, acc, i == 0)
			if err == nil {
				continue
			}
			if store.IsNotFound(err) || store.IsCorrupt(err) {
				// A chunk the scan believed healthy is unreadable —
				// the real-bytes analogue of a URE mid-rebuild.
				cell := cell
				return &cell, nil
			}
			return nil, err
		}
		if !s.cfg.NoVerify {
			if err := s.oracleCheck(stripe, oracle, sel.Lost, acc); err != nil {
				return nil, err
			}
			s.res.ChunksVerified++
			if mt := s.cfg.Metrics; mt != nil {
				mt.ChunksVerified.Inc()
			}
		}
		if err := s.cfg.Backend.WriteChunk(AddrOf(stripe, sel.Lost), acc); err != nil {
			return nil, err
		}
		if s.journal != nil {
			if err := s.journal.AppendCommit(AddrOf(stripe, sel.Lost), PayloadCRC(acc)); err != nil {
				return nil, err
			}
			if mt := s.cfg.Metrics; mt != nil {
				mt.JournalRecords.Inc()
			}
		}
		s.res.BytesWritten += int64(len(acc))
		s.res.ChunksRebuilt++
		if mt := s.cfg.Metrics; mt != nil {
			mt.BytesWritten.Add(uint64(len(acc)))
			mt.ChunksRebuilt.Inc()
			if sel.Decoded {
				mt.ChunksDecoded.Inc()
			}
		}
		if sel.Decoded {
			s.res.ChunksDecoded++
		}
		repaired[sel.Lost] = true
	}
	return nil, nil
}

// oracleCheck re-derives the recovered cell through the GF(2) decoder
// plan, reading every source chunk directly from the backend (not the
// cache), and diffs the two reconstructions.
func (s *service) oracleCheck(stripe int, oracle *verify.Oracle, cell grid.Coord, recovered chunk.Chunk) error {
	buf := s.pool.GetRaw()
	defer s.pool.Put(buf)
	return oracle.Check(cell, recovered, func(src grid.Coord, dst chunk.Chunk) error {
		n, err := s.cfg.Backend.ReadChunk(AddrOf(stripe, src), dst)
		if err != nil {
			return err
		}
		if n != len(dst) {
			return fmt.Errorf("rebuild: oracle read %v: %d bytes, want %d", src, n, len(dst))
		}
		s.res.VerifyReads++
		if mt := s.cfg.Metrics; mt != nil {
			mt.VerifyReads.Inc()
		}
		return nil
	})
}

// fetchInto reads one source cell's bytes — from the byte cache on a
// hit, from the backend on a miss — and folds them into the XOR
// accumulator (copy for the chain's first member, XOR for the rest).
// Miss fetches use pooled buffers that flow directly into backend I/O;
// a buffer is kept only while the policy keeps the chunk resident.
func (s *service) fetchInto(stripe int, cell grid.Coord, acc chunk.Chunk, first bool) error {
	id := cache.ChunkID{Stripe: stripe, Cell: cell}
	if s.policy != nil && s.policy.Request(id) {
		if buf, ok := s.bufs[id]; ok {
			if mt := s.cfg.Metrics; mt != nil {
				mt.CacheHits.Inc()
			}
			fold(acc, buf, first)
			return nil
		}
		// Residency without bytes would be a bookkeeping bug; fail
		// loudly rather than reading stale data.
		return fmt.Errorf("rebuild: cache hit for %v with no buffered bytes", id)
	}
	if s.policy != nil {
		if mt := s.cfg.Metrics; mt != nil {
			mt.CacheMisses.Inc()
		}
	}
	buf := s.pool.GetRaw()
	n, err := s.cfg.Backend.ReadChunk(AddrOf(stripe, cell), buf)
	if err != nil {
		s.pool.Put(buf)
		return err
	}
	if n != s.cfg.Manifest.ChunkSize {
		s.pool.Put(buf)
		return &store.CorruptError{Addr: AddrOf(stripe, cell), Err: fmt.Errorf("payload is %d bytes, manifest says %d", n, s.cfg.Manifest.ChunkSize)}
	}
	s.res.DiskReads++
	if mt := s.cfg.Metrics; mt != nil {
		mt.DiskReads.Inc()
	}
	fold(acc, buf, first)
	if s.policy != nil && s.policy.Contains(id) {
		s.bufs[id] = buf
		s.reconcile()
	} else {
		s.pool.Put(buf)
	}
	return nil
}

// reconcile drops buffered bytes for chunks the policy has evicted,
// returning their buffers to the pool. O(resident), called per
// admission — the byte map exactly mirrors policy residency.
func (s *service) reconcile() {
	for id, buf := range s.bufs {
		if !s.policy.Contains(id) {
			s.pool.Put(buf)
			delete(s.bufs, id)
		}
	}
}

func (s *service) dropBuf(id cache.ChunkID) {
	if buf, ok := s.bufs[id]; ok {
		s.pool.Put(buf)
		delete(s.bufs, id)
	}
}

func (s *service) loseCell(stripe int, c grid.Coord) {
	a := AddrOf(stripe, c)
	for _, have := range s.res.Lost {
		if have == a {
			return
		}
	}
	s.res.Lost = append(s.res.Lost, a)
}

func fold(acc, src chunk.Chunk, first bool) {
	if first {
		copy(acc, src)
		return
	}
	chunk.XORInto(acc, src)
}

func mergeCell(lost []grid.Coord, c grid.Coord) []grid.Coord {
	for _, have := range lost {
		if have == c {
			return lost
		}
	}
	lost = append(lost, c)
	sort.Slice(lost, func(i, j int) bool { return lost[i].Less(lost[j]) })
	return lost
}

func prioritiesFor(scheme *core.Scheme, stripe int) map[cache.ChunkID]int {
	out := make(map[cache.ChunkID]int, len(scheme.Priorities))
	for cell, pr := range scheme.Priorities {
		out[cache.ChunkID{Stripe: stripe, Cell: cell}] = pr
	}
	return out
}

func requestsFor(scheme *core.Scheme, stripe int) []cache.ChunkID {
	reqs := scheme.Requests()
	out := make([]cache.ChunkID, len(reqs))
	for i, r := range reqs {
		out[i] = cache.ChunkID{Stripe: stripe, Cell: r}
	}
	return out
}
