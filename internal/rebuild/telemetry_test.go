package rebuild

import (
	"bytes"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"fbf/internal/sim"
	"fbf/internal/telemetry"
)

// scrapeValue renders the registry's Prometheus exposition and returns
// the value of an unlabeled series, the way a scraper would see it.
func scrapeValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parse %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not in exposition:\n%s", name, buf.String())
	return 0
}

// TestServiceMetricsMatchResult runs an instrumented rebuild and checks
// every telemetry cell against the ServiceResult ground truth, plus the
// live-scrape contract: fbf_rebuild_stripes_done must grow monotonically
// while the run is in flight.
func TestServiceMetricsMatchResult(t *testing.T) {
	m := testManifest("star", 5, 4, 96)
	b := initMem(t, m, 42)
	killDisk(t, b, 1)

	reg := telemetry.NewRegistry()
	rm := telemetry.NewRebuildMetrics(reg)

	var doneSeen []float64
	res, err := RunService(ServiceConfig{
		Backend:     b,
		Manifest:    m,
		JournalPath: filepath.Join(t.TempDir(), "rebuild.journal"),
		Metrics:     rm,
		Progress: func(p Progress) {
			// Scrape mid-run, exactly as the daemon's HTTP endpoint would.
			doneSeen = append(doneSeen, scrapeValue(t, reg, "fbf_rebuild_stripes_done"))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstGroundTruth(t, b, m, 42)

	if len(doneSeen) != res.StripesRepaired {
		t.Fatalf("progress hook fired %d times, want %d", len(doneSeen), res.StripesRepaired)
	}
	for i, v := range doneSeen {
		if v != float64(i+1) {
			t.Fatalf("mid-run scrape %d saw stripes_done=%v, want %d (monotone, one per stripe)", i, v, i+1)
		}
	}

	counters := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"stripes_planned", rm.StripesPlanned.Value(), uint64(res.StripesRepaired)},
		{"stripes_done", rm.StripesDone.Value(), uint64(res.StripesRepaired)},
		{"chunks_rebuilt", rm.ChunksRebuilt.Value(), uint64(res.ChunksRebuilt)},
		{"chunks_verified", rm.ChunksVerified.Value(), uint64(res.ChunksVerified)},
		{"chunks_decoded", rm.ChunksDecoded.Value(), uint64(res.ChunksDecoded)},
		{"disk_reads", rm.DiskReads.Value(), res.DiskReads},
		{"verify_reads", rm.VerifyReads.Value(), res.VerifyReads},
		{"cache_hits", rm.CacheHits.Value(), res.CacheHits},
		{"cache_misses", rm.CacheMisses.Value(), res.CacheMisses},
		{"bytes_written", rm.BytesWritten.Value(), uint64(res.BytesWritten)},
		{"escalations", rm.Escalations.Value(), uint64(res.Escalations)},
		{"regenerations", rm.Regenerations.Value(), uint64(res.Regenerations)},
		{"resumed_commits", rm.ResumedCommits.Value(), uint64(res.ResumedCommits)},
		{"resumed_verified", rm.ResumedVerified.Value(), uint64(res.ResumeVerified)},
	}
	for _, c := range counters {
		if c.got != c.want {
			t.Errorf("metric %s = %d, ServiceResult says %d", c.name, c.got, c.want)
		}
	}
	if res.ChunksRebuilt == 0 || res.DiskReads == 0 {
		t.Fatalf("degenerate run (rebuilt=%d reads=%d): counters not exercised", res.ChunksRebuilt, res.DiskReads)
	}
	// One journal record per scan, per stripe plan, and per chunk commit
	// at minimum; an escalation-free run appends exactly those.
	if wantMin := uint64(1 + res.StripesRepaired + res.ChunksRebuilt); rm.JournalRecords.Value() < wantMin {
		t.Errorf("journal_records = %d, want at least %d (scan + plans + commits)", rm.JournalRecords.Value(), wantMin)
	}
	if got := rm.ScanMissing.Value(); got != float64(res.Report.MissingChunks) {
		t.Errorf("scan_missing gauge = %v, report found %d", got, res.Report.MissingChunks)
	}
	if got := rm.Percent.Value(); got != 100 {
		t.Errorf("progress_percent gauge = %v after a complete run, want 100", got)
	}
	if got := rm.DataLossChunks.Value(); got != 0 {
		t.Errorf("data_loss_chunks gauge = %v on a solvable run", got)
	}
}

// TestServiceMetricsNilIsNoop pins the zero-overhead contract: a run
// without Metrics behaves identically (same result) as an instrumented
// one over the same damage.
func TestServiceMetricsNilIsNoop(t *testing.T) {
	run := func(rm *telemetry.RebuildMetrics) *ServiceResult {
		m := testManifest("tip", 5, 3, 64)
		b := initMem(t, m, 42)
		killDisk(t, b, 2)
		res, err := RunService(ServiceConfig{Backend: b, Manifest: m, Metrics: rm})
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstGroundTruth(t, b, m, 42)
		return res
	}
	bare := run(nil)
	instr := run(telemetry.NewRebuildMetrics(telemetry.NewRegistry()))
	if bare.ChunksRebuilt != instr.ChunksRebuilt || bare.DiskReads != instr.DiskReads ||
		bare.StripesRepaired != instr.StripesRepaired || bare.BytesWritten != instr.BytesWritten {
		t.Fatalf("instrumented run diverged: bare=%+v instrumented=%+v", bare, instr)
	}
}

// TestDaemonMetrics drives the watch loop with telemetry armed and
// checks the pass counters and the progress tracker's terminal state.
func TestDaemonMetrics(t *testing.T) {
	m := testManifest("star", 5, 2, 64)
	b := initMem(t, m, resumeSeed)
	killDisk(t, b, 1)

	reg := telemetry.NewRegistry()
	dm := telemetry.NewDaemonMetrics(reg)
	res, err := RunDaemon(DaemonConfig{
		Service:  daemonService(t, b, m),
		MaxScans: 2,
		after:    instantAfter,
		Metrics:  dm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dm.Scans.Value() != uint64(res.Scans) || dm.Rebuilds.Value() != uint64(res.Rebuilds) {
		t.Fatalf("daemon counters scans=%d rebuilds=%d, result says %d/%d",
			dm.Scans.Value(), dm.Rebuilds.Value(), res.Scans, res.Rebuilds)
	}
	if dm.Retries.Value() != 0 || dm.Failures.Value() != 0 || dm.Backoff.Value() != 0 {
		t.Fatalf("healthy daemon shows failure state: retries=%d failures=%v backoff=%v",
			dm.Retries.Value(), dm.Failures.Value(), dm.Backoff.Value())
	}
	snap := dm.Tracker.Snapshot()
	if snap.Phase != "stopped" || snap.Scans != 2 || snap.Rebuilds != 1 {
		t.Fatalf("tracker terminal snapshot = %+v, want stopped after 2 scans / 1 rebuild", snap)
	}
}

// TestDaemonMetricsBackoff pins the failure-path gauges: transient scan
// errors bump the retry counter and surface the growing backoff, and a
// later success clears both gauges.
func TestDaemonMetricsBackoff(t *testing.T) {
	m := testManifest("star", 5, 2, 64)
	b := initMem(t, m, resumeSeed)
	killDisk(t, b, 2)
	flaky := &flakyBackend{Backend: b, failures: 2}

	reg := telemetry.NewRegistry()
	dm := telemetry.NewDaemonMetrics(reg)
	var maxFailures, maxBackoff float64
	res, err := RunDaemon(DaemonConfig{
		Service:  daemonService(t, flaky, m),
		MaxScans: 4,
		Retries:  3,
		Backoff:  time.Second,
		after: func(d time.Duration) <-chan time.Time {
			if f := dm.Failures.Value(); f > maxFailures {
				maxFailures = f
			}
			if bo := dm.Backoff.Value(); bo > maxBackoff {
				maxBackoff = bo
			}
			return instantAfter(d)
		},
		Metrics: dm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dm.Retries.Value() != uint64(res.Retries) || res.Retries != 2 {
		t.Fatalf("retries metric %d vs result %d, want 2", dm.Retries.Value(), res.Retries)
	}
	if maxFailures != 2 || maxBackoff != 2 {
		t.Fatalf("observed failure peaks: failures=%v backoff=%vs, want 2 and 2s (1s then doubled)", maxFailures, maxBackoff)
	}
	if dm.Failures.Value() != 0 || dm.Backoff.Value() != 0 {
		t.Fatalf("gauges not cleared after recovery: failures=%v backoff=%v", dm.Failures.Value(), dm.Backoff.Value())
	}
}

// TestQoSMetricsMirrorSteps arms QoSConfig.Metrics and replays the
// gauges against the controller's own AIMD step log.
func TestQoSMetricsMirrorSteps(t *testing.T) {
	reg := telemetry.NewRegistry()
	qm := telemetry.NewQoSMetrics(reg)
	q := newQoSController(QoSConfig{SLOp99Ms: 50, MinSamples: 1, Burst: 1, Metrics: qm}, 2)

	if qm.Rate.Value() != 100 || qm.SLO.Value() != 0.05 {
		t.Fatalf("initial gauges rate=%v slo=%v, want defaulted 100 and 0.05s", qm.Rate.Value(), qm.SLO.Value())
	}

	q.observe(10) // comfortably inside the SLO
	q.tick(0)
	q.observe(500) // egregious breach
	q.tick(sim.Second)

	if len(q.steps) != 2 {
		t.Fatalf("controller logged %d steps, want 2", len(q.steps))
	}
	if qm.Windows.Value() != 2 || qm.Breaches.Value() != 1 {
		t.Fatalf("windows=%d breaches=%d, want 2 and 1", qm.Windows.Value(), qm.Breaches.Value())
	}
	last := q.steps[len(q.steps)-1]
	if !last.Breached {
		t.Fatalf("second window should breach: %+v", last)
	}
	if qm.Rate.Value() != last.RateAfter {
		t.Fatalf("rate gauge %v, step says %v", qm.Rate.Value(), last.RateAfter)
	}
	if qm.WindowP99.Value() != last.P99Ms/1e3 {
		t.Fatalf("p99 gauge %vs, step says %vms", qm.WindowP99.Value(), last.P99Ms)
	}

	// Two back-to-back reservations on one disk: the second must queue,
	// and the accumulated delay surfaces in simulated seconds.
	q.gate(0, 0)
	at := q.gate(0, 0)
	if at == 0 {
		t.Fatal("second reservation issued instantly despite Burst=1")
	}
	if want := float64(q.throttleDelay) / float64(sim.Second); qm.ThrottleDelay.Value() != want || want <= 0 {
		t.Fatalf("throttle delay gauge %v, controller accumulated %v", qm.ThrottleDelay.Value(), want)
	}

	// Scrape sanity: the QoS family renders under its registered names.
	if got := scrapeValue(t, reg, "fbf_qos_windows"); got != 2 {
		t.Fatalf("scraped fbf_qos_windows = %v, want 2", got)
	}
}
