package rebuild

import (
	"testing"

	"fbf/internal/cache"
	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/grid"
	"fbf/internal/sim"
)

func servingConfig(code *codes.Code) Config {
	return Config{
		Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 4, CacheChunks: 64, Stripes: 100,
		Serving: &ServingConfig{
			Ops: 2000, Rate: 100, ZipfS: 1.2, WriteFrac: 0.2, HotFrac: 0.3, Seed: 11,
		},
	}
}

func TestServingBasic(t *testing.T) {
	code := codes.MustNew("tip", 7)
	cfg := servingConfig(code)
	res, err := Run(cfg, genErrors(t, code, 10, 100, 2))
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Serving
	if sr == nil {
		t.Fatal("Result.Serving is nil on a serving run")
	}
	// Every configured arrival is either a read or a write.
	if got := sr.Reads + sr.Writes; got != uint64(cfg.Serving.Ops) {
		t.Errorf("arrivals = %d (reads %d + writes %d), want %d", got, sr.Reads, sr.Writes, cfg.Serving.Ops)
	}
	if sr.Writes == 0 || sr.Reads == 0 {
		t.Errorf("degenerate mix: reads %d, writes %d", sr.Reads, sr.Writes)
	}
	// Accounting invariant: every arrival completes in exactly one class
	// or fails.
	var classOps uint64
	for i := range sr.Classes {
		classOps += sr.Classes[i].Ops
	}
	if classOps+sr.FailedReads+sr.FailedWrites != sr.Reads+sr.Writes {
		t.Errorf("accounting: classes %d + failed %d/%d != arrivals %d",
			classOps, sr.FailedReads, sr.FailedWrites, sr.Reads+sr.Writes)
	}
	if sr.Ops() != classOps {
		t.Errorf("Ops() = %d, class sum %d", sr.Ops(), classOps)
	}
	// The overall histogram holds one sample per completed op, and the
	// class histograms partition it.
	if sr.Hist.Total() != classOps {
		t.Errorf("overall histogram holds %d samples, want %d", sr.Hist.Total(), classOps)
	}
	var histSum uint64
	for i := range sr.Classes {
		cs := &sr.Classes[i]
		if cs.Hist.Total() != cs.Ops {
			t.Errorf("class %v histogram holds %d, want %d", StripeClass(i), cs.Hist.Total(), cs.Ops)
		}
		histSum += cs.Hist.Total()
	}
	if histSum != sr.Hist.Total() {
		t.Errorf("class histograms sum to %d, overall %d", histSum, sr.Hist.Total())
	}
	// With hot traffic aimed at stripes under repair, degraded and lost
	// requests must appear, and latency must order sensibly.
	if sr.Classes[ClassDegraded].Ops == 0 && sr.Classes[ClassLost].Ops == 0 {
		t.Error("hot traffic produced no degraded or lost requests")
	}
	if sr.Classes[ClassLost].Ops > 0 && sr.Classes[ClassLost].AvgMs() <= sr.Classes[ClassHealthy].AvgMs() {
		t.Errorf("lost-class mean %.3f ms not above healthy %.3f ms",
			sr.Classes[ClassLost].AvgMs(), sr.Classes[ClassHealthy].AvgMs())
	}
	if sr.P(1) < sr.P(0.5) || sr.P(0.99) < sr.P(0.5) {
		t.Errorf("quantiles not monotone: p50 %.3f p99 %.3f p100 %.3f", sr.P(0.5), sr.P(0.99), sr.P(1))
	}
	if sr.Hits+sr.Misses == 0 || sr.HitRatio() < 0 || sr.HitRatio() > 1 {
		t.Errorf("probe stats: hits %d misses %d ratio %v", sr.Hits, sr.Misses, sr.HitRatio())
	}
	if sr.DiskReads == 0 || sr.DiskWrites == 0 {
		t.Errorf("foreground issued no disk I/O: reads %d writes %d", sr.DiskReads, sr.DiskWrites)
	}
	// The rebuild itself still completes.
	if res.Groups != 10 {
		t.Errorf("Groups = %d", res.Groups)
	}
	// No QoS configured: no trace, no throttling.
	if len(sr.QoSTrace) != 0 || sr.ThrottleDelay != 0 || sr.FinalRebuildRate != 0 {
		t.Errorf("QoS accounting populated without a QoS config: %+v", sr)
	}
}

func TestServingDeterministic(t *testing.T) {
	code := codes.MustNew("tip", 7)
	run := func() *Result {
		cfg := servingConfig(code)
		cfg.Serving.QoS = &QoSConfig{SLOp99Ms: 50}
		res, err := Run(cfg, genErrors(t, code, 10, 100, 2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Errorf("makespan diverged: %v vs %v", a.Makespan, b.Makespan)
	}
	sa, sb := a.Serving, b.Serving
	if sa.Reads != sb.Reads || sa.Writes != sb.Writes || sa.Hits != sb.Hits ||
		sa.Misses != sb.Misses || sa.SumMs != sb.SumMs ||
		sa.DiskReads != sb.DiskReads || sa.DiskWrites != sb.DiskWrites ||
		sa.XORChunks != sb.XORChunks || sa.Evictions != sb.Evictions ||
		sa.FailedReads != sb.FailedReads || sa.FailedWrites != sb.FailedWrites ||
		sa.ThrottleDelay != sb.ThrottleDelay || sa.FinalRebuildRate != sb.FinalRebuildRate {
		t.Errorf("serving results diverged:\n%+v\n%+v", sa, sb)
	}
	for i := range sa.Classes {
		if sa.Classes[i].Ops != sb.Classes[i].Ops || sa.Classes[i].SumMs != sb.Classes[i].SumMs {
			t.Errorf("class %v diverged", StripeClass(i))
		}
	}
	if len(sa.QoSTrace) != len(sb.QoSTrace) {
		t.Fatalf("trace lengths diverged: %d vs %d", len(sa.QoSTrace), len(sb.QoSTrace))
	}
	for i := range sa.QoSTrace {
		if sa.QoSTrace[i] != sb.QoSTrace[i] {
			t.Errorf("step %d diverged: %+v vs %+v", i, sa.QoSTrace[i], sb.QoSTrace[i])
		}
	}
}

func TestStripeClassTracking(t *testing.T) {
	sv := &servingState{
		lost:      make(map[cache.ChunkID]bool),
		remaining: make(map[int]int),
	}
	a := cache.ChunkID{Stripe: 3, Cell: grid.Coord{Row: 0, Col: 1}}
	b := cache.ChunkID{Stripe: 3, Cell: grid.Coord{Row: 2, Col: 4}}
	other := cache.ChunkID{Stripe: 5, Cell: grid.Coord{Row: 1, Col: 1}}

	if got := sv.classify(a); got != ClassHealthy {
		t.Fatalf("empty state: classify = %v", got)
	}
	sv.addLost(a)
	sv.addLost(a) // idempotent
	sv.addLost(b)
	if sv.remaining[3] != 2 {
		t.Fatalf("remaining[3] = %d after 2 losses (one repeated)", sv.remaining[3])
	}
	if got := sv.classify(a); got != ClassLost {
		t.Errorf("lost cell: classify = %v", got)
	}
	if got := sv.classify(cache.ChunkID{Stripe: 3, Cell: grid.Coord{Row: 9, Col: 9}}); got != ClassDegraded {
		t.Errorf("intact cell of losing stripe: classify = %v", got)
	}
	if got := sv.classify(other); got != ClassHealthy {
		t.Errorf("other stripe: classify = %v", got)
	}

	sv.repaired(3, a.Cell)
	if got := sv.classify(a); got != ClassDegraded {
		t.Errorf("after repair: classify = %v (stripe still has a loss)", got)
	}
	sv.repaired(3, a.Cell) // idempotent: not lost anymore
	if sv.remaining[3] != 1 {
		t.Fatalf("remaining[3] = %d after repeated repair", sv.remaining[3])
	}
	sv.repaired(3, b.Cell)
	if got := sv.classify(a); got != ClassHealthy {
		t.Errorf("stripe fully repaired: classify = %v", got)
	}
	if len(sv.lost) != 0 || len(sv.remaining) != 0 {
		t.Errorf("tracking maps not drained: lost %v remaining %v", sv.lost, sv.remaining)
	}
	if (StripeClass(9)).String() == "" || ClassLost.String() != "lost" ||
		ClassHealthy.String() != "healthy" || ClassDegraded.String() != "degraded" {
		t.Error("StripeClass.String misnames a class")
	}
}

// TestServingEvictionSplit pins the foreground/rebuild eviction split in
// serving mode: with no error groups at all, every eviction is caused by
// a foreground probe, so the rebuild-attributed Cache.Evictions must be
// exactly zero while the app-attributed count carries the total.
func TestServingEvictionSplit(t *testing.T) {
	code := codes.MustNew("tip", 7)
	cfg := Config{
		Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 2, CacheChunks: 8, Stripes: 200, // tiny cache forces evictions
		Serving: &ServingConfig{Ops: 3000, Rate: 2000, ZipfS: 1.1, WriteFrac: 0.1, Seed: 4},
	}
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AppEvictions == 0 {
		t.Fatal("foreground stream caused no evictions despite an 8-chunk cache")
	}
	if res.Cache.Evictions != 0 {
		t.Errorf("rebuild-attributed evictions = %d with zero error groups", res.Cache.Evictions)
	}
	if res.Serving.Evictions != res.AppEvictions {
		t.Errorf("Serving.Evictions = %d, AppEvictions = %d", res.Serving.Evictions, res.AppEvictions)
	}
	// With no repairs pending, every request is healthy-class and none
	// fail.
	sr := res.Serving
	if sr.Classes[ClassDegraded].Ops != 0 || sr.Classes[ClassLost].Ops != 0 {
		t.Errorf("class split %d/%d/%d with no errors",
			sr.Classes[0].Ops, sr.Classes[1].Ops, sr.Classes[2].Ops)
	}
	if sr.FailedReads != 0 || sr.FailedWrites != 0 {
		t.Errorf("failures %d/%d with no errors", sr.FailedReads, sr.FailedWrites)
	}
}

// TestServingQoSKeepsSLO pins the calibrated sub-saturation scenario: at
// 200 ops/s against a 13-disk array, the unthrottled rebuild drives
// foreground p99 to roughly twice the 100 ms SLO, and the AIMD throttle
// pulls it back inside.
func TestServingQoSKeepsSLO(t *testing.T) {
	const slo = 100.0
	run := func(qos *QoSConfig) *ServingResult {
		code := codes.MustNew("tip", 13)
		res, err := Run(servingQoSConfig(code, qos), genErrors(t, code, 24, 512, 5))
		if err != nil {
			t.Fatal(err)
		}
		return res.Serving
	}
	unthrottled := run(nil)
	throttled := run(&QoSConfig{SLOp99Ms: slo, InitialRate: 10, MaxRate: 50})
	if p := unthrottled.P(0.99); p <= slo {
		t.Errorf("unthrottled p99 %.1f ms does not breach the %v ms SLO — scenario lost its contention", p, slo)
	}
	if p := throttled.P(0.99); p > slo {
		t.Errorf("QoS-throttled p99 %.1f ms exceeds the %v ms SLO", p, slo)
	}
	if throttled.ThrottleDelay <= 0 {
		t.Error("QoS injected no rebuild delay")
	}
	if len(throttled.QoSTrace) == 0 {
		t.Error("QoS recorded no decision windows")
	}
}

func TestServingRejections(t *testing.T) {
	code := codes.MustNew("tip", 7)
	base := func() Config {
		return Config{
			Code: code, Policy: "lru", Strategy: core.StrategyLooped,
			Workers: 2, CacheChunks: 16, Stripes: 16,
			Serving: &ServingConfig{Ops: 10, Rate: 100, Seed: 1},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"app and serving together", func(c *Config) {
			c.App = &AppWorkload{Requests: 10, Interarrival: sim.Millisecond}
		}},
		{"negative ops", func(c *Config) { c.Serving.Ops = -1 }},
		{"zero rate", func(c *Config) { c.Serving.Rate = 0 }},
		{"negative rate", func(c *Config) { c.Serving.Rate = -3 }},
		{"write fraction above 1", func(c *Config) { c.Serving.WriteFrac = 1.5 }},
		{"negative hot fraction", func(c *Config) { c.Serving.HotFrac = -0.1 }},
		{"zipf with one stripe", func(c *Config) { c.Stripes = 1; c.Serving.ZipfS = 1.5 }},
		{"bad latency bounds", func(c *Config) { c.Serving.LatencyBoundsMs = []float64{5, 5} }},
		{"bad qos", func(c *Config) { c.Serving.QoS = &QoSConfig{} }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		_, err := Run(cfg, genErrors(t, code, 2, 16, 1))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if _, ok := err.(*ConfigError); !ok {
			t.Errorf("%s: error %T (%v) is not *ConfigError", tc.name, err, err)
		}
	}
	// DOR mode rejects serving like the other SOR-only features (plain
	// error, not a ConfigError, matching App et al).
	cfg := base()
	cfg.Mode = ModeDOR
	if _, err := Run(cfg, genErrors(t, code, 2, 16, 1)); err == nil {
		t.Error("DOR mode accepted a serving config")
	}
}
