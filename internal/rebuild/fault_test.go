package rebuild

import (
	stderrors "errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/sim"
)

// TestFaultConfigValidation pins the typed validation of the fault
// fields: each invalid knob yields a *ConfigError naming it.
func TestFaultConfigValidation(t *testing.T) {
	code := codes.MustNew("tip", 5)
	base := func() Config {
		return Config{Code: code, Policy: "lru", Strategy: core.StrategyLooped,
			Workers: 2, CacheChunks: 16, Stripes: 16}
	}
	cases := []struct {
		name   string
		faults FaultConfig
		mutate func(*Config)
		field  string
	}{
		{name: "negative URE rate", faults: FaultConfig{URERate: -0.1}, field: "Faults.URERate"},
		{name: "URE rate of 1", faults: FaultConfig{URERate: 1}, field: "Faults.URERate"},
		{name: "transient rate above 1", faults: FaultConfig{TransientRate: 1.5}, field: "Faults.TransientRate"},
		{name: "retry cap below 1", faults: FaultConfig{RetryMax: -2}, field: "Faults.RetryMax"},
		{name: "negative backoff", faults: FaultConfig{RetryBackoff: -sim.Millisecond}, field: "Faults.RetryBackoff"},
		{name: "negative backoff cap", faults: FaultConfig{RetryBackoffCap: -1}, field: "Faults.RetryBackoffCap"},
		{
			name:   "failure disk out of range",
			faults: FaultConfig{DiskFailures: []DiskFailure{{Disk: code.Disks(), At: sim.Millisecond}}},
			field:  fmt.Sprintf("Faults.DiskFailures[0].Disk"),
		},
		{
			name:   "failure before error arrival",
			faults: FaultConfig{DiskFailures: []DiskFailure{{Disk: 1, At: 0}}},
			field:  "Faults.DiskFailures[0].At",
		},
		{
			name:   "faults with SkipSpareWrites",
			faults: FaultConfig{URERate: 0.01},
			mutate: func(c *Config) { c.SkipSpareWrites = true },
			field:  "Faults",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			f := tc.faults
			cfg.Faults = &f
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			_, err := Run(cfg, []core.PartialStripeError{{Stripe: 0, Disk: 0, Row: 0, Size: 1}})
			var ce *ConfigError
			if !stderrors.As(err, &ce) {
				t.Fatalf("error %v (%T), want *ConfigError", err, err)
			}
			if ce.Field != tc.field {
				t.Errorf("ConfigError.Field = %q, want %q (%v)", ce.Field, tc.field, ce)
			}
		})
	}
}

// TestDORRejectsFaults pins that DOR mode refuses fault injection, like
// the other SOR-only features.
func TestDORRejectsFaults(t *testing.T) {
	code := codes.MustNew("tip", 5)
	cfg := Config{Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 2, CacheChunks: 16, Stripes: 16, Mode: ModeDOR,
		Faults: &FaultConfig{URERate: 0.01}}
	if _, err := Run(cfg, []core.PartialStripeError{{Stripe: 0, Disk: 0, Row: 0, Size: 1}}); err == nil {
		t.Fatal("DOR run with Faults succeeded, want error")
	}
}

// TestArmedZeroFaultsMatchesBaseline pins that merely arming the fault
// machinery (Faults set, but zero rates and no disk failures) leaves
// every shared metric identical to a run without it — the fault path
// must add no simulation events of its own.
func TestArmedZeroFaultsMatchesBaseline(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 24, 128, 9)
	cfg := Config{Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Workers: 4, CacheChunks: 64, Stripes: 128}
	base, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &FaultConfig{Seed: 42}
	armed, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	if armed.Retries+armed.Regenerations+armed.Escalations+armed.RePlans+armed.FailedReads != 0 {
		t.Errorf("zero-rate fault run reports fault activity: %+v", armed)
	}
	if armed.DataLoss || armed.LostChunks != 0 {
		t.Errorf("zero-rate fault run reports data loss: %+v", armed)
	}
	if armed.Makespan != base.Makespan || armed.Cache != base.Cache ||
		armed.DiskReads != base.DiskReads || armed.DiskWrites != base.DiskWrites ||
		armed.TotalRequests != base.TotalRequests || armed.SumResponse != base.SumResponse {
		t.Errorf("armed-but-quiet run diverged from baseline:\n  base  %+v\n  armed %+v", base, armed)
	}
	if armed.VulnerabilityWindow <= 0 || armed.VulnerabilityWindow > armed.Makespan {
		t.Errorf("VulnerabilityWindow %v outside (0, %v]", armed.VulnerabilityWindow, armed.Makespan)
	}
}

// TestTransientRetriesRecover pins the retry ladder: a seeded transient
// rate makes reads time out and be retried with backoff, recovery still
// completes, and (VerifyData) every rebuilt chunk is byte-exact.
func TestTransientRetriesRecover(t *testing.T) {
	code := codes.MustNew("tip", 5)
	errors := genErrors(t, code, 12, 64, 3)
	noFault := Config{Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 2, CacheChunks: 32, Stripes: 64, VerifyData: true}
	clean, err := Run(noFault, errors)
	if err != nil {
		t.Fatal(err)
	}
	cfg := noFault
	cfg.Faults = &FaultConfig{Seed: 11, TransientRate: 0.2}
	res, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Error("no retries recorded at TransientRate 0.2")
	}
	if res.FailedReads == 0 {
		t.Error("no failed reads recorded")
	}
	if res.DataLoss {
		t.Errorf("transient-only run lost data: %+v", res.Lost)
	}
	if res.VerifiedChunks == 0 {
		t.Error("no chunks byte-verified")
	}
	if res.Makespan <= clean.Makespan {
		t.Errorf("retries did not extend makespan: %v <= clean %v", res.Makespan, clean.Makespan)
	}
}

// TestUREEscalationIsByteExact pins the URE ladder: latent sector errors
// escalate chunks to lost, the scheme is regenerated around them (GF(2)
// decoder fallback included), the stale cached copies are invalidated,
// and — because the code's tolerance is not exceeded — every repaired
// chunk still byte-matches the original contents.
func TestUREEscalationIsByteExact(t *testing.T) {
	code := codes.MustNew("star", 5)
	errors := genErrors(t, code, 16, 64, 4)
	cfg := Config{Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Workers: 2, CacheChunks: 32, Stripes: 64, VerifyData: true,
		Faults: &FaultConfig{Seed: 7, URERate: 0.02}}
	res, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	if res.Escalations == 0 {
		t.Fatal("no escalations at URERate 0.02; pick a different seed")
	}
	if res.Regenerations == 0 {
		t.Error("escalations without scheme regenerations")
	}
	if res.DataLoss {
		t.Errorf("URE pattern within tolerance reported data loss: %+v", res.Lost)
	}
	if res.VerifiedChunks == 0 {
		t.Error("no chunks byte-verified")
	}
	if res.FailedReads < res.Escalations {
		t.Errorf("FailedReads %d < Escalations %d", res.FailedReads, res.Escalations)
	}
}

// TestCascadingFailuresGracefulDataLoss pins the last rung of the
// ladder: with four whole-disk failures early in the rebuild — beyond
// any triple-fault-tolerant code — the run must end gracefully with a
// DataLoss result and per-chunk accounting, never a panic, while the
// retry and re-planning counters show the engine fought for it.
func TestCascadingFailuresGracefulDataLoss(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 20, 128, 6)
	cfg := Config{Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Workers: 4, CacheChunks: 64, Stripes: 128, ChunkSize: 32 * 1024,
		Faults: &FaultConfig{
			Seed:          13,
			TransientRate: 0.1,
			DiskFailures: []DiskFailure{
				{Disk: 0, At: 5 * sim.Millisecond},
				{Disk: 1, At: 20 * sim.Millisecond},
				{Disk: 2, At: 40 * sim.Millisecond},
				{Disk: 3, At: 60 * sim.Millisecond},
			},
		}}
	res, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	if res.RePlans != 4 {
		t.Errorf("RePlans = %d, want 4 (one per disk failure)", res.RePlans)
	}
	if !res.DataLoss || res.LostChunks == 0 {
		t.Fatalf("four concurrent failures did not report data loss: %+v", res)
	}
	if res.LostChunks != len(res.Lost) {
		t.Errorf("LostChunks %d != len(Lost) %d", res.LostChunks, len(res.Lost))
	}
	if res.LostBytes != int64(res.LostChunks)*int64(cfg.ChunkSize) {
		t.Errorf("LostBytes %d != %d chunks * %d B", res.LostBytes, res.LostChunks, cfg.ChunkSize)
	}
	if res.Regenerations == 0 {
		t.Error("no scheme regenerations across four disk failures")
	}
	if res.Retries == 0 {
		t.Error("no transient retries recorded")
	}
	if res.Makespan <= 0 {
		t.Errorf("makespan %v", res.Makespan)
	}
	seen := make(map[string]bool, len(res.Lost))
	for _, id := range res.Lost {
		key := fmt.Sprint(id)
		if seen[key] {
			t.Errorf("chunk %v accounted lost twice", id)
		}
		seen[key] = true
	}
}

// TestCheckpointsSurviveReplan pins rebuild checkpointing: when a disk
// fails mid-rebuild, chunks already rebuilt and parked in surviving
// spare areas are not rebuilt again.
func TestCheckpointsSurviveReplan(t *testing.T) {
	code := codes.MustNew("tip", 5)
	errors := genErrors(t, code, 16, 64, 8)
	cfg := Config{Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 2, CacheChunks: 32, Stripes: 64,
		Faults: &FaultConfig{
			Seed:         21,
			DiskFailures: []DiskFailure{{Disk: 2, At: 120 * sim.Millisecond}},
		}}
	res, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	if res.RePlans != 1 {
		t.Fatalf("RePlans = %d, want 1", res.RePlans)
	}
	if res.Regenerations == 0 {
		t.Fatal("disk failure triggered no regeneration")
	}
	if res.CheckpointedChunks == 0 {
		t.Error("no checkpointed chunks survived the re-plan; rebuilt work was redone")
	}
	if res.DataLoss {
		t.Errorf("single failure within tolerance lost data: %+v", res.Lost)
	}
}

// TestReplanOnceUnderConcurrentRuns is the -race guard for the fault
// path's share-nothing design: many goroutines race whole faulted runs
// over one shared geometry and one shared trace, every run must observe
// its mid-rebuild disk failure exactly once, and all runs must agree
// with the serial result bit for bit.
func TestReplanOnceUnderConcurrentRuns(t *testing.T) {
	code := codes.MustNew("star", 7)
	errors := genErrors(t, code, 24, 256, 12)
	cfg := Config{Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Workers: 4, CacheChunks: 128, Stripes: 256, VerifyData: true,
		Faults: &FaultConfig{
			Seed:          5,
			URERate:       0.005,
			TransientRate: 0.05,
			DiskFailures:  []DiskFailure{{Disk: 1, At: 50 * sim.Millisecond}},
		}}
	want, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	if want.RePlans != 1 {
		t.Fatalf("serial RePlans = %d, want 1", want.RePlans)
	}

	const runs = 8
	got := make([]*Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = Run(cfg, errors)
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if got[i].RePlans != 1 {
			t.Errorf("run %d: RePlans = %d, want exactly 1", i, got[i].RePlans)
		}
		w, g := *want, *got[i]
		w.SchemeGenWall, g.SchemeGenWall = 0, 0 // real wall time, not simulated
		if !reflect.DeepEqual(w, g) {
			t.Errorf("run %d diverged from serial:\n  serial     %+v\n  concurrent %+v", i, w, g)
		}
	}
}

// TestFaultedRunsAreDeterministic pins that a faulted run is a pure
// function of its configuration: repeated runs agree on every counter,
// including the fault schedule itself.
func TestFaultedRunsAreDeterministic(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 20, 128, 2)
	cfg := Config{Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 4, CacheChunks: 64, Stripes: 128,
		Faults: &FaultConfig{
			Seed:          99,
			URERate:       0.01,
			TransientRate: 0.1,
			DiskFailures:  []DiskFailure{{Disk: 3, At: 30 * sim.Millisecond}},
		}}
	first, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		again, err := Run(cfg, errors)
		if err != nil {
			t.Fatal(err)
		}
		f, a := *first, *again
		f.SchemeGenWall, a.SchemeGenWall = 0, 0
		if !reflect.DeepEqual(f, a) {
			t.Fatalf("faulted run not deterministic:\n  first %+v\n  again %+v", f, a)
		}
	}
}

// FuzzFaultPlan drives small faulted rebuilds with arbitrary seeds,
// rates and failure schedules, asserting the engine's safety envelope:
// no error, no panic, coherent loss accounting, and byte-exact
// verification of everything it claims to have repaired.
func FuzzFaultPlan(f *testing.F) {
	f.Add(int64(1), uint16(100), uint16(100), uint8(0), uint16(10), uint8(4), uint16(30))
	f.Add(int64(7), uint16(0), uint16(400), uint8(2), uint16(1), uint8(2), uint16(2))
	f.Add(int64(42), uint16(900), uint16(0), uint8(7), uint16(500), uint8(1), uint16(60))
	code := codes.MustNew("tip", 5)
	trace := []core.PartialStripeError{
		{Stripe: 0, Disk: 0, Row: 0, Size: 2},
		{Stripe: 1, Disk: 3, Row: 1, Size: 1},
		{Stripe: 2, Disk: 1, Row: 0, Size: 3},
		{Stripe: 3, Disk: 5, Row: 2, Size: 1},
	}
	f.Fuzz(func(t *testing.T, seed int64, ureMilli, transientMilli uint16, disk1 uint8, at1Ms uint16, disk2 uint8, at2Ms uint16) {
		fc := &FaultConfig{
			Seed:          seed,
			URERate:       float64(ureMilli%1000) / 2000,      // [0, 0.5)
			TransientRate: float64(transientMilli%1000) / 2000, // [0, 0.5)
		}
		for _, df := range []DiskFailure{
			{Disk: int(disk1) % code.Disks(), At: sim.Time(at1Ms%1000+1) * sim.Millisecond},
			{Disk: int(disk2) % code.Disks(), At: sim.Time(at2Ms%1000+1) * sim.Millisecond},
		} {
			fc.DiskFailures = append(fc.DiskFailures, df)
		}
		cfg := Config{Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
			Workers: 2, CacheChunks: 16, Stripes: 8, ChunkSize: 4096,
			VerifyData: true, Faults: fc}
		res, err := Run(cfg, trace)
		if err != nil {
			t.Fatalf("faulted run errored: %v", err)
		}
		if res.DataLoss != (res.LostChunks > 0) {
			t.Fatalf("DataLoss %v inconsistent with LostChunks %d", res.DataLoss, res.LostChunks)
		}
		if res.LostChunks != len(res.Lost) || res.LostBytes != int64(res.LostChunks)*int64(cfg.ChunkSize) {
			t.Fatalf("loss accounting incoherent: %+v", res)
		}
		if res.DataLoss && res.Escalations == 0 && res.RePlans == 0 {
			t.Fatalf("data loss with no escalation or re-plan: %+v", res)
		}
		if res.Cache.Requests() != res.TotalRequests {
			t.Fatalf("cache requests %d != total %d", res.Cache.Requests(), res.TotalRequests)
		}
	})
}
