package rebuild

import (
	stderrors "errors"
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/sim"
)

func TestOnlineRecoveryAppMetrics(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 20, 100, 21)
	res, err := Run(Config{
		Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Workers: 4, CacheChunks: 64, Stripes: 100,
		App: &AppWorkload{Requests: 200, Interarrival: sim.Millisecond, Seed: 1},
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	if res.AppRequests != 200 {
		t.Errorf("AppRequests = %d", res.AppRequests)
	}
	if res.AppAvgResponse() <= 0 {
		t.Error("app response time missing")
	}
	if res.AppHitRatio() < 0 || res.AppHitRatio() > 1 {
		t.Errorf("app hit ratio %f", res.AppHitRatio())
	}
	// Recovery cache stats must exclude the app stream.
	if res.Cache.Requests() != res.TotalRequests {
		t.Errorf("recovery stats polluted: %d != %d", res.Cache.Requests(), res.TotalRequests)
	}
	// Disk reads = recovery misses + app misses.
	appMisses := res.AppRequests - res.AppHits
	if res.DiskReads != res.Cache.Misses+appMisses {
		t.Errorf("DiskReads %d != recovery misses %d + app misses %d", res.DiskReads, res.Cache.Misses, appMisses)
	}
}

// TestAppConfigValidation pins the typed validation of the foreground
// workload knobs: each invalid field yields a *ConfigError naming it.
func TestAppConfigValidation(t *testing.T) {
	code := codes.MustNew("tip", 5)
	cases := []struct {
		name   string
		app    AppWorkload
		mutate func(*Config)
		field  string
	}{
		{name: "negative requests", app: AppWorkload{Requests: -1}, field: "App.Requests"},
		{name: "negative error locality", app: AppWorkload{Requests: 10, ErrorLocality: -0.5}, field: "App.ErrorLocality"},
		{name: "error locality above 1", app: AppWorkload{Requests: 10, ErrorLocality: 1.5}, field: "App.ErrorLocality"},
		{
			name:   "zipf skew on a single stripe",
			app:    AppWorkload{Requests: 10, ZipfS: 2},
			mutate: func(c *Config) { c.Stripes = 1 },
			field:  "App.ZipfS",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app := tc.app
			cfg := Config{Code: code, Policy: "lru", Strategy: core.StrategyLooped,
				Workers: 2, CacheChunks: 16, Stripes: 16, App: &app}
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			_, err := Run(cfg, []core.PartialStripeError{{Stripe: 0, Disk: 0, Row: 0, Size: 1}})
			var ce *ConfigError
			if !stderrors.As(err, &ce) {
				t.Fatalf("error %v (%T), want *ConfigError", err, err)
			}
			if ce.Field != tc.field {
				t.Errorf("ConfigError.Field = %q, want %q (%v)", ce.Field, tc.field, ce)
			}
		})
	}
}

// TestAppEvictionSplit pins that evictions caused by the foreground
// stream land in AppEvictions, not in the recovery-stream Cache stats:
// every recovery eviction needs a recovery miss to insert the chunk, so
// Cache.Evictions can never exceed Cache.Misses once the app-induced
// ones are split out (before the split a busy app stream inflated the
// recovery figure past that bound).
func TestAppEvictionSplit(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 20, 100, 27)
	base := Config{
		Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 2, CacheChunks: 8, Stripes: 100,
	}
	quiet, err := Run(base, errors)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.AppEvictions != 0 {
		t.Errorf("AppEvictions = %d without an app workload", quiet.AppEvictions)
	}
	busy := base
	busy.App = &AppWorkload{Requests: 3000, Interarrival: 100 * sim.Microsecond, Seed: 5}
	loaded, err := Run(busy, errors)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.AppEvictions == 0 {
		t.Error("a busy app stream on a tiny cache evicted nothing")
	}
	if loaded.Cache.Evictions > loaded.Cache.Misses {
		t.Errorf("recovery evictions %d exceed recovery misses %d: app stream not split out",
			loaded.Cache.Evictions, loaded.Cache.Misses)
	}
	appMisses := loaded.AppRequests - loaded.AppHits
	if loaded.AppEvictions > appMisses {
		t.Errorf("app evictions %d exceed app misses %d", loaded.AppEvictions, appMisses)
	}
}

func TestOnlineRecoverySlowsReconstruction(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 30, 150, 22)
	base := Config{
		Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 4, CacheChunks: 64, Stripes: 150,
	}
	quiet, err := Run(base, errors)
	if err != nil {
		t.Fatal(err)
	}
	busy := base
	// A heavy foreground stream: a request every 100 us.
	busy.App = &AppWorkload{Requests: 3000, Interarrival: 100 * sim.Microsecond, Seed: 2}
	loaded, err := Run(busy, errors)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Makespan <= quiet.Makespan {
		t.Errorf("foreground load did not slow recovery: %v <= %v", loaded.Makespan, quiet.Makespan)
	}
}

func TestOnlineRecoveryZipfSkewRaisesAppHits(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 10, 2000, 23)
	run := func(zipfS float64) *Result {
		res, err := Run(Config{
			Code: code, Policy: "lru", Strategy: core.StrategyLooped,
			Workers: 2, CacheChunks: 512, Stripes: 2000,
			App: &AppWorkload{Requests: 4000, Interarrival: 50 * sim.Microsecond, Seed: 3, ZipfS: zipfS},
		}, errors)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	uniform := run(0)
	skewed := run(2.5)
	if skewed.AppHits <= uniform.AppHits {
		t.Errorf("zipf app stream should self-hit more: %d <= %d", skewed.AppHits, uniform.AppHits)
	}
}

func TestOnlineRecoveryDeterministic(t *testing.T) {
	code := codes.MustNew("star", 5)
	errors := genErrors(t, code, 10, 50, 24)
	cfg := Config{
		Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Workers: 2, CacheChunks: 32, Stripes: 50,
		App: &AppWorkload{Requests: 500, Interarrival: 200 * sim.Microsecond, Seed: 4},
	}
	a, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	if a.AppHits != b.AppHits || a.AppSumResponse != b.AppSumResponse || a.Makespan != b.Makespan {
		t.Error("online recovery not deterministic")
	}
}

func TestVerifyDataChecksEveryLostChunk(t *testing.T) {
	for _, name := range codes.Names() {
		code := codes.MustNew(name, 7)
		errors := genErrors(t, code, 12, 60, 25)
		res, err := Run(Config{
			Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
			Workers: 3, CacheChunks: 32, Stripes: 60,
			ChunkSize: 512, VerifyData: true,
		}, errors)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var lost uint64
		for _, e := range errors {
			lost += uint64(e.Size)
		}
		if res.VerifiedChunks != lost {
			t.Errorf("%s: verified %d chunks, want %d", name, res.VerifiedChunks, lost)
		}
	}
}

func TestVerifyDataAllStrategies(t *testing.T) {
	code := codes.MustNew("star", 5)
	errors := genErrors(t, code, 8, 40, 26)
	for _, strategy := range []core.Strategy{core.StrategyTypical, core.StrategyLooped, core.StrategyGreedy} {
		res, err := Run(Config{
			Code: code, Policy: "lru", Strategy: strategy,
			Workers: 2, CacheChunks: 16, Stripes: 40,
			ChunkSize: 256, VerifyData: true,
		}, errors)
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		if res.VerifiedChunks == 0 {
			t.Errorf("%v: nothing verified", strategy)
		}
	}
}
