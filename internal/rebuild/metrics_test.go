package rebuild

import (
	"math"
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/disk"
	"fbf/internal/sim"
)

func TestResponseHistogram(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 15, 80, 31)
	res, err := Run(Config{
		Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Workers: 4, CacheChunks: 32, Stripes: 80,
		ResponseHistogramMs: []float64{1, 5, 10, 20, 50, 100, 500},
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponseHist == nil {
		t.Fatal("histogram not collected")
	}
	if res.ResponseHist.Total() != res.TotalRequests {
		t.Errorf("histogram holds %d samples, want %d", res.ResponseHist.Total(), res.TotalRequests)
	}
	// The median bucket bound must bracket the mean response time.
	if q := res.ResponseHist.Quantile(0.99); q <= 0 {
		t.Errorf("p99 = %f", q)
	}
	// Histogram omitted when not configured.
	plain, err := Run(Config{
		Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Workers: 4, CacheChunks: 32, Stripes: 80,
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ResponseHist != nil {
		t.Error("histogram collected without config")
	}
}

func TestResponseHistogramBadBounds(t *testing.T) {
	code := codes.MustNew("tip", 5)
	_, err := Run(Config{
		Code: code, Policy: "lru", Workers: 1, CacheChunks: 4, Stripes: 10,
		ResponseHistogramMs: []float64{5, 5},
	}, []core.PartialStripeError{{Stripe: 0, Disk: 0, Row: 0, Size: 1}})
	if err == nil {
		t.Error("non-increasing bounds accepted")
	}
}

func TestPerDiskStatsAndBalance(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 20, 100, 32)
	res, err := Run(Config{
		Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 4, CacheChunks: 0, Stripes: 100,
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerDisk) != code.Disks() {
		t.Fatalf("PerDisk has %d entries", len(res.PerDisk))
	}
	var totalReads uint64
	for _, d := range res.PerDisk {
		totalReads += d.Reads
	}
	if totalReads != res.DiskReads {
		t.Errorf("per-disk reads %d != total %d", totalReads, res.DiskReads)
	}
	bal := res.ReadBalance()
	if bal < 1 || math.IsNaN(bal) {
		t.Errorf("ReadBalance = %f, want >= 1", bal)
	}
}

func TestReadBalanceEmpty(t *testing.T) {
	var r Result
	if r.ReadBalance() != 0 {
		t.Error("empty result balance should be 0")
	}
}

func TestSchedulerAffectsPositionalRuns(t *testing.T) {
	code := codes.MustNew("tip", 11)
	errors := genErrors(t, code, 40, 4000, 33)
	run := func(sched disk.Scheduler) *Result {
		res, err := Run(Config{
			Code: code, Policy: "lru", Strategy: core.StrategyLooped,
			Workers: 16, CacheChunks: 0, Stripes: 4000,
			Scheduler: sched,
			ModelFor: func(i int) disk.Model {
				return disk.NewPositional(4000*int64(code.Rows()), int64(i))
			},
		}, errors)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fifo := run(disk.SchedFIFO)
	look := run(disk.SchedLOOK)
	// Same cache behaviour (no cache) and identical read counts; LOOK
	// only reorders service.
	if fifo.DiskReads != look.DiskReads {
		t.Errorf("scheduler changed read counts: %d vs %d", fifo.DiskReads, look.DiskReads)
	}
	if fifo.Makespan == look.Makespan {
		t.Log("schedulers produced identical makespan (low contention); acceptable but unusual")
	}
}

func TestSchedulerFixedLatencyInvariant(t *testing.T) {
	// Under the paper's fixed-latency model the scheduler cannot change
	// aggregate service time, only order; makespan must be identical
	// when each disk's per-request cost is constant and all requests are
	// independent... which they are not (chain barriers), so we assert
	// the weaker invariant: read counts and hit ratios match.
	code := codes.MustNew("star", 5)
	errors := genErrors(t, code, 10, 50, 34)
	run := func(sched disk.Scheduler) *Result {
		res, err := Run(Config{
			Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
			Workers: 2, CacheChunks: 16, Stripes: 50, Scheduler: sched,
		}, errors)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(disk.SchedFIFO), run(disk.SchedSSTF)
	if a.Cache != b.Cache {
		t.Errorf("scheduler changed cache behaviour: %+v vs %+v", a.Cache, b.Cache)
	}
}

func TestResultZeroValueAccessors(t *testing.T) {
	var r Result
	if r.AvgResponse() != 0 || r.AvgSchemeGen() != 0 || r.AppHitRatio() != 0 || r.AppAvgResponse() != 0 {
		t.Error("zero-value accessors should all be 0")
	}
}

func TestVerifyChainDetectsCorruption(t *testing.T) {
	// Force a mismatch by planting a worker with a corrupted stripe and
	// calling verifyChain directly.
	code := codes.MustNew("tip", 5)
	e := core.PartialStripeError{Stripe: 0, Disk: 0, Row: 0, Size: 1}
	scheme, err := core.GenerateScheme(code, e, core.StrategyTypical)
	if err != nil {
		t.Fatal(err)
	}
	eng := &engine{cfg: Config{Code: code, ChunkSize: 64, VerifyData: true}}
	w := &worker{engine: eng, scheme: scheme}
	w.stripe = code.MaterializeStripe(1, 64)
	w.stripe[0][0] ^= 0xFF // corrupt a chunk the chain reads
	w.verifyChain(scheme.Selected[0])
	if eng.verifyErr == nil {
		t.Error("corruption not detected")
	}
	if eng.verifiedChunks != 0 {
		t.Error("corrupted chunk counted as verified")
	}
	// A second failure must not overwrite the first error.
	first := eng.verifyErr
	w.verifyChain(scheme.Selected[0])
	if eng.verifyErr != first {
		t.Error("first verify error overwritten")
	}
}

func TestDefaultsFillPaperValues(t *testing.T) {
	var c Config
	c.Defaults()
	if c.Workers != 128 || c.ChunkSize != 32*1024 || c.CacheAccess != sim.Millisecond/2 || c.Stripes != 1<<16 || c.XORPerChunk == 0 {
		t.Errorf("Defaults = %+v", c)
	}
	// Preset values are preserved.
	c2 := Config{Workers: 3, ChunkSize: 1024, CacheAccess: sim.Millisecond, XORPerChunk: 1, Stripes: 7}
	c2.Defaults()
	if c2.Workers != 3 || c2.ChunkSize != 1024 || c2.CacheAccess != sim.Millisecond || c2.Stripes != 7 {
		t.Errorf("Defaults overwrote presets: %+v", c2)
	}
}
