package rebuild

import (
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
)

func TestModeString(t *testing.T) {
	if ModeSOR.String() != "sor" || ModeDOR.String() != "dor" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("invalid mode name wrong")
	}
}

func TestDORBasicMetrics(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 20, 100, 41)
	res, err := Run(Config{
		Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Mode: ModeDOR, Workers: 1, CacheChunks: 256, Stripes: 100,
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 20 || res.TotalRequests == 0 {
		t.Fatalf("result %+v", res)
	}
	if res.Cache.Requests() != res.TotalRequests {
		t.Errorf("cache requests %d != total %d", res.Cache.Requests(), res.TotalRequests)
	}
	if res.DiskReads != res.Cache.Misses {
		t.Errorf("reads %d != misses %d", res.DiskReads, res.Cache.Misses)
	}
	var lost uint64
	for _, e := range errors {
		lost += uint64(e.Size)
	}
	if res.DiskWrites != lost {
		t.Errorf("writes %d != lost %d", res.DiskWrites, lost)
	}
	if res.Makespan <= 0 {
		t.Error("no makespan")
	}
	if len(res.PerDisk) != code.Disks() {
		t.Error("per-disk stats missing")
	}
}

func TestDORDeterministic(t *testing.T) {
	code := codes.MustNew("star", 5)
	errors := genErrors(t, code, 12, 60, 42)
	cfg := Config{
		Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Mode: ModeDOR, Workers: 1, CacheChunks: 64, Stripes: 60,
	}
	a, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cache != b.Cache || a.Makespan != b.Makespan || a.SumResponse != b.SumResponse {
		t.Error("DOR not deterministic")
	}
}

func TestDORSharedCacheProducesHits(t *testing.T) {
	// DOR's single global cache sees every request, so with enough
	// capacity the shared chunks of the looped scheme must hit.
	code := codes.MustNew("tip", 13)
	errors := genErrors(t, code, 30, 200, 43)
	res, err := Run(Config{
		Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Mode: ModeDOR, Workers: 1, CacheChunks: 1 << 14, Stripes: 200,
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Hits == 0 {
		t.Error("DOR produced no hits with ample cache")
	}
}

func TestDORAllPolicies(t *testing.T) {
	code := codes.MustNew("hdd1", 5)
	errors := genErrors(t, code, 8, 40, 44)
	for _, policy := range []string{"fifo", "lru", "lfu", "arc", "fbf", "lrfu", "opt"} {
		res, err := Run(Config{
			Code: code, Policy: policy, Strategy: core.StrategyLooped,
			Mode: ModeDOR, Workers: 1, CacheChunks: 32, Stripes: 40,
		}, errors)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if res.TotalRequests == 0 {
			t.Errorf("%s: no requests", policy)
		}
	}
}

func TestDORRejectsUnsupportedFeatures(t *testing.T) {
	code := codes.MustNew("tip", 5)
	errs := []core.PartialStripeError{{Stripe: 0, Disk: 0, Row: 0, Size: 1}}
	base := Config{Code: code, Policy: "lru", Mode: ModeDOR, Workers: 1, CacheChunks: 8, Stripes: 10}
	withApp := base
	withApp.App = &AppWorkload{Requests: 1}
	if _, err := Run(withApp, errs); err == nil {
		t.Error("DOR+App accepted")
	}
	withVerify := base
	withVerify.VerifyData = true
	if _, err := Run(withVerify, errs); err == nil {
		t.Error("DOR+VerifyData accepted")
	}
	withHist := base
	withHist.ResponseHistogramMs = []float64{1}
	if _, err := Run(withHist, errs); err == nil {
		t.Error("DOR+histogram accepted")
	}
}

func TestDORReadCountsMatchSORAtZeroCache(t *testing.T) {
	// With no cache both modes read every request from disk; the request
	// streams are permutations of each other, so totals must agree.
	code := codes.MustNew("triplestar", 7)
	errors := genErrors(t, code, 15, 80, 45)
	sor, err := Run(Config{
		Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 4, CacheChunks: 0, Stripes: 80,
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	dor, err := Run(Config{
		Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Mode: ModeDOR, Workers: 1, CacheChunks: 0, Stripes: 80,
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	if sor.DiskReads != dor.DiskReads {
		t.Errorf("SOR reads %d != DOR reads %d", sor.DiskReads, dor.DiskReads)
	}
	if sor.DiskWrites != dor.DiskWrites {
		t.Errorf("SOR writes %d != DOR writes %d", sor.DiskWrites, dor.DiskWrites)
	}
}
