package rebuild

// resume_test.go is the crash-safety property suite: enumerate every
// operation index of a journaled kill-three-disks rebuild, crash there
// with injected torn debris, and prove the resumed run converges to a
// byte-identical array — plus targeted cases for graceful stop and for
// commits that lie (tampered chunks caught by the journal CRC and the
// GF(2) oracle).

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fbf/internal/grid"
	"fbf/internal/store"
	"fbf/internal/store/faultstore"
)

const resumeSeed int64 = 424242

// openResumeDir opens the on-disk store fixture (fsync off: these tests
// model crash points with faultstore, not with real power loss).
func openResumeDir(t *testing.T, root string) *store.Dir {
	t.Helper()
	d, err := store.OpenDirWith(root, store.DirOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// initResumeDir materializes a clean array and kills three whole disks.
func initResumeDir(t *testing.T, root string, m store.ArrayManifest) *store.Dir {
	t.Helper()
	d := openResumeDir(t, root)
	if err := InitStore(d, m, resumeSeed); err != nil {
		t.Fatal(err)
	}
	for _, disk := range []int{0, 2, 4} {
		if err := os.RemoveAll(filepath.Join(root, store.DiskDirName(disk))); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestResumeFromEveryCrashPoint is the tentpole property test: for
// EVERY operation index k of a journaled triple-disk rebuild, a run
// crashed at k (with torn on-disk debris) leaves a state from which a
// plain rerun converges — no data loss, the array byte-identical to
// ground truth, and the journal cleaned up.
func TestResumeFromEveryCrashPoint(t *testing.T) {
	m := testManifest("star", 5, 2, 64)

	// Counting run: the same rebuild against a fault-free wrapper bounds
	// the crash-point sweep.
	countRoot := t.TempDir()
	d := initResumeDir(t, countRoot, m)
	counter := faultstore.Wrap(d, faultstore.Plan{})
	res, err := RunService(ServiceConfig{
		Backend: counter, Manifest: m,
		JournalPath: filepath.Join(countRoot, "rebuild.journal"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DataLoss {
		t.Fatal("triple-disk kill must be recoverable")
	}
	checkAgainstGroundTruth(t, d, m, resumeSeed)
	total := counter.Ops()
	if total < 20 {
		t.Fatalf("counting run saw only %d ops; the sweep would prove nothing", total)
	}

	step := 1
	if testing.Short() {
		step = 7
	}
	resumedCommits, resumeVerified := 0, 0
	run := func(k int) {
		root := t.TempDir()
		journal := filepath.Join(root, "rebuild.journal")
		crashing := faultstore.Wrap(initResumeDir(t, root, m), faultstore.Plan{
			Seed: int64(k), CrashAfterOps: k, TornWrites: true,
		})
		_, err := RunService(ServiceConfig{Backend: crashing, Manifest: m, JournalPath: journal})
		if !errors.Is(err, faultstore.ErrCrashed) {
			t.Fatalf("crash at op %d: run returned %v, want ErrCrashed", k, err)
		}

		// Next process: reopen the medium (sweeping crash debris) and
		// rerun with the same journal, fault-free.
		re := openResumeDir(t, root)
		res, err := RunService(ServiceConfig{Backend: re, Manifest: m, JournalPath: journal})
		if err != nil {
			t.Fatalf("resume after crash at op %d: %v", k, err)
		}
		if res.DataLoss {
			t.Fatalf("resume after crash at op %d lost data: %v", k, res.Lost)
		}
		if res.Interrupted {
			t.Fatalf("resume after crash at op %d reports Interrupted without a Stop", k)
		}
		resumedCommits += res.ResumedCommits
		resumeVerified += res.ResumeVerified
		checkAgainstGroundTruth(t, re, m, resumeSeed)
		if _, err := os.Stat(journal); !os.IsNotExist(err) {
			t.Fatalf("journal survives clean completion after crash at op %d: %v", k, err)
		}
	}
	for k := 1; k <= total; k += step {
		run(k)
	}
	if step > 1 {
		run(total)
	}
	if resumedCommits == 0 {
		t.Fatal("no crash point replayed a journaled commit; the sweep never exercised resume")
	}
	if resumeVerified == 0 {
		t.Fatal("no replayed commit was oracle-verified; the sweep never exercised resume verification")
	}
}

// TestResumeCatchesTamperedCommit pins the journal-CRC half of resume
// verification: a committed chunk replaced with different (structurally
// valid) bytes between crash and resume fails the CRC cross-check, is
// flagged corrupt, and gets re-repaired.
func TestResumeCatchesTamperedCommit(t *testing.T) {
	m := testManifest("star", 5, 2, 64)
	root := t.TempDir()
	journal := filepath.Join(root, "rebuild.journal")

	// Find a crash point that left at least one commit in an unfinished
	// stripe.
	var victim store.Addr
	found := false
	for k := 20; !found && k < 2000; k += 10 {
		crashing := faultstore.Wrap(initResumeDir(t, root, m), faultstore.Plan{CrashAfterOps: k})
		_, err := RunService(ServiceConfig{Backend: crashing, Manifest: m, JournalPath: journal})
		if err == nil {
			t.Fatalf("no crash point up to op %d left an unfinished stripe", k)
		}
		if !errors.Is(err, faultstore.ErrCrashed) {
			t.Fatal(err)
		}
		j, st, err := OpenJournal(journal)
		if err != nil {
			t.Fatal(err)
		}
		for _, stripe := range st.InFlight() {
			for a := range st.Commits {
				if a.Stripe == stripe {
					victim, found = a, true
				}
			}
		}
		j.Close()
		if !found {
			if err := os.RemoveAll(root); err != nil {
				t.Fatal(err)
			}
			if err := os.MkdirAll(root, 0o755); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !found {
		t.Fatal("never found an in-flight commit to tamper with")
	}

	// Tamper: replace the committed chunk with different valid bytes.
	re := openResumeDir(t, root)
	buf := make([]byte, m.ChunkSize)
	if _, err := re.ReadChunk(victim, buf); err != nil {
		t.Fatal(err)
	}
	buf[11] ^= 0x55
	if err := re.WriteChunk(victim, buf); err != nil {
		t.Fatal(err)
	}

	res, err := RunService(ServiceConfig{Backend: re, Manifest: m, JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.CorruptChunks == 0 {
		t.Fatal("tampered commit was not flagged corrupt on resume")
	}
	if res.DataLoss {
		t.Fatal(err)
	}
	checkAgainstGroundTruth(t, re, m, resumeSeed)
}

// TestResumeOracleCatchesLyingCommit pins the GF(2) half: a journal
// whose commit record vouches for bytes that ARE what the store holds
// (CRC matches) but are not what the code derives is caught by the
// oracle cross-check on resume — the defense the CRC alone cannot
// provide.
func TestResumeOracleCatchesLyingCommit(t *testing.T) {
	m := testManifest("star", 5, 1, 64)
	root := t.TempDir()
	d := openResumeDir(t, root)
	if err := InitStore(d, m, resumeSeed); err != nil {
		t.Fatal(err)
	}

	// Hand-write a "repair" that lies: wrong bytes in the store, and a
	// journal that committed exactly those wrong bytes.
	target := grid.Coord{Row: 0, Col: 0}
	a := AddrOf(0, target)
	wrong := make([]byte, m.ChunkSize)
	if _, err := d.ReadChunk(a, wrong); err != nil {
		t.Fatal(err)
	}
	truth := append([]byte(nil), wrong...)
	wrong[3] ^= 0x80
	if err := d.WriteChunk(a, wrong); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(root, "rebuild.journal")
	j, _, err := OpenJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendPlan(0, []grid.Coord{target}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCommit(a, PayloadCRC(wrong)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The scan alone sees a clean store (the lie is structurally valid);
	// only the journal knows stripe 0 is in flight.
	res, err := RunService(ServiceConfig{Backend: d, Manifest: m, JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.CorruptChunks != 1 || res.ChunksRebuilt != 1 {
		t.Fatalf("lying commit: %d corrupt, %d rebuilt, want 1 and 1", res.Report.CorruptChunks, res.ChunksRebuilt)
	}
	if res.ResumeVerified != 0 {
		t.Fatalf("lying commit counted as verified (%d)", res.ResumeVerified)
	}
	got := make([]byte, m.ChunkSize)
	if _, err := d.ReadChunk(a, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, truth) {
		t.Fatal("oracle flagged the lie but the rebuilt bytes are still wrong")
	}
	checkAgainstGroundTruth(t, d, m, resumeSeed)
	if _, err := os.Stat(journal); !os.IsNotExist(err) {
		t.Fatalf("journal survives clean completion: %v", err)
	}
}

// stopAfterWrites closes a stop channel once the backend has absorbed n
// chunk writes — the hook that lands a graceful stop mid-stripe.
type stopAfterWrites struct {
	store.Backend
	n      int
	writes int
	stop   chan struct{}
}

func (s *stopAfterWrites) WriteChunk(a store.Addr, data []byte) error {
	err := s.Backend.WriteChunk(a, data)
	if err == nil {
		s.writes++
		if s.writes == s.n {
			close(s.stop)
		}
	}
	return err
}

// TestServiceGracefulStop pins the Stop contract: the chunk in flight
// is finished and committed, the journal survives with the progress so
// far, and a rerun resumes to a byte-exact array.
func TestServiceGracefulStop(t *testing.T) {
	m := testManifest("star", 5, 2, 64)
	root := t.TempDir()
	journal := filepath.Join(root, "rebuild.journal")
	d := initResumeDir(t, root, m)

	hook := &stopAfterWrites{Backend: d, n: 3, stop: make(chan struct{})}
	res, err := RunService(ServiceConfig{Backend: hook, Manifest: m, JournalPath: journal, Stop: hook.stop})
	if err != nil {
		t.Fatalf("graceful stop must not be an error: %v", err)
	}
	if !res.Interrupted {
		t.Fatal("stopped run does not report Interrupted")
	}
	if res.ChunksRebuilt != hook.n {
		t.Fatalf("stopped run rebuilt %d chunks, want exactly the %d committed before the stop", res.ChunksRebuilt, hook.n)
	}
	if res.JournalOffset <= 0 {
		t.Fatalf("stopped run reports journal offset %d", res.JournalOffset)
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("journal missing after graceful stop: %v", err)
	}

	res2, err := RunService(ServiceConfig{Backend: d, Manifest: m, JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Interrupted || res2.DataLoss {
		t.Fatalf("resume after stop: interrupted=%v dataloss=%v", res2.Interrupted, res2.DataLoss)
	}
	if res2.ResumedCommits != hook.n {
		t.Fatalf("resume replayed %d commits, want %d", res2.ResumedCommits, hook.n)
	}
	checkAgainstGroundTruth(t, d, m, resumeSeed)
	if _, err := os.Stat(journal); !os.IsNotExist(err) {
		t.Fatalf("journal survives completed resume: %v", err)
	}
}

// TestServiceStopBeforeAnything pins the degenerate stop: a request
// already pending at entry repairs nothing and keeps the journal.
func TestServiceStopBeforeAnything(t *testing.T) {
	m := testManifest("star", 5, 2, 64)
	root := t.TempDir()
	d := initResumeDir(t, root, m)
	stop := make(chan struct{})
	close(stop)
	res, err := RunService(ServiceConfig{
		Backend: d, Manifest: m, Stop: stop,
		JournalPath: filepath.Join(root, "rebuild.journal"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted || res.StripesRepaired != 0 || res.ChunksRebuilt != 0 {
		t.Fatalf("pre-closed stop: interrupted=%v stripes=%d chunks=%d", res.Interrupted, res.StripesRepaired, res.ChunksRebuilt)
	}
}

// TestJournalIncompatibleWithPlanOnlyModes pins the config guard.
func TestJournalIncompatibleWithPlanOnlyModes(t *testing.T) {
	m := testManifest("star", 5, 1, 32)
	b := initMem(t, m, resumeSeed)
	for _, cfg := range []ServiceConfig{
		{Backend: b, Manifest: m, JournalPath: "x", CheckOnly: true},
		{Backend: b, Manifest: m, JournalPath: "x", DryRun: true},
	} {
		if _, err := RunService(cfg); err == nil {
			t.Fatalf("journaled plan-only mode accepted: %+v", cfg)
		}
	}
}

// TestJournalGeometryGuard pins the cross-array guard: a journal
// written for one geometry refuses to resume another.
func TestJournalGeometryGuard(t *testing.T) {
	root := t.TempDir()
	journal := filepath.Join(root, "rebuild.journal")
	j, _, err := OpenJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendScan(JournalScan{Disks: 9, Rows: 6, Stripes: 8, ChunkSize: 128}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	m := testManifest("star", 5, 2, 64)
	b := initMem(t, m, resumeSeed)
	killDisk(t, b, 0)
	if _, err := RunService(ServiceConfig{Backend: b, Manifest: m, JournalPath: journal}); err == nil {
		t.Fatal("geometry-mismatched journal accepted")
	}
}
