package rebuild

import (
	"fmt"

	"fbf/internal/cache"
	"fbf/internal/core"
	"fbf/internal/grid"
	"fbf/internal/obs"
	"fbf/internal/sim"
	"fbf/internal/stats"
	"fbf/internal/workload"
)

// Serving mode: a heavy-traffic foreground stream (workload.Generator's
// open-loop Zipf read/write mix) served by the array while the workers
// rebuild, with per-request latency split by stripe class and an
// optional QoS throttle (qos.go) pacing the rebuild against a
// foreground p99 target. Every code path here is guarded by
// cfg.Serving != nil, so non-serving runs execute the exact pre-serving
// instruction stream — their results and traces stay golden-identical.

// ServingConfig parameterizes the foreground stream of a serving run.
// The stream's stripe space, candidate cells (the layout's data cells)
// and hot set (the stripes under repair) come from the run itself.
type ServingConfig struct {
	Ops       int     // total foreground operations
	Rate      float64 // client arrivals per second of simulated time (open loop)
	ZipfS     float64 // stripe-popularity skew; <= 1 means uniform
	WriteFrac float64 // fraction of operations that are parity read-modify-write updates
	HotFrac   float64 // fraction of operations landing on stripes under repair (0 with no error groups)
	Seed      int64

	// LatencyBoundsMs overrides the per-class latency histogram buckets
	// (default: geometric 0.25 ms .. 60 s at ~12% resolution).
	LatencyBoundsMs []float64

	// QoS, when non-nil, arms the adaptive rebuild throttle.
	QoS *QoSConfig
}

// validate checks the serving fields against the run configuration.
func (s *ServingConfig) validate(c *Config) error {
	if s.Ops < 0 {
		return &ConfigError{Field: "Serving.Ops", Reason: fmt.Sprintf("negative op count %d", s.Ops)}
	}
	if !(s.Rate > 0) {
		return &ConfigError{Field: "Serving.Rate", Reason: fmt.Sprintf("non-positive client rate %v ops/sec", s.Rate)}
	}
	if s.WriteFrac < 0 || s.WriteFrac > 1 {
		return &ConfigError{Field: "Serving.WriteFrac", Reason: fmt.Sprintf("write fraction %v outside [0, 1]", s.WriteFrac)}
	}
	if s.HotFrac < 0 || s.HotFrac > 1 {
		return &ConfigError{Field: "Serving.HotFrac", Reason: fmt.Sprintf("hot fraction %v outside [0, 1]", s.HotFrac)}
	}
	if s.ZipfS > 1 && c.Stripes < 2 {
		return &ConfigError{Field: "Serving.ZipfS", Reason: "Zipf-skewed popularity needs at least 2 stripes"}
	}
	if len(s.LatencyBoundsMs) > 0 {
		if _, err := stats.NewHistogram(s.LatencyBoundsMs); err != nil {
			return &ConfigError{Field: "Serving.LatencyBoundsMs", Reason: err.Error()}
		}
	}
	if s.QoS != nil {
		if err := s.QoS.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// workloadConfig assembles the generator configuration: the stream's
// candidate cells are the layout's data cells, its hot set the distinct
// stripes of the error groups (in group order — no map iteration).
func (s *ServingConfig) workloadConfig(c *Config, groups []core.PartialStripeError) workload.Config {
	layout := c.Code.Layout()
	var cells []grid.Coord
	for r := 0; r < layout.Rows(); r++ {
		for col := 0; col < layout.Cols(); col++ {
			cell := grid.Coord{Row: r, Col: col}
			if !layout.IsParity(cell) {
				cells = append(cells, cell)
			}
		}
	}
	var hot []int
	seen := make(map[int]bool, len(groups))
	for _, g := range groups {
		if !seen[g.Stripe] {
			seen[g.Stripe] = true
			hot = append(hot, g.Stripe)
		}
	}
	hotFrac := s.HotFrac
	if len(hot) == 0 {
		hotFrac = 0
	}
	return workload.Config{
		Ops: s.Ops, Rate: s.Rate, Stripes: c.Stripes, Cells: cells,
		ZipfS: s.ZipfS, WriteFrac: s.WriteFrac,
		HotStripes: hot, HotFrac: hotFrac, Seed: s.Seed,
	}
}

// StripeClass labels a foreground request by the repair state of its
// target at arrival time.
type StripeClass uint8

const (
	// ClassHealthy: the target's stripe has no outstanding lost cells.
	ClassHealthy StripeClass = iota
	// ClassDegraded: the stripe has outstanding lost cells but the
	// target itself is intact (served directly, but contending with the
	// stripe's repair traffic).
	ClassDegraded
	// ClassLost: the target cell itself is still lost; a read
	// reconstructs it through a surviving parity chain.
	ClassLost
	// NumClasses sizes per-class arrays.
	NumClasses = 3
)

// String names the class.
func (c StripeClass) String() string {
	switch c {
	case ClassHealthy:
		return "healthy"
	case ClassDegraded:
		return "degraded"
	case ClassLost:
		return "lost"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ServingClassStats aggregates one stripe class's served requests.
type ServingClassStats struct {
	Ops   uint64
	SumMs float64
	Hist  *stats.Histogram
}

// AvgMs returns the class's mean latency in ms.
func (s *ServingClassStats) AvgMs() float64 {
	if s.Ops == 0 {
		return 0
	}
	return s.SumMs / float64(s.Ops)
}

// P returns the class's q-quantile latency in ms (histogram upper
// bound; 0 with no requests).
func (s *ServingClassStats) P(q float64) float64 {
	if s.Hist == nil {
		return 0
	}
	return s.Hist.Quantile(q)
}

// ServingResult aggregates the foreground stream's metrics (attached to
// Result.Serving; nil unless Config.Serving was set).
type ServingResult struct {
	Reads  uint64 // read arrivals
	Writes uint64 // write arrivals

	Hits   uint64 // cache-probe hits across all member lookups
	Misses uint64

	// FailedReads / FailedWrites count operations that could not be
	// served: a lost target with no surviving parity chain, or a write
	// whose member set is entirely lost or on dead disks. Failed
	// operations record no latency sample.
	FailedReads  uint64
	FailedWrites uint64

	DiskReads  uint64 // disk reads issued by the foreground stream
	DiskWrites uint64 // disk writes issued by the foreground stream
	XORChunks  uint64 // chunks folded into degraded-read reconstructions

	SumMs float64          // summed latency over completed operations (ms)
	Hist  *stats.Histogram // latency over all classes (ms)

	// Classes splits latency by the target's stripe class at arrival,
	// indexed by StripeClass.
	Classes [NumClasses]ServingClassStats

	// Evictions counts cache evictions the foreground probes caused
	// (also reported as Result.AppEvictions and excluded from
	// Result.Cache.Evictions, extending the app-workload split).
	Evictions uint64

	// QoS accounting (zero/nil without a QoS config).
	QoSTrace         []AIMDStep // judged decision windows, in order
	FinalRebuildRate float64    // rebuild IO/s/disk when the run ended
	ThrottleDelay    sim.Time   // total rebuild issue delay injected
}

// Ops returns the number of completed (latency-sampled) operations.
func (r *ServingResult) Ops() uint64 {
	var n uint64
	for i := range r.Classes {
		n += r.Classes[i].Ops
	}
	return n
}

// AvgMs returns the mean foreground latency in ms.
func (r *ServingResult) AvgMs() float64 {
	if n := r.Ops(); n > 0 {
		return r.SumMs / float64(n)
	}
	return 0
}

// P returns the q-quantile foreground latency in ms across all classes.
func (r *ServingResult) P(q float64) float64 {
	if r.Hist == nil {
		return 0
	}
	return r.Hist.Quantile(q)
}

// HitRatio returns the foreground probe hit ratio.
func (r *ServingResult) HitRatio() float64 {
	if t := r.Hits + r.Misses; t > 0 {
		return float64(r.Hits) / float64(t)
	}
	return 0
}

// servingState is the engine's foreground-serving machinery.
type servingState struct {
	e      *engine
	gen    *workload.Generator
	layout *grid.Layout

	// lost tracks cells currently lost (group cells not yet repaired,
	// escalations, permanent data loss); remaining counts them per
	// stripe, so classification is O(1).
	lost      map[cache.ChunkID]bool
	remaining map[int]int

	res *ServingResult
}

// startServing arms the foreground stream: class tracking seeded from
// the error groups, the workload generator, the optional QoS controller
// and the first arrival.
func (e *engine) startServing(groups []core.PartialStripeError) error {
	sc := e.cfg.Serving
	bounds := sc.LatencyBoundsMs
	if len(bounds) == 0 {
		bounds = qosWindowBoundsMs
	}
	sv := &servingState{
		e:         e,
		layout:    e.cfg.Code.Layout(),
		lost:      make(map[cache.ChunkID]bool),
		remaining: make(map[int]int),
		res:       &ServingResult{},
	}
	var err error
	if sv.res.Hist, err = stats.NewHistogram(bounds); err != nil {
		return err
	}
	for i := range sv.res.Classes {
		if sv.res.Classes[i].Hist, err = stats.NewHistogram(bounds); err != nil {
			return err
		}
	}
	for _, g := range groups {
		for _, c := range g.LostCells() {
			sv.addLost(cache.ChunkID{Stripe: g.Stripe, Cell: c})
		}
	}
	if sv.gen, err = workload.New(sc.workloadConfig(&e.cfg, groups)); err != nil {
		return err
	}
	e.serving = sv
	if sc.QoS != nil {
		e.qos = newQoSController(*sc.QoS, e.array.Disks())
		e.sim.Tick(e.qos.cfg.Window, func(now sim.Time) { e.qos.tick(now) })
	}
	sv.scheduleNext()
	return nil
}

// addLost marks one cell lost (idempotent).
func (sv *servingState) addLost(id cache.ChunkID) {
	if sv.lost[id] {
		return
	}
	sv.lost[id] = true
	sv.remaining[id.Stripe]++
}

// repaired marks one cell's repair durable, reclassifying its stripe
// when it was the last outstanding loss. Permanently lost chunks
// (loseChunk) are never reported here and stay in the lost set.
func (sv *servingState) repaired(stripe int, cell grid.Coord) {
	id := cache.ChunkID{Stripe: stripe, Cell: cell}
	if !sv.lost[id] {
		return
	}
	delete(sv.lost, id)
	if n := sv.remaining[stripe] - 1; n > 0 {
		sv.remaining[stripe] = n
	} else {
		delete(sv.remaining, stripe)
	}
}

// classify labels a request target by repair state at this instant.
func (sv *servingState) classify(id cache.ChunkID) StripeClass {
	switch {
	case sv.lost[id]:
		return ClassLost
	case sv.remaining[id.Stripe] > 0:
		return ClassDegraded
	default:
		return ClassHealthy
	}
}

// scheduleNext arms the next arrival. Arrivals self-chain — each
// arrival event draws and schedules its successor — so the event heap
// holds one pending foreground arrival at a time, and timestamps stay
// the generator's open-loop arithmetic regardless of service times.
func (sv *servingState) scheduleNext() {
	op, ok := sv.gen.Next()
	if !ok {
		return
	}
	sv.e.sim.ScheduleAt(op.At, func() {
		sv.scheduleNext()
		sv.arrive(op)
	})
}

// arrive dispatches one foreground operation.
func (sv *servingState) arrive(op workload.Op) {
	id := cache.ChunkID{Stripe: op.Stripe, Cell: op.Cell}
	class := sv.classify(id)
	if op.Kind == workload.Write {
		sv.res.Writes++
		sv.serveWrite(id, class)
		return
	}
	sv.res.Reads++
	if class == ClassLost {
		sv.serveDegradedRead(id)
		return
	}
	sv.serveRead(id, class)
}

// probe looks the chunk up in the owning worker's cache partition,
// attributing any eviction it causes to the foreground stream (the
// PR 6 AppEvictions split, extended to serving).
func (sv *servingState) probe(w *worker, id cache.ChunkID) bool {
	evBefore := w.cache.Stats().Evictions
	hit := w.cache.Request(id)
	d := w.cache.Stats().Evictions - evBefore
	sv.e.appEvictions += d
	sv.res.Evictions += d
	if hit {
		sv.res.Hits++
	} else {
		sv.res.Misses++
	}
	return hit
}

// serveRead serves a read whose target is intact: one cache probe, and
// a disk read on a miss.
func (sv *servingState) serveRead(id cache.ChunkID, class StripeClass) {
	e := sv.e
	if sv.probe(e.ownerWorker(id.Stripe), id) {
		e.sim.Schedule(e.cfg.CacheAccess, func() { sv.finish("read", id, class, e.cfg.CacheAccess) })
		return
	}
	sv.res.DiskReads++
	err := e.array.ReadChunk(id.Stripe, id.Cell, func(issued, completed sim.Time) {
		sv.finish("read", id, class, e.cfg.CacheAccess+(completed-issued))
	})
	if err != nil {
		panic(fmt.Sprintf("rebuild: serving read failed: %v", err))
	}
}

// servingOp tracks one multi-phase foreground operation (degraded read
// or read-modify-write): outstanding counts the phase's pending parts
// and onBarrier runs when they drain.
type servingOp struct {
	sv          *servingState
	id          cache.ChunkID
	class       StripeClass
	start       sim.Time
	outstanding int
	onBarrier   func()
}

// done retires one pending part; the last one through runs the barrier.
func (so *servingOp) done() {
	so.outstanding--
	if so.outstanding == 0 {
		so.onBarrier()
	}
}

// lookupPhase replays the chain-style member access pattern the rebuild
// workers use: sequential cache lookups (lookup i completes at
// (i+1) x CacheAccess), each miss issuing its disk read at its own
// lookup completion, with so.done() as the per-part barrier.
func (sv *servingState) lookupPhase(so *servingOp, w *worker, members []grid.Coord) {
	e := sv.e
	so.outstanding = 1 // the lookup phase itself
	for i, m := range members {
		mid := cache.ChunkID{Stripe: so.id.Stripe, Cell: m}
		if sv.probe(w, mid) {
			continue
		}
		so.outstanding++
		cell := m
		e.sim.Schedule(sim.Time(i+1)*e.cfg.CacheAccess, func() {
			sv.res.DiskReads++
			err := e.array.ReadChunk(so.id.Stripe, cell, func(issued, completed sim.Time) { so.done() })
			if err != nil {
				panic(fmt.Sprintf("rebuild: serving member read failed: %v", err))
			}
		})
	}
	e.sim.Schedule(sim.Time(len(members))*e.cfg.CacheAccess, so.done)
}

// serveDegradedRead reconstructs a still-lost target through the first
// surviving parity chain: member lookups/fetches, then the chain XOR.
func (sv *servingState) serveDegradedRead(id cache.ChunkID) {
	e := sv.e
	members := sv.chainFor(id)
	if members == nil {
		// No chain survives (every kind blocked by another loss or a
		// dead disk): the read cannot be served while repair is pending.
		sv.res.FailedReads++
		if e.tr != nil {
			e.instant(engineLane, obs.CatServe, "failed", coordArgs(id)...)
		}
		return
	}
	so := &servingOp{sv: sv, id: id, class: ClassLost, start: e.sim.Now()}
	so.onBarrier = func() {
		sv.res.XORChunks += uint64(len(members))
		charge := e.cfg.XORPerChunk * sim.Time(len(members))
		e.sim.Schedule(charge, func() {
			sv.finish("read", id, ClassLost, e.sim.Now()-so.start)
		})
	}
	sv.lookupPhase(so, e.ownerWorker(id.Stripe), members)
}

// chainFor returns the members (target excluded) of the first parity
// chain through the cell that is fully readable — no member lost, none
// on a dead disk — or nil when none survives. Kind order is fixed
// (grid.Kinds), so chain selection is deterministic.
func (sv *servingState) chainFor(id cache.ChunkID) []grid.Coord {
	e := sv.e
	for _, kind := range grid.Kinds() {
		ch, ok := sv.layout.ChainThrough(id.Cell, kind)
		if !ok {
			continue
		}
		usable := true
		members := make([]grid.Coord, 0, len(ch.Cells)-1)
		for _, m := range ch.Cells {
			if m == id.Cell {
				continue
			}
			if sv.lost[cache.ChunkID{Stripe: id.Stripe, Cell: m}] || e.failedCols[m.Col] {
				usable = false
				break
			}
			members = append(members, m)
		}
		if usable && len(members) > 0 {
			return members
		}
	}
	return nil
}

// rmwMembers returns the cells a write touches: the data cell plus the
// parity cells of every chain through it, excluding lost cells and dead
// disks (a full implementation would reconstruct those first; the model
// skips them and updates the survivors).
func (sv *servingState) rmwMembers(id cache.ChunkID) []grid.Coord {
	e := sv.e
	var members []grid.Coord
	seen := make(map[grid.Coord]bool, 4)
	add := func(c grid.Coord) {
		if seen[c] || sv.lost[cache.ChunkID{Stripe: id.Stripe, Cell: c}] || e.failedCols[c.Col] {
			return
		}
		seen[c] = true
		members = append(members, c)
	}
	add(id.Cell)
	for _, ch := range sv.layout.ChainsThrough(id.Cell) {
		for _, m := range ch.Cells {
			if m != id.Cell && sv.layout.IsParity(m) {
				add(m)
			}
		}
	}
	return members
}

// serveWrite performs a parity read-modify-write: read the old data and
// parity copies (cache-probed, misses from disk), XOR the deltas, then
// write the new copies concurrently. The response is the last write
// completion. Written chunks are invalidated in the owning cache — the
// cached old copies are stale once the write lands.
func (sv *servingState) serveWrite(id cache.ChunkID, class StripeClass) {
	e := sv.e
	members := sv.rmwMembers(id)
	if len(members) == 0 {
		sv.res.FailedWrites++
		if e.tr != nil {
			e.instant(engineLane, obs.CatServe, "failed", coordArgs(id)...)
		}
		return
	}
	w := e.ownerWorker(id.Stripe)
	so := &servingOp{sv: sv, id: id, class: class, start: e.sim.Now()}
	so.onBarrier = func() {
		charge := e.cfg.XORPerChunk * sim.Time(len(members))
		e.sim.Schedule(charge, func() {
			so.outstanding = len(members)
			so.onBarrier = func() { sv.finish("write", id, class, e.sim.Now()-so.start) }
			inv, canInvalidate := w.cache.(cache.Invalidator)
			for _, m := range members {
				if canInvalidate {
					inv.Invalidate(cache.ChunkID{Stripe: id.Stripe, Cell: m})
				}
				sv.res.DiskWrites++
				err := e.array.WriteChunk(id.Stripe, m, func(issued, completed sim.Time) { so.done() })
				if err != nil {
					panic(fmt.Sprintf("rebuild: serving write failed: %v", err))
				}
			}
		})
	}
	sv.lookupPhase(so, w, members)
}

// finish records one completed foreground operation.
func (sv *servingState) finish(kind string, id cache.ChunkID, class StripeClass, lat sim.Time) {
	ms := lat.Milliseconds()
	sv.res.SumMs += ms
	sv.res.Hist.Add(ms)
	cs := &sv.res.Classes[class]
	cs.Ops++
	cs.SumMs += ms
	cs.Hist.Add(ms)
	e := sv.e
	if e.qos != nil {
		e.qos.observe(ms)
	}
	if e.tr != nil {
		e.instant(engineLane, obs.CatServe, kind, append(coordArgs(id),
			obs.Arg{Key: "class", Val: int64(class)},
			obs.Arg{Key: "us", Val: int64(lat / sim.Microsecond)})...)
	}
}
