package rebuild

import (
	"fmt"
	"math"

	"fbf/internal/sim"
	"fbf/internal/stats"
	"fbf/internal/telemetry"
)

// QoS plumbing for serving runs: an adaptive per-disk token-bucket
// throttle on rebuild I/O, controlled by additive-increase /
// multiplicative-decrease against a foreground p99 latency target.
//
// The shape mirrors store.Throttle — a token bucket refilled at a rate,
// operations that overdraw wait out the deficit — transplanted into the
// simulator: instead of sleeping a goroutine, a reservation returns the
// simulated timestamp at which the gated I/O may issue, and the engine
// schedules the submission there. What store.Throttle fixes at
// construction (the rate), the AIMD controller retunes every decision
// window from the foreground latency histogram.

// QoSConfig parameterizes the adaptive rebuild throttle of a serving
// run. Rates are rebuild I/Os per second per disk.
type QoSConfig struct {
	SLOp99Ms float64 // foreground p99 latency target in ms (required, > 0)

	Window     sim.Time // decision interval (default 20 ms)
	MinSamples int      // foreground completions needed to judge a window (default 10)

	InitialRate float64 // starting rebuild rate (default 100 IO/s/disk)
	MinRate     float64 // floor after decreases (default 5)
	MaxRate     float64 // ceiling after increases (default 400)
	Increase    float64 // additive step per compliant window (default 10)
	Decrease    float64 // multiplicative factor on an SLO breach, in (0,1) (default 0.5)
	Burst       float64 // token-bucket depth in I/Os (default 4)

	// Metrics, when non-nil, receives the controller's live state —
	// current AIMD rate, windows judged, breaches, last window p99 vs
	// the SLO, accumulated throttle delay — at every decision tick.
	// The controller runs in simulated time, so the latency gauges
	// report simulated seconds.
	Metrics *telemetry.QoSMetrics
}

// withDefaults returns a copy with unset knobs filled in.
func (q QoSConfig) withDefaults() QoSConfig {
	if q.Window == 0 {
		q.Window = 20 * sim.Millisecond
	}
	if q.MinSamples == 0 {
		q.MinSamples = 10
	}
	if q.InitialRate == 0 {
		q.InitialRate = 100
	}
	if q.MinRate == 0 {
		q.MinRate = 5
	}
	if q.MaxRate == 0 {
		q.MaxRate = 400
	}
	if q.Increase == 0 {
		q.Increase = 10
	}
	if q.Decrease == 0 {
		q.Decrease = 0.5
	}
	if q.Burst == 0 {
		q.Burst = 4
	}
	return q
}

// Validate checks the QoS fields, returning a *ConfigError naming the
// offending one. Zero values select defaults and are accepted.
func (q *QoSConfig) Validate() error {
	if !(q.SLOp99Ms > 0) {
		return &ConfigError{Field: "Serving.QoS.SLOp99Ms", Reason: fmt.Sprintf("p99 target %v ms is not positive", q.SLOp99Ms)}
	}
	if q.Window < 0 {
		return &ConfigError{Field: "Serving.QoS.Window", Reason: fmt.Sprintf("negative decision window %v", q.Window)}
	}
	if q.MinSamples < 0 {
		return &ConfigError{Field: "Serving.QoS.MinSamples", Reason: fmt.Sprintf("negative sample floor %d", q.MinSamples)}
	}
	if q.InitialRate < 0 || q.MinRate < 0 || q.MaxRate < 0 || q.Increase < 0 || q.Burst < 0 {
		return &ConfigError{Field: "Serving.QoS", Reason: "negative rate parameter"}
	}
	d := q.withDefaults()
	if d.MinRate > d.MaxRate {
		return &ConfigError{Field: "Serving.QoS.MinRate", Reason: fmt.Sprintf("floor %v above ceiling %v", d.MinRate, d.MaxRate)}
	}
	if q.Decrease != 0 && (q.Decrease <= 0 || q.Decrease >= 1) {
		return &ConfigError{Field: "Serving.QoS.Decrease", Reason: fmt.Sprintf("multiplicative factor %v outside (0, 1)", q.Decrease)}
	}
	return nil
}

// AIMDNext is the pure reference spec of one controller decision: the
// rebuild rate after judging a window at the given rate. A breached
// window multiplies the rate by Decrease; a compliant one adds
// Increase; the result clamps to [MinRate, MaxRate]. The controller's
// recorded trace is model-checked against this function step by step,
// so any divergence between the running scheduler and the spec is a
// test failure, not a drift.
func AIMDNext(rate float64, breached bool, cfg QoSConfig) float64 {
	cfg = cfg.withDefaults()
	if breached {
		rate *= cfg.Decrease
	} else {
		rate += cfg.Increase
	}
	return math.Min(cfg.MaxRate, math.Max(cfg.MinRate, rate))
}

// AIMDStep records one judged decision window of the running
// controller: the foreground completions observed, the p99 verdict and
// the rate transition. Windows with fewer than MinSamples completions
// are not judged and record no step.
type AIMDStep struct {
	At         sim.Time // decision time
	WindowOps  uint64   // foreground completions judged
	P99Ms      float64  // window p99 (histogram upper bound, ms)
	Breached   bool     // P99Ms > SLOp99Ms
	RateBefore float64
	RateAfter  float64
}

// qosWindowBoundsMs buckets the controller's per-window latency
// histogram: geometric from a quarter millisecond (a cache hit) to a
// minute (deep saturation), ~12% resolution.
var qosWindowBoundsMs = mustLogBounds(0.25, 60_000, 1.12)

func mustLogBounds(lo, hi, factor float64) []float64 {
	b, err := stats.LogBounds(lo, hi, factor)
	if err != nil {
		panic(fmt.Sprintf("rebuild: log bounds: %v", err)) // fixed valid parameters
	}
	return b
}

// qosController runs the AIMD loop: foreground completions feed the
// window histogram, tick judges it against the SLO and retunes the
// rate, and gate paces rebuild I/O through per-disk token buckets at
// the current rate.
type qosController struct {
	cfg     QoSConfig // defaulted copy
	rate    float64
	window  *stats.Histogram
	buckets []tokenBucket
	steps   []AIMDStep

	throttleDelay sim.Time // total rebuild issue delay injected
}

// newQoSController builds a controller for an array of the given width.
func newQoSController(cfg QoSConfig, disks int) *qosController {
	d := cfg.withDefaults()
	h, err := stats.NewHistogram(qosWindowBoundsMs)
	if err != nil {
		panic(fmt.Sprintf("rebuild: qos window histogram: %v", err)) // fixed valid bounds
	}
	if mt := d.Metrics; mt != nil {
		mt.Rate.Set(d.InitialRate)
		mt.SLO.Set(d.SLOp99Ms / 1e3)
	}
	return &qosController{cfg: d, rate: d.InitialRate, window: h, buckets: make([]tokenBucket, disks)}
}

// observe feeds one foreground completion latency (ms) into the
// current decision window.
func (q *qosController) observe(ms float64) { q.window.Add(ms) }

// tick judges the window ending now. Windows below the sample floor
// keep accumulating into the next interval (a judgment over a handful
// of requests would be noise).
func (q *qosController) tick(now sim.Time) {
	n := q.window.Total()
	if n < uint64(q.cfg.MinSamples) {
		return
	}
	p99 := q.window.Quantile(0.99)
	breached := p99 > q.cfg.SLOp99Ms
	next := AIMDNext(q.rate, breached, q.cfg)
	q.steps = append(q.steps, AIMDStep{
		At: now, WindowOps: n, P99Ms: p99, Breached: breached,
		RateBefore: q.rate, RateAfter: next,
	})
	q.rate = next
	q.window.Reset()
	if mt := q.cfg.Metrics; mt != nil {
		mt.Windows.Inc()
		if breached {
			mt.Breaches.Inc()
		}
		mt.Rate.Set(next)
		mt.WindowP99.Set(p99 / 1e3)
	}
}

// gate reserves one rebuild I/O slot on the given disk's bucket and
// returns the simulated time at which the I/O may issue (now when a
// token is available). The delay, if any, is accounted.
func (q *qosController) gate(disk int, now sim.Time) sim.Time {
	if disk < 0 || disk >= len(q.buckets) {
		return now
	}
	at := q.buckets[disk].reserve(now, q.rate, q.cfg.Burst)
	if at > now {
		q.throttleDelay += at - now
		if mt := q.cfg.Metrics; mt != nil {
			mt.ThrottleDelay.Set(float64(q.throttleDelay) / float64(sim.Second))
		}
	}
	return at
}

// tokenBucket paces one disk's rebuild I/O in simulated time. Unlike
// store.Throttle's wall-clock bucket (which sleeps the caller),
// reserve never blocks: an overdraw books the reservation in the
// future and advances the bucket clock there, so queued reservations
// space themselves 1/rate apart deterministically.
type tokenBucket struct {
	tokens float64
	last   sim.Time
	primed bool
}

// reserve takes one token at the given rate (tokens/sec, capped at
// burst) and returns the issue timestamp.
func (b *tokenBucket) reserve(now sim.Time, rate, burst float64) sim.Time {
	if !b.primed {
		b.primed = true
		b.tokens = burst
		b.last = now
	}
	if now > b.last {
		b.tokens += float64(now-b.last) * rate / float64(sim.Second)
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		if b.last > now {
			return b.last
		}
		return now
	}
	if !(rate > 0) {
		// A zero rate would never repay the deficit; issue immediately
		// rather than wedging the rebuild (MinRate keeps real
		// controllers away from zero).
		return now
	}
	wait := (1 - b.tokens) / rate * float64(sim.Second)
	at := b.last + sim.Time(math.Ceil(wait))
	if at < now {
		at = now
	}
	b.tokens = 0
	b.last = at
	return at
}
