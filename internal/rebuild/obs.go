package rebuild

import (
	"fmt"

	"fbf/internal/cache"
	"fbf/internal/obs"
	"fbf/internal/sim"
)

// Observability plumbing for the SOR engine. Every call site in the
// engine guards on e.tr != nil (tracing) or a nil histogram/registry
// (metrics), so a run without observability attached executes the
// pre-obs instruction stream and allocates nothing extra — pinned by
// TestObsDisabledHotPathAllocs.

// engineLane is the run-wide trace lane (re-plans, app traffic,
// data-loss verdicts).
var engineLane = obs.Track{Group: obs.GroupEngine, ID: 0}

// lane returns the worker's trace lane.
func (w *worker) lane() obs.Track { return obs.Track{Group: obs.GroupWorkers, ID: w.id} }

// queueLenner is the capability the FBF policy exposes for sampling its
// three priority queues (core.FBF.QueueLen).
type queueLenner interface {
	QueueLen(queue int) int
}

// instant emits a point event at the current simulated time. Callers
// hold e.tr != nil.
func (e *engine) instant(track obs.Track, cat, name string, args ...obs.Arg) {
	e.tr.Emit(obs.Event{Name: name, Cat: cat, Ph: obs.PhaseInstant, Track: track, TS: e.sim.Now(), Args: args})
}

// coordArgs renders a chunk id as event args.
func coordArgs(id cache.ChunkID) []obs.Arg {
	return []obs.Arg{
		{Key: "stripe", Val: int64(id.Stripe)},
		{Key: "row", Val: int64(id.Cell.Row)},
		{Key: "col", Val: int64(id.Cell.Col)},
	}
}

// tracedRequest performs one cache lookup with the full cache event
// train: a hit/miss instant, an evict instant when the admission
// displaced residents, and a demote instant when an FBF hit moved the
// chunk between priority queues. Callers hold e.tr != nil; the
// untraced path calls w.cache.Request directly.
func (w *worker) tracedRequest(id cache.ChunkID) bool {
	e := w.engine
	var q1, q2, q3 int
	ql, hasQ := w.cache.(queueLenner)
	if hasQ {
		q1, q2, q3 = ql.QueueLen(1), ql.QueueLen(2), ql.QueueLen(3)
	}
	evBefore := w.cache.Stats().Evictions
	hit := w.cache.Request(id)
	name := "miss"
	if hit {
		name = "hit"
	}
	e.instant(w.lane(), obs.CatCache, name, coordArgs(id)...)
	if d := w.cache.Stats().Evictions - evBefore; d > 0 {
		e.instant(w.lane(), obs.CatCache, "evict", obs.Arg{Key: "count", Val: int64(d)})
	}
	if hasQ && hit {
		n1, n2, n3 := ql.QueueLen(1), ql.QueueLen(2), ql.QueueLen(3)
		if n1 != q1 || n2 != q2 || n3 != q3 {
			e.instant(w.lane(), obs.CatCache, "demote",
				obs.Arg{Key: "q1", Val: int64(n1)},
				obs.Arg{Key: "q2", Val: int64(n2)},
				obs.Arg{Key: "q3", Val: int64(n3)})
		}
	}
	return hit
}

// openChain records the start of one chunk repair (chain replay).
// Callers hold e.tr != nil.
func (w *worker) openChain(lost cache.ChunkID, fetch int) {
	w.obsChainOpen = true
	w.obsChainStart = w.engine.sim.Now()
	w.obsChainLost = lost
	w.obsChainFetch = fetch
}

// closeChain emits the open chunk-repair span, if any. aborted marks
// chains cut short by an escalation or a disk failure (their XOR never
// ran; the regenerated scheme repairs the chunk again).
func (w *worker) closeChain(aborted bool) {
	if !w.obsChainOpen {
		return
	}
	w.obsChainOpen = false
	e := w.engine
	ab := int64(0)
	if aborted {
		ab = 1
	}
	e.tr.Emit(obs.Event{
		Name: "repair", Cat: obs.CatChunk, Ph: obs.PhaseSpan,
		Track: w.lane(), TS: w.obsChainStart, Dur: e.sim.Now() - w.obsChainStart,
		Args: append(coordArgs(w.obsChainLost),
			obs.Arg{Key: "fetch", Val: int64(w.obsChainFetch)},
			obs.Arg{Key: "aborted", Val: ab}),
	})
}

// closeGroup emits the error-group span covering the whole repair of
// one partial stripe error. Callers hold e.tr != nil.
func (w *worker) closeGroup(stripe, chains int) {
	e := w.engine
	e.tr.Emit(obs.Event{
		Name: "group", Cat: obs.CatGroup, Ph: obs.PhaseSpan,
		Track: w.lane(), TS: w.obsGroupStart, Dur: e.sim.Now() - w.obsGroupStart,
		Args: []obs.Arg{
			{Key: "stripe", Val: int64(stripe)},
			{Key: "chains", Val: int64(chains)},
		},
	})
}

// traceSchemeGen emits the scheme-generation span. Its duration is the
// simulated charge (zero unless Config.ChargeSchemeGen folds measured
// wall time into the clock — note that doing so makes traces reflect
// host speed and therefore not byte-reproducible, exactly like
// Result.SchemeGenWall).
func (w *worker) traceSchemeGen(stripe, chains int, charge sim.Time) {
	e := w.engine
	e.tr.Emit(obs.Event{
		Name: "scheme-gen", Cat: obs.CatScheme, Ph: obs.PhaseSpan,
		Track: w.lane(), TS: e.sim.Now(), Dur: charge,
		Args: []obs.Arg{
			{Key: "stripe", Val: int64(stripe)},
			{Key: "chains", Val: int64(chains)},
		},
	})
}

// defaultRespBoundsMs buckets the response-time histogram the metrics
// registry collects (milliseconds).
var defaultRespBoundsMs = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// registerMetrics wires the run's time-series metrics into the
// registry: request/hit/miss counters, aggregate and per-disk in-flight
// I/O, FBF queue occupancy (when the policy exposes it), fault-ladder
// counters (when fault injection is armed) and a response-time
// histogram. Column order is fixed by registration order, so exports
// are byte-stable.
func (e *engine) registerMetrics(reg *obs.Registry) {
	reg.Gauge("requests", func() float64 { return float64(e.totalRequests) })
	reg.Gauge("hits", func() float64 { return float64(e.recHits) })
	reg.Gauge("misses", func() float64 { return float64(e.recMisses) })
	reg.Gauge("hit_ratio", func() float64 {
		if t := e.recHits + e.recMisses; t > 0 {
			return float64(e.recHits) / float64(t)
		}
		return 0
	})
	reg.Gauge("evictions", func() float64 {
		var s uint64
		for _, w := range e.workers {
			s += w.cache.Stats().Evictions
		}
		return float64(s)
	})
	reg.Gauge("cached_chunks", func() float64 {
		var s int
		for _, w := range e.workers {
			s += w.cache.Len()
		}
		return float64(s)
	})
	reg.Gauge("groups_done", func() float64 { return float64(e.groupsDone) })
	reg.Gauge("disks_inflight", func() float64 {
		var s int
		for i := 0; i < e.array.Disks(); i++ {
			s += e.array.Disk(i).InFlight()
		}
		return float64(s)
	})
	for i := 0; i < e.array.Disks(); i++ {
		d := e.array.Disk(i)
		reg.Gauge(fmt.Sprintf("disk%d_inflight", i), func() float64 { return float64(d.InFlight()) })
	}
	hasFBF := false
	for _, w := range e.workers {
		if _, ok := w.cache.(queueLenner); ok {
			hasFBF = true
			break
		}
	}
	if hasFBF {
		for q := 1; q <= 3; q++ {
			q := q
			reg.Gauge(fmt.Sprintf("fbf_q%d", q), func() float64 {
				var s int
				for _, w := range e.workers {
					if ql, ok := w.cache.(queueLenner); ok {
						s += ql.QueueLen(q)
					}
				}
				return float64(s)
			})
		}
	}
	if e.serving != nil {
		sv := e.serving
		reg.Gauge("serving_ops", func() float64 { return float64(sv.res.Ops()) })
		reg.Gauge("serving_failed", func() float64 { return float64(sv.res.FailedReads + sv.res.FailedWrites) })
		reg.Gauge("serving_p99_ms", func() float64 { return sv.res.P(0.99) })
	}
	if e.qos != nil {
		q := e.qos
		reg.Gauge("qos_rate", func() float64 { return q.rate })
	}
	if e.faults != nil {
		reg.Gauge("retries", func() float64 { return float64(e.retries) })
		reg.Gauge("escalations", func() float64 { return float64(e.escalations) })
		reg.Gauge("regenerations", func() float64 { return float64(e.regenerations) })
		reg.Gauge("replans", func() float64 { return float64(e.rePlans) })
		reg.Gauge("failed_reads", func() float64 { return float64(e.failedReads) })
		reg.Gauge("lost_chunks", func() float64 { return float64(len(e.lostChunks)) })
	}
	h, err := reg.Histogram("response_ms", defaultRespBoundsMs)
	if err != nil {
		panic(fmt.Sprintf("rebuild: response histogram: %v", err)) // fixed valid bounds
	}
	e.obsRespHist = h
}
