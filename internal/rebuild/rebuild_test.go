package rebuild

import (
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/disk"
	"fbf/internal/sim"
	"fbf/internal/trace"
)

func genErrors(t testing.TB, code *codes.Code, groups, stripes int, seed int64) []core.PartialStripeError {
	t.Helper()
	errors, err := trace.Generate(code, trace.Config{Groups: groups, Stripes: stripes, Seed: seed, Disk: -1})
	if err != nil {
		t.Fatal(err)
	}
	return errors
}

func TestRunBasicMetrics(t *testing.T) {
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 20, 100, 1)
	res, err := Run(Config{
		Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 4, CacheChunks: 64, Stripes: 100,
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 20 {
		t.Errorf("Groups = %d", res.Groups)
	}
	if res.TotalRequests == 0 || res.Cache.Requests() != res.TotalRequests {
		t.Errorf("requests: total=%d cache=%d", res.TotalRequests, res.Cache.Requests())
	}
	// Every miss is a disk read; hits read nothing.
	if res.DiskReads != res.Cache.Misses {
		t.Errorf("DiskReads %d != cache misses %d", res.DiskReads, res.Cache.Misses)
	}
	// One spare write per lost chunk.
	var lost uint64
	for _, e := range errors {
		lost += uint64(e.Size)
	}
	if res.DiskWrites != lost {
		t.Errorf("DiskWrites %d != lost chunks %d", res.DiskWrites, lost)
	}
	if res.Makespan <= 0 || res.AvgResponse() <= 0 {
		t.Errorf("timings: makespan %v avg %v", res.Makespan, res.AvgResponse())
	}
	if res.HitRatio() < 0 || res.HitRatio() > 1 {
		t.Errorf("hit ratio %f", res.HitRatio())
	}
}

func TestRunDeterministic(t *testing.T) {
	code := codes.MustNew("star", 5)
	errors := genErrors(t, code, 15, 60, 2)
	cfg := Config{Code: code, Policy: "fbf", Strategy: core.StrategyLooped, Workers: 3, CacheChunks: 30, Stripes: 60}
	a, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, errors)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cache != b.Cache || a.Makespan != b.Makespan || a.DiskReads != b.DiskReads || a.SumResponse != b.SumResponse {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestRunAllPoliciesAllCodes(t *testing.T) {
	for _, name := range codes.Names() {
		code := codes.MustNew(name, 5)
		errors := genErrors(t, code, 8, 40, 3)
		for _, policy := range []string{"fifo", "lru", "lfu", "arc", "fbf", "lru2", "2q", "opt"} {
			res, err := Run(Config{
				Code: code, Policy: policy, Strategy: core.StrategyLooped,
				Workers: 2, CacheChunks: 16, Stripes: 40,
			}, errors)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, policy, err)
			}
			if res.Cache.Requests() == 0 {
				t.Errorf("%s/%s: no requests", name, policy)
			}
		}
	}
}

func TestFBFOutperformsClassicPoliciesWhenCacheTight(t *testing.T) {
	// The paper's headline: with constrained cache, FBF beats FIFO, LRU,
	// LFU and ARC on hit ratio, disk reads, response time and
	// reconstruction time.
	code := codes.MustNew("tip", 13)
	errors := genErrors(t, code, 60, 300, 4)
	run := func(policy string) *Result {
		res, err := Run(Config{
			Code: code, Policy: policy, Strategy: core.StrategyLooped,
			Workers: 8, CacheChunks: 64, Stripes: 300, // 8 chunks per worker
		}, errors)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fbf := run("fbf")
	for _, baseline := range []string{"fifo", "lru", "lfu", "arc"} {
		b := run(baseline)
		if fbf.HitRatio() <= b.HitRatio() {
			t.Errorf("FBF hit ratio %.4f <= %s %.4f", fbf.HitRatio(), baseline, b.HitRatio())
		}
		if fbf.DiskReads >= b.DiskReads {
			t.Errorf("FBF disk reads %d >= %s %d", fbf.DiskReads, baseline, b.DiskReads)
		}
		if fbf.AvgResponse() >= b.AvgResponse() {
			t.Errorf("FBF response %v >= %s %v", fbf.AvgResponse(), baseline, b.AvgResponse())
		}
		if fbf.Makespan >= b.Makespan {
			t.Errorf("FBF makespan %v >= %s %v", fbf.Makespan, baseline, b.Makespan)
		}
	}
}

func TestHitRatioPlateausWithLargeCache(t *testing.T) {
	// With cache far larger than any working set, every policy converges
	// to the same hit ratio: shared requests hit, first touches miss.
	code := codes.MustNew("tip", 7)
	errors := genErrors(t, code, 20, 100, 5)
	var want float64
	for i, policy := range []string{"fbf", "lru", "fifo", "lfu", "arc"} {
		res, err := Run(Config{
			Code: code, Policy: policy, Strategy: core.StrategyLooped,
			Workers: 2, CacheChunks: 1 << 16, Stripes: 100,
		}, errors)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res.HitRatio()
			if want <= 0 {
				t.Fatal("plateau hit ratio should be positive")
			}
			continue
		}
		if res.HitRatio() != want {
			t.Errorf("%s plateau %.4f != %.4f", policy, res.HitRatio(), want)
		}
	}
}

func TestTypicalSchemeHasZeroHits(t *testing.T) {
	// Horizontal-only recovery shares nothing; with a cold cache every
	// request misses regardless of policy.
	code := codes.MustNew("triplestar", 7)
	errors := genErrors(t, code, 10, 50, 6)
	res, err := Run(Config{
		Code: code, Policy: "lru", Strategy: core.StrategyTypical,
		Workers: 2, CacheChunks: 1 << 12, Stripes: 50,
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Hits != 0 {
		t.Errorf("typical scheme produced %d hits", res.Cache.Hits)
	}
	if res.DiskReads != res.TotalRequests {
		t.Errorf("reads %d != requests %d", res.DiskReads, res.TotalRequests)
	}
}

func TestSkipSpareWrites(t *testing.T) {
	code := codes.MustNew("tip", 5)
	errors := genErrors(t, code, 5, 25, 7)
	res, err := Run(Config{
		Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 1, CacheChunks: 8, Stripes: 25, SkipSpareWrites: true,
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiskWrites != 0 {
		t.Errorf("DiskWrites = %d with SkipSpareWrites", res.DiskWrites)
	}
}

func TestChargeSchemeGenExtendsMakespan(t *testing.T) {
	code := codes.MustNew("star", 7)
	errors := genErrors(t, code, 10, 50, 8)
	base := Config{Code: code, Policy: "fbf", Strategy: core.StrategyLooped, Workers: 2, CacheChunks: 16, Stripes: 50}
	plain, err := Run(base, errors)
	if err != nil {
		t.Fatal(err)
	}
	charged := base
	charged.ChargeSchemeGen = true
	with, err := Run(charged, errors)
	if err != nil {
		t.Fatal(err)
	}
	if with.Makespan <= plain.Makespan {
		t.Errorf("charged makespan %v <= plain %v", with.Makespan, plain.Makespan)
	}
	if with.SchemeGenWall <= 0 || with.AvgSchemeGen() <= 0 {
		t.Error("scheme generation wall time not measured")
	}
}

func TestMoreWorkersFinishFaster(t *testing.T) {
	code := codes.MustNew("tip", 11)
	errors := genErrors(t, code, 40, 200, 9)
	run := func(workers int) sim.Time {
		res, err := Run(Config{
			Code: code, Policy: "lru", Strategy: core.StrategyLooped,
			Workers: workers, CacheChunks: 16 * workers, Stripes: 200,
		}, errors)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if serial, parallel := run(1), run(8); parallel >= serial {
		t.Errorf("8 workers (%v) not faster than 1 (%v)", parallel, serial)
	}
}

func TestPositionalModelRuns(t *testing.T) {
	code := codes.MustNew("tip", 5)
	errors := genErrors(t, code, 6, 30, 10)
	res, err := Run(Config{
		Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Workers: 2, CacheChunks: 8, Stripes: 30,
		ModelFor: func(i int) disk.Model {
			return disk.NewPositional(30*int64(codes.MustNew("tip", 5).Rows()), int64(i))
		},
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("positional run produced no time")
	}
}

func TestRunValidation(t *testing.T) {
	code := codes.MustNew("tip", 5)
	good := Config{Code: code, Policy: "lru", Workers: 1, CacheChunks: 4, Stripes: 10}
	cases := []func(*Config){
		func(c *Config) { c.Code = nil },
		func(c *Config) { c.Policy = "bogus" },
		func(c *Config) { c.Workers = -1 },
		func(c *Config) { c.CacheChunks = -1 },
		func(c *Config) { c.ChunkSize = -1 },
		func(c *Config) { c.Stripes = -1 },
		func(c *Config) { c.CacheAccess = -1 },
	}
	errs := []core.PartialStripeError{{Stripe: 0, Disk: 0, Row: 0, Size: 1}}
	for i, mutate := range cases {
		cfg := good
		mutate(&cfg)
		if _, err := Run(cfg, errs); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Errors beyond the array must be rejected.
	if _, err := Run(good, []core.PartialStripeError{{Stripe: 99, Disk: 0, Row: 0, Size: 1}}); err == nil {
		t.Error("out-of-array stripe accepted")
	}
	if _, err := Run(good, []core.PartialStripeError{{Stripe: 0, Disk: 99, Row: 0, Size: 1}}); err == nil {
		t.Error("invalid error accepted")
	}
}

func TestZeroCacheStillReconstructs(t *testing.T) {
	code := codes.MustNew("hdd1", 5)
	errors := genErrors(t, code, 4, 20, 11)
	res, err := Run(Config{
		Code: code, Policy: "fbf", Strategy: core.StrategyLooped,
		Workers: 2, CacheChunks: 0, Stripes: 20,
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Hits != 0 {
		t.Error("zero cache produced hits")
	}
	if res.DiskReads != res.TotalRequests {
		t.Error("zero cache should read every request from disk")
	}
}
