// Package rebuild runs partial-stripe reconstruction over the simulated
// disk array: it replays each error group's recovery scheme through a
// buffer cache, issues disk reads for misses, models XOR compute and
// spare-chunk writes, and collects the four metrics of the paper's
// evaluation (hit ratio, disk reads, response time, reconstruction
// time).
//
// The engine implements the paper's SOR-style parallel reconstruction:
// N workers each own a partition of the cache and repair one stripe's
// error group at a time; within a group, the chunk requests of one
// parity chain are looked up sequentially in the worker's cache (0.5 ms
// per access in the paper's configuration) with misses fetched from the
// array concurrently, then the chain XOR is computed and the recovered
// chunk written to the failed disk's spare area.
package rebuild

import (
	"fmt"
	"math/rand"
	"time"

	"fbf/internal/cache"
	"fbf/internal/chunk"
	"fbf/internal/core"
	"fbf/internal/disk"
	"fbf/internal/grid"
	"fbf/internal/obs"
	"fbf/internal/sim"
	"fbf/internal/stats"
)

// Config parameterizes one reconstruction run.
type Config struct {
	Code     core.Geometry
	Policy   string        // cache policy registry name ("fbf", "lru", ...)
	Strategy core.Strategy // recovery-scheme generation strategy

	Mode        Mode // SOR (default) or DOR parallelization
	Workers     int  // parallel reconstruction processes (the paper uses 128)
	CacheChunks int  // total cache capacity in chunks, split across workers
	ChunkSize   int  // bytes per chunk (the paper uses 32 KB)
	Stripes     int  // stripes on the array

	CacheAccess sim.Time // buffer access time (paper: 0.5 ms)
	XORPerChunk sim.Time // compute cost per chunk XORed into an accumulator

	// SkipSpareWrites drops the spare-write phase (hit-ratio-only runs
	// are much faster without them and the writes are policy-invariant).
	SkipSpareWrites bool

	// ModelFor overrides the per-disk service model (nil → the paper's
	// fixed 10 ms model).
	ModelFor func(i int) disk.Model

	// Scheduler selects every disk's queue discipline (FIFO, SSTF or
	// LOOK); the paper's DiskSim default corresponds to FIFO here.
	Scheduler disk.Scheduler

	// ResponseHistogramMs, when non-empty, collects a histogram of
	// per-request response times with the given bucket bounds (ms).
	ResponseHistogramMs []float64

	// ChargeSchemeGen adds the measured wall time of recovery-scheme
	// generation to the simulated clock, making the FBF overhead of
	// Table IV visible in reconstruction time.
	ChargeSchemeGen bool

	// App, when non-nil, issues a foreground application read workload
	// during reconstruction ("online recovery", Section V of the paper):
	// the requests share the workers' cache partitions and contend for
	// the disks, so recovery slows the application and vice versa.
	App *AppWorkload

	// Serving, when non-nil, runs the heavy-traffic serving scenario
	// instead: an open-loop Zipf read/write stream (serving.go) with
	// per-stripe-class latency percentiles and an optional adaptive QoS
	// throttle on rebuild I/O (qos.go). Mutually exclusive with App —
	// one foreground stream per run.
	Serving *ServingConfig

	// VerifyData makes the engine carry real chunk contents: each error
	// group's stripe is materialized and encoded, every selected chain
	// is XOR-verified to rebuild the lost chunk's bytes, and a mismatch
	// fails the run. Slower; meant for integrity tests.
	VerifyData bool

	// ErrorInterarrival staggers error detection: group i becomes known
	// at time i * ErrorInterarrival, modeling the paper's Figure 4
	// narrative where partial stripe errors are detected by proactive
	// scrubbing or on access, rather than all being known at time zero.
	// Zero means every group is available immediately.
	ErrorInterarrival sim.Time

	// Faults, when non-nil, arms deterministic fault injection: URE and
	// transient read errors drawn from Faults.Seed plus scheduled
	// whole-disk failures. See FaultConfig for the escalation ladder.
	// With Faults nil the fault machinery is fully disabled and every
	// metric is bit-identical to a build without it.
	Faults *FaultConfig

	// Tracer, when non-nil, receives the run's event stream: error-group
	// and chunk-repair spans, scheme-generation charges, cache
	// hit/miss/evict/demote instants, per-disk io spans and queue
	// counters, XOR spans and fault-ladder instants — all stamped in
	// simulated time, so a trace is bit-identical across hosts and
	// sweep parallelism (except under ChargeSchemeGen, which folds wall
	// time into the clock). Nil keeps every instrumentation site behind
	// a single branch with zero allocations.
	Tracer obs.Tracer

	// Metrics, when non-nil, registers the run's time-series gauges
	// (cache counters, per-disk in-flight I/O, FBF queue occupancy,
	// fault counters) plus a response-time histogram on the registry and
	// samples them every MetricsInterval of simulated time. A Registry
	// belongs to exactly one run: registration is ordered and re-use
	// would panic on duplicate names.
	Metrics *obs.Registry

	// MetricsInterval is the simulated sampling period for Metrics.
	// Zero selects the 10 ms default.
	MetricsInterval sim.Time
}

// AppWorkload parameterizes the foreground read stream of an online
// recovery run.
type AppWorkload struct {
	Requests     int      // total application reads to issue
	Interarrival sim.Time // gap between arrivals (default 1 ms)
	Seed         int64
	ZipfS        float64 // stripe-popularity skew; <= 1 means uniform

	// ErrorLocality is the probability that a request targets a stripe
	// with a partial stripe error — modeling the spatial locality the
	// paper cites (application traffic near failing regions). Such
	// requests probe the cache partition of the worker repairing that
	// stripe, so chunks the cache held for recovery can serve them.
	ErrorLocality float64
}

// Defaults fills unset fields with the paper's configuration.
func (c *Config) Defaults() {
	if c.Workers == 0 {
		c.Workers = 128
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 32 * 1024
	}
	if c.CacheAccess == 0 {
		c.CacheAccess = sim.Millisecond / 2
	}
	if c.XORPerChunk == 0 {
		// ~32 KB XOR at ~10 GB/s plus controller overhead.
		c.XORPerChunk = 10 * sim.Microsecond
	}
	if c.Stripes == 0 {
		c.Stripes = 1 << 16
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Code == nil {
		return fmt.Errorf("rebuild: nil code")
	}
	if _, err := cache.New(c.Policy, 0); err != nil {
		return err
	}
	if c.Workers <= 0 {
		return fmt.Errorf("rebuild: non-positive workers %d", c.Workers)
	}
	if c.CacheChunks < 0 {
		return fmt.Errorf("rebuild: negative cache size %d", c.CacheChunks)
	}
	if c.ChunkSize <= 0 {
		return fmt.Errorf("rebuild: non-positive chunk size %d", c.ChunkSize)
	}
	if c.Stripes <= 0 {
		return fmt.Errorf("rebuild: non-positive stripe count %d", c.Stripes)
	}
	if c.CacheAccess < 0 || c.XORPerChunk < 0 {
		return fmt.Errorf("rebuild: negative timing parameter")
	}
	if c.MetricsInterval < 0 {
		return &ConfigError{Field: "MetricsInterval", Reason: fmt.Sprintf("negative sampling interval %v", c.MetricsInterval)}
	}
	if c.MetricsInterval > 0 && c.Metrics == nil {
		return &ConfigError{Field: "MetricsInterval", Reason: "set without a Metrics registry"}
	}
	if c.App != nil {
		if c.App.Requests < 0 {
			return &ConfigError{Field: "App.Requests", Reason: fmt.Sprintf("negative request count %d", c.App.Requests)}
		}
		if c.App.ErrorLocality < 0 || c.App.ErrorLocality > 1 {
			return &ConfigError{Field: "App.ErrorLocality", Reason: fmt.Sprintf("probability %v outside [0, 1]", c.App.ErrorLocality)}
		}
		if c.App.ZipfS > 1 && c.Stripes == 1 {
			return &ConfigError{Field: "App.ZipfS", Reason: "Zipf-skewed stripe popularity needs at least 2 stripes"}
		}
	}
	if c.Serving != nil {
		if c.App != nil {
			return &ConfigError{Field: "Serving", Reason: "mutually exclusive with App (one foreground stream per run)"}
		}
		if err := c.Serving.validate(c); err != nil {
			return err
		}
	}
	if c.VerifyData {
		if _, ok := c.Code.(core.Rebuilder); !ok {
			return fmt.Errorf("rebuild: VerifyData requires a code implementing core.Rebuilder")
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(c.Code.Disks()); err != nil {
			return err
		}
		if c.SkipSpareWrites {
			return &ConfigError{
				Field:  "Faults",
				Reason: "fault injection requires spare writes (checkpointed chunks are re-read from their spare locations after a re-plan)",
			}
		}
	}
	return nil
}

// Result aggregates one run's metrics.
type Result struct {
	Policy   string
	Strategy core.Strategy

	Cache      cache.Stats // summed over workers
	DiskReads  uint64
	DiskWrites uint64

	Groups        int
	TotalRequests uint64   // chunk requests replayed through caches
	SumResponse   sim.Time // summed per-request response time
	Makespan      sim.Time // total reconstruction time

	SchemeGenWall time.Duration // wall time spent generating schemes
	XORChunks     uint64        // chunks folded into XOR accumulators

	// Online-recovery metrics (zero unless Config.App was set). The
	// application requests share the workers' caches, so Cache above
	// counts recovery requests only; AppHits/AppMisses count the
	// foreground stream.
	AppRequests    uint64
	AppHits        uint64
	AppSumResponse sim.Time

	// AppEvictions counts cache evictions triggered by the foreground
	// stream (Config.App's reads, or Config.Serving's probes).
	// Cache.Evictions above counts only evictions the recovery replay
	// itself caused; the streams share each worker's partition, so
	// without the split the foreground workload would silently inflate
	// the recovery eviction figure.
	AppEvictions uint64

	// Serving holds the foreground serving metrics (nil unless
	// Config.Serving was set). Note that DiskReads/DiskWrites above are
	// array totals and therefore include the foreground I/O in serving
	// mode; Serving.DiskReads/DiskWrites carry the foreground-issued
	// share.
	Serving *ServingResult

	// VerifiedChunks counts lost chunks whose recovered contents were
	// byte-verified (Config.VerifyData).
	VerifiedChunks uint64

	// PerDisk holds each disk's served-I/O counters, indexed by disk id;
	// useful for load-balance analysis.
	PerDisk []disk.Stats

	// ResponseHist is the per-request response-time histogram when
	// Config.ResponseHistogramMs was set (nil otherwise).
	ResponseHist *stats.Histogram

	// Fault-injection accounting (all zero unless Config.Faults was set).
	Retries       uint64 // transient read errors retried with backoff
	Regenerations uint64 // mid-group recovery-scheme regenerations
	Escalations   uint64 // chunks escalated to lost (URE or retry budget exhausted)
	RePlans       uint64 // whole-disk failures that re-planned the remaining work
	FailedReads   uint64 // recovery reads that completed with a fault

	// CheckpointedChunks counts rebuilt chunks a re-plan did NOT have to
	// rebuild again because their spare copies survived.
	CheckpointedChunks uint64

	// DataLoss reports that at least one chunk was unrecoverable even
	// through the GF(2) decoder fallback. Lost lists those chunks;
	// LostChunks/LostBytes aggregate them.
	DataLoss   bool
	Lost       []cache.ChunkID
	LostChunks int
	LostBytes  int64

	// VulnerabilityWindow is the simulated time of the last successful
	// chunk repair — the span during which the array ran with degraded
	// redundancy.
	VulnerabilityWindow sim.Time
}

// ReadBalance returns max/mean of per-disk read counts — 1.0 means
// perfectly balanced recovery reads.
func (r *Result) ReadBalance() float64 {
	if len(r.PerDisk) == 0 {
		return 0
	}
	var total, maxReads uint64
	for _, d := range r.PerDisk {
		total += d.Reads
		if d.Reads > maxReads {
			maxReads = d.Reads
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(r.PerDisk))
	return float64(maxReads) / mean
}

// AppHitRatio returns the foreground workload's hit ratio.
func (r *Result) AppHitRatio() float64 {
	if r.AppRequests == 0 {
		return 0
	}
	return float64(r.AppHits) / float64(r.AppRequests)
}

// AppAvgResponse returns the foreground workload's mean response time.
func (r *Result) AppAvgResponse() sim.Time {
	if r.AppRequests == 0 {
		return 0
	}
	return sim.Time(int64(r.AppSumResponse) / int64(r.AppRequests))
}

// HitRatio returns the aggregated cache hit ratio.
func (r *Result) HitRatio() float64 { return r.Cache.HitRatio() }

// AvgResponse returns the mean response time per chunk request.
func (r *Result) AvgResponse() sim.Time {
	if r.TotalRequests == 0 {
		return 0
	}
	return sim.Time(int64(r.SumResponse) / int64(r.TotalRequests))
}

// AvgSchemeGen returns the mean wall-clock scheme-generation time per
// error group — the paper's Table IV "temporal overhead".
func (r *Result) AvgSchemeGen() time.Duration {
	if r.Groups == 0 {
		return 0
	}
	return r.SchemeGenWall / time.Duration(r.Groups)
}

// cachePartition splits total cache chunks across n worker partitions
// as evenly as possible: every partition gets total/n chunks and the
// first total%n partitions get one extra, so no capacity is lost to
// integer division (with 1000 chunks and 128 workers the old plain
// division silently discarded 104 chunks — over 10% of the cache).
func cachePartition(total, n int) []int {
	if n <= 0 {
		return nil
	}
	base, extra := total/n, total%n
	parts := make([]int, n)
	for i := range parts {
		parts[i] = base
		if i < extra {
			parts[i]++
		}
	}
	return parts
}

// Run executes a reconstruction of the given error groups and returns
// the collected metrics.
//
// Concurrency contract: Run is safe to call from multiple goroutines
// simultaneously, including with a shared cfg.Code and a shared errors
// slice. It treats both as strictly read-only — geometry values
// (codes.Code, lrc.Code and their grid.Layout) are immutable after
// construction, and the error groups are never written. The
// experiments package's parallel sweeps rely on this invariant to run
// one generated trace through many concurrent policy/size runs;
// anything added to the engine or the geometry types must preserve it
// (internal/rebuild's concurrency test runs under -race to keep it
// honest).
func Run(cfg Config, errors []core.PartialStripeError) (*Result, error) {
	cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for _, e := range errors {
		if err := e.Validate(cfg.Code); err != nil {
			return nil, err
		}
		if e.Stripe >= cfg.Stripes {
			return nil, fmt.Errorf("rebuild: error %v beyond array stripes %d", e, cfg.Stripes)
		}
	}
	if cfg.Mode == ModeDOR {
		if cfg.App != nil || cfg.Serving != nil || cfg.VerifyData || len(cfg.ResponseHistogramMs) > 0 || cfg.ErrorInterarrival > 0 || cfg.Faults != nil || cfg.Tracer != nil || cfg.Metrics != nil {
			return nil, fmt.Errorf("rebuild: DOR mode does not support App, Serving, VerifyData, response histograms, staggered error arrival, fault injection or observability")
		}
		return runDOR(cfg, errors)
	}

	var faults *FaultConfig
	if cfg.Faults != nil {
		f := cfg.Faults.withDefaults()
		faults = &f
	}
	s := sim.New()
	arrayCfg := disk.ArrayConfig{
		Disks:     cfg.Code.Disks(),
		Rows:      cfg.Code.Rows(),
		Stripes:   cfg.Stripes,
		ChunkSize: cfg.ChunkSize,
		ModelFor:  cfg.ModelFor,
		Scheduler: cfg.Scheduler,
		Tracer:    cfg.Tracer,
	}
	var failAt map[int]sim.Time
	if faults != nil {
		failAt = armFaults(faults, &arrayCfg)
	}
	array, err := disk.NewArray(s, arrayCfg)
	if err != nil {
		return nil, err
	}

	e := &engine{cfg: cfg, sim: s, array: array, groups: errors, stripeOwner: make(map[int]int), tr: cfg.Tracer}
	if cfg.VerifyData {
		e.pool = chunk.NewPool(cfg.ChunkSize)
	}
	if faults != nil {
		e.faults = faults
		e.failedCols = make(map[int]bool)
		e.scheduleFailures(failAt)
	}
	e.available = len(errors)
	if cfg.ErrorInterarrival > 0 {
		e.available = 0
		for i := range errors {
			s.ScheduleAt(sim.Time(i)*cfg.ErrorInterarrival, e.arriveGroup)
		}
	}
	if len(cfg.ResponseHistogramMs) > 0 {
		e.respHist, err = stats.NewHistogram(cfg.ResponseHistogramMs)
		if err != nil {
			return nil, err
		}
	}
	workers := cfg.Workers
	if workers > len(errors) && len(errors) > 0 {
		workers = len(errors)
	}
	// Partition the cache by configured workers (idle partitions stay
	// reserved), distributing the division remainder so the full
	// configured capacity is usable.
	parts := cachePartition(cfg.CacheChunks, cfg.Workers)
	for i := 0; i < workers; i++ {
		policy, err := cache.New(cfg.Policy, parts[i])
		if err != nil {
			return nil, err
		}
		w := &worker{engine: e, id: i, cache: policy}
		w.doneFn = w.chainDone
		w.afterXORFn = w.afterXOR
		w.startChainFn = w.startChain
		w.issueNextFn = w.issueNext
		w.spareReq.Done = w.spareDone
		e.workers = append(e.workers, w)
		s.Schedule(0, w.nextGroup)
	}
	if cfg.App != nil && len(e.workers) > 0 {
		e.scheduleAppWorkload()
	}
	if cfg.Serving != nil {
		if err := e.startServing(errors); err != nil {
			return nil, err
		}
	}
	if cfg.Metrics != nil {
		e.registerMetrics(cfg.Metrics)
		interval := cfg.MetricsInterval
		if interval <= 0 {
			interval = 10 * sim.Millisecond
		}
		cfg.Metrics.Sample(0)
		s.Tick(interval, func(now sim.Time) { cfg.Metrics.Sample(now) })
	}
	s.Run()
	if e.verifyErr != nil {
		return nil, e.verifyErr
	}

	res := &Result{
		Policy:         cfg.Policy,
		Strategy:       cfg.Strategy,
		Groups:         len(errors),
		TotalRequests:  e.totalRequests,
		SumResponse:    e.sumResponse,
		Makespan:       e.recoveryEnd,
		SchemeGenWall:  e.schemeWall,
		XORChunks:      e.xorChunks,
		AppRequests:    e.appHits + e.appMisses,
		AppHits:        e.appHits,
		AppSumResponse: e.appSumResponse,
		VerifiedChunks: e.verifiedChunks,
	}
	res.Cache.Hits = e.recHits
	res.Cache.Misses = e.recMisses
	for _, w := range e.workers {
		res.Cache.Evictions += w.cache.Stats().Evictions
	}
	// The per-worker caches count every eviction regardless of which
	// stream caused it; attribute the foreground-induced ones separately.
	res.Cache.Evictions -= e.appEvictions
	res.AppEvictions = e.appEvictions
	if e.serving != nil {
		sr := e.serving.res
		if e.qos != nil {
			sr.QoSTrace = e.qos.steps
			sr.FinalRebuildRate = e.qos.rate
			sr.ThrottleDelay = e.qos.throttleDelay
		}
		res.Serving = sr
	}
	total := array.TotalStats()
	res.DiskReads = total.Reads
	res.DiskWrites = total.Writes
	res.ResponseHist = e.respHist
	if e.faults != nil {
		res.Retries = e.retries
		res.Regenerations = e.regenerations
		res.Escalations = e.escalations
		res.RePlans = e.rePlans
		res.FailedReads = e.failedReads
		res.CheckpointedChunks = e.checkpointed
		res.Lost = e.lostChunks
		res.LostChunks = len(e.lostChunks)
		res.LostBytes = int64(len(e.lostChunks)) * int64(cfg.ChunkSize)
		res.DataLoss = len(e.lostChunks) > 0
		res.VulnerabilityWindow = e.lastRepair
	}
	for i := 0; i < array.Disks(); i++ {
		res.PerDisk = append(res.PerDisk, array.Disk(i).Stats())
	}
	return res, nil
}

// engine holds the run-wide state shared by workers.
type engine struct {
	cfg    Config
	sim    *sim.Simulator
	array  *disk.Array
	groups []core.PartialStripeError
	next   int

	workers       []*worker
	available     int       // groups detected so far (= len(groups) unless staggered)
	idle          []*worker // workers parked waiting for error arrivals
	totalRequests uint64
	sumResponse   sim.Time
	schemeWall    time.Duration
	xorChunks     uint64
	recoveryEnd   sim.Time
	recHits       uint64
	recMisses     uint64

	appHits        uint64
	appMisses      uint64
	appSumResponse sim.Time
	appEvictions   uint64
	stripeOwner    map[int]int // stripe -> worker id that repaired it

	// Serving-mode state (nil unless Config.Serving was set).
	serving *servingState
	qos     *qosController

	verifiedChunks uint64
	verifyErr      error
	respHist       *stats.Histogram

	// pool recycles the chunk buffers the VerifyData mode carries (stripe
	// materializations and XOR accumulators); nil when no run data path
	// needs real bytes.
	pool *chunk.Pool

	// Observability (nil unless Config.Tracer / Config.Metrics was set).
	tr          obs.Tracer
	obsRespHist *stats.Histogram // "response_ms" metric histogram
	groupsDone  int

	// Fault-injection state (nil / zero unless Config.Faults was set).
	faults        *FaultConfig // defaulted copy
	failedCols    map[int]bool // columns of dead disks
	retries       uint64
	regenerations uint64
	escalations   uint64
	rePlans       uint64
	failedReads   uint64
	checkpointed  uint64
	lostChunks    []cache.ChunkID
	lastRepair    sim.Time
}

// arriveGroup makes one more error group available and wakes a parked
// worker if any.
func (e *engine) arriveGroup() {
	e.available++
	if len(e.idle) > 0 {
		w := e.idle[len(e.idle)-1]
		e.idle = e.idle[:len(e.idle)-1]
		w.nextGroup()
	}
}

// recordResponse accumulates one recovery request's response time.
func (e *engine) recordResponse(t sim.Time) {
	e.sumResponse += t
	if e.respHist != nil {
		e.respHist.Add(t.Milliseconds())
	}
	if e.obsRespHist != nil {
		e.obsRespHist.Add(t.Milliseconds())
	}
}

// worker repairs one error group at a time (stripe-oriented
// reconstruction), owning a private cache partition.
//
// The chain replay is a state machine over preallocated fields rather
// than per-chain closures: chains run strictly one at a time per
// worker, so the current chain (curSel), its fetch barrier counter
// (outstanding) and the spare-write request all live on the worker and
// are reused for every chain of every group. The callbacks the
// simulator and disks invoke (doneFn, afterXORFn, startChainFn,
// spareReq.Done) are bound once at construction — the old code
// allocated a done/barrier closure pair per chain plus one closure per
// miss, which dominated the rebuild hot path's allocations.
type worker struct {
	engine *engine
	id     int
	cache  cache.Policy

	scheme    *core.Scheme
	chainIdx  int
	stripe    []chunk.Chunk // materialized contents when VerifyData is set
	stripeBuf []chunk.Chunk // reusable slice header for pooled stripes

	// Chain state machine (reused across chains).
	curSel       core.SelectedChain
	outstanding  int    // lookup phase + in-flight miss fetches
	doneFn       func() // prebound chainDone
	afterXORFn   func() // prebound afterXOR
	startChainFn func() // prebound startChain (for Schedule sites)

	// Spare-write state (one write in flight per worker at most).
	spareReq     disk.Request // Done prebound to spareDone
	spareTarget  int
	spareAddr    int64
	spareIssueFn func() // prebound issueSpare, created lazily for the QoS-delayed path

	// freeOps recycles fetch operations; each op embeds its disk.Request
	// and implements disk.Handler, so a steady-state miss fetch allocates
	// nothing. pendHead/pendTail queue ops awaiting their lookup
	// completion (issued in FIFO order by issueNextFn).
	freeOps     *fetchOp
	pendHead    *fetchOp
	pendTail    *fetchOp
	issueNextFn func() // prebound issueNext

	// Fault state for the group in progress (Config.Faults only).
	recovered map[grid.Coord]spareLoc // checkpointed chunks → spare location
	escalated []grid.Coord            // cells escalated to lost, in order
	escalSet  map[grid.Coord]bool
	aborted   bool // current chain hit an escalation; regenerate at the barrier
	regen     bool // a disk failed since the scheme was generated; re-plan

	// Trace state (Config.Tracer only; see obs.go).
	obsGroupStart sim.Time
	obsChainStart sim.Time
	obsChainLost  cache.ChunkID
	obsChainFetch int
	obsChainOpen  bool
}

// ownerWorker returns the cache partition a stripe's requests probe:
// the worker that repaired (or will repair) it when known, otherwise a
// stable hash partition.
func (e *engine) ownerWorker(stripe int) *worker {
	if wid, ok := e.stripeOwner[stripe]; ok {
		return e.workers[wid]
	}
	return e.workers[stripe%len(e.workers)]
}

// scheduleAppWorkload arms the foreground read stream: requests arrive
// at fixed intervals, target Zipf- or uniformly-distributed stripes,
// probe the cache partition owning the stripe, and read from disk on a
// miss.
func (e *engine) scheduleAppWorkload() {
	app := e.cfg.App
	inter := app.Interarrival
	if inter <= 0 {
		inter = sim.Millisecond
	}
	rng := rand.New(rand.NewSource(app.Seed))
	var zipf *rand.Zipf
	if app.ZipfS > 1 {
		zipf = rand.NewZipf(rng, app.ZipfS, 1, uint64(e.cfg.Stripes-1))
	}
	layout := e.cfg.Code.Layout()
	for i := 0; i < app.Requests; i++ {
		stripe := 0
		if len(e.groups) > 0 && rng.Float64() < app.ErrorLocality {
			stripe = e.groups[rng.Intn(len(e.groups))].Stripe
		} else if zipf != nil {
			stripe = int(zipf.Uint64())
		} else {
			stripe = rng.Intn(e.cfg.Stripes)
		}
		cell := grid.Coord{Row: rng.Intn(layout.Rows()), Col: rng.Intn(layout.Cols())}
		at := sim.Time(i+1) * inter
		e.sim.ScheduleAt(at, func() {
			owner := e.ownerWorker(stripe)
			id := cache.ChunkID{Stripe: stripe, Cell: cell}
			evBefore := owner.cache.Stats().Evictions
			hit := owner.cache.Request(id)
			e.appEvictions += owner.cache.Stats().Evictions - evBefore
			if hit {
				e.appHits++
				e.appSumResponse += e.cfg.CacheAccess
				if e.tr != nil {
					e.instant(engineLane, obs.CatApp, "app-hit", coordArgs(id)...)
				}
				return
			}
			e.appMisses++
			if e.tr != nil {
				e.instant(engineLane, obs.CatApp, "app-miss", coordArgs(id)...)
			}
			err := e.array.ReadChunk(stripe, cell, func(issued, completed sim.Time) {
				e.appSumResponse += e.cfg.CacheAccess + (completed - issued)
			})
			if err != nil {
				panic(fmt.Sprintf("rebuild: app read failed: %v", err))
			}
		})
	}
}

// materializeStripe deterministically fills and encodes the stripe an
// error group lives on, so recovered chunks can be byte-verified. The
// chunk buffers come from the engine's pool when the code supports
// in-place materialization (core.RebuilderInto) — GetRaw, because every
// byte is overwritten; releaseStripe returns them after the group.
func (w *worker) materializeStripe(stripeIdx int) []chunk.Chunk {
	e := w.engine
	seed := int64(stripeIdx) + 0x5EED
	ri, ok := e.cfg.Code.(core.RebuilderInto)
	if !ok || e.pool == nil {
		rb := e.cfg.Code.(core.Rebuilder) // checked in Run
		return rb.MaterializeStripe(seed, e.cfg.ChunkSize)
	}
	cells := e.cfg.Code.Layout().Cells()
	s := w.stripeBuf
	if cap(s) < cells {
		s = make([]chunk.Chunk, 0, cells)
	}
	s = s[:0]
	for i := 0; i < cells; i++ {
		s = append(s, e.pool.GetRaw())
	}
	w.stripeBuf = s
	ri.MaterializeStripeInto(s, seed)
	return s
}

// releaseStripe returns pooled stripe buffers after a group completes.
func (w *worker) releaseStripe() {
	if w.stripe == nil {
		return
	}
	if _, ok := w.engine.cfg.Code.(core.RebuilderInto); ok && w.engine.pool != nil {
		for _, c := range w.stripe {
			w.engine.pool.Put(c)
		}
	}
	w.stripe = nil
}

// verifyChain checks that rebuilding from the chain's other members
// reproduces the lost chunk's contents. Decoded chains (GF(2) fallback
// after escalation) carry no parity chain; their fetch set's XOR is
// checked directly.
func (w *worker) verifyChain(sel core.SelectedChain) {
	e := w.engine
	rb := e.cfg.Code.(core.Rebuilder)
	var got chunk.Chunk
	var pooled bool
	var err error
	switch {
	case sel.Decoded && e.pool != nil && len(sel.Fetch) > 0:
		// Copy-first accumulation into a dirty pooled buffer: the first
		// member overwrites every byte, so GetRaw skips a redundant clear.
		got = e.pool.GetRaw()
		pooled = true
		copy(got, w.stripe[core.CellIndex(rb.Layout(), sel.Fetch[0])])
		for _, m := range sel.Fetch[1:] {
			chunk.XORInto(got, w.stripe[core.CellIndex(rb.Layout(), m)])
		}
	case sel.Decoded:
		acc := chunk.New(e.cfg.ChunkSize)
		for _, m := range sel.Fetch {
			chunk.XORInto(acc, w.stripe[core.CellIndex(rb.Layout(), m)])
		}
		got = acc
	default:
		if ri, ok := rb.(core.RebuilderInto); ok && e.pool != nil {
			got = e.pool.GetRaw()
			pooled = true
			err = ri.RebuildChunkInto(got, sel.Chain, sel.Lost, w.stripe)
		} else {
			got, err = rb.RebuildChunk(sel.Chain, sel.Lost, w.stripe)
		}
	}
	if err == nil && !got.Equal(w.stripe[core.CellIndex(rb.Layout(), sel.Lost)]) {
		err = fmt.Errorf("rebuild: recovered chunk %v of %v does not match original contents", sel.Lost, w.scheme.Err)
	}
	if pooled {
		e.pool.Put(got)
	}
	if err != nil {
		if e.verifyErr == nil {
			e.verifyErr = err
		}
		return
	}
	e.verifiedChunks++
}

// nextGroup claims the next unprocessed error group and starts its
// recovery; with none left the worker goes idle.
func (w *worker) nextGroup() {
	e := w.engine
	if e.next >= len(e.groups) {
		// This worker retires; the latest retirement time is the
		// reconstruction makespan.
		if e.sim.Now() > e.recoveryEnd {
			e.recoveryEnd = e.sim.Now()
		}
		return
	}
	if e.next >= e.available {
		// Detected errors are all being handled; park until the next
		// arrival (staggered-detection mode).
		e.idle = append(e.idle, w)
		return
	}
	group := e.groups[e.next]
	e.next++
	e.stripeOwner[group.Stripe] = w.id
	if e.tr != nil {
		w.obsGroupStart = e.sim.Now()
	}
	if e.cfg.VerifyData {
		w.stripe = w.materializeStripe(group.Stripe)
	}

	start := time.Now()
	var scheme *core.Scheme
	var err error
	if len(e.failedCols) > 0 {
		// Disks have failed since the run started: plan around their
		// columns from the outset, accounting unsolvable cells as lost.
		repair := group.LostCells()
		inRepair := make(map[grid.Coord]bool, len(repair))
		for _, c := range repair {
			inRepair[c] = true
		}
		unavailable := e.unavailableCells(func(c grid.Coord) bool { return inRepair[c] })
		var lost []grid.Coord
		scheme, lost, err = core.RegenerateScheme(e.cfg.Code, group, repair, unavailable, e.cfg.Strategy)
		for _, c := range lost {
			e.loseChunk(cache.ChunkID{Stripe: group.Stripe, Cell: c})
		}
	} else {
		scheme, err = core.GenerateScheme(e.cfg.Code, group, e.cfg.Strategy)
	}
	wall := time.Since(start)
	e.schemeWall += wall
	if err != nil {
		// Validated upfront; a failure here is a bug worth surfacing.
		panic(fmt.Sprintf("rebuild: scheme generation failed mid-run: %v", err))
	}
	w.installScheme(scheme, wall)
}

// installScheme adopts a freshly generated (or regenerated) scheme:
// priorities and future knowledge are pushed into the cache and chain
// replay starts, after the scheme-generation charge if configured.
func (w *worker) installScheme(scheme *core.Scheme, wall time.Duration) {
	e := w.engine
	w.scheme = scheme
	w.chainIdx = 0
	if pa, ok := w.cache.(cache.PriorityAware); ok {
		pa.SetPriorities(scheme.PriorityIDs())
	}
	if fa, ok := w.cache.(cache.FutureAware); ok {
		fa.SetFuture(scheme.RequestIDs())
	}
	if e.cfg.ChargeSchemeGen {
		charge := sim.Time(wall.Nanoseconds())
		if e.tr != nil {
			w.traceSchemeGen(scheme.Err.Stripe, len(scheme.Selected), charge)
		}
		e.sim.Schedule(charge, w.startChainFn)
		return
	}
	if e.tr != nil {
		w.traceSchemeGen(scheme.Err.Stripe, len(scheme.Selected), 0)
	}
	w.startChain()
}

// startChain replays one selected chain: sequential cache lookups with
// concurrent disk fetches for the misses, then XOR compute and the spare
// write for the recovered chunk.
func (w *worker) startChain() {
	e := w.engine
	if w.aborted || w.regen {
		if e.tr != nil {
			w.closeChain(true)
		}
		w.regenerate()
		return
	}
	if e.tr != nil {
		// The previous chain (if any) ran to completion; its span ends at
		// the spare-write completion that re-entered us.
		w.closeChain(false)
	}
	if w.chainIdx >= len(w.scheme.Selected) {
		e.groupsDone++
		if e.tr != nil {
			w.closeGroup(w.scheme.Err.Stripe, len(w.scheme.Selected))
		}
		w.scheme = nil
		w.releaseStripe()
		w.recovered, w.escalated, w.escalSet = nil, nil, nil
		w.nextGroup()
		return
	}
	sel := w.scheme.Selected[w.chainIdx]
	w.chainIdx++
	w.curSel = sel
	stripe := w.scheme.Err.Stripe
	if e.tr != nil {
		w.openChain(cache.ChunkID{Stripe: stripe, Cell: sel.Lost}, len(sel.Fetch))
	}

	w.outstanding = 1 // the lookup phase itself

	// Sequential lookups: lookup i completes at (i+1) * CacheAccess from
	// now. Policy calls happen in request order; a miss issues its disk
	// read at its own lookup completion time.
	now := e.sim.Now()
	for i, cell := range sel.Fetch {
		e.totalRequests++
		id := cache.ChunkID{Stripe: stripe, Cell: cell}
		var hit bool
		if e.tr != nil {
			hit = w.tracedRequest(id)
		} else {
			hit = w.cache.Request(id)
		}
		lookupDone := now + sim.Time(i+1)*e.cfg.CacheAccess
		if hit {
			e.recHits++
			// A hit's data is available when its lookup completes — after
			// the i earlier sequential accesses of the chain plus its own,
			// so the response time includes the queueing delay. (Misses
			// charge relative to their own lookup completion, when the
			// disk read is issued.)
			e.recordResponse(sim.Time(i+1) * e.cfg.CacheAccess)
			continue
		}
		e.recMisses++
		w.outstanding++
		o := w.getFetchOp()
		o.stripe, o.cell, o.id, o.attempt = stripe, cell, id, 0
		w.pushPending(o)
		e.sim.ScheduleAt(lookupDone, w.issueNextFn)
	}
	// The lookup phase ends after the last sequential access.
	e.sim.ScheduleAt(now+sim.Time(len(sel.Fetch))*e.cfg.CacheAccess, w.doneFn)
}

// chainDone retires one of the current chain's outstanding parts (the
// lookup phase or a miss fetch); the last one through runs the barrier.
func (w *worker) chainDone() {
	w.outstanding--
	if w.outstanding == 0 {
		w.barrier()
	}
}

// barrier runs when the current chain's lookups and fetches have all
// completed: XOR the fetched chunks, then write the recovered chunk to
// the failed disk's spare area.
func (w *worker) barrier() {
	e := w.engine
	if w.aborted || w.regen {
		// The chain's fetches are incomplete (escalated chunk or dead
		// disk); its XOR would be garbage. Re-plan instead.
		if e.tr != nil {
			w.closeChain(true)
		}
		w.regenerate()
		return
	}
	sel := w.curSel
	e.xorChunks += uint64(len(sel.Fetch))
	if e.cfg.VerifyData {
		w.verifyChain(sel)
	}
	xor := e.cfg.XORPerChunk * sim.Time(len(sel.Fetch))
	if e.tr != nil {
		e.tr.Emit(obs.Event{Name: "xor", Cat: obs.CatXOR, Ph: obs.PhaseSpan,
			Track: w.lane(), TS: e.sim.Now(), Dur: xor,
			Args: []obs.Arg{{Key: "chunks", Val: int64(len(sel.Fetch))}}})
	}
	e.sim.Schedule(xor, w.afterXORFn)
}

// afterXOR runs when the chain's XOR compute charge has elapsed.
func (w *worker) afterXOR() {
	if w.engine.cfg.SkipSpareWrites {
		// Without spare writes the repair is complete here.
		if sv := w.engine.serving; sv != nil {
			sv.repaired(w.scheme.Err.Stripe, w.curSel.Lost)
		}
		w.startChain()
		return
	}
	w.writeRecovered(w.curSel)
}
