package rebuild

import (
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
)

// TestVerifyDataDoesNotPerturbSimulation pins the separation between
// the data plane and the timing plane: carrying and XOR-checking real
// chunk contents (VerifyData) must leave every simulation observable —
// cache behaviour, disk traffic, response times, makespan — bit-for-bit
// identical to the contents-free run. A drift here would mean the
// conformance harness and the performance experiments are measuring
// different systems.
func TestVerifyDataDoesNotPerturbSimulation(t *testing.T) {
	for _, name := range codes.Names() {
		code := codes.MustNew(name, 5)
		errors := genErrors(t, code, 16, 80, 33)
		for _, policy := range []string{"fbf", "lru"} {
			base := Config{
				Code: code, Policy: policy, Strategy: core.StrategyLooped,
				Workers: 4, CacheChunks: 24, Stripes: 80, ChunkSize: 128,
			}
			plain, err := Run(base, errors)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, policy, err)
			}
			base.VerifyData = true
			verified, err := Run(base, errors)
			if err != nil {
				t.Fatalf("%s/%s verify: %v", name, policy, err)
			}
			if plain.Cache != verified.Cache {
				t.Errorf("%s/%s: cache stats drift: %+v vs %+v", name, policy, plain.Cache, verified.Cache)
			}
			if plain.DiskReads != verified.DiskReads || plain.DiskWrites != verified.DiskWrites {
				t.Errorf("%s/%s: disk traffic drift: %d/%d vs %d/%d reads/writes",
					name, policy, plain.DiskReads, plain.DiskWrites, verified.DiskReads, verified.DiskWrites)
			}
			if plain.SumResponse != verified.SumResponse || plain.Makespan != verified.Makespan {
				t.Errorf("%s/%s: timing drift: response %v vs %v, makespan %v vs %v",
					name, policy, plain.SumResponse, verified.SumResponse, plain.Makespan, verified.Makespan)
			}
			if plain.VerifiedChunks != 0 || verified.VerifiedChunks == 0 {
				t.Errorf("%s/%s: VerifiedChunks %d/%d, want 0 without and >0 with VerifyData",
					name, policy, plain.VerifiedChunks, verified.VerifiedChunks)
			}
		}
	}
}
