package rebuild

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/sim"
	"fbf/internal/stats"
)

func TestAIMDNextSpec(t *testing.T) {
	cfg := QoSConfig{
		SLOp99Ms: 50, MinRate: 5, MaxRate: 400, Increase: 10, Decrease: 0.5,
	}
	cases := []struct {
		rate     float64
		breached bool
		want     float64
	}{
		{100, false, 110},  // additive increase
		{100, true, 50},    // multiplicative decrease
		{395, false, 400},  // increase clamps at ceiling
		{400, false, 400},  // stays at ceiling
		{8, true, 5},       // decrease clamps at floor
		{5, true, 5},       // stays at floor
		{5, false, 15},     // recovers from the floor additively
		{12, true, 6},      // plain halving above the floor
		{399.5, false, 400},
	}
	for _, c := range cases {
		if got := AIMDNext(c.rate, c.breached, cfg); got != c.want {
			t.Errorf("AIMDNext(%v, %v) = %v, want %v", c.rate, c.breached, got, c.want)
		}
	}
	// Defaults fill zero fields: Increase 10, Decrease 0.5, clamp [5, 400].
	if got := AIMDNext(100, false, QoSConfig{SLOp99Ms: 1}); got != 110 {
		t.Errorf("defaulted increase: got %v, want 110", got)
	}
	if got := AIMDNext(100, true, QoSConfig{SLOp99Ms: 1}); got != 50 {
		t.Errorf("defaulted decrease: got %v, want 50", got)
	}
	if got := AIMDNext(1000, false, QoSConfig{SLOp99Ms: 1}); got != 400 {
		t.Errorf("defaulted ceiling: got %v, want 400", got)
	}
}

// modelCheckTrace replays a recorded AIMD trace against the pure spec:
// every window's rate transition must be AIMDNext of its predecessor,
// the verdict must match the recorded p99 against the SLO, and
// consecutive steps must chain (RateBefore == previous RateAfter).
func modelCheckTrace(t *testing.T, steps []AIMDStep, cfg QoSConfig) {
	t.Helper()
	d := cfg.withDefaults()
	prev := d.InitialRate
	var lastAt sim.Time
	for i, s := range steps {
		if s.RateBefore != prev {
			t.Fatalf("step %d: RateBefore = %v, want %v (chain broken)", i, s.RateBefore, prev)
		}
		if s.Breached != (s.P99Ms > d.SLOp99Ms) {
			t.Fatalf("step %d: Breached = %v with p99 %v vs SLO %v", i, s.Breached, s.P99Ms, d.SLOp99Ms)
		}
		if want := AIMDNext(s.RateBefore, s.Breached, cfg); s.RateAfter != want {
			t.Fatalf("step %d: RateAfter = %v, want AIMDNext = %v", i, s.RateAfter, want)
		}
		if s.WindowOps < uint64(d.MinSamples) {
			t.Fatalf("step %d: judged %d ops below sample floor %d", i, s.WindowOps, d.MinSamples)
		}
		if i > 0 && s.At <= lastAt {
			t.Fatalf("step %d: decision time %v not after previous %v", i, s.At, lastAt)
		}
		prev, lastAt = s.RateAfter, s.At
	}
}

// TestAIMDControllerModelCheck drives the running controller through
// >= 10k judged windows of seeded pseudo-random latencies and verifies
// every recorded step against an independent shadow histogram and the
// pure AIMDNext spec.
func TestAIMDControllerModelCheck(t *testing.T) {
	cfg := QoSConfig{SLOp99Ms: 40, MinSamples: 8, InitialRate: 120}
	q := newQoSController(cfg, 4)
	shadow, err := stats.NewHistogram(qosWindowBoundsMs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	const windows = 19_000
	now := sim.Time(0)
	rate := q.cfg.InitialRate
	judged := 0
	for w := 0; w < windows; w++ {
		// Vary the sample count; some windows stay under the floor and
		// must accumulate into the next judgment instead of stepping.
		n := rng.Intn(14)
		for i := 0; i < n; i++ {
			// Log-uniform latency 0.5 .. 500 ms straddling the SLO.
			ms := 0.5 * math.Pow(10, rng.Float64()*3)
			q.observe(ms)
			shadow.Add(ms)
		}
		now += q.cfg.Window
		before := len(q.steps)
		q.tick(now)
		if shadow.Total() < uint64(q.cfg.MinSamples) {
			if len(q.steps) != before {
				t.Fatalf("window %d: stepped on %d samples below floor %d", w, shadow.Total(), q.cfg.MinSamples)
			}
			continue
		}
		if len(q.steps) != before+1 {
			t.Fatalf("window %d: no step despite %d samples", w, shadow.Total())
		}
		s := q.steps[before]
		if s.At != now {
			t.Fatalf("window %d: At = %v, want %v", w, s.At, now)
		}
		if s.WindowOps != shadow.Total() {
			t.Fatalf("window %d: WindowOps = %d, shadow %d", w, s.WindowOps, shadow.Total())
		}
		if p99 := shadow.Quantile(0.99); s.P99Ms != p99 {
			t.Fatalf("window %d: P99Ms = %v, shadow %v", w, s.P99Ms, p99)
		}
		if s.Breached != (s.P99Ms > cfg.SLOp99Ms) {
			t.Fatalf("window %d: Breached = %v with p99 %v", w, s.Breached, s.P99Ms)
		}
		if s.RateBefore != rate {
			t.Fatalf("window %d: RateBefore = %v, want %v", w, s.RateBefore, rate)
		}
		if want := AIMDNext(rate, s.Breached, cfg); s.RateAfter != want || q.rate != want {
			t.Fatalf("window %d: RateAfter = %v (controller %v), want %v", w, s.RateAfter, q.rate, want)
		}
		rate = s.RateAfter
		shadow.Reset()
		judged++
	}
	if judged < 10_000 {
		t.Fatalf("judged only %d windows, want >= 10000", judged)
	}
	modelCheckTrace(t, q.steps, cfg)
	if got := q.rate; got < q.cfg.MinRate || got > q.cfg.MaxRate {
		t.Errorf("final rate %v escaped [%v, %v]", got, q.cfg.MinRate, q.cfg.MaxRate)
	}
}

func TestTokenBucketPacing(t *testing.T) {
	var b tokenBucket
	const rate, burst = 100, 2 // 100 tokens/s => 10 ms apart once drained
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Millisecond }
	// The burst issues immediately; overdraws space 1/rate apart.
	for i, want := range []sim.Time{0, 0, ms(10), ms(20), ms(30)} {
		if got := b.reserve(0, rate, burst); got != want {
			t.Fatalf("reserve %d at t=0: got %v, want %v", i, got, want)
		}
	}
	// A reservation arriving mid-queue books after the booked backlog.
	if got := b.reserve(ms(5), rate, burst); got != ms(40) {
		t.Fatalf("queued reserve at t=5ms: got %v, want 40ms", got)
	}
	// After a long idle stretch the bucket refills, capped at burst: two
	// immediate issues, then spacing resumes.
	idle := sim.Time(2) * sim.Second
	for i, want := range []sim.Time{idle, idle, idle + ms(10)} {
		if got := b.reserve(idle, rate, burst); got != want {
			t.Fatalf("post-idle reserve %d: got %v, want %v", i, got, want)
		}
	}
}

func TestTokenBucketZeroRate(t *testing.T) {
	var b tokenBucket
	// The burst drains normally; with no refill rate further reservations
	// must not wedge — they issue immediately.
	for i := 0; i < 6; i++ {
		if got := b.reserve(sim.Millisecond, 0, 3); got != sim.Millisecond {
			t.Fatalf("reserve %d at zero rate: got %v, want now", i, got)
		}
	}
}

func TestQoSGateAccountsDelay(t *testing.T) {
	q := newQoSController(QoSConfig{SLOp99Ms: 50, InitialRate: 100, Burst: 1}, 2)
	if at := q.gate(0, 0); at != 0 {
		t.Fatalf("first gate: got %v, want 0", at)
	}
	at := q.gate(0, 0)
	if at != 10*sim.Millisecond {
		t.Fatalf("second gate: got %v, want 10ms", at)
	}
	if q.throttleDelay != 10*sim.Millisecond {
		t.Fatalf("throttleDelay = %v, want 10ms", q.throttleDelay)
	}
	// Disks index independent buckets; out-of-range disks pass through.
	if at := q.gate(1, 0); at != 0 {
		t.Fatalf("disk 1 first gate: got %v, want 0", at)
	}
	if at := q.gate(-1, 5); at != 5 {
		t.Fatalf("out-of-range gate: got %v, want now", at)
	}
	if at := q.gate(7, 5); at != 5 {
		t.Fatalf("out-of-range gate: got %v, want now", at)
	}
}

func TestQoSConfigValidate(t *testing.T) {
	if err := (&QoSConfig{SLOp99Ms: 30}).Validate(); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	bad := []QoSConfig{
		{},                          // missing SLO
		{SLOp99Ms: -1},              // negative SLO
		{SLOp99Ms: 30, Window: -1},  // negative window
		{SLOp99Ms: 30, MinSamples: -1},
		{SLOp99Ms: 30, InitialRate: -5},
		{SLOp99Ms: 30, Decrease: 1.5},              // factor outside (0,1)
		{SLOp99Ms: 30, Decrease: -0.5},             // negative factor
		{SLOp99Ms: 30, MinRate: 50, MaxRate: 10},   // floor above ceiling
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		} else if _, ok := err.(*ConfigError); !ok {
			t.Errorf("case %d: error %T is not *ConfigError", i, err)
		}
	}
}

// servingQoSConfig is the pinned sub-saturation scenario shared by the
// SLO and model-check tests: a 13-disk TIP array serving 200 ops/s with
// a 10% write mix while 24 partial stripe errors rebuild.
func servingQoSConfig(code *codes.Code, qos *QoSConfig) Config {
	return Config{
		Code: code, Policy: "lru", Strategy: core.StrategyLooped,
		Workers: 16, CacheChunks: 256, Stripes: 512,
		Serving: &ServingConfig{
			Ops: 3000, Rate: 200, ZipfS: 1.2, WriteFrac: 0.1, HotFrac: 0.3, Seed: 9,
			QoS: qos,
		},
	}
}

// TestServingQoSTraceModelCheck verifies an end-to-end serving run's
// recorded QoS trace against the pure AIMD spec.
func TestServingQoSTraceModelCheck(t *testing.T) {
	qos := QoSConfig{SLOp99Ms: 100, InitialRate: 10, MaxRate: 50}
	code := codes.MustNew("tip", 13)
	res, err := Run(servingQoSConfig(code, &qos), genErrors(t, code, 24, 512, 5))
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Serving
	if len(sr.QoSTrace) == 0 {
		t.Fatal("no AIMD steps recorded")
	}
	modelCheckTrace(t, sr.QoSTrace, qos)
	if last := sr.QoSTrace[len(sr.QoSTrace)-1]; sr.FinalRebuildRate != last.RateAfter {
		t.Errorf("FinalRebuildRate = %v, want last step's %v", sr.FinalRebuildRate, last.RateAfter)
	}
	if sr.ThrottleDelay <= 0 {
		t.Error("throttle injected no delay despite pacing the rebuild")
	}
}

// TestServingQoSConcurrent runs the QoS serving scenario from several
// goroutines at once (the sweep-worker pattern experiments use) under
// -race, model-checks every trace, and requires bit-identical results.
func TestServingQoSConcurrent(t *testing.T) {
	qos := QoSConfig{SLOp99Ms: 100, InitialRate: 10, MaxRate: 50}
	const workers = 8
	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			code := codes.MustNew("tip", 13)
			res, err := Run(servingQoSConfig(code, &qos), genErrors(t, code, 24, 512, 5))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	ref := results[0]
	if ref == nil {
		t.Fatal("reference run failed")
	}
	modelCheckTrace(t, ref.Serving.QoSTrace, qos)
	for i, res := range results[1:] {
		if res == nil {
			t.Fatalf("run %d failed", i+1)
		}
		a, b := ref.Serving, res.Serving
		if a.Ops() != b.Ops() || a.SumMs != b.SumMs || a.Hits != b.Hits ||
			a.DiskReads != b.DiskReads || a.DiskWrites != b.DiskWrites ||
			a.ThrottleDelay != b.ThrottleDelay ||
			a.FinalRebuildRate != b.FinalRebuildRate ||
			len(a.QoSTrace) != len(b.QoSTrace) ||
			ref.Makespan != res.Makespan {
			t.Fatalf("run %d diverged from run 0: %+v vs %+v", i+1, b, a)
		}
		for j := range a.QoSTrace {
			if a.QoSTrace[j] != b.QoSTrace[j] {
				t.Fatalf("run %d: step %d diverged: %+v vs %+v", i+1, j, b.QoSTrace[j], a.QoSTrace[j])
			}
		}
	}
}
