// daemon.go is the watch-mode driver behind `fbfctl daemon`: scan the
// store on an interval, run a journaled (hence crash-safe) rebuild
// whenever damage appears, retry transient failures with exponential
// backoff, and shut down gracefully — finish the chunk in flight, sync
// the journal — when asked to stop.
package rebuild

import (
	"fmt"
	"time"

	"fbf/internal/telemetry"
)

// Daemon defaults.
const (
	DefaultInterval   = 10 * time.Second
	DefaultRetries    = 5
	DefaultBackoff    = time.Second
	DefaultMaxBackoff = time.Minute
)

// DaemonConfig parameterizes one watch loop.
type DaemonConfig struct {
	// Service is the rebuild configuration each damaged scan executes.
	// JournalPath should be set so every repair pass is resumable; Stop
	// is wired by the daemon and must be left nil here.
	Service ServiceConfig

	// Interval is the pause between clean scans (DefaultInterval when
	// zero).
	Interval time.Duration

	// Retries bounds consecutive failed rebuild attempts before the
	// daemon gives up (DefaultRetries when zero; negative disables
	// retrying). A successful pass resets the budget.
	Retries int

	// Backoff is the pause before the first retry, doubling per
	// consecutive failure up to MaxBackoff (DefaultBackoff and
	// DefaultMaxBackoff when zero).
	Backoff    time.Duration
	MaxBackoff time.Duration

	// MaxScans, when positive, ends the loop after that many scans —
	// drills and tests; zero watches until Stop.
	MaxScans int

	// Stop requests graceful shutdown: the in-flight chunk repair is
	// finished, the journal synced, and RunDaemon returns with
	// Interrupted set.
	Stop <-chan struct{}

	// Logf, when non-nil, receives one line per daemon event (scan
	// outcomes, retries, shutdown).
	Logf func(format string, args ...any)

	// Metrics, when non-nil, receives live watch-loop telemetry (scan
	// cycles, backoff state) and drives its Tracker through the loop's
	// phases — the state behind `fbfctl daemon -listen`'s /progress.
	Metrics *telemetry.DaemonMetrics

	// after is the timer seam (time.After when nil) so tests drive the
	// loop without wall-clock sleeps.
	after func(time.Duration) <-chan time.Time
}

// DaemonResult aggregates one watch loop's lifetime.
type DaemonResult struct {
	Scans           int // rebuild passes started (each begins with a scan)
	Rebuilds        int // passes that found damage and repaired
	Retries         int // transient-failure retries taken
	StripesRepaired int
	ChunksRebuilt   int

	// Interrupted is set when Stop ended the loop (possibly mid-repair;
	// the journal then holds the progress). DataLoss latches if any
	// pass hit unrecoverable cells.
	Interrupted bool
	DataLoss    bool

	// Last is the most recent service result, nil if no pass completed.
	Last *ServiceResult
}

func (c *DaemonConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Retries == 0 {
		c.Retries = DefaultRetries
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.after == nil {
		c.after = time.After
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// stopped reports whether Stop has fired.
func (c *DaemonConfig) stopped() bool {
	if c.Stop == nil {
		return false
	}
	select {
	case <-c.Stop:
		return true
	default:
		return false
	}
}

// wait sleeps d or until Stop, reporting whether Stop ended it.
func (c *DaemonConfig) wait(d time.Duration) bool {
	if c.Stop == nil {
		<-c.after(d)
		return false
	}
	select {
	case <-c.Stop:
		return true
	case <-c.after(d):
		return false
	}
}

// RunDaemon watches a store: every Interval it scans and, when damage
// appears, runs the journaled rebuild — retrying transient failures
// with exponential backoff — until Stop fires or MaxScans is reached.
// It returns an error only when the configuration is unusable or the
// retry budget is exhausted; damage and interruption are results, not
// errors.
func RunDaemon(cfg DaemonConfig) (*DaemonResult, error) {
	cfg.defaults()
	if cfg.Service.Stop != nil {
		return nil, &ConfigError{Field: "Service.Stop", Reason: "the daemon wires graceful stop itself; set DaemonConfig.Stop"}
	}
	if cfg.Service.CheckOnly || cfg.Service.DryRun {
		return nil, &ConfigError{Field: "Service", Reason: "the daemon repairs; check-only and dry-run do not apply"}
	}
	cfg.Service.Stop = cfg.Stop
	mt := cfg.Metrics
	if mt != nil && mt.Tracker != nil {
		// Chain the service's per-stripe Progress into the tracker so
		// /progress follows the pass in flight; the caller's own hook
		// still fires.
		tracker, orig := mt.Tracker, cfg.Service.Progress
		cfg.Service.Progress = func(p Progress) {
			tracker.Stripe(p.Stripe, p.StripesDone, p.StripesTotal, p.ChunksRebuilt)
			if orig != nil {
				orig(p)
			}
		}
	}
	setPhase := func(phase string) {
		if mt != nil && mt.Tracker != nil {
			mt.Tracker.SetPhase(phase)
		}
	}

	res := &DaemonResult{}
	failures := 0
	for {
		if cfg.stopped() {
			res.Interrupted = true
			setPhase("stopped")
			return res, nil
		}
		res.Scans++
		if mt != nil {
			mt.Scans.Inc()
			if mt.Tracker != nil {
				mt.Tracker.Scan()
			}
		}
		sres, err := RunService(cfg.Service)
		if err != nil {
			failures++
			res.Retries++
			if cfg.Retries < 0 || failures > cfg.Retries {
				setPhase("stopped")
				return res, fmt.Errorf("rebuild daemon: giving up after %d consecutive failures: %w", failures, err)
			}
			backoff := min(cfg.Backoff<<(failures-1), cfg.MaxBackoff)
			if mt != nil {
				mt.Retries.Inc()
				mt.Failures.Set(float64(failures))
				mt.Backoff.Set(backoff.Seconds())
			}
			setPhase("backoff")
			cfg.Logf("rebuild failed (attempt %d/%d), retrying in %v: %v", failures, cfg.Retries, backoff, err)
			if cfg.wait(backoff) {
				res.Interrupted = true
				setPhase("stopped")
				return res, nil
			}
			continue
		}
		failures = 0
		if mt != nil {
			mt.Failures.Set(0)
			mt.Backoff.Set(0)
		}
		res.Last = sres
		res.StripesRepaired += sres.StripesRepaired
		res.ChunksRebuilt += sres.ChunksRebuilt
		if sres.DataLoss {
			res.DataLoss = true
			cfg.Logf("scan %d: DATA LOSS — %d chunks unrecoverable", res.Scans, len(sres.Lost))
		}
		switch {
		case sres.Interrupted:
			res.Interrupted = true
			setPhase("stopped")
			cfg.Logf("scan %d: interrupted after %d stripes; journal kept at offset %d", res.Scans, sres.StripesRepaired, sres.JournalOffset)
			return res, nil
		case sres.Report.Clean() && sres.ChunksRebuilt == 0:
			cfg.Logf("scan %d: clean", res.Scans)
		default:
			res.Rebuilds++
			if mt != nil {
				mt.Rebuilds.Inc()
				if mt.Tracker != nil {
					mt.Tracker.Rebuilt()
				}
			}
			cfg.Logf("scan %d: rebuilt %d chunks in %d stripes", res.Scans, sres.ChunksRebuilt, sres.StripesRepaired)
		}
		if cfg.MaxScans > 0 && res.Scans >= cfg.MaxScans {
			setPhase("stopped")
			return res, nil
		}
		setPhase("watching")
		if cfg.wait(cfg.Interval) {
			res.Interrupted = true
			setPhase("stopped")
			return res, nil
		}
	}
}
