package rebuild

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fbf/internal/grid"
	"fbf/internal/store"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "rebuild.journal")
}

// TestJournalRoundTrip pins the record codec: every record type written
// by one journal is replayed identically by the next open.
func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, st, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scan != nil || len(st.Plans) != 0 || len(st.Commits) != 0 || st.Complete {
		t.Fatalf("fresh journal replayed non-empty state: %+v", st)
	}
	scan := JournalScan{Disks: 7, Rows: 6, Stripes: 4, ChunkSize: 4096, Missing: 10, Corrupt: 2, DamagedStripes: 3}
	if err := j.AppendScan(scan); err != nil {
		t.Fatal(err)
	}
	plan := []grid.Coord{{Row: 0, Col: 2}, {Row: 5, Col: 4}}
	if err := j.AppendPlan(1, plan); err != nil {
		t.Fatal(err)
	}
	a := store.Addr{Disk: 2, Stripe: 1, Chunk: 0}
	if err := j.AppendCommit(a, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendStripeDone(1); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, st2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st2.Scan == nil || *st2.Scan != scan {
		t.Fatalf("scan replay = %+v, want %+v", st2.Scan, scan)
	}
	got := st2.Plans[1]
	if len(got) != len(plan) || got[0] != plan[0] || got[1] != plan[1] {
		t.Fatalf("plan replay = %v, want %v", got, plan)
	}
	if crc, ok := st2.Commits[a]; !ok || crc != 0xDEADBEEF {
		t.Fatalf("commit replay = %x (%v)", crc, ok)
	}
	if !st2.Done[1] || st2.Complete {
		t.Fatalf("done replay: Done[1]=%v Complete=%v", st2.Done[1], st2.Complete)
	}
	if len(st2.InFlight()) != 0 {
		t.Fatalf("completed stripe reported in flight: %v", st2.InFlight())
	}
	if j2.Offset() != j.Offset() {
		t.Fatalf("reopened offset %d, want %d", j2.Offset(), j.Offset())
	}
}

// TestJournalInFlight pins the resume entry point: planned-but-not-done
// stripes are in flight, in ascending order.
func TestJournalInFlight(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, stripe := range []int{5, 1, 3} {
		if err := j.AppendPlan(stripe, []grid.Coord{{Row: 0, Col: 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.AppendStripeDone(3); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, st, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := st.InFlight()
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("InFlight = %v, want [1 5]", got)
	}
}

// TestJournalTruncatesTornTail pins crash-mid-append healing: a journal
// whose last frame is torn replays its intact prefix and truncates the
// debris, at every possible tear offset.
func TestJournalTruncatesTornTail(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendStripeDone(7); err != nil {
		t.Fatal(err)
	}
	intact := j.Offset()
	if err := j.AppendCommit(store.Addr{Disk: 1, Stripe: 2, Chunk: 3}, 42); err != nil {
		t.Fatal(err)
	}
	full := j.Offset()
	j.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := intact + 1; cut < full; cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, st, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if !st.Done[7] {
			t.Fatalf("cut at %d: intact prefix lost", cut)
		}
		if len(st.Commits) != 0 {
			t.Fatalf("cut at %d: torn commit replayed", cut)
		}
		if j2.Offset() != intact {
			t.Fatalf("cut at %d: offset %d, want %d", cut, j2.Offset(), intact)
		}
		// Appends after healing land cleanly.
		if err := j2.AppendStripeDone(9); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		j3, st3, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if !st3.Done[7] || !st3.Done[9] {
			t.Fatalf("cut at %d: post-heal append lost: %v", cut, st3.Done)
		}
		j3.Close()
	}
}

// TestJournalDetectsBitFlips pins the CRC framing: flipping any byte of
// a record makes replay stop at (or reject) the damaged frame rather
// than acting on it.
func TestJournalDetectsBitFlips(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCommit(store.Addr{Disk: 4, Stripe: 0, Chunk: 1}, 99); err != nil {
		t.Fatal(err)
	}
	j.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := journalHeaderSize; i < len(whole); i++ {
		damaged := append([]byte(nil), whole...)
		damaged[i] ^= 0x40
		if err := os.WriteFile(path, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, st, err := OpenJournal(path)
		if err != nil {
			// A flip that yields a structurally-valid frame with
			// nonsense content is rejected loudly; that's fine too.
			continue
		}
		if len(st.Commits) != 0 {
			t.Fatalf("flip at %d: damaged commit replayed as %v", i, st.Commits)
		}
		j2.Close()
	}
}

// TestJournalRejectsForeignFiles pins the header guard.
func TestJournalRejectsForeignFiles(t *testing.T) {
	path := journalPath(t)
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("foreign file accepted as a journal")
	}

	// Wrong version: right magic, future version.
	bad := append([]byte{}, journalMagic[:]...)
	bad = append(bad, 0xFF, 0, 0, 0)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); !errors.Is(err, ErrJournalVersion) {
		t.Fatalf("future version = %v, want ErrJournalVersion", err)
	}
}

// TestJournalResetAndRemove pins the lifecycle: Reset empties a
// completed journal back to its header; Remove deletes the file.
func TestJournalResetAndRemove(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendDone(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, st, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Complete {
		t.Fatal("done record not replayed")
	}
	if err := j2.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := j2.AppendStripeDone(0); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, st3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Complete || !st3.Done[0] {
		t.Fatalf("post-reset state: %+v", st3)
	}
	if err := j3.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("journal survives Remove: %v", err)
	}
}

// TestJournalLastPlanWins pins replay semantics for escalation re-plans:
// the latest plan record for a stripe supersedes earlier ones.
func TestJournalLastPlanWins(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendPlan(2, []grid.Coord{{Row: 0, Col: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendPlan(2, []grid.Coord{{Row: 0, Col: 1}, {Row: 3, Col: 4}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, st, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := st.Plans[2]; len(got) != 2 {
		t.Fatalf("plan replay = %v, want the 2-cell re-plan", got)
	}
}
