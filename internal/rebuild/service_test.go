package rebuild

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fbf/internal/chunk"
	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/grid"
	"fbf/internal/store"
)

func testManifest(codeName string, p, stripes, chunkSize int) store.ArrayManifest {
	code := codes.MustNew(codeName, p)
	return store.ArrayManifest{
		Code: codeName, P: p,
		Disks: code.Disks(), Rows: code.Rows(),
		Stripes: stripes, ChunkSize: chunkSize,
	}
}

// initMem materializes a clean array into a fresh memstore.
func initMem(t *testing.T, m store.ArrayManifest, seed int64) *store.Mem {
	t.Helper()
	b := store.NewMem()
	if err := InitStore(b, m, seed); err != nil {
		t.Fatalf("InitStore: %v", err)
	}
	return b
}

// killDisk deletes every chunk of one disk — the memstore analogue of
// rm -rf on a disk directory.
func killDisk(t *testing.T, b store.Backend, disk int) {
	t.Helper()
	addrs, err := b.List(disk)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if err := b.Delete(a); err != nil {
			t.Fatal(err)
		}
	}
}

// checkAgainstGroundTruth recomputes every stripe from the init seed
// and byte-compares the whole store against it.
func checkAgainstGroundTruth(t *testing.T, b store.Backend, m store.ArrayManifest, seed int64) {
	t.Helper()
	code := codes.MustNew(m.Code, m.P)
	want := make([]chunk.Chunk, code.Layout().Cells())
	for i := range want {
		want[i] = chunk.New(m.ChunkSize)
	}
	got := chunk.New(m.ChunkSize)
	for s := 0; s < m.Stripes; s++ {
		code.MaterializeStripeInto(want, StripeSeed(seed, s))
		for idx := range want {
			cell := code.CoordOf(idx)
			a := AddrOf(s, cell)
			n, err := b.ReadChunk(a, got)
			if err != nil {
				t.Fatalf("read %v after rebuild: %v", a, err)
			}
			if n != m.ChunkSize || !got.Equal(want[idx]) {
				t.Fatalf("chunk %v does not match ground truth after rebuild", a)
			}
		}
	}
}

// TestServiceRebuildsKilledDisks is the storage-engine tentpole check:
// kill up to three whole disks of a materialized array and the service
// must restore every chunk byte-identically, oracle-verifying each.
func TestServiceRebuildsKilledDisks(t *testing.T) {
	for _, tc := range []struct {
		code  string
		p     int
		disks []int
	}{
		{"star", 5, []int{1}},
		{"star", 5, []int{0, 2, 4}},
		{"tip", 5, []int{1, 3, 4}},
		{"triplestar", 5, []int{0, 1}},
	} {
		t.Run(fmt.Sprintf("%s-p%d-kill%v", tc.code, tc.p, tc.disks), func(t *testing.T) {
			code := codes.MustNew(tc.code, tc.p)
			if !code.CanRecoverColumns(tc.disks...) {
				t.Fatalf("%v cannot recover columns %v; bad test setup", code, tc.disks)
			}
			const seed = 42
			m := testManifest(tc.code, tc.p, 4, 96)
			b := initMem(t, m, seed)
			for _, d := range tc.disks {
				killDisk(t, b, d)
			}

			var last Progress
			res, err := RunService(ServiceConfig{
				Backend: b, Manifest: m,
				Strategy: core.StrategyLooped,
				Progress: func(p Progress) { last = p },
			})
			if err != nil {
				t.Fatalf("RunService: %v", err)
			}
			if res.DataLoss || len(res.Lost) != 0 {
				t.Fatalf("unexpected data loss: %v", res.Lost)
			}
			wantChunks := len(tc.disks) * m.Rows * m.Stripes
			if res.ChunksRebuilt != wantChunks {
				t.Errorf("ChunksRebuilt = %d, want %d", res.ChunksRebuilt, wantChunks)
			}
			if res.ChunksVerified != wantChunks {
				t.Errorf("ChunksVerified = %d, want %d", res.ChunksVerified, wantChunks)
			}
			if res.Report.MissingChunks != wantChunks {
				t.Errorf("scan found %d missing chunks, want %d", res.Report.MissingChunks, wantChunks)
			}
			if len(res.Report.FailedDisks) != len(tc.disks) {
				t.Errorf("FailedDisks = %v, want %v", res.Report.FailedDisks, tc.disks)
			}
			if res.StripesRepaired != m.Stripes {
				t.Errorf("StripesRepaired = %d, want %d", res.StripesRepaired, m.Stripes)
			}
			if last.StripesDone != m.Stripes || last.Percent() != 100 {
				t.Errorf("final progress %+v, want %d stripes at 100%%", last, m.Stripes)
			}
			if res.DiskReads == 0 || res.VerifyReads == 0 {
				t.Errorf("reads not accounted: disk=%d verify=%d", res.DiskReads, res.VerifyReads)
			}
			checkAgainstGroundTruth(t, b, m, seed)
		})
	}
}

// TestServiceStrategiesAndPolicies sweeps strategy x policy over the
// same damage and expects identical recovered bytes from all of them —
// cache policy and chain choice must never change results, only cost.
func TestServiceStrategiesAndPolicies(t *testing.T) {
	const seed = 7
	m := testManifest("star", 5, 3, 64)
	for _, strategy := range []core.Strategy{core.StrategyTypical, core.StrategyLooped, core.StrategyGreedy} {
		for _, policy := range []string{"fbf", "lru", "fifo"} {
			t.Run(fmt.Sprintf("%s-%s", strategy, policy), func(t *testing.T) {
				b := initMem(t, m, seed)
				killDisk(t, b, 2)
				killDisk(t, b, 3)
				res, err := RunService(ServiceConfig{
					Backend: b, Manifest: m,
					Policy: policy, Strategy: strategy, CacheChunks: 8,
				})
				if err != nil {
					t.Fatalf("RunService: %v", err)
				}
				if res.DataLoss {
					t.Fatalf("data loss: %v", res.Lost)
				}
				if res.CacheHits+res.CacheMisses == 0 {
					t.Error("cache stats not collected")
				}
				checkAgainstGroundTruth(t, b, m, seed)
			})
		}
	}
}

// recordingBackend counts mutations, so read-only modes can prove they
// never write.
type recordingBackend struct {
	store.Backend
	writes, deletes int
}

func (r *recordingBackend) WriteChunk(a store.Addr, data []byte) error {
	r.writes++
	return r.Backend.WriteChunk(a, data)
}

func (r *recordingBackend) Delete(a store.Addr) error {
	r.deletes++
	return r.Backend.Delete(a)
}

// TestServiceCheckOnlyAndDryRun pins the read-only contract: check-only
// stops after the scan, dry-run additionally plans, and neither may
// touch the backend.
func TestServiceCheckOnlyAndDryRun(t *testing.T) {
	const seed = 9
	m := testManifest("star", 5, 3, 64)
	base := initMem(t, m, seed)
	killDisk(t, base, 1)
	missing := m.Rows * m.Stripes

	t.Run("check-only", func(t *testing.T) {
		rec := &recordingBackend{Backend: base}
		res, err := RunService(ServiceConfig{Backend: rec, Manifest: m, CheckOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if rec.writes != 0 || rec.deletes != 0 {
			t.Fatalf("check-only mutated the store: %d writes, %d deletes", rec.writes, rec.deletes)
		}
		if res.Report.MissingChunks != missing || res.ChunksRebuilt != 0 || res.PlannedChunks != 0 {
			t.Fatalf("check-only result: %+v", res)
		}
	})
	t.Run("dry-run", func(t *testing.T) {
		rec := &recordingBackend{Backend: base}
		res, err := RunService(ServiceConfig{Backend: rec, Manifest: m, DryRun: true})
		if err != nil {
			t.Fatal(err)
		}
		if rec.writes != 0 || rec.deletes != 0 {
			t.Fatalf("dry-run mutated the store: %d writes, %d deletes", rec.writes, rec.deletes)
		}
		if res.PlannedChunks != missing {
			t.Fatalf("PlannedChunks = %d, want %d", res.PlannedChunks, missing)
		}
		if res.PlannedReads == 0 || res.ChunksRebuilt != 0 || res.DiskReads != 0 {
			t.Fatalf("dry-run executed work: %+v", res)
		}
	})
}

// TestServiceEscalation corrupts a surviving chunk the scheme will
// fetch, with scrub off so the cheap header scan misses payload rot.
// The mid-chain read failure must escalate the cell, regenerate the
// scheme, and still finish a byte-perfect rebuild — the simulator's
// URE ladder running on real bytes.
func TestServiceEscalation(t *testing.T) {
	const seed = 5
	m := testManifest("star", 5, 2, 64)
	dir := t.TempDir()
	b, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := InitStore(b, m, seed); err != nil {
		t.Fatal(err)
	}
	code := codes.MustNew("star", 5)

	// Lose three cells of disk 0 in stripe 0, and predict which chunk
	// the scheme fetches first so we can rot exactly that one.
	e := core.PartialStripeError{Stripe: 0, Disk: 0, Row: 0, Size: 3}
	lost := e.LostCells()
	scheme, _, err := core.RegenerateScheme(code, e, lost, nil, core.StrategyLooped)
	if err != nil {
		t.Fatal(err)
	}
	victim := scheme.Selected[0].Fetch[0]
	for _, c := range lost {
		if err := b.Delete(AddrOf(0, c)); err != nil {
			t.Fatal(err)
		}
	}
	rotPayloadByte(t, dir, AddrOf(0, victim))

	res, err := RunService(ServiceConfig{
		Backend: b, Manifest: m, Strategy: core.StrategyLooped,
	})
	if err != nil {
		t.Fatalf("RunService: %v", err)
	}
	if res.Escalations == 0 || res.Regenerations == 0 {
		t.Fatalf("escalation ladder not exercised: %+v", res)
	}
	if res.DataLoss {
		t.Fatalf("data loss after escalation: %v", res.Lost)
	}
	// The rotted survivor must have been rebuilt too.
	if res.ChunksRebuilt != len(lost)+1 {
		t.Errorf("ChunksRebuilt = %d, want %d", res.ChunksRebuilt, len(lost)+1)
	}
	checkAgainstGroundTruth(t, b, m, seed)
}

// TestServiceScrubFindsPayloadRot pins the scan layering: the default
// header-only scan misses payload bit-rot, the scrub scan reads and
// CRC-checks every payload and reports it as corrupt damage.
func TestServiceScrubFindsPayloadRot(t *testing.T) {
	const seed = 3
	m := testManifest("star", 5, 2, 64)
	dir := t.TempDir()
	b, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := InitStore(b, m, seed); err != nil {
		t.Fatal(err)
	}
	rotted := store.Addr{Disk: 4, Stripe: 1, Chunk: 2}
	rotPayloadByte(t, dir, rotted)

	plain, err := ScanStore(b, m, false)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Clean() {
		t.Fatalf("header-only scan flagged payload rot: %+v", plain)
	}
	scrub, err := ScanStore(b, m, true)
	if err != nil {
		t.Fatal(err)
	}
	if scrub.CorruptChunks != 1 || len(scrub.Stripes) != 1 || scrub.Stripes[0].Stripe != 1 {
		t.Fatalf("scrub scan: %+v", scrub)
	}

	// A scrub rebuild repairs the rot in place.
	res, err := RunService(ServiceConfig{Backend: b, Manifest: m, Scrub: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksRebuilt != 1 || res.DataLoss {
		t.Fatalf("scrub rebuild: %+v", res)
	}
	checkAgainstGroundTruth(t, b, m, seed)
}

// TestServiceBeyondTolerance kills one disk more than the code
// tolerates: the run must finish without error, reporting the
// unsolvable cells as data loss rather than fabricating bytes.
func TestServiceBeyondTolerance(t *testing.T) {
	const seed = 13
	m := testManifest("star", 5, 2, 64)
	b := initMem(t, m, seed)
	for d := 0; d < 4; d++ {
		killDisk(t, b, d)
	}
	res, err := RunService(ServiceConfig{Backend: b, Manifest: m})
	if err != nil {
		t.Fatalf("RunService: %v", err)
	}
	if !res.DataLoss || len(res.Lost) == 0 {
		t.Fatal("4-disk kill on a 3DFT code must report data loss")
	}
}

// TestServicePriorityVulnerable damages two stripes unevenly and
// expects the most-damaged stripe to be repaired first.
func TestServicePriorityVulnerable(t *testing.T) {
	const seed = 21
	m := testManifest("star", 5, 4, 64)
	b := initMem(t, m, seed)
	// Stripe 1: one lost chunk. Stripe 3: a whole column.
	if err := b.Delete(store.Addr{Disk: 0, Stripe: 1, Chunk: 0}); err != nil {
		t.Fatal(err)
	}
	for row := 0; row < m.Rows; row++ {
		if err := b.Delete(store.Addr{Disk: 2, Stripe: 3, Chunk: row}); err != nil {
			t.Fatal(err)
		}
	}
	var order []int
	_, err := RunService(ServiceConfig{
		Backend: b, Manifest: m,
		Priority: PriorityVulnerable,
		Progress: func(p Progress) { order = append(order, p.Stripe) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 3 || order[1] != 1 {
		t.Fatalf("vulnerable-first repair order = %v, want [3 1]", order)
	}
	checkAgainstGroundTruth(t, b, m, seed)
}

// TestServiceCleanStoreIsNoOp pins that a healthy store is scanned and
// left alone.
func TestServiceCleanStoreIsNoOp(t *testing.T) {
	m := testManifest("star", 5, 2, 64)
	rec := &recordingBackend{Backend: initMem(t, m, 1)}
	rec.writes = 0 // reset after init
	res, err := RunService(ServiceConfig{Backend: rec, Manifest: m})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Clean() || res.ChunksRebuilt != 0 || rec.writes != 0 {
		t.Fatalf("clean store was touched: %+v (writes %d)", res, rec.writes)
	}
}

// TestServiceConfigValidation walks the rejection table.
func TestServiceConfigValidation(t *testing.T) {
	m := testManifest("star", 5, 1, 32)
	good := func() ServiceConfig {
		return ServiceConfig{Backend: store.NewMem(), Manifest: m}
	}
	cases := []struct {
		name   string
		mutate func(*ServiceConfig)
	}{
		{"nil-backend", func(c *ServiceConfig) { c.Backend = nil }},
		{"bad-policy", func(c *ServiceConfig) { c.Policy = "no-such-policy" }},
		{"bad-priority", func(c *ServiceConfig) { c.Priority = "fastest" }},
		{"check-only-and-dry-run", func(c *ServiceConfig) { c.CheckOnly, c.DryRun = true, true }},
		{"bad-manifest", func(c *ServiceConfig) { c.Manifest.ChunkSize = 0 }},
		{"geometry-mismatch", func(c *ServiceConfig) { c.Manifest.Disks = 99 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good()
			tc.mutate(&cfg)
			if _, err := RunService(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	// And the good config itself must pass.
	if _, err := RunService(good()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestInitStoreGeometryMismatch rejects a manifest whose dimensions
// disagree with its code.
func TestInitStoreGeometryMismatch(t *testing.T) {
	m := testManifest("star", 5, 1, 32)
	m.Rows = 2
	if err := InitStore(store.NewMem(), m, 1); err == nil {
		t.Fatal("InitStore accepted a geometry-mismatched manifest")
	}
}

// TestScanStoreReportsExtraChunks pins that out-of-geometry chunks are
// reported, never deleted.
func TestScanStoreReportsExtraChunks(t *testing.T) {
	m := testManifest("star", 5, 2, 64)
	b := initMem(t, m, 1)
	stray := store.Addr{Disk: 0, Stripe: 99, Chunk: 0}
	if err := b.WriteChunk(stray, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	rep, err := ScanStore(b, m, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("stray chunk counted as damage: %+v", rep)
	}
	if len(rep.ExtraChunks) != 1 || rep.ExtraChunks[0] != stray {
		t.Fatalf("ExtraChunks = %v, want [%v]", rep.ExtraChunks, stray)
	}
	if _, err := b.Stat(stray); err != nil {
		t.Fatalf("scan deleted the stray chunk: %v", err)
	}
}

// rotPayloadByte flips one payload byte of a dirstore chunk file in
// place, leaving the header intact — silent media bit-rot.
func rotPayloadByte(t *testing.T, dir string, a store.Addr) {
	t.Helper()
	path := filepath.Join(dir, store.ChunkPath(a))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[store.HeaderSize+7] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestServiceGridCoordOrder guards the Addr<->Coord mapping the whole
// engine rests on: column is disk, row is chunk slot.
func TestServiceGridCoordOrder(t *testing.T) {
	a := AddrOf(7, grid.Coord{Row: 2, Col: 5})
	want := store.Addr{Disk: 5, Stripe: 7, Chunk: 2}
	if a != want {
		t.Fatalf("AddrOf = %v, want %v", a, want)
	}
}
