package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenParams is deliberately tiny: the golden file pins rendering and
// simulation determinism, not the paper's numbers, so the cheapest
// non-degenerate sweep suffices.
func goldenParams() Params {
	p := DefaultParams()
	p.Codes = []string{"tip"}
	p.Primes = []int{5}
	p.Policies = []string{"lru", "fbf"}
	p.CacheSizesMB = []int{1, 2}
	p.Workers = 16
	p.Groups = 24
	p.Stripes = 512
	p.Seed = 7
	return p
}

func renderFig8(t *testing.T, parallelism int) []byte {
	t.Helper()
	p := goldenParams()
	p.Parallelism = parallelism
	fig, err := Fig8(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderFigure(&buf, fig, p.Policies); err != nil {
		t.Fatal(err)
	}
	if err := RenderFigureCSV(&buf, fig); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFig8Golden pins the full fbfsim figure pipeline — trace
// generation, scheme generation, cache replay, aggregation and both
// renderers — byte-for-byte against a checked-in golden file, and
// requires the parallel sweep path to reproduce the serial path
// exactly. Regenerate with `go test ./internal/experiments -run Golden
// -update` and review the diff like any other code change.
func TestFig8Golden(t *testing.T) {
	serial := renderFig8(t, 1)
	parallel := renderFig8(t, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel sweep output differs from serial:\n--- parallelism 1 ---\n%s\n--- parallelism 4 ---\n%s", serial, parallel)
	}
	golden := filepath.Join("testdata", "fig8_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, serial, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(serial, want) {
		t.Fatalf("figure output drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s", golden, serial, want)
	}
}
