package experiments

import (
	"fmt"
	"io"

	"fbf/internal/rebuild"
)

// ServingSweep configures the heavy-traffic serving experiment: the
// foreground stream replayed against every (code, prime, policy) of the
// Params axes at each client rate, tracing out a latency/throughput
// frontier per cache policy.
type ServingSweep struct {
	Rates []float64 // client arrival rates to sweep (ops/sec, the frontier's x axis)

	Ops       int     // foreground operations per run (default 2000)
	ZipfS     float64 // stripe-popularity skew; <= 1 uniform (default 1.2)
	WriteFrac float64 // parity read-modify-write fraction (default 0.1)
	HotFrac   float64 // fraction of traffic aimed at stripes under repair (default 0.3)
	Seed      int64   // workload RNG seed (default Params.Seed)

	// QoS, when non-nil, arms the adaptive rebuild throttle on every run
	// (the same config at each point, so frontiers with and without the
	// throttle are directly comparable).
	QoS *rebuild.QoSConfig
}

// withDefaults fills unset knobs. The zero Seed falls back to the sweep
// seed so `-serving` alone is fully reproducible.
func (s ServingSweep) withDefaults(p Params) ServingSweep {
	if s.Ops == 0 {
		s.Ops = 2000
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.2
	}
	if s.WriteFrac == 0 {
		s.WriteFrac = 0.1
	}
	if s.HotFrac == 0 {
		s.HotFrac = 0.3
	}
	if s.Seed == 0 {
		s.Seed = p.Seed
	}
	return s
}

// ServingRow is one frontier point: a policy serving the foreground
// stream at one client rate while the rebuild runs.
type ServingRow struct {
	Code   string
	P      int
	Policy string
	Rate   float64 // offered client load (ops/sec)

	Ops    uint64 // completed foreground operations
	Failed uint64 // unservable operations (no surviving chain / members)

	AvgMs  float64
	P50Ms  float64
	P99Ms  float64
	P999Ms float64

	// Per-class p99 latency: healthy stripes, degraded stripes (losses
	// elsewhere in the stripe), lost targets (reconstructed reads).
	HealthyP99Ms  float64
	DegradedP99Ms float64
	LostP99Ms     float64

	HitRatio  float64 // foreground cache-probe hit ratio
	RebuildMs float64 // rebuild makespan under this load

	// QoS accounting (zero without a QoS config).
	QoSSteps    int     // judged AIMD decision windows
	RebuildRate float64 // final rebuild IO/s/disk
}

// Serving runs the serving experiment: for every (code, prime, policy)
// of the Params axes and every client rate, one rebuild serves the
// foreground stream, and the row records its latency percentiles split
// by stripe class. One error trace is generated per (code, prime) and
// shared read-only by that pair's rows; runs execute concurrently up to
// Params.Parallelism in the serial enumeration order (codes, primes,
// policies, rates), and — like every sweep — the results are identical
// at any parallelism level.
func Serving(p Params, sc ServingSweep) ([]ServingRow, error) {
	if len(sc.Rates) == 0 {
		return nil, fmt.Errorf("experiments: no serving rates configured")
	}
	for _, r := range sc.Rates {
		if !(r > 0) {
			return nil, fmt.Errorf("experiments: non-positive serving rate %v", r)
		}
	}
	if err := p.validateAxes(true, false); err != nil {
		return nil, err
	}
	if err := p.validateEngine(); err != nil {
		return nil, err
	}
	sc = sc.withDefaults(p)
	// The frontier sweeps rates, not cache sizes: each run uses the first
	// configured cache size (64 MB when the axis was left at defaults).
	sizeMB := 64
	if len(p.CacheSizesMB) > 0 {
		sizeMB = p.CacheSizesMB[0]
	}
	preps, err := prepareTraces(p)
	if err != nil {
		return nil, err
	}
	perPrep := len(p.Policies) * len(sc.Rates)
	rows := make([]ServingRow, len(preps)*perPrep)
	err = forEachIndexed(p.parallelism(), len(rows), p.Progress, func(i int) error {
		prep := preps[i/perPrep]
		policy := p.Policies[(i%perPrep)/len(sc.Rates)]
		rate := sc.Rates[i%len(sc.Rates)]
		var qos *rebuild.QoSConfig
		if sc.QoS != nil {
			q := *sc.QoS
			qos = &q
		}
		cfg := rebuild.Config{
			Code: prep.code, Policy: policy, Strategy: p.Strategy,
			Workers: p.Workers, CacheChunks: p.CacheChunks(sizeMB),
			ChunkSize: p.ChunkSizeKB * 1024, Stripes: p.Stripes,
			Serving: &rebuild.ServingConfig{
				Ops: sc.Ops, Rate: rate, ZipfS: sc.ZipfS,
				WriteFrac: sc.WriteFrac, HotFrac: sc.HotFrac,
				Seed: sc.Seed, QoS: qos,
			},
		}
		res, err := rebuild.Run(cfg, prep.errors)
		if err != nil {
			return fmt.Errorf("experiments: serving %s(p=%d) %s rate=%g: %w", prep.codeName, prep.prime, policy, rate, err)
		}
		sr := res.Serving
		rows[i] = ServingRow{
			Code: prep.codeName, P: prep.prime, Policy: policy, Rate: rate,
			Ops: sr.Ops(), Failed: sr.FailedReads + sr.FailedWrites,
			AvgMs: sr.AvgMs(), P50Ms: sr.P(0.5), P99Ms: sr.P(0.99), P999Ms: sr.P(0.999),
			HealthyP99Ms:  sr.Classes[rebuild.ClassHealthy].P(0.99),
			DegradedP99Ms: sr.Classes[rebuild.ClassDegraded].P(0.99),
			LostP99Ms:     sr.Classes[rebuild.ClassLost].P(0.99),
			HitRatio:      sr.HitRatio(),
			RebuildMs:     res.Makespan.Milliseconds(),
			QoSSteps:      len(sr.QoSTrace),
			RebuildRate:   sr.FinalRebuildRate,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderServing prints the latency/throughput frontier table.
func RenderServing(w io.Writer, rows []ServingRow) error {
	if _, err := fmt.Fprintln(w, "== SERVING: Foreground Latency Frontier Under Partial Stripe Rebuild =="); err != nil {
		return err
	}
	table := [][]string{{
		"code", "p", "policy", "rate", "ops", "failed", "hit",
		"avg(ms)", "p50(ms)", "p99(ms)", "p999(ms)",
		"p99-h", "p99-d", "p99-l", "rebuild(ms)", "qos-rate",
	}}
	for _, r := range rows {
		qosRate := "-"
		if r.QoSSteps > 0 {
			qosRate = fmt.Sprintf("%.0f", r.RebuildRate)
		}
		table = append(table, []string{
			r.Code,
			fmt.Sprintf("%d", r.P),
			r.Policy,
			fmt.Sprintf("%g", r.Rate),
			fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%d", r.Failed),
			fmt.Sprintf("%.4f", r.HitRatio),
			fmt.Sprintf("%.2f", r.AvgMs),
			fmt.Sprintf("%.2f", r.P50Ms),
			fmt.Sprintf("%.2f", r.P99Ms),
			fmt.Sprintf("%.2f", r.P999Ms),
			fmt.Sprintf("%.2f", r.HealthyP99Ms),
			fmt.Sprintf("%.2f", r.DegradedP99Ms),
			fmt.Sprintf("%.2f", r.LostP99Ms),
			fmt.Sprintf("%.2f", r.RebuildMs),
			qosRate,
		})
	}
	return renderAligned(w, table)
}

// RenderServingCSV prints the frontier as CSV.
func RenderServingCSV(w io.Writer, rows []ServingRow) error {
	if _, err := fmt.Fprintln(w, "code,p,policy,rate,ops,failed,hit_ratio,avg_ms,p50_ms,p99_ms,p999_ms,healthy_p99_ms,degraded_p99_ms,lost_p99_ms,rebuild_ms,qos_steps,qos_rate"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%g,%d,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%d,%g\n",
			r.Code, r.P, r.Policy, r.Rate, r.Ops, r.Failed, r.HitRatio,
			r.AvgMs, r.P50Ms, r.P99Ms, r.P999Ms,
			r.HealthyP99Ms, r.DegradedP99Ms, r.LostP99Ms,
			r.RebuildMs, r.QoSSteps, r.RebuildRate); err != nil {
			return err
		}
	}
	return nil
}
