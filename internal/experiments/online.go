package experiments

import (
	"fmt"
	"io"

	"fbf/internal/rebuild"
	"fbf/internal/sim"
	"fbf/internal/stats"
	"fbf/internal/trace"
)

// OnlineRow reports one policy's behaviour under online recovery: how
// much a foreground application stream slows reconstruction, and how
// the foreground stream itself fares against the shared cache.
type OnlineRow struct {
	Code   string
	P      int
	Policy string

	QuietRecoveryMs  float64 // reconstruction time without foreground load
	LoadedRecoveryMs float64 // reconstruction time with foreground load
	SlowdownPct      float64

	AppHitRatio float64
	AppAvgMs    float64 // foreground mean response time
}

// OnlineRecovery runs the online-recovery experiment (the scenario of
// the paper's conclusion: "FBF is considered to be effective for
// parallel and online recovery as well"): each policy reconstructs the
// same error trace twice, once quiet and once with a foreground read
// stream sharing the cache and disks.
func OnlineRecovery(p Params, app rebuild.AppWorkload) ([]OnlineRow, error) {
	if app.Requests <= 0 {
		app.Requests = 4 * p.Groups
	}
	if app.Interarrival <= 0 {
		app.Interarrival = sim.Millisecond
	}
	if app.ErrorLocality == 0 {
		// Sector errors cluster spatially, and so does the traffic around
		// them (Section II-C of the paper): by default half the foreground
		// requests land on stripes under repair.
		app.ErrorLocality = 0.5
	}
	var rows []OnlineRow
	for _, codeName := range p.Codes {
		for _, prime := range p.Primes {
			code, err := ResolveGeometry(codeName, prime)
			if err != nil {
				return nil, err
			}
			errors, err := trace.Generate(code, trace.Config{
				Groups: p.Groups, Stripes: p.Stripes, Seed: p.Seed, Disk: -1, Dist: p.Dist,
			})
			if err != nil {
				return nil, err
			}
			for _, policy := range p.Policies {
				base := rebuild.Config{
					Code: code, Policy: policy, Strategy: p.Strategy,
					Workers: p.Workers, CacheChunks: p.CacheChunks(64),
					ChunkSize: p.ChunkSizeKB * 1024, Stripes: p.Stripes,
				}
				quiet, err := rebuild.Run(base, errors)
				if err != nil {
					return nil, err
				}
				loadedCfg := base
				appCopy := app
				loadedCfg.App = &appCopy
				loaded, err := rebuild.Run(loadedCfg, errors)
				if err != nil {
					return nil, err
				}
				rows = append(rows, OnlineRow{
					Code: codeName, P: prime, Policy: policy,
					QuietRecoveryMs:  quiet.Makespan.Milliseconds(),
					LoadedRecoveryMs: loaded.Makespan.Milliseconds(),
					SlowdownPct:      -stats.Improvement(quiet.Makespan.Milliseconds(), loaded.Makespan.Milliseconds()) * 100,
					AppHitRatio:      loaded.AppHitRatio(),
					AppAvgMs:         loaded.AppAvgResponse().Milliseconds(),
				})
			}
		}
	}
	return rows, nil
}

// RenderOnline prints the online-recovery table.
func RenderOnline(w io.Writer, rows []OnlineRow) error {
	if _, err := fmt.Fprintln(w, "== ONLINE RECOVERY: Reconstruction Under Foreground Application Load =="); err != nil {
		return err
	}
	table := [][]string{{"code", "p", "policy", "quiet(ms)", "loaded(ms)", "slowdown", "app-hit", "app-resp(ms)"}}
	for _, r := range rows {
		table = append(table, []string{
			r.Code,
			fmt.Sprintf("%d", r.P),
			r.Policy,
			fmt.Sprintf("%.2f", r.QuietRecoveryMs),
			fmt.Sprintf("%.2f", r.LoadedRecoveryMs),
			fmt.Sprintf("%.2f%%", r.SlowdownPct),
			fmt.Sprintf("%.4f", r.AppHitRatio),
			fmt.Sprintf("%.2f", r.AppAvgMs),
		})
	}
	return renderAligned(w, table)
}
