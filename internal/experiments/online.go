package experiments

import (
	"fmt"
	"io"

	"fbf/internal/rebuild"
	"fbf/internal/sim"
	"fbf/internal/stats"
)

// OnlineRow reports one policy's behaviour under online recovery: how
// much a foreground application stream slows reconstruction, and how
// the foreground stream itself fares against the shared cache.
type OnlineRow struct {
	Code   string
	P      int
	Policy string

	QuietRecoveryMs  float64 // reconstruction time without foreground load
	LoadedRecoveryMs float64 // reconstruction time with foreground load
	SlowdownPct      float64

	AppHitRatio float64
	AppAvgMs    float64 // foreground mean response time
}

// OnlineRecovery runs the online-recovery experiment (the scenario of
// the paper's conclusion: "FBF is considered to be effective for
// parallel and online recovery as well"): each policy reconstructs the
// same error trace twice, once quiet and once with a foreground read
// stream sharing the cache and disks. One trace is generated per
// (code, prime) and shared read-only by that pair's policy rows, which
// run concurrently up to Params.Parallelism in the serial enumeration
// order.
func OnlineRecovery(p Params, app rebuild.AppWorkload) ([]OnlineRow, error) {
	if app.Requests <= 0 {
		app.Requests = 4 * p.Groups
	}
	if app.Interarrival <= 0 {
		app.Interarrival = sim.Millisecond
	}
	if app.ErrorLocality == 0 {
		// Sector errors cluster spatially, and so does the traffic around
		// them (Section II-C of the paper): by default half the foreground
		// requests land on stripes under repair.
		app.ErrorLocality = 0.5
	}
	if err := p.validateAxes(true, false); err != nil {
		return nil, err
	}
	if err := p.validateEngine(); err != nil {
		return nil, err
	}
	preps, err := prepareTraces(p)
	if err != nil {
		return nil, err
	}
	rows := make([]OnlineRow, len(preps)*len(p.Policies))
	err = forEachIndexed(p.parallelism(), len(rows), p.Progress, func(i int) error {
		prep := preps[i/len(p.Policies)]
		policy := p.Policies[i%len(p.Policies)]
		base := rebuild.Config{
			Code: prep.code, Policy: policy, Strategy: p.Strategy,
			Workers: p.Workers, CacheChunks: p.CacheChunks(64),
			ChunkSize: p.ChunkSizeKB * 1024, Stripes: p.Stripes,
		}
		quiet, err := rebuild.Run(base, prep.errors)
		if err != nil {
			return err
		}
		loadedCfg := base
		appCopy := app
		loadedCfg.App = &appCopy
		loaded, err := rebuild.Run(loadedCfg, prep.errors)
		if err != nil {
			return err
		}
		rows[i] = OnlineRow{
			Code: prep.codeName, P: prep.prime, Policy: policy,
			QuietRecoveryMs:  quiet.Makespan.Milliseconds(),
			LoadedRecoveryMs: loaded.Makespan.Milliseconds(),
			SlowdownPct:      -stats.Improvement(quiet.Makespan.Milliseconds(), loaded.Makespan.Milliseconds()) * 100,
			AppHitRatio:      loaded.AppHitRatio(),
			AppAvgMs:         loaded.AppAvgResponse().Milliseconds(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderOnline prints the online-recovery table.
func RenderOnline(w io.Writer, rows []OnlineRow) error {
	if _, err := fmt.Fprintln(w, "== ONLINE RECOVERY: Reconstruction Under Foreground Application Load =="); err != nil {
		return err
	}
	table := [][]string{{"code", "p", "policy", "quiet(ms)", "loaded(ms)", "slowdown", "app-hit", "app-resp(ms)"}}
	for _, r := range rows {
		table = append(table, []string{
			r.Code,
			fmt.Sprintf("%d", r.P),
			r.Policy,
			fmt.Sprintf("%.2f", r.QuietRecoveryMs),
			fmt.Sprintf("%.2f", r.LoadedRecoveryMs),
			fmt.Sprintf("%.2f%%", r.SlowdownPct),
			fmt.Sprintf("%.4f", r.AppHitRatio),
			fmt.Sprintf("%.2f", r.AppAvgMs),
		})
	}
	return renderAligned(w, table)
}
