package experiments

import (
	"runtime"
	"sync"
)

// parallelism resolves the effective worker count for a sweep: an
// explicit Params.Parallelism wins, otherwise GOMAXPROCS (one worker
// per schedulable core).
func (p Params) parallelism() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// forEachIndexed runs fn(0), ..., fn(n-1) on up to parallelism
// goroutines. It is the executor behind every experiment sweep:
//
//   - Ordering: fn writes its result into an index-addressed slot, so
//     the caller's output order is the enumeration order regardless of
//     which goroutine finished first. With parallelism <= 1 the jobs
//     run inline in index order — exactly the legacy serial loops.
//   - Error propagation: after the first failure no new job starts
//     (in-flight jobs finish; each is an independent simulation, so
//     letting them drain is cheap and keeps slots consistent). Among
//     the failures observed, the one with the smallest index is
//     returned, matching what a serial run over the same jobs reports.
//   - Progress: the callback sees (completed, total) after every
//     successful job. Calls are serialized under a mutex, but arrive
//     from pool goroutines — callbacks must not assume a single
//     caller goroutine identity.
//
// fn must only write to its own slot; jobs must not communicate. Every
// simulation job is deterministic and isolated (see rebuild.Run's
// concurrency contract), which is what makes the parallel schedule
// invisible in the results.
func forEachIndexed(parallelism, n int, progress func(done, total int), fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
			if progress != nil {
				progress(i+1, n)
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		done     int
		firstErr error
		errIdx   = n // index of firstErr; lowest wins
		failed   bool
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				err := fn(i)
				mu.Lock()
				if err != nil {
					failed = true
					if i < errIdx {
						firstErr, errIdx = err, i
					}
				} else {
					done++
					if progress != nil {
						progress(done, n)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		mu.Lock()
		stop := failed
		mu.Unlock()
		if stop {
			break // cancel unstarted work promptly
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return firstErr
}
