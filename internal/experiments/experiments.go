// Package experiments defines the paper's evaluation artefacts — Figure
// 8 (hit ratio), Figure 9 (disk reads), Figure 10 (response time),
// Figure 11 (reconstruction time), Table IV (FBF overhead) and Table V
// (maximum improvements) — as parameterized sweeps over the
// reconstruction engine, with text/CSV renderers that print the same
// rows and series the paper reports.
package experiments

import (
	"fmt"

	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/lrc"
	"fbf/internal/rebuild"
	"fbf/internal/trace"
)

// ResolveGeometry returns the code geometry for a sweep entry: the four
// XOR-based 3DFT families by name, or "lrc" for the Azure
// LRC(12,2,2) on p-1 rows (the Reed-Solomon-based counterpart of the
// paper's footnote 3).
func ResolveGeometry(name string, p int) (core.Geometry, error) {
	if name == "lrc" {
		rows := p - 1
		if rows < 1 {
			rows = 1
		}
		return lrc.New(12, 2, 2, rows)
	}
	return codes.New(name, p)
}

// Params configures a sweep. The zero value is unusable; start from
// DefaultParams (the paper's configuration scaled to a workstation) and
// override.
type Params struct {
	Codes        []string // code family names
	Primes       []int    // prime parameter values
	Policies     []string // cache policies to compare
	CacheSizesMB []int    // total cache sizes in MB (the paper's x axes)

	ChunkSizeKB int // paper: 32 KB
	Workers     int // paper: 128 parallel recovery processes
	Groups      int // partial stripe error groups per run
	Stripes     int // stripes on the simulated array
	Seed        int64
	Strategy    core.Strategy
	Dist        trace.SizeDist

	// FastIO skips spare writes, which are identical across policies;
	// hit-ratio and read-count sweeps run faster with it set.
	FastIO bool
	// ChargeSchemeGen folds measured scheme-generation wall time into
	// the simulated clock (used by the Table IV runs).
	ChargeSchemeGen bool
}

// DefaultParams returns the paper's evaluation configuration, with the
// group count scaled down from a full 1 TB disk to a tractable run
// (ratios and crossovers are scale invariant; raise Groups for
// paper-scale runs).
func DefaultParams() Params {
	return Params{
		Codes:        []string{"star", "triplestar", "tip", "hdd1"},
		Primes:       []int{7, 11, 13},
		Policies:     []string{"fifo", "lru", "lfu", "arc", "fbf"},
		CacheSizesMB: []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048},
		ChunkSizeKB:  32,
		Workers:      128,
		Groups:       256,
		Stripes:      1 << 14,
		Seed:         1,
		Strategy:     core.StrategyLooped,
	}
}

// CacheChunks converts a cache size in MB to chunks.
func (p Params) CacheChunks(sizeMB int) int {
	return sizeMB * 1024 / p.ChunkSizeKB
}

// Point is one sweep measurement.
type Point struct {
	Code    string
	P       int
	Policy  string
	CacheMB int
	Result  *rebuild.Result
}

// Sweep runs the full cross product of codes, primes, policies and
// cache sizes. The same seed gives every policy the same error trace
// for a given (code, prime), so policies are directly comparable.
func Sweep(p Params) ([]Point, error) {
	var out []Point
	for _, codeName := range p.Codes {
		for _, prime := range p.Primes {
			code, err := ResolveGeometry(codeName, prime)
			if err != nil {
				return nil, err
			}
			errors, err := trace.Generate(code, trace.Config{
				Groups:  p.Groups,
				Stripes: p.Stripes,
				Seed:    p.Seed,
				Disk:    -1,
				Dist:    p.Dist,
			})
			if err != nil {
				return nil, err
			}
			for _, policy := range p.Policies {
				for _, sizeMB := range p.CacheSizesMB {
					res, err := rebuild.Run(rebuild.Config{
						Code:            code,
						Policy:          policy,
						Strategy:        p.Strategy,
						Workers:         p.Workers,
						CacheChunks:     p.CacheChunks(sizeMB),
						ChunkSize:       p.ChunkSizeKB * 1024,
						Stripes:         p.Stripes,
						SkipSpareWrites: p.FastIO,
						ChargeSchemeGen: p.ChargeSchemeGen,
					}, errors)
					if err != nil {
						return nil, fmt.Errorf("experiments: %s(p=%d) %s %dMB: %w", codeName, prime, policy, sizeMB, err)
					}
					out = append(out, Point{Code: codeName, P: prime, Policy: policy, CacheMB: sizeMB, Result: res})
				}
			}
		}
	}
	return out, nil
}

// Metric extracts a scalar from a result.
type Metric struct {
	Name   string
	Unit   string
	Better string // "higher" or "lower"
	Value  func(*rebuild.Result) float64
}

// The four metrics of the paper's Section IV.
var (
	MetricHitRatio = Metric{
		Name: "hit ratio", Unit: "", Better: "higher",
		Value: func(r *rebuild.Result) float64 { return r.HitRatio() },
	}
	MetricDiskReads = Metric{
		Name: "disk reads", Unit: "ops", Better: "lower",
		Value: func(r *rebuild.Result) float64 { return float64(r.DiskReads) },
	}
	MetricResponse = Metric{
		Name: "avg response time", Unit: "ms", Better: "lower",
		Value: func(r *rebuild.Result) float64 { return r.AvgResponse().Milliseconds() },
	}
	MetricReconTime = Metric{
		Name: "reconstruction time", Unit: "ms", Better: "lower",
		Value: func(r *rebuild.Result) float64 { return r.Makespan.Milliseconds() },
	}
)

// Panel is one sub-plot of a figure: a (code, prime) pair with one
// series per policy over the cache-size axis.
type Panel struct {
	Code   string
	P      int
	Sizes  []int                // MB, the x axis
	Series map[string][]float64 // policy -> y values aligned with Sizes
}

// Figure is a reproduced paper figure.
type Figure struct {
	ID     string
	Title  string
	Metric Metric
	Panels []Panel
}

// BuildFigure groups sweep points into panels for the given metric.
func BuildFigure(id, title string, metric Metric, points []Point, params Params) *Figure {
	fig := &Figure{ID: id, Title: title, Metric: metric}
	type key struct {
		code string
		p    int
	}
	index := map[key]*Panel{}
	var order []key
	for _, pt := range points {
		k := key{pt.Code, pt.P}
		panel, ok := index[k]
		if !ok {
			panel = &Panel{Code: pt.Code, P: pt.P, Sizes: params.CacheSizesMB, Series: map[string][]float64{}}
			index[k] = panel
			order = append(order, k)
		}
		panel.Series[pt.Policy] = append(panel.Series[pt.Policy], metric.Value(pt.Result))
	}
	for _, k := range order {
		fig.Panels = append(fig.Panels, *index[k])
	}
	return fig
}
