// Package experiments defines the paper's evaluation artefacts — Figure
// 8 (hit ratio), Figure 9 (disk reads), Figure 10 (response time),
// Figure 11 (reconstruction time), Table IV (FBF overhead) and Table V
// (maximum improvements) — as parameterized sweeps over the
// reconstruction engine, with text/CSV renderers that print the same
// rows and series the paper reports.
package experiments

import (
	"fmt"

	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/lrc"
	"fbf/internal/obs"
	"fbf/internal/rebuild"
	"fbf/internal/sim"
	"fbf/internal/trace"
)

// ResolveGeometry returns the code geometry for a sweep entry: the four
// XOR-based 3DFT families by name, or "lrc" for the Azure
// LRC(12,2,2) on p-1 rows (the Reed-Solomon-based counterpart of the
// paper's footnote 3).
func ResolveGeometry(name string, p int) (core.Geometry, error) {
	if name == "lrc" {
		rows := p - 1
		if rows < 1 {
			rows = 1
		}
		return lrc.New(12, 2, 2, rows)
	}
	return codes.New(name, p)
}

// Params configures a sweep. The zero value is unusable; start from
// DefaultParams (the paper's configuration scaled to a workstation) and
// override.
type Params struct {
	Codes        []string // code family names
	Primes       []int    // prime parameter values
	Policies     []string // cache policies to compare
	CacheSizesMB []int    // total cache sizes in MB (the paper's x axes)

	ChunkSizeKB int // paper: 32 KB
	Workers     int // paper: 128 parallel recovery processes
	Groups      int // partial stripe error groups per run
	Stripes     int // stripes on the simulated array
	Seed        int64
	Strategy    core.Strategy
	Dist        trace.SizeDist

	// FastIO skips spare writes, which are identical across policies;
	// hit-ratio and read-count sweeps run faster with it set.
	FastIO bool
	// ChargeSchemeGen folds measured scheme-generation wall time into
	// the simulated clock (used by the Table IV runs).
	ChargeSchemeGen bool

	// Parallelism bounds how many sweep points run concurrently: 0
	// means GOMAXPROCS, 1 forces the serial path. Every run is an
	// isolated deterministic simulation, so the results (values and
	// order) are identical at any parallelism level.
	Parallelism int
	// Progress, when non-nil, is called after each completed run with
	// (completed, total) for the current sweep. Calls are serialized
	// but may come from worker goroutines.
	Progress func(done, total int)

	// Observe, when non-nil, is consulted once per sweep point before
	// its run; returning a non-zero RunObs attaches that tracer and/or
	// metrics registry to the point's rebuild.Config. The hook may be
	// called from worker goroutines, concurrently, in arbitrary order —
	// but each point's (code, p, policy, sizeMB) key is stable, so a
	// per-point sink observes the identical event stream at any
	// Parallelism (each run is a single-threaded simulation stamped in
	// simulated time). Return the zero RunObs to leave a point
	// unobserved.
	Observe func(code string, p int, policy string, sizeMB int) RunObs
}

// RunObs carries the observability sinks for one sweep point. The zero
// value attaches nothing.
type RunObs struct {
	Tracer          obs.Tracer
	Metrics         *obs.Registry
	MetricsInterval sim.Time
}

// validateAxes checks the sweep axes an artefact actually uses.
func (p Params) validateAxes(needPolicies, needSizes bool) error {
	if len(p.Codes) == 0 {
		return fmt.Errorf("experiments: no codes configured")
	}
	if len(p.Primes) == 0 {
		return fmt.Errorf("experiments: no primes configured")
	}
	if needPolicies && len(p.Policies) == 0 {
		return fmt.Errorf("experiments: no cache policies configured")
	}
	if needSizes {
		if len(p.CacheSizesMB) == 0 {
			return fmt.Errorf("experiments: no cache sizes configured")
		}
		for _, mb := range p.CacheSizesMB {
			if mb < 0 {
				return fmt.Errorf("experiments: negative cache size %d MB", mb)
			}
		}
	}
	return nil
}

// validateEngine checks the per-run engine parameters.
func (p Params) validateEngine() error {
	switch {
	case p.ChunkSizeKB <= 0:
		return fmt.Errorf("experiments: non-positive chunk size %d KB (start from DefaultParams, not the zero value)", p.ChunkSizeKB)
	case p.Workers <= 0:
		return fmt.Errorf("experiments: non-positive worker count %d", p.Workers)
	case p.Groups <= 0:
		return fmt.Errorf("experiments: non-positive group count %d", p.Groups)
	case p.Stripes <= 0:
		return fmt.Errorf("experiments: non-positive stripe count %d", p.Stripes)
	case p.Parallelism < 0:
		return fmt.Errorf("experiments: negative parallelism %d", p.Parallelism)
	}
	return nil
}

// Validate checks that the full sweep cross product is runnable. Sweep
// calls it once up front so a bad field fails fast with a clear error
// instead of deep inside a run (or as a division by zero when Params
// was built from the zero value).
func (p Params) Validate() error {
	if err := p.validateAxes(true, true); err != nil {
		return err
	}
	return p.validateEngine()
}

// DefaultParams returns the paper's evaluation configuration, with the
// group count scaled down from a full 1 TB disk to a tractable run
// (ratios and crossovers are scale invariant; raise Groups for
// paper-scale runs).
func DefaultParams() Params {
	return Params{
		Codes:        []string{"star", "triplestar", "tip", "hdd1"},
		Primes:       []int{7, 11, 13},
		Policies:     []string{"fifo", "lru", "lfu", "arc", "fbf"},
		CacheSizesMB: []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048},
		ChunkSizeKB:  32,
		Workers:      128,
		Groups:       256,
		Stripes:      1 << 14,
		Seed:         1,
		Strategy:     core.StrategyLooped,
	}
}

// CacheChunks converts a cache size in MB to chunks. With a
// non-positive ChunkSizeKB (a Params built from the zero value rather
// than DefaultParams) it returns 0 instead of dividing by zero; Sweep
// and the other artefacts reject such Params up front via Validate.
func (p Params) CacheChunks(sizeMB int) int {
	if p.ChunkSizeKB <= 0 {
		return 0
	}
	return sizeMB * 1024 / p.ChunkSizeKB
}

// Point is one sweep measurement.
type Point struct {
	Code    string
	P       int
	Policy  string
	CacheMB int
	Result  *rebuild.Result
}

// sweepPrep is the shared read-only input of every run of one
// (code, prime) pair: the resolved geometry and the generated error
// trace. One prep is shared by all that pair's policy/size points —
// concurrent rebuild.Run calls only read the geometry and the trace
// (see rebuild.Run's concurrency contract), so regenerating the trace
// per point would be pure waste.
type sweepPrep struct {
	codeName string
	prime    int
	code     core.Geometry
	errors   []core.PartialStripeError
}

// prepareTraces resolves the geometry and generates the error trace for
// every (code, prime) pair of the sweep, in parallel. The returned
// slice is ordered codes-major, matching the sweep enumeration.
func prepareTraces(p Params) ([]sweepPrep, error) {
	preps := make([]sweepPrep, 0, len(p.Codes)*len(p.Primes))
	for _, codeName := range p.Codes {
		for _, prime := range p.Primes {
			preps = append(preps, sweepPrep{codeName: codeName, prime: prime})
		}
	}
	err := forEachIndexed(p.parallelism(), len(preps), nil, func(i int) error {
		code, err := ResolveGeometry(preps[i].codeName, preps[i].prime)
		if err != nil {
			return err
		}
		errors, err := trace.Generate(code, trace.Config{
			Groups:  p.Groups,
			Stripes: p.Stripes,
			Seed:    p.Seed,
			Disk:    -1,
			Dist:    p.Dist,
		})
		if err != nil {
			return err
		}
		preps[i].code, preps[i].errors = code, errors
		return nil
	})
	if err != nil {
		return nil, err
	}
	return preps, nil
}

// Sweep runs the full cross product of codes, primes, policies and
// cache sizes. The same seed gives every policy the same error trace
// for a given (code, prime), so policies are directly comparable.
//
// Runs execute concurrently up to Params.Parallelism (default
// GOMAXPROCS) and the returned points are in exactly the serial
// enumeration order (codes, then primes, then policies, then sizes)
// with identical Result metrics — each run is an isolated
// deterministic simulation, so the schedule cannot leak into the
// measurements and BuildFigure's order-dependent series assembly is
// byte-stable at any parallelism.
func Sweep(p Params) ([]Point, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	preps, err := prepareTraces(p)
	if err != nil {
		return nil, err
	}
	perPrep := len(p.Policies) * len(p.CacheSizesMB)
	out := make([]Point, len(preps)*perPrep)
	err = forEachIndexed(p.parallelism(), len(out), p.Progress, func(i int) error {
		prep := preps[i/perPrep]
		policy := p.Policies[(i%perPrep)/len(p.CacheSizesMB)]
		sizeMB := p.CacheSizesMB[i%len(p.CacheSizesMB)]
		cfg := rebuild.Config{
			Code:            prep.code,
			Policy:          policy,
			Strategy:        p.Strategy,
			Workers:         p.Workers,
			CacheChunks:     p.CacheChunks(sizeMB),
			ChunkSize:       p.ChunkSizeKB * 1024,
			Stripes:         p.Stripes,
			SkipSpareWrites: p.FastIO,
			ChargeSchemeGen: p.ChargeSchemeGen,
		}
		if p.Observe != nil {
			o := p.Observe(prep.codeName, prep.prime, policy, sizeMB)
			cfg.Tracer = o.Tracer
			cfg.Metrics = o.Metrics
			cfg.MetricsInterval = o.MetricsInterval
		}
		res, err := rebuild.Run(cfg, prep.errors)
		if err != nil {
			return fmt.Errorf("experiments: %s(p=%d) %s %dMB: %w", prep.codeName, prep.prime, policy, sizeMB, err)
		}
		out[i] = Point{Code: prep.codeName, P: prep.prime, Policy: policy, CacheMB: sizeMB, Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Metric extracts a scalar from a result.
type Metric struct {
	Name   string
	Unit   string
	Better string // "higher" or "lower"
	Value  func(*rebuild.Result) float64
}

// The four metrics of the paper's Section IV.
var (
	MetricHitRatio = Metric{
		Name: "hit ratio", Unit: "", Better: "higher",
		Value: func(r *rebuild.Result) float64 { return r.HitRatio() },
	}
	MetricDiskReads = Metric{
		Name: "disk reads", Unit: "ops", Better: "lower",
		Value: func(r *rebuild.Result) float64 { return float64(r.DiskReads) },
	}
	MetricResponse = Metric{
		Name: "avg response time", Unit: "ms", Better: "lower",
		Value: func(r *rebuild.Result) float64 { return r.AvgResponse().Milliseconds() },
	}
	MetricReconTime = Metric{
		Name: "reconstruction time", Unit: "ms", Better: "lower",
		Value: func(r *rebuild.Result) float64 { return r.Makespan.Milliseconds() },
	}
)

// Panel is one sub-plot of a figure: a (code, prime) pair with one
// series per policy over the cache-size axis.
type Panel struct {
	Code   string
	P      int
	Sizes  []int                // MB, the x axis
	Series map[string][]float64 // policy -> y values aligned with Sizes
}

// Figure is a reproduced paper figure.
type Figure struct {
	ID     string
	Title  string
	Metric Metric
	Panels []Panel
}

// BuildFigure groups sweep points into panels for the given metric.
func BuildFigure(id, title string, metric Metric, points []Point, params Params) *Figure {
	fig := &Figure{ID: id, Title: title, Metric: metric}
	type key struct {
		code string
		p    int
	}
	index := map[key]*Panel{}
	var order []key
	for _, pt := range points {
		k := key{pt.Code, pt.P}
		panel, ok := index[k]
		if !ok {
			panel = &Panel{Code: pt.Code, P: pt.P, Sizes: params.CacheSizesMB, Series: map[string][]float64{}}
			index[k] = panel
			order = append(order, k)
		}
		panel.Series[pt.Policy] = append(panel.Series[pt.Policy], metric.Value(pt.Result))
	}
	for _, k := range order {
		fig.Panels = append(fig.Panels, *index[k])
	}
	return fig
}
