package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fbf/internal/rebuild"
	"fbf/internal/sim"
)

func TestOnlineRecoveryExperiment(t *testing.T) {
	p := smallParams()
	p.Policies = []string{"lru", "fbf"}
	rows, err := OnlineRecovery(p, rebuild.AppWorkload{
		Requests:     200,
		Interarrival: 200 * sim.Microsecond,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.QuietRecoveryMs <= 0 || r.LoadedRecoveryMs <= 0 {
			t.Errorf("%s: missing recovery times %+v", r.Policy, r)
		}
		if r.LoadedRecoveryMs < r.QuietRecoveryMs {
			t.Errorf("%s: load sped recovery up", r.Policy)
		}
		if r.SlowdownPct < 0 {
			t.Errorf("%s: negative slowdown %.2f", r.Policy, r.SlowdownPct)
		}
		if r.AppAvgMs <= 0 {
			t.Errorf("%s: missing app response time", r.Policy)
		}
	}
	// FBF still finishes first under load.
	var lru, fbf OnlineRow
	for _, r := range rows {
		switch r.Policy {
		case "lru":
			lru = r
		case "fbf":
			fbf = r
		}
	}
	if fbf.LoadedRecoveryMs > lru.LoadedRecoveryMs {
		t.Errorf("FBF loaded recovery %.2f > LRU %.2f", fbf.LoadedRecoveryMs, lru.LoadedRecoveryMs)
	}

	var buf bytes.Buffer
	if err := RenderOnline(&buf, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ONLINE RECOVERY", "quiet(ms)", "loaded(ms)", "fbf"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestOnlineRecoveryDefaults(t *testing.T) {
	// Zero-valued workload fields get the documented defaults; the run
	// must still complete.
	p := smallParams()
	p.Policies = []string{"lru"}
	p.Groups = 8
	rows, err := OnlineRecovery(p, rebuild.AppWorkload{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestOnlineRecoveryBadCode(t *testing.T) {
	p := smallParams()
	p.Codes = []string{"bogus"}
	if _, err := OnlineRecovery(p, rebuild.AppWorkload{}); err == nil {
		t.Error("bogus code accepted")
	}
}

func TestModeComparisonExperiment(t *testing.T) {
	p := smallParams()
	p.Policies = []string{"lru", "fbf"}
	rows, err := ModeComparison(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SORMs <= 0 || r.DORMs <= 0 {
			t.Errorf("%s: missing makespans %+v", r.Policy, r)
		}
		if r.SORHit < 0 || r.SORHit > 1 || r.DORHit < 0 || r.DORHit > 1 {
			t.Errorf("%s: hit ratios out of range %+v", r.Policy, r)
		}
	}
	// DOR's shared cache sees every request: its hit ratio is policy
	// independent at this ample size and at least SOR-LRU's.
	var lru ModeRow
	for _, r := range rows {
		if r.Policy == "lru" {
			lru = r
		}
	}
	if lru.DORHit < lru.SORHit {
		t.Errorf("DOR shared cache (%.4f) below SOR partitions (%.4f) for LRU", lru.DORHit, lru.SORHit)
	}

	var buf bytes.Buffer
	if err := RenderModes(&buf, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Disk-Oriented", "sor(ms)", "dor(ms)"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestModeComparisonBadCode(t *testing.T) {
	p := smallParams()
	p.Codes = []string{"bogus"}
	if _, err := ModeComparison(p); err == nil {
		t.Error("bogus code accepted")
	}
}
