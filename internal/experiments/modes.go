package experiments

import (
	"fmt"
	"io"

	"fbf/internal/rebuild"
)

// ModeRow compares stripe-oriented and disk-oriented reconstruction for
// one (code, prime, policy).
type ModeRow struct {
	Code   string
	P      int
	Policy string

	SORMs  float64 // SOR reconstruction time
	DORMs  float64 // DOR reconstruction time
	SORHit float64
	DORHit float64
}

// ModeComparison runs the SOR-vs-DOR ablation (Section III-B of the
// paper) at a fixed representative cache size (64 MB total). One trace
// is generated per (code, prime) and shared read-only by that pair's
// policy rows, which run concurrently up to Params.Parallelism in the
// serial enumeration order.
func ModeComparison(p Params) ([]ModeRow, error) {
	if err := p.validateAxes(true, false); err != nil {
		return nil, err
	}
	if err := p.validateEngine(); err != nil {
		return nil, err
	}
	preps, err := prepareTraces(p)
	if err != nil {
		return nil, err
	}
	rows := make([]ModeRow, len(preps)*len(p.Policies))
	err = forEachIndexed(p.parallelism(), len(rows), p.Progress, func(i int) error {
		prep := preps[i/len(p.Policies)]
		policy := p.Policies[i%len(p.Policies)]
		base := rebuild.Config{
			Code: prep.code, Policy: policy, Strategy: p.Strategy,
			Workers: p.Workers, CacheChunks: p.CacheChunks(64),
			ChunkSize: p.ChunkSizeKB * 1024, Stripes: p.Stripes,
		}
		sor, err := rebuild.Run(base, prep.errors)
		if err != nil {
			return err
		}
		dorCfg := base
		dorCfg.Mode = rebuild.ModeDOR
		dor, err := rebuild.Run(dorCfg, prep.errors)
		if err != nil {
			return err
		}
		rows[i] = ModeRow{
			Code: prep.codeName, P: prep.prime, Policy: policy,
			SORMs: sor.Makespan.Milliseconds(), DORMs: dor.Makespan.Milliseconds(),
			SORHit: sor.HitRatio(), DORHit: dor.HitRatio(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderModes prints the SOR-vs-DOR table.
func RenderModes(w io.Writer, rows []ModeRow) error {
	if _, err := fmt.Fprintln(w, "== ABLATION: Stripe-Oriented vs Disk-Oriented Reconstruction =="); err != nil {
		return err
	}
	table := [][]string{{"code", "p", "policy", "sor(ms)", "dor(ms)", "sor-hit", "dor-hit"}}
	for _, r := range rows {
		table = append(table, []string{
			r.Code,
			fmt.Sprintf("%d", r.P),
			r.Policy,
			fmt.Sprintf("%.2f", r.SORMs),
			fmt.Sprintf("%.2f", r.DORMs),
			fmt.Sprintf("%.4f", r.SORHit),
			fmt.Sprintf("%.4f", r.DORHit),
		})
	}
	return renderAligned(w, table)
}
