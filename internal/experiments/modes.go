package experiments

import (
	"fmt"
	"io"

	"fbf/internal/rebuild"
	"fbf/internal/trace"
)

// ModeRow compares stripe-oriented and disk-oriented reconstruction for
// one (code, prime, policy).
type ModeRow struct {
	Code   string
	P      int
	Policy string

	SORMs  float64 // SOR reconstruction time
	DORMs  float64 // DOR reconstruction time
	SORHit float64
	DORHit float64
}

// ModeComparison runs the SOR-vs-DOR ablation (Section III-B of the
// paper) at a fixed representative cache size (64 MB total).
func ModeComparison(p Params) ([]ModeRow, error) {
	var rows []ModeRow
	for _, codeName := range p.Codes {
		for _, prime := range p.Primes {
			code, err := ResolveGeometry(codeName, prime)
			if err != nil {
				return nil, err
			}
			errors, err := trace.Generate(code, trace.Config{
				Groups: p.Groups, Stripes: p.Stripes, Seed: p.Seed, Disk: -1, Dist: p.Dist,
			})
			if err != nil {
				return nil, err
			}
			for _, policy := range p.Policies {
				base := rebuild.Config{
					Code: code, Policy: policy, Strategy: p.Strategy,
					Workers: p.Workers, CacheChunks: p.CacheChunks(64),
					ChunkSize: p.ChunkSizeKB * 1024, Stripes: p.Stripes,
				}
				sor, err := rebuild.Run(base, errors)
				if err != nil {
					return nil, err
				}
				dorCfg := base
				dorCfg.Mode = rebuild.ModeDOR
				dor, err := rebuild.Run(dorCfg, errors)
				if err != nil {
					return nil, err
				}
				rows = append(rows, ModeRow{
					Code: codeName, P: prime, Policy: policy,
					SORMs: sor.Makespan.Milliseconds(), DORMs: dor.Makespan.Milliseconds(),
					SORHit: sor.HitRatio(), DORHit: dor.HitRatio(),
				})
			}
		}
	}
	return rows, nil
}

// RenderModes prints the SOR-vs-DOR table.
func RenderModes(w io.Writer, rows []ModeRow) error {
	if _, err := fmt.Fprintln(w, "== ABLATION: Stripe-Oriented vs Disk-Oriented Reconstruction =="); err != nil {
		return err
	}
	table := [][]string{{"code", "p", "policy", "sor(ms)", "dor(ms)", "sor-hit", "dor-hit"}}
	for _, r := range rows {
		table = append(table, []string{
			r.Code,
			fmt.Sprintf("%d", r.P),
			r.Policy,
			fmt.Sprintf("%.2f", r.SORMs),
			fmt.Sprintf("%.2f", r.DORMs),
			fmt.Sprintf("%.4f", r.SORHit),
			fmt.Sprintf("%.4f", r.DORHit),
		})
	}
	return renderAligned(w, table)
}
