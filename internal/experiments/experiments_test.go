package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fbf/internal/core"
	"fbf/internal/trace"
)

// smallParams keeps experiment tests fast while preserving the regime
// the paper targets (per-worker cache smaller than a group's working
// set at the small end of the sweep).
func smallParams() Params {
	p := DefaultParams()
	p.Codes = []string{"tip"}
	p.Primes = []int{7}
	p.Policies = []string{"lru", "fbf"}
	p.CacheSizesMB = []int{1, 8, 512} // 4, 32, 2048 chunks per worker
	p.Workers = 8
	p.Groups = 32
	p.Stripes = 512
	return p
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.ChunkSizeKB != 32 {
		t.Errorf("chunk size %d KB, paper uses 32 KB", p.ChunkSizeKB)
	}
	if p.Workers != 128 {
		t.Errorf("workers %d, paper uses 128", p.Workers)
	}
	if len(p.Codes) != 4 {
		t.Errorf("codes %v, paper compares 4", p.Codes)
	}
	if p.Strategy != core.StrategyLooped {
		t.Error("default strategy should be the FBF looped scheme")
	}
	if p.Dist != trace.SizeUniform {
		t.Error("default size distribution should be uniform, like the paper")
	}
	if got := p.CacheChunks(8); got != 256 {
		t.Errorf("8MB = %d chunks, want 256", got)
	}
}

func TestSweepShape(t *testing.T) {
	p := smallParams()
	points, err := Sweep(p)
	if err != nil {
		t.Fatal(err)
	}
	want := len(p.Codes) * len(p.Primes) * len(p.Policies) * len(p.CacheSizesMB)
	if len(points) != want {
		t.Fatalf("got %d points, want %d", len(points), want)
	}
	// Same (code,p) trace: total requests equal across policies and
	// cache sizes for the looped strategy.
	base := points[0].Result.TotalRequests
	for _, pt := range points {
		if pt.Result.TotalRequests != base {
			t.Fatalf("request counts differ across sweep: %d vs %d", pt.Result.TotalRequests, base)
		}
	}
}

func TestFig8ShapeAndDominance(t *testing.T) {
	p := smallParams()
	fig, err := Fig8(p)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig8" || len(fig.Panels) != 1 {
		t.Fatalf("unexpected figure %+v", fig)
	}
	panel := fig.Panels[0]
	fbf := panel.Series["fbf"]
	lru := panel.Series["lru"]
	if len(fbf) != 3 || len(lru) != 3 {
		t.Fatalf("series lengths %d/%d", len(fbf), len(lru))
	}
	// Hit ratio is monotone nondecreasing in cache size for FBF here and
	// FBF >= LRU at the tight sizes; both converge at the plateau.
	if fbf[0] < lru[0] {
		t.Errorf("tight cache: fbf %.4f < lru %.4f", fbf[0], lru[0])
	}
	if fbf[2] != lru[2] {
		t.Errorf("plateau differs: fbf %.4f lru %.4f", fbf[2], lru[2])
	}
	if fbf[0] > fbf[2]+1e-12 {
		t.Errorf("fbf hit ratio decreased with cache size: %v", fbf)
	}
}

func TestFig9UsesTIPOnly(t *testing.T) {
	p := smallParams()
	p.Codes = []string{"star", "tip"} // Fig9 must override to TIP
	p.Primes = []int{5}
	fig, err := Fig9(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, panel := range fig.Panels {
		if panel.Code != "tip" {
			t.Errorf("Fig9 panel uses %s", panel.Code)
		}
	}
	// Reads decrease (weakly) as cache grows.
	for policy, series := range fig.Panels[0].Series {
		for i := 1; i < len(series); i++ {
			if series[i] > series[i-1] {
				t.Errorf("%s reads increase with cache: %v", policy, series)
			}
		}
	}
}

func TestFig10And11Run(t *testing.T) {
	p := smallParams()
	p.CacheSizesMB = []int{8, 512}
	fig10, err := Fig10(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range fig10.Panels[0].Series {
		for _, v := range series {
			if v <= 0 {
				t.Error("response time must be positive")
			}
		}
	}
	fig11, err := Fig11(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range fig11.Panels[0].Series {
		if series[len(series)-1] > series[0] {
			t.Errorf("reconstruction time grew with cache: %v", series)
		}
	}
}

func TestTable4(t *testing.T) {
	p := smallParams()
	p.Primes = []int{5, 7}
	p.Codes = []string{"tip", "star"}
	rows, err := Table4(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Overhead <= 0 {
			t.Errorf("%s p=%d: zero overhead", r.Code, r.P)
		}
		if r.Percent <= 0 || r.Percent > 50 {
			t.Errorf("%s p=%d: implausible overhead percentage %.3f", r.Code, r.P, r.Percent)
		}
	}
}

func TestTable5(t *testing.T) {
	p := smallParams()
	p.Policies = []string{"fifo", "lru", "lfu", "arc", "fbf"}
	p.CacheSizesMB = []int{1, 2, 8, 64}
	p.FastIO = false
	points, err := Sweep(p)
	if err != nil {
		t.Fatal(err)
	}
	imps := Table5(points)
	if len(imps) != 16 { // 4 metrics x 4 baselines
		t.Fatalf("got %d improvements", len(imps))
	}
	for _, imp := range imps {
		if imp.Metric == MetricHitRatio.Name && imp.Percent <= 0 {
			t.Errorf("FBF hit-ratio gain over %s is %.2f%%", imp.Baseline, imp.Percent)
		}
	}
}

func TestSchemeAblation(t *testing.T) {
	p := smallParams()
	rows, err := SchemeAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	r := rows[0]
	if r.Looped >= r.Typical {
		t.Errorf("looped %.2f >= typical %.2f unique fetches", r.Looped, r.Typical)
	}
	if r.Greedy > r.Looped {
		t.Errorf("greedy %.2f > looped %.2f unique fetches", r.Greedy, r.Looped)
	}
	if r.LoopedSavingPct <= 0 {
		t.Errorf("looped saving %.2f%%", r.LoopedSavingPct)
	}
}

func TestRenderers(t *testing.T) {
	p := smallParams()
	fig, err := Fig8(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderFigure(&buf, fig, p.Policies); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FIG8", "tip (P=7)", "cache(MB)", "fbf"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figure missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := RenderFigureCSV(&buf, fig); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(p.Policies)*len(p.CacheSizesMB) {
		t.Errorf("CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "code,p,cache_mb,policy,") {
		t.Errorf("CSV header = %q", lines[0])
	}

	rows, err := Table4(Params{Codes: []string{"tip"}, Primes: []int{5}, Groups: 8, Stripes: 64, Seed: 1, Workers: 4, ChunkSizeKB: 32, Strategy: core.StrategyLooped})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := RenderTable4(&buf, rows, []string{"tip"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE IV") || !strings.Contains(buf.String(), "P = 5") {
		t.Errorf("Table IV render wrong:\n%s", buf.String())
	}

	points, err := Sweep(p)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := RenderTable5(&buf, Table5(points)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE V") {
		t.Errorf("Table V render wrong:\n%s", buf.String())
	}

	ab, err := SchemeAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := RenderSchemeAblation(&buf, ab); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ABLATION") {
		t.Errorf("ablation render wrong:\n%s", buf.String())
	}
}

func TestResolveGeometry(t *testing.T) {
	code, err := ResolveGeometry("tip", 7)
	if err != nil || code.Disks() != 8 {
		t.Fatalf("tip: %v %v", code, err)
	}
	l, err := ResolveGeometry("lrc", 13)
	if err != nil {
		t.Fatal(err)
	}
	if l.Disks() != 16 || l.Rows() != 12 {
		t.Errorf("lrc geometry %d disks, %d rows", l.Disks(), l.Rows())
	}
	if _, err := ResolveGeometry("bogus", 7); err == nil {
		t.Error("bogus code accepted")
	}
}

func TestSweepIncludesLRCBoundary(t *testing.T) {
	// The footnote-3 boundary result: LRC row codewords share nothing
	// under single-disk partial errors, so every policy's hit ratio is
	// zero and FBF degenerates gracefully.
	p := smallParams()
	p.Codes = []string{"lrc"}
	p.Primes = []int{13}
	p.CacheSizesMB = []int{8, 64}
	points, err := Sweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no LRC points")
	}
	for _, pt := range points {
		if pt.Result.HitRatio() != 0 {
			t.Errorf("LRC %s@%dMB hit ratio %f, want 0", pt.Policy, pt.CacheMB, pt.Result.HitRatio())
		}
	}
}
