package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"fbf/internal/rebuild"
)

// parallelParams is a sweep big enough to exercise the pool (several
// (code, prime) preps, many points) while staying fast.
func parallelParams() Params {
	p := DefaultParams()
	p.Codes = []string{"tip", "star"}
	p.Primes = []int{5, 7}
	p.Policies = []string{"lru", "arc", "fbf"}
	p.CacheSizesMB = []int{1, 8, 64}
	p.Workers = 8
	p.Groups = 24
	p.Stripes = 512
	return p
}

// samePoints asserts two sweeps produced identical points: same order,
// same coordinates, same Result metrics (deep equality, which covers
// every simulated counter and timing — only SchemeGenWall, a real
// wall-clock measurement, is exempt).
func samePoints(t *testing.T, serial, parallel []Point) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("point counts differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, pp := serial[i], parallel[i]
		if s.Code != pp.Code || s.P != pp.P || s.Policy != pp.Policy || s.CacheMB != pp.CacheMB {
			t.Fatalf("point %d coordinates differ:\n  serial   %s(p=%d) %s %dMB\n  parallel %s(p=%d) %s %dMB",
				i, s.Code, s.P, s.Policy, s.CacheMB, pp.Code, pp.P, pp.Policy, pp.CacheMB)
		}
		// Scheme generation wall time is real time, not simulated time;
		// normalize it before comparing everything else exactly.
		sr, pr := *s.Result, *pp.Result
		sr.SchemeGenWall, pr.SchemeGenWall = 0, 0
		if !reflect.DeepEqual(sr, pr) {
			t.Errorf("point %d (%s p=%d %s %dMB) results differ:\n  serial   %+v\n  parallel %+v",
				i, s.Code, s.P, s.Policy, s.CacheMB, sr, pr)
		}
	}
}

// TestSweepParallelMatchesSerial is the core determinism guarantee:
// Sweep with Parallelism > 1 returns points in identical order with
// identical Result metrics to the serial run.
func TestSweepParallelMatchesSerial(t *testing.T) {
	p := parallelParams()

	p.Parallelism = 1
	serial, err := Sweep(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 16} {
		p.Parallelism = par
		got, err := Sweep(p)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		samePoints(t, serial, got)
	}
}

// TestFiguresIdenticalAtAnyParallelism renders Figure 8 from a serial
// and a parallel sweep and requires byte-identical output — the
// ordering guarantee BuildFigure's series assembly depends on.
func TestFiguresIdenticalAtAnyParallelism(t *testing.T) {
	p := parallelParams()
	p.Codes = []string{"tip"}

	render := func(parallelism int) string {
		p.Parallelism = parallelism
		fig, err := Fig8(p)
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := RenderFigure(&buf, fig, p.Policies); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("rendered Figure 8 differs between serial and parallel sweeps:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestArtefactsParallelMatchSerial covers the remaining sweep-shaped
// artefacts: Table 5 input sweeps, the scheme ablation, the SOR-vs-DOR
// comparison and online recovery all return identical rows at any
// parallelism. (Table 4 measures real wall time, so only its row order
// and simulated fields could be compared; its executor is the same.)
func TestArtefactsParallelMatchSerial(t *testing.T) {
	p := parallelParams()
	p.Codes = []string{"tip"}
	p.Primes = []int{5}
	p.Policies = []string{"lru", "fbf"}

	t.Run("scheme-ablation", func(t *testing.T) {
		p := p
		p.Parallelism = 1
		serial, err := SchemeAblation(p)
		if err != nil {
			t.Fatal(err)
		}
		p.Parallelism = 8
		parallel, err := SchemeAblation(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("ablation rows differ:\nserial   %+v\nparallel %+v", serial, parallel)
		}
	})
	t.Run("modes", func(t *testing.T) {
		p := p
		p.Parallelism = 1
		serial, err := ModeComparison(p)
		if err != nil {
			t.Fatal(err)
		}
		p.Parallelism = 8
		parallel, err := ModeComparison(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("mode rows differ:\nserial   %+v\nparallel %+v", serial, parallel)
		}
	})
	t.Run("online", func(t *testing.T) {
		p := p
		app := rebuild.AppWorkload{Requests: 100, Seed: 1}
		p.Parallelism = 1
		serial, err := OnlineRecovery(p, app)
		if err != nil {
			t.Fatal(err)
		}
		p.Parallelism = 8
		parallel, err := OnlineRecovery(p, app)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("online rows differ:\nserial   %+v\nparallel %+v", serial, parallel)
		}
	})
	t.Run("table4-shape", func(t *testing.T) {
		p := p
		p.Parallelism = 8
		rows, err := Table4(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0].Code != "tip" || rows[0].P != 5 {
			t.Errorf("table 4 rows = %+v", rows)
		}
	})
}

// TestSweepValidation: the zero value and half-built Params fail fast
// with clear errors instead of panicking (division by zero) deep in a
// run.
func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(Params{}); err == nil {
		t.Error("zero-value Params accepted")
	}

	p := parallelParams()
	p.ChunkSizeKB = 0
	if _, err := Sweep(p); err == nil {
		t.Error("ChunkSizeKB = 0 accepted")
	}

	p = parallelParams()
	p.Parallelism = -3
	if _, err := Sweep(p); err == nil {
		t.Error("negative parallelism accepted")
	}

	p = parallelParams()
	p.Policies = nil
	if _, err := Sweep(p); err == nil {
		t.Error("empty policies accepted")
	}

	// The CacheChunks guard itself: no panic, zero chunks.
	if got := (Params{}).CacheChunks(64); got != 0 {
		t.Errorf("zero-value CacheChunks(64) = %d, want 0", got)
	}
}

// TestSweepErrorPropagation: a failing run surfaces its wrapped error
// from the parallel path, and unstarted work is abandoned.
func TestSweepErrorPropagation(t *testing.T) {
	p := parallelParams()
	p.Policies = []string{"lru", "no-such-policy"}
	for _, par := range []int{1, 4} {
		p.Parallelism = par
		_, err := Sweep(p)
		if err == nil {
			t.Fatalf("parallelism %d: bad policy accepted", par)
		}
		if want := "no-such-policy"; !strings.Contains(err.Error(), want) {
			t.Errorf("parallelism %d: error %q does not mention %q", par, err, want)
		}
	}
}

// TestSweepProgress: the callback reports every completed run and ends
// at (total, total).
func TestSweepProgress(t *testing.T) {
	p := parallelParams()
	total := len(p.Codes) * len(p.Primes) * len(p.Policies) * len(p.CacheSizesMB)
	for _, par := range []int{1, 4} {
		var calls int32
		var mu sync.Mutex
		lastDone, lastTotal := 0, 0
		p.Parallelism = par
		p.Progress = func(done, n int) {
			atomic.AddInt32(&calls, 1)
			mu.Lock()
			if done > lastDone {
				lastDone = done
			}
			lastTotal = n
			mu.Unlock()
		}
		if _, err := Sweep(p); err != nil {
			t.Fatal(err)
		}
		if got := atomic.LoadInt32(&calls); got != int32(total) {
			t.Errorf("parallelism %d: %d progress calls, want %d", par, got, total)
		}
		if lastDone != total || lastTotal != total {
			t.Errorf("parallelism %d: final progress %d/%d, want %d/%d", par, lastDone, lastTotal, total, total)
		}
	}
}

// TestForEachIndexed pins the executor's contract directly: full
// coverage, bounded concurrency, serial-order error selection, prompt
// cancellation.
func TestForEachIndexed(t *testing.T) {
	t.Run("covers-all-indices", func(t *testing.T) {
		const n = 100
		seen := make([]int32, n)
		if err := forEachIndexed(7, n, nil, func(i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("index %d ran %d times", i, c)
			}
		}
	})
	t.Run("bounded-concurrency", func(t *testing.T) {
		var cur, peak int32
		release := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := forEachIndexed(3, 12, nil, func(i int) error {
				c := atomic.AddInt32(&cur, 1)
				for {
					p := atomic.LoadInt32(&peak)
					if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
						break
					}
				}
				<-release
				atomic.AddInt32(&cur, -1)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
		for i := 0; i < 12; i++ {
			release <- struct{}{}
		}
		wg.Wait()
		if p := atomic.LoadInt32(&peak); p > 3 {
			t.Errorf("peak concurrency %d exceeds bound 3", p)
		}
	})
	t.Run("lowest-index-error-wins", func(t *testing.T) {
		errLow := errors.New("low")
		errHigh := errors.New("high")
		err := forEachIndexed(4, 4, nil, func(i int) error {
			switch i {
			case 1:
				return errLow
			case 3:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Errorf("got error %v, want %v", err, errLow)
		}
	})
	t.Run("cancels-unstarted-work", func(t *testing.T) {
		var started int32
		err := forEachIndexed(2, 1000, nil, func(i int) error {
			atomic.AddInt32(&started, 1)
			return fmt.Errorf("boom %d", i)
		})
		if err == nil {
			t.Fatal("no error propagated")
		}
		if s := atomic.LoadInt32(&started); s > 10 {
			t.Errorf("%d jobs started after the first failure; cancellation is not prompt", s)
		}
	})
	t.Run("zero-jobs", func(t *testing.T) {
		if err := forEachIndexed(4, 0, nil, func(i int) error { return fmt.Errorf("must not run") }); err != nil {
			t.Fatal(err)
		}
	})
}

// BenchmarkSweep measures the wall-clock effect of the parallel
// executor on a DefaultParams-shaped sweep (same axes, scaled-down
// groups/stripes so a benchtime=1x run stays tractable). On a machine
// with >= 4 cores the parallel variant is expected to be >= 2x faster
// than serial; on a single-core machine the two are equivalent.
func BenchmarkSweep(b *testing.B) {
	base := DefaultParams()
	base.Primes = []int{5, 7}
	base.CacheSizesMB = []int{8, 64, 512}
	base.Workers = 16
	base.Groups = 48
	base.Stripes = 2048
	base.FastIO = true

	for _, bench := range []struct {
		name string
		par  int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS
	} {
		b.Run(bench.name, func(b *testing.B) {
			p := base
			p.Parallelism = bench.par
			for i := 0; i < b.N; i++ {
				if _, err := Sweep(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
