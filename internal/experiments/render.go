package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderFigure prints a figure as one aligned text table per panel:
// rows are cache sizes, columns are policies — the same series the
// paper plots.
func RenderFigure(w io.Writer, fig *Figure, policies []string) error {
	unit := ""
	if fig.Metric.Unit != "" {
		unit = " (" + fig.Metric.Unit + ")"
	}
	if _, err := fmt.Fprintf(w, "== %s: %s%s ==\n", strings.ToUpper(fig.ID), fig.Title, unit); err != nil {
		return err
	}
	for _, panel := range fig.Panels {
		if _, err := fmt.Fprintf(w, "\n-- %s (P=%d) --\n", panel.Code, panel.P); err != nil {
			return err
		}
		cols := policies
		if len(cols) == 0 {
			for policy := range panel.Series {
				cols = append(cols, policy)
			}
			sort.Strings(cols)
		}
		header := []string{"cache(MB)"}
		header = append(header, cols...)
		rows := [][]string{header}
		for i, size := range panel.Sizes {
			row := []string{fmt.Sprintf("%d", size)}
			for _, policy := range cols {
				series := panel.Series[policy]
				if i < len(series) {
					row = append(row, formatValue(fig.Metric, series[i]))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
		if err := renderAligned(w, rows); err != nil {
			return err
		}
	}
	return nil
}

func formatValue(m Metric, v float64) string {
	switch m.Name {
	case MetricHitRatio.Name:
		return fmt.Sprintf("%.4f", v)
	case MetricDiskReads.Name:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// RenderFigureCSV prints a figure as CSV with columns
// code,p,cache_mb,policy,value.
func RenderFigureCSV(w io.Writer, fig *Figure) error {
	if _, err := fmt.Fprintln(w, "code,p,cache_mb,policy,"+strings.ReplaceAll(fig.Metric.Name, " ", "_")); err != nil {
		return err
	}
	for _, panel := range fig.Panels {
		var policies []string
		for policy := range panel.Series {
			policies = append(policies, policy)
		}
		sort.Strings(policies)
		for _, policy := range policies {
			for i, v := range panel.Series[policy] {
				if i >= len(panel.Sizes) {
					break
				}
				if _, err := fmt.Fprintf(w, "%s,%d,%d,%s,%g\n", panel.Code, panel.P, panel.Sizes[i], policy, v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// RenderTable4 prints Table IV in the paper's layout: one block per
// prime, overhead and percentage per code.
func RenderTable4(w io.Writer, rows []OverheadRow, codes []string) error {
	if _, err := fmt.Fprintln(w, "== TABLE IV: Overhead of FBF During Partial Stripe Recovery =="); err != nil {
		return err
	}
	byPrime := map[int]map[string]OverheadRow{}
	var primes []int
	for _, r := range rows {
		if byPrime[r.P] == nil {
			byPrime[r.P] = map[string]OverheadRow{}
			primes = append(primes, r.P)
		}
		byPrime[r.P][r.Code] = r
	}
	sort.Ints(primes)
	for _, prime := range primes {
		if _, err := fmt.Fprintf(w, "\nP = %d\n", prime); err != nil {
			return err
		}
		header := append([]string{"metric"}, codes...)
		over := []string{"temporal overhead(ms)"}
		pct := []string{"percentage(%)"}
		for _, code := range codes {
			r := byPrime[prime][code]
			over = append(over, fmt.Sprintf("%.4f", float64(r.Overhead.Nanoseconds())/1e6))
			pct = append(pct, fmt.Sprintf("%.4f", r.Percent))
		}
		if err := renderAligned(w, [][]string{header, over, pct}); err != nil {
			return err
		}
	}
	return nil
}

// RenderTable5 prints Table V: maximum improvement of FBF over each
// baseline policy per metric.
func RenderTable5(w io.Writer, imps []Improvement) error {
	if _, err := fmt.Fprintln(w, "== TABLE V: Maximum Improvement of FBF Over Other Cache Policies =="); err != nil {
		return err
	}
	baselines := []string{"fifo", "lru", "lfu", "arc"}
	byMetric := map[string]map[string]Improvement{}
	var order []string
	for _, imp := range imps {
		if byMetric[imp.Metric] == nil {
			byMetric[imp.Metric] = map[string]Improvement{}
			order = append(order, imp.Metric)
		}
		byMetric[imp.Metric][imp.Baseline] = imp
	}
	rows := [][]string{append([]string{"metric"}, baselines...)}
	for _, metric := range order {
		row := []string{metric}
		for _, b := range baselines {
			imp, ok := byMetric[metric][b]
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f%%", imp.Percent))
		}
		rows = append(rows, row)
	}
	return renderAligned(w, rows)
}

// RenderSchemeAblation prints the chain-selection ablation table.
func RenderSchemeAblation(w io.Writer, rows []SchemeComparison) error {
	if _, err := fmt.Fprintln(w, "== ABLATION: Unique Chunk Reads per Error Group by Scheme Strategy =="); err != nil {
		return err
	}
	table := [][]string{{"code", "p", "typical", "looped", "greedy", "looped saves", "greedy adds"}}
	for _, r := range rows {
		table = append(table, []string{
			r.Code,
			fmt.Sprintf("%d", r.P),
			fmt.Sprintf("%.2f", r.Typical),
			fmt.Sprintf("%.2f", r.Looped),
			fmt.Sprintf("%.2f", r.Greedy),
			fmt.Sprintf("%.2f%%", r.LoopedSavingPct),
			fmt.Sprintf("%.2f%%", r.GreedyExtraSavePct),
		})
	}
	return renderAligned(w, table)
}

// renderAligned prints rows with columns padded to equal width.
func renderAligned(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var sb strings.Builder
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " ")); err != nil {
			return err
		}
	}
	return nil
}
