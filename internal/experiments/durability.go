package experiments

import (
	"fmt"
	"io"

	"fbf/internal/rebuild"
	"fbf/internal/sim"
)

// DurabilityConfig parameterizes the durability sweep: how often does
// partial stripe recovery end in data loss, and what does surviving
// cost, as the latent-sector-error (URE) rate climbs and disks keep
// failing mid-rebuild?
type DurabilityConfig struct {
	// URERates is the swept per-address unrecoverable-read-error
	// probability axis. Required.
	URERates []float64

	// TransientRate is the per-attempt transient-timeout probability
	// applied to every trial (exercises the retry ladder).
	TransientRate float64

	// FaultSeed derives each trial's fault schedule; trial t of a row
	// uses FaultSeed + t, so trials differ but the whole sweep is a pure
	// function of the configuration.
	FaultSeed int64

	// Trials is the number of fault schedules averaged per row
	// (default 5). Failure disks rotate across trials.
	Trials int

	// SecondFailureAt / ThirdFailureAt, when positive, inject one / two
	// additional whole-disk failures at the given simulated times,
	// modeling the cascading-failure window the paper's 3DFT setting
	// exists to survive.
	SecondFailureAt sim.Time
	ThirdFailureAt  sim.Time

	// CacheMB is the cache size used for every run (default 64).
	CacheMB int
}

func (d DurabilityConfig) withDefaults() DurabilityConfig {
	if d.Trials == 0 {
		d.Trials = 5
	}
	if d.CacheMB == 0 {
		d.CacheMB = 64
	}
	return d
}

func (d DurabilityConfig) validate() error {
	if len(d.URERates) == 0 {
		return fmt.Errorf("experiments: durability sweep needs at least one URE rate")
	}
	for _, r := range d.URERates {
		if r < 0 || r >= 1 {
			return fmt.Errorf("experiments: URE rate %v outside [0, 1)", r)
		}
	}
	if d.TransientRate < 0 || d.TransientRate >= 1 {
		return fmt.Errorf("experiments: transient rate %v outside [0, 1)", d.TransientRate)
	}
	if d.Trials < 0 {
		return fmt.Errorf("experiments: negative trial count %d", d.Trials)
	}
	if d.CacheMB < 0 {
		return fmt.Errorf("experiments: negative cache size %d MB", d.CacheMB)
	}
	if d.SecondFailureAt < 0 || d.ThirdFailureAt < 0 {
		return fmt.Errorf("experiments: negative failure time")
	}
	return nil
}

// DurabilityRow aggregates the trials of one (code, prime, policy,
// URE-rate) sweep cell.
type DurabilityRow struct {
	Code    string
	P       int
	Policy  string
	URERate float64
	Trials  int

	// LossTrials counts trials that ended with unrecoverable chunks;
	// LossProb is the fraction, the sweep's headline durability metric.
	LossTrials int
	LossProb   float64

	// AvgLostChunks averages the unrecoverable-chunk count over all
	// trials (zero in loss-free trials included).
	AvgLostChunks float64

	// AvgMakespanMs is the mean repair makespan — how the fault load
	// stretches recovery for this cache policy.
	AvgMakespanMs float64

	// Mean per-trial fault-path activity.
	AvgRetries       float64
	AvgEscalations   float64
	AvgRegenerations float64
}

// Durability sweeps data-loss probability and repair makespan over
// codes x primes x policies x URE rates. Each cell runs d.Trials
// independent fault schedules (seeded FaultSeed+trial, failure disks
// rotating with the trial index) against the shared per-(code, prime)
// error trace, so policies and rates are directly comparable. Rows are
// returned in serial enumeration order (codes, primes, policies, then
// rates) and, like every sweep here, are identical at any
// Params.Parallelism.
func Durability(p Params, d DurabilityConfig) ([]DurabilityRow, error) {
	d = d.withDefaults()
	if err := d.validate(); err != nil {
		return nil, err
	}
	if err := p.validateAxes(true, false); err != nil {
		return nil, err
	}
	if err := p.validateEngine(); err != nil {
		return nil, err
	}
	preps, err := prepareTraces(p)
	if err != nil {
		return nil, err
	}
	perPrep := len(p.Policies) * len(d.URERates)
	rows := make([]DurabilityRow, len(preps)*perPrep)
	err = forEachIndexed(p.parallelism(), len(rows), p.Progress, func(i int) error {
		prep := preps[i/perPrep]
		policy := p.Policies[i/len(d.URERates)%len(p.Policies)]
		ureRate := d.URERates[i%len(d.URERates)]
		row := DurabilityRow{
			Code: prep.codeName, P: prep.prime, Policy: policy,
			URERate: ureRate, Trials: d.Trials,
		}
		disks := prep.code.Disks()
		for trial := 0; trial < d.Trials; trial++ {
			faults := &rebuild.FaultConfig{
				Seed:          d.FaultSeed + int64(trial),
				URERate:       ureRate,
				TransientRate: d.TransientRate,
			}
			if d.SecondFailureAt > 0 {
				faults.DiskFailures = append(faults.DiskFailures,
					rebuild.DiskFailure{Disk: trial % disks, At: d.SecondFailureAt})
			}
			if d.ThirdFailureAt > 0 {
				faults.DiskFailures = append(faults.DiskFailures,
					rebuild.DiskFailure{Disk: (trial + 1) % disks, At: d.ThirdFailureAt})
			}
			res, err := rebuild.Run(rebuild.Config{
				Code: prep.code, Policy: policy, Strategy: p.Strategy,
				Workers: p.Workers, CacheChunks: p.CacheChunks(d.CacheMB),
				ChunkSize: p.ChunkSizeKB * 1024, Stripes: p.Stripes,
				Faults: faults,
			}, prep.errors)
			if err != nil {
				return err
			}
			if res.DataLoss {
				row.LossTrials++
			}
			row.AvgLostChunks += float64(res.LostChunks)
			row.AvgMakespanMs += res.Makespan.Milliseconds()
			row.AvgRetries += float64(res.Retries)
			row.AvgEscalations += float64(res.Escalations)
			row.AvgRegenerations += float64(res.Regenerations)
		}
		n := float64(d.Trials)
		row.LossProb = float64(row.LossTrials) / n
		row.AvgLostChunks /= n
		row.AvgMakespanMs /= n
		row.AvgRetries /= n
		row.AvgEscalations /= n
		row.AvgRegenerations /= n
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderDurability prints the durability sweep table.
func RenderDurability(w io.Writer, rows []DurabilityRow) error {
	if _, err := fmt.Fprintln(w, "== DURABILITY: Data Loss and Repair Makespan Under Injected Faults =="); err != nil {
		return err
	}
	table := [][]string{{"code", "p", "policy", "ure-rate", "trials", "loss-prob", "lost-chunks", "makespan(ms)", "retries", "escalations", "regens"}}
	for _, r := range rows {
		table = append(table, []string{
			r.Code,
			fmt.Sprintf("%d", r.P),
			r.Policy,
			fmt.Sprintf("%g", r.URERate),
			fmt.Sprintf("%d", r.Trials),
			fmt.Sprintf("%.2f", r.LossProb),
			fmt.Sprintf("%.1f", r.AvgLostChunks),
			fmt.Sprintf("%.2f", r.AvgMakespanMs),
			fmt.Sprintf("%.1f", r.AvgRetries),
			fmt.Sprintf("%.1f", r.AvgEscalations),
			fmt.Sprintf("%.1f", r.AvgRegenerations),
		})
	}
	return renderAligned(w, table)
}
