package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fbf/internal/rebuild"
)

// servingParams is the cheapest non-degenerate serving sweep: one code,
// two policies, three rates spanning light load to contention.
func servingParams() (Params, ServingSweep) {
	p := goldenParams()
	sc := ServingSweep{Rates: []float64{100, 400, 1600}, Ops: 800, Seed: 9}
	return p, sc
}

func renderServing(t *testing.T, parallelism int) ([]ServingRow, []byte) {
	t.Helper()
	p, sc := servingParams()
	p.Parallelism = parallelism
	rows, err := Serving(p, sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderServing(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if err := RenderServingCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return rows, buf.Bytes()
}

// TestServingGolden pins the serving pipeline — workload generation,
// class-split latency accounting and both renderers — byte-for-byte
// against a golden file, and requires the parallel sweep to reproduce
// the serial one exactly. Regenerate with
// `go test ./internal/experiments -run ServingGolden -update`.
func TestServingGolden(t *testing.T) {
	_, serial := renderServing(t, 1)
	_, parallel := renderServing(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel serving sweep differs from serial:\n--- parallelism 1 ---\n%s\n--- parallelism 8 ---\n%s", serial, parallel)
	}
	golden := filepath.Join("testdata", "serving_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, serial, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(serial, want) {
		t.Fatalf("serving output drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s", golden, serial, want)
	}
}

// TestServingFrontierMonotone checks the frontier's shape: within each
// (code, p, policy) series, raising the offered client rate must not
// lower the foreground p99 — the sweep enumerates rates innermost, so
// each policy's rows are consecutive and rate-ordered.
func TestServingFrontierMonotone(t *testing.T) {
	rows, _ := renderServing(t, 0)
	_, sc := servingParams()
	nRates := len(sc.Rates)
	if len(rows)%nRates != 0 {
		t.Fatalf("%d rows not divisible by %d rates", len(rows), nRates)
	}
	for s := 0; s < len(rows); s += nRates {
		series := rows[s : s+nRates]
		for i := 1; i < nRates; i++ {
			if series[i].Rate <= series[i-1].Rate {
				t.Fatalf("series %s(p=%d) %s: rates not ascending: %v then %v",
					series[i].Code, series[i].P, series[i].Policy, series[i-1].Rate, series[i].Rate)
			}
			if series[i].P99Ms < series[i-1].P99Ms {
				t.Errorf("%s(p=%d) %s: p99 fell from %.2f ms at rate %g to %.2f ms at rate %g",
					series[i].Code, series[i].P, series[i].Policy,
					series[i-1].P99Ms, series[i-1].Rate, series[i].P99Ms, series[i].Rate)
			}
		}
	}
}

// TestServingQoSSweep runs the sweep with the throttle armed (the
// concurrent path exercised under -race) and checks the QoS columns.
func TestServingQoSSweep(t *testing.T) {
	p, sc := servingParams()
	p.Parallelism = 4
	sc.Rates = []float64{400}
	sc.QoS = &rebuild.QoSConfig{SLOp99Ms: 50, InitialRate: 10, MaxRate: 50}
	rows, err := Serving(p, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.QoSSteps == 0 {
			t.Errorf("%s(p=%d) %s: no AIMD windows judged", r.Code, r.P, r.Policy)
		}
		if r.RebuildRate < 5 || r.RebuildRate > 50 {
			t.Errorf("%s(p=%d) %s: final rebuild rate %v escaped [5, 50]", r.Code, r.P, r.Policy, r.RebuildRate)
		}
		if r.Ops == 0 {
			t.Errorf("%s(p=%d) %s: no completed ops", r.Code, r.P, r.Policy)
		}
	}
}

func TestServingValidation(t *testing.T) {
	p, sc := servingParams()
	bad := sc
	bad.Rates = nil
	if _, err := Serving(p, bad); err == nil {
		t.Error("empty rate list accepted")
	}
	bad = sc
	bad.Rates = []float64{100, -5}
	if _, err := Serving(p, bad); err == nil {
		t.Error("negative rate accepted")
	}
	badP := p
	badP.Policies = nil
	if _, err := Serving(badP, sc); err == nil {
		t.Error("missing policies accepted")
	}
	badP = p
	badP.Workers = 0
	if _, err := Serving(badP, sc); err == nil {
		t.Error("zero workers accepted")
	}
}
