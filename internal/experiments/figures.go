package experiments

import (
	"fmt"
	"time"

	"fbf/internal/core"
	"fbf/internal/rebuild"
	"fbf/internal/stats"
	"fbf/internal/trace"
)

// Fig8 reproduces Figure 8: cache hit ratio during partial stripe
// reconstruction across erasure codes and primes, as a function of
// cache size.
func Fig8(p Params) (*Figure, error) {
	p.FastIO = true // spare writes do not affect hit ratio
	points, err := Sweep(p)
	if err != nil {
		return nil, err
	}
	return BuildFigure("fig8", "Cache Hit Ratio During Partial Stripe Reconstruction", MetricHitRatio, points, p), nil
}

// Fig9 reproduces Figure 9: number of disk read operations during
// recovery, TIP-code with P in {5, 7, 11, 13}.
func Fig9(p Params) (*Figure, error) {
	p.Codes = []string{"tip"}
	if len(p.Primes) == 0 {
		p.Primes = []int{5, 7, 11, 13}
	}
	p.FastIO = true
	points, err := Sweep(p)
	if err != nil {
		return nil, err
	}
	return BuildFigure("fig9", "Read Operations During Partial Stripe Reconstruction (TIP)", MetricDiskReads, points, p), nil
}

// Fig10 reproduces Figure 10: average response time of the disk array
// during recovery, across codes and primes.
func Fig10(p Params) (*Figure, error) {
	points, err := Sweep(p)
	if err != nil {
		return nil, err
	}
	return BuildFigure("fig10", "Average Response Time of Partial Stripe Reconstruction", MetricResponse, points, p), nil
}

// Fig11 reproduces Figure 11: total partial stripe reconstruction time,
// TIP-code with P in {5, 7, 11, 13}.
func Fig11(p Params) (*Figure, error) {
	p.Codes = []string{"tip"}
	if len(p.Primes) == 0 {
		p.Primes = []int{5, 7, 11, 13}
	}
	points, err := Sweep(p)
	if err != nil {
		return nil, err
	}
	return BuildFigure("fig11", "Partial Stripe Reconstruction Time (TIP)", MetricReconTime, points, p), nil
}

// OverheadRow is one cell group of Table IV: FBF's temporal overhead for
// one (code, prime).
type OverheadRow struct {
	Code     string
	P        int
	Overhead time.Duration // mean scheme-generation wall time per group
	Percent  float64       // overhead as % of per-group reconstruction time
}

// Table4 reproduces Table IV: the temporal overhead of FBF's priority
// generation, measured as real wall time of scheme generation, compared
// against the simulated per-group reconstruction time. The (prime,
// code) cells run concurrently up to Params.Parallelism; rows come back
// in the serial enumeration order (primes, then codes).
//
// Note the measured scheme-generation wall time is real time on a
// possibly-contended core, so unlike the simulated metrics it can
// fluctuate run to run (at any parallelism level, including 1).
func Table4(p Params) ([]OverheadRow, error) {
	if len(p.Primes) == 0 {
		p.Primes = []int{5, 7, 11, 13}
	}
	if err := p.validateAxes(false, false); err != nil {
		return nil, err
	}
	if err := p.validateEngine(); err != nil {
		return nil, err
	}
	type cell struct {
		prime    int
		codeName string
	}
	var cells []cell
	for _, prime := range p.Primes {
		for _, codeName := range p.Codes {
			cells = append(cells, cell{prime: prime, codeName: codeName})
		}
	}
	rows := make([]OverheadRow, len(cells))
	err := forEachIndexed(p.parallelism(), len(cells), p.Progress, func(i int) error {
		prime, codeName := cells[i].prime, cells[i].codeName
		code, err := ResolveGeometry(codeName, prime)
		if err != nil {
			return err
		}
		errors, err := trace.Generate(code, trace.Config{
			Groups: p.Groups, Stripes: p.Stripes, Seed: p.Seed, Disk: -1, Dist: p.Dist,
		})
		if err != nil {
			return err
		}
		res, err := rebuild.Run(rebuild.Config{
			Code: code, Policy: "fbf", Strategy: p.Strategy,
			Workers: p.Workers, CacheChunks: p.CacheChunks(256),
			ChunkSize: p.ChunkSizeKB * 1024, Stripes: p.Stripes,
		}, errors)
		if err != nil {
			return err
		}
		// Per-group reconstruction time: total busy reconstruction
		// spread over the groups. With W workers running in parallel,
		// aggregate reconstruction work ≈ makespan * effective workers.
		workers := p.Workers
		if workers > res.Groups {
			workers = res.Groups
		}
		perGroupMs := res.Makespan.Milliseconds() * float64(workers) / float64(res.Groups)
		overheadMs := float64(res.AvgSchemeGen().Nanoseconds()) / 1e6
		pct := 0.0
		if perGroupMs > 0 {
			pct = overheadMs / perGroupMs * 100
		}
		rows[i] = OverheadRow{Code: codeName, P: prime, Overhead: res.AvgSchemeGen(), Percent: pct}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Improvement is one cell of Table V: FBF's best improvement over one
// baseline policy on one metric, across the whole sweep.
type Improvement struct {
	Metric   string
	Baseline string
	Percent  float64 // paper convention: hit ratio as gain %, others as reduction %
	At       Point   // the sweep point where the maximum was attained
}

// Table5 reproduces Table V: the maximum improvement of FBF over each
// classic policy on the four metrics, scanned over the full sweep.
// Points are grouped by (code, prime, cache size); FBF is compared to
// each baseline within a group.
func Table5(points []Point) []Improvement {
	type key struct {
		code    string
		p       int
		cacheMB int
	}
	groups := map[key]map[string]*rebuild.Result{}
	var fbfPoints []Point
	for _, pt := range points {
		k := key{pt.Code, pt.P, pt.CacheMB}
		if groups[k] == nil {
			groups[k] = map[string]*rebuild.Result{}
		}
		groups[k][pt.Policy] = pt.Result
		if pt.Policy == "fbf" {
			fbfPoints = append(fbfPoints, pt)
		}
	}
	metrics := []Metric{MetricHitRatio, MetricDiskReads, MetricResponse, MetricReconTime}
	best := map[string]map[string]*Improvement{} // metric -> baseline -> best
	for _, m := range metrics {
		best[m.Name] = map[string]*Improvement{}
	}
	for _, fp := range fbfPoints {
		k := key{fp.Code, fp.P, fp.CacheMB}
		for baseline, baseRes := range groups[k] {
			if baseline == "fbf" {
				continue
			}
			for _, m := range metrics {
				baseVal := m.Value(baseRes)
				fbfVal := m.Value(fp.Result)
				var pct float64
				if m.Better == "higher" {
					pct = stats.Gain(baseVal, fbfVal) * 100
				} else {
					pct = stats.Improvement(baseVal, fbfVal) * 100
				}
				cur := best[m.Name][baseline]
				if cur == nil || pct > cur.Percent {
					best[m.Name][baseline] = &Improvement{Metric: m.Name, Baseline: baseline, Percent: pct, At: fp}
				}
			}
		}
	}
	var out []Improvement
	for _, m := range metrics {
		for _, baseline := range []string{"fifo", "lru", "lfu", "arc"} {
			if imp := best[m.Name][baseline]; imp != nil {
				out = append(out, *imp)
			}
		}
	}
	return out
}

// SchemeComparison is one row of the scheme ablation (the design choice
// behind Figure 2): unique chunk reads under each chain-selection
// strategy.
type SchemeComparison struct {
	Code               string
	P                  int
	Typical            float64 // mean unique fetches per group
	Looped             float64
	Greedy             float64
	LoopedSavingPct    float64 // vs typical
	GreedyExtraSavePct float64 // vs looped
}

// SchemeAblation quantifies how much read I/O the FBF chain-selection
// (looping) saves over typical horizontal-only recovery, and what the
// greedy upper bound adds. The (code, prime) rows run concurrently up
// to Params.Parallelism in the serial enumeration order.
func SchemeAblation(p Params) ([]SchemeComparison, error) {
	if err := p.validateAxes(false, false); err != nil {
		return nil, err
	}
	if p.Groups <= 0 {
		return nil, fmt.Errorf("experiments: non-positive group count %d", p.Groups)
	}
	if p.Stripes <= 0 {
		return nil, fmt.Errorf("experiments: non-positive stripe count %d", p.Stripes)
	}
	type cell struct {
		codeName string
		prime    int
	}
	var cells []cell
	for _, codeName := range p.Codes {
		for _, prime := range p.Primes {
			cells = append(cells, cell{codeName: codeName, prime: prime})
		}
	}
	out := make([]SchemeComparison, len(cells))
	err := forEachIndexed(p.parallelism(), len(cells), p.Progress, func(i int) error {
		codeName, prime := cells[i].codeName, cells[i].prime
		code, err := ResolveGeometry(codeName, prime)
		if err != nil {
			return err
		}
		errors, err := trace.Generate(code, trace.Config{
			Groups: p.Groups, Stripes: p.Stripes, Seed: p.Seed, Disk: -1, Dist: p.Dist,
		})
		if err != nil {
			return err
		}
		means := map[core.Strategy]float64{}
		for _, strategy := range []core.Strategy{core.StrategyTypical, core.StrategyLooped, core.StrategyGreedy} {
			total := 0
			for _, e := range errors {
				s, err := core.GenerateScheme(code, e, strategy)
				if err != nil {
					return err
				}
				total += s.UniqueFetches()
			}
			means[strategy] = float64(total) / float64(len(errors))
		}
		out[i] = SchemeComparison{
			Code: codeName, P: prime,
			Typical: means[core.StrategyTypical], Looped: means[core.StrategyLooped], Greedy: means[core.StrategyGreedy],
			LoopedSavingPct:    stats.Improvement(means[core.StrategyTypical], means[core.StrategyLooped]) * 100,
			GreedyExtraSavePct: stats.Improvement(means[core.StrategyLooped], means[core.StrategyGreedy]) * 100,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
