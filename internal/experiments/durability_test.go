package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"fbf/internal/core"
	"fbf/internal/sim"
)

func durabilityParams() Params {
	return Params{
		Codes:       []string{"tip"},
		Primes:      []int{5},
		Policies:    []string{"lru", "fbf"},
		ChunkSizeKB: 32,
		Workers:     4,
		Groups:      12,
		Stripes:     256,
		Seed:        7,
		Strategy:    core.StrategyLooped,
	}
}

// TestDurabilitySweep checks the sweep end to end: zero-rate rows are
// loss-free, a hostile cascading-failure schedule loses data, and the
// makespan axis responds to the fault load.
func TestDurabilitySweep(t *testing.T) {
	p := durabilityParams()
	rows, err := Durability(p, DurabilityConfig{
		URERates:        []float64{0, 0.05},
		TransientRate:   0.05,
		FaultSeed:       3,
		Trials:          2,
		SecondFailureAt: 5 * sim.Millisecond,
		ThirdFailureAt:  10 * sim.Millisecond,
		CacheMB:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(p.Policies)*2 {
		t.Fatalf("got %d rows, want %d", len(rows), len(p.Policies)*2)
	}
	for _, r := range rows {
		if r.Trials != 2 {
			t.Errorf("row %+v: trials %d", r, r.Trials)
		}
		if r.AvgMakespanMs <= 0 {
			t.Errorf("row %+v: non-positive makespan", r)
		}
		if r.LossProb < 0 || r.LossProb > 1 {
			t.Errorf("row %+v: loss probability out of range", r)
		}
		if r.URERate > 0 && r.AvgEscalations == 0 {
			t.Errorf("row %+v: URE rate %g produced no escalations", r, r.URERate)
		}
	}
}

// TestDurabilityDeterministicAcrossParallelism pins that the sweep's
// rows — fault schedules included — are bit-identical whether the cells
// run serially or concurrently.
func TestDurabilityDeterministicAcrossParallelism(t *testing.T) {
	cfg := DurabilityConfig{
		URERates:        []float64{0, 0.02},
		TransientRate:   0.1,
		FaultSeed:       11,
		Trials:          2,
		SecondFailureAt: 20 * sim.Millisecond,
		CacheMB:         1,
	}
	serial := durabilityParams()
	serial.Parallelism = 1
	parallel := durabilityParams()
	parallel.Parallelism = 4

	want, err := Durability(serial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Durability(parallel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("durability rows differ across parallelism:\n  serial   %+v\n  parallel %+v", want, got)
	}
}

// TestDurabilityValidation covers the config guard rails.
func TestDurabilityValidation(t *testing.T) {
	p := durabilityParams()
	cases := []DurabilityConfig{
		{},                                   // no URE rates
		{URERates: []float64{1.5}},           // rate out of range
		{URERates: []float64{0}, Trials: -1}, // negative trials
		{URERates: []float64{0}, TransientRate: -0.5},
		{URERates: []float64{0}, CacheMB: -1},
		{URERates: []float64{0}, SecondFailureAt: -sim.Millisecond},
	}
	for i, c := range cases {
		if _, err := Durability(p, c); err == nil {
			t.Errorf("case %d (%+v): invalid config accepted", i, c)
		}
	}
}

// TestRenderDurability smoke-tests the table renderer.
func TestRenderDurability(t *testing.T) {
	rows := []DurabilityRow{{
		Code: "tip", P: 5, Policy: "fbf", URERate: 0.01, Trials: 5,
		LossTrials: 1, LossProb: 0.2, AvgLostChunks: 0.4,
		AvgMakespanMs: 123.45, AvgRetries: 6, AvgEscalations: 1.2, AvgRegenerations: 0.8,
	}}
	var buf bytes.Buffer
	if err := RenderDurability(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DURABILITY", "loss-prob", "0.20", "123.45"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
