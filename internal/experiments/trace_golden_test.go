package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fbf/internal/obs"
)

// traceSweep runs the golden sweep with a per-point trace collector and
// returns every point's trace serialized as JSONL, concatenated in
// serial enumeration order with a header line per point.
// traceParams shrinks goldenParams further: traces record every event
// of every run, so a handful of groups already exercises all event
// kinds while keeping the golden file reviewable.
func traceParams() Params {
	p := goldenParams()
	p.Groups = 6
	p.Stripes = 256
	p.Workers = 4
	return p
}

func traceSweep(t *testing.T, parallelism int) []byte {
	t.Helper()
	p := traceParams()
	p.Parallelism = parallelism

	var mu sync.Mutex
	collectors := map[string]*obs.Collector{}
	p.Observe = func(code string, prime int, policy string, sizeMB int) RunObs {
		c := obs.NewCollector()
		mu.Lock()
		collectors[fmt.Sprintf("%s/%d/%s/%d", code, prime, policy, sizeMB)] = c
		mu.Unlock()
		return RunObs{Tracer: c}
	}
	points, err := Sweep(p)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	for _, pt := range points {
		key := fmt.Sprintf("%s/%d/%s/%d", pt.Code, pt.P, pt.Policy, pt.CacheMB)
		c := collectors[key]
		if c == nil {
			t.Fatalf("point %s ran without a collector", key)
		}
		if c.Len() == 0 {
			t.Fatalf("point %s produced an empty trace", key)
		}
		if err := obs.Validate(c.Events()); err != nil {
			t.Fatalf("point %s: invalid trace: %v", key, err)
		}
		fmt.Fprintf(&buf, "# %s\n", key)
		if err := obs.WriteJSONL(&buf, c.Events()); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestTraceGolden pins trace determinism: the event streams of every
// sweep point must be byte-identical between the serial and the
// parallel sweep path (traces are stamped in simulated time, so host
// scheduling cannot leak in), and byte-identical to a checked-in golden
// file across hosts and refactors. Regenerate with
// `go test ./internal/experiments -run TraceGolden -update`.
func TestTraceGolden(t *testing.T) {
	serial := traceSweep(t, 1)
	parallel := traceSweep(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("traces differ between -parallel 1 and -parallel 8")
	}
	golden := filepath.Join("testdata", "trace_golden.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, serial, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(serial, want) {
		t.Fatalf("traces drifted from golden file %s (got %d bytes, want %d); regenerate with -update and review the diff", golden, len(serial), len(want))
	}
}

// TestObserveHookLeavesResultsUntouched pins that attaching tracers
// changes nothing about the measurements: the observed sweep's results
// must equal the unobserved sweep's bit for bit.
func TestObserveHookLeavesResultsUntouched(t *testing.T) {
	p := goldenParams()
	plain, err := Sweep(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe = func(string, int, string, int) RunObs {
		return RunObs{Tracer: obs.NewCollector()}
	}
	observed, err := Sweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(observed) {
		t.Fatalf("point counts differ: %d vs %d", len(plain), len(observed))
	}
	for i := range plain {
		a, b := plain[i].Result, observed[i].Result
		if a.Cache != b.Cache || a.DiskReads != b.DiskReads || a.Makespan != b.Makespan ||
			a.SumResponse != b.SumResponse || a.TotalRequests != b.TotalRequests || a.XORChunks != b.XORChunks {
			t.Fatalf("point %d: observed run drifted: %+v vs %+v", i, a, b)
		}
	}
}
