// Package sim is a minimal deterministic discrete-event simulation
// engine: a virtual clock plus an event heap. It is the substrate on
// which the disk-array model (internal/disk) and the reconstruction
// engines (internal/rebuild) run, replacing the DiskSim simulator used
// by the paper.
package sim

import (
	"fmt"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Milliseconds converts the time to floating-point milliseconds for
// reporting.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds converts the time to floating-point seconds for reporting.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time in milliseconds.
func (t Time) String() string { return fmt.Sprintf("%.3fms", t.Milliseconds()) }

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

// eventHeap is a typed 4-ary min-heap ordered by (at, seq). It replaces
// container/heap, whose Push(x any) boxed every scheduled event into an
// interface — one heap allocation per event, millions per run. The
// 4-ary shape halves the tree depth of a binary heap, trading a little
// sift-down comparison work (three siblings per level) for far fewer
// cache-missing levels; event ordering is a total order, so pop order —
// and therefore every simulation result — is identical to the old heap.
type eventHeap []event

// less orders events by timestamp with the scheduling sequence breaking
// ties, preserving FIFO semantics for simultaneous events.
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends the event and sifts it up to its heap position.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the callback for GC
	q = q[:n]
	*h = q
	// Sift the displaced last element down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(c, best) {
				best = c
			}
		}
		if !q.less(best, i) {
			break
		}
		q[i], q[best] = q[best], q[i]
		i = best
	}
	return top
}

// Simulator owns the virtual clock and the pending event set. It is
// single-threaded by design: determinism is what makes experiment
// results reproducible across runs and platforms.
type Simulator struct {
	now     Time
	seq     uint64
	pending eventHeap
	steps   uint64
}

// New returns a simulator with the clock at zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of scheduled events.
func (s *Simulator) Pending() int { return len(s.pending) }

// Steps returns the number of events executed so far.
func (s *Simulator) Steps() uint64 { return s.steps }

// Schedule runs fn after the given delay of simulated time. A negative
// delay is an error in the caller; it panics to surface the bug.
func (s *Simulator) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute simulated time, which must
// not be in the past. Events scheduled for the same instant run in
// scheduling order.
func (s *Simulator) ScheduleAt(at Time, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v is before now %v", at, s.now))
	}
	s.seq++
	s.pending.push(event{at: at, seq: s.seq, fn: fn})
}

// Step executes the next event, advancing the clock to it. It reports
// whether an event was executed.
func (s *Simulator) Step() bool {
	if len(s.pending) == 0 {
		return false
	}
	e := s.pending.pop()
	s.now = e.at
	s.steps++
	e.fn()
	return true
}

// Run executes events until none remain.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// Tick runs fn every interval of simulated time for as long as other
// events remain pending, starting one interval from now. The tick
// re-arms itself only while the simulation still has work, so a Run()
// that would otherwise quiesce is never kept alive by its own sampler —
// the final tick fires at or after the last real event and then stops.
// The metrics registry's periodic sampling is built on this.
func (s *Simulator) Tick(interval Time, fn func(now Time)) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive tick interval %v", interval))
	}
	var step func()
	step = func() {
		fn(s.now)
		if len(s.pending) > 0 {
			s.Schedule(interval, step)
		}
	}
	s.Schedule(interval, step)
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t.
func (s *Simulator) RunUntil(t Time) {
	for len(s.pending) > 0 && s.pending[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}
