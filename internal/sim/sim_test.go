package sim

import (
	"math/rand"
	"testing"
)

func TestTimeConversions(t *testing.T) {
	if Millisecond.Milliseconds() != 1 {
		t.Error("Milliseconds wrong")
	}
	if Second.Seconds() != 1 {
		t.Error("Seconds wrong")
	}
	if (1500 * Microsecond).String() != "1.500ms" {
		t.Errorf("String = %q", (1500 * Microsecond).String())
	}
}

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(30, func() { order = append(order, 3) })
	s.Schedule(10, func() { order = append(order, 1) })
	s.Schedule(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Errorf("Now = %v", s.Now())
	}
	if s.Steps() != 3 {
		t.Errorf("Steps = %d", s.Steps())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var at []Time
	s.Schedule(10, func() {
		at = append(at, s.Now())
		s.Schedule(5, func() { at = append(at, s.Now()) })
	})
	s.Run()
	if len(at) != 2 || at[0] != 10 || at[1] != 15 {
		t.Errorf("at = %v", at)
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	s := New()
	s.Schedule(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("want panic scheduling in the past")
		}
	}()
	s.ScheduleAt(5, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on negative delay")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(12)
	if len(fired) != 2 || s.Now() != 12 {
		t.Errorf("fired %v, now %v", fired, s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run()
	if len(fired) != 4 || s.Now() != 20 {
		t.Errorf("after Run: fired %v now %v", fired, s.Now())
	}
}

func TestStepOnEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Error("Step on empty should be false")
	}
}

func TestClockMonotonic(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(3))
	last := Time(0)
	violated := false
	var spawn func()
	count := 0
	spawn = func() {
		if s.Now() < last {
			violated = true
		}
		last = s.Now()
		if count < 500 {
			count++
			s.Schedule(Time(rng.Intn(50)), spawn)
		}
	}
	s.Schedule(0, spawn)
	s.Run()
	if violated {
		t.Error("clock went backwards")
	}
}

func TestTick(t *testing.T) {
	s := New()
	done := 0
	for i := 1; i <= 3; i++ {
		s.Schedule(Time(i)*100, func() { done++ })
	}
	var ticks []Time
	s.Tick(40, func(now Time) { ticks = append(ticks, now) })
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("tick left %d events pending", s.Pending())
	}
	if len(ticks) == 0 {
		t.Fatal("tick never fired")
	}
	// Ticks are spaced by the interval and the last fires at or after
	// the final real event (320 >= 300), then stops re-arming.
	for i, at := range ticks {
		if want := Time(40 * (i + 1)); at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	if last := ticks[len(ticks)-1]; last < 300 {
		t.Fatalf("last tick at %v, before final event at 300", last)
	}
	if done != 3 {
		t.Fatalf("real events ran %d times", done)
	}
}

func TestTickRejectsBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive interval")
		}
	}()
	New().Tick(0, func(Time) {})
}
