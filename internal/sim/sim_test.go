package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestTimeConversions(t *testing.T) {
	if Millisecond.Milliseconds() != 1 {
		t.Error("Milliseconds wrong")
	}
	if Second.Seconds() != 1 {
		t.Error("Seconds wrong")
	}
	if (1500 * Microsecond).String() != "1.500ms" {
		t.Errorf("String = %q", (1500 * Microsecond).String())
	}
}

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(30, func() { order = append(order, 3) })
	s.Schedule(10, func() { order = append(order, 1) })
	s.Schedule(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Errorf("Now = %v", s.Now())
	}
	if s.Steps() != 3 {
		t.Errorf("Steps = %d", s.Steps())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var at []Time
	s.Schedule(10, func() {
		at = append(at, s.Now())
		s.Schedule(5, func() { at = append(at, s.Now()) })
	})
	s.Run()
	if len(at) != 2 || at[0] != 10 || at[1] != 15 {
		t.Errorf("at = %v", at)
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	s := New()
	s.Schedule(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("want panic scheduling in the past")
		}
	}()
	s.ScheduleAt(5, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on negative delay")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(12)
	if len(fired) != 2 || s.Now() != 12 {
		t.Errorf("fired %v, now %v", fired, s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run()
	if len(fired) != 4 || s.Now() != 20 {
		t.Errorf("after Run: fired %v now %v", fired, s.Now())
	}
}

func TestStepOnEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Error("Step on empty should be false")
	}
}

func TestClockMonotonic(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(3))
	last := Time(0)
	violated := false
	var spawn func()
	count := 0
	spawn = func() {
		if s.Now() < last {
			violated = true
		}
		last = s.Now()
		if count < 500 {
			count++
			s.Schedule(Time(rng.Intn(50)), spawn)
		}
	}
	s.Schedule(0, spawn)
	s.Run()
	if violated {
		t.Error("clock went backwards")
	}
}

func TestTick(t *testing.T) {
	s := New()
	done := 0
	for i := 1; i <= 3; i++ {
		s.Schedule(Time(i)*100, func() { done++ })
	}
	var ticks []Time
	s.Tick(40, func(now Time) { ticks = append(ticks, now) })
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("tick left %d events pending", s.Pending())
	}
	if len(ticks) == 0 {
		t.Fatal("tick never fired")
	}
	// Ticks are spaced by the interval and the last fires at or after
	// the final real event (320 >= 300), then stops re-arming.
	for i, at := range ticks {
		if want := Time(40 * (i + 1)); at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	if last := ticks[len(ticks)-1]; last < 300 {
		t.Fatalf("last tick at %v, before final event at 300", last)
	}
	if done != 3 {
		t.Fatalf("real events ran %d times", done)
	}
}

func TestTickRejectsBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive interval")
		}
	}()
	New().Tick(0, func(Time) {})
}

// TestHeapRandomOrdering cross-checks the typed 4-ary heap against a
// sort of the same schedule: events drawn with random times (many ties)
// must fire in (time, insertion) order.
func TestHeapRandomOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		s := New()
		n := 1 + rng.Intn(500)
		type stamp struct {
			at  Time
			seq int
		}
		want := make([]stamp, n)
		var got []stamp
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(37)) // heavy tie pressure
			want[i] = stamp{at, i}
			st := stamp{at, i}
			s.ScheduleAt(at, func() { got = append(got, st) })
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		s.Run()
		if len(got) != n {
			t.Fatalf("trial %d: ran %d of %d events", trial, len(got), n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: event %d fired as %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestHeapInterleavedPushPop exercises pops interleaved with nested
// pushes so sift-down paths past the first level are covered.
func TestHeapInterleavedPushPop(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(42))
	var last Time
	ran := 0
	var spawn func()
	spawn = func() {
		if s.Now() < last {
			t.Fatalf("clock regressed: %v after %v", s.Now(), last)
		}
		last = s.Now()
		ran++
		for k := rng.Intn(4); k > 0; k-- {
			if ran < 5000 {
				s.Schedule(Time(rng.Intn(100)), spawn)
			}
		}
	}
	for i := 0; i < 32; i++ {
		s.Schedule(Time(rng.Intn(100)), spawn)
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("heap left %d events pending", s.Pending())
	}
}

// TestScheduleSteadyStateAllocs pins the heap's zero-allocation
// contract: once the pending slice has grown, scheduling an event boxes
// nothing (the old container/heap path allocated once per event).
func TestScheduleSteadyStateAllocs(t *testing.T) {
	s := New()
	fn := func() {}
	// Warm up the backing array.
	for i := 0; i < 64; i++ {
		s.Schedule(Time(i), fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		s.Schedule(1, fn)
		s.Step()
	})
	if allocs != 0 {
		t.Errorf("schedule+step allocates %.1f times per event, want 0", allocs)
	}
}

// BenchmarkSchedule measures raw event throughput: push one, pop one,
// at a steady heap depth.
func BenchmarkSchedule(b *testing.B) {
	for _, depth := range []int{16, 1024} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			s := New()
			fn := func() {}
			for i := 0; i < depth; i++ {
				s.Schedule(Time(i%97), fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Schedule(Time(i%97)+1, fn)
				s.Step()
			}
		})
	}
}
