package codes

import "fbf/internal/grid"

// NewSTAR constructs the STAR code (Huang & Xu 2008) for a prime p: an
// EVENODD-style horizontal code on p+3 disks. Disks 0..p-1 hold data,
// disk p holds horizontal parity, disk p+1 diagonal parity and disk p+2
// anti-diagonal parity. The stripe has p-1 rows.
//
// The diagonal and anti-diagonal parities each carry an "adjuster": the
// XOR of one special diagonal (class p-1) folds into every parity of
// that direction, so the adjuster's data cells are members of every
// diagonal (resp. anti-diagonal) chain. This is the property the paper
// observes when noting STAR's higher hit ratio — adjuster chunks are
// shared by many chains and FBF pins them at the highest priority.
func NewSTAR(p int) (*Code, error) {
	if err := requirePrime("star", p); err != nil {
		return nil, err
	}
	rows, cols := p-1, p+3
	var parity []grid.Coord
	var chains []grid.Chain
	for i := 0; i < rows; i++ {
		parity = append(parity,
			grid.Coord{Row: i, Col: p},
			grid.Coord{Row: i, Col: p + 1},
			grid.Coord{Row: i, Col: p + 2},
		)
	}

	// Horizontal chains: row i of the data disks plus its parity cell.
	for i := 0; i < rows; i++ {
		cells := make([]grid.Coord, 0, p+1)
		for j := 0; j < p; j++ {
			cells = append(cells, grid.Coord{Row: i, Col: j})
		}
		cells = append(cells, grid.Coord{Row: i, Col: p})
		chains = append(chains, grid.Chain{Kind: grid.Horizontal, Index: i, Cells: cells})
	}

	// diagCells collects the data cells of one diagonal class under the
	// given direction: class(r, c) == k with c over the data disks.
	diagCells := func(k int, anti bool) []grid.Coord {
		var out []grid.Coord
		for r := 0; r < rows; r++ {
			for c := 0; c < p; c++ {
				cls := (r + c) % p
				if anti {
					cls = ((r-c)%p + p) % p
				}
				if cls == k {
					out = append(out, grid.Coord{Row: r, Col: c})
				}
			}
		}
		return out
	}

	// Diagonal chains: class i plus the adjuster class p-1 plus the
	// stored parity — their XOR is zero by the EVENODD construction
	// Q(i) = S XOR diag(i), where S is the adjuster diagonal's XOR.
	adjD := diagCells(p-1, false)
	adjA := diagCells(p-1, true)
	for i := 0; i < rows; i++ {
		d := append(append([]grid.Coord{}, diagCells(i, false)...), adjD...)
		d = append(d, grid.Coord{Row: i, Col: p + 1})
		chains = append(chains, grid.Chain{Kind: grid.Diagonal, Index: i, Cells: d})

		a := append(append([]grid.Coord{}, diagCells(i, true)...), adjA...)
		a = append(a, grid.Coord{Row: i, Col: p + 2})
		chains = append(chains, grid.Chain{Kind: grid.AntiDiagonal, Index: i, Cells: a})
	}

	layout, err := grid.NewLayout(rows, cols, parity, chains)
	if err != nil {
		return nil, err
	}
	return build("star", p, layout)
}
