package codes

import (
	"math/rand"
	"testing"

	"fbf/internal/chunk"
	"fbf/internal/grid"
)

// smallPrimes keeps exhaustive per-code tests fast; large primes are
// covered by TestTripleFaultCoverageLargePrimes and cmd/mdscheck.
var smallPrimes = []int{5, 7}

func allCodes(t testing.TB, primes []int) []*Code {
	t.Helper()
	var out []*Code
	for _, p := range primes {
		for _, name := range Names() {
			c, err := New(name, p)
			if err != nil {
				t.Fatalf("New(%s, %d): %v", name, p, err)
			}
			out = append(out, c)
		}
	}
	return out
}

func randomEncodedStripe(t testing.TB, c *Code, seed int64, chunkSize int) Stripe {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := c.NewStripe(chunkSize)
	for _, cell := range c.Layout().DataCells() {
		rng.Read(s[c.CellIndex(cell)])
	}
	c.Encode(s)
	return s
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 4 {
		t.Fatalf("Names() = %v", names)
	}
	want := []string{"hdd1", "star", "tip", "triplestar"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], n)
		}
	}
	if _, err := New("nope", 5); err == nil {
		t.Error("New(nope) should fail")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustNew should panic for unknown code")
			}
		}()
		MustNew("nope", 5)
	}()
}

func TestConstructorsRejectBadPrimes(t *testing.T) {
	for _, name := range Names() {
		for _, p := range []int{0, 1, 2, 4, 6, 9, 15} {
			if _, err := New(name, p); err == nil {
				t.Errorf("New(%s, %d) should fail", name, p)
			}
		}
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 11: true, 13: true, 17: true}
	for n := -3; n <= 17; n++ {
		if got := IsPrime(n); got != primes[n] {
			t.Errorf("IsPrime(%d) = %v", n, got)
		}
	}
}

func TestDimensions(t *testing.T) {
	cases := []struct {
		name  string
		p     int
		disks int
		rows  int
	}{
		{"star", 5, 8, 4},
		{"star", 7, 10, 6},
		{"triplestar", 5, 7, 4},
		{"triplestar", 7, 9, 6},
		{"tip", 5, 6, 4},
		{"tip", 7, 8, 6},
		{"hdd1", 5, 6, 4},
		{"hdd1", 7, 8, 6},
	}
	for _, c := range cases {
		code := MustNew(c.name, c.p)
		if code.Disks() != c.disks || code.Rows() != c.rows {
			t.Errorf("%v: disks=%d rows=%d, want %d/%d", code, code.Disks(), code.Rows(), c.disks, c.rows)
		}
		if code.P() != c.p || code.Name() != c.name {
			t.Errorf("%v: identity accessors wrong", code)
		}
	}
}

func TestStorageOptimality(t *testing.T) {
	// TIP and HDD1 are storage-optimal on p+1 disks: exactly 3(p-1)
	// parity cells. STAR and Triple-Star hold 3 parity cells per row.
	for _, p := range smallPrimes {
		for _, name := range Names() {
			code := MustNew(name, p)
			got := len(code.Layout().ParityCells())
			if want := 3 * (p - 1); got != want {
				t.Errorf("%v: %d parity cells, want %d", code, got, want)
			}
		}
	}
}

func TestCellIndexRoundTrip(t *testing.T) {
	code := MustNew("tip", 5)
	for r := 0; r < code.Rows(); r++ {
		for c := 0; c < code.Disks(); c++ {
			coord := grid.Coord{Row: r, Col: c}
			if got := code.CoordOf(code.CellIndex(coord)); got != coord {
				t.Fatalf("round trip %v -> %v", coord, got)
			}
		}
	}
}

func TestEncodeVerify(t *testing.T) {
	for _, code := range allCodes(t, smallPrimes) {
		s := randomEncodedStripe(t, code, 1, 128)
		if !code.Verify(s) {
			t.Errorf("%v: encoded stripe fails verification", code)
		}
		// Corrupt one data chunk: verification must fail.
		s[code.CellIndex(code.Layout().DataCells()[0])][0] ^= 0x01
		if code.Verify(s) {
			t.Errorf("%v: corrupted stripe passes verification", code)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	code := MustNew("star", 5)
	a := randomEncodedStripe(t, code, 3, 64)
	b := randomEncodedStripe(t, code, 3, 64)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("cell %d differs between identical encodes", i)
		}
	}
}

func TestEncodePanicsOnWrongStripe(t *testing.T) {
	code := MustNew("tip", 5)
	defer func() {
		if recover() == nil {
			t.Error("want panic for wrong-size stripe")
		}
	}()
	code.Encode(make(Stripe, 3))
}

func TestRecoverSingleColumn(t *testing.T) {
	for _, code := range allCodes(t, smallPrimes) {
		for col := 0; col < code.Disks(); col++ {
			s := randomEncodedStripe(t, code, int64(col), 64)
			want := make([]chunk.Chunk, code.Rows())
			var lost []grid.Coord
			for r := 0; r < code.Rows(); r++ {
				cell := grid.Coord{Row: r, Col: col}
				want[r] = chunk.XOR(s[code.CellIndex(cell)]) // copy
				lost = append(lost, cell)
				clear(s[code.CellIndex(cell)])
			}
			if err := code.Recover(s, lost); err != nil {
				t.Fatalf("%v col %d: %v", code, col, err)
			}
			for r := 0; r < code.Rows(); r++ {
				if !s[code.CellIndex(grid.Coord{Row: r, Col: col})].Equal(want[r]) {
					t.Fatalf("%v col %d row %d: wrong recovery", code, col, r)
				}
			}
		}
	}
}

func TestRecoverTripleColumns(t *testing.T) {
	for _, code := range allCodes(t, smallPrimes) {
		n := code.Disks()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for d := b + 1; d < n; d++ {
					s := randomEncodedStripe(t, code, int64(a*100+b*10+d), 32)
					backup := make(Stripe, len(s))
					for i := range s {
						backup[i] = chunk.XOR(s[i])
					}
					var lost []grid.Coord
					for _, col := range []int{a, b, d} {
						for r := 0; r < code.Rows(); r++ {
							cell := grid.Coord{Row: r, Col: col}
							clear(s[code.CellIndex(cell)])
							lost = append(lost, cell)
						}
					}
					if err := code.Recover(s, lost); err != nil {
						t.Fatalf("%v cols (%d,%d,%d): %v", code, a, b, d, err)
					}
					for i := range s {
						if !s[i].Equal(backup[i]) {
							t.Fatalf("%v cols (%d,%d,%d): cell %v wrong", code, a, b, d, code.CoordOf(i))
						}
					}
				}
			}
		}
	}
}

func TestRecoverPartialStripe(t *testing.T) {
	// Every contiguous run of up to p-1 chunks on any single disk — the
	// exact failure mode of the paper's evaluation — must be recoverable.
	for _, code := range allCodes(t, smallPrimes) {
		p := code.P()
		for col := 0; col < code.Disks(); col++ {
			for start := 0; start < code.Rows(); start++ {
				for size := 1; size <= p-1 && start+size <= code.Rows(); size++ {
					s := randomEncodedStripe(t, code, int64(col*1000+start*10+size), 32)
					var lost []grid.Coord
					var want []chunk.Chunk
					for r := start; r < start+size; r++ {
						cell := grid.Coord{Row: r, Col: col}
						want = append(want, chunk.XOR(s[code.CellIndex(cell)]))
						clear(s[code.CellIndex(cell)])
						lost = append(lost, cell)
					}
					if err := code.Recover(s, lost); err != nil {
						t.Fatalf("%v partial (%d,%d+%d): %v", code, col, start, size, err)
					}
					for i, r := 0, start; r < start+size; i, r = i+1, r+1 {
						if !s[code.CellIndex(grid.Coord{Row: r, Col: col})].Equal(want[i]) {
							t.Fatalf("%v partial (%d,%d+%d): wrong contents", code, col, start, size)
						}
					}
				}
			}
		}
	}
}

func TestRecoveryPlanErrors(t *testing.T) {
	code := MustNew("star", 5)
	if _, err := code.RecoveryPlan([]grid.Coord{{Row: 99, Col: 0}}); err == nil {
		t.Error("out-of-bounds lost cell should error")
	}
	// Erase four full columns of an MDS 3DFT code: must be unrecoverable.
	var lost []grid.Coord
	for col := 0; col < 4; col++ {
		for r := 0; r < code.Rows(); r++ {
			lost = append(lost, grid.Coord{Row: r, Col: col})
		}
	}
	if _, err := code.RecoveryPlan(lost); err == nil {
		t.Error("four-column erasure should be unrecoverable")
	}
	if err := code.Recover(code.NewStripe(16), lost); err == nil {
		t.Error("Recover should propagate plan error")
	}
}

func TestCanRecoverColumns(t *testing.T) {
	code := MustNew("triplestar", 5)
	if !code.CanRecoverColumns(0, 1, 2) {
		t.Error("triple failure should be recoverable")
	}
	if code.CanRecoverColumns(0, 1, 2, 3) {
		t.Error("quadruple failure should not be recoverable")
	}
	if code.CanRecoverColumns(-1) || code.CanRecoverColumns(code.Disks()) {
		t.Error("out-of-range column should report unrecoverable")
	}
}

func TestTripleFaultCoverageSmallPrimes(t *testing.T) {
	for _, code := range allCodes(t, smallPrimes) {
		ok, total, failing := code.TripleFaultCoverage()
		if ok != total || len(failing) != 0 {
			t.Errorf("%v: coverage %d/%d, failing %v", code, ok, total, failing)
		}
	}
}

func TestTripleFaultCoverageLargePrimes(t *testing.T) {
	if testing.Short() {
		t.Skip("large-prime coverage check skipped in -short mode")
	}
	for _, code := range allCodes(t, []int{11, 13}) {
		ok, total, _ := code.TripleFaultCoverage()
		if ok != total {
			t.Errorf("%v: coverage %d/%d", code, ok, total)
		}
	}
}

func TestChainStructure(t *testing.T) {
	for _, code := range allCodes(t, smallPrimes) {
		layout := code.Layout()
		perKind := map[grid.ChainKind]int{}
		for _, ch := range layout.Chains() {
			perKind[ch.Kind]++
			if len(ch.Cells) < 2 {
				t.Errorf("%v: chain %v too short", code, ch.ID())
			}
		}
		// Every code has p-1 chains per direction.
		for _, k := range grid.Kinds() {
			if perKind[k] != code.P()-1 {
				t.Errorf("%v: %d %v chains, want %d", code, perKind[k], k, code.P()-1)
			}
		}
		// Every cell is on at least one chain (otherwise unrecoverable),
		// and every data cell is on a horizontal chain.
		for r := 0; r < layout.Rows(); r++ {
			for c := 0; c < layout.Cols(); c++ {
				cell := grid.Coord{Row: r, Col: c}
				chains := layout.ChainsThrough(cell)
				if len(chains) == 0 {
					t.Errorf("%v: cell %v on no chain", code, cell)
				}
			}
		}
	}
}

func TestSTARAdjusterSharing(t *testing.T) {
	// STAR's adjuster cells (diagonal class p-1) must be members of every
	// diagonal chain — the property behind the paper's observation about
	// STAR's hit ratio.
	p := 5
	code := MustNew("star", p)
	layout := code.Layout()
	adjuster := grid.Coord{Row: p - 2, Col: 1} // (3+1)%5 == 4 == p-1
	count := 0
	for _, ch := range layout.ChainsThrough(adjuster) {
		if ch.Kind == grid.Diagonal {
			count++
		}
	}
	if count != p-1 {
		t.Errorf("adjuster cell on %d diagonal chains, want %d", count, p-1)
	}
}

func TestVerticalPlacementDiffers(t *testing.T) {
	// TIP and HDD1 must be genuinely different layouts.
	tip := MustNew("tip", 7)
	hdd1 := MustNew("hdd1", 7)
	same := true
	tp := tip.Layout().ParityCells()
	hp := hdd1.Layout().ParityCells()
	if len(tp) != len(hp) {
		same = false
	} else {
		for i := range tp {
			if tp[i] != hp[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("tip and hdd1 have identical parity placement")
	}
}

func TestSearchPlacementFindsFullCoverage(t *testing.T) {
	res, err := SearchPlacement(5, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Full() {
		t.Errorf("search found only %d/%d", res.Covered, res.Total)
	}
	if res.Searched == 0 {
		t.Error("search evaluated no candidates")
	}
	if _, err := SearchPlacement(4, 0, false); err == nil {
		t.Error("non-prime search should fail")
	}
	// A tiny budget must terminate early without error.
	capped, err := SearchPlacement(5, 1, false)
	if err != nil || capped.Searched > 1 {
		t.Errorf("budgeted search ran %d candidates (err=%v)", capped.Searched, err)
	}
}

func TestRecoverMatchesRecoveryPlan(t *testing.T) {
	// The plan's term lists, XORed manually, must equal Recover's output.
	code := MustNew("hdd1", 7)
	s := randomEncodedStripe(t, code, 9, 64)
	lost := []grid.Coord{{Row: 0, Col: 0}, {Row: 1, Col: 0}, {Row: 2, Col: 0}}
	want := make(map[grid.Coord]chunk.Chunk)
	plan, err := code.RecoveryPlan(lost)
	if err != nil {
		t.Fatal(err)
	}
	for cell, terms := range plan {
		acc := chunk.New(64)
		for _, term := range terms {
			chunk.XORInto(acc, s[code.CellIndex(term)])
		}
		want[cell] = acc
	}
	for _, cell := range lost {
		clear(s[code.CellIndex(cell)])
	}
	if err := code.Recover(s, lost); err != nil {
		t.Fatal(err)
	}
	for cell, w := range want {
		if !s[code.CellIndex(cell)].Equal(w) {
			t.Errorf("cell %v: Recover disagrees with manual plan evaluation", cell)
		}
	}
}

func TestPartialRecoveryPlan(t *testing.T) {
	for _, c := range allCodes(t, smallPrimes) {
		// A recoverable pattern matches RecoveryPlan with nothing unsolved;
		// duplicates in the lost list are tolerated.
		lost := []grid.Coord{{Row: 0, Col: 0}, {Row: 1, Col: 0}, {Row: 0, Col: 0}}
		plan, unsolved, err := c.PartialRecoveryPlan(lost)
		if err != nil || len(unsolved) != 0 {
			t.Fatalf("%v: unsolved=%v err=%v", c, unsolved, err)
		}
		full, err := c.RecoveryPlan(lost[:2])
		if err != nil {
			t.Fatal(err)
		}
		if len(plan) != len(full) {
			t.Errorf("%v: partial plan has %d cells, full has %d", c, len(plan), len(full))
		}
		// Beyond tolerance (4 whole columns) some cells must come back
		// unsolved, and the solved ones must still XOR-check on real bytes.
		var wide []grid.Coord
		for col := 0; col < 4; col++ {
			for r := 0; r < c.Rows(); r++ {
				wide = append(wide, grid.Coord{Row: r, Col: col})
			}
		}
		plan, unsolved, err = c.PartialRecoveryPlan(wide)
		if err != nil {
			t.Fatal(err)
		}
		if len(unsolved) == 0 {
			t.Errorf("%v: 4-column loss fully solved", c)
		}
		s := randomEncodedStripe(t, c, 5, 64)
		for cell, terms := range plan {
			acc := chunk.New(64)
			for _, m := range terms {
				chunk.XORInto(acc, s[c.CellIndex(m)])
			}
			if !acc.Equal(s[c.CellIndex(cell)]) {
				t.Errorf("%v: decoded cell %v differs from original", c, cell)
			}
		}
	}
}

func TestPartialRecoveryPlanRejectsOutOfBounds(t *testing.T) {
	c := MustNew("tip", 5)
	if _, _, err := c.PartialRecoveryPlan([]grid.Coord{{Row: 0, Col: 99}}); err == nil {
		t.Error("out-of-bounds cell accepted")
	}
}
