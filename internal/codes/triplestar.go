package codes

import "fbf/internal/grid"

// NewTripleStar constructs our Triple-Star stand-in for a prime p: a
// triple-parity code on p+2 disks with p-1 rows, built with the RTP
// construction (Corbett & Goel's Triple-Parity, reference [15] of the
// FBF paper). Disks 0..p-2 hold data, disk p-1 row parity, disk p
// diagonal parity and disk p+1 anti-diagonal parity.
//
// As in RDP/RTP, the diagonal and anti-diagonal chains run over the data
// disks *and* the row-parity disk, which removes the need for adjusters
// — matching Triple-Star's headline property of optimal encoding
// complexity. Diagonal classes are taken modulo p with class p-1 left
// unprotected in each direction (the "missing diagonal" of RDP).
func NewTripleStar(p int) (*Code, error) {
	if err := requirePrime("triplestar", p); err != nil {
		return nil, err
	}
	rows, cols := p-1, p+2
	var parity []grid.Coord
	var chains []grid.Chain
	for i := 0; i < rows; i++ {
		parity = append(parity,
			grid.Coord{Row: i, Col: p - 1},
			grid.Coord{Row: i, Col: p},
			grid.Coord{Row: i, Col: p + 1},
		)
	}

	// Horizontal chains: data cells plus the row parity cell.
	for i := 0; i < rows; i++ {
		cells := make([]grid.Coord, 0, p)
		for j := 0; j < p; j++ {
			cells = append(cells, grid.Coord{Row: i, Col: j}) // includes (i, p-1)
		}
		chains = append(chains, grid.Chain{Kind: grid.Horizontal, Index: i, Cells: cells})
	}

	// Diagonal / anti-diagonal chains over columns 0..p-1 (data + row
	// parity), classes 0..p-2, plus the dedicated parity cell.
	for i := 0; i < rows; i++ {
		var d, a []grid.Coord
		for r := 0; r < rows; r++ {
			for c := 0; c < p; c++ {
				if (r+c)%p == i {
					d = append(d, grid.Coord{Row: r, Col: c})
				}
				if ((r-c)%p+p)%p == i {
					a = append(a, grid.Coord{Row: r, Col: c})
				}
			}
		}
		d = append(d, grid.Coord{Row: i, Col: p})
		a = append(a, grid.Coord{Row: i, Col: p + 1})
		chains = append(chains, grid.Chain{Kind: grid.Diagonal, Index: i, Cells: d})
		chains = append(chains, grid.Chain{Kind: grid.AntiDiagonal, Index: i, Cells: a})
	}

	layout, err := grid.NewLayout(rows, cols, parity, chains)
	if err != nil {
		return nil, err
	}
	return build("triplestar", p, layout)
}
