package codes

import (
	"fmt"

	"fbf/internal/grid"
)

// TIP and HDD1 are p+1-disk 3DFT codes whose exact published cell
// placements we could not obtain; we reconstruct them as members of a
// parameterized family of storage-optimal codes that preserves
// everything FBF depends on — disk count, (p-1)-row stripes, three chain
// directions and per-chunk chain sharing — and we select placements
// whose triple-fault coverage is verified exhaustively with the GF(2)
// decoder (see cmd/mdscheck). DESIGN.md documents this substitution.
//
// The family: p+1 columns, p-1 rows. Column p is the dedicated
// horizontal-parity column. Row i additionally stores a diagonal parity
// at data column (B + i*S2) mod p and an anti-diagonal parity at
// (C + i*S3) mod p. Diagonal classes run modulo p over the data columns
// (and, when IncludeHCol is set, the horizontal-parity column as well,
// RDP-style). Data cells are therefore members of one horizontal, up to
// one diagonal and up to one anti-diagonal chain.

// PlacementParams selects one member of the vertical placement family.
type PlacementParams struct {
	B, S2       int  // diagonal parity of row i at column (B + i*S2) mod p
	C, S3       int  // anti-diagonal parity of row i at column (C + i*S3) mod p
	IncludeHCol bool // include column p in the diagonal chains (RDP-style)
}

// TIPPlacement is the placement used for our TIP stand-in: diagonal
// parities along the main diagonal (column i in row i) and anti-diagonal
// parities along a slope-2 line — fully distributed, echoing TIP's
// vertical character. Verified fully triple-fault tolerant for all
// primes 5..19 by cmd/mdscheck.
func TIPPlacement(p int) PlacementParams { return PlacementParams{B: 0, S2: 1, C: 1, S3: 2} }

// HDD1Placement is the placement used for our HDD1 stand-in: diagonal
// parities concentrated in column 0 and anti-diagonal parities along an
// anti-diagonal line — a contrasting "parity placement scheme" in the
// spirit of the HDD1 paper's title. Verified fully triple-fault
// tolerant for all primes 5..17 by cmd/mdscheck.
func HDD1Placement(p int) PlacementParams {
	return PlacementParams{B: 0, S2: 0, C: p - 1, S3: p - 1}
}

// buildVertical assembles a placement-family layout for prime p.
func buildVertical(name string, p int, prm PlacementParams) (*Code, error) {
	if err := requirePrime(name, p); err != nil {
		return nil, err
	}
	rows, n := p-1, p+1
	mod := func(x int) int { return ((x % p) + p) % p }

	var parity []grid.Coord
	usedD := make(map[int]bool, rows)
	usedA := make(map[int]bool, rows)
	type rowParity struct{ d, a int }
	rp := make([]rowParity, rows)
	for i := 0; i < rows; i++ {
		d := mod(prm.B + i*prm.S2)
		a := mod(prm.C + i*prm.S3)
		if d == a {
			return nil, fmt.Errorf("codes: %s(p=%d): row %d parity columns collide (%d)", name, p, i, d)
		}
		kd := mod(i + d)
		ka := mod(i - a)
		if usedD[kd] || usedA[ka] {
			return nil, fmt.Errorf("codes: %s(p=%d): row %d reuses a diagonal class", name, p, i)
		}
		usedD[kd], usedA[ka] = true, true
		rp[i] = rowParity{d: d, a: a}
		parity = append(parity,
			grid.Coord{Row: i, Col: p},
			grid.Coord{Row: i, Col: d},
			grid.Coord{Row: i, Col: a},
		)
	}

	var chains []grid.Chain
	for i := 0; i < rows; i++ {
		row := make([]grid.Coord, 0, n)
		for c := 0; c < n; c++ {
			row = append(row, grid.Coord{Row: i, Col: c})
		}
		chains = append(chains, grid.Chain{Kind: grid.Horizontal, Index: i, Cells: row})

		kd := mod(i + rp[i].d)
		ka := mod(i - rp[i].a)
		lim := p
		if prm.IncludeHCol {
			lim = n
		}
		var d, a []grid.Coord
		for r := 0; r < rows; r++ {
			for c := 0; c < lim; c++ {
				if mod(r+c) == kd {
					d = append(d, grid.Coord{Row: r, Col: c})
				}
				if mod(r-c) == ka {
					a = append(a, grid.Coord{Row: r, Col: c})
				}
			}
		}
		chains = append(chains, grid.Chain{Kind: grid.Diagonal, Index: i, Cells: d})
		chains = append(chains, grid.Chain{Kind: grid.AntiDiagonal, Index: i, Cells: a})
	}

	layout, err := grid.NewLayout(rows, n, parity, chains)
	if err != nil {
		return nil, err
	}
	return build(name, p, layout)
}

// SearchResult reports the best placement found by a coverage search.
type SearchResult struct {
	Params   PlacementParams
	Covered  int // recoverable triple-column failures
	Total    int // all triple-column combinations
	Searched int // candidates evaluated
}

// Full reports whether the found parameters cover every triple failure.
func (r SearchResult) Full() bool { return r.Covered == r.Total && r.Total > 0 }

// SearchPlacement scans the placement family for prime p and returns the
// parameters with the highest verified triple-fault coverage, stopping
// early at full coverage. When distributed is set, only placements with
// S2 != 0 (diagonal parity spread across columns) are considered.
// maxCandidates bounds the scan (<= 0 means unbounded).
func SearchPlacement(p, maxCandidates int, distributed bool) (SearchResult, error) {
	if err := requirePrime("placement", p); err != nil {
		return SearchResult{}, err
	}
	var best SearchResult
	for _, include := range []bool{false, true} {
		for s2 := 0; s2 < p; s2++ {
			if distributed && s2 == 0 {
				continue
			}
			for s3 := 0; s3 < p; s3++ {
				for b := 0; b < p; b++ {
					for c := 0; c < p; c++ {
						if maxCandidates > 0 && best.Searched >= maxCandidates {
							return best, nil
						}
						prm := PlacementParams{B: b, S2: s2, C: c, S3: s3, IncludeHCol: include}
						code, err := buildVertical("search", p, prm)
						if err != nil {
							continue
						}
						best.Searched++
						ok, total, _ := code.TripleFaultCoverage()
						if ok > best.Covered {
							best.Params, best.Covered, best.Total = prm, ok, total
							if ok == total {
								return best, nil
							}
						} else if best.Total == 0 {
							best.Total = total
						}
					}
				}
			}
		}
	}
	return best, nil
}
