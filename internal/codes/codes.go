// Package codes implements the XOR-based triple-disk-failure-tolerant
// (3DFT) erasure-code layouts evaluated in the FBF paper: STAR (p+3
// disks), Triple-Star (p+2 disks), TIP and HDD1 (p+1 disks).
//
// Every code is described purely by its stripe geometry — a grid of
// chunks plus a set of parity chains (cell sets whose XOR is zero). The
// encoder and decoder are derived generically from the chain equations
// with GF(2) Gaussian elimination, so a layout is the single source of
// truth for both data placement and recoverability.
package codes

import (
	"fmt"
	"math/rand"
	"sort"

	"fbf/internal/chunk"
	"fbf/internal/gf2"
	"fbf/internal/grid"
)

// Code is one concrete erasure-code instance (a code family bound to a
// prime p). Code values are immutable and safe for concurrent use.
type Code struct {
	name   string
	p      int
	layout *grid.Layout
	// encPlan[i] lists, for parity cell ParityCells()[i], the data cells
	// whose XOR produces it.
	encParity []grid.Coord
	encPlan   [][]grid.Coord
	sys       *gf2.System
}

// build derives the encoder plan from the layout's chain equations and
// wraps everything into a Code. It fails if the chains do not uniquely
// determine every parity cell from the data cells.
func build(name string, p int, layout *grid.Layout) (*Code, error) {
	c := &Code{name: name, p: p, layout: layout}
	c.sys = gf2.NewSystem(layout.Cells())
	for _, ch := range layout.Chains() {
		eq := make([]int, len(ch.Cells))
		for i, cell := range ch.Cells {
			eq[i] = c.CellIndex(cell)
		}
		c.sys.AddEquation(eq)
	}
	c.encParity = layout.ParityCells()
	unknowns := make([]int, len(c.encParity))
	for i, cell := range c.encParity {
		unknowns[i] = c.CellIndex(cell)
	}
	sol, unsolved := c.sys.Solve(unknowns)
	if len(unsolved) > 0 {
		return nil, fmt.Errorf("codes: %s(p=%d): %d parity cells undetermined by chain equations", name, p, len(unsolved))
	}
	c.encPlan = make([][]grid.Coord, len(c.encParity))
	for i, cell := range c.encParity {
		terms := sol.Terms[c.CellIndex(cell)]
		plan := make([]grid.Coord, len(terms))
		for j, t := range terms {
			plan[j] = c.CoordOf(t)
		}
		c.encPlan[i] = plan
	}
	return c, nil
}

// Name returns the code family name ("star", "triplestar", "tip",
// "hdd1").
func (c *Code) Name() string { return c.name }

// P returns the prime parameter.
func (c *Code) P() int { return c.p }

// Disks returns the number of disks (grid columns).
func (c *Code) Disks() int { return c.layout.Cols() }

// Rows returns the number of chunk rows per stripe.
func (c *Code) Rows() int { return c.layout.Rows() }

// Layout returns the stripe geometry.
func (c *Code) Layout() *grid.Layout { return c.layout }

// String renders the code as "name(p=..)".
func (c *Code) String() string { return fmt.Sprintf("%s(p=%d)", c.name, c.p) }

// CellIndex maps a coordinate to a dense cell index (row-major).
func (c *Code) CellIndex(coord grid.Coord) int {
	return coord.Row*c.layout.Cols() + coord.Col
}

// CoordOf is the inverse of CellIndex.
func (c *Code) CoordOf(idx int) grid.Coord {
	return grid.Coord{Row: idx / c.layout.Cols(), Col: idx % c.layout.Cols()}
}

// Stripe holds the chunk contents of one stripe, indexed by CellIndex.
type Stripe []chunk.Chunk

// NewStripe allocates a stripe of zeroed chunks with the given chunk
// size.
func (c *Code) NewStripe(chunkSize int) Stripe {
	s := make(Stripe, c.layout.Cells())
	for i := range s {
		s[i] = chunk.New(chunkSize)
	}
	return s
}

// Chunk returns the stripe chunk at the given coordinate.
func (s Stripe) Chunk(c *Code, coord grid.Coord) chunk.Chunk { return s[c.CellIndex(coord)] }

// Encode fills every parity chunk of the stripe from the data chunks.
// Data chunks must already be populated; parity chunks are overwritten.
func (c *Code) Encode(s Stripe) {
	if len(s) != c.layout.Cells() {
		panic(fmt.Sprintf("codes: stripe has %d cells, want %d", len(s), c.layout.Cells()))
	}
	for i, cell := range c.encParity {
		dst := s[c.CellIndex(cell)]
		clear(dst)
		for _, term := range c.encPlan[i] {
			chunk.XORInto(dst, s[c.CellIndex(term)])
		}
	}
}

// Verify reports whether every parity chain of the stripe XORs to zero.
func (c *Code) Verify(s Stripe) bool {
	acc := chunk.New(len(s[0])) // reused across chains: copy-first, XOR rest
	for i := range c.layout.Chains() {
		ch := &c.layout.Chains()[i]
		for j, cell := range ch.Cells {
			if j == 0 {
				copy(acc, s[c.CellIndex(cell)])
				continue
			}
			chunk.XORInto(acc, s[c.CellIndex(cell)])
		}
		if !acc.IsZero() {
			return false
		}
	}
	return true
}

// RecoveryPlan expresses each lost cell as a XOR of surviving cells, or
// reports that the erasure pattern is unrecoverable.
func (c *Code) RecoveryPlan(lost []grid.Coord) (map[grid.Coord][]grid.Coord, error) {
	unknowns := make([]int, len(lost))
	for i, cell := range lost {
		if !c.layout.InBounds(cell) {
			return nil, fmt.Errorf("codes: lost cell %v out of bounds", cell)
		}
		unknowns[i] = c.CellIndex(cell)
	}
	sol, unsolved := c.sys.Solve(unknowns)
	if len(unsolved) > 0 {
		bad := make([]grid.Coord, len(unsolved))
		for i, u := range unsolved {
			bad[i] = c.CoordOf(u)
		}
		return nil, fmt.Errorf("codes: %v: unrecoverable cells %v", c, bad)
	}
	plan := make(map[grid.Coord][]grid.Coord, len(lost))
	for _, cell := range lost {
		terms := sol.Terms[c.CellIndex(cell)]
		coords := make([]grid.Coord, len(terms))
		for i, t := range terms {
			coords[i] = c.CoordOf(t)
		}
		plan[cell] = coords
	}
	return plan, nil
}

// PartialRecoveryPlan is RecoveryPlan for erasure patterns that may
// exceed the code's tolerance: it expresses every solvable lost cell as
// a XOR of surviving cells and returns the unsolvable cells separately
// instead of failing outright. It implements core.Planner, the decoder
// fallback mid-rebuild scheme regeneration uses when escalated faults
// leave no single parity chain usable.
func (c *Code) PartialRecoveryPlan(lost []grid.Coord) (map[grid.Coord][]grid.Coord, []grid.Coord, error) {
	seen := make(map[grid.Coord]bool, len(lost))
	unknowns := make([]int, 0, len(lost))
	for _, cell := range lost {
		if !c.layout.InBounds(cell) {
			return nil, nil, fmt.Errorf("codes: lost cell %v out of bounds", cell)
		}
		if seen[cell] {
			continue
		}
		seen[cell] = true
		unknowns = append(unknowns, c.CellIndex(cell))
	}
	sol, unsolved := c.sys.Solve(unknowns)
	plan := make(map[grid.Coord][]grid.Coord, len(sol.Terms))
	for idx, terms := range sol.Terms {
		coords := make([]grid.Coord, len(terms))
		for i, t := range terms {
			coords[i] = c.CoordOf(t)
		}
		plan[c.CoordOf(idx)] = coords
	}
	var bad []grid.Coord
	for _, u := range unsolved {
		bad = append(bad, c.CoordOf(u))
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].Less(bad[j]) })
	return plan, bad, nil
}

// Recover reconstructs the lost cells of a stripe in place using the
// generic GF(2) decoder.
func (c *Code) Recover(s Stripe, lost []grid.Coord) error {
	plan, err := c.RecoveryPlan(lost)
	if err != nil {
		return err
	}
	for cell, terms := range plan {
		dst := s[c.CellIndex(cell)]
		clear(dst)
		for _, t := range terms {
			chunk.XORInto(dst, s[c.CellIndex(t)])
		}
	}
	return nil
}

// CanRecoverColumns reports whether the simultaneous loss of the given
// whole disks (columns) is recoverable.
func (c *Code) CanRecoverColumns(cols ...int) bool {
	var lost []int
	for _, col := range cols {
		if col < 0 || col >= c.layout.Cols() {
			return false
		}
		for r := 0; r < c.layout.Rows(); r++ {
			lost = append(lost, c.CellIndex(grid.Coord{Row: r, Col: col}))
		}
	}
	return c.sys.Solvable(lost)
}

// TripleFaultCoverage checks every combination of three distinct columns
// and returns the number of recoverable combinations, the total number
// of combinations, and the failing combinations (nil when fully
// covered).
func (c *Code) TripleFaultCoverage() (ok, total int, failing [][3]int) {
	n := c.layout.Cols()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for d := b + 1; d < n; d++ {
				total++
				if c.CanRecoverColumns(a, b, d) {
					ok++
				} else {
					failing = append(failing, [3]int{a, b, d})
				}
			}
		}
	}
	return ok, total, failing
}

// IsPrime reports whether p is prime (trial division; p is small).
func IsPrime(p int) bool {
	if p < 2 {
		return false
	}
	for d := 2; d*d <= p; d++ {
		if p%d == 0 {
			return false
		}
	}
	return true
}

func requirePrime(name string, p int) error {
	if !IsPrime(p) {
		return fmt.Errorf("codes: %s requires prime p, got %d", name, p)
	}
	if p < 3 {
		return fmt.Errorf("codes: %s requires p >= 3, got %d", name, p)
	}
	return nil
}

// Names lists the registered code family names in stable order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

var registry = map[string]func(p int) (*Code, error){
	"star":       NewSTAR,
	"triplestar": NewTripleStar,
	"tip":        NewTIP,
	"hdd1":       NewHDD1,
}

// New constructs a code by family name.
func New(name string, p int) (*Code, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("codes: unknown code %q (have %v)", name, Names())
	}
	return ctor(p)
}

// MustNew is New that panics on error, for tests and examples with
// compile-time-known parameters.
func MustNew(name string, p int) *Code {
	c, err := New(name, p)
	if err != nil {
		panic(err)
	}
	return c
}

// MaxPartialSize returns p-1, the paper's partial-stripe bound (larger
// errors fall to whole-stripe reconstruction).
func (c *Code) MaxPartialSize() int { return c.p - 1 }

// MaterializeStripe returns a deterministic, fully encoded stripe with
// pseudo-random data contents derived from seed; it implements the
// engine's data-verification interface (core.Rebuilder).
func (c *Code) MaterializeStripe(seed int64, chunkSize int) []chunk.Chunk {
	s := c.NewStripe(chunkSize)
	c.MaterializeStripeInto(s, seed)
	return s
}

// MaterializeStripeInto implements core.RebuilderInto: dst may come
// from a pool un-zeroed — the RNG overwrites every data byte and Encode
// overwrites every parity byte.
func (c *Code) MaterializeStripeInto(dst []chunk.Chunk, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, cell := range c.layout.DataCells() {
		rng.Read(dst[c.CellIndex(cell)])
	}
	c.Encode(dst)
}

// RebuildChunk recomputes the lost cell by XOR-ing the chain's other
// members, implementing core.Rebuilder.
func (c *Code) RebuildChunk(id grid.ChainID, lost grid.Coord, stripe []chunk.Chunk) (chunk.Chunk, error) {
	acc := chunk.New(len(stripe[0]))
	if err := c.RebuildChunkInto(acc, id, lost, stripe); err != nil {
		return nil, err
	}
	return acc, nil
}

// RebuildChunkInto implements core.RebuilderInto: the first surviving
// member is copied and the rest XORed in, so dst may come from a pool
// un-zeroed.
func (c *Code) RebuildChunkInto(dst chunk.Chunk, id grid.ChainID, lost grid.Coord, stripe []chunk.Chunk) error {
	ch, ok := c.layout.Chain(id)
	if !ok {
		return fmt.Errorf("codes: %v has no chain %v", c, id)
	}
	if !ch.Contains(lost) {
		return fmt.Errorf("codes: chain %v does not contain %v", id, lost)
	}
	first := true
	for _, m := range ch.Cells {
		if m == lost {
			continue
		}
		if first {
			copy(dst, stripe[c.CellIndex(m)])
			first = false
			continue
		}
		chunk.XORInto(dst, stripe[c.CellIndex(m)])
	}
	if first {
		clear(dst)
	}
	return nil
}
