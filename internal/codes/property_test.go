package codes

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fbf/internal/chunk"
	"fbf/internal/grid"
)

// TestPropertyEncodeVerify: any random data contents encode to a stripe
// whose every chain XORs to zero, for every code family.
func TestPropertyEncodeVerify(t *testing.T) {
	err := quick.Check(func(seed int64, pick uint8) bool {
		name := Names()[int(pick)%len(Names())]
		code := MustNew(name, 7)
		s := randomEncodedStripe(t, code, seed, 48)
		return code.Verify(s)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyCorruptionDetected: flipping any single bit of an encoded
// stripe breaks verification.
func TestPropertyCorruptionDetected(t *testing.T) {
	err := quick.Check(func(seed int64, cellPick, bytePick uint16, bit uint8) bool {
		code := MustNew("tip", 5)
		s := randomEncodedStripe(t, code, seed, 32)
		cell := int(cellPick) % len(s)
		// Only cells covered by at least one chain can be detected; in
		// our layouts that is every cell.
		s[cell][int(bytePick)%32] ^= 1 << (bit % 8)
		return !code.Verify(s)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyRandomErasureRoundTrip: erasing any random set of cells
// confined to at most three columns decodes back to the original bytes.
func TestPropertyRandomErasureRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 60; trial++ {
		name := Names()[rng.Intn(len(Names()))]
		code := MustNew(name, 7)
		s := randomEncodedStripe(t, code, int64(trial), 32)
		backup := make([]chunk.Chunk, len(s))
		for i := range s {
			backup[i] = chunk.XOR(s[i])
		}
		// Pick up to 3 columns, erase a random subset of their cells.
		ncols := 1 + rng.Intn(3)
		cols := rng.Perm(code.Disks())[:ncols]
		var lost []grid.Coord
		for _, col := range cols {
			for r := 0; r < code.Rows(); r++ {
				if rng.Intn(2) == 0 {
					cell := grid.Coord{Row: r, Col: col}
					lost = append(lost, cell)
					clear(s[code.CellIndex(cell)])
				}
			}
		}
		if len(lost) == 0 {
			continue
		}
		if err := code.Recover(s, lost); err != nil {
			t.Fatalf("trial %d %s: erasure within %d columns must decode: %v", trial, name, ncols, err)
		}
		for i := range s {
			if !s[i].Equal(backup[i]) {
				t.Fatalf("trial %d %s: cell %v wrong after recovery", trial, name, code.CoordOf(i))
			}
		}
	}
}

// TestPropertyChainsOneCellPerColumnForHorizontal: the scheme
// generator's reliance that horizontal chains touch each column at most
// once (so any single-column error leaves them usable).
func TestPropertyChainsOneCellPerColumnForHorizontal(t *testing.T) {
	for _, name := range Names() {
		for _, p := range []int{5, 7, 11} {
			code := MustNew(name, p)
			for _, ch := range code.Layout().Chains() {
				if ch.Kind != grid.Horizontal {
					continue
				}
				seen := map[int]bool{}
				for _, cell := range ch.Cells {
					if seen[cell.Col] {
						t.Fatalf("%s(p=%d): horizontal chain %v has two cells in column %d", name, p, ch.ID(), cell.Col)
					}
					seen[cell.Col] = true
				}
			}
		}
	}
}

// TestPropertyVerticalChainsOneCellPerColumn: the vertical-family codes
// (TIP, HDD1) and Triple-Star keep every chain at one cell per column,
// which guarantees single-column errors always have three usable
// chains. (STAR's adjuster chains legitimately violate this.)
func TestPropertyVerticalChainsOneCellPerColumn(t *testing.T) {
	for _, name := range []string{"tip", "hdd1", "triplestar"} {
		code := MustNew(name, 11)
		for _, ch := range code.Layout().Chains() {
			seen := map[int]bool{}
			for _, cell := range ch.Cells {
				if seen[cell.Col] {
					t.Fatalf("%s: chain %v has two cells in column %d", name, ch.ID(), cell.Col)
				}
				seen[cell.Col] = true
			}
		}
	}
}

// TestPropertyMaterializeStripeIsEncoded ties the Rebuilder interface to
// Verify.
func TestPropertyMaterializeStripeIsEncoded(t *testing.T) {
	for _, name := range Names() {
		code := MustNew(name, 5)
		s := code.MaterializeStripe(99, 64)
		if !code.Verify(Stripe(s)) {
			t.Errorf("%s: materialized stripe not encoded", name)
		}
		// RebuildChunk agrees with the stripe contents on every chain.
		for _, ch := range code.Layout().Chains() {
			lost := ch.Cells[0]
			got, err := code.RebuildChunk(ch.ID(), lost, s)
			if err != nil {
				t.Fatalf("%s chain %v: %v", name, ch.ID(), err)
			}
			if !got.Equal(s[code.CellIndex(lost)]) {
				t.Errorf("%s chain %v: RebuildChunk mismatch", name, ch.ID())
			}
		}
	}
}

func TestRebuildChunkErrors(t *testing.T) {
	code := MustNew("tip", 5)
	s := code.MaterializeStripe(1, 16)
	if _, err := code.RebuildChunk(grid.ChainID{Kind: grid.Diagonal, Index: 99}, grid.Coord{}, s); err == nil {
		t.Error("unknown chain accepted")
	}
	if _, err := code.RebuildChunk(grid.ChainID{Kind: grid.Horizontal, Index: 0}, grid.Coord{Row: 3, Col: 0}, s); err == nil {
		t.Error("cell outside chain accepted")
	}
}
