package codes

import (
	"bytes"
	"testing"
)

// placementPrimes is the prime menu FuzzPlacement indexes into. Small
// primes keep the per-exec GF(2) elimination cheap while still covering
// two distinct wrap geometries.
var placementPrimes = []int{5, 7}

// FuzzPlacement fuzzes the vertical placement family constructor: any
// (prime, B, S2, C, S3, IncludeHCol) tuple must either be rejected with
// an error (parity-column collision, reused diagonal class) or produce a
// self-consistent code — correct dimensions, verifiable encoding, and
// byte-exact single-column recovery for every disk. This is the
// generator behind the TIP and HDD1 stand-ins, so a silent geometry bug
// here corrupts every downstream experiment.
func FuzzPlacement(f *testing.F) {
	f.Add(0, 0, 1, 1, 2, false) // TIPPlacement at p=5
	f.Add(1, 0, 0, 6, 6, false) // HDD1Placement at p=7
	f.Add(0, 2, 3, 4, 1, true)  // RDP-style: horizontal parity inside diagonals
	f.Fuzz(func(t *testing.T, pIdx, b, s2, c, s3 int, include bool) {
		if pIdx < 0 || pIdx >= len(placementPrimes) {
			t.Skip()
		}
		p := placementPrimes[pIdx]
		if b < 0 || b >= p || s2 < 0 || s2 >= p || c < 0 || c >= p || s3 < 0 || s3 >= p {
			t.Skip()
		}
		prm := PlacementParams{B: b, S2: s2, C: c, S3: s3, IncludeHCol: include}
		code, err := buildVertical("fuzz", p, prm)
		if err != nil {
			return // rejected placements are fine; they must just not panic
		}
		if code.Rows() != p-1 || code.Disks() != p+1 {
			t.Fatalf("%+v: got %dx%d grid, want %dx%d", prm, code.Rows(), code.Disks(), p-1, p+1)
		}
		stripe := code.MaterializeStripe(1, 16)
		if !code.Verify(stripe) {
			t.Fatalf("%+v: encoded stripe fails parity verification", prm)
		}
		// Every single column must be recoverable: horizontal chains alone
		// cover each cell of a column exactly once.
		for col := 0; col < code.Disks(); col++ {
			if !code.CanRecoverColumns(col) {
				t.Fatalf("%+v: single column %d reported unrecoverable", prm, col)
			}
			lost := code.Layout().ColumnCells(col)
			damaged := make(Stripe, len(stripe))
			for i, ch := range stripe {
				damaged[i] = bytes.Clone(ch)
			}
			for _, cell := range lost {
				for i := range damaged[code.CellIndex(cell)] {
					damaged[code.CellIndex(cell)][i] = 0xA5
				}
			}
			if err := code.Recover(damaged, lost); err != nil {
				t.Fatalf("%+v: recover column %d: %v", prm, col, err)
			}
			for _, cell := range lost {
				idx := code.CellIndex(cell)
				if !bytes.Equal(damaged[idx], stripe[idx]) {
					t.Fatalf("%+v: column %d cell %v not byte-identical after recovery", prm, col, cell)
				}
			}
		}
	})
}
