package codes

// NewTIP constructs our TIP-code stand-in for a prime p: a
// storage-optimal 3DFT layout on p+1 disks with p-1 rows whose diagonal
// and anti-diagonal parity cells are distributed across the data columns
// (diagonal parity on the main diagonal, anti-diagonal parity on a
// slope-2 line). See family.go for the substitution rationale; the
// placement is exhaustively verified triple-fault tolerant by
// cmd/mdscheck for the primes used in the paper (5, 7, 11, 13) and
// beyond.
func NewTIP(p int) (*Code, error) {
	if err := requirePrime("tip", p); err != nil {
		return nil, err
	}
	return buildVertical("tip", p, TIPPlacement(p))
}
