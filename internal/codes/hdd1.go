package codes

// NewHDD1 constructs our HDD1-code stand-in for a prime p: a p+1-disk
// 3DFT layout with a dedicated horizontal-parity column, a dedicated
// diagonal-parity column (column 0) and anti-diagonal parity cells along
// an anti-diagonal line — a contrasting parity placement to NewTIP from
// the same verified family (see family.go). Exhaustively verified
// triple-fault tolerant by cmd/mdscheck for primes 5..17.
func NewHDD1(p int) (*Code, error) {
	if err := requirePrime("hdd1", p); err != nil {
		return nil, err
	}
	return buildVertical("hdd1", p, HDD1Placement(p))
}
