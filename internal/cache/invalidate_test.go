package cache_test

import (
	"math/rand"
	"testing"

	"fbf/internal/cache"
	"fbf/internal/grid"

	// Register the FBF policy so the contract below covers it too.
	_ "fbf/internal/core"
)

// TestInvalidateContract drives every registered policy — FBF included —
// through randomized request streams interleaved with invalidations and
// asserts the Invalidator contract the fault-injection path depends on:
//
//   - every registered policy implements Invalidator,
//   - Invalidate returns whether a resident copy was dropped (ghost
//     entries are removed but reported false),
//   - after Invalidate the chunk is gone: Contains is false and the
//     next Request is a miss,
//   - invalidations are not evictions (Evictions is unchanged) and
//     never corrupt Len.
func TestInvalidateContract(t *testing.T) {
	mkID := func(n int) cache.ChunkID {
		return cache.ChunkID{Stripe: n / 16, Cell: grid.Coord{Row: n % 16}}
	}
	for _, name := range cache.Names() {
		t.Run(name, func(t *testing.T) {
			for _, capacity := range []int{1, 3, 16} {
				p := cache.MustNew(name, capacity)
				inv, ok := p.(cache.Invalidator)
				if !ok {
					t.Fatalf("policy %q does not implement Invalidator", name)
				}
				rng := rand.New(rand.NewSource(int64(len(name)*1000 + capacity)))
				stream := make([]cache.ChunkID, 800)
				for i := range stream {
					stream[i] = mkID(rng.Intn(4 * capacity))
				}
				if fa, okf := p.(cache.FutureAware); okf {
					fa.SetFuture(stream)
				}
				for i, id := range stream {
					p.Request(id)
					if i%7 != 3 {
						continue
					}
					victim := mkID(rng.Intn(4 * capacity))
					wasResident := p.Contains(victim)
					lenBefore := p.Len()
					evBefore := p.Stats().Evictions
					if got := inv.Invalidate(victim); got != wasResident {
						t.Fatalf("cap %d step %d: Invalidate(%v) = %v, residency was %v",
							capacity, i, victim, got, wasResident)
					}
					if p.Contains(victim) {
						t.Fatalf("cap %d step %d: %v still resident after Invalidate", capacity, i, victim)
					}
					wantLen := lenBefore
					if wasResident {
						wantLen--
					}
					if p.Len() != wantLen {
						t.Fatalf("cap %d step %d: Len %d after Invalidate, want %d", capacity, i, p.Len(), wantLen)
					}
					if p.Stats().Evictions != evBefore {
						t.Fatalf("cap %d step %d: Invalidate bumped Evictions", capacity, i)
					}
					// Double invalidation is a no-op reporting false.
					if inv.Invalidate(victim) {
						t.Fatalf("cap %d step %d: second Invalidate(%v) reported resident", capacity, i, victim)
					}
					// The invalidated chunk must re-enter through a miss.
					if p.Request(victim) {
						t.Fatalf("cap %d step %d: hit on invalidated %v", capacity, i, victim)
					}
				}
			}
		})
	}
}
