package cache

import "container/heap"

// Belady is the clairvoyant optimal policy (Belady's MIN/OPT): given the
// full future request sequence via SetFuture, it evicts the resident
// chunk whose next use is farthest in the future. It provides the
// hit-ratio upper bound used by the ablation benches; it is not a
// realizable policy.
type Belady struct {
	capacity int
	stats    Stats
	pos      int               // index of the next request to be served
	future   map[ChunkID][]int // remaining request positions per chunk
	index    map[ChunkID]*optEntry
	h        optHeap
}

type optEntry struct {
	id      ChunkID
	next    int // position of the chunk's next use; maxInt if never
	heapIdx int
}

const optNever = int(^uint(0) >> 1)

type optHeap []*optEntry

func (h optHeap) Len() int           { return len(h) }
func (h optHeap) Less(i, j int) bool { return h[i].next > h[j].next } // max-heap on next use
func (h optHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx, h[j].heapIdx = i, j
}
func (h *optHeap) Push(x any) {
	e := x.(*optEntry)
	e.heapIdx = len(*h)
	*h = append(*h, e)
}
func (h *optHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewBelady returns an OPT cache holding up to capacity chunks. Callers
// must provide the request sequence with SetFuture before issuing
// requests; requests beyond the provided future are treated as having
// unknown (infinite) reuse distance.
func NewBelady(capacity int) *Belady {
	return &Belady{
		capacity: capacity,
		future:   make(map[ChunkID][]int),
		index:    make(map[ChunkID]*optEntry),
	}
}

// Name implements Policy.
func (b *Belady) Name() string { return "opt" }

// Capacity implements Policy.
func (b *Belady) Capacity() int { return b.capacity }

// Len implements Policy.
func (b *Belady) Len() int { return len(b.index) }

// Contains implements Policy.
func (b *Belady) Contains(id ChunkID) bool { _, ok := b.index[id]; return ok }

// Stats implements Policy.
func (b *Belady) Stats() Stats { return b.stats }

// SetFuture implements FutureAware: it installs the upcoming request
// sequence, resetting the request cursor but keeping resident chunks.
func (b *Belady) SetFuture(requests []ChunkID) {
	b.future = make(map[ChunkID][]int, len(requests))
	for i, id := range requests {
		b.future[id] = append(b.future[id], i)
	}
	b.pos = 0
	// Recompute next-use for resident chunks under the new future.
	for id, e := range b.index {
		e.next = b.nextUse(id)
	}
	heap.Init(&b.h)
}

// nextUse returns the position of id's next request at or after b.pos.
func (b *Belady) nextUse(id ChunkID) int {
	positions := b.future[id]
	for len(positions) > 0 && positions[0] < b.pos {
		positions = positions[1:]
	}
	b.future[id] = positions
	if len(positions) == 0 {
		return optNever
	}
	return positions[0]
}

// Request implements Policy.
func (b *Belady) Request(id ChunkID) bool {
	b.pos++
	if e, ok := b.index[id]; ok {
		e.next = b.nextUse(id)
		heap.Fix(&b.h, e.heapIdx)
		b.stats.Hits++
		return true
	}
	b.stats.Misses++
	if b.capacity == 0 {
		return false
	}
	next := b.nextUse(id)
	if len(b.index) >= b.capacity {
		// MIN evicts the farthest next use among residents and the
		// incoming chunk; if the incoming chunk is the farthest, bypass
		// the cache entirely.
		if b.h[0].next <= next {
			return false
		}
		victim := heap.Pop(&b.h).(*optEntry)
		delete(b.index, victim.id)
		b.stats.Evictions++
	}
	e := &optEntry{id: id, next: next}
	heap.Push(&b.h, e)
	b.index[id] = e
	return false
}

// Invalidate implements Invalidator.
func (b *Belady) Invalidate(id ChunkID) bool {
	e, ok := b.index[id]
	if !ok {
		return false
	}
	heap.Remove(&b.h, e.heapIdx)
	delete(b.index, id)
	return true
}

// Reset implements Policy.
func (b *Belady) Reset() {
	*b = *NewBelady(b.capacity)
}
