package cache

import "fbf/internal/ds"

// TwoQ implements the full 2Q policy (Johnson & Shasha, VLDB'94): new
// chunks enter a FIFO probation queue (A1in); on eviction from A1in
// their identity is remembered in a ghost queue (A1out); a re-reference
// while in the ghost queue promotes the chunk into the main LRU queue
// (Am). The classic tuning Kin = capacity/4, Kout = capacity/2 is used.
type TwoQ struct {
	capacity int
	kin      int
	kout     int
	stats    Stats

	a1in  ds.List[ChunkID] // FIFO, front = oldest
	a1out ds.List[ChunkID] // ghost FIFO
	am    ds.List[ChunkID] // LRU, front = LRU end
	index map[ChunkID]*twoQEntry
}

type twoQList uint8

const (
	twoQA1in twoQList = iota
	twoQA1out
	twoQAm
)

type twoQEntry struct {
	where twoQList
	node  *ds.Node[ChunkID]
}

// NewTwoQ returns a 2Q cache holding up to capacity chunks.
func NewTwoQ(capacity int) *TwoQ {
	kin := capacity / 4
	if kin < 1 && capacity > 0 {
		kin = 1
	}
	kout := capacity / 2
	if kout < 1 && capacity > 0 {
		kout = 1
	}
	return &TwoQ{capacity: capacity, kin: kin, kout: kout, index: make(map[ChunkID]*twoQEntry)}
}

// Name implements Policy.
func (q *TwoQ) Name() string { return "2q" }

// Capacity implements Policy.
func (q *TwoQ) Capacity() int { return q.capacity }

// Len implements Policy. Ghost entries hold no data.
func (q *TwoQ) Len() int { return q.a1in.Len() + q.am.Len() }

// Contains implements Policy.
func (q *TwoQ) Contains(id ChunkID) bool {
	e, ok := q.index[id]
	return ok && e.where != twoQA1out
}

// Stats implements Policy.
func (q *TwoQ) Stats() Stats { return q.stats }

// reclaim frees one resident slot following the 2Q "reclaimfor" rule.
func (q *TwoQ) reclaim() {
	if q.a1in.Len() > q.kin || q.am.Len() == 0 {
		// Demote the oldest probation page to the ghost queue.
		id := q.a1in.PopFront()
		e := q.index[id]
		e.where = twoQA1out
		e.node = q.a1out.PushBack(id)
		if q.a1out.Len() > q.kout {
			old := q.a1out.PopFront()
			delete(q.index, old)
		}
	} else {
		id := q.am.PopFront()
		delete(q.index, id)
	}
	q.stats.Evictions++
}

// Request implements Policy.
func (q *TwoQ) Request(id ChunkID) bool {
	if e, ok := q.index[id]; ok {
		switch e.where {
		case twoQAm:
			q.am.MoveToBack(e.node)
			q.stats.Hits++
			return true
		case twoQA1in:
			// 2Q leaves probation pages in place on re-reference.
			q.stats.Hits++
			return true
		default: // ghost hit: promote to Am.
			q.stats.Misses++
			if q.capacity == 0 {
				return false
			}
			// Unlink from the ghost queue before reclaiming: reclaim may
			// trim A1out and must not free this very entry.
			q.a1out.Remove(e.node)
			if q.Len() >= q.capacity {
				q.reclaim()
			}
			e.where = twoQAm
			e.node = q.am.PushBack(id)
			return false
		}
	}
	q.stats.Misses++
	if q.capacity == 0 {
		return false
	}
	if q.Len() >= q.capacity {
		q.reclaim()
	}
	e := &twoQEntry{where: twoQA1in}
	e.node = q.a1in.PushBack(id)
	q.index[id] = e
	return false
}

// Invalidate implements Invalidator: ghost entries are removed too, but
// only a resident (A1in/Am) copy counts as dropped.
func (q *TwoQ) Invalidate(id ChunkID) bool {
	e, ok := q.index[id]
	if !ok {
		return false
	}
	switch e.where {
	case twoQA1in:
		q.a1in.Remove(e.node)
	case twoQAm:
		q.am.Remove(e.node)
	default:
		q.a1out.Remove(e.node)
	}
	delete(q.index, id)
	return e.where != twoQA1out
}

// Reset implements Policy.
func (q *TwoQ) Reset() {
	*q = *NewTwoQ(q.capacity)
}
