package cache

import "fbf/internal/ds"

// LFU evicts the chunk with the lowest in-cache reference count, with
// ties broken by recency (least recently used first). The
// frequency-bucket structure gives O(1) operations.
type LFU struct {
	capacity int
	stats    Stats
	index    map[ChunkID]*lfuEntry
	buckets  map[uint64]*ds.List[*lfuEntry] // frequency -> entries (front = LRU)
	minFreq  uint64
}

type lfuEntry struct {
	id   ChunkID
	freq uint64
	node *ds.Node[*lfuEntry]
}

// NewLFU returns an LFU cache holding up to capacity chunks.
func NewLFU(capacity int) *LFU {
	return &LFU{
		capacity: capacity,
		index:    make(map[ChunkID]*lfuEntry),
		buckets:  make(map[uint64]*ds.List[*lfuEntry]),
	}
}

// Name implements Policy.
func (l *LFU) Name() string { return "lfu" }

// Capacity implements Policy.
func (l *LFU) Capacity() int { return l.capacity }

// Len implements Policy.
func (l *LFU) Len() int { return len(l.index) }

// Contains implements Policy.
func (l *LFU) Contains(id ChunkID) bool { _, ok := l.index[id]; return ok }

// Stats implements Policy.
func (l *LFU) Stats() Stats { return l.stats }

func (l *LFU) bucket(freq uint64) *ds.List[*lfuEntry] {
	b, ok := l.buckets[freq]
	if !ok {
		b = &ds.List[*lfuEntry]{}
		l.buckets[freq] = b
	}
	return b
}

func (l *LFU) detach(e *lfuEntry) {
	b := l.buckets[e.freq]
	b.Remove(e.node)
	if b.Len() == 0 {
		delete(l.buckets, e.freq)
		if l.minFreq == e.freq {
			// minFreq is fixed up lazily on the next insert/promotion;
			// promotions only ever move it up by one.
			l.minFreq = e.freq + 1
		}
	}
}

// Request implements Policy.
func (l *LFU) Request(id ChunkID) bool {
	if e, ok := l.index[id]; ok {
		l.detach(e)
		e.freq++
		e.node = l.bucket(e.freq).PushBack(e)
		l.stats.Hits++
		return true
	}
	l.stats.Misses++
	if l.capacity == 0 {
		return false
	}
	if len(l.index) >= l.capacity {
		b := l.buckets[l.minFreq]
		victim := b.PopFront()
		if b.Len() == 0 {
			delete(l.buckets, l.minFreq)
		}
		delete(l.index, victim.id)
		l.stats.Evictions++
	}
	e := &lfuEntry{id: id, freq: 1}
	e.node = l.bucket(1).PushBack(e)
	l.index[id] = e
	l.minFreq = 1
	return false
}

// Invalidate implements Invalidator.
func (l *LFU) Invalidate(id ChunkID) bool {
	e, ok := l.index[id]
	if !ok {
		return false
	}
	l.detach(e)
	delete(l.index, id)
	return true
}

// Reset implements Policy.
func (l *LFU) Reset() {
	*l = *NewLFU(l.capacity)
}
