package cache

import (
	"math/rand"
	"testing"

	"fbf/internal/grid"
)

func id(n int) ChunkID { return ChunkID{Stripe: 0, Cell: grid.Coord{Row: n, Col: 0}} }

func ids(ns ...int) []ChunkID {
	out := make([]ChunkID, len(ns))
	for i, n := range ns {
		out[i] = id(n)
	}
	return out
}

func TestChunkIDString(t *testing.T) {
	got := ChunkID{Stripe: 3, Cell: grid.Coord{Row: 1, Col: 2}}.String()
	if got != "S3:C(1,2)" {
		t.Errorf("String() = %q", got)
	}
}

func TestStats(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1}
	if s.Requests() != 4 {
		t.Errorf("Requests = %d", s.Requests())
	}
	if s.HitRatio() != 0.75 {
		t.Errorf("HitRatio = %f", s.HitRatio())
	}
	if (Stats{}).HitRatio() != 0 {
		t.Error("empty HitRatio should be 0")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := map[string]bool{"fifo": true, "lru": true, "lfu": true, "arc": true, "lru2": true, "2q": true, "opt": true}
	for w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("policy %q not registered", w)
		}
	}
	if _, err := New("bogus", 4); err == nil {
		t.Error("New(bogus) should fail")
	}
	if _, err := New("lru", -1); err == nil {
		t.Error("negative capacity should fail")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustNew should panic")
			}
		}()
		MustNew("bogus", 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate Register should panic")
			}
		}()
		Register("lru", func(int) Policy { return nil })
	}()
}

// conformance exercises invariants every policy must satisfy.
func conformance(t *testing.T, name string) {
	t.Helper()
	t.Run("capacity-respected", func(t *testing.T) {
		p := MustNew(name, 4)
		for i := 0; i < 100; i++ {
			p.Request(id(i % 17))
			if p.Len() > p.Capacity() {
				t.Fatalf("Len %d > Capacity %d", p.Len(), p.Capacity())
			}
		}
	})
	t.Run("hit-iff-contains", func(t *testing.T) {
		p := MustNew(name, 8)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 500; i++ {
			x := id(rng.Intn(20))
			resident := p.Contains(x)
			hit := p.Request(x)
			if hit != resident {
				t.Fatalf("request %v: hit=%v but Contains=%v", x, hit, resident)
			}
		}
	})
	t.Run("stats-consistent", func(t *testing.T) {
		p := MustNew(name, 4)
		rng := rand.New(rand.NewSource(2))
		var hits, misses uint64
		for i := 0; i < 300; i++ {
			if p.Request(id(rng.Intn(12))) {
				hits++
			} else {
				misses++
			}
		}
		s := p.Stats()
		if s.Hits != hits || s.Misses != misses {
			t.Fatalf("stats %+v, counted hits=%d misses=%d", s, hits, misses)
		}
		if s.Evictions > s.Misses {
			t.Fatalf("evictions %d > misses %d", s.Evictions, s.Misses)
		}
	})
	t.Run("reset", func(t *testing.T) {
		p := MustNew(name, 4)
		for i := 0; i < 10; i++ {
			p.Request(id(i))
		}
		p.Reset()
		if p.Len() != 0 || p.Stats() != (Stats{}) {
			t.Fatalf("Reset left Len=%d stats=%+v", p.Len(), p.Stats())
		}
		if p.Contains(id(9)) {
			t.Fatal("Reset left residents")
		}
		if p.Capacity() != 4 {
			t.Fatal("Reset changed capacity")
		}
	})
	t.Run("zero-capacity", func(t *testing.T) {
		p := MustNew(name, 0)
		for i := 0; i < 10; i++ {
			if p.Request(id(i % 2)) {
				t.Fatal("zero-capacity cache produced a hit")
			}
			if p.Len() != 0 {
				t.Fatal("zero-capacity cache holds chunks")
			}
		}
	})
	t.Run("capacity-one", func(t *testing.T) {
		p := MustNew(name, 1)
		p.Request(id(1))
		if !p.Request(id(1)) {
			t.Fatal("immediate re-request should hit")
		}
		p.Request(id(2))
		if p.Len() != 1 {
			t.Fatalf("Len = %d, want 1", p.Len())
		}
	})
	t.Run("name", func(t *testing.T) {
		p := MustNew(name, 2)
		if p.Name() != name {
			t.Fatalf("Name() = %q, want %q", p.Name(), name)
		}
	})
}

func TestConformanceAllPolicies(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) { conformance(t, name) })
	}
}

func TestFIFOOrder(t *testing.T) {
	p := NewFIFO(3)
	for _, n := range ids(1, 2, 3) {
		p.Request(n)
	}
	p.Request(id(1)) // hit; FIFO must NOT refresh
	p.Request(id(4)) // evicts 1 (oldest by insertion)
	if p.Contains(id(1)) {
		t.Error("FIFO should have evicted 1")
	}
	if !p.Contains(id(2)) || !p.Contains(id(3)) || !p.Contains(id(4)) {
		t.Error("FIFO contents wrong")
	}
}

func TestLRUOrder(t *testing.T) {
	p := NewLRU(3)
	for _, n := range ids(1, 2, 3) {
		p.Request(n)
	}
	p.Request(id(1)) // refreshes 1; LRU order now 2,3,1
	p.Request(id(4)) // evicts 2
	if p.Contains(id(2)) {
		t.Error("LRU should have evicted 2")
	}
	if !p.Contains(id(1)) || !p.Contains(id(3)) || !p.Contains(id(4)) {
		t.Error("LRU contents wrong")
	}
}

func TestLFUEvictsLowestFrequency(t *testing.T) {
	p := NewLFU(3)
	p.Request(id(1))
	p.Request(id(1)) // freq 2
	p.Request(id(2))
	p.Request(id(2)) // freq 2
	p.Request(id(3)) // freq 1
	p.Request(id(4)) // evicts 3 (lowest freq)
	if p.Contains(id(3)) {
		t.Error("LFU should have evicted 3")
	}
	if !p.Contains(id(1)) || !p.Contains(id(2)) || !p.Contains(id(4)) {
		t.Error("LFU contents wrong")
	}
}

func TestLFUTieBrokenByLRU(t *testing.T) {
	p := NewLFU(2)
	p.Request(id(1))
	p.Request(id(2)) // both freq 1; 1 is least recent
	p.Request(id(3)) // evicts 1
	if p.Contains(id(1)) || !p.Contains(id(2)) {
		t.Error("LFU tie-break wrong")
	}
}

func TestLFUMinFreqTracking(t *testing.T) {
	p := NewLFU(2)
	p.Request(id(1))
	p.Request(id(1))
	p.Request(id(1)) // freq 3
	p.Request(id(2)) // freq 1
	p.Request(id(2)) // freq 2
	p.Request(id(3)) // must evict 2 (freq 2 < 3), not 1
	if p.Contains(id(2)) || !p.Contains(id(1)) || !p.Contains(id(3)) {
		t.Error("LFU minFreq tracking wrong")
	}
}

func TestARCGhostPromotion(t *testing.T) {
	p := NewARC(2)
	p.Request(id(1))
	p.Request(id(1)) // 1 promoted to T2
	p.Request(id(2)) // T1={2}, T2={1}
	p.Request(id(3)) // replace() demotes 2 into the B1 ghost list
	if p.Contains(id(2)) {
		t.Fatal("2 should not be resident")
	}
	before := p.TargetP()
	p.Request(id(2)) // ghost hit: p grows, 2 promoted to T2
	if !p.Contains(id(2)) {
		t.Error("ghost hit should re-admit 2")
	}
	if p.TargetP() <= before {
		t.Errorf("B1 ghost hit should raise target p (was %d, now %d)", before, p.TargetP())
	}
}

func TestARCScanResistance(t *testing.T) {
	// A long one-shot scan should not flush a small, hot working set.
	p := NewARC(8)
	hot := ids(100, 101, 102, 103)
	for round := 0; round < 6; round++ {
		for _, h := range hot {
			p.Request(h)
		}
	}
	for i := 0; i < 200; i++ { // cold scan
		p.Request(id(i))
		for _, h := range hot {
			p.Request(h)
		}
	}
	s := p.Stats()
	lru := NewLRU(8)
	for round := 0; round < 6; round++ {
		for _, h := range hot {
			lru.Request(h)
		}
	}
	for i := 0; i < 200; i++ {
		lru.Request(id(i))
		for _, h := range hot {
			lru.Request(h)
		}
	}
	if s.Hits < lru.Stats().Hits {
		t.Errorf("ARC hits %d < LRU hits %d under scan+hot mix", s.Hits, lru.Stats().Hits)
	}
}

func TestLRU2PrefersHistory(t *testing.T) {
	p := NewLRU2(2)
	p.Request(id(1))
	p.Request(id(1)) // 1 has two accesses
	p.Request(id(2)) // 2 has one access
	p.Request(id(3)) // victim must be 2 (no penultimate access)
	if p.Contains(id(2)) || !p.Contains(id(1)) {
		t.Error("LRU-2 should evict the single-access chunk first")
	}
}

func TestLRU2OldestPenultimate(t *testing.T) {
	p := NewLRU2(2)
	p.Request(id(1))
	p.Request(id(2))
	p.Request(id(1)) // 1: accesses at t1,t3 → prev=t1
	p.Request(id(2)) // 2: accesses at t2,t4 → prev=t2
	p.Request(id(1)) // 1: prev=t3
	p.Request(id(3)) // victim: 2 (prev t2 < t3)
	if p.Contains(id(2)) || !p.Contains(id(1)) || !p.Contains(id(3)) {
		t.Error("LRU-2 penultimate ordering wrong")
	}
}

func TestTwoQGhostPromotion(t *testing.T) {
	p := NewTwoQ(4) // kin=1, kout=2
	p.Request(id(1))
	p.Request(id(2)) // A1in over kin → 1 demoted to ghost on next reclaim
	p.Request(id(3))
	p.Request(id(4))
	p.Request(id(5)) // fills and reclaims; some of 1..4 now ghosts
	// Find a ghost: request an id that is non-resident but remembered.
	ghosted := -1
	for _, n := range []int{1, 2, 3, 4} {
		if !p.Contains(id(n)) {
			ghosted = n
			break
		}
	}
	if ghosted < 0 {
		t.Fatal("no ghost created")
	}
	p.Request(id(ghosted))
	if !p.Contains(id(ghosted)) {
		t.Error("ghost re-reference should promote into Am")
	}
}

func TestTwoQProbationHitStays(t *testing.T) {
	p := NewTwoQ(8)
	p.Request(id(1))
	if !p.Request(id(1)) {
		t.Error("A1in re-reference should hit")
	}
}

func TestBeladyOptimalOnKnownTrace(t *testing.T) {
	// Trace: 1 2 3 1 2 3, capacity 2. OPT achieves 2 hits (keep 1 then 2
	// across the 3s by bypassing/evicting farthest), LRU achieves 0.
	trace := ids(1, 2, 3, 1, 2, 3)
	opt := NewBelady(2)
	opt.SetFuture(trace)
	for _, x := range trace {
		opt.Request(x)
	}
	if got := opt.Stats().Hits; got < 2 {
		t.Errorf("OPT hits = %d, want >= 2", got)
	}
	lru := NewLRU(2)
	for _, x := range trace {
		lru.Request(x)
	}
	if lru.Stats().Hits != 0 {
		t.Errorf("LRU hits = %d, want 0 (sanity)", lru.Stats().Hits)
	}
}

func TestBeladyUpperBoundsAllPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 300
		trace := make([]ChunkID, n)
		for i := range trace {
			trace[i] = id(rng.Intn(24))
		}
		capacity := 2 + rng.Intn(8)
		opt := NewBelady(capacity)
		opt.SetFuture(trace)
		for _, x := range trace {
			opt.Request(x)
		}
		optHits := opt.Stats().Hits
		for _, name := range Names() {
			if name == "opt" {
				continue
			}
			p := MustNew(name, capacity)
			for _, x := range trace {
				p.Request(x)
			}
			if h := p.Stats().Hits; h > optHits {
				t.Errorf("trial %d: %s hits %d > OPT hits %d (capacity %d)", trial, name, h, optHits, capacity)
			}
		}
	}
}

// referenceLRU is an intentionally naive model used to cross-check the
// linked-list LRU.
type referenceLRU struct {
	capacity int
	order    []ChunkID // index 0 = LRU
}

func (r *referenceLRU) request(x ChunkID) bool {
	for i, y := range r.order {
		if y == x {
			r.order = append(append(append([]ChunkID{}, r.order[:i]...), r.order[i+1:]...), x)
			return true
		}
	}
	if r.capacity > 0 {
		if len(r.order) >= r.capacity {
			r.order = r.order[1:]
		}
		r.order = append(r.order, x)
	}
	return false
}

func TestLRUMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		capacity := rng.Intn(6)
		p := NewLRU(capacity)
		ref := &referenceLRU{capacity: capacity}
		for i := 0; i < 400; i++ {
			x := id(rng.Intn(15))
			if got, want := p.Request(x), ref.request(x); got != want {
				t.Fatalf("trial %d step %d: LRU hit=%v, reference=%v", trial, i, got, want)
			}
		}
	}
}

func TestBeladySetFutureResetsCursor(t *testing.T) {
	opt := NewBelady(2)
	first := ids(1, 2, 1)
	opt.SetFuture(first)
	for _, x := range first {
		opt.Request(x)
	}
	second := ids(2, 1, 2)
	opt.SetFuture(second)
	hits := 0
	for _, x := range second {
		if opt.Request(x) {
			hits++
		}
	}
	if hits == 0 {
		t.Error("residents should survive SetFuture and produce hits")
	}
}
