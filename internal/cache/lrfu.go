package cache

import (
	"container/heap"
	"math"
)

// LRFU implements the Least Recently/Frequently Used policy (Lee et
// al., IEEE ToC 2001; reference [30] of the FBF paper): every block
// carries a Combined Recency and Frequency (CRF) value, the sum of
// F(age) = (1/2)^(lambda * age) over its past references. lambda = 0
// degenerates to LFU (pure frequency), lambda = 1 to LRU (pure
// recency); the classic sweet spot lies in between.
//
// The implementation uses the standard O(log n) trick: CRFs are stored
// scaled to the current clock, so a block's relative order only changes
// when it is referenced, and a min-heap on the scaled CRF yields the
// victim.
type LRFU struct {
	capacity int
	lambda   float64
	stats    Stats
	clock    uint64
	index    map[ChunkID]*lrfuEntry
	h        lrfuHeap
}

type lrfuEntry struct {
	id      ChunkID
	crf     float64 // CRF valued at the entry's last reference time
	last    uint64  // clock of the last reference
	heapIdx int
}

// weight is F(age) = 0.5^(lambda * age).
func (l *LRFU) weight(age uint64) float64 {
	return math.Pow(0.5, l.lambda*float64(age))
}

// crfAt re-values an entry's CRF at the given clock.
func (l *LRFU) crfAt(e *lrfuEntry, now uint64) float64 {
	return e.crf * l.weight(now-e.last)
}

type lrfuHeap struct {
	l       *LRFU
	entries []*lrfuEntry
}

func (h lrfuHeap) Len() int { return len(h.entries) }
func (h lrfuHeap) Less(i, j int) bool {
	// Comparing CRFs valued at any common time preserves order because
	// both scale by the same factor; use each entry's stored value
	// re-based to the max of the two last-reference times.
	a, b := h.entries[i], h.entries[j]
	base := a.last
	if b.last > base {
		base = b.last
	}
	return h.l.crfAt(a, base) < h.l.crfAt(b, base)
}
func (h lrfuHeap) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.entries[i].heapIdx, h.entries[j].heapIdx = i, j
}
func (h *lrfuHeap) Push(x any) {
	e := x.(*lrfuEntry)
	e.heapIdx = len(h.entries)
	h.entries = append(h.entries, e)
}
func (h *lrfuHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	h.entries = old[:n-1]
	return e
}

// NewLRFU returns an LRFU cache with the given capacity and decay
// parameter lambda in [0, 1].
func NewLRFU(capacity int, lambda float64) *LRFU {
	if lambda < 0 {
		lambda = 0
	}
	if lambda > 1 {
		lambda = 1
	}
	l := &LRFU{capacity: capacity, lambda: lambda, index: make(map[ChunkID]*lrfuEntry)}
	l.h.l = l
	return l
}

// Name implements Policy.
func (l *LRFU) Name() string { return "lrfu" }

// Capacity implements Policy.
func (l *LRFU) Capacity() int { return l.capacity }

// Len implements Policy.
func (l *LRFU) Len() int { return len(l.index) }

// Contains implements Policy.
func (l *LRFU) Contains(id ChunkID) bool { _, ok := l.index[id]; return ok }

// Stats implements Policy.
func (l *LRFU) Stats() Stats { return l.stats }

// Lambda returns the decay parameter.
func (l *LRFU) Lambda() float64 { return l.lambda }

// Request implements Policy.
func (l *LRFU) Request(id ChunkID) bool {
	l.clock++
	if e, ok := l.index[id]; ok {
		e.crf = 1 + l.crfAt(e, l.clock)
		e.last = l.clock
		heap.Fix(&l.h, e.heapIdx)
		l.stats.Hits++
		return true
	}
	l.stats.Misses++
	if l.capacity == 0 {
		return false
	}
	if len(l.index) >= l.capacity {
		victim := heap.Pop(&l.h).(*lrfuEntry)
		delete(l.index, victim.id)
		l.stats.Evictions++
	}
	e := &lrfuEntry{id: id, crf: 1, last: l.clock}
	heap.Push(&l.h, e)
	l.index[id] = e
	return false
}

// Invalidate implements Invalidator.
func (l *LRFU) Invalidate(id ChunkID) bool {
	e, ok := l.index[id]
	if !ok {
		return false
	}
	heap.Remove(&l.h, e.heapIdx)
	delete(l.index, id)
	return true
}

// Reset implements Policy.
func (l *LRFU) Reset() {
	*l = *NewLRFU(l.capacity, l.lambda)
}
