// Package cache provides the buffer-cache abstraction used by the
// reconstruction engines, together with the classic replacement policies
// the paper compares against (FIFO, LRU, LFU, ARC) and two extra
// baselines (LRU-2, 2Q) plus a clairvoyant Belady policy for upper-bound
// ablations. The paper's own FBF policy lives in internal/core and
// implements the same Policy interface.
//
// Capacity is measured in chunks: the simulated caches hold fixed-size
// chunks (32 KB in the paper), so a byte budget divides evenly.
package cache

import (
	"fmt"
	"sort"

	"fbf/internal/grid"
)

// ChunkID identifies one chunk on the array: the stripe it belongs to
// and its cell coordinate within the stripe.
type ChunkID struct {
	Stripe int
	Cell   grid.Coord
}

// String renders the id as "S<stripe>:C(r,c)".
func (id ChunkID) String() string { return fmt.Sprintf("S%d:%s", id.Stripe, id.Cell) }

// Stats counts cache events since the last Reset.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Requests returns the total number of requests observed.
func (s Stats) Requests() uint64 { return s.Hits + s.Misses }

// HitRatio returns hits / requests, or 0 with no requests.
func (s Stats) HitRatio() float64 {
	if r := s.Requests(); r > 0 {
		return float64(s.Hits) / float64(r)
	}
	return 0
}

// Policy is a chunk-cache replacement policy. Implementations are not
// safe for concurrent use; the engines give each worker its own policy
// instance (the paper's SOR parallel reconstruction partitions the cache
// the same way).
type Policy interface {
	// Name returns the policy's registry name.
	Name() string
	// Capacity returns the maximum number of resident chunks.
	Capacity() int
	// Len returns the current number of resident chunks.
	Len() int
	// Request records an access to id, returning true on a hit. On a
	// miss the policy admits id, evicting as needed; the caller is
	// responsible for modeling the disk fetch that the miss implies.
	Request(id ChunkID) bool
	// Contains reports residency without side effects.
	Contains(id ChunkID) bool
	// Stats returns the event counters accumulated since Reset.
	Stats() Stats
	// Reset drops all cached state and counters.
	Reset()
}

// PriorityAware is implemented by policies (FBF) that consult the
// priority dictionary produced by recovery-scheme generation. Engines
// call SetPriorities before replaying a recovery task's requests;
// policies that do not implement this interface simply ignore
// priorities.
type PriorityAware interface {
	SetPriorities(priorities map[ChunkID]int)
}

// FutureAware is implemented by clairvoyant policies (Belady/OPT) that
// need the full upcoming request sequence.
type FutureAware interface {
	SetFuture(requests []ChunkID)
}

// Invalidator drops a chunk whose cached contents have become stale —
// the fault-injection path uses it when an unrecoverable read error
// escalates a chunk to lost, so a copy admitted before the escalation
// cannot serve later hits. Invalidate removes id from the cache
// entirely (including any ghost/history entries) and reports whether a
// resident copy was dropped. It is not an eviction: Stats().Evictions
// counts only capacity replacements. All registered policies implement
// it.
type Invalidator interface {
	Invalidate(id ChunkID) bool
}

// Factory constructs a policy with the given capacity in chunks.
type Factory func(capacity int) Policy

var registry = map[string]Factory{}

// Register adds a policy factory under a unique name. It is intended to
// be called from init functions and panics on duplicates.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cache: duplicate policy %q", name))
	}
	registry[name] = f
}

// Names returns the registered policy names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New constructs a registered policy by name.
func New(name string, capacity int) (Policy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cache: unknown policy %q (have %v)", name, Names())
	}
	if capacity < 0 {
		return nil, fmt.Errorf("cache: negative capacity %d", capacity)
	}
	return f(capacity), nil
}

// MustNew is New that panics on error.
func MustNew(name string, capacity int) Policy {
	p, err := New(name, capacity)
	if err != nil {
		panic(err)
	}
	return p
}

func init() {
	Register("fifo", func(c int) Policy { return NewFIFO(c) })
	Register("lru", func(c int) Policy { return NewLRU(c) })
	Register("lfu", func(c int) Policy { return NewLFU(c) })
	Register("arc", func(c int) Policy { return NewARC(c) })
	Register("lru2", func(c int) Policy { return NewLRU2(c) })
	Register("2q", func(c int) Policy { return NewTwoQ(c) })
	Register("lrfu", func(c int) Policy { return NewLRFU(c, 0.1) })
	Register("opt", func(c int) Policy { return NewBelady(c) })
}
