package cache

import "testing"

// TestLRUSteadyStateAllocs pins the freelist behaviour of the LRU
// policy: once the cache is at capacity, a miss evicts one entry and
// inserts another by recycling the evicted list node, so the
// miss-evict-insert cycle — the rebuild hot path's dominant cache
// operation — allocates nothing.
func TestLRUSteadyStateAllocs(t *testing.T) {
	const capacity = 64
	l := NewLRU(capacity)
	// Warm to capacity and let the map grow to its final size.
	for i := 0; i < 4*capacity; i++ {
		l.Request(ChunkID{Stripe: i})
	}
	next := 4 * capacity
	allocs := testing.AllocsPerRun(1000, func() {
		l.Request(ChunkID{Stripe: next}) // miss: evict + insert
		next++
		l.Request(ChunkID{Stripe: next - 1}) // hit: move to back
	})
	if allocs != 0 {
		t.Errorf("steady-state LRU request cycle allocates %v objects, want 0", allocs)
	}
}
