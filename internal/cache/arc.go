package cache

import "fbf/internal/ds"

// ARC is the Adaptive Replacement Cache of Megiddo & Modha (FAST'03): a
// self-tuning balance between recency (T1) and frequency (T2) with ghost
// lists (B1, B2) steering the adaptation target p.
type ARC struct {
	capacity int
	stats    Stats
	p        int // target size of T1

	t1, t2, b1, b2 ds.List[ChunkID] // fronts are the LRU ends
	index          map[ChunkID]*arcEntry
}

type arcList uint8

const (
	arcT1 arcList = iota
	arcT2
	arcB1
	arcB2
)

type arcEntry struct {
	where arcList
	node  *ds.Node[ChunkID]
}

// NewARC returns an ARC cache holding up to capacity chunks.
func NewARC(capacity int) *ARC {
	return &ARC{capacity: capacity, index: make(map[ChunkID]*arcEntry)}
}

// Name implements Policy.
func (a *ARC) Name() string { return "arc" }

// Capacity implements Policy.
func (a *ARC) Capacity() int { return a.capacity }

// Len implements Policy.
func (a *ARC) Len() int { return a.t1.Len() + a.t2.Len() }

// Contains implements Policy. Ghost entries are not resident.
func (a *ARC) Contains(id ChunkID) bool {
	e, ok := a.index[id]
	return ok && (e.where == arcT1 || e.where == arcT2)
}

// Stats implements Policy.
func (a *ARC) Stats() Stats { return a.stats }

// TargetP exposes the adaptation target for tests and ablation output.
func (a *ARC) TargetP() int { return a.p }

func (a *ARC) listOf(w arcList) *ds.List[ChunkID] {
	switch w {
	case arcT1:
		return &a.t1
	case arcT2:
		return &a.t2
	case arcB1:
		return &a.b1
	default:
		return &a.b2
	}
}

// moveTo relocates an indexed entry to the MRU end of the given list.
func (a *ARC) moveTo(id ChunkID, w arcList) {
	e := a.index[id]
	a.listOf(e.where).Remove(e.node)
	e.where = w
	e.node = a.listOf(w).PushBack(id)
}

// dropLRU removes the LRU entry of the given list from the cache
// entirely.
func (a *ARC) dropLRU(w arcList) {
	id := a.listOf(w).PopFront()
	delete(a.index, id)
	if w == arcT1 || w == arcT2 {
		a.stats.Evictions++
	}
}

// replace is the REPLACE subroutine of the ARC paper: demote the LRU of
// T1 or T2 into its ghost list to make room for one resident page.
//
// The paper's pseudocode pops T2 whenever the T1 condition is false,
// but after ghost-hit adaptation T2 can be empty while T1 is not (e.g.
// a B1 ghost hit raises p to |T1| with every resident page in T1);
// popping the empty list would corrupt the index, so the branch
// selection falls back to the non-empty side.
func (a *ARC) replace(inB2 bool) {
	fromT1 := a.t1.Len() >= 1 && ((inB2 && a.t1.Len() == a.p) || a.t1.Len() > a.p)
	if !fromT1 && a.t2.Len() == 0 {
		if a.t1.Len() == 0 {
			return // no resident pages at all; nothing to demote
		}
		fromT1 = true
	}
	if fromT1 {
		id := a.t1.PopFront()
		e := a.index[id]
		e.where = arcB1
		e.node = a.b1.PushBack(id)
	} else {
		id := a.t2.PopFront()
		e := a.index[id]
		e.where = arcB2
		e.node = a.b2.PushBack(id)
	}
	a.stats.Evictions++
}

// Request implements Policy, following Figure 4 of the ARC paper.
func (a *ARC) Request(id ChunkID) bool {
	c := a.capacity
	if c == 0 {
		a.stats.Misses++
		return false
	}
	if e, ok := a.index[id]; ok {
		switch e.where {
		case arcT1, arcT2: // Case I: hit.
			a.moveTo(id, arcT2)
			a.stats.Hits++
			return true
		case arcB1: // Case II: ghost hit in B1 → favor recency.
			delta := 1
			if a.b1.Len() > 0 && a.b2.Len() > a.b1.Len() {
				delta = a.b2.Len() / a.b1.Len()
			}
			a.p = min(c, a.p+delta)
			a.replace(false)
			a.moveTo(id, arcT2)
			a.stats.Misses++
			return false
		default: // Case III: ghost hit in B2 → favor frequency.
			delta := 1
			if a.b2.Len() > 0 && a.b1.Len() > a.b2.Len() {
				delta = a.b1.Len() / a.b2.Len()
			}
			a.p = max(0, a.p-delta)
			a.replace(true)
			a.moveTo(id, arcT2)
			a.stats.Misses++
			return false
		}
	}
	// Case IV: completely new page.
	a.stats.Misses++
	l1 := a.t1.Len() + a.b1.Len()
	if l1 == c {
		if a.t1.Len() < c {
			a.dropLRU(arcB1)
			a.replace(false)
		} else {
			// B1 is empty and T1 is full: evict the LRU of T1 outright.
			a.dropLRU(arcT1)
		}
	} else if l1 < c {
		total := l1 + a.t2.Len() + a.b2.Len()
		if total >= c {
			if total == 2*c {
				a.dropLRU(arcB2)
			}
			a.replace(false)
		}
	}
	e := &arcEntry{where: arcT1}
	e.node = a.t1.PushBack(id)
	a.index[id] = e
	return false
}

// Invalidate implements Invalidator: it drops id from whichever list
// holds it, ghost entries included, and reports whether a resident
// (T1/T2) copy was removed.
func (a *ARC) Invalidate(id ChunkID) bool {
	e, ok := a.index[id]
	if !ok {
		return false
	}
	a.listOf(e.where).Remove(e.node)
	delete(a.index, id)
	return e.where == arcT1 || e.where == arcT2
}

// Reset implements Policy.
func (a *ARC) Reset() {
	*a = *NewARC(a.capacity)
}
