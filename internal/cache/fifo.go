package cache

import "fbf/internal/ds"

// FIFO evicts the chunk that has been resident longest, regardless of
// use. It is the simplest baseline in the paper's comparison.
type FIFO struct {
	capacity int
	stats    Stats
	queue    ds.List[ChunkID]
	index    map[ChunkID]*ds.Node[ChunkID]
}

// NewFIFO returns a FIFO cache holding up to capacity chunks.
func NewFIFO(capacity int) *FIFO {
	return &FIFO{capacity: capacity, index: make(map[ChunkID]*ds.Node[ChunkID])}
}

// Name implements Policy.
func (f *FIFO) Name() string { return "fifo" }

// Capacity implements Policy.
func (f *FIFO) Capacity() int { return f.capacity }

// Len implements Policy.
func (f *FIFO) Len() int { return f.queue.Len() }

// Contains implements Policy.
func (f *FIFO) Contains(id ChunkID) bool { _, ok := f.index[id]; return ok }

// Stats implements Policy.
func (f *FIFO) Stats() Stats { return f.stats }

// Request implements Policy. Hits do not reorder the queue.
func (f *FIFO) Request(id ChunkID) bool {
	if _, ok := f.index[id]; ok {
		f.stats.Hits++
		return true
	}
	f.stats.Misses++
	if f.capacity == 0 {
		return false
	}
	if f.queue.Len() >= f.capacity {
		victim := f.queue.PopFront()
		delete(f.index, victim)
		f.stats.Evictions++
	}
	f.index[id] = f.queue.PushBack(id)
	return false
}

// Invalidate implements Invalidator.
func (f *FIFO) Invalidate(id ChunkID) bool {
	n, ok := f.index[id]
	if !ok {
		return false
	}
	f.queue.Remove(n)
	delete(f.index, id)
	return true
}

// Reset implements Policy.
func (f *FIFO) Reset() {
	*f = *NewFIFO(f.capacity)
}
