package cache

import (
	"math/rand"
	"testing"
)

// bruteForceOptimalHits computes the maximum achievable hit count for a
// trace and capacity by exhaustive search over eviction/bypass choices.
// Exponential; only for tiny inputs.
func bruteForceOptimalHits(trace []ChunkID, capacity int) int {
	var best func(resident map[ChunkID]bool, pos int) int
	memo := map[string]int{}
	keyOf := func(resident map[ChunkID]bool, pos int) string {
		key := make([]byte, 0, 16)
		for i := 0; i < 32; i++ {
			if resident[id(i)] {
				key = append(key, byte(i))
			}
		}
		return string(key) + ":" + string(rune(pos))
	}
	best = func(resident map[ChunkID]bool, pos int) int {
		if pos >= len(trace) {
			return 0
		}
		k := keyOf(resident, pos)
		if v, ok := memo[k]; ok {
			return v
		}
		x := trace[pos]
		var result int
		if resident[x] {
			result = 1 + best(resident, pos+1)
		} else if len(resident) < capacity {
			next := cloneSet(resident)
			next[x] = true
			with := best(next, pos+1)
			without := best(resident, pos+1) // bypass
			result = max(with, without)
		} else {
			// Try every possible victim, plus bypassing entirely.
			result = best(resident, pos+1)
			for victim := range resident {
				next := cloneSet(resident)
				delete(next, victim)
				next[x] = true
				if v := best(next, pos+1); v > result {
					result = v
				}
			}
		}
		memo[k] = result
		return result
	}
	return best(map[ChunkID]bool{}, 0)
}

func cloneSet(s map[ChunkID]bool) map[ChunkID]bool {
	out := make(map[ChunkID]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func TestBeladyMatchesBruteForceOptimal(t *testing.T) {
	// Belady's MIN is provably optimal; verify our implementation
	// achieves the brute-force optimum on random tiny traces.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(6)
		capacity := 1 + rng.Intn(3)
		trace := make([]ChunkID, n)
		for i := range trace {
			trace[i] = id(rng.Intn(5))
		}
		opt := NewBelady(capacity)
		opt.SetFuture(trace)
		for _, x := range trace {
			opt.Request(x)
		}
		got := int(opt.Stats().Hits)
		want := bruteForceOptimalHits(trace, capacity)
		if got != want {
			t.Fatalf("trial %d (cap %d, trace %v): Belady hits %d, optimal %d", trial, capacity, trace, got, want)
		}
	}
}
