package cache

import (
	"math/rand"
	"testing"

	"fbf/internal/grid"
)

// refARC is an independent slice-based transcription of the ARC paper's
// Figure 4 pseudocode (index 0 is the LRU end of each list), carrying
// the same emptiness fallback in REPLACE as the production cache: when
// the chosen side has no resident page, demote from the other side, and
// do nothing if there are no resident pages at all.
type refARC struct {
	c, p           int
	t1, t2, b1, b2 []ChunkID
}

func refRemove(list []ChunkID, id ChunkID) []ChunkID {
	for i, v := range list {
		if v == id {
			return append(list[:i:i], list[i+1:]...)
		}
	}
	return list
}

func refHas(list []ChunkID, id ChunkID) bool {
	for _, v := range list {
		if v == id {
			return true
		}
	}
	return false
}

func (r *refARC) replace(inB2 bool) {
	fromT1 := len(r.t1) >= 1 && ((inB2 && len(r.t1) == r.p) || len(r.t1) > r.p)
	if !fromT1 && len(r.t2) == 0 {
		if len(r.t1) == 0 {
			return
		}
		fromT1 = true
	}
	if fromT1 {
		id := r.t1[0]
		r.t1 = r.t1[1:]
		r.b1 = append(r.b1, id)
	} else {
		id := r.t2[0]
		r.t2 = r.t2[1:]
		r.b2 = append(r.b2, id)
	}
}

func (r *refARC) request(id ChunkID) bool {
	c := r.c
	if c == 0 {
		return false
	}
	switch {
	case refHas(r.t1, id) || refHas(r.t2, id): // Case I
		r.t1 = refRemove(r.t1, id)
		r.t2 = append(refRemove(r.t2, id), id)
		return true
	case refHas(r.b1, id): // Case II
		delta := 1
		if len(r.b2) > len(r.b1) {
			delta = len(r.b2) / len(r.b1)
		}
		r.p = min(c, r.p+delta)
		r.replace(false)
		r.b1 = refRemove(r.b1, id)
		r.t2 = append(r.t2, id)
		return false
	case refHas(r.b2, id): // Case III
		delta := 1
		if len(r.b1) > len(r.b2) {
			delta = len(r.b1) / len(r.b2)
		}
		r.p = max(0, r.p-delta)
		r.replace(true)
		r.b2 = refRemove(r.b2, id)
		r.t2 = append(r.t2, id)
		return false
	}
	// Case IV: completely new page.
	l1 := len(r.t1) + len(r.b1)
	if l1 == c {
		if len(r.t1) < c {
			r.b1 = r.b1[1:]
			r.replace(false)
		} else {
			r.t1 = r.t1[1:]
		}
	} else if l1 < c {
		total := l1 + len(r.t2) + len(r.b2)
		if total >= c {
			if total == 2*c {
				r.b2 = r.b2[1:]
			}
			r.replace(false)
		}
	}
	r.t1 = append(r.t1, id)
	return false
}

// TestARCMatchesReference cross-checks the linked-list ARC against the
// slice-based reference on random traces. Tiny capacities with a key
// universe of ~3c force constant ghost churn — the regime where the
// REPLACE edge case (T2 empty after ghost-hit adaptation) lives; before
// the fallback guard this corrupted the index by popping an empty list.
func TestARCMatchesReference(t *testing.T) {
	for capacity := 1; capacity <= 6; capacity++ {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			a := NewARC(capacity)
			ref := &refARC{c: capacity}
			universe := 3 * capacity
			for i := 0; i < 2000; i++ {
				id := ChunkID{Cell: grid.Coord{Row: rng.Intn(universe)}}
				gotHit := a.Request(id)
				wantHit := ref.request(id)
				if gotHit != wantHit {
					t.Fatalf("c=%d seed=%d step %d id=%v: hit=%v, reference says %v",
						capacity, seed, i, id, gotHit, wantHit)
				}
				if a.Len() != len(ref.t1)+len(ref.t2) {
					t.Fatalf("c=%d seed=%d step %d: Len=%d, reference %d",
						capacity, seed, i, a.Len(), len(ref.t1)+len(ref.t2))
				}
				// ARC paper invariants (Section I.B).
				if a.Len() > capacity {
					t.Fatalf("c=%d seed=%d step %d: %d resident pages", capacity, seed, i, a.Len())
				}
				if l1 := a.t1.Len() + a.b1.Len(); l1 > capacity {
					t.Fatalf("c=%d seed=%d step %d: |T1|+|B1| = %d > c", capacity, seed, i, l1)
				}
				if total := a.t1.Len() + a.t2.Len() + a.b1.Len() + a.b2.Len(); total > 2*capacity {
					t.Fatalf("c=%d seed=%d step %d: %d tracked pages > 2c", capacity, seed, i, total)
				}
				if a.p < 0 || a.p > capacity {
					t.Fatalf("c=%d seed=%d step %d: target p=%d outside [0,%d]", capacity, seed, i, a.p, capacity)
				}
			}
			if a.stats.Hits+a.stats.Misses != 2000 {
				t.Fatalf("c=%d seed=%d: hits+misses = %d", capacity, seed, a.stats.Hits+a.stats.Misses)
			}
		}
	}
}

// TestARCReplaceEmptyT2 drives REPLACE into the post-adaptation state
// the paper's pseudocode does not cover: a ghost hit raises p while T2
// holds nothing, so the T2 branch would pop an empty list. The guarded
// implementation must demote from T1 instead (or no-op with no
// residents) and keep serving requests with a consistent index.
func TestARCReplaceEmptyT2(t *testing.T) {
	a := NewARC(2)
	// Force the state directly through the exported API plus the same
	// internal hooks the package owns: fill T1, plant a B1 ghost, raise
	// p to |T1|, then call replace with nothing in T2.
	a.Request(ChunkID{Cell: grid.Coord{Row: 1}})
	a.Request(ChunkID{Cell: grid.Coord{Row: 2}})
	if a.t1.Len() != 2 || a.t2.Len() != 0 {
		t.Fatalf("setup: T1=%d T2=%d", a.t1.Len(), a.t2.Len())
	}
	a.p = a.t1.Len() // adaptation pinned p to |T1|: fromT1 heuristic is false
	a.replace(false)
	if a.t1.Len() != 1 || a.b1.Len() != 1 {
		t.Fatalf("replace with empty T2 demoted wrong page: T1=%d B1=%d T2=%d B2=%d",
			a.t1.Len(), a.b1.Len(), a.t2.Len(), a.b2.Len())
	}
	// The index must still be coherent: every id resolves to the list
	// that holds it.
	for id, e := range a.index {
		if e.node == nil || e.node.Val != id {
			t.Fatalf("index corrupt for %v", id)
		}
	}

	// No residents at all: replace must be a no-op, not a crash.
	empty := NewARC(2)
	empty.replace(false)
	empty.replace(true)
	if empty.Len() != 0 || empty.stats.Evictions != 0 {
		t.Fatalf("replace on empty cache: Len=%d evictions=%d", empty.Len(), empty.stats.Evictions)
	}
}
