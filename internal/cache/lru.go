package cache

import "fbf/internal/ds"

// LRU evicts the least-recently-used chunk.
type LRU struct {
	capacity int
	stats    Stats
	queue    ds.List[ChunkID] // front = LRU, back = MRU
	index    map[ChunkID]*ds.Node[ChunkID]

	// free recycles evicted/invalidated nodes so a full cache churns
	// through misses without allocating.
	free []*ds.Node[ChunkID]
}

// NewLRU returns an LRU cache holding up to capacity chunks.
func NewLRU(capacity int) *LRU {
	return &LRU{capacity: capacity, index: make(map[ChunkID]*ds.Node[ChunkID])}
}

// Name implements Policy.
func (l *LRU) Name() string { return "lru" }

// Capacity implements Policy.
func (l *LRU) Capacity() int { return l.capacity }

// Len implements Policy.
func (l *LRU) Len() int { return l.queue.Len() }

// Contains implements Policy.
func (l *LRU) Contains(id ChunkID) bool { _, ok := l.index[id]; return ok }

// Stats implements Policy.
func (l *LRU) Stats() Stats { return l.stats }

// Request implements Policy.
func (l *LRU) Request(id ChunkID) bool {
	if n, ok := l.index[id]; ok {
		l.queue.MoveToBack(n)
		l.stats.Hits++
		return true
	}
	l.stats.Misses++
	if l.capacity == 0 {
		return false
	}
	if l.queue.Len() >= l.capacity {
		victim := l.queue.Front()
		l.queue.Remove(victim)
		delete(l.index, victim.Val)
		l.free = append(l.free, victim)
		l.stats.Evictions++
	}
	var n *ds.Node[ChunkID]
	if k := len(l.free); k > 0 {
		n = l.free[k-1]
		l.free = l.free[:k-1]
	} else {
		n = &ds.Node[ChunkID]{}
	}
	n.Val = id
	l.queue.PushBackNode(n)
	l.index[id] = n
	return false
}

// Invalidate implements Invalidator.
func (l *LRU) Invalidate(id ChunkID) bool {
	n, ok := l.index[id]
	if !ok {
		return false
	}
	l.queue.Remove(n)
	delete(l.index, id)
	l.free = append(l.free, n)
	return true
}

// Reset implements Policy.
func (l *LRU) Reset() {
	*l = *NewLRU(l.capacity)
}
