package cache

import (
	"math/rand"
	"testing"
)

func TestLRFULambdaClamped(t *testing.T) {
	if NewLRFU(4, -1).Lambda() != 0 {
		t.Error("negative lambda not clamped")
	}
	if NewLRFU(4, 5).Lambda() != 1 {
		t.Error("large lambda not clamped")
	}
	if NewLRFU(4, 0.25).Lambda() != 0.25 {
		t.Error("lambda not stored")
	}
}

func TestLRFUZeroLambdaActsLikeLFU(t *testing.T) {
	// With lambda = 0 the CRF is a pure reference count.
	l := NewLRFU(2, 0)
	l.Request(id(1))
	l.Request(id(1))
	l.Request(id(1)) // crf 3
	l.Request(id(2)) // crf 1
	l.Request(id(3)) // evicts 2
	if l.Contains(id(2)) || !l.Contains(id(1)) || !l.Contains(id(3)) {
		t.Error("lambda=0 should evict the least-referenced chunk")
	}
}

func TestLRFUOneLambdaActsLikeLRU(t *testing.T) {
	// With lambda = 1 the most recent reference dominates: recency wins.
	l := NewLRFU(2, 1)
	l.Request(id(1))
	l.Request(id(1))
	l.Request(id(1)) // old but frequent: crf <= 1 + 1/2 + 1/4 < 2
	l.Request(id(2)) // fresh single reference
	l.Request(id(3)) // victim must be the *older* chunk 1:
	// crf(1) at t=5 is (1+0.5+0.25)*0.5^2 ≈ 0.44 < crf(2) = 1*0.5 = 0.5.
	if l.Contains(id(1)) || !l.Contains(id(2)) || !l.Contains(id(3)) {
		t.Error("lambda=1 should behave recency-first")
	}
}

func TestLRFUMidLambdaBlendsRecencyAndFrequency(t *testing.T) {
	// A chunk with many slightly-older references must outrank a chunk
	// with one fresh reference at moderate lambda.
	l := NewLRFU(2, 0.1)
	for i := 0; i < 5; i++ {
		l.Request(id(1))
	}
	l.Request(id(2)) // one fresh reference
	l.Request(id(3)) // victim should be 2, not the hot 1
	if l.Contains(id(2)) || !l.Contains(id(1)) {
		t.Error("frequency should have protected chunk 1")
	}
}

func TestLRFURegistered(t *testing.T) {
	p := MustNew("lrfu", 4)
	if p.Name() != "lrfu" {
		t.Fatalf("Name = %q", p.Name())
	}
	// The registry instance participates in the generic conformance
	// suite via Names(); this just pins the default construction.
	if p.(*LRFU).Lambda() != 0.1 {
		t.Error("registry default lambda changed unexpectedly")
	}
}

func TestLRFUOrderStableUnderDecay(t *testing.T) {
	// Relative order of two untouched entries must not change as the
	// clock advances (the scaled-CRF invariant): run a long random trace
	// and verify the heap never evicts a chunk whose true CRF exceeds
	// another resident's.
	rng := rand.New(rand.NewSource(9))
	l := NewLRFU(8, 0.3)
	for i := 0; i < 2000; i++ {
		l.Request(id(rng.Intn(24)))
		if l.Len() > 8 {
			t.Fatal("capacity exceeded")
		}
	}
	s := l.Stats()
	if s.Hits == 0 || s.Evictions == 0 {
		t.Fatalf("trace too tame: %+v", s)
	}
}
