package cache

import (
	"math/rand"
	"testing"
)

// TestPolicyContract drives every registered policy through randomized
// request streams and asserts the Policy interface contract that the
// engines and the verify harness depend on:
//
//   - Len never exceeds Capacity; for demand-caching policies every
//     miss admits (when capacity > 0) so Len equals misses minus
//     evictions and a just-requested chunk is resident. Clairvoyant
//     policies are exempt from both: MIN may bypass admission when the
//     incoming chunk's next use is farthest,
//   - Contains has no side effects on the stats,
//   - Hits + Misses equals the number of requests,
//   - Reset clears residency and counters but preserves identity.
//
// The deeper step-by-step behavioural checks against reference models
// live in internal/verify; this test is the registry-wide floor.
func TestPolicyContract(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			for _, capacity := range []int{1, 3, 16} {
				rng := rand.New(rand.NewSource(int64(len(name)*100 + capacity)))
				stream := make([]ChunkID, 600)
				for i := range stream {
					stream[i] = ChunkID{Stripe: rng.Intn(4 * capacity)}
				}
				p := MustNew(name, capacity)
				if p.Name() != name {
					t.Fatalf("Name() = %q, registered as %q", p.Name(), name)
				}
				clairvoyant := false
				if fa, ok := p.(FutureAware); ok {
					fa.SetFuture(stream)
					clairvoyant = true
				}
				var requests uint64
				for i, id := range stream {
					p.Request(id)
					requests++
					if !clairvoyant && !p.Contains(id) {
						t.Fatalf("cap %d step %d: just-requested %v not resident", capacity, i, id)
					}
					if p.Len() > p.Capacity() {
						t.Fatalf("cap %d step %d: Len %d exceeds capacity", capacity, i, p.Len())
					}
					s := p.Stats()
					if s.Hits+s.Misses != requests {
						t.Fatalf("cap %d step %d: %d hits + %d misses != %d requests",
							capacity, i, s.Hits, s.Misses, requests)
					}
					if !clairvoyant && int(s.Misses-s.Evictions) != p.Len() {
						t.Fatalf("cap %d step %d: misses %d - evictions %d != Len %d",
							capacity, i, s.Misses, s.Evictions, p.Len())
					}
				}
				statsBefore := p.Stats()
				p.Contains(ChunkID{Stripe: -1})
				if p.Stats() != statsBefore {
					t.Fatalf("cap %d: Contains mutated stats", capacity)
				}
				p.Reset()
				if p.Len() != 0 || p.Stats() != (Stats{}) {
					t.Fatalf("cap %d: Reset left Len=%d stats=%+v", capacity, p.Len(), p.Stats())
				}
				if p.Capacity() != capacity || p.Name() != name {
					t.Fatalf("cap %d: Reset changed identity to %s/%d", capacity, p.Name(), p.Capacity())
				}
			}
		})
	}
}
