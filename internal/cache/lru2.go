package cache

import "container/heap"

// LRU2 implements the LRU-K policy with K=2 (O'Neil et al., SIGMOD'93):
// the victim is the resident chunk whose second-most-recent access is
// oldest. Chunks seen only once have no penultimate access and are
// evicted before any chunk seen twice, oldest first.
type LRU2 struct {
	capacity int
	stats    Stats
	clock    uint64
	index    map[ChunkID]*lru2Entry
	h        lru2Heap
}

type lru2Entry struct {
	id       ChunkID
	last     uint64 // most recent access time
	prev     uint64 // second-most-recent access time; 0 = none
	heapIdx  int
	accesses uint64
}

// key orders eviction candidates: entries without history first (prev
// 0), then by oldest prev; ties by oldest last access.
func (e *lru2Entry) before(o *lru2Entry) bool {
	if e.prev != o.prev {
		return e.prev < o.prev
	}
	return e.last < o.last
}

type lru2Heap []*lru2Entry

func (h lru2Heap) Len() int           { return len(h) }
func (h lru2Heap) Less(i, j int) bool { return h[i].before(h[j]) }
func (h lru2Heap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx, h[j].heapIdx = i, j
}
func (h *lru2Heap) Push(x any) {
	e := x.(*lru2Entry)
	e.heapIdx = len(*h)
	*h = append(*h, e)
}
func (h *lru2Heap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewLRU2 returns an LRU-2 cache holding up to capacity chunks.
func NewLRU2(capacity int) *LRU2 {
	return &LRU2{capacity: capacity, index: make(map[ChunkID]*lru2Entry)}
}

// Name implements Policy.
func (l *LRU2) Name() string { return "lru2" }

// Capacity implements Policy.
func (l *LRU2) Capacity() int { return l.capacity }

// Len implements Policy.
func (l *LRU2) Len() int { return len(l.index) }

// Contains implements Policy.
func (l *LRU2) Contains(id ChunkID) bool { _, ok := l.index[id]; return ok }

// Stats implements Policy.
func (l *LRU2) Stats() Stats { return l.stats }

// Request implements Policy.
func (l *LRU2) Request(id ChunkID) bool {
	l.clock++
	if e, ok := l.index[id]; ok {
		e.prev = e.last
		e.last = l.clock
		e.accesses++
		heap.Fix(&l.h, e.heapIdx)
		l.stats.Hits++
		return true
	}
	l.stats.Misses++
	if l.capacity == 0 {
		return false
	}
	if len(l.index) >= l.capacity {
		victim := heap.Pop(&l.h).(*lru2Entry)
		delete(l.index, victim.id)
		l.stats.Evictions++
	}
	e := &lru2Entry{id: id, last: l.clock, accesses: 1}
	heap.Push(&l.h, e)
	l.index[id] = e
	return false
}

// Invalidate implements Invalidator.
func (l *LRU2) Invalidate(id ChunkID) bool {
	e, ok := l.index[id]
	if !ok {
		return false
	}
	heap.Remove(&l.h, e.heapIdx)
	delete(l.index, id)
	return true
}

// Reset implements Policy.
func (l *LRU2) Reset() {
	*l = *NewLRU2(l.capacity)
}
