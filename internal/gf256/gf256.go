// Package gf256 implements arithmetic and dense linear algebra over
// GF(2^8), the field underlying Reed-Solomon-style parities. It powers
// the Local Reconstruction Code (internal/lrc) that realizes the FBF
// paper's footnote: "Reed Solomon based codes like Local Reconstruction
// Codes can be applied with FBF as well".
package gf256

import (
	"fmt"

	"fbf/internal/chunk"
)

// The field is GF(2^8) modulo the primitive polynomial x^8 + x^4 + x^3
// + x^2 + 1 (0x11d), the conventional choice for storage codes.
const poly = 0x11d

var (
	expTable [512]byte // generator powers, doubled to avoid mod 255
	logTable [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Add returns a + b (XOR; addition and subtraction coincide).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a * b.
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b; b must be non-zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a; a must be non-zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns the generator raised to the n-th power.
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// MulSlice computes dst[i] ^= c * src[i] for all i — the fused
// multiply-accumulate at the heart of RS encoding and decoding.
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: length mismatch %d != %d", len(dst), len(src)))
	}
	if c == 0 {
		return
	}
	if c == 1 {
		// Coefficient 1 is plain XOR — route through the unrolled /
		// vectorized kernel instead of a byte loop (local LRC chains are
		// all-ones, so this is the common case).
		chunk.XORInto(dst, src)
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[logC+int(logTable[s])]
		}
	}
}

// ScaleSlice computes dst[i] = c * dst[i] in place, the final
// normalization step when solving a chain equation whose lost-cell
// coefficient is not 1.
func ScaleSlice(c byte, dst []byte) {
	if c == 1 {
		return
	}
	if c == 0 {
		clear(dst)
		return
	}
	logC := int(logTable[c])
	for i, d := range dst {
		if d != 0 {
			dst[i] = expTable[logC+int(logTable[d])]
		}
	}
}

// Matrix is a dense byte matrix over GF(256).
type Matrix struct {
	rows, cols int
	data       []byte
}

// NewMatrix returns a zero rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("gf256: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) byte { return m.data[r*m.cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.data[r*m.cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// row returns the slice backing row r.
func (m *Matrix) row(r int) []byte { return m.data[r*m.cols : (r+1)*m.cols] }

// Eliminate performs in-place Gauss-Jordan elimination with pivots
// restricted to the first solveCols columns; remaining columns ride
// along as an augmented part. It returns the pivot column per pivot
// row.
func (m *Matrix) Eliminate(solveCols int) []int {
	if solveCols < 0 || solveCols > m.cols {
		panic(fmt.Sprintf("gf256: solveCols %d out of range", solveCols))
	}
	var pivots []int
	row := 0
	for col := 0; col < solveCols && row < m.rows; col++ {
		pivot := -1
		for r := row; r < m.rows; r++ {
			if m.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		if pivot != row {
			pr, rr := m.row(pivot), m.row(row)
			for i := range pr {
				pr[i], rr[i] = rr[i], pr[i]
			}
		}
		// Normalize the pivot row.
		inv := Inv(m.At(row, col))
		rr := m.row(row)
		for i := range rr {
			rr[i] = Mul(rr[i], inv)
		}
		// Clear the column in every other row.
		for r := 0; r < m.rows; r++ {
			if r == row {
				continue
			}
			factor := m.At(r, col)
			if factor == 0 {
				continue
			}
			target := m.row(r)
			for i := range target {
				target[i] ^= Mul(factor, rr[i])
			}
		}
		pivots = append(pivots, col)
		row++
	}
	return pivots
}

// Rank returns the matrix rank over the first solveCols columns,
// computed on a copy.
func (m *Matrix) Rank(solveCols int) int {
	return len(m.Clone().Eliminate(solveCols))
}

// Term is one coefficient-weighted symbol reference.
type Term struct {
	Coeff  byte
	Symbol int
}

// System solves linear systems over GF(256) whose unknowns and
// right-hand sides are symbols, mirroring gf2.System: each equation
// states that a weighted sum of symbols is zero.
type System struct {
	symbols   int
	equations [][]Term
}

// NewSystem creates a system over the given number of symbols.
func NewSystem(symbols int) *System {
	if symbols < 0 {
		panic("gf256: negative symbol count")
	}
	return &System{symbols: symbols}
}

// Symbols returns the symbol-space size.
func (s *System) Symbols() int { return s.symbols }

// Equations returns the number of equations added.
func (s *System) Equations() int { return len(s.equations) }

// AddEquation appends one equation: sum of Coeff*Symbol terms is zero.
func (s *System) AddEquation(terms []Term) {
	eq := make([]Term, len(terms))
	copy(eq, terms)
	for _, t := range eq {
		if t.Symbol < 0 || t.Symbol >= s.symbols {
			panic(fmt.Sprintf("gf256: symbol %d out of range", t.Symbol))
		}
	}
	s.equations = append(s.equations, eq)
}

// Solution expresses solved unknowns as weighted sums of known symbols.
type Solution struct {
	Terms map[int][]Term
}

// Solve expresses every unknown as a weighted sum of known symbols,
// returning the unknowns it could not determine.
func (s *System) Solve(unknowns []int) (*Solution, []int) {
	unknownIdx := make(map[int]int, len(unknowns))
	for i, u := range unknowns {
		if u < 0 || u >= s.symbols {
			panic(fmt.Sprintf("gf256: unknown symbol %d out of range", u))
		}
		if _, dup := unknownIdx[u]; dup {
			panic(fmt.Sprintf("gf256: duplicate unknown %d", u))
		}
		unknownIdx[u] = i
	}
	nu := len(unknowns)

	knownIdx := make(map[int]int)
	var knownList []int
	for _, eq := range s.equations {
		for _, t := range eq {
			if _, isU := unknownIdx[t.Symbol]; !isU {
				if _, ok := knownIdx[t.Symbol]; !ok {
					knownIdx[t.Symbol] = len(knownList)
					knownList = append(knownList, t.Symbol)
				}
			}
		}
	}
	m := NewMatrix(len(s.equations), nu+len(knownList))
	for r, eq := range s.equations {
		for _, t := range eq {
			var c int
			if u, isU := unknownIdx[t.Symbol]; isU {
				c = u
			} else {
				c = nu + knownIdx[t.Symbol]
			}
			m.Set(r, c, Add(m.At(r, c), t.Coeff))
		}
	}
	pivots := m.Eliminate(nu)

	sol := &Solution{Terms: make(map[int][]Term, nu)}
	solved := make(map[int]bool, len(pivots))
	for row, col := range pivots {
		clean := true
		for c := 0; c < nu; c++ {
			if c != col && m.At(row, c) != 0 {
				clean = false
				break
			}
		}
		if !clean {
			continue
		}
		var terms []Term
		for c := nu; c < m.Cols(); c++ {
			if v := m.At(row, c); v != 0 {
				// Pivot row reads: unknown + sum(v * known) = 0, so the
				// unknown equals the same sum (addition is XOR).
				terms = append(terms, Term{Coeff: v, Symbol: knownList[c-nu]})
			}
		}
		sol.Terms[unknowns[col]] = terms
		solved[col] = true
	}
	var unsolved []int
	for i, u := range unknowns {
		if !solved[i] {
			unsolved = append(unsolved, u)
		}
	}
	return sol, unsolved
}

// Solvable reports whether every unknown can be recovered.
func (s *System) Solvable(unknowns []int) bool {
	_, unsolved := s.Solve(unknowns)
	return len(unsolved) == 0
}
