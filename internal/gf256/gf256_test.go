package gf256

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldAxioms(t *testing.T) {
	err := quick.Check(func(a, b, c byte) bool {
		// Commutativity and associativity of Mul, distributivity over Add.
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		if Mul(a, Add(b, c)) != Add(Mul(a, b), Mul(a, c)) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) || Mul(byte(a), 0) != 0 {
			t.Fatalf("identity/zero broken at %d", a)
		}
	}
}

func TestInvDiv(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Mul(byte(a), Inv(byte(a))) != 1 {
			t.Fatalf("Inv(%d) wrong", a)
		}
		if Div(byte(a), byte(a)) != 1 {
			t.Fatalf("Div(%d,%d) != 1", a, a)
		}
	}
	if Div(0, 7) != 0 {
		t.Error("0/x != 0")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	for _, f := range []func(){func() { Div(1, 0) }, func() { Inv(0) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}

func TestExpGeneratorOrder(t *testing.T) {
	if Exp(0) != 1 || Exp(255) != 1 {
		t.Error("generator order wrong")
	}
	if Exp(-1) != Exp(254) {
		t.Error("negative exponent wrong")
	}
	seen := map[byte]bool{}
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Errorf("generator hits %d elements, want 255", len(seen))
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{1, 2, 3, 0, 255}
	dst := make([]byte, 5)
	MulSlice(7, dst, src)
	for i := range src {
		if dst[i] != Mul(7, src[i]) {
			t.Fatalf("MulSlice[%d] = %d, want %d", i, dst[i], Mul(7, src[i]))
		}
	}
	// c == 1 fast path is plain XOR.
	dst2 := make([]byte, 5)
	MulSlice(1, dst2, src)
	for i := range src {
		if dst2[i] != src[i] {
			t.Fatal("MulSlice(1) wrong")
		}
	}
	// c == 0 is a no-op.
	MulSlice(0, dst2, src)
	for i := range src {
		if dst2[i] != src[i] {
			t.Fatal("MulSlice(0) mutated dst")
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("length mismatch should panic")
			}
		}()
		MulSlice(3, dst, src[:2])
	}()
}

func TestMatrixEliminateIdentity(t *testing.T) {
	m := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, byte(i+5))
	}
	pivots := m.Eliminate(3)
	if len(pivots) != 3 {
		t.Errorf("rank %d", len(pivots))
	}
	for i := 0; i < 3; i++ {
		if m.At(i, i) != 1 {
			t.Error("pivot not normalized")
		}
	}
}

func TestMatrixRankVandermonde(t *testing.T) {
	// Vandermonde over distinct points has full rank.
	n := 5
	m := NewMatrix(n, n)
	for r := 0; r < n; r++ {
		x := Exp(r)
		v := byte(1)
		for c := 0; c < n; c++ {
			m.Set(r, c, v)
			v = Mul(v, x)
		}
	}
	if got := m.Rank(n); got != n {
		t.Errorf("Vandermonde rank = %d, want %d", got, n)
	}
}

func TestSystemSolveWeighted(t *testing.T) {
	// 3*x0 + 5*x1 = 0 with x0 unknown → x0 = (5/3) * x1.
	s := NewSystem(2)
	s.AddEquation([]Term{{3, 0}, {5, 1}})
	sol, unsolved := s.Solve([]int{0})
	if len(unsolved) != 0 {
		t.Fatalf("unsolved %v", unsolved)
	}
	terms := sol.Terms[0]
	if len(terms) != 1 || terms[0].Symbol != 1 || terms[0].Coeff != Div(5, 3) {
		t.Errorf("terms = %v, want coeff %d", terms, Div(5, 3))
	}
}

func TestSystemRoundTrip(t *testing.T) {
	// Build random consistent systems from ground-truth values; check
	// solved expressions evaluate back to the ground truth.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(12)
		values := make([]byte, n)
		for i := range values {
			values[i] = byte(rng.Intn(256))
		}
		s := NewSystem(n)
		for e := 0; e < 3+rng.Intn(6); e++ {
			size := 2 + rng.Intn(4)
			var terms []Term
			var acc byte
			for k := 0; k < size; k++ {
				tm := Term{Coeff: byte(1 + rng.Intn(255)), Symbol: rng.Intn(n - 1)}
				terms = append(terms, tm)
				acc ^= Mul(tm.Coeff, values[tm.Symbol])
			}
			// Balance the equation with the correction symbol n-1.
			if acc != 0 {
				c := byte(1 + rng.Intn(255))
				if values[n-1] == 0 {
					values[n-1] = 1
				}
				// coefficient * values[n-1] must equal acc:
				c = Div(acc, values[n-1])
				terms = append(terms, Term{Coeff: c, Symbol: n - 1})
			}
			s.AddEquation(terms)
		}
		u := rng.Intn(n)
		sol, unsolved := s.Solve([]int{u})
		if len(unsolved) > 0 {
			continue
		}
		var acc byte
		for _, tm := range sol.Terms[u] {
			acc ^= Mul(tm.Coeff, values[tm.Symbol])
		}
		if acc != values[u] {
			t.Fatalf("trial %d: solved %d != truth %d", trial, acc, values[u])
		}
	}
}

func TestSystemUnderdetermined(t *testing.T) {
	s := NewSystem(3)
	s.AddEquation([]Term{{1, 0}, {1, 1}, {1, 2}})
	if s.Solvable([]int{0, 1}) {
		t.Error("two unknowns, one equation should be unsolvable")
	}
	if !s.Solvable([]int{2}) {
		t.Error("single unknown should be solvable")
	}
}

func TestSystemPanics(t *testing.T) {
	s := NewSystem(1)
	for _, f := range []func(){
		func() { s.AddEquation([]Term{{1, 5}}) },
		func() { s.Solve([]int{5}) },
		func() { s.Solve([]int{0, 0}) },
		func() { NewSystem(-1) },
		func() { NewMatrix(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}
