package disk

import (
	"fmt"

	"fbf/internal/sim"
)

// FaultKind classifies an injected request failure. It is delivered to
// completion callbacks through Request.Fault so the reconstruction
// engine can react differently to each class (retry a timeout, escalate
// a latent sector error, re-plan around a dead disk).
type FaultKind uint8

const (
	// FaultNone means the request completed successfully.
	FaultNone FaultKind = iota
	// FaultTransient is a recoverable timeout: the medium is fine and a
	// retry of the same address may succeed.
	FaultTransient
	// FaultURE is a latent sector error (unrecoverable read error): the
	// sectors backing the requested address are permanently unreadable,
	// and every future read of the address fails the same way.
	FaultURE
	// FaultDiskFail means the whole disk has failed; every outstanding
	// and future request on it fails.
	FaultDiskFail
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultTransient:
		return "transient"
	case FaultURE:
		return "ure"
	case FaultDiskFail:
		return "disk-fail"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// FaultPlan decides the injected outcome of every request one disk
// serves. Plans are consulted when a request's service time has elapsed
// (not at submission), so requests that were queued while a fault armed
// do not dodge it. Implementations must be deterministic: the engine's
// reproducibility guarantees extend to faulted runs, so an identical
// (plan, request sequence) pair must yield identical outcomes.
type FaultPlan interface {
	// FailureTime returns the simulated time at which the whole disk
	// fails, if the plan schedules one.
	FailureTime() (sim.Time, bool)
	// Outcome returns the injected fault for a request completing at
	// time now (FaultNone for success). It is not consulted once the
	// disk has failed; whole-disk failure is handled by the disk itself.
	Outcome(r *Request, now sim.Time) FaultKind
}

// SeededFaultPlan is the standard deterministic plan: latent sector
// errors are a pure function of (seed, disk, address) — an address
// either always fails with FaultURE or never does — transient timeouts
// are drawn per attempt from the same seed, and an optional whole-disk
// failure fires at FailAt. Two runs over the same request sequence see
// identical faults.
type SeededFaultPlan struct {
	DiskID        int
	Seed          int64
	URERate       float64  // per-address latent-sector-error probability
	TransientRate float64  // per-attempt transient-timeout probability
	FailAt        sim.Time // whole-disk failure time; 0 = never

	attempts map[int64]uint64 // read attempts seen per address
}

// NewSeededFaultPlan returns a plan for one disk.
func NewSeededFaultPlan(diskID int, seed int64, ureRate, transientRate float64, failAt sim.Time) *SeededFaultPlan {
	return &SeededFaultPlan{
		DiskID:        diskID,
		Seed:          seed,
		URERate:       ureRate,
		TransientRate: transientRate,
		FailAt:        failAt,
	}
}

// FailureTime implements FaultPlan.
func (p *SeededFaultPlan) FailureTime() (sim.Time, bool) {
	return p.FailAt, p.FailAt > 0
}

// Outcome implements FaultPlan. Writes never fault (drives remap bad
// sectors on write), keeping the injected-fault surface on the read
// path the recovery chains depend on.
func (p *SeededFaultPlan) Outcome(r *Request, _ sim.Time) FaultKind {
	if r.Write {
		return FaultNone
	}
	if p.URERate > 0 && faultDraw(p.Seed, uint64(p.DiskID), uint64(r.Addr), 0xA11CE) < p.URERate {
		return FaultURE
	}
	if p.TransientRate > 0 {
		if p.attempts == nil {
			p.attempts = make(map[int64]uint64)
		}
		attempt := p.attempts[r.Addr]
		p.attempts[r.Addr]++
		if faultDraw(p.Seed, uint64(p.DiskID), uint64(r.Addr), 0xBEEF0+attempt) < p.TransientRate {
			return FaultTransient
		}
	}
	return FaultNone
}

// faultDraw hashes its inputs into a uniform float in [0, 1) with a
// splitmix64 finalizer; it is the deterministic coin behind the plan.
func faultDraw(seed int64, disk, addr, salt uint64) float64 {
	x := uint64(seed)
	for _, v := range [...]uint64{disk, addr, salt} {
		x += v + 0x9E3779B97F4A7C15
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		x ^= x >> 31
	}
	return float64(x>>11) / (1 << 53)
}
