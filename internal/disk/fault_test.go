package disk

import (
	"testing"

	"fbf/internal/grid"
	"fbf/internal/sim"
)

func TestFaultKindString(t *testing.T) {
	cases := map[FaultKind]string{
		FaultNone:      "none",
		FaultTransient: "transient",
		FaultURE:       "ure",
		FaultDiskFail:  "disk-fail",
		FaultKind(99):  "FaultKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("FaultKind(%d).String() = %q, want %q", uint8(k), got, want)
		}
	}
}

func TestSeededUREIsPerAddressStable(t *testing.T) {
	// An address either always UREs or never does: re-reading the same
	// address must give the same outcome on every attempt, and two plans
	// with the same seed must agree.
	p1 := NewSeededFaultPlan(2, 42, 0.3, 0, 0)
	p2 := NewSeededFaultPlan(2, 42, 0.3, 0, 0)
	var failed, ok int
	for addr := int64(0); addr < 200; addr++ {
		r := &Request{Addr: addr}
		first := p1.Outcome(r, 0)
		if got := p2.Outcome(r, 0); got != first {
			t.Fatalf("addr %d: plans with equal seeds disagree (%v vs %v)", addr, first, got)
		}
		for attempt := 0; attempt < 3; attempt++ {
			if got := p1.Outcome(r, sim.Time(attempt)); got != first {
				t.Fatalf("addr %d attempt %d: outcome changed %v -> %v", addr, attempt, first, got)
			}
		}
		if first == FaultURE {
			failed++
		} else {
			ok++
		}
	}
	if failed == 0 || ok == 0 {
		t.Errorf("URE rate 0.3 over 200 addresses gave failed=%d ok=%d; draw looks degenerate", failed, ok)
	}
}

func TestSeededTransientIsPerAttempt(t *testing.T) {
	// Transient outcomes are drawn per attempt: with a high rate some
	// attempt sequences must mix failures and successes on one address.
	p := NewSeededFaultPlan(0, 7, 0, 0.5, 0)
	mixed := false
	for addr := int64(0); addr < 50 && !mixed; addr++ {
		r := &Request{Addr: addr}
		var sawFail, sawOK bool
		for attempt := 0; attempt < 8; attempt++ {
			switch p.Outcome(r, 0) {
			case FaultTransient:
				sawFail = true
			case FaultNone:
				sawOK = true
			}
		}
		mixed = sawFail && sawOK
	}
	if !mixed {
		t.Error("no address mixed transient failures and successes across attempts")
	}
}

func TestSeededPlanWritesNeverFault(t *testing.T) {
	p := NewSeededFaultPlan(0, 1, 1.0, 1.0, 0)
	for addr := int64(0); addr < 20; addr++ {
		if got := p.Outcome(&Request{Addr: addr, Write: true}, 0); got != FaultNone {
			t.Fatalf("write at addr %d faulted: %v", addr, got)
		}
	}
}

func TestUREDeliveredAtCompletion(t *testing.T) {
	s := sim.New()
	d := NewDisk(0, s, PaperFixedLatency())
	d.SetFaultPlan(NewSeededFaultPlan(0, 3, 1.0, 0, 0)) // every read UREs
	var r *Request
	req := &Request{Addr: 5, Size: 1}
	req.Done = func(_, _ sim.Time) { r = req }
	d.Submit(req)
	s.Run()
	if r == nil {
		t.Fatal("Done never ran")
	}
	if !r.Failed || r.Fault != FaultURE {
		t.Errorf("request = failed=%v fault=%v, want URE", r.Failed, r.Fault)
	}
	st := d.Stats()
	if st.Failed != 1 || st.Reads != 0 {
		t.Errorf("stats = %+v, want Failed=1 Reads=0", st)
	}
}

func TestWholeDiskFailureDrainsQueue(t *testing.T) {
	s := sim.New()
	d := NewDisk(0, s, PaperFixedLatency())
	// Fail at 15 ms: the first request (completing at 10 ms) succeeds,
	// the second (in service, would complete at 20 ms) fails at its
	// completion, the third (still queued at 15 ms) fails immediately.
	d.SetFaultPlan(NewSeededFaultPlan(0, 1, 0, 0, 15*sim.Millisecond))
	type rec struct {
		fault FaultKind
		at    sim.Time
	}
	var got []rec
	for i := 0; i < 3; i++ {
		r := &Request{Addr: int64(i), Size: 1}
		r.Done = func(_, completed sim.Time) { got = append(got, rec{r.Fault, completed}) }
		d.Submit(r)
	}
	s.Run()
	if len(got) != 3 {
		t.Fatalf("completions = %v", got)
	}
	want := []rec{
		{FaultNone, 10 * sim.Millisecond},
		{FaultDiskFail, 15 * sim.Millisecond}, // queued request fails when the disk dies
		{FaultDiskFail, 20 * sim.Millisecond}, // in-service request fails at its completion
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("completion %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if !d.Failed() {
		t.Error("disk should report Failed")
	}
	// Submissions after failure also fail, asynchronously.
	late := &Request{Addr: 9, Size: 1}
	var lateFault FaultKind
	sawLate := false
	late.Done = func(_, _ sim.Time) { sawLate, lateFault = true, late.Fault }
	d.Submit(late)
	if sawLate {
		t.Error("dead-disk submission completed synchronously")
	}
	s.Run()
	if !sawLate || lateFault != FaultDiskFail {
		t.Errorf("late request: done=%v fault=%v", sawLate, lateFault)
	}
}

func TestLegacyFaultWindowClears(t *testing.T) {
	// The old implementation never cleared an expired window; the shim
	// must drop it once time passes Until.
	s := sim.New()
	d := NewDisk(0, s, PaperFixedLatency())
	d.InjectFault(&Fault{Until: 5 * sim.Millisecond})
	s.RunUntil(6 * sim.Millisecond)
	ok := false
	d.Submit(&Request{Addr: 0, Size: 1, Done: func(_, _ sim.Time) { ok = true }})
	if d.plan != nil {
		t.Error("expired fault window not cleared at Submit")
	}
	s.Run()
	if !ok {
		t.Error("request after expired window did not complete")
	}
}

func TestLegacyFaultWindowCatchesQueuedRequests(t *testing.T) {
	// A request already in service when the window arms used to dodge it
	// entirely; it now fails at its completion time inside the window.
	s := sim.New()
	d := NewDisk(0, s, PaperFixedLatency())
	r := &Request{Addr: 0, Size: 1}
	var fault FaultKind
	r.Done = func(_, _ sim.Time) { fault = r.Fault }
	d.Submit(r) // completes at 10 ms
	s.Schedule(1*sim.Millisecond, func() {
		d.InjectFault(&Fault{Until: 50 * sim.Millisecond})
	})
	s.Run()
	if fault != FaultTransient {
		t.Errorf("in-flight request fault = %v, want transient", fault)
	}
}

func TestArrayFaultForAndSpareFailover(t *testing.T) {
	s := sim.New()
	a, err := NewArray(s, ArrayConfig{
		Disks: 4, Rows: 4, Stripes: 10, ChunkSize: 1024,
		FaultFor: func(i int) FaultPlan {
			if i == 1 {
				return NewSeededFaultPlan(i, 1, 0, 0, 1*sim.Millisecond)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(2 * sim.Millisecond)
	if !a.Disk(1).Failed() {
		t.Fatal("disk 1 should have failed at 1 ms")
	}
	if got := a.SpareTarget(1); got != 2 {
		t.Errorf("SpareTarget(1) = %d, want 2 (next surviving disk)", got)
	}
	if got := a.SpareTarget(0); got != 0 {
		t.Errorf("SpareTarget(0) = %d, want 0", got)
	}
	var wrote *Request
	target, addr := a.WriteSpareEx(1, func(r *Request, _, _ sim.Time) { wrote = r })
	if target != 2 || addr != a.spareBase {
		t.Errorf("WriteSpareEx = (%d, %d), want (2, %d)", target, addr, a.spareBase)
	}
	s.Run()
	if wrote == nil || wrote.Failed {
		t.Errorf("failover spare write did not succeed: %+v", wrote)
	}
	// Reads on the dead disk surface FaultDiskFail through ReadChunkEx.
	var read *Request
	if err := a.ReadChunkEx(0, grid.Coord{Row: 0, Col: 1}, func(r *Request, _, _ sim.Time) { read = r }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if read == nil || read.Fault != FaultDiskFail {
		t.Errorf("read on dead disk = %+v, want disk-fail", read)
	}
	if a.TotalStats().Failed == 0 {
		t.Error("TotalStats should count failed requests")
	}
}

func TestReadAddrEx(t *testing.T) {
	s, a := newTestArray(t)
	var r *Request
	if err := a.ReadAddrEx(2, 41, func(req *Request, _, _ sim.Time) { r = req }); err != nil {
		t.Fatal(err)
	}
	if err := a.ReadAddrEx(-1, 0, func(*Request, sim.Time, sim.Time) {}); err == nil {
		t.Error("invalid disk accepted")
	}
	s.Run()
	if r == nil || r.Failed || r.Addr != 41 {
		t.Errorf("spare read = %+v", r)
	}
}
