package disk

import (
	"testing"

	"fbf/internal/grid"
	"fbf/internal/sim"
)

func TestFixedLatencyModel(t *testing.T) {
	m := PaperFixedLatency()
	if m.Name() != "fixed" {
		t.Error("name wrong")
	}
	if m.ServiceTime(0, 100, 32768, false) != 10*sim.Millisecond {
		t.Error("read time wrong")
	}
	if m.ServiceTime(0, 100, 32768, true) != 10*sim.Millisecond {
		t.Error("write time wrong")
	}
}

func TestPositionalModel(t *testing.T) {
	m := NewPositional(1000, 1)
	if m.Name() != "positional" {
		t.Error("name wrong")
	}
	// Zero distance: no seek, still rotation + transfer.
	st := m.ServiceTime(50, 50, 32768, false)
	if st <= 0 {
		t.Error("service time must be positive")
	}
	// Larger distance costs at least the minimum seek more on average;
	// compare expectations over many samples to smooth rotation noise.
	var near, far sim.Time
	for i := 0; i < 200; i++ {
		near += m.ServiceTime(0, 1, 32768, false)
		far += m.ServiceTime(0, 999, 32768, false)
	}
	if far <= near {
		t.Errorf("far seeks (%v) should exceed near seeks (%v)", far, near)
	}
}

func TestDiskFIFOAndBusy(t *testing.T) {
	s := sim.New()
	d := NewDisk(0, s, FixedLatency{Read: 10 * sim.Millisecond, Write: 20 * sim.Millisecond})
	var completions []sim.Time
	for i := 0; i < 3; i++ {
		d.Submit(&Request{Addr: int64(i), Size: 1, Done: func(issued, completed sim.Time) {
			completions = append(completions, completed)
		}})
	}
	if d.QueueDepth() != 2 { // one in service
		t.Errorf("QueueDepth = %d", d.QueueDepth())
	}
	s.Run()
	want := []sim.Time{10 * sim.Millisecond, 20 * sim.Millisecond, 30 * sim.Millisecond}
	if len(completions) != 3 {
		t.Fatalf("completions = %v", completions)
	}
	for i := range want {
		if completions[i] != want[i] {
			t.Errorf("completion %d = %v, want %v", i, completions[i], want[i])
		}
	}
	st := d.Stats()
	if st.Reads != 3 || st.Writes != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.BusyTime != 30*sim.Millisecond {
		t.Errorf("BusyTime = %v", st.BusyTime)
	}
	if st.QueueTime != 30*sim.Millisecond { // 0 + 10 + 20
		t.Errorf("QueueTime = %v", st.QueueTime)
	}
}

func TestDiskWriteCounted(t *testing.T) {
	s := sim.New()
	d := NewDisk(0, s, PaperFixedLatency())
	done := false
	d.Submit(&Request{Addr: 0, Size: 1, Write: true, Done: func(_, _ sim.Time) { done = true }})
	s.Run()
	if !done || d.Stats().Writes != 1 {
		t.Error("write not completed/counted")
	}
}

func TestSubmitWithoutDonePanics(t *testing.T) {
	s := sim.New()
	d := NewDisk(0, s, PaperFixedLatency())
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	d.Submit(&Request{})
}

func TestNilModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewDisk(0, sim.New(), nil)
}

func TestFaultInjection(t *testing.T) {
	s := sim.New()
	d := NewDisk(0, s, PaperFixedLatency())
	failed := 0
	d.InjectFault(&Fault{Until: 5 * sim.Millisecond, Hook: func(r *Request) { failed++ }})
	d.Submit(&Request{Addr: 0, Size: 1, Done: func(_, _ sim.Time) { t.Error("faulted request completed") }})
	if failed != 1 {
		t.Fatalf("failed = %d", failed)
	}
	// After the window the disk serves normally.
	s.RunUntil(6 * sim.Millisecond)
	ok := false
	d.Submit(&Request{Addr: 0, Size: 1, Done: func(_, _ sim.Time) { ok = true }})
	s.Run()
	if !ok {
		t.Error("request after fault window did not complete")
	}
}

func newTestArray(t *testing.T) (*sim.Simulator, *Array) {
	t.Helper()
	s := sim.New()
	a, err := NewArray(s, ArrayConfig{Disks: 4, Rows: 4, Stripes: 10, ChunkSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

func TestArrayBasics(t *testing.T) {
	s, a := newTestArray(t)
	if a.Disks() != 4 || a.Stripes() != 10 || a.ChunkSize() != 1024 {
		t.Error("accessors wrong")
	}
	got := sim.Time(-1)
	err := a.ReadChunk(2, grid.Coord{Row: 1, Col: 3}, func(issued, completed sim.Time) {
		got = completed
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got != 10*sim.Millisecond {
		t.Errorf("read completed at %v", got)
	}
	if a.Disk(3).Stats().Reads != 1 {
		t.Error("read went to wrong disk")
	}
	if a.TotalStats().Reads != 1 {
		t.Error("TotalStats wrong")
	}
}

func TestArrayAddressing(t *testing.T) {
	_, a := newTestArray(t)
	if got := a.chunkAddr(2, 1); got != 9 {
		t.Errorf("chunkAddr(2,1) = %d, want 9", got)
	}
}

func TestArraySpareWritesBeyondData(t *testing.T) {
	s, a := newTestArray(t)
	if err := a.WriteSpare(1, func(_, _ sim.Time) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteSpare(1, func(_, _ sim.Time) {}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if a.Disk(1).Stats().Writes != 2 {
		t.Error("spare writes not served")
	}
	// Spare area starts past the data region: rows*stripes = 40.
	if a.spareBase != 40 || a.spareAlloc[1] != 2 {
		t.Errorf("spareBase=%d alloc=%v", a.spareBase, a.spareAlloc)
	}
}

func TestArrayErrors(t *testing.T) {
	_, a := newTestArray(t)
	noop := func(_, _ sim.Time) {}
	if err := a.ReadChunk(-1, grid.Coord{}, noop); err == nil {
		t.Error("negative stripe accepted")
	}
	if err := a.ReadChunk(10, grid.Coord{}, noop); err == nil {
		t.Error("stripe out of range accepted")
	}
	if err := a.ReadChunk(0, grid.Coord{Row: 9, Col: 0}, noop); err == nil {
		t.Error("row out of range accepted")
	}
	if err := a.ReadChunk(0, grid.Coord{Row: 0, Col: 9}, noop); err == nil {
		t.Error("column out of range accepted")
	}
	if err := a.WriteSpare(-1, noop); err == nil {
		t.Error("bad spare disk accepted")
	}
	if _, err := NewArray(sim.New(), ArrayConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestArrayContention(t *testing.T) {
	// Two reads to the same disk serialize; reads to distinct disks run
	// in parallel.
	s, a := newTestArray(t)
	var sameDisk, diffDisk []sim.Time
	collect := func(dst *[]sim.Time) func(sim.Time, sim.Time) {
		return func(_, completed sim.Time) { *dst = append(*dst, completed) }
	}
	a.ReadChunk(0, grid.Coord{Row: 0, Col: 0}, collect(&sameDisk))
	a.ReadChunk(0, grid.Coord{Row: 1, Col: 0}, collect(&sameDisk))
	a.ReadChunk(0, grid.Coord{Row: 0, Col: 1}, collect(&diffDisk))
	a.ReadChunk(0, grid.Coord{Row: 0, Col: 2}, collect(&diffDisk))
	s.Run()
	if sameDisk[0] != 10*sim.Millisecond || sameDisk[1] != 20*sim.Millisecond {
		t.Errorf("same-disk completions %v", sameDisk)
	}
	if diffDisk[0] != 10*sim.Millisecond || diffDisk[1] != 10*sim.Millisecond {
		t.Errorf("cross-disk completions %v", diffDisk)
	}
}

// TestRequestReuse pins the reusable-Request contract: one Request
// object cycles through reads and spare writes via the Req APIs, and
// Submit resets the outcome fields each time.
func TestRequestReuse(t *testing.T) {
	s := sim.New()
	a, err := NewArray(s, ArrayConfig{Disks: 2, Rows: 4, Stripes: 4, ChunkSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	completions := 0
	r := &Request{}
	r.Done = func(issued, completed sim.Time) {
		completions++
		if r.Failed {
			t.Fatalf("completion %d unexpectedly failed", completions)
		}
	}
	for i := 0; i < 3; i++ {
		r.Failed, r.Fault = true, FaultTransient // stale verdict must be reset
		if err := a.ReadChunkReq(i, grid.Coord{Row: i, Col: 1}, r); err != nil {
			t.Fatal(err)
		}
		s.Run()
	}
	if target, addr := a.WriteSpareReq(0, r); target != 0 || addr != 16 {
		t.Fatalf("WriteSpareReq = (%d, %d), want (0, 16)", target, addr)
	}
	s.Run()
	if err := a.ReadAddrReq(0, 16, r); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if completions != 5 {
		t.Fatalf("completions = %d, want 5", completions)
	}
	st := a.Disk(1).Stats()
	if st.Reads != 3 {
		t.Fatalf("disk 1 reads = %d, want 3", st.Reads)
	}
}

// TestDiskSteadyStateAllocs pins the disk layer's zero-allocation
// contract: submitting and serving a request through a reused Request
// allocates nothing once the queue slice has grown (the old completion
// path closed over each request).
func TestDiskSteadyStateAllocs(t *testing.T) {
	s := sim.New()
	d := NewDisk(0, s, PaperFixedLatency())
	r := &Request{Size: 512}
	r.Done = func(issued, completed sim.Time) {}
	// Warm the queue and event-heap backing arrays.
	for i := 0; i < 8; i++ {
		d.Submit(r)
		s.Run()
	}
	allocs := testing.AllocsPerRun(100, func() {
		d.Submit(r)
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("submit+serve allocates %.1f times per request, want 0", allocs)
	}
}
