// Package disk models a disk array as discrete-event entities: each
// disk serves one request at a time from a FIFO queue under a pluggable
// service-time model. It replaces DiskSim in the paper's methodology;
// the paper's configuration (a flat 10 ms disk access time) is the
// FixedLatency model, and a positional seek/rotation/transfer model is
// provided for realism ablations.
package disk

import (
	"math"
	"math/rand"

	"fbf/internal/obs"
	"fbf/internal/sim"
)

// Model computes the service time of one request given the head's
// previous chunk address and the request's address and size in bytes.
type Model interface {
	// Name identifies the model in experiment output.
	Name() string
	// ServiceTime returns how long the disk mechanism is busy with the
	// request, excluding queueing. prevAddr is the chunk address where
	// the head currently rests; addr the requested chunk address.
	ServiceTime(prevAddr, addr int64, sizeBytes int, write bool) sim.Time
}

// FixedLatency serves every request in a constant time, the
// configuration the paper's evaluation uses (10 ms per disk access).
type FixedLatency struct {
	Read  sim.Time
	Write sim.Time
}

// PaperFixedLatency returns the paper's disk service model: 10 ms per
// access, reads and writes alike.
func PaperFixedLatency() FixedLatency {
	return FixedLatency{Read: 10 * sim.Millisecond, Write: 10 * sim.Millisecond}
}

// Name implements Model.
func (m FixedLatency) Name() string { return "fixed" }

// ServiceTime implements Model.
func (m FixedLatency) ServiceTime(_, _ int64, _ int, write bool) sim.Time {
	if write {
		return m.Write
	}
	return m.Read
}

// Positional approximates a mechanical disk: a square-root seek curve
// over the address distance, a uniformly distributed rotational latency
// and a linear transfer time. The rotational term uses a deterministic
// per-disk RNG so runs remain reproducible.
type Positional struct {
	SeekMin     sim.Time // track-to-track seek
	SeekMax     sim.Time // full-stroke seek
	RPM         int      // spindle speed
	TransferBps int64    // sustained media rate, bytes/second
	Chunks      int64    // addressable chunk count (for seek scaling)

	rng *rand.Rand
}

// NewPositional returns a positional model resembling a 7200 RPM
// nearline drive, seeded deterministically.
func NewPositional(chunks int64, seed int64) *Positional {
	return &Positional{
		SeekMin:     sim.Millisecond / 2,
		SeekMax:     9 * sim.Millisecond,
		RPM:         7200,
		TransferBps: 150 << 20, // 150 MiB/s
		Chunks:      chunks,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// Name implements Model.
func (m *Positional) Name() string { return "positional" }

// ServiceTime implements Model.
func (m *Positional) ServiceTime(prevAddr, addr int64, sizeBytes int, _ bool) sim.Time {
	var seek sim.Time
	if dist := addr - prevAddr; dist != 0 {
		if dist < 0 {
			dist = -dist
		}
		span := m.Chunks
		if span < 1 {
			span = 1
		}
		frac := math.Sqrt(float64(dist) / float64(span))
		seek = m.SeekMin + sim.Time(frac*float64(m.SeekMax-m.SeekMin))
	}
	rotation := sim.Time(60 * float64(sim.Second) / float64(m.RPM))
	rotational := sim.Time(m.rng.Int63n(int64(rotation)))
	transfer := sim.Time(float64(sizeBytes) / float64(m.TransferBps) * float64(sim.Second))
	return seek + rotational + transfer
}

// Handler receives a request's completion without the closure
// allocation a Done func costs: an operation object that embeds its
// Request can set Handler to itself (a pointer-to-interface assignment
// allocates nothing) and be reused across submissions.
type Handler interface {
	OnComplete(r *Request, issued, completed sim.Time)
}

// Request is one disk I/O. At completion exactly one of Handler or Done
// fires (Handler wins when both are set) with the issue and completion
// times; it runs inside the simulation loop. When a fault plan injects
// a failure, completion still fires but Failed is set and Fault carries
// the failure class — callers that ignore both see the legacy
// always-succeeds behaviour.
type Request struct {
	Addr    int64 // chunk-granularity address
	Size    int   // bytes
	Write   bool
	Done    func(issued, completed sim.Time)
	Handler Handler

	// Failed reports that the request did not transfer data; Fault
	// classifies why. Both are set before completion fires.
	Failed bool
	Fault  FaultKind

	issued sim.Time
}

// finish dispatches the completion to Handler or Done.
func (r *Request) finish(issued, completed sim.Time) {
	if r.Handler != nil {
		r.Handler.OnComplete(r, issued, completed)
		return
	}
	r.Done(issued, completed)
}

// Stats aggregates a disk's served I/O. Failed requests are counted in
// Failed only, so Reads/Writes keep meaning "successful transfers" and
// fault-free runs are unchanged.
type Stats struct {
	Reads     uint64
	Writes    uint64
	Failed    uint64
	BusyTime  sim.Time
	QueueTime sim.Time
}

// Scheduler selects the order a disk serves its queued requests.
type Scheduler uint8

const (
	// SchedFIFO serves requests in arrival order (the default).
	SchedFIFO Scheduler = iota
	// SchedSSTF serves the request with the shortest seek from the
	// current head position (ties to the earlier arrival).
	SchedSSTF
	// SchedLOOK sweeps the head in one direction serving requests in
	// address order, reversing at the last pending request (the
	// elevator algorithm).
	SchedLOOK
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case SchedFIFO:
		return "fifo"
	case SchedSSTF:
		return "sstf"
	case SchedLOOK:
		return "look"
	default:
		return "Scheduler(?)"
	}
}

// Disk is one drive: a scheduling queue in front of a single server
// whose holding time comes from the Model.
type Disk struct {
	id        int
	sim       *sim.Simulator
	model     Model
	scheduler Scheduler
	sweepUp   bool // LOOK direction
	queue     []*Request
	busy      bool
	head      int64
	stats     Stats
	plan      FaultPlan
	failed    bool

	// tr, when non-nil, receives one io span per served request and a
	// queue-occupancy counter on this disk's trace lane. Every
	// instrumented site guards on the nil check, so an untraced disk
	// does no extra work.
	tr    obs.Tracer
	track obs.Track

	// serving is the request in service; serviceStart stamps when its
	// media operation began. A disk serves one request at a time, so
	// completion is the prebound completeFn closure created once at
	// construction — the old per-request completion closure was one
	// allocation per I/O, millions per run.
	serving      *Request
	serviceStart sim.Time
	serviceDur   sim.Time
	completeFn   func()
}

// NewDisk creates a disk attached to the simulator with FIFO
// scheduling.
func NewDisk(id int, s *sim.Simulator, model Model) *Disk {
	if model == nil {
		panic("disk: nil model")
	}
	d := &Disk{id: id, sim: s, model: model, sweepUp: true}
	d.completeFn = d.completeServing
	return d
}

// SetScheduler selects the queue discipline; safe only before traffic
// starts.
func (d *Disk) SetScheduler(s Scheduler) { d.scheduler = s }

// SetTracer attaches an event tracer to the disk's lane in the
// "disks" track group; safe only before traffic starts.
func (d *Disk) SetTracer(tr obs.Tracer) {
	d.tr = tr
	d.track = obs.Track{Group: obs.GroupDisks, ID: d.id}
}

// InFlight returns the number of requests on the disk: queued plus the
// one in service, if any.
func (d *Disk) InFlight() int {
	if d.busy {
		return len(d.queue) + 1
	}
	return len(d.queue)
}

// traceQueue emits the queue-occupancy counter sample. Callers hold
// d.tr != nil.
func (d *Disk) traceQueue() {
	d.tr.Emit(obs.Event{
		Name: "queue", Cat: obs.CatIO, Ph: obs.PhaseCounter,
		Track: d.track, TS: d.sim.Now(),
		Args: []obs.Arg{{Key: "depth", Val: int64(len(d.queue))}},
	})
}

// pickNext removes and returns the next request per the scheduler.
func (d *Disk) pickNext() *Request {
	best := 0
	switch d.scheduler {
	case SchedSSTF:
		bestDist := int64(-1)
		for i, r := range d.queue {
			dist := r.Addr - d.head
			if dist < 0 {
				dist = -dist
			}
			if bestDist < 0 || dist < bestDist {
				best, bestDist = i, dist
			}
		}
	case SchedLOOK:
		for pass := 0; pass < 2; pass++ {
			found := -1
			var foundAddr int64
			for i, r := range d.queue {
				if d.sweepUp && r.Addr >= d.head {
					if found < 0 || r.Addr < foundAddr {
						found, foundAddr = i, r.Addr
					}
				}
				if !d.sweepUp && r.Addr <= d.head {
					if found < 0 || r.Addr > foundAddr {
						found, foundAddr = i, r.Addr
					}
				}
			}
			if found >= 0 {
				best = found
				break
			}
			d.sweepUp = !d.sweepUp // nothing ahead: reverse and rescan
		}
	default: // FIFO
	}
	r := d.queue[best]
	d.queue = append(d.queue[:best], d.queue[best+1:]...)
	return r
}

// ID returns the disk's index in the array.
func (d *Disk) ID() int { return d.id }

// Stats returns the served-I/O counters.
func (d *Disk) Stats() Stats { return d.stats }

// QueueDepth returns the number of requests waiting (not in service).
func (d *Disk) QueueDepth() int { return len(d.queue) }

// Fault is the legacy ad-hoc failure window, kept as a thin shim over
// the FaultPlan path for existing callers: requests submitted while
// Until is in the future fail immediately (Hook runs, Done does not),
// and requests already queued when the window arms fail at their
// completion time with Failed=true — the old implementation let queued
// requests dodge the window entirely, and never cleared the armed fault
// after it expired.
type Fault struct {
	Until sim.Time
	Hook  func(r *Request)
}

// FailureTime implements FaultPlan: a window never kills the disk.
func (f *Fault) FailureTime() (sim.Time, bool) { return 0, false }

// Outcome implements FaultPlan: every request completing inside the
// window fails as a transient.
func (f *Fault) Outcome(_ *Request, now sim.Time) FaultKind {
	if now < f.Until {
		return FaultTransient
	}
	return FaultNone
}

// InjectFault arms a fault window on the disk (legacy shim; new code
// should install a FaultPlan via SetFaultPlan).
func (d *Disk) InjectFault(f *Fault) { d.plan = f }

// SetFaultPlan installs the disk's fault plan and schedules its
// whole-disk failure, if any. Call before traffic starts.
func (d *Disk) SetFaultPlan(p FaultPlan) {
	d.plan = p
	if p == nil {
		return
	}
	if at, ok := p.FailureTime(); ok {
		if at < d.sim.Now() {
			at = d.sim.Now()
		}
		d.sim.ScheduleAt(at, d.failNow)
	}
}

// Failed reports whether the whole disk has failed.
func (d *Disk) Failed() bool { return d.failed }

// failNow marks the disk dead and fails every queued request at the
// current time. A request already in service fails at its scheduled
// completion (the mechanism was mid-operation when the drive died).
func (d *Disk) failNow() {
	if d.failed {
		return
	}
	d.failed = true
	q := d.queue
	d.queue = nil
	if d.tr != nil {
		d.tr.Emit(obs.Event{
			Name: "disk-fail", Cat: obs.CatIO, Ph: obs.PhaseInstant,
			Track: d.track, TS: d.sim.Now(),
			Args: []obs.Arg{{Key: "queued", Val: int64(len(q))}},
		})
		d.traceQueue()
	}
	for _, r := range q {
		d.stats.QueueTime += d.sim.Now() - r.issued
		d.completeFailed(r, FaultDiskFail)
	}
}

// completeFailed finishes a request as failed.
func (d *Disk) completeFailed(r *Request, kind FaultKind) {
	r.Failed, r.Fault = true, kind
	d.stats.Failed++
	r.finish(r.issued, d.sim.Now())
}

// Submit enqueues a request. Completion is signalled through r.Done.
func (d *Disk) Submit(r *Request) {
	if r == nil || (r.Done == nil && r.Handler == nil) {
		panic("disk: request without completion callback")
	}
	r.issued = d.sim.Now()
	// Reset the outcome so callers can reuse one Request object across
	// many submissions without leaking the previous verdict.
	r.Failed, r.Fault = false, FaultNone
	if d.failed {
		// A dead disk fails submissions asynchronously so callers never
		// see Done re-enter them mid-Submit.
		d.sim.Schedule(0, func() { d.completeFailed(r, FaultDiskFail) })
		return
	}
	if f, ok := d.plan.(*Fault); ok {
		// Legacy window semantics: intercept at submission, swallowing
		// the request (Hook instead of Done)...
		if d.sim.Now() < f.Until {
			r.Failed, r.Fault = true, FaultTransient
			d.stats.Failed++
			if f.Hook != nil {
				f.Hook(r)
			}
			return
		}
		// ...and clear the expired window instead of leaking it forever.
		d.plan = nil
	}
	d.queue = append(d.queue, r)
	if d.tr != nil {
		d.traceQueue()
	}
	if !d.busy {
		d.startNext()
	}
}

func (d *Disk) startNext() {
	if len(d.queue) == 0 {
		d.busy = false
		return
	}
	d.busy = true
	r := d.pickNext()
	d.stats.QueueTime += d.sim.Now() - r.issued
	service := d.model.ServiceTime(d.head, r.Addr, r.Size, r.Write)
	d.stats.BusyTime += service
	d.head = r.Addr
	if d.tr != nil {
		d.traceQueue()
	}
	d.serving = r
	d.serviceStart = d.sim.Now()
	d.serviceDur = service
	d.sim.Schedule(service, d.completeFn)
}

// completeServing finishes the in-service request. It is the body of
// the prebound completeFn; the request and its service window live in
// fields rather than a per-request closure.
func (d *Disk) completeServing() {
	r := d.serving
	start, service := d.serviceStart, d.serviceDur
	d.serving = nil
	kind := FaultNone
	if d.failed {
		kind = FaultDiskFail
	} else if d.plan != nil {
		kind = d.plan.Outcome(r, d.sim.Now())
		if f, ok := d.plan.(*Fault); ok {
			if kind != FaultNone && f.Hook != nil {
				f.Hook(r)
			}
			if d.sim.Now() >= f.Until {
				d.plan = nil
			}
		}
	}
	if kind != FaultNone {
		r.Failed, r.Fault = true, kind
		d.stats.Failed++
	} else if r.Write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	if d.tr != nil {
		name := "read"
		if r.Write {
			name = "write"
		}
		failed := int64(0)
		if r.Failed {
			failed = 1
		}
		d.tr.Emit(obs.Event{
			Name: name, Cat: obs.CatIO, Ph: obs.PhaseSpan,
			Track: d.track, TS: start, Dur: service,
			Args: []obs.Arg{
				{Key: "addr", Val: r.Addr},
				{Key: "failed", Val: failed},
				{Key: "fault", Val: int64(r.Fault)},
			},
		})
	}
	done := d.sim.Now()
	r.finish(r.issued, done)
	d.startNext()
}
