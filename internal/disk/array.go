package disk

import (
	"fmt"

	"fbf/internal/grid"
	"fbf/internal/sim"
)

// Array is a set of disks addressed by (stripe, row, column): column c
// is disk c, and chunk (stripe, row) of a disk lives at chunk address
// stripe*rowsPerStripe + row. Recovered chunks are written to a spare
// region appended past the data region of the same disk, matching the
// paper's repair model (spare sectors/blocks on the disk rather than a
// replacement drive).
type Array struct {
	sim        *sim.Simulator
	disks      []*Disk
	rows       int // chunk rows per stripe
	stripes    int // stripes on the array
	chunkSize  int // bytes
	spareBase  int64
	spareAlloc []int64 // next spare slot per disk
}

// ArrayConfig sizes an Array.
type ArrayConfig struct {
	Disks     int
	Rows      int // rows per stripe (code.Rows())
	Stripes   int
	ChunkSize int
	// ModelFor returns the service model of disk i. When nil the paper's
	// fixed 10 ms model is used for every disk.
	ModelFor func(i int) Model
	// Scheduler selects every disk's queue discipline (default FIFO).
	Scheduler Scheduler
}

// NewArray builds the array and its disks.
func NewArray(s *sim.Simulator, cfg ArrayConfig) (*Array, error) {
	if cfg.Disks <= 0 || cfg.Rows <= 0 || cfg.Stripes <= 0 || cfg.ChunkSize <= 0 {
		return nil, fmt.Errorf("disk: invalid array config %+v", cfg)
	}
	a := &Array{
		sim:        s,
		rows:       cfg.Rows,
		stripes:    cfg.Stripes,
		chunkSize:  cfg.ChunkSize,
		spareBase:  int64(cfg.Rows) * int64(cfg.Stripes),
		spareAlloc: make([]int64, cfg.Disks),
	}
	for i := 0; i < cfg.Disks; i++ {
		model := Model(PaperFixedLatency())
		if cfg.ModelFor != nil {
			model = cfg.ModelFor(i)
		}
		d := NewDisk(i, s, model)
		d.SetScheduler(cfg.Scheduler)
		a.disks = append(a.disks, d)
	}
	return a, nil
}

// Disks returns the number of disks.
func (a *Array) Disks() int { return len(a.disks) }

// Disk returns disk i.
func (a *Array) Disk(i int) *Disk { return a.disks[i] }

// Stripes returns the number of stripes.
func (a *Array) Stripes() int { return a.stripes }

// ChunkSize returns the chunk size in bytes.
func (a *Array) ChunkSize() int { return a.chunkSize }

// chunkAddr maps (stripe, row) to the per-disk chunk address.
func (a *Array) chunkAddr(stripe, row int) int64 {
	return int64(stripe)*int64(a.rows) + int64(row)
}

// ReadChunk issues a read of the chunk at (stripe, cell) and calls done
// with the issue and completion times.
func (a *Array) ReadChunk(stripe int, cell grid.Coord, done func(issued, completed sim.Time)) error {
	if err := a.check(stripe, cell); err != nil {
		return err
	}
	a.disks[cell.Col].Submit(&Request{
		Addr: a.chunkAddr(stripe, cell.Row),
		Size: a.chunkSize,
		Done: done,
	})
	return nil
}

// WriteSpare writes one recovered chunk into the spare region of the
// given disk and calls done at completion.
func (a *Array) WriteSpare(diskID int, done func(issued, completed sim.Time)) error {
	if diskID < 0 || diskID >= len(a.disks) {
		return fmt.Errorf("disk: spare write to invalid disk %d", diskID)
	}
	addr := a.spareBase + a.spareAlloc[diskID]
	a.spareAlloc[diskID]++
	a.disks[diskID].Submit(&Request{
		Addr:  addr,
		Size:  a.chunkSize,
		Write: true,
		Done:  done,
	})
	return nil
}

// TotalStats sums the per-disk statistics.
func (a *Array) TotalStats() Stats {
	var total Stats
	for _, d := range a.disks {
		s := d.Stats()
		total.Reads += s.Reads
		total.Writes += s.Writes
		total.BusyTime += s.BusyTime
		total.QueueTime += s.QueueTime
	}
	return total
}

func (a *Array) check(stripe int, cell grid.Coord) error {
	if stripe < 0 || stripe >= a.stripes {
		return fmt.Errorf("disk: stripe %d out of range [0,%d)", stripe, a.stripes)
	}
	if cell.Col < 0 || cell.Col >= len(a.disks) {
		return fmt.Errorf("disk: column %d out of range [0,%d)", cell.Col, len(a.disks))
	}
	if cell.Row < 0 || cell.Row >= a.rows {
		return fmt.Errorf("disk: row %d out of range [0,%d)", cell.Row, a.rows)
	}
	return nil
}
