package disk

import (
	"fmt"

	"fbf/internal/grid"
	"fbf/internal/obs"
	"fbf/internal/sim"
)

// Array is a set of disks addressed by (stripe, row, column): column c
// is disk c, and chunk (stripe, row) of a disk lives at chunk address
// stripe*rowsPerStripe + row. Recovered chunks are written to a spare
// region appended past the data region of the same disk, matching the
// paper's repair model (spare sectors/blocks on the disk rather than a
// replacement drive).
type Array struct {
	sim        *sim.Simulator
	disks      []*Disk
	rows       int // chunk rows per stripe
	stripes    int // stripes on the array
	chunkSize  int // bytes
	spareBase  int64
	spareAlloc []int64 // next spare slot per disk
}

// ArrayConfig sizes an Array.
type ArrayConfig struct {
	Disks     int
	Rows      int // rows per stripe (code.Rows())
	Stripes   int
	ChunkSize int
	// ModelFor returns the service model of disk i. When nil the paper's
	// fixed 10 ms model is used for every disk.
	ModelFor func(i int) Model
	// Scheduler selects every disk's queue discipline (default FIFO).
	Scheduler Scheduler
	// FaultFor returns the fault plan of disk i (nil for none). When nil
	// no disk faults, preserving the legacy always-succeeds behaviour.
	FaultFor func(i int) FaultPlan
	// Tracer, when non-nil, is attached to every disk: each serves its
	// requests as io spans on its own trace lane plus a queue-occupancy
	// counter. Nil keeps the disks untraced at zero cost.
	Tracer obs.Tracer
}

// NewArray builds the array and its disks.
func NewArray(s *sim.Simulator, cfg ArrayConfig) (*Array, error) {
	if cfg.Disks <= 0 || cfg.Rows <= 0 || cfg.Stripes <= 0 || cfg.ChunkSize <= 0 {
		return nil, fmt.Errorf("disk: invalid array config %+v", cfg)
	}
	a := &Array{
		sim:        s,
		rows:       cfg.Rows,
		stripes:    cfg.Stripes,
		chunkSize:  cfg.ChunkSize,
		spareBase:  int64(cfg.Rows) * int64(cfg.Stripes),
		spareAlloc: make([]int64, cfg.Disks),
	}
	for i := 0; i < cfg.Disks; i++ {
		model := Model(PaperFixedLatency())
		if cfg.ModelFor != nil {
			model = cfg.ModelFor(i)
		}
		d := NewDisk(i, s, model)
		d.SetScheduler(cfg.Scheduler)
		if cfg.Tracer != nil {
			d.SetTracer(cfg.Tracer)
		}
		if cfg.FaultFor != nil {
			if plan := cfg.FaultFor(i); plan != nil {
				d.SetFaultPlan(plan)
			}
		}
		a.disks = append(a.disks, d)
	}
	return a, nil
}

// Disks returns the number of disks.
func (a *Array) Disks() int { return len(a.disks) }

// Disk returns disk i.
func (a *Array) Disk(i int) *Disk { return a.disks[i] }

// Stripes returns the number of stripes.
func (a *Array) Stripes() int { return a.stripes }

// ChunkSize returns the chunk size in bytes.
func (a *Array) ChunkSize() int { return a.chunkSize }

// chunkAddr maps (stripe, row) to the per-disk chunk address.
func (a *Array) chunkAddr(stripe, row int) int64 {
	return int64(stripe)*int64(a.rows) + int64(row)
}

// ReadChunk issues a read of the chunk at (stripe, cell) and calls done
// with the issue and completion times.
func (a *Array) ReadChunk(stripe int, cell grid.Coord, done func(issued, completed sim.Time)) error {
	if err := a.check(stripe, cell); err != nil {
		return err
	}
	a.disks[cell.Col].Submit(&Request{
		Addr: a.chunkAddr(stripe, cell.Row),
		Size: a.chunkSize,
		Done: done,
	})
	return nil
}

// ReadChunkReq submits a read of (stripe, cell) through a caller-owned
// Request. r.Done must already be set; Addr/Size/Write are filled here
// and the outcome fields are reset on submission, so one Request object
// (typically embedded in a pooled operation with a prebound Done) can
// be reused across any number of reads without allocating.
func (a *Array) ReadChunkReq(stripe int, cell grid.Coord, r *Request) error {
	if err := a.check(stripe, cell); err != nil {
		return err
	}
	r.Addr = a.chunkAddr(stripe, cell.Row)
	r.Size = a.chunkSize
	r.Write = false
	a.disks[cell.Col].Submit(r)
	return nil
}

// ReadChunkEx is ReadChunk with the fault-aware completion signature:
// done receives the request itself, so callers can inspect
// Request.Failed/Fault and react (retry, escalate, re-plan).
func (a *Array) ReadChunkEx(stripe int, cell grid.Coord, done func(r *Request, issued, completed sim.Time)) error {
	r := &Request{}
	r.Done = func(issued, completed sim.Time) { done(r, issued, completed) }
	return a.ReadChunkReq(stripe, cell, r)
}

// ReadAddrReq reads an arbitrary per-disk chunk address through a
// caller-owned Request; the same reuse contract as ReadChunkReq.
func (a *Array) ReadAddrReq(diskID int, addr int64, r *Request) error {
	if diskID < 0 || diskID >= len(a.disks) {
		return fmt.Errorf("disk: read from invalid disk %d", diskID)
	}
	r.Addr = addr
	r.Size = a.chunkSize
	r.Write = false
	a.disks[diskID].Submit(r)
	return nil
}

// ReadAddrEx reads an arbitrary per-disk chunk address (used to re-read
// checkpointed chunks from a spare region) with the fault-aware
// completion signature.
func (a *Array) ReadAddrEx(diskID int, addr int64, done func(r *Request, issued, completed sim.Time)) error {
	r := &Request{}
	r.Done = func(issued, completed sim.Time) { done(r, issued, completed) }
	return a.ReadAddrReq(diskID, addr, r)
}

// WriteChunk issues an in-place write of the chunk at (stripe, cell) —
// the serving workload's data and parity updates — and calls done with
// the issue and completion times.
func (a *Array) WriteChunk(stripe int, cell grid.Coord, done func(issued, completed sim.Time)) error {
	if err := a.check(stripe, cell); err != nil {
		return err
	}
	a.disks[cell.Col].Submit(&Request{
		Addr:  a.chunkAddr(stripe, cell.Row),
		Size:  a.chunkSize,
		Write: true,
		Done:  done,
	})
	return nil
}

// WriteSpare writes one recovered chunk into the spare region of the
// given disk and calls done at completion.
func (a *Array) WriteSpare(diskID int, done func(issued, completed sim.Time)) error {
	if diskID < 0 || diskID >= len(a.disks) {
		return fmt.Errorf("disk: spare write to invalid disk %d", diskID)
	}
	addr := a.spareBase + a.spareAlloc[diskID]
	a.spareAlloc[diskID]++
	a.disks[diskID].Submit(&Request{
		Addr:  addr,
		Size:  a.chunkSize,
		Write: true,
		Done:  done,
	})
	return nil
}

// SpareTarget returns the disk that should hold spares destined for
// diskID: diskID itself while it survives, otherwise the next surviving
// disk scanning upward (wrapping), or -1 when every disk has failed.
func (a *Array) SpareTarget(diskID int) int {
	if diskID < 0 || diskID >= len(a.disks) {
		return -1
	}
	for off := 0; off < len(a.disks); off++ {
		c := (diskID + off) % len(a.disks)
		if !a.disks[c].Failed() {
			return c
		}
	}
	return -1
}

// WriteSpareReq writes one recovered chunk into the spare region of the
// given disk through a caller-owned Request, failing over to
// SpareTarget when that disk is dead. Returns (-1, -1) when no disk
// survives; r is then not submitted and r.Done never fires. The same
// reuse contract as ReadChunkReq applies.
func (a *Array) WriteSpareReq(diskID int, r *Request) (target int, addr int64) {
	target = a.SpareTarget(diskID)
	if target < 0 {
		return -1, -1
	}
	addr = a.spareBase + a.spareAlloc[target]
	a.spareAlloc[target]++
	r.Addr = addr
	r.Size = a.chunkSize
	r.Write = true
	a.disks[target].Submit(r)
	return target, addr
}

// WriteSpareEx writes one recovered chunk into the spare region of the
// given disk, failing over to SpareTarget when that disk is dead. It
// returns the disk and spare address actually written (-1, -1 when no
// disk survives — done is then never called) and reports the request to
// done so the caller can observe mid-write disk failures.
func (a *Array) WriteSpareEx(diskID int, done func(r *Request, issued, completed sim.Time)) (target int, addr int64) {
	r := &Request{}
	r.Done = func(issued, completed sim.Time) { done(r, issued, completed) }
	return a.WriteSpareReq(diskID, r)
}

// TotalStats sums the per-disk statistics.
func (a *Array) TotalStats() Stats {
	var total Stats
	for _, d := range a.disks {
		s := d.Stats()
		total.Reads += s.Reads
		total.Writes += s.Writes
		total.Failed += s.Failed
		total.BusyTime += s.BusyTime
		total.QueueTime += s.QueueTime
	}
	return total
}

func (a *Array) check(stripe int, cell grid.Coord) error {
	if stripe < 0 || stripe >= a.stripes {
		return fmt.Errorf("disk: stripe %d out of range [0,%d)", stripe, a.stripes)
	}
	if cell.Col < 0 || cell.Col >= len(a.disks) {
		return fmt.Errorf("disk: column %d out of range [0,%d)", cell.Col, len(a.disks))
	}
	if cell.Row < 0 || cell.Row >= a.rows {
		return fmt.Errorf("disk: row %d out of range [0,%d)", cell.Row, a.rows)
	}
	return nil
}
