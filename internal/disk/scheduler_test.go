package disk

import (
	"testing"

	"fbf/internal/sim"
)

// submitBatch queues reads at the given addresses before any service
// completes and returns the order they were served in.
func submitBatch(t *testing.T, sched Scheduler, start int64, addrs []int64) []int64 {
	t.Helper()
	s := sim.New()
	// Use a model whose cost depends on distance so scheduling matters,
	// but keep it deterministic: 1 us per unit of distance plus 1 ms.
	d := NewDisk(0, s, distanceModel{})
	d.SetScheduler(sched)
	d.head = start
	var order []int64
	// Occupy the disk so the whole batch queues first.
	d.Submit(&Request{Addr: start, Size: 1, Done: func(_, _ sim.Time) {}})
	for _, a := range addrs {
		a := a
		d.Submit(&Request{Addr: a, Size: 1, Done: func(_, _ sim.Time) {
			order = append(order, a)
		}})
	}
	s.Run()
	return order
}

type distanceModel struct{}

func (distanceModel) Name() string { return "distance" }
func (distanceModel) ServiceTime(prev, addr int64, _ int, _ bool) sim.Time {
	dist := addr - prev
	if dist < 0 {
		dist = -dist
	}
	return sim.Millisecond + sim.Time(dist)*sim.Microsecond
}

func TestSchedulerNames(t *testing.T) {
	if SchedFIFO.String() != "fifo" || SchedSSTF.String() != "sstf" || SchedLOOK.String() != "look" {
		t.Error("scheduler names wrong")
	}
	if Scheduler(9).String() != "Scheduler(?)" {
		t.Error("invalid scheduler name wrong")
	}
}

func TestFIFOServesArrivalOrder(t *testing.T) {
	order := submitBatch(t, SchedFIFO, 50, []int64{90, 10, 60, 20})
	want := []int64{90, 10, 60, 20}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FIFO order = %v", order)
		}
	}
}

func TestSSTFServesNearestFirst(t *testing.T) {
	// Head at 50 after the pinning request: nearest is 60, then 60→90,
	// hmm: from 60 nearest of {90,10,20} is 90 (30 away) vs 20 (40)?
	// |60-90|=30, |60-20|=40, |60-10|=50 → 90; then from 90: 20 (70) vs
	// 10 (80) → 20; then 10.
	order := submitBatch(t, SchedSSTF, 50, []int64{90, 10, 60, 20})
	want := []int64{60, 90, 20, 10}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("SSTF order = %v, want %v", order, want)
		}
	}
}

func TestLOOKSweeps(t *testing.T) {
	// Head at 50 sweeping up: 60, 90, then reverse: 20, 10.
	order := submitBatch(t, SchedLOOK, 50, []int64{90, 10, 60, 20})
	want := []int64{60, 90, 20, 10}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("LOOK order = %v, want %v", order, want)
		}
	}
}

func TestLOOKReversesWhenNothingAhead(t *testing.T) {
	// All requests below the head: the sweep must reverse immediately
	// and serve them top-down.
	order := submitBatch(t, SchedLOOK, 100, []int64{10, 40, 20})
	want := []int64{40, 20, 10}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("LOOK reverse order = %v, want %v", order, want)
		}
	}
}

func TestSSTFReducesBusyTimeVsFIFO(t *testing.T) {
	run := func(sched Scheduler) sim.Time {
		s := sim.New()
		d := NewDisk(0, s, distanceModel{})
		d.SetScheduler(sched)
		for _, a := range []int64{500, 10, 490, 20, 480, 30} {
			d.Submit(&Request{Addr: a, Size: 1, Done: func(_, _ sim.Time) {}})
		}
		s.Run()
		return d.Stats().BusyTime
	}
	if sstf, fifo := run(SchedSSTF), run(SchedFIFO); sstf >= fifo {
		t.Errorf("SSTF busy time %v >= FIFO %v on a zig-zag batch", sstf, fifo)
	}
}
