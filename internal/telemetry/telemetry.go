// Package telemetry is the wall-clock operational metrics subsystem of
// the storage engine. Where internal/obs records deterministic
// simulated-time traces of the event-driven simulator, telemetry
// answers the operator's question about the real-bytes engine: what is
// the rebuild doing *right now*, in wall-clock terms — chunk
// throughput, per-backend I/O latency, escalation-ladder activity, QoS
// throttle state.
//
// The package is three layers:
//
//   - a Registry of counters, gauges and histograms with a
//     deterministic Prometheus text-exposition writer (families sorted
//     by name, series sorted by label set, shortest-form numbers) and a
//     matching JSON snapshot — identical registry state serializes to
//     identical bytes, so the exposition format is golden-testable;
//   - producer structs (producers.go) the rebuild service, watch daemon
//     and QoS controller update when armed — every hook is a nil check,
//     so runs without telemetry execute exactly as before;
//   - an HTTP server (http.go) exposing /metrics, /healthz and
//     /progress, wired into `fbfctl daemon -listen`.
//
// Counters and gauges are atomics and histograms carry their own lock,
// so producers on the rebuild goroutine and scrapes on HTTP handler
// goroutines never race (pinned under -race).
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric series. A family
// (one metric name) may hold many series distinguished by label sets.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing metric. Safe for concurrent
// use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add folds a non-negative delta in.
func (c *Counter) Add(d uint64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed bucket boundaries (bucket i
// holds values ≤ Bounds[i]; an implicit +Inf bucket catches the rest)
// and tracks their sum. Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	sum    float64
	total  uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.total++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
	}
	return s
}

// HistogramSnapshot is the exposition form of a histogram: bucket upper
// bounds, per-bucket counts (len(Bounds)+1, the last is the +Inf
// overflow bucket) and the sum of observations.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
}

// Total returns the observation count.
func (s HistogramSnapshot) Total() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// series is one label set's metric within a family: exactly one of
// value (counters, gauges) or hist (histograms) is set.
type series struct {
	labels string // canonical rendered label set ("" for none)
	value  func() float64
	hist   func() HistogramSnapshot
}

// family groups every series registered under one metric name.
type family struct {
	name, help string
	kind       metricKind
	series     map[string]*series
}

// Registry is a set of named metric families. Registration (Counter,
// Gauge, ...) panics on an invalid name, a duplicate (name, label set)
// or a kind/help mismatch — metric wiring is program structure, not
// input, mirroring obs.Registry. Safe for concurrent registration,
// updates and writes.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

// validName is the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// escapeLabel escapes a label value for the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// renderLabels canonicalizes a label set: sorted by key, rendered as
// {k="v",k2="v2"}. Duplicate keys and invalid names panic.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l.Key))
		}
		if i > 0 {
			if ls[i-1].Key == l.Key {
				panic(fmt.Sprintf("telemetry: duplicate label %q", l.Key))
			}
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// register adds one series, creating the family on first use.
func (r *Registry) register(name, help string, kind metricKind, s *series) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %v (was %v)", name, kind, f.kind))
	}
	if f.help != help {
		panic(fmt.Sprintf("telemetry: metric %q re-registered with different help", name))
	}
	if _, dup := f.series[s.labels]; dup {
		panic(fmt.Sprintf("telemetry: duplicate series %s%s", name, s.labels))
	}
	f.series[s.labels] = s
}

// Counter registers a counter series and returns the cell producers
// update.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{labels: renderLabels(labels), value: func() float64 { return float64(c.Value()) }})
	return c
}

// CounterFunc registers a counter series read from a callback at every
// exposition — the bridge to state owned elsewhere (an Instrumented
// backend's atomics). read must be safe to call from any goroutine and
// must be monotone for the exposition to make sense as a counter.
func (r *Registry) CounterFunc(name, help string, read func() float64, labels ...Label) {
	r.register(name, help, kindCounter, &series{labels: renderLabels(labels), value: read})
}

// Gauge registers a gauge series and returns the cell producers set.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &series{labels: renderLabels(labels), value: g.Value})
	return g
}

// GaugeFunc registers a gauge series read from a callback at every
// exposition. read must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, read func() float64, labels ...Label) {
	r.register(name, help, kindGauge, &series{labels: renderLabels(labels), value: read})
}

// Histogram registers a histogram series over strictly increasing
// bucket bounds and returns the cell producers observe into.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not increasing at %d", name, i))
		}
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bound", name))
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
	r.register(name, help, kindHistogram, &series{labels: renderLabels(labels), hist: h.Snapshot})
	return h
}

// HistogramFunc registers a histogram series read from a callback at
// every exposition — the bridge to latency histograms owned elsewhere.
// read must be safe to call from any goroutine.
func (r *Registry) HistogramFunc(name, help string, read func() HistogramSnapshot, labels ...Label) {
	r.register(name, help, kindHistogram, &series{labels: renderLabels(labels), hist: read})
}

// snapshotFamilies captures the family and series lists in sorted order
// under the lock; the series callbacks are invoked outside it.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedSeries returns one family's series sorted by label set.
func (f *family) sortedSeries() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// num renders a value in shortest form, identically across platforms.
func num(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp escapes a help string for the # HELP line.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// histLabels splices the le label into a series' rendered label set.
func histLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). The output is deterministic: families sorted
// by name, series by label set, values in shortest form — identical
// registry state serializes to identical bytes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.sortedSeries() {
			if f.kind != kindHistogram {
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, num(s.value()))
				continue
			}
			snap := s.hist()
			var cum uint64
			for i, b := range snap.Bounds {
				cum += snap.Counts[i]
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, histLabels(s.labels, num(b)), cum)
			}
			total := snap.Total()
			fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, histLabels(s.labels, "+Inf"), total)
			fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, s.labels, num(snap.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", f.name, s.labels, total)
		}
	}
	return bw.Flush()
}

// WriteJSON writes the registry as one deterministic JSON object —
// the machine-readable twin of the Prometheus exposition, ordered
// identically.
func (r *Registry) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"families":[`)
	for i, f := range r.snapshotFamilies() {
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, `{"name":%s,"type":%s,"help":%s,"series":[`,
			strconv.Quote(f.name), strconv.Quote(f.kind.String()), strconv.Quote(f.help))
		for j, s := range f.sortedSeries() {
			if j > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, `{"labels":%s,`, strconv.Quote(s.labels))
			if f.kind != kindHistogram {
				fmt.Fprintf(bw, `"value":%s}`, num(s.value()))
				continue
			}
			snap := s.hist()
			fmt.Fprintf(bw, `"sum":%s,"count":%d,"bounds":[`, num(snap.Sum), snap.Total())
			for k, b := range snap.Bounds {
				if k > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(num(b))
			}
			bw.WriteString(`],"counts":[`)
			for k, c := range snap.Counts {
				if k > 0 {
					bw.WriteByte(',')
				}
				fmt.Fprintf(bw, "%d", c)
			}
			bw.WriteString("]}")
		}
		bw.WriteString("]}")
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}
