package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServer boots a Server on a free port and tears it down with the
// test.
func startServer(t *testing.T, reg *Registry, progress func() any) (*Server, string) {
	t.Helper()
	s := NewServer(reg, progress)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(time.Second) })
	return s, "http://" + addr
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fbf_live_ops", "Ops.").Add(9)
	_, base := startServer(t, reg, nil)

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "fbf_live_ops 9\n") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}
}

func TestServerHealthzFlips(t *testing.T) {
	s, base := startServer(t, NewRegistry(), nil)

	code, body, _ := get(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy /healthz = %d %q", code, body)
	}
	s.SetHealthy(false)
	code, body, _ = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "shutting down") {
		t.Fatalf("unhealthy /healthz = %d %q", code, body)
	}
	s.SetHealthy(true)
	if code, _, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("re-healthy /healthz = %d", code)
	}
}

func TestServerProgressEndpoint(t *testing.T) {
	tr := NewProgressTracker()
	_, base := startServer(t, NewRegistry(), func() any { return tr.Snapshot() })

	tr.Scan()
	tr.Stripe(7, 3, 12, 9)
	code, body, hdr := get(t, base+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/progress content type %q", ct)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("decode /progress: %v\n%s", err, body)
	}
	want := ProgressSnapshot{Phase: "rebuilding", Scans: 1, Stripe: 7, StripesTotal: 12, StripesDone: 3, ChunksRebuilt: 9, Percent: 25}
	if snap != want {
		t.Fatalf("/progress = %+v, want %+v", snap, want)
	}
}

func TestServerProgressWithoutCallback(t *testing.T) {
	_, base := startServer(t, NewRegistry(), nil)
	code, body, _ := get(t, base+"/progress")
	if code != http.StatusOK || strings.TrimSpace(body) != "null" {
		t.Fatalf("/progress without callback = %d %q, want 200 null", code, body)
	}
}

func TestServerDoubleStartAndClose(t *testing.T) {
	s := NewServer(NewRegistry(), nil)
	if err := s.Close(time.Second); err != nil {
		t.Fatalf("close of never-started server: %v", err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start("127.0.0.1:0"); err == nil {
		t.Fatal("second Start succeeded")
	}
	if err := s.Close(time.Second); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The listener must actually be gone.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still answering after Close")
	}
}

// TestProgressTrackerPhases walks the daemon's phase transitions.
func TestProgressTrackerPhases(t *testing.T) {
	tr := NewProgressTracker()
	if got := tr.Snapshot().Phase; got != "starting" {
		t.Fatalf("initial phase %q", got)
	}
	tr.Scan()
	if s := tr.Snapshot(); s.Phase != "scanning" || s.Scans != 1 {
		t.Fatalf("after Scan: %+v", s)
	}
	tr.Stripe(0, 1, 4, 2)
	tr.Rebuilt()
	if s := tr.Snapshot(); s.Phase != "rebuilding" || s.Rebuilds != 1 || s.Percent != 25 {
		t.Fatalf("after Stripe+Rebuilt: %+v", s)
	}
	tr.Scan() // a new pass resets per-pass fields but keeps totals
	if s := tr.Snapshot(); s.Scans != 2 || s.Rebuilds != 1 || s.StripesDone != 0 || s.Percent != 0 {
		t.Fatalf("after second Scan: %+v", s)
	}
	tr.SetPhase("stopped")
	if got := tr.Snapshot().Phase; got != "stopped" {
		t.Fatalf("final phase %q", got)
	}
}
