package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Server exposes one registry over HTTP for operators and scrapers:
//
//	GET /metrics   Prometheus text exposition of the registry
//	GET /healthz   200 "ok" while healthy, 503 "shutting down" after
//	               SetHealthy(false) — the readiness flip a supervisor
//	               watches during graceful shutdown
//	GET /progress  JSON snapshot from the progress callback
//
// A Server starts healthy. It is created only when the operator asks
// for a listen address; a run without one takes no listener, spawns no
// goroutine and touches no registry.
type Server struct {
	reg      *Registry
	progress func() any
	healthy  atomic.Bool

	srv *http.Server
	ln  net.Listener
}

// NewServer builds a server over reg. progress, when non-nil, supplies
// the /progress payload; it must be safe to call from handler
// goroutines.
func NewServer(reg *Registry, progress func() any) *Server {
	s := &Server{reg: reg, progress: progress}
	s.healthy.Store(true)
	return s
}

// SetHealthy flips the /healthz verdict; false turns the endpoint into
// 503 so load balancers and supervisors observe a shutdown in progress
// while the final work drains.
func (s *Server) SetHealthy(ok bool) { s.healthy.Store(ok) }

// Healthy reports the current /healthz verdict.
func (s *Server) Healthy() bool { return s.healthy.Load() }

// handler builds the endpoint mux.
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.healthy.Load() {
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "shutting down")
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var payload any
		if s.progress != nil {
			payload = s.progress()
		}
		enc := json.NewEncoder(w)
		enc.Encode(payload)
	})
	return mux
}

// Start listens on addr (host:port; port 0 picks a free one) and serves
// in a background goroutine. It returns the bound address, so callers
// asking for :0 learn the real port.
func (s *Server) Start(addr string) (string, error) {
	if s.ln != nil {
		return "", fmt.Errorf("telemetry: server already started on %s", s.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.handler()}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close shuts the server down gracefully, draining in-flight requests
// for up to the given timeout before closing hard. A never-started
// server closes as a no-op.
func (s *Server) Close(timeout time.Duration) error {
	if s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	s.srv, s.ln = nil, nil
	return err
}

// ProgressSnapshot is the /progress payload: the live view of what the
// daemon is doing, combining the rebuild service's per-stripe Progress
// with the watch loop's phase.
type ProgressSnapshot struct {
	// Phase names where the daemon is in its loop: "starting",
	// "scanning" (scan + repair pass underway), "rebuilding" (repairing
	// stripes within a pass), "watching" (idle between scans), "backoff"
	// (waiting out a failure), "stopping" (graceful shutdown requested)
	// or "stopped".
	Phase string `json:"phase"`

	Scans    int `json:"scans"`    // rebuild passes started
	Rebuilds int `json:"rebuilds"` // passes that repaired damage

	// Per-stripe progress of the pass in flight (the rebuild service's
	// Progress struct, latest callback wins).
	Stripe        int `json:"stripe"`
	StripesTotal  int `json:"stripes_total"`
	StripesDone   int `json:"stripes_done"`
	ChunksRebuilt int `json:"chunks_rebuilt"`
	Percent       int `json:"percent"`
}

// ProgressTracker accumulates the /progress snapshot. Producers (the
// watch daemon, the rebuild service's Progress hook) update it from the
// rebuild goroutine; HTTP handlers snapshot it concurrently.
type ProgressTracker struct {
	mu   sync.Mutex
	snap ProgressSnapshot
}

// NewProgressTracker returns a tracker in phase "starting".
func NewProgressTracker() *ProgressTracker {
	return &ProgressTracker{snap: ProgressSnapshot{Phase: "starting"}}
}

// SetPhase records a phase transition.
func (t *ProgressTracker) SetPhase(phase string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.snap.Phase = phase
}

// Scan records the start of one scan + repair pass.
func (t *ProgressTracker) Scan() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.snap.Phase = "scanning"
	t.snap.Scans++
	t.snap.Stripe, t.snap.StripesTotal, t.snap.StripesDone, t.snap.ChunksRebuilt, t.snap.Percent = 0, 0, 0, 0, 0
}

// Rebuilt records that a pass repaired damage.
func (t *ProgressTracker) Rebuilt() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.snap.Rebuilds++
}

// Stripe records one repaired stripe of the pass in flight.
func (t *ProgressTracker) Stripe(stripe, done, total, chunks int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.snap.Phase = "rebuilding"
	t.snap.Stripe, t.snap.StripesDone, t.snap.StripesTotal, t.snap.ChunksRebuilt = stripe, done, total, chunks
	if total > 0 {
		t.snap.Percent = 100 * done / total
	} else {
		t.snap.Percent = 100
	}
}

// Snapshot returns a copy of the current state.
func (t *ProgressTracker) Snapshot() ProgressSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snap
}
