package telemetry

import (
	"fbf/internal/store"
)

// RegisterBackend exposes an instrumented backend's counters on reg:
//
//	fbf_store_ops{op=...}              calls completed, per operation
//	fbf_store_errors{op=...,type=...}  failures by taxonomy class
//	                                   (notfound / corrupt / io)
//	fbf_store_bytes{op=...}            payload bytes moved (read, write)
//	fbf_store_op_seconds{op=...}       per-op wall-clock latency
//	                                   histogram, throttle wait included
//
// The series are CounterFunc/HistogramFunc bridges over the wrapper's
// own counters — nothing is copied until a scrape asks.
func RegisterBackend(reg *Registry, in *store.Instrumented) {
	for _, op := range store.Ops() {
		op := op
		opLabel := Label{Key: "op", Value: op.String()}
		reg.CounterFunc("fbf_store_ops", "Backend operations completed.",
			func() float64 { return float64(in.Stats(op).Ops) }, opLabel)
		for _, class := range []struct {
			name string
			read func(store.OpStats) uint64
		}{
			{"notfound", func(s store.OpStats) uint64 { return s.NotFound }},
			{"corrupt", func(s store.OpStats) uint64 { return s.Corrupt }},
			{"io", func(s store.OpStats) uint64 { return s.IO }},
		} {
			class := class
			reg.CounterFunc("fbf_store_errors", "Backend operation failures by error class.",
				func() float64 { return float64(class.read(in.Stats(op))) },
				opLabel, Label{Key: "type", Value: class.name})
		}
		if op == store.OpRead || op == store.OpWrite {
			reg.CounterFunc("fbf_store_bytes", "Payload bytes moved through the backend.",
				func() float64 { return float64(in.Stats(op).Bytes) }, opLabel)
		}
		reg.HistogramFunc("fbf_store_op_seconds", "Backend operation wall-clock latency in seconds.",
			func() HistogramSnapshot {
				s := in.Stats(op)
				return HistogramSnapshot{Bounds: store.InstrumentBounds(), Counts: s.LatencyCounts, Sum: s.LatencySum}
			}, opLabel)
	}
}

// RegisterThrottle exposes a token-bucket throttle's budget state:
//
//	fbf_throttle_rate_bytes_per_sec  configured bandwidth cap
//	fbf_throttle_tokens_bytes        current bucket level (negative in debt)
//	fbf_throttle_waits               operations that slept for budget
//	fbf_throttle_waited_seconds      total time slept
func RegisterThrottle(reg *Registry, t *store.Throttle) {
	reg.GaugeFunc("fbf_throttle_rate_bytes_per_sec", "Configured rebuild bandwidth cap in bytes per second.",
		func() float64 { return t.Stats().Rate })
	reg.GaugeFunc("fbf_throttle_tokens_bytes", "Token bucket level in bytes; negative while repaying debt.",
		func() float64 { return t.Stats().Tokens })
	reg.CounterFunc("fbf_throttle_waits", "Operations that slept waiting for bandwidth budget.",
		func() float64 { return float64(t.Stats().Waits) })
	reg.CounterFunc("fbf_throttle_waited_seconds", "Total time spent sleeping for bandwidth budget, in seconds.",
		func() float64 { return t.Stats().Waited.Seconds() })
}

// RebuildMetrics holds the cells rebuild.RunService updates while it
// repairs an array. Every hook in the service is a nil check on the
// struct, so un-instrumented runs execute exactly as before.
type RebuildMetrics struct {
	StripesPlanned Counter // damaged stripes ordered for repair, cumulative across passes
	StripesDone    Counter // stripes fully repaired
	ChunksRebuilt  Counter // chunks recovered and written back
	ChunksVerified Counter // recovered chunks diffed clean against the GF(2) oracle
	ChunksDecoded  Counter // chunks rebuilt via the decoder fallback rather than a single chain

	DiskReads    Counter // source chunks fetched from the backend
	VerifyReads  Counter // backend reads issued by the oracle and resume re-verification
	CacheHits    Counter // source fetches answered by the cache
	CacheMisses  Counter // source fetches that went to the backend
	BytesWritten Counter // recovered payload bytes written

	Escalations   Counter // surviving chunks found unreadable mid-chain
	Regenerations Counter // recovery-scheme regenerations after an escalation

	JournalRecords  Counter // write-ahead journal records appended
	ResumedCommits  Counter // journal chunk commits found on resume
	ResumedVerified Counter // resumed commits re-verified byte-exact
	ResumedCorrupt  Counter // resumed commits that lied (CRC or oracle mismatch), re-repaired

	ScanMissing    Gauge // missing chunks found by the latest scan
	ScanCorrupt    Gauge // corrupt chunks found by the latest scan
	DataLossChunks Gauge // chunks declared unrecoverable by the latest pass
	Percent        Gauge // latest pass progress, 0-100
}

// NewRebuildMetrics registers the rebuild service's metric families on
// reg and returns the producer cells.
func NewRebuildMetrics(reg *Registry) *RebuildMetrics {
	m := &RebuildMetrics{}
	for _, c := range []struct {
		cell *Counter
		name string
		help string
	}{
		{&m.StripesPlanned, "fbf_rebuild_stripes_planned", "Damaged stripes ordered for repair, cumulative across passes."},
		{&m.StripesDone, "fbf_rebuild_stripes_done", "Stripes fully repaired."},
		{&m.ChunksRebuilt, "fbf_rebuild_chunks_rebuilt", "Chunks recovered and written back."},
		{&m.ChunksVerified, "fbf_rebuild_chunks_verified", "Recovered chunks diffed clean against the GF(2) oracle."},
		{&m.ChunksDecoded, "fbf_rebuild_chunks_decoded", "Chunks rebuilt via the decoder fallback rather than a single chain."},
		{&m.DiskReads, "fbf_rebuild_disk_reads", "Source chunks fetched from the backend."},
		{&m.VerifyReads, "fbf_rebuild_verify_reads", "Backend reads issued by oracle checks and resume re-verification."},
		{&m.CacheHits, "fbf_rebuild_cache_hits", "Source fetches answered by the recovery cache."},
		{&m.CacheMisses, "fbf_rebuild_cache_misses", "Source fetches that went to the backend."},
		{&m.BytesWritten, "fbf_rebuild_bytes_written", "Recovered payload bytes written."},
		{&m.Escalations, "fbf_rebuild_escalations", "Surviving chunks found unreadable mid-chain."},
		{&m.Regenerations, "fbf_rebuild_regenerations", "Recovery-scheme regenerations after an escalation."},
		{&m.JournalRecords, "fbf_rebuild_journal_records", "Write-ahead journal records appended."},
		{&m.ResumedCommits, "fbf_rebuild_resumed_commits", "Journal chunk commits found on resume."},
		{&m.ResumedVerified, "fbf_rebuild_resumed_verified", "Resumed commits re-verified byte-exact."},
		{&m.ResumedCorrupt, "fbf_rebuild_resumed_corrupt", "Resumed commits that failed re-verification and were re-repaired."},
	} {
		reg.CounterFunc(c.name, c.help, cellValue(c.cell))
	}
	for _, g := range []struct {
		cell *Gauge
		name string
		help string
	}{
		{&m.ScanMissing, "fbf_rebuild_scan_missing_chunks", "Missing chunks found by the latest scan."},
		{&m.ScanCorrupt, "fbf_rebuild_scan_corrupt_chunks", "Corrupt chunks found by the latest scan."},
		{&m.DataLossChunks, "fbf_rebuild_data_loss_chunks", "Chunks declared unrecoverable by the latest pass."},
		{&m.Percent, "fbf_rebuild_progress_percent", "Latest pass progress, 0-100."},
	} {
		reg.GaugeFunc(g.name, g.help, g.cell.Value)
	}
	return m
}

// cellValue bridges an embedded Counter cell into a CounterFunc read.
// Registering the cells as funcs keeps the structs plain values (no
// pointer fields to nil-check twice) while sharing one registry path.
func cellValue(c *Counter) func() float64 {
	return func() float64 { return float64(c.Value()) }
}

// DaemonMetrics holds the cells rebuild.RunDaemon updates, plus the
// progress tracker behind /progress.
type DaemonMetrics struct {
	Scans    Counter // scan + repair passes started
	Rebuilds Counter // passes that repaired damage
	Retries  Counter // passes that failed and scheduled a backoff retry

	Backoff  Gauge // current backoff delay in seconds (0 when healthy)
	Failures Gauge // consecutive failed passes

	Tracker *ProgressTracker // live phase + per-stripe progress
}

// NewDaemonMetrics registers the watch daemon's metric families on reg
// and returns the producer cells.
func NewDaemonMetrics(reg *Registry) *DaemonMetrics {
	m := &DaemonMetrics{Tracker: NewProgressTracker()}
	reg.CounterFunc("fbf_daemon_scans", "Scan and repair passes started.", cellValue(&m.Scans))
	reg.CounterFunc("fbf_daemon_rebuilds", "Passes that repaired damage.", cellValue(&m.Rebuilds))
	reg.CounterFunc("fbf_daemon_retries", "Failed passes that scheduled a backoff retry.", cellValue(&m.Retries))
	reg.GaugeFunc("fbf_daemon_backoff_seconds", "Current backoff delay in seconds; 0 while healthy.", m.Backoff.Value)
	reg.GaugeFunc("fbf_daemon_consecutive_failures", "Consecutive failed passes.", m.Failures.Value)
	return m
}

// QoSMetrics holds the cells the QoS rebuild throttle's AIMD controller
// updates at every decision window. The controller runs in simulated
// time, so the latency gauges report simulated seconds — the exposition
// is still useful live because the simulation advances in wall-clock
// lockstep with the serving run driving it.
type QoSMetrics struct {
	Windows  Counter // AIMD decision windows evaluated
	Breaches Counter // windows whose foreground p99 exceeded the SLO

	Rate          Gauge // current rebuild token rate (tokens per simulated second)
	WindowP99     Gauge // last window's foreground p99, simulated seconds
	SLO           Gauge // configured p99 SLO, simulated seconds
	ThrottleDelay Gauge // current per-token issue delay, simulated seconds
}

// NewQoSMetrics registers the QoS throttle's metric families on reg and
// returns the producer cells.
func NewQoSMetrics(reg *Registry) *QoSMetrics {
	m := &QoSMetrics{}
	reg.CounterFunc("fbf_qos_windows", "AIMD decision windows evaluated.", cellValue(&m.Windows))
	reg.CounterFunc("fbf_qos_breaches", "Windows whose foreground p99 exceeded the SLO.", cellValue(&m.Breaches))
	reg.GaugeFunc("fbf_qos_rate_tokens_per_sec", "Current rebuild token rate per simulated second.", m.Rate.Value)
	reg.GaugeFunc("fbf_qos_window_p99_seconds", "Last window's foreground p99 in simulated seconds.", m.WindowP99.Value)
	reg.GaugeFunc("fbf_qos_slo_seconds", "Configured foreground p99 SLO in simulated seconds.", m.SLO.Value)
	reg.GaugeFunc("fbf_qos_throttle_delay_seconds", "Current per-token issue delay in simulated seconds.", m.ThrottleDelay.Value)
	return m
}
