package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildGoldenRegistry populates a registry with every metric kind,
// label shape and value edge the exposition writer handles: unlabeled
// and multi-label series, escaping, shortest-form floats, histograms
// with overflow.
func buildGoldenRegistry() *Registry {
	reg := NewRegistry()

	c := reg.Counter("fbf_test_ops", "Operations completed.")
	c.Add(42)
	reg.Counter("fbf_test_errors", "Failures by class.", Label{Key: "type", Value: "io"}).Add(3)
	reg.Counter("fbf_test_errors", "Failures by class.", Label{Key: "type", Value: "corrupt"})
	// Labels registered out of key order must render sorted.
	reg.Counter("fbf_test_multi", "Multi-label series.",
		Label{Key: "zone", Value: "a"}, Label{Key: "disk", Value: "3"}).Inc()

	g := reg.Gauge("fbf_test_level", "A float gauge.")
	g.Set(0.4375) // exact in binary: renders identically everywhere
	reg.Gauge("fbf_test_escaped", "Help with a \\ backslash\nand newline.",
		Label{Key: "path", Value: "a\"b\\c\nd"}).Set(-7)

	h := reg.Histogram("fbf_test_seconds", "Latency histogram.", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 0.5, 30} { // 30 overflows
		h.Observe(v)
	}
	reg.CounterFunc("fbf_test_bridge", "Callback counter.", func() float64 { return 17 })
	reg.GaugeFunc("fbf_test_bridge_gauge", "Callback gauge.", func() float64 { return 2.5 })
	reg.HistogramFunc("fbf_test_bridge_hist", "Callback histogram.", func() HistogramSnapshot {
		return HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{4, 0, 1}, Sum: 6.5}
	}, Label{Key: "op", Value: "read"})
	return reg
}

// TestPrometheusGolden pins the text exposition byte-for-byte.
func TestPrometheusGolden(t *testing.T) {
	reg := buildGoldenRegistry()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, filepath.Join("testdata", "prometheus_golden.txt"), buf.Bytes())
}

// TestJSONGolden pins the JSON twin the same way.
func TestJSONGolden(t *testing.T) {
	reg := buildGoldenRegistry()
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, filepath.Join("testdata", "json_golden.json"), buf.Bytes())
}

func goldenCompare(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (rerun with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output diverges from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestPrometheusDeterministic writes the same registry twice and from a
// rebuilt twin: all three expositions must be byte-identical.
func TestPrometheusDeterministic(t *testing.T) {
	reg := buildGoldenRegistry()
	var a, b, c bytes.Buffer
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := buildGoldenRegistry().WritePrometheus(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two writes of one registry differ")
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("identically built registries serialize differently")
	}
}

// TestRegistryPanics pins the fail-fast registration contract.
func TestRegistryPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*Registry)
	}{
		{"invalid name", func(r *Registry) { r.Counter("0bad", "h") }},
		{"empty name", func(r *Registry) { r.Counter("", "h") }},
		{"invalid label", func(r *Registry) { r.Counter("ok", "h", Label{Key: "0bad", Value: "v"}) }},
		{"duplicate label key", func(r *Registry) {
			r.Counter("ok", "h", Label{Key: "a", Value: "1"}, Label{Key: "a", Value: "2"})
		}},
		{"duplicate series", func(r *Registry) { r.Counter("dup", "h"); r.Counter("dup", "h") }},
		{"kind mismatch", func(r *Registry) { r.Counter("mix", "h"); r.Gauge("mix", "h") }},
		{"help mismatch", func(r *Registry) {
			r.Counter("help", "one", Label{Key: "a", Value: "1"})
			r.Counter("help", "two", Label{Key: "a", Value: "2"})
		}},
		{"empty histogram bounds", func(r *Registry) { r.Histogram("hist", "h", nil) }},
		{"unsorted histogram bounds", func(r *Registry) { r.Histogram("hist", "h", []float64{2, 1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

// TestHistogramBuckets checks cumulative bucket math against a known
// distribution.
func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("fbf_h", "", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Counts[0] != 2 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("counts = %v, want [2 1 1] (le=1 inclusive, overflow catches 100)", s.Counts)
	}
	if s.Sum != 106.5 || s.Total() != 4 {
		t.Fatalf("sum=%v total=%d, want 106.5 and 4", s.Sum, s.Total())
	}
}

// TestConcurrentProducersAndScrapes hammers cells from many goroutines
// while scraping — the -race pin for the registry's concurrency
// contract.
func TestConcurrentProducersAndScrapes(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("fbf_c", "")
	g := reg.Gauge("fbf_g", "")
	h := reg.Histogram("fbf_h", "", []float64{0.5, 1})
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%3) / 2)
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for i := 0; i < 50; i++ {
				buf.Reset()
				if err := reg.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if h.Snapshot().Total() != workers*iters {
		t.Fatalf("histogram total = %d, want %d", h.Snapshot().Total(), workers*iters)
	}
}
