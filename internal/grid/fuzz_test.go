package grid

import (
	"sort"
	"testing"
)

// decodeChains turns a fuzz byte stream into a chain set plus parity
// list. The decoder intentionally produces out-of-bounds cells, repeated
// cells, duplicate chain ids and invalid kinds with nonzero probability
// so NewLayout's validation paths stay exercised.
func decodeChains(rows, cols int, data []byte) (parity []Coord, chains []Chain) {
	next := func() (byte, bool) {
		if len(data) == 0 {
			return 0, false
		}
		b := data[0]
		data = data[1:]
		return b, true
	}
	cell := func(b byte) Coord {
		// Bias toward in-bounds cells but keep a slice of the byte space
		// mapping outside the grid.
		return Coord{Row: int(b>>4) - 1, Col: int(b&0x0F) - 1}
	}
	for np, ok := next(); ok && np&0x03 == 0; np, ok = next() {
		b, ok := next()
		if !ok {
			break
		}
		parity = append(parity, cell(b))
	}
	for len(chains) < 16 {
		hdr, ok := next()
		if !ok {
			break
		}
		ch := Chain{Kind: ChainKind(hdr >> 6), Index: int(hdr & 0x07)}
		n, ok := next()
		if !ok {
			break
		}
		for i := 0; i < int(n%8); i++ {
			b, ok := next()
			if !ok {
				break
			}
			ch.Cells = append(ch.Cells, cell(b))
		}
		chains = append(chains, ch)
	}
	return parity, chains
}

// FuzzLayout fuzzes layout construction and its accessor contract: any
// decoded geometry must either be rejected by NewLayout or yield a
// layout whose lookup structures (by id, by cell, by kind) agree with
// the flat chain list it was built from.
func FuzzLayout(f *testing.F) {
	f.Add(4, 6, []byte{0x00, 0x11, 0x01, 0x42, 0x03, 0x11, 0x12, 0x13})
	f.Add(1, 1, []byte{0x01, 0x02, 0x11})
	f.Add(4, 7, []byte{0x40, 0x04, 0x11, 0x22, 0x33, 0x44, 0x80, 0x02, 0x14, 0x23})
	f.Fuzz(func(t *testing.T, rows, cols int, data []byte) {
		if rows < 1 || rows > 8 || cols < 1 || cols > 8 {
			t.Skip()
		}
		parity, chains := decodeChains(rows, cols, data)
		l, err := NewLayout(rows, cols, parity, chains)
		if err != nil {
			return // rejection is a valid outcome; it must just not panic
		}
		if l.Rows() != rows || l.Cols() != cols || l.Cells() != rows*cols {
			t.Fatalf("dimensions: got %dx%d (%d cells), want %dx%d",
				l.Rows(), l.Cols(), l.Cells(), rows, cols)
		}
		if got, want := len(l.Chains()), len(chains); got != want {
			t.Fatalf("Chains() has %d entries, want %d", got, want)
		}
		for i := range l.Chains() {
			ch := &l.Chains()[i]
			byID, ok := l.Chain(ch.ID())
			if !ok || byID.Kind != ch.Kind || byID.Index != ch.Index {
				t.Fatalf("Chain(%v) round-trip failed", ch.ID())
			}
			lost := map[Coord]bool{}
			if len(ch.Cells) > 0 {
				lost[ch.Cells[0]] = true
			}
			surv := ch.Survivors(lost)
			if len(surv) != len(ch.Cells)-len(lost) {
				t.Fatalf("chain %v: %d survivors of %d cells with %d lost",
					ch.ID(), len(surv), len(ch.Cells), len(lost))
			}
			for _, cell := range ch.Cells {
				if !l.InBounds(cell) {
					t.Fatalf("accepted layout has out-of-bounds cell %v", cell)
				}
				if !ch.Contains(cell) {
					t.Fatalf("chain %v does not Contain its own cell %v", ch.ID(), cell)
				}
				through := l.ChainsThrough(cell)
				found := false
				for k, c2 := range through {
					if k > 0 && (through[k-1].Kind > c2.Kind ||
						(through[k-1].Kind == c2.Kind && through[k-1].Index > c2.Index)) {
						t.Fatalf("ChainsThrough(%v) not sorted", cell)
					}
					if c2.ID() == ch.ID() {
						found = true
					}
				}
				if !found {
					t.Fatalf("ChainsThrough(%v) misses chain %v", cell, ch.ID())
				}
				byKind, ok := l.ChainThrough(cell, ch.Kind)
				if !ok || byKind.Kind != ch.Kind || !byKind.Contains(cell) {
					t.Fatalf("ChainThrough(%v, %v) inconsistent", cell, ch.Kind)
				}
			}
		}
		// Data and parity cells partition the grid, both in row-major order.
		dc, pc := l.DataCells(), l.ParityCells()
		if len(dc)+len(pc) != l.Cells() {
			t.Fatalf("data (%d) + parity (%d) != cells (%d)", len(dc), len(pc), l.Cells())
		}
		all := append(append([]Coord{}, dc...), pc...)
		sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
		idx := 0
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if all[idx] != (Coord{Row: r, Col: c}) {
					t.Fatalf("partition misses or repeats cell C(%d,%d)", r, c)
				}
				idx++
			}
		}
		for _, cell := range dc {
			if l.IsParity(cell) {
				t.Fatalf("data cell %v reported as parity", cell)
			}
		}
		for _, cell := range pc {
			if !l.IsParity(cell) {
				t.Fatalf("parity cell %v not reported as parity", cell)
			}
		}
	})
}
