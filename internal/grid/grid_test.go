package grid

import (
	"testing"
	"testing/quick"
)

func TestCoordString(t *testing.T) {
	c := Coord{Row: 4, Col: 7}
	if got, want := c.String(), "C(4,7)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestCoordLess(t *testing.T) {
	cases := []struct {
		a, b Coord
		want bool
	}{
		{Coord{0, 0}, Coord{0, 1}, true},
		{Coord{0, 1}, Coord{0, 0}, false},
		{Coord{0, 5}, Coord{1, 0}, true},
		{Coord{1, 0}, Coord{0, 5}, false},
		{Coord{2, 2}, Coord{2, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCoordLessTotalOrder(t *testing.T) {
	// Less must be a strict total order: exactly one of a<b, b<a, a==b.
	err := quick.Check(func(r1, c1, r2, c2 uint8) bool {
		a := Coord{Row: int(r1), Col: int(c1)}
		b := Coord{Row: int(r2), Col: int(c2)}
		ab, ba := a.Less(b), b.Less(a)
		if a == b {
			return !ab && !ba
		}
		return ab != ba
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestChainKindString(t *testing.T) {
	if Horizontal.String() != "horizontal" || Diagonal.String() != "diagonal" || AntiDiagonal.String() != "anti-diagonal" {
		t.Error("unexpected kind names")
	}
	if ChainKind(9).String() != "ChainKind(9)" {
		t.Errorf("invalid kind String() = %q", ChainKind(9).String())
	}
	if ChainKind(3).Valid() {
		t.Error("ChainKind(3) should be invalid")
	}
	if got := Kinds(); len(got) != 3 || got[0] != Horizontal || got[1] != Diagonal || got[2] != AntiDiagonal {
		t.Errorf("Kinds() = %v", got)
	}
}

func TestChainContainsAndSurvivors(t *testing.T) {
	ch := Chain{Kind: Horizontal, Index: 0, Cells: []Coord{{0, 0}, {0, 1}, {0, 2}}}
	if !ch.Contains(Coord{0, 1}) || ch.Contains(Coord{1, 1}) {
		t.Error("Contains wrong")
	}
	surv := ch.Survivors(map[Coord]bool{{0, 1}: true})
	if len(surv) != 2 || surv[0] != (Coord{0, 0}) || surv[1] != (Coord{0, 2}) {
		t.Errorf("Survivors = %v", surv)
	}
}

func TestChainString(t *testing.T) {
	ch := Chain{Kind: Diagonal, Index: 2, Cells: []Coord{{0, 0}, {1, 1}}}
	if got, want := ch.String(), "diagonal#2{C(0,0) C(1,1)}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func validLayout(t *testing.T) *Layout {
	t.Helper()
	l, err := NewLayout(2, 3,
		[]Coord{{0, 2}, {1, 2}},
		[]Chain{
			{Kind: Horizontal, Index: 0, Cells: []Coord{{0, 0}, {0, 1}, {0, 2}}},
			{Kind: Horizontal, Index: 1, Cells: []Coord{{1, 0}, {1, 1}, {1, 2}}},
			{Kind: Diagonal, Index: 0, Cells: []Coord{{0, 0}, {1, 1}}},
		})
	if err != nil {
		t.Fatalf("NewLayout: %v", err)
	}
	return l
}

func TestLayoutAccessors(t *testing.T) {
	l := validLayout(t)
	if l.Rows() != 2 || l.Cols() != 3 || l.Cells() != 6 {
		t.Errorf("dims = %d x %d (%d cells)", l.Rows(), l.Cols(), l.Cells())
	}
	if !l.IsParity(Coord{0, 2}) || l.IsParity(Coord{0, 0}) {
		t.Error("IsParity wrong")
	}
	if got := l.ParityCells(); len(got) != 2 || got[0] != (Coord{0, 2}) || got[1] != (Coord{1, 2}) {
		t.Errorf("ParityCells = %v", got)
	}
	if got := l.DataCells(); len(got) != 4 || got[0] != (Coord{0, 0}) || got[3] != (Coord{1, 1}) {
		t.Errorf("DataCells = %v", got)
	}
	if !l.InBounds(Coord{1, 2}) || l.InBounds(Coord{2, 0}) || l.InBounds(Coord{0, -1}) {
		t.Error("InBounds wrong")
	}
	if got := l.ColumnCells(1); len(got) != 2 || got[0] != (Coord{0, 1}) || got[1] != (Coord{1, 1}) {
		t.Errorf("ColumnCells = %v", got)
	}
}

func TestLayoutChainLookup(t *testing.T) {
	l := validLayout(t)
	if len(l.Chains()) != 3 {
		t.Fatalf("Chains len = %d", len(l.Chains()))
	}
	ch, ok := l.Chain(ChainID{Kind: Diagonal, Index: 0})
	if !ok || len(ch.Cells) != 2 {
		t.Fatalf("Chain lookup failed: %v %v", ch, ok)
	}
	if _, ok := l.Chain(ChainID{Kind: AntiDiagonal, Index: 0}); ok {
		t.Error("found nonexistent chain")
	}

	through := l.ChainsThrough(Coord{0, 0})
	if len(through) != 2 || through[0].Kind != Horizontal || through[1].Kind != Diagonal {
		t.Errorf("ChainsThrough = %v", through)
	}
	if got := l.ChainsThrough(Coord{1, 0}); len(got) != 1 {
		t.Errorf("ChainsThrough(1,0) = %v", got)
	}

	d, ok := l.ChainThrough(Coord{1, 1}, Diagonal)
	if !ok || d.Index != 0 {
		t.Errorf("ChainThrough diagonal = %v %v", d, ok)
	}
	if _, ok := l.ChainThrough(Coord{1, 0}, Diagonal); ok {
		t.Error("ChainThrough found chain that should not exist")
	}
}

func TestNewLayoutErrors(t *testing.T) {
	h0 := Chain{Kind: Horizontal, Index: 0, Cells: []Coord{{0, 0}}}
	cases := []struct {
		name   string
		rows   int
		cols   int
		parity []Coord
		chains []Chain
	}{
		{"zero rows", 0, 3, nil, nil},
		{"negative cols", 2, -1, nil, nil},
		{"parity out of bounds", 2, 2, []Coord{{5, 0}}, nil},
		{"duplicate parity", 2, 2, []Coord{{0, 0}, {0, 0}}, nil},
		{"chain cell out of bounds", 2, 2, nil, []Chain{{Kind: Horizontal, Index: 0, Cells: []Coord{{9, 9}}}}},
		{"duplicate chain id", 2, 2, nil, []Chain{h0, h0}},
		{"invalid kind", 2, 2, nil, []Chain{{Kind: ChainKind(7), Index: 0, Cells: []Coord{{0, 0}}}}},
		{"repeated cell in chain", 2, 2, nil, []Chain{{Kind: Horizontal, Index: 0, Cells: []Coord{{0, 0}, {0, 0}}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewLayout(c.rows, c.cols, c.parity, c.chains); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestMustLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLayout did not panic on invalid layout")
		}
	}()
	MustLayout(0, 0, nil, nil)
}
