// Package grid provides the stripe geometry shared by every erasure code
// in this repository: chunk coordinates, parity-chain descriptions and the
// chain sets that recovery-scheme generation operates on.
//
// A stripe is a Rows x Cols grid of chunks. Column j of the grid maps to
// disk j; row i is the i-th chunk of the stripe on that disk. A parity
// chain is a set of chunks whose XOR is zero after encoding. Each chain
// has a direction (horizontal, diagonal or anti-diagonal); triple-fault
// tolerant codes give every data chunk membership in up to three chains,
// one per direction.
package grid

import (
	"fmt"
	"sort"
)

// Coord identifies a chunk inside one stripe by row and column (disk).
type Coord struct {
	Row int
	Col int
}

// String renders the coordinate in the paper's C(row,col) notation.
func (c Coord) String() string { return fmt.Sprintf("C(%d,%d)", c.Row, c.Col) }

// Less orders coordinates row-major, matching on-disk layout order.
func (c Coord) Less(o Coord) bool {
	if c.Row != o.Row {
		return c.Row < o.Row
	}
	return c.Col < o.Col
}

// ChainKind is the direction of a parity chain.
type ChainKind uint8

// The three chain directions present in XOR-based 3DFT codes.
const (
	Horizontal ChainKind = iota
	Diagonal
	AntiDiagonal
	numChainKinds
)

// Kinds lists the chain directions in the order FBF's scheme generator
// loops through them (Section III-A.1 of the paper).
func Kinds() []ChainKind { return []ChainKind{Horizontal, Diagonal, AntiDiagonal} }

// String returns a short human-readable name for the chain kind.
func (k ChainKind) String() string {
	switch k {
	case Horizontal:
		return "horizontal"
	case Diagonal:
		return "diagonal"
	case AntiDiagonal:
		return "anti-diagonal"
	default:
		return fmt.Sprintf("ChainKind(%d)", uint8(k))
	}
}

// Valid reports whether k is one of the three defined directions.
func (k ChainKind) Valid() bool { return k < numChainKinds }

// Chain is one parity chain: the XOR of the contents of all cells is zero
// in an encoded stripe. Cells contains every member, data and parity
// alike (including adjuster cells for codes such as STAR).
type Chain struct {
	Kind  ChainKind
	Index int // index of the chain within its direction
	Cells []Coord
}

// ID uniquely identifies a chain within one code layout.
type ChainID struct {
	Kind  ChainKind
	Index int
}

// ID returns the chain's identifier.
func (c *Chain) ID() ChainID { return ChainID{Kind: c.Kind, Index: c.Index} }

// String renders the chain as "<kind>#<index>{cells...}".
func (c *Chain) String() string {
	s := fmt.Sprintf("%s#%d{", c.Kind, c.Index)
	for i, cell := range c.Cells {
		if i > 0 {
			s += " "
		}
		s += cell.String()
	}
	return s + "}"
}

// Contains reports whether the chain includes the given cell.
func (c *Chain) Contains(cell Coord) bool {
	for _, m := range c.Cells {
		if m == cell {
			return true
		}
	}
	return false
}

// Survivors returns the chain's cells excluding those in lost. The result
// is the fetch set needed to rebuild a single lost member through this
// chain.
func (c *Chain) Survivors(lost map[Coord]bool) []Coord {
	out := make([]Coord, 0, len(c.Cells))
	for _, m := range c.Cells {
		if !lost[m] {
			out = append(out, m)
		}
	}
	return out
}

// Layout describes one code's stripe geometry: grid dimensions, which
// cells hold parity, and the full chain set. Layout values are immutable
// after construction and safe for concurrent use.
type Layout struct {
	rows, cols int
	parity     map[Coord]bool
	chains     []Chain
	byCell     map[Coord][]*Chain
	byID       map[ChainID]*Chain
}

// NewLayout validates and assembles a layout. Every chain cell must be in
// bounds; chains must have distinct (kind, index) pairs and no duplicate
// cells within one chain.
func NewLayout(rows, cols int, parity []Coord, chains []Chain) (*Layout, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("grid: non-positive dimensions %dx%d", rows, cols)
	}
	l := &Layout{
		rows:   rows,
		cols:   cols,
		parity: make(map[Coord]bool, len(parity)),
		chains: make([]Chain, len(chains)),
		byCell: make(map[Coord][]*Chain),
		byID:   make(map[ChainID]*Chain, len(chains)),
	}
	for _, p := range parity {
		if !l.InBounds(p) {
			return nil, fmt.Errorf("grid: parity cell %v out of bounds %dx%d", p, rows, cols)
		}
		if l.parity[p] {
			return nil, fmt.Errorf("grid: duplicate parity cell %v", p)
		}
		l.parity[p] = true
	}
	copy(l.chains, chains)
	for i := range l.chains {
		ch := &l.chains[i]
		if !ch.Kind.Valid() {
			return nil, fmt.Errorf("grid: chain %d has invalid kind %d", i, ch.Kind)
		}
		id := ch.ID()
		if _, dup := l.byID[id]; dup {
			return nil, fmt.Errorf("grid: duplicate chain id %v", id)
		}
		l.byID[id] = ch
		seen := make(map[Coord]bool, len(ch.Cells))
		for _, cell := range ch.Cells {
			if !l.InBounds(cell) {
				return nil, fmt.Errorf("grid: chain %v cell %v out of bounds %dx%d", id, cell, rows, cols)
			}
			if seen[cell] {
				return nil, fmt.Errorf("grid: chain %v repeats cell %v", id, cell)
			}
			seen[cell] = true
			l.byCell[cell] = append(l.byCell[cell], ch)
		}
	}
	return l, nil
}

// MustLayout is NewLayout that panics on error; for use by code
// constructors whose geometry is fixed at compile time.
func MustLayout(rows, cols int, parity []Coord, chains []Chain) *Layout {
	l, err := NewLayout(rows, cols, parity, chains)
	if err != nil {
		panic(err)
	}
	return l
}

// Rows returns the number of rows (chunks per disk per stripe).
func (l *Layout) Rows() int { return l.rows }

// Cols returns the number of columns (disks).
func (l *Layout) Cols() int { return l.cols }

// Cells returns the total number of chunks in one stripe.
func (l *Layout) Cells() int { return l.rows * l.cols }

// InBounds reports whether c lies inside the grid.
func (l *Layout) InBounds(c Coord) bool {
	return c.Row >= 0 && c.Row < l.rows && c.Col >= 0 && c.Col < l.cols
}

// IsParity reports whether the cell holds parity (redundancy) rather than
// user data.
func (l *Layout) IsParity(c Coord) bool { return l.parity[c] }

// ParityCells returns all parity cells in row-major order.
func (l *Layout) ParityCells() []Coord {
	out := make([]Coord, 0, len(l.parity))
	for c := range l.parity {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// DataCells returns all data cells in row-major order.
func (l *Layout) DataCells() []Coord {
	out := make([]Coord, 0, l.Cells()-len(l.parity))
	for r := 0; r < l.rows; r++ {
		for c := 0; c < l.cols; c++ {
			cell := Coord{Row: r, Col: c}
			if !l.parity[cell] {
				out = append(out, cell)
			}
		}
	}
	return out
}

// Chains returns every chain in the layout. The returned slice must not
// be modified.
func (l *Layout) Chains() []Chain { return l.chains }

// Chain looks up a chain by id.
func (l *Layout) Chain(id ChainID) (*Chain, bool) {
	ch, ok := l.byID[id]
	return ch, ok
}

// ChainsThrough returns the chains that include the given cell, ordered
// horizontal, diagonal, anti-diagonal. The returned slice must not be
// modified.
func (l *Layout) ChainsThrough(c Coord) []*Chain {
	chs := l.byCell[c]
	sorted := make([]*Chain, len(chs))
	copy(sorted, chs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Kind != sorted[j].Kind {
			return sorted[i].Kind < sorted[j].Kind
		}
		return sorted[i].Index < sorted[j].Index
	})
	return sorted
}

// ChainThrough returns the chain of the given kind that includes the
// cell, if any. Codes place each cell on at most one chain per direction.
func (l *Layout) ChainThrough(c Coord, kind ChainKind) (*Chain, bool) {
	for _, ch := range l.byCell[c] {
		if ch.Kind == kind {
			return ch, true
		}
	}
	return nil, false
}

// ColumnCells returns the cells of one column (disk) top to bottom.
func (l *Layout) ColumnCells(col int) []Coord {
	out := make([]Coord, 0, l.rows)
	for r := 0; r < l.rows; r++ {
		out = append(out, Coord{Row: r, Col: col})
	}
	return out
}
