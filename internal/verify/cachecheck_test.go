package verify

import (
	"testing"

	"fbf/internal/cache"
	_ "fbf/internal/core" // registers the "fbf" policy
)

// TestCacheModelCheck is the acceptance run: every checked policy
// replays at least 10k randomized steps against its reference model —
// across small capacities (maximum eviction and ghost churn) and a
// larger one — with zero divergence in hit/miss decisions, residency
// or event counters.
func TestCacheModelCheck(t *testing.T) {
	for _, policy := range CheckedPolicies() {
		t.Run(policy, func(t *testing.T) {
			steps := 0
			for _, capacity := range []int{1, 2, 3, 8, 32} {
				for seed := int64(0); seed < 2; seed++ {
					rep, err := CheckCache(CacheConfig{
						Policy:   policy,
						Capacity: capacity,
						Steps:    2500,
						Seed:     seed,
					})
					if err != nil {
						t.Fatal(err)
					}
					steps += rep.Steps
				}
			}
			if steps < 10000 {
				t.Fatalf("only %d steps checked, want >= 10000", steps)
			}
		})
	}
}

// TestCacheModelCheckZeroCapacity pins the degenerate capacity-0
// contract: every request misses, nothing is ever resident.
func TestCacheModelCheckZeroCapacity(t *testing.T) {
	for _, policy := range CheckedPolicies() {
		rep, err := CheckCache(CacheConfig{Policy: policy, Capacity: 0, Steps: 500, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if rep.Stats.Hits != 0 || rep.Stats.Evictions != 0 {
			t.Fatalf("%s: capacity 0 produced hits=%d evictions=%d", policy, rep.Stats.Hits, rep.Stats.Evictions)
		}
	}
}

// TestCheckedPoliciesAreRegistered keeps the checker's list in sync
// with the policy registry: everything it claims to check must
// construct, and every registered policy except the clairvoyant "opt"
// must be checked.
func TestCheckedPoliciesAreRegistered(t *testing.T) {
	checked := make(map[string]bool)
	for _, name := range CheckedPolicies() {
		checked[name] = true
		if _, err := cache.New(name, 4); err != nil {
			t.Errorf("checked policy %q does not construct: %v", name, err)
		}
	}
	for _, name := range cache.Names() {
		if name == "opt" {
			continue // FutureAware; cross-checked in internal/cache instead
		}
		if !checked[name] {
			t.Errorf("registered policy %q has no reference model", name)
		}
	}
}

// TestCheckCacheDetectsDivergence sanity-checks the checker itself: a
// model checker that can never fail proves nothing. Running the LRU
// reference against the FIFO production policy must diverge (LRU
// refreshes recency on hit, FIFO does not).
func TestCheckCacheDetectsDivergence(t *testing.T) {
	pol := cache.MustNew("fifo", 3)
	ref := &refLRU{cap: 3}
	diverged := false
	ids := []cache.ChunkID{}
	for k := 0; k < 8; k++ {
		ids = append(ids, cache.ChunkID{Stripe: k})
	}
	// a b c a d: LRU keeps a (refreshed), FIFO evicts a.
	for _, k := range []int{0, 1, 2, 0, 3} {
		hit := pol.Request(ids[k])
		refHit, _ := ref.request(ids[k], nil)
		if hit != refHit {
			diverged = true
			break
		}
	}
	if !diverged {
		for _, r := range ref.resident() {
			if !pol.Contains(r) {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("LRU model failed to catch FIFO behaviour")
	}
}
