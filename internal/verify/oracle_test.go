package verify

import (
	"strings"
	"testing"

	"fbf/internal/chunk"
	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/grid"
)

// TestOracleAgreesWithChains recovers every cell of a partial stripe
// error through its selected parity chain and cross-checks each against
// the Oracle, the incremental form of the checkPattern gf2 diff.
func TestOracleAgreesWithChains(t *testing.T) {
	code := codes.MustNew("star", 5)
	stripe := code.MaterializeStripe(11, 128)
	e := core.PartialStripeError{Stripe: 0, Disk: 2, Row: 1, Size: 3}
	lost := e.LostCells()

	oracle, err := NewOracle(code, lost)
	if err != nil {
		t.Fatal(err)
	}
	read := func(c grid.Coord, dst chunk.Chunk) error {
		copy(dst, stripe[code.CellIndex(c)])
		return nil
	}
	scheme, err := core.GenerateScheme(code, e, core.StrategyLooped)
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range scheme.Selected {
		if !oracle.Solvable(sel.Lost) {
			t.Fatalf("oracle cannot solve %v", sel.Lost)
		}
		recovered, err := code.RebuildChunk(sel.Chain, sel.Lost, stripe)
		if err != nil {
			t.Fatal(err)
		}
		if err := oracle.Check(sel.Lost, recovered, read); err != nil {
			t.Errorf("oracle rejects a correct chain recovery: %v", err)
		}
		// A single flipped byte in the recovered chunk must be caught.
		recovered[17] ^= 0x01
		if err := oracle.Check(sel.Lost, recovered, read); err == nil {
			t.Errorf("oracle accepted corrupted recovery of %v", sel.Lost)
		} else if !strings.Contains(err.Error(), "disagree") {
			t.Errorf("unexpected oracle error: %v", err)
		}
	}
}

// TestOracleBeyondTolerance pins the unsolvable-cell reporting: erase
// more columns than the code tolerates and the oracle must refuse those
// cells rather than fabricate a plan.
func TestOracleBeyondTolerance(t *testing.T) {
	code := codes.MustNew("star", 5)
	var lost []grid.Coord
	for col := 0; col < 4; col++ { // 4 whole columns > 3DFT tolerance
		for row := 0; row < code.Rows(); row++ {
			lost = append(lost, grid.Coord{Row: row, Col: col})
		}
	}
	oracle, err := NewOracle(code, lost)
	if err != nil {
		t.Fatal(err)
	}
	solvable := 0
	for _, c := range lost {
		if oracle.Solvable(c) {
			solvable++
		}
	}
	if solvable == len(lost) {
		t.Fatal("oracle claims to solve a 4-column erasure on a 3DFT code")
	}
	for _, c := range lost {
		if !oracle.Solvable(c) {
			if err := oracle.Check(c, chunk.New(16), func(grid.Coord, chunk.Chunk) error { return nil }); err == nil {
				t.Fatalf("Check succeeded on unsolvable cell %v", c)
			}
			break
		}
	}
}
