package verify

import (
	"fmt"
	"math"
	"math/rand"

	"fbf/internal/cache"
	"fbf/internal/grid"
)

// CacheConfig parameterizes one policy model-check run.
type CacheConfig struct {
	Policy            string
	Capacity          int
	Steps             int   // requests to replay (default 10000)
	Seed              int64 // stream RNG seed
	Universe          int   // distinct chunk ids (default 4*capacity, min 16)
	ReprioritizeEvery int   // steps between fresh FBF priority dictionaries (default 64)
}

// CacheReport summarizes one model-check run.
type CacheReport struct {
	Policy   string
	Capacity int
	Steps    int
	Stats    cache.Stats
}

// String renders the report compactly.
func (r *CacheReport) String() string {
	return fmt.Sprintf("%s(cap=%d): %d steps, %d hits / %d misses / %d evictions, zero divergence",
		r.Policy, r.Capacity, r.Steps, r.Stats.Hits, r.Stats.Misses, r.Stats.Evictions)
}

// CheckedPolicies lists the policies the checker has reference models
// for ("opt" is excluded: Belady needs the future sequence and has its
// own dedicated cross-check in internal/cache).
func CheckedPolicies() []string {
	return []string{"fbf", "fifo", "lru", "lfu", "arc", "2q", "lru2", "lrfu"}
}

// refPolicy is a reference replacement-policy model: a deliberately
// naive, slice-based transcription of the policy's published rules.
// request processes one access given the victims the production policy
// actually evicted on this step (empty on hits and capacity-free
// misses); deterministic models predict the victim themselves and the
// driver's residency diff catches any disagreement, while models with
// genuine tie-freedom (LRFU's equal-CRF blocks) validate the observed
// victim instead and adopt it.
type refPolicy interface {
	request(id cache.ChunkID, evicted []cache.ChunkID) (hit bool, err error)
	resident() []cache.ChunkID
}

// refPriorityAware mirrors cache.PriorityAware for reference models.
type refPriorityAware interface {
	setPriorities(p map[cache.ChunkID]int)
}

// newRef constructs the reference model for a policy name.
func newRef(name string, capacity int, lambda float64) (refPolicy, error) {
	switch name {
	case "fbf":
		return &refFBF{cap: capacity, prio: map[cache.ChunkID]int{}}, nil
	case "fifo":
		return &refFIFO{cap: capacity}, nil
	case "lru":
		return &refLRU{cap: capacity}, nil
	case "lfu":
		return &refLFU{cap: capacity}, nil
	case "arc":
		return &refARC{cap: capacity}, nil
	case "2q":
		return newRefTwoQ(capacity), nil
	case "lru2":
		return &refLRU2{cap: capacity}, nil
	case "lrfu":
		return &refLRFU{cap: capacity, lambda: lambda}, nil
	default:
		return nil, fmt.Errorf("verify: no reference model for policy %q", name)
	}
}

// CheckCache drives the production policy and its reference model
// through the same randomized request stream and compares hit/miss
// decisions and the full resident set step by step, plus the aggregate
// event counters at the end. Any disagreement returns an error naming
// the first divergent step.
func CheckCache(cfg CacheConfig) (*CacheReport, error) {
	if cfg.Steps <= 0 {
		cfg.Steps = 10000
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("verify: negative capacity %d", cfg.Capacity)
	}
	universe := cfg.Universe
	if universe <= 0 {
		universe = 4 * cfg.Capacity
	}
	if universe < 16 {
		universe = 16
	}
	reprio := cfg.ReprioritizeEvery
	if reprio <= 0 {
		reprio = 64
	}

	pol, err := cache.New(cfg.Policy, cfg.Capacity)
	if err != nil {
		return nil, err
	}
	lambda := 0.0
	if lp, ok := pol.(interface{ Lambda() float64 }); ok {
		lambda = lp.Lambda()
	}
	ref, err := newRef(cfg.Policy, cfg.Capacity, lambda)
	if err != nil {
		return nil, err
	}

	ids := make([]cache.ChunkID, universe)
	for k := range ids {
		ids[k] = cache.ChunkID{Stripe: k / 16, Cell: grid.Coord{Row: (k % 16) / 4, Col: k % 4}}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hot := universe / 10
	if hot < 1 {
		hot = 1
	}
	scan := 0

	var evictions uint64
	var hits, misses uint64
	for step := 0; step < cfg.Steps; step++ {
		if step%reprio == 0 {
			prio := make(map[cache.ChunkID]int)
			for _, id := range ids {
				if rng.Intn(2) == 0 {
					prio[id] = 1 + rng.Intn(4)
				}
			}
			if pa, ok := pol.(cache.PriorityAware); ok {
				pa.SetPriorities(prio)
			}
			if ra, ok := ref.(refPriorityAware); ok {
				ra.setPriorities(prio)
			}
		}

		// Mixed stream: mostly uniform with a hot set and a sequential
		// scan, exercising recency, frequency and ghost-queue behavior.
		var id cache.ChunkID
		switch draw := rng.Float64(); {
		case draw < 0.25:
			id = ids[rng.Intn(hot)]
		case draw < 0.40:
			id = ids[scan]
			scan = (scan + 1) % universe
		default:
			id = ids[rng.Intn(universe)]
		}

		before := make(map[cache.ChunkID]bool)
		for _, r := range ref.resident() {
			before[r] = true
		}
		hit := pol.Request(id)
		var evicted []cache.ChunkID
		for r := range before {
			if !pol.Contains(r) && r != id {
				evicted = append(evicted, r)
			}
		}
		evictions += uint64(len(evicted))
		if hit {
			hits++
		} else {
			misses++
		}

		refHit, err := ref.request(id, evicted)
		if err != nil {
			return nil, fmt.Errorf("verify: %s cap=%d step %d id=%v: %w", cfg.Policy, cfg.Capacity, step, id, err)
		}
		if hit != refHit {
			return nil, fmt.Errorf("verify: %s cap=%d step %d id=%v: policy says hit=%v, model says hit=%v",
				cfg.Policy, cfg.Capacity, step, id, hit, refHit)
		}
		res := ref.resident()
		if pol.Len() != len(res) {
			return nil, fmt.Errorf("verify: %s cap=%d step %d id=%v: policy holds %d chunks, model %d",
				cfg.Policy, cfg.Capacity, step, id, pol.Len(), len(res))
		}
		for _, r := range res {
			if !pol.Contains(r) {
				return nil, fmt.Errorf("verify: %s cap=%d step %d id=%v: model-resident chunk %v missing from policy",
					cfg.Policy, cfg.Capacity, step, id, r)
			}
		}
	}

	st := pol.Stats()
	if st.Hits != hits || st.Misses != misses {
		return nil, fmt.Errorf("verify: %s cap=%d: stats report %d/%d hits/misses, driver observed %d/%d",
			cfg.Policy, cfg.Capacity, st.Hits, st.Misses, hits, misses)
	}
	if st.Evictions != evictions {
		return nil, fmt.Errorf("verify: %s cap=%d: stats report %d evictions, residency diffs observed %d",
			cfg.Policy, cfg.Capacity, st.Evictions, evictions)
	}
	return &CacheReport{Policy: cfg.Policy, Capacity: cfg.Capacity, Steps: cfg.Steps, Stats: st}, nil
}

// ---- shared slice helpers ----

func sliceRemove(list []cache.ChunkID, id cache.ChunkID) []cache.ChunkID {
	for i, v := range list {
		if v == id {
			return append(list[:i:i], list[i+1:]...)
		}
	}
	return list
}

func sliceHas(list []cache.ChunkID, id cache.ChunkID) bool {
	for _, v := range list {
		if v == id {
			return true
		}
	}
	return false
}

// ---- FIFO ----

type refFIFO struct {
	cap   int
	queue []cache.ChunkID
}

func (r *refFIFO) resident() []cache.ChunkID { return r.queue }

func (r *refFIFO) request(id cache.ChunkID, _ []cache.ChunkID) (bool, error) {
	if sliceHas(r.queue, id) {
		return true, nil
	}
	if r.cap == 0 {
		return false, nil
	}
	if len(r.queue) >= r.cap {
		r.queue = r.queue[1:]
	}
	r.queue = append(r.queue, id)
	return false, nil
}

// ---- LRU ----

type refLRU struct {
	cap   int
	queue []cache.ChunkID // index 0 = LRU end
}

func (r *refLRU) resident() []cache.ChunkID { return r.queue }

func (r *refLRU) request(id cache.ChunkID, _ []cache.ChunkID) (bool, error) {
	if sliceHas(r.queue, id) {
		r.queue = append(sliceRemove(r.queue, id), id)
		return true, nil
	}
	if r.cap == 0 {
		return false, nil
	}
	if len(r.queue) >= r.cap {
		r.queue = r.queue[1:]
	}
	r.queue = append(r.queue, id)
	return false, nil
}

// ---- LFU ----

// refLFU: victim = lowest frequency, ties broken by the oldest bucket
// insertion (seq), matching frequency buckets that are LRU internally.
type refLFU struct {
	cap     int
	clock   uint64
	entries []*refLFUEntry
}

type refLFUEntry struct {
	id   cache.ChunkID
	freq uint64
	seq  uint64 // clock of the last frequency change (bucket insertion)
}

func (r *refLFU) resident() []cache.ChunkID {
	out := make([]cache.ChunkID, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.id
	}
	return out
}

func (r *refLFU) request(id cache.ChunkID, _ []cache.ChunkID) (bool, error) {
	r.clock++
	for _, e := range r.entries {
		if e.id == id {
			e.freq++
			e.seq = r.clock
			return true, nil
		}
	}
	if r.cap == 0 {
		return false, nil
	}
	if len(r.entries) >= r.cap {
		victim := 0
		for i, e := range r.entries {
			v := r.entries[victim]
			if e.freq < v.freq || (e.freq == v.freq && e.seq < v.seq) {
				victim = i
			}
		}
		r.entries = append(r.entries[:victim], r.entries[victim+1:]...)
	}
	r.entries = append(r.entries, &refLFUEntry{id: id, freq: 1, seq: r.clock})
	return false, nil
}

// ---- FBF ----

// refFBF transcribes Algorithm 1: admit into the queue matching the
// chunk's priority, demote one queue per hit (refresh recency within
// Queue1), evict Queue1 -> Queue2 -> Queue3 in LRU order.
type refFBF struct {
	cap    int
	prio   map[cache.ChunkID]int
	queues [3][]cache.ChunkID // index 0 = Queue1; slice index 0 = LRU end
}

func (r *refFBF) setPriorities(p map[cache.ChunkID]int) {
	if p == nil {
		p = map[cache.ChunkID]int{}
	}
	r.prio = p
}

func (r *refFBF) resident() []cache.ChunkID {
	var out []cache.ChunkID
	for q := range r.queues {
		out = append(out, r.queues[q]...)
	}
	return out
}

func (r *refFBF) request(id cache.ChunkID, _ []cache.ChunkID) (bool, error) {
	for q := 2; q >= 0; q-- {
		if sliceHas(r.queues[q], id) {
			r.queues[q] = sliceRemove(r.queues[q], id)
			dst := q - 1
			if dst < 0 {
				dst = 0
			}
			r.queues[dst] = append(r.queues[dst], id)
			return true, nil
		}
	}
	if r.cap == 0 {
		return false, nil
	}
	if len(r.queues[0])+len(r.queues[1])+len(r.queues[2]) >= r.cap {
		for q := 0; q < 3; q++ {
			if len(r.queues[q]) > 0 {
				r.queues[q] = r.queues[q][1:]
				break
			}
		}
	}
	p := r.prio[id]
	if p < 1 {
		p = 1
	}
	if p > 3 {
		p = 3
	}
	r.queues[p-1] = append(r.queues[p-1], id)
	return false, nil
}

// ---- ARC ----

// refARC transcribes the ARC paper's Figure 4 pseudocode with the same
// REPLACE emptiness fallback as the production cache (see
// internal/cache/arc.go).
type refARC struct {
	cap, p         int
	t1, t2, b1, b2 []cache.ChunkID
}

func (r *refARC) resident() []cache.ChunkID {
	return append(append([]cache.ChunkID{}, r.t1...), r.t2...)
}

func (r *refARC) replace(inB2 bool) {
	fromT1 := len(r.t1) >= 1 && ((inB2 && len(r.t1) == r.p) || len(r.t1) > r.p)
	if !fromT1 && len(r.t2) == 0 {
		if len(r.t1) == 0 {
			return
		}
		fromT1 = true
	}
	if fromT1 {
		id := r.t1[0]
		r.t1 = r.t1[1:]
		r.b1 = append(r.b1, id)
	} else {
		id := r.t2[0]
		r.t2 = r.t2[1:]
		r.b2 = append(r.b2, id)
	}
}

func (r *refARC) request(id cache.ChunkID, _ []cache.ChunkID) (bool, error) {
	c := r.cap
	if c == 0 {
		return false, nil
	}
	switch {
	case sliceHas(r.t1, id) || sliceHas(r.t2, id): // Case I
		r.t1 = sliceRemove(r.t1, id)
		r.t2 = append(sliceRemove(r.t2, id), id)
		return true, nil
	case sliceHas(r.b1, id): // Case II
		delta := 1
		if len(r.b2) > len(r.b1) {
			delta = len(r.b2) / len(r.b1)
		}
		r.p = min(c, r.p+delta)
		r.replace(false)
		r.b1 = sliceRemove(r.b1, id)
		r.t2 = append(r.t2, id)
		return false, nil
	case sliceHas(r.b2, id): // Case III
		delta := 1
		if len(r.b1) > len(r.b2) {
			delta = len(r.b1) / len(r.b2)
		}
		r.p = max(0, r.p-delta)
		r.replace(true)
		r.b2 = sliceRemove(r.b2, id)
		r.t2 = append(r.t2, id)
		return false, nil
	}
	// Case IV: completely new page.
	l1 := len(r.t1) + len(r.b1)
	if l1 == c {
		if len(r.t1) < c {
			r.b1 = r.b1[1:]
			r.replace(false)
		} else {
			r.t1 = r.t1[1:]
		}
	} else if l1 < c {
		total := l1 + len(r.t2) + len(r.b2)
		if total >= c {
			if total == 2*c {
				r.b2 = r.b2[1:]
			}
			r.replace(false)
		}
	}
	r.t1 = append(r.t1, id)
	return false, nil
}

// ---- 2Q ----

// refTwoQ transcribes the full 2Q of Johnson & Shasha with the same
// Kin/Kout tuning as the production cache.
type refTwoQ struct {
	cap, kin, kout  int
	a1in, a1out, am []cache.ChunkID
}

func newRefTwoQ(capacity int) *refTwoQ {
	kin := capacity / 4
	if kin < 1 && capacity > 0 {
		kin = 1
	}
	kout := capacity / 2
	if kout < 1 && capacity > 0 {
		kout = 1
	}
	return &refTwoQ{cap: capacity, kin: kin, kout: kout}
}

func (r *refTwoQ) resident() []cache.ChunkID {
	return append(append([]cache.ChunkID{}, r.a1in...), r.am...)
}

func (r *refTwoQ) reclaim() {
	if len(r.a1in) > r.kin || len(r.am) == 0 {
		id := r.a1in[0]
		r.a1in = r.a1in[1:]
		r.a1out = append(r.a1out, id)
		if len(r.a1out) > r.kout {
			r.a1out = r.a1out[1:]
		}
	} else {
		r.am = r.am[1:]
	}
}

func (r *refTwoQ) request(id cache.ChunkID, _ []cache.ChunkID) (bool, error) {
	switch {
	case sliceHas(r.am, id):
		r.am = append(sliceRemove(r.am, id), id)
		return true, nil
	case sliceHas(r.a1in, id): // probation pages stay in place
		return true, nil
	case sliceHas(r.a1out, id): // ghost hit: promote to Am
		if r.cap == 0 {
			return false, nil
		}
		r.a1out = sliceRemove(r.a1out, id)
		if len(r.a1in)+len(r.am) >= r.cap {
			r.reclaim()
		}
		r.am = append(r.am, id)
		return false, nil
	}
	if r.cap == 0 {
		return false, nil
	}
	if len(r.a1in)+len(r.am) >= r.cap {
		r.reclaim()
	}
	r.a1in = append(r.a1in, id)
	return false, nil
}

// ---- LRU-2 ----

// refLRU2: the victim is the chunk with the oldest second-most-recent
// access (no-history chunks first), ties by oldest last access.
type refLRU2 struct {
	cap     int
	clock   uint64
	entries []*refLRU2Entry
}

type refLRU2Entry struct {
	id         cache.ChunkID
	last, prev uint64
}

func (r *refLRU2) resident() []cache.ChunkID {
	out := make([]cache.ChunkID, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.id
	}
	return out
}

func (r *refLRU2) request(id cache.ChunkID, _ []cache.ChunkID) (bool, error) {
	r.clock++
	for _, e := range r.entries {
		if e.id == id {
			e.prev = e.last
			e.last = r.clock
			return true, nil
		}
	}
	if r.cap == 0 {
		return false, nil
	}
	if len(r.entries) >= r.cap {
		victim := 0
		for i, e := range r.entries {
			v := r.entries[victim]
			if e.prev < v.prev || (e.prev == v.prev && e.last < v.last) {
				victim = i
			}
		}
		r.entries = append(r.entries[:victim], r.entries[victim+1:]...)
	}
	r.entries = append(r.entries, &refLRU2Entry{id: id, last: r.clock})
	return false, nil
}

// ---- LRFU ----

// refLRFU recomputes every resident block's CRF from its stored value
// and checks that the production policy's victim carries the minimum
// CRF (within float tolerance) — the one model with genuine
// tie-freedom, since equal CRFs permit either victim. The observed
// victim is adopted so the models stay in lockstep.
type refLRFU struct {
	cap     int
	lambda  float64
	clock   uint64
	entries []*refLRFUEntry
}

type refLRFUEntry struct {
	id   cache.ChunkID
	crf  float64 // valued at last
	last uint64
}

func (r *refLRFU) crfAt(e *refLRFUEntry, now uint64) float64 {
	return e.crf * math.Pow(0.5, r.lambda*float64(now-e.last))
}

func (r *refLRFU) resident() []cache.ChunkID {
	out := make([]cache.ChunkID, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.id
	}
	return out
}

func (r *refLRFU) request(id cache.ChunkID, evicted []cache.ChunkID) (bool, error) {
	r.clock++
	for _, e := range r.entries {
		if e.id == id {
			e.crf = 1 + r.crfAt(e, r.clock)
			e.last = r.clock
			return true, nil
		}
	}
	if r.cap == 0 {
		return false, nil
	}
	if len(r.entries) >= r.cap {
		if len(evicted) != 1 {
			return false, fmt.Errorf("full LRFU cache evicted %d chunks on a miss, want 1", len(evicted))
		}
		minCRF := math.Inf(1)
		victimIdx := -1
		for i, e := range r.entries {
			v := r.crfAt(e, r.clock)
			if v < minCRF {
				minCRF = v
			}
			if e.id == evicted[0] {
				victimIdx = i
			}
		}
		if victimIdx < 0 {
			return false, fmt.Errorf("policy evicted %v which the model does not hold", evicted[0])
		}
		got := r.crfAt(r.entries[victimIdx], r.clock)
		if got > minCRF*(1+1e-9)+1e-12 {
			return false, fmt.Errorf("policy evicted %v with CRF %g, minimum resident CRF is %g", evicted[0], got, minCRF)
		}
		r.entries = append(r.entries[:victimIdx], r.entries[victimIdx+1:]...)
	}
	r.entries = append(r.entries, &refLRFUEntry{id: id, crf: 1, last: r.clock})
	return false, nil
}
