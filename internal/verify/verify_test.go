package verify

import (
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
)

// sweepPrimes gives every code family two primes, as the conformance
// contract requires: the smallest supported geometry and a larger one
// whose diagonal classes wrap differently.
var sweepPrimes = map[string][]int{
	"star":       {5, 7},
	"triplestar": {5, 7},
	"tip":        {5, 7},
	"hdd1":       {5, 7},
}

// TestSweepAllCodes is the acceptance sweep: all four codes at two
// primes each, all three strategies, every single-disk partial-stripe
// error pattern, byte-verified against the gf2 decoder oracle.
func TestSweepAllCodes(t *testing.T) {
	for _, name := range codes.Names() {
		primes := sweepPrimes[name]
		if len(primes) != 2 {
			t.Fatalf("no sweep primes configured for code %q", name)
		}
		for _, p := range primes {
			t.Run(codes.MustNew(name, p).String(), func(t *testing.T) {
				report, err := SweepStripes(StripeConfig{
					Code: codes.MustNew(name, p),
					Seed: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				if report.Patterns == 0 || report.Recovered == 0 || report.Oracle == 0 {
					t.Fatalf("degenerate sweep: %v", report)
				}
				if report.Schemes != report.Patterns*len(Strategies()) {
					t.Errorf("schemes = %d, want patterns (%d) x strategies (%d)",
						report.Schemes, report.Patterns, len(Strategies()))
				}
				// Every scheme rebuilds every lost chunk, and the oracle
				// re-derives each one independently.
				if report.Oracle != report.Recovered {
					t.Errorf("oracle checks (%d) != chain recoveries (%d)", report.Oracle, report.Recovered)
				}
				t.Log(report)
			})
		}
	}
}

// TestSweepSeedVariation re-runs one sweep per family with different
// stripe contents; recovery correctness must not depend on the data.
func TestSweepSeedVariation(t *testing.T) {
	for _, name := range codes.Names() {
		for _, seed := range []int64{2, 99} {
			if _, err := SweepStripes(StripeConfig{Code: codes.MustNew(name, 5), Seed: seed}); err != nil {
				t.Errorf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

// TestSweepChunkSizes verifies the harness at a chunk size that is not
// a multiple of 8 (exercising the XOR kernel's byte tail) and at the
// paper's 32 KB.
func TestSweepChunkSizes(t *testing.T) {
	for _, size := range []int{13, 32 * 1024} {
		if _, err := SweepStripes(StripeConfig{Code: codes.MustNew("tip", 5), ChunkSize: size, Seed: 3}); err != nil {
			t.Errorf("chunk size %d: %v", size, err)
		}
	}
}

// TestCheckPatternRejectsInvalid covers the harness's own input
// validation paths.
func TestCheckPatternRejectsInvalid(t *testing.T) {
	code := codes.MustNew("tip", 5)
	bad := core.PartialStripeError{Stripe: 0, Disk: code.Disks(), Row: 0, Size: 1}
	if err := CheckPattern(code, bad, core.StrategyLooped, 16, 1); err == nil {
		t.Fatal("out-of-range disk accepted")
	}
	if _, err := SweepStripes(StripeConfig{}); err == nil {
		t.Fatal("nil code accepted")
	}
}

// TestCheckPatternDetectsBrokenScheme plants a corrupted scheme
// executor double-check: a chain that excludes a fetched cell must make
// the byte diff fire. We simulate by checking a pattern against a code
// whose chunk contents were generated with a different seed than the
// harness expects — i.e., the harness must not silently pass when
// the underlying XOR identity is broken. Since the public API always
// materializes consistently, we instead assert that checkPattern flags
// a stripe that fails parity verification.
func TestHarnessRejectsCorruptStripe(t *testing.T) {
	code := codes.MustNew("tip", 5)
	s := code.MaterializeStripe(1, 16)
	s[0][0] ^= 0xFF // corrupt one byte: parity no longer holds
	if code.Verify(s) {
		t.Fatal("corruption not visible to Verify")
	}
	e := core.PartialStripeError{Stripe: 0, Disk: 0, Row: 0, Size: 1}
	// The corrupted cell participates in chains; chain recovery of a
	// different cell through a chain containing cell 0 must now diverge
	// from the original bytes.
	if _, _, err := checkPattern(code, s, e, core.StrategyTypical, nil); err == nil {
		t.Fatal("harness passed a stripe with broken parity")
	}
}
