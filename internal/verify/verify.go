// Package verify is the data-plane conformance harness for the
// simulator: it pushes real bytes through every failure-and-repair path
// the simulator otherwise only counts.
//
// The simulator's figures rest on two correctness claims that I/O
// accounting alone cannot establish:
//
//  1. Recovery schemes are sound — for every partial stripe error the
//     chain selected for each lost chunk really reconstructs that
//     chunk's bytes, for every code, strategy and error geometry.
//  2. Cache policies faithfully implement their published replacement
//     rules — a subtle eviction bug would silently skew every hit-ratio
//     curve.
//
// The stripe harness (SweepStripes, CheckPattern) encodes seeded-random
// stripe contents with a code, injects an error pattern, executes the
// exact recovery scheme core.GenerateScheme produces — performing the
// chain XORs on real bytes, in replay order, writing each recovered
// chunk back like the engine's spare write — and asserts byte-identical
// recovery. An independent oracle re-derives every lost cell through
// the gf2 erasure decoder (codes.Recover) and the two answers are
// diffed, so a bug would have to hit two disjoint code paths
// identically to escape.
//
// The cache model checker (CheckCache) drives a production policy and a
// deliberately naive slice-based reference model through the same
// randomized request stream and compares hit/miss decisions, eviction
// counts and the full resident set after every step.
package verify

import (
	"bytes"
	"fmt"

	"fbf/internal/chunk"
	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/grid"
)

// garbageByte overwrites lost chunks before recovery so a scheme that
// accidentally reads a "lost" cell sees garbage rather than the
// original bytes and the corruption is caught by the final diff.
const garbageByte = 0xDB

// Strategies lists every chain-selection strategy the harness sweeps.
func Strategies() []core.Strategy {
	return []core.Strategy{core.StrategyTypical, core.StrategyLooped, core.StrategyGreedy}
}

// StripeConfig parameterizes one code's error-pattern sweep.
type StripeConfig struct {
	Code       *codes.Code
	Strategies []core.Strategy // default: all three
	ChunkSize  int             // bytes per chunk (default 64; byte-level fidelity does not need 32 KB)
	Seed       int64           // stripe-content seed
}

// StripeReport summarizes one sweep.
type StripeReport struct {
	Code      string
	P         int
	Patterns  int // distinct (disk, row, size) error patterns exercised
	Schemes   int // schemes executed (patterns x strategies)
	Recovered int // lost chunks rebuilt through their chain and byte-checked
	Oracle    int // lost cells independently re-derived via the gf2 decoder
}

// String renders the report compactly.
func (r *StripeReport) String() string {
	return fmt.Sprintf("%s(p=%d): %d patterns, %d schemes, %d chunks byte-verified, %d oracle cross-checks",
		r.Code, r.P, r.Patterns, r.Schemes, r.Recovered, r.Oracle)
}

// SweepStripes exercises every single-disk partial-stripe error pattern
// of the code — all disks x all run lengths (1..p-1, clamped to the
// stripe height) x all start rows, which includes the boundary cases:
// size-1 errors, maximal runs, whole-column losses and runs touching the
// first and last row — under every configured strategy, and
// byte-verifies each recovery against the gf2 decoder oracle. It stops
// at the first divergence.
func SweepStripes(cfg StripeConfig) (*StripeReport, error) {
	code := cfg.Code
	if code == nil {
		return nil, fmt.Errorf("verify: nil code")
	}
	strategies := cfg.Strategies
	if len(strategies) == 0 {
		strategies = Strategies()
	}
	chunkSize := cfg.ChunkSize
	if chunkSize <= 0 {
		chunkSize = 64
	}

	original := code.MaterializeStripe(cfg.Seed, chunkSize)
	if !code.Verify(original) {
		return nil, fmt.Errorf("verify: %v: materialized stripe fails parity verification", code)
	}

	// One pool serves the whole sweep: the damaged/oracled stripe copies
	// and XOR accumulators of every (pattern, strategy) pair recycle the
	// same buffers instead of re-allocating thousands of chunks.
	pool := chunk.NewPool(chunkSize)
	report := &StripeReport{Code: code.Name(), P: code.P()}
	maxSize := code.MaxPartialSize()
	if maxSize > code.Rows() {
		maxSize = code.Rows()
	}
	for disk := 0; disk < code.Disks(); disk++ {
		for size := 1; size <= maxSize; size++ {
			for row := 0; row+size <= code.Rows(); row++ {
				e := core.PartialStripeError{Stripe: 0, Disk: disk, Row: row, Size: size}
				if err := e.Validate(code); err != nil {
					return nil, fmt.Errorf("verify: generated invalid pattern: %w", err)
				}
				report.Patterns++
				for _, strat := range strategies {
					rec, orc, err := checkPattern(code, original, e, strat, pool)
					if err != nil {
						return nil, fmt.Errorf("verify: %v %v strategy=%v: %w", code, e, strat, err)
					}
					report.Schemes++
					report.Recovered += rec
					report.Oracle += orc
				}
			}
		}
	}
	return report, nil
}

// CheckPattern materializes a stripe and byte-verifies the recovery of
// one error pattern under one strategy, chain execution and gf2 oracle
// both. It is the single-pattern entry point used by the fuzz target.
func CheckPattern(code *codes.Code, e core.PartialStripeError, strat core.Strategy, chunkSize int, seed int64) error {
	if chunkSize <= 0 {
		chunkSize = 64
	}
	if err := e.Validate(code); err != nil {
		return err
	}
	original := code.MaterializeStripe(seed, chunkSize)
	if !code.Verify(original) {
		return fmt.Errorf("verify: %v: materialized stripe fails parity verification", code)
	}
	if _, _, err := checkPattern(code, original, e, strat, nil); err != nil {
		return fmt.Errorf("verify: %v %v strategy=%v: %w", code, e, strat, err)
	}
	return nil
}

// checkPattern runs the full check for one (pattern, strategy) against
// a pre-materialized, pre-verified stripe. It returns the number of
// chain-recovered chunks and oracle-checked cells. All scratch buffers
// (stripe copies, XOR accumulators) come from pool; a nil pool gets a
// private one. Error paths may leave buffers unreturned — errors abort
// the sweep, so nothing is lost.
func checkPattern(code *codes.Code, original []chunk.Chunk, e core.PartialStripeError, strat core.Strategy, pool *chunk.Pool) (recovered, oracle int, err error) {
	if pool == nil {
		pool = chunk.NewPool(len(original[0]))
	}
	lost := e.LostCells()
	scheme, err := core.GenerateScheme(code, e, strat)
	if err != nil {
		// Single-disk partial errors must always be schedulable: if the
		// gf2 decoder can solve the pattern, a failed scheme generation
		// is a generator bug, not an unrecoverable pattern.
		if _, oerr := code.RecoveryPlan(lost); oerr == nil {
			return 0, 0, fmt.Errorf("scheme generation failed (%v) but the gf2 decoder recovers the pattern", err)
		}
		return 0, 0, fmt.Errorf("pattern unrecoverable by both scheme generation (%v) and the gf2 decoder", err)
	}
	if err := checkSchemeShape(code, scheme, lost); err != nil {
		return 0, 0, err
	}

	// Chain execution: damage the lost cells, then replay the scheme the
	// way the reconstruction engine does — XOR each selected chain's
	// surviving members, write the result back (the spare write), next
	// chain. Reading from the damaged stripe means a scheme that fetches
	// a lost (or not-yet-recovered) cell corrupts its output and fails
	// the diff below.
	damaged := damageStripe(original, code, lost, pool)
	acc := pool.GetRaw() // every path below overwrites it fully
	for _, sel := range scheme.Selected {
		if len(sel.Fetch) == 0 {
			clear(acc)
		} else {
			// Copy-first accumulation: the first member overwrites the
			// dirty buffer, the rest XOR in.
			copy(acc, damaged[code.CellIndex(sel.Fetch[0])])
			for _, m := range sel.Fetch[1:] {
				chunk.XORInto(acc, damaged[code.CellIndex(m)])
			}
		}
		want := original[code.CellIndex(sel.Lost)]
		if !acc.Equal(want) {
			return 0, 0, fmt.Errorf("chain %v rebuilds %v to wrong bytes (first diff at offset %d)",
				sel.Chain, sel.Lost, firstDiff(acc, want))
		}
		copy(damaged[code.CellIndex(sel.Lost)], acc)
		recovered++
	}
	for idx := range damaged {
		if !damaged[idx].Equal(original[idx]) {
			return 0, 0, fmt.Errorf("stripe cell %v differs after full scheme replay", code.CoordOf(idx))
		}
	}

	// Independent oracle: re-derive every lost cell with the generic
	// GF(2) erasure decoder on a second damaged copy and diff both
	// against the original and against the chain-recovered bytes.
	plan, err := code.RecoveryPlan(lost)
	if err != nil {
		return 0, 0, fmt.Errorf("gf2 oracle cannot solve pattern the scheme recovered: %v", err)
	}
	lostSet := make(map[grid.Coord]bool, len(lost))
	for _, c := range lost {
		lostSet[c] = true
	}
	oracled := damageStripe(original, code, lost, pool)
	for _, cell := range lost {
		terms := plan[cell]
		clear(acc)
		for _, t := range terms {
			if lostSet[t] {
				return 0, 0, fmt.Errorf("gf2 plan for %v reads lost cell %v", cell, t)
			}
			chunk.XORInto(acc, oracled[code.CellIndex(t)])
		}
		if !acc.Equal(original[code.CellIndex(cell)]) {
			return 0, 0, fmt.Errorf("gf2 oracle rebuilds %v to wrong bytes (first diff at offset %d)",
				cell, firstDiff(acc, original[code.CellIndex(cell)]))
		}
		if !acc.Equal(damaged[code.CellIndex(cell)]) {
			return 0, 0, fmt.Errorf("chain recovery and gf2 oracle disagree on %v", cell)
		}
		oracle++
	}
	pool.Put(acc)
	releaseStripe(pool, damaged)
	releaseStripe(pool, oracled)
	return recovered, oracle, nil
}

// checkSchemeShape asserts the structural invariants of a generated
// scheme: one selected chain per lost cell in order, each chain really
// containing its lost cell and no other, fetch lists equal to the
// chain's survivors, and the priority dictionary equal to the
// chain-sharing counts recomputed from scratch.
func checkSchemeShape(code *codes.Code, s *core.Scheme, lost []grid.Coord) error {
	if len(s.Selected) != len(lost) {
		return fmt.Errorf("scheme selects %d chains for %d lost chunks", len(s.Selected), len(lost))
	}
	lostSet := make(map[grid.Coord]bool, len(lost))
	for _, c := range lost {
		lostSet[c] = true
	}
	recount := make(map[grid.Coord]int)
	for i, sel := range s.Selected {
		if sel.Lost != lost[i] {
			return fmt.Errorf("selected chain %d repairs %v, want %v", i, sel.Lost, lost[i])
		}
		ch, ok := code.Layout().Chain(sel.Chain)
		if !ok {
			return fmt.Errorf("selected chain %v does not exist in the layout", sel.Chain)
		}
		if !ch.Contains(sel.Lost) {
			return fmt.Errorf("chain %v does not contain its lost cell %v", sel.Chain, sel.Lost)
		}
		survivors := ch.Survivors(map[grid.Coord]bool{sel.Lost: true})
		if len(survivors) != len(sel.Fetch) {
			return fmt.Errorf("chain %v fetch list has %d cells, survivors %d", sel.Chain, len(sel.Fetch), len(survivors))
		}
		for j, m := range sel.Fetch {
			if m != survivors[j] {
				return fmt.Errorf("chain %v fetch[%d] = %v, want survivor %v", sel.Chain, j, m, survivors[j])
			}
			if lostSet[m] {
				return fmt.Errorf("chain %v fetches lost cell %v", sel.Chain, m)
			}
			recount[m]++
		}
	}
	if len(recount) != len(s.Priorities) {
		return fmt.Errorf("priority dictionary has %d chunks, fetch lists reference %d", len(s.Priorities), len(recount))
	}
	for cell, n := range recount {
		if s.Priorities[cell] != n {
			return fmt.Errorf("priority of %v is %d, recounted %d", cell, s.Priorities[cell], n)
		}
	}
	if s.UniqueFetches() != len(recount) {
		return fmt.Errorf("UniqueFetches() = %d, want %d", s.UniqueFetches(), len(recount))
	}
	return nil
}

// damageStripe deep-copies the stripe and overwrites the lost cells
// with garbage. With a non-nil pool the copies are drawn from it
// (GetRaw — the copy overwrites every byte); release with releaseStripe.
func damageStripe(original []chunk.Chunk, code *codes.Code, lost []grid.Coord, pool *chunk.Pool) []chunk.Chunk {
	out := make([]chunk.Chunk, len(original))
	for i, c := range original {
		if pool != nil {
			out[i] = pool.GetRaw()
		} else {
			out[i] = make(chunk.Chunk, len(c))
		}
		copy(out[i], c)
	}
	for _, cell := range lost {
		c := out[code.CellIndex(cell)]
		for i := range c {
			c[i] = garbageByte
		}
	}
	return out
}

// releaseStripe returns a damageStripe copy's chunks to the pool.
func releaseStripe(pool *chunk.Pool, s []chunk.Chunk) {
	for _, c := range s {
		pool.Put(c)
	}
}

// firstDiff returns the first differing byte offset of two equal-length
// buffers, or -1.
func firstDiff(a, b chunk.Chunk) int {
	if bytes.Equal(a, b) {
		return -1
	}
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return len(a)
}
