package verify

import (
	"fmt"

	"fbf/internal/chunk"
	"fbf/internal/codes"
	"fbf/internal/grid"
)

// Oracle is the independent GF(2) recovery cross-check, packaged for
// callers that repair real bytes incrementally rather than holding a
// whole stripe in memory (the storage engine's rebuild.Service). It
// wraps the same decoder plan checkPattern diffs schemes against: every
// solvable lost cell expressed as a XOR of surviving cells, derived by
// Gaussian elimination — a code path disjoint from parity-chain
// selection, so a scheme bug and a decoder bug would have to agree to
// escape.
type Oracle struct {
	code    *codes.Code
	plan    map[grid.Coord][]grid.Coord
	lostSet map[grid.Coord]bool
}

// NewOracle builds the decoder plan for one stripe's lost-cell set.
// Cells beyond the code's tolerance are simply absent from the plan
// (Solvable reports them); an out-of-bounds cell is an error.
func NewOracle(code *codes.Code, lost []grid.Coord) (*Oracle, error) {
	plan, _, err := code.PartialRecoveryPlan(lost)
	if err != nil {
		return nil, err
	}
	lostSet := make(map[grid.Coord]bool, len(lost))
	for _, c := range lost {
		lostSet[c] = true
	}
	return &Oracle{code: code, plan: plan, lostSet: lostSet}, nil
}

// Solvable reports whether the decoder can re-derive the cell at all.
func (o *Oracle) Solvable(cell grid.Coord) bool {
	_, ok := o.plan[cell]
	return ok
}

// Sources returns the surviving cells whose XOR re-derives cell, or nil
// when the decoder cannot solve it.
func (o *Oracle) Sources(cell grid.Coord) []grid.Coord { return o.plan[cell] }

// Check re-derives cell through the decoder plan — reading each source
// cell's bytes via read — and diffs the result against the recovered
// bytes the caller produced through its parity chain. A mismatch means
// chain recovery and the GF(2) decoder disagree: corruption in flight,
// a bad chain, or a decoder bug. The read callback must return
// surviving (or already-repaired) bytes; the oracle never asks for a
// cell in the lost set.
func (o *Oracle) Check(cell grid.Coord, recovered chunk.Chunk, read func(grid.Coord, chunk.Chunk) error) error {
	sources, ok := o.plan[cell]
	if !ok {
		return fmt.Errorf("verify: oracle cannot solve %v", cell)
	}
	acc := chunk.New(len(recovered))
	buf := chunk.New(len(recovered))
	for _, src := range sources {
		if o.lostSet[src] {
			return fmt.Errorf("verify: oracle plan for %v reads lost cell %v", cell, src)
		}
		if err := read(src, buf); err != nil {
			return fmt.Errorf("verify: oracle read %v: %w", src, err)
		}
		chunk.XORInto(acc, buf)
	}
	if !acc.Equal(recovered) {
		return fmt.Errorf("verify: chain recovery and gf2 oracle disagree on %v (first diff at offset %d)",
			cell, firstDiff(acc, recovered))
	}
	return nil
}
