package verify

import (
	"strings"
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/grid"
)

// TestSweepEscalations byte-verifies regenerated recovery schemes for
// every code family: URE escalations, cascading column failures within
// tolerance, and beyond-tolerance patterns whose loss verdicts must
// match the gf2 oracle.
func TestSweepEscalations(t *testing.T) {
	for _, name := range codes.Names() {
		for _, p := range []int{5, 7} {
			code := codes.MustNew(name, p)
			t.Run(code.String(), func(t *testing.T) {
				report, err := SweepEscalations(StripeConfig{Code: code, Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				if report.Schemes == 0 || report.Recovered == 0 {
					t.Fatalf("empty sweep: %v", report)
				}
				// The three-extra-columns cases must exercise the
				// graceful-loss path on every 3DFT code.
				if report.Unsolvable == 0 {
					t.Errorf("no unsolvable cells confirmed: %v", report)
				}
				if !strings.Contains(report.String(), "byte-verified") {
					t.Errorf("report string: %q", report.String())
				}
			})
		}
	}
}

// TestCheckEscalatedRecoveryRejectsBadInputs covers the guard rails.
func TestCheckEscalatedRecoveryRejectsBadInputs(t *testing.T) {
	code := codes.MustNew("tip", 5)
	bad := core.PartialStripeError{Stripe: 0, Disk: code.Disks(), Row: 0, Size: 1}
	if _, _, err := CheckEscalatedRecovery(code, bad, nil, nil, core.StrategyLooped, 64, 1); err == nil {
		t.Error("invalid error pattern accepted")
	}
	good := core.PartialStripeError{Stripe: 0, Disk: 0, Row: 0, Size: 1}
	if _, _, err := CheckEscalatedRecovery(code, good, []grid.Coord{{Row: 0, Col: code.Disks()}}, nil, core.StrategyLooped, 64, 1); err == nil {
		t.Error("out-of-bounds escalated cell accepted")
	}
}

// TestEscalatedRecoveryMatchesPlainGeneration pins that with no
// escalations and no failed columns a regenerated scheme recovers the
// same bytes a plain scheme does — the conformance harness and the
// original harness agree on the shared subset.
func TestEscalatedRecoveryMatchesPlainGeneration(t *testing.T) {
	code := codes.MustNew("star", 7)
	e := core.PartialStripeError{Stripe: 0, Disk: 2, Row: 1, Size: 3}
	rec, uns, err := CheckEscalatedRecovery(code, e, nil, nil, core.StrategyLooped, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rec != e.Size || uns != 0 {
		t.Errorf("recovered %d cells (%d unsolvable), want %d (0)", rec, uns, e.Size)
	}
	if err := CheckPattern(code, e, core.StrategyLooped, 64, 7); err != nil {
		t.Errorf("plain harness disagrees: %v", err)
	}
}
