package verify

import (
	"fmt"
	"sync"
	"testing"

	"fbf/internal/codes"
	"fbf/internal/core"
)

// fuzzPrimes is the prime menu the fuzzer indexes into: the smallest
// geometry each family supports in its verified regime up to the
// paper's largest evaluated prime.
var fuzzPrimes = []int{5, 7, 11, 13}

// codeCache memoizes code construction across fuzz iterations; building
// a code runs GF(2) elimination and would dominate the fuzz loop.
var codeCache sync.Map // "name/p" -> *codes.Code

func cachedCode(tb testing.TB, name string, p int) *codes.Code {
	key := fmt.Sprintf("%s/%d", name, p)
	if c, ok := codeCache.Load(key); ok {
		return c.(*codes.Code)
	}
	c, err := codes.New(name, p)
	if err != nil {
		tb.Fatalf("codes.New(%s, %d): %v", name, p, err)
	}
	codeCache.Store(key, c)
	return c
}

// FuzzSchemeRecovery fuzzes the full scheme-generation-and-replay
// pipeline: an arbitrary (code, prime, error pattern, strategy, data
// seed) tuple must either be rejected by validation or recover
// byte-identically through both the selected chains and the gf2
// decoder oracle. The checked-in corpus (testdata/fuzz) pins the
// known-tricky geometries so plain `go test` replays them as
// regression cases.
func FuzzSchemeRecovery(f *testing.F) {
	// Smallest prime, first disk, single chunk.
	f.Add(0, 0, 0, 0, 1, 0, int64(1))
	// Maximal error run on each family (size = p-1 = whole column).
	f.Add(1, 0, 2, 0, 4, 1, int64(2))
	// Chain-wrap case: run ending on the last row, diagonal-first.
	f.Add(2, 1, 3, 2, 4, 1, int64(3))
	// Parity-column error on STAR's anti-diagonal disk.
	f.Add(1, 1, 9, 1, 3, 2, int64(4))
	f.Fuzz(func(t *testing.T, codeIdx, pIdx, disk, row, size, strat int, seed int64) {
		names := codes.Names()
		if codeIdx < 0 || codeIdx >= len(names) || pIdx < 0 || pIdx >= len(fuzzPrimes) {
			t.Skip()
		}
		if strat < 0 || strat >= len(Strategies()) {
			t.Skip()
		}
		code := cachedCode(t, names[codeIdx], fuzzPrimes[pIdx])
		e := core.PartialStripeError{Stripe: 0, Disk: disk, Row: row, Size: size}
		if err := e.Validate(code); err != nil {
			t.Skip()
		}
		if err := CheckPattern(code, e, Strategies()[strat], 32, seed); err != nil {
			t.Fatal(err)
		}
	})
}
