package verify

import (
	"fmt"

	"fbf/internal/chunk"
	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/grid"
)

// EscalationReport summarizes one escalated-pattern conformance sweep.
type EscalationReport struct {
	Code     string
	P        int
	Patterns int // escalated/cascading erasure patterns exercised
	Schemes  int // regenerated schemes executed
	// Recovered counts repair cells rebuilt through regenerated chains
	// (decoder-fallback chains included) and byte-checked; Unsolvable
	// counts repair cells correctly reported lost, cross-checked against
	// the gf2 oracle.
	Recovered  int
	Unsolvable int
}

// String renders the report compactly.
func (r *EscalationReport) String() string {
	return fmt.Sprintf("%s(p=%d): %d patterns, %d regenerated schemes, %d chunks byte-verified, %d unsolvable cells oracle-confirmed",
		r.Code, r.P, r.Patterns, r.Schemes, r.Recovered, r.Unsolvable)
}

// CheckEscalatedRecovery byte-verifies one regenerated recovery scheme —
// the planning step the rebuild engine performs after a URE escalates a
// surviving chunk to lost (escalated) or whole disks fail mid-rebuild
// (failedCols). It mirrors the engine's inputs exactly: the repair set
// is the group's cells plus the escalations, and every other cell on a
// failed column is unavailable (readable from nowhere) without being a
// repair target.
//
// Three properties are checked: each repair cell is either rebuilt or
// reported lost (exactly once), rebuilt cells byte-match the original
// stripe contents after replaying the scheme on a damaged copy, and
// cells reported lost are confirmed unsolvable by the independent gf2
// oracle — the engine must never declare data loss the decoder could
// have prevented, nor claim recovery it cannot back with bytes.
func CheckEscalatedRecovery(code *codes.Code, e core.PartialStripeError, escalated []grid.Coord, failedCols []int, strat core.Strategy, chunkSize int, seed int64) (recovered, unsolvable int, err error) {
	if chunkSize <= 0 {
		chunkSize = 64
	}
	if err := e.Validate(code); err != nil {
		return 0, 0, err
	}
	original := code.MaterializeStripe(seed, chunkSize)
	if !code.Verify(original) {
		return 0, 0, fmt.Errorf("verify: %v: materialized stripe fails parity verification", code)
	}

	// Build repair and unavailable sets exactly like the engine.
	repairSet := make(map[grid.Coord]bool)
	var repair []grid.Coord
	for _, c := range append(e.LostCells(), escalated...) {
		if !repairSet[c] {
			repairSet[c] = true
			repair = append(repair, c)
		}
	}
	var unavailable []grid.Coord
	for _, col := range failedCols {
		for row := 0; row < code.Rows(); row++ {
			c := grid.Coord{Row: row, Col: col}
			if !repairSet[c] {
				unavailable = append(unavailable, c)
			}
		}
	}

	scheme, lost, err := core.RegenerateScheme(code, e, repair, unavailable, strat)
	if err != nil {
		return 0, 0, fmt.Errorf("verify: regeneration failed for %v escalated=%v failedCols=%v: %w", e, escalated, failedCols, err)
	}

	// Accounting: every repair cell rebuilt or lost, exactly once.
	seen := make(map[grid.Coord]int, len(repair))
	for _, sel := range scheme.Selected {
		seen[sel.Lost]++
	}
	for _, c := range lost {
		seen[c]++
	}
	for _, c := range repair {
		if seen[c] != 1 {
			return 0, 0, fmt.Errorf("verify: repair cell %v planned %d times (want exactly once across chains and loss list)", c, seen[c])
		}
	}
	if len(seen) != len(repair) {
		return 0, 0, fmt.Errorf("verify: scheme plans %d cells for %d repair targets", len(seen), len(repair))
	}

	// Replay the scheme on a damaged stripe: repair and unavailable
	// cells hold garbage, chains execute in order writing results back,
	// so a chain that reads an unrecovered or unavailable cell corrupts
	// its output and fails the diff.
	damaged := damageStripe(original, code, append(append([]grid.Coord{}, repair...), unavailable...), nil)
	for _, sel := range scheme.Selected {
		acc := chunk.New(chunkSize)
		for _, m := range sel.Fetch {
			chunk.XORInto(acc, damaged[code.CellIndex(m)])
		}
		want := original[code.CellIndex(sel.Lost)]
		if !acc.Equal(want) {
			kind := "chain"
			if sel.Decoded {
				kind = "decoded"
			}
			return 0, 0, fmt.Errorf("verify: %s recovery of %v yields wrong bytes (first diff at offset %d)",
				kind, sel.Lost, firstDiff(acc, want))
		}
		copy(damaged[code.CellIndex(sel.Lost)], acc)
		recovered++
	}

	// Oracle cross-check of the loss verdicts: the gf2 decoder, given
	// the full erasure pattern, must agree that each lost cell is
	// unsolvable — and that no solvable repair cell was abandoned.
	allLost := append(append([]grid.Coord{}, repair...), unavailable...)
	_, unsolved, err := code.PartialRecoveryPlan(allLost)
	if err != nil {
		return 0, 0, fmt.Errorf("verify: oracle rejected the erasure pattern: %w", err)
	}
	unsolvedSet := make(map[grid.Coord]bool, len(unsolved))
	for _, c := range unsolved {
		unsolvedSet[c] = true
	}
	lostSet := make(map[grid.Coord]bool, len(lost))
	for _, c := range lost {
		lostSet[c] = true
		if !unsolvedSet[c] {
			return 0, 0, fmt.Errorf("verify: cell %v reported lost but the gf2 oracle solves it", c)
		}
		unsolvable++
	}
	for _, c := range repair {
		if unsolvedSet[c] && !lostSet[c] {
			return 0, 0, fmt.Errorf("verify: cell %v claimed recovered but the gf2 oracle cannot solve it", c)
		}
	}
	return recovered, unsolvable, nil
}

// SweepEscalations exercises regenerated recovery schemes across the
// escalation scenarios the fault-injection engine produces: for every
// disk's maximal partial-stripe error it escalates each surviving cell
// in turn (the URE ladder), fails each other column (a second disk
// failure), fails two (a third), and fails three (beyond any 3DFT
// code's tolerance — the graceful-loss path), byte-verifying every
// regenerated scheme against the gf2 oracle. It stops at the first
// divergence.
func SweepEscalations(cfg StripeConfig) (*EscalationReport, error) {
	code := cfg.Code
	if code == nil {
		return nil, fmt.Errorf("verify: nil code")
	}
	strategies := cfg.Strategies
	if len(strategies) == 0 {
		strategies = Strategies()
	}
	report := &EscalationReport{Code: code.Name(), P: code.P()}
	size := code.MaxPartialSize()
	if size > code.Rows() {
		size = code.Rows()
	}
	check := func(e core.PartialStripeError, escalated []grid.Coord, failedCols []int) error {
		report.Patterns++
		for _, strat := range strategies {
			rec, uns, err := CheckEscalatedRecovery(code, e, escalated, failedCols, strat, cfg.ChunkSize, cfg.Seed)
			if err != nil {
				return fmt.Errorf("%v escalated=%v failedCols=%v strategy=%v: %w", e, escalated, failedCols, strat, err)
			}
			report.Schemes++
			report.Recovered += rec
			report.Unsolvable += uns
		}
		return nil
	}
	for d := 0; d < code.Disks(); d++ {
		e := core.PartialStripeError{Stripe: 0, Disk: d, Row: 0, Size: size}
		// URE ladder: every surviving cell escalated on its own.
		for col := 0; col < code.Disks(); col++ {
			if col == d {
				continue
			}
			for row := 0; row < code.Rows(); row++ {
				if err := check(e, []grid.Coord{{Row: row, Col: col}}, nil); err != nil {
					return nil, fmt.Errorf("verify: %w", err)
				}
			}
		}
		// Cascading whole-disk failures: one, two and (beyond 3DFT
		// tolerance, exercising the graceful-loss verdicts) three more
		// columns.
		others := make([]int, 0, code.Disks()-1)
		for col := 0; col < code.Disks(); col++ {
			if col != d {
				others = append(others, col)
			}
		}
		for i := 0; i < len(others); i++ {
			if err := check(e, nil, others[i:i+1]); err != nil {
				return nil, fmt.Errorf("verify: %w", err)
			}
		}
		for i := 0; i+1 < len(others); i += 2 {
			if err := check(e, nil, others[i:i+2]); err != nil {
				return nil, fmt.Errorf("verify: %w", err)
			}
		}
		for i := 0; i+2 < len(others); i += 3 {
			if err := check(e, nil, others[i:i+3]); err != nil {
				return nil, fmt.Errorf("verify: %w", err)
			}
		}
		// A URE on top of a dead disk — the engine's worst common case.
		esc := grid.Coord{Row: code.Rows() / 2, Col: others[len(others)-1]}
		if err := check(e, []grid.Coord{esc}, others[:1]); err != nil {
			return nil, fmt.Errorf("verify: %w", err)
		}
	}
	return report, nil
}
