package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fbf/internal/cache"
	"fbf/internal/grid"
)

func cid(n int) cache.ChunkID { return cache.ChunkID{Cell: grid.Coord{Row: n, Col: 0}} }

func prios(m map[int]int) map[cache.ChunkID]int {
	out := make(map[cache.ChunkID]int, len(m))
	for n, pr := range m {
		out[cid(n)] = pr
	}
	return out
}

func TestFBFRegistered(t *testing.T) {
	p := cache.MustNew("fbf", 4)
	if p.Name() != "fbf" {
		t.Fatalf("Name = %q", p.Name())
	}
	if _, ok := p.(cache.PriorityAware); !ok {
		t.Fatal("fbf must be PriorityAware")
	}
}

// TestFBFWarmUp mirrors Figure 5: chunks entering the cache land in the
// queue matching their priority.
func TestFBFWarmUp(t *testing.T) {
	f := NewFBF(8)
	f.SetPriorities(prios(map[int]int{1: 3, 2: 1, 3: 2, 4: 1, 5: 1}))
	for _, n := range []int{1, 2, 3, 4, 5} {
		if f.Request(cid(n)) {
			t.Fatalf("cold request %d hit", n)
		}
	}
	if f.QueueLen(3) != 1 || f.QueueLen(2) != 1 || f.QueueLen(1) != 3 {
		t.Fatalf("queue sizes = %d/%d/%d, want 1/1/3", f.QueueLen(3), f.QueueLen(2), f.QueueLen(1))
	}
	q3 := f.QueueContents(3)
	if len(q3) != 1 || q3[0] != cid(1) {
		t.Errorf("Queue3 = %v", q3)
	}
	q2 := f.QueueContents(2)
	if len(q2) != 1 || q2[0] != cid(3) {
		t.Errorf("Queue2 = %v", q2)
	}
}

// TestFBFDemotion mirrors Figure 6: a hit demotes the chunk one queue
// down; Queue3 → Queue2 → Queue1.
func TestFBFDemotion(t *testing.T) {
	f := NewFBF(8)
	f.SetPriorities(prios(map[int]int{1: 3}))
	f.Request(cid(1)) // miss → Queue3
	if !f.Request(cid(1)) {
		t.Fatal("second request should hit")
	}
	if f.QueueLen(3) != 0 || f.QueueLen(2) != 1 {
		t.Fatalf("after 1st hit: Q3=%d Q2=%d", f.QueueLen(3), f.QueueLen(2))
	}
	if !f.Request(cid(1)) {
		t.Fatal("third request should hit")
	}
	if f.QueueLen(2) != 0 || f.QueueLen(1) != 1 {
		t.Fatalf("after 2nd hit: Q2=%d Q1=%d", f.QueueLen(2), f.QueueLen(1))
	}
	// Further hits keep it in Queue1, refreshing recency.
	if !f.Request(cid(1)) || f.QueueLen(1) != 1 {
		t.Fatal("Queue1 hit misbehaved")
	}
}

// TestFBFReplacement mirrors Figure 7: eviction drains Queue1 before
// touching higher-priority queues, even when Queue2 chunks are older.
func TestFBFReplacement(t *testing.T) {
	f := NewFBF(3)
	f.SetPriorities(prios(map[int]int{1: 2, 2: 1, 3: 1, 4: 1, 5: 1}))
	f.Request(cid(1)) // → Queue2 (oldest overall)
	f.Request(cid(2)) // → Queue1
	f.Request(cid(3)) // → Queue1
	f.Request(cid(4)) // full: evict Queue1 LRU (2), NOT the older 1
	if f.Contains(cid(2)) {
		t.Error("Queue1 LRU should have been evicted")
	}
	if !f.Contains(cid(1)) {
		t.Error("Queue2 chunk must be protected")
	}
	f.Request(cid(5)) // evicts 3
	if f.Contains(cid(3)) || !f.Contains(cid(1)) {
		t.Error("second eviction wrong")
	}
}

func TestFBFEvictionFallsBackToHigherQueues(t *testing.T) {
	f := NewFBF(2)
	f.SetPriorities(prios(map[int]int{1: 3, 2: 2, 3: 1}))
	f.Request(cid(1)) // Q3
	f.Request(cid(2)) // Q2
	f.Request(cid(3)) // full, Q1 empty → evict Q2 LRU (2)
	if f.Contains(cid(2)) {
		t.Error("should evict from Queue2 when Queue1 empty")
	}
	if !f.Contains(cid(1)) || !f.Contains(cid(3)) {
		t.Error("contents wrong")
	}
	// Now only Q3 (1) and Q1 (3) resident. Fill again.
	f.SetPriorities(prios(map[int]int{4: 3}))
	f.Request(cid(4)) // evicts Q1 (3)
	if f.Contains(cid(3)) || !f.Contains(cid(1)) || !f.Contains(cid(4)) {
		t.Error("fallback eviction wrong")
	}
	// Both resident chunks are in Q3 now (1 in Q3, 4 in Q3).
	f.SetPriorities(prios(map[int]int{5: 1}))
	f.Request(cid(5)) // must evict Q3 LRU (1)
	if f.Contains(cid(1)) || !f.Contains(cid(4)) || !f.Contains(cid(5)) {
		t.Error("Queue3 eviction wrong")
	}
}

func TestFBFDefaultPriorityIsOne(t *testing.T) {
	f := NewFBF(4)
	f.Request(cid(7)) // no dictionary at all
	if f.QueueLen(1) != 1 {
		t.Error("unknown chunk should land in Queue1")
	}
	f.SetPriorities(nil) // nil dictionary must be tolerated
	f.Request(cid(8))
	if f.QueueLen(1) != 2 {
		t.Error("nil dictionary broke default priority")
	}
}

func TestFBFZeroCapacity(t *testing.T) {
	f := NewFBF(0)
	for i := 0; i < 5; i++ {
		if f.Request(cid(1)) {
			t.Fatal("zero-capacity FBF hit")
		}
	}
	if f.Len() != 0 {
		t.Fatal("zero-capacity FBF stored chunks")
	}
}

func TestFBFReset(t *testing.T) {
	f := NewFBF(4)
	f.SetPriorities(prios(map[int]int{1: 3}))
	f.Request(cid(1))
	f.Reset()
	if f.Len() != 0 || f.Stats() != (cache.Stats{}) || f.Capacity() != 4 {
		t.Error("Reset incomplete")
	}
	// Priorities are cleared too: chunk 1 now defaults to Queue1.
	f.Request(cid(1))
	if f.QueueLen(1) != 1 {
		t.Error("Reset did not clear priorities")
	}
}

func TestFBFQueueInvariants(t *testing.T) {
	// Property: at all times Len() == sum of queue lengths <= capacity,
	// and hit/miss counters add up.
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := rng.Intn(6)
		f := NewFBF(capacity)
		f.SetPriorities(prios(map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 5: 3}))
		var requests uint64
		for i := 0; i < 200; i++ {
			f.Request(cid(rng.Intn(8)))
			requests++
			total := f.QueueLen(1) + f.QueueLen(2) + f.QueueLen(3)
			if total != f.Len() || f.Len() > capacity {
				return false
			}
			s := f.Stats()
			if s.Hits+s.Misses != requests {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

// TestFBFBeatsLRUOnSchemeReplay is the paper's central claim in
// miniature: replaying a looped-scheme request stream through a small
// cache, FBF's hit count must beat LRU's.
func TestFBFBeatsLRUOnSchemeReplay(t *testing.T) {
	code := mustCode(t, "tip", 13)
	var schemes []*Scheme
	for stripe := 0; stripe < 40; stripe++ {
		e := PartialStripeError{Stripe: stripe, Disk: stripe % code.Disks(), Row: 0, Size: 6}
		s, err := GenerateScheme(code, e, StrategyLooped)
		if err != nil {
			t.Fatal(err)
		}
		schemes = append(schemes, s)
	}
	replay := func(p cache.Policy) cache.Stats {
		for _, s := range schemes {
			if pa, ok := p.(cache.PriorityAware); ok {
				pa.SetPriorities(s.PriorityIDs())
			}
			for _, id := range s.RequestIDs() {
				p.Request(id)
			}
		}
		return p.Stats()
	}
	// Cache smaller than one scheme's working set: the regime the paper
	// targets ("cache size is limited").
	capacity := 8
	fbf := replay(NewFBF(capacity))
	lru := replay(cache.NewLRU(capacity))
	if fbf.Hits <= lru.Hits {
		t.Errorf("FBF hits %d <= LRU hits %d at capacity %d", fbf.Hits, lru.Hits, capacity)
	}
}
