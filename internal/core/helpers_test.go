package core

import (
	"testing"

	"fbf/internal/codes"
)

func mustCode(t testing.TB, name string, p int) *codes.Code {
	t.Helper()
	c, err := codes.New(name, p)
	if err != nil {
		t.Fatalf("codes.New(%s, %d): %v", name, p, err)
	}
	return c
}
