// Package core implements the paper's contribution: the Favorable Block
// First (FBF) cache scheme for partial stripe recovery in 3DFT arrays.
// It contains the recovery-scheme generator (which parity chain repairs
// each lost chunk), the priority dictionary derived from chain sharing,
// and the three-queue priority cache policy of Algorithm 1.
package core

import (
	"fmt"

	"fbf/internal/grid"
)

// PartialStripeError describes one partial stripe error: a contiguous
// run of unreadable chunks on a single disk within one stripe — the
// failure mode whose recovery the paper accelerates (sector/chunk errors
// exhibit strong spatial locality, so neighbouring chunks fail
// together).
type PartialStripeError struct {
	Stripe int // stripe index on the array
	Disk   int // failed column
	Row    int // first bad row within the stripe
	Size   int // number of contiguous bad chunks (1 <= Size <= p-1)
}

// String renders the error compactly.
func (e PartialStripeError) String() string {
	return fmt.Sprintf("stripe %d disk %d rows [%d,%d)", e.Stripe, e.Disk, e.Row, e.Row+e.Size)
}

// Validate checks the error against a code's geometry and the paper's
// partial-stripe size bound (at most p-1 chunks; larger errors are
// handled by whole-stripe reconstruction, a different mechanism).
func (e PartialStripeError) Validate(g Geometry) error {
	if e.Stripe < 0 {
		return fmt.Errorf("core: negative stripe %d", e.Stripe)
	}
	if e.Disk < 0 || e.Disk >= g.Disks() {
		return fmt.Errorf("core: disk %d out of range [0,%d)", e.Disk, g.Disks())
	}
	if e.Size < 1 {
		return fmt.Errorf("core: non-positive error size %d", e.Size)
	}
	if e.Size > g.MaxPartialSize() {
		return fmt.Errorf("core: error size %d exceeds partial-stripe bound %d", e.Size, g.MaxPartialSize())
	}
	if e.Row < 0 || e.Row+e.Size > g.Rows() {
		return fmt.Errorf("core: rows [%d,%d) out of range [0,%d)", e.Row, e.Row+e.Size, g.Rows())
	}
	return nil
}

// LostCells returns the erased chunk coordinates in row order.
func (e PartialStripeError) LostCells() []grid.Coord {
	out := make([]grid.Coord, 0, e.Size)
	for r := e.Row; r < e.Row+e.Size; r++ {
		out = append(out, grid.Coord{Row: r, Col: e.Disk})
	}
	return out
}
