package core

import (
	"testing"

	"fbf/internal/cache"
)

// TestFBFSteadyStateAllocs pins the entry freelist: at capacity, every
// miss evicts one chunk and inserts another by recycling the evicted
// entry and its intrusive list node, and hits demote or refresh by
// relinking nodes in place — so the request cycle the rebuild engine
// replays millions of times allocates nothing.
func TestFBFSteadyStateAllocs(t *testing.T) {
	const capacity = 64
	f := NewFBF(capacity)
	for i := 0; i < 4*capacity; i++ {
		f.Request(cache.ChunkID{Stripe: i})
	}
	next := 4 * capacity
	allocs := testing.AllocsPerRun(1000, func() {
		f.Request(cache.ChunkID{Stripe: next}) // miss: evict + recycled insert
		next++
		f.Request(cache.ChunkID{Stripe: next - 1}) // hit: Queue1 recency refresh
	})
	if allocs != 0 {
		t.Errorf("steady-state FBF request cycle allocates %v objects, want 0", allocs)
	}
}
