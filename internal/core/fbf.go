package core

import (
	"fbf/internal/cache"
	"fbf/internal/ds"
)

// FBF is the Favorable Block First cache policy (Algorithm 1 of the
// paper). Chunks are held in three queues by priority — the number of
// parity chains sharing them in the active recovery scheme:
//
//   - Queue3 holds chunks shared by three or more chains,
//   - Queue2 holds chunks shared by two chains,
//   - Queue1 holds chunks referenced once.
//
// On a hit, a chunk is demoted one queue (its remaining reuse count has
// dropped); within Queue1 a hit refreshes recency. When space runs out,
// victims come from Queue1 first, then Queue2, then Queue3; each queue
// is LRU internally.
//
// FBF implements cache.Policy and cache.PriorityAware; engines install
// each recovery task's priority dictionary via SetPriorities before
// replaying its requests.
type FBF struct {
	capacity   int
	stats      cache.Stats
	priorities map[cache.ChunkID]int
	queues     [3]ds.List[cache.ChunkID] // [0] = Queue1 ... [2] = Queue3
	index      map[cache.ChunkID]*fbfEntry

	// free recycles evicted/invalidated entries together with their list
	// nodes, so a full cache churns through misses without allocating.
	free []*fbfEntry
}

type fbfEntry struct {
	queue int // 0-based queue index
	node  *ds.Node[cache.ChunkID]
}

// NewFBF returns an FBF cache holding up to capacity chunks. Until
// SetPriorities is called every chunk defaults to priority 1.
func NewFBF(capacity int) *FBF {
	return &FBF{
		capacity:   capacity,
		priorities: map[cache.ChunkID]int{},
		index:      make(map[cache.ChunkID]*fbfEntry),
	}
}

var (
	_ cache.Policy        = (*FBF)(nil)
	_ cache.PriorityAware = (*FBF)(nil)
	_ cache.Invalidator   = (*FBF)(nil)
)

func init() {
	cache.Register("fbf", func(c int) cache.Policy { return NewFBF(c) })
}

// Name implements cache.Policy.
func (f *FBF) Name() string { return "fbf" }

// Capacity implements cache.Policy.
func (f *FBF) Capacity() int { return f.capacity }

// Len implements cache.Policy.
func (f *FBF) Len() int { return len(f.index) }

// Contains implements cache.Policy.
func (f *FBF) Contains(id cache.ChunkID) bool { _, ok := f.index[id]; return ok }

// Stats implements cache.Policy.
func (f *FBF) Stats() cache.Stats { return f.stats }

// SetPriorities implements cache.PriorityAware: it installs the priority
// dictionary of the recovery scheme about to be replayed. Priorities of
// already-resident chunks are left as their current queue positions (the
// paper demotes on use rather than re-promoting).
func (f *FBF) SetPriorities(priorities map[cache.ChunkID]int) {
	if priorities == nil {
		priorities = map[cache.ChunkID]int{}
	}
	f.priorities = priorities
}

// priorityOf returns the clamped FBF priority (1..3) for a chunk.
func (f *FBF) priorityOf(id cache.ChunkID) int {
	return clampPriority(f.priorities[id])
}

// Request implements cache.Policy, following Algorithm 1.
func (f *FBF) Request(id cache.ChunkID) bool {
	if e, ok := f.index[id]; ok {
		f.stats.Hits++
		switch e.queue {
		case 2, 1: // Queue3 → Queue2, Queue2 → Queue1: demote.
			f.queues[e.queue].Remove(e.node)
			e.queue--
			f.queues[e.queue].PushBackNode(e.node)
		default: // Queue1: refresh recency (PushToEnd).
			f.queues[0].MoveToBack(e.node)
		}
		return true
	}
	f.stats.Misses++
	if f.capacity == 0 {
		return false
	}
	if len(f.index) >= f.capacity {
		f.evict()
	}
	q := f.priorityOf(id) - 1
	var e *fbfEntry
	if k := len(f.free); k > 0 {
		e = f.free[k-1]
		f.free = f.free[:k-1]
	} else {
		e = &fbfEntry{node: &ds.Node[cache.ChunkID]{}}
	}
	e.queue = q
	e.node.Val = id
	f.queues[q].PushBackNode(e.node)
	f.index[id] = e
	return false
}

// evict releases one chunk: Queue1 first, then Queue2, then Queue3, LRU
// within each queue.
func (f *FBF) evict() {
	for q := 0; q < 3; q++ {
		if n := f.queues[q].Front(); n != nil {
			f.queues[q].Remove(n)
			e := f.index[n.Val]
			delete(f.index, n.Val)
			f.free = append(f.free, e)
			f.stats.Evictions++
			return
		}
	}
}

// Invalidate implements cache.Invalidator.
func (f *FBF) Invalidate(id cache.ChunkID) bool {
	e, ok := f.index[id]
	if !ok {
		return false
	}
	f.queues[e.queue].Remove(e.node)
	delete(f.index, id)
	f.free = append(f.free, e)
	return true
}

// Reset implements cache.Policy.
func (f *FBF) Reset() {
	*f = *NewFBF(f.capacity)
}

// QueueLen returns the population of Queue1, Queue2 or Queue3 (queue in
// 1..3); used by tests and the walkthrough example reproducing the
// paper's Figures 5–7.
func (f *FBF) QueueLen(queue int) int { return f.queues[queue-1].Len() }

// QueueContents returns the ids in the given queue (1..3), LRU first.
func (f *FBF) QueueContents(queue int) []cache.ChunkID {
	var out []cache.ChunkID
	for n := f.queues[queue-1].Front(); n != nil; n = n.Next() {
		out = append(out, n.Val)
	}
	return out
}
