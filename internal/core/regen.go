package core

import (
	"fmt"

	"fbf/internal/grid"
)

// Planner is the decoder view RegenerateScheme falls back to when an
// escalated erasure pattern leaves some cell with no usable single
// parity chain. codes.Code implements it; geometries without a partial
// decoder (e.g. the LRC stand-in) simply lose those cells.
type Planner interface {
	// PartialRecoveryPlan expresses every solvable cell of lost as a XOR
	// of surviving cells and lists the unsolvable cells separately.
	PartialRecoveryPlan(lost []grid.Coord) (plan map[grid.Coord][]grid.Coord, unsolved []grid.Coord, err error)
}

// RegenerateScheme rebuilds a recovery scheme mid-repair, after faults
// have changed the erasure pattern: repair lists the cells that still
// need reconstructing (the original error's remaining cells plus any
// chunks escalated by unrecoverable read errors), and unavailable lists
// cells that cannot be read but need no repair here (typically the
// remaining cells of failed disks, rebuilt stripe by stripe elsewhere).
//
// Per repair cell the strategy picks a parity chain exactly as
// GenerateScheme does, treating repair ∪ unavailable as erased. Cells no
// single chain can rebuild fall back to the code's GF(2) decoder
// (Planner) and appear in the scheme as Decoded selections; cells even
// the decoder cannot solve are returned in lost — data loss the caller
// must account, not an error.
//
// e identifies the stripe and original error for Scheme bookkeeping; it
// is not re-validated, since escalated patterns are exactly the ones a
// plain partial-stripe error can no longer describe.
func RegenerateScheme(code Geometry, e PartialStripeError, repair, unavailable []grid.Coord, strategy Strategy) (*Scheme, []grid.Coord, error) {
	lostSet := make(map[grid.Coord]bool, len(repair)+len(unavailable))
	for _, c := range append(append([]grid.Coord{}, repair...), unavailable...) {
		if !code.Layout().InBounds(c) {
			return nil, nil, fmt.Errorf("core: cell %v out of bounds", c)
		}
		lostSet[c] = true
	}

	scheme := &Scheme{Code: code, Err: e, Strategy: strategy, Priorities: make(map[grid.Coord]int)}
	planned := make(map[grid.Coord]bool)
	var decode []grid.Coord // repair cells with no usable single chain

	for k, cell := range repair {
		chosen, err := chainFor(code, lostSet, planned, cell, k, strategy)
		if err != nil {
			return nil, nil, err
		}
		if chosen == nil {
			decode = append(decode, cell)
			continue
		}
		scheme.addChain(cell, chosen, planned)
	}
	if len(decode) == 0 {
		return scheme, nil, nil
	}

	planner, ok := code.(Planner)
	if !ok {
		return scheme, decode, nil
	}
	// The decoder must treat every erased cell as unknown, not just the
	// ones being repaired, or it would express repairs in terms of
	// unreadable cells.
	allLost := make([]grid.Coord, 0, len(lostSet))
	for c := range lostSet {
		allLost = append(allLost, c)
	}
	sortCoords(allLost)
	plan, unsolved, err := planner.PartialRecoveryPlan(allLost)
	if err != nil {
		return nil, nil, err
	}
	unsolvedSet := make(map[grid.Coord]bool, len(unsolved))
	for _, c := range unsolved {
		unsolvedSet[c] = true
	}
	var lost []grid.Coord
	for _, cell := range decode {
		if unsolvedSet[cell] {
			lost = append(lost, cell)
			continue
		}
		fetch := plan[cell]
		for _, m := range fetch {
			scheme.Priorities[m]++
			planned[m] = true
		}
		scheme.Selected = append(scheme.Selected, SelectedChain{Lost: cell, Fetch: fetch, Decoded: true})
	}
	return scheme, lost, nil
}
