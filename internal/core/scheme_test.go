package core

import (
	"math/rand"
	"testing"

	"fbf/internal/chunk"
	"fbf/internal/codes"
	"fbf/internal/grid"
)

func TestStrategyString(t *testing.T) {
	if StrategyTypical.String() != "typical" || StrategyLooped.String() != "looped" || StrategyGreedy.String() != "greedy" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("invalid strategy String wrong")
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]Strategy{"typical": StrategyTypical, "looped": StrategyLooped, "fbf": StrategyLooped, "greedy": StrategyGreedy}
	for name, want := range cases {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("ParseStrategy(nope) should fail")
	}
}

func TestErrorValidate(t *testing.T) {
	code := codes.MustNew("tip", 7) // 6 rows, 8 disks
	valid := PartialStripeError{Stripe: 0, Disk: 0, Row: 0, Size: 5}
	if err := valid.Validate(code); err != nil {
		t.Errorf("valid error rejected: %v", err)
	}
	bad := []PartialStripeError{
		{Stripe: -1, Disk: 0, Row: 0, Size: 1},
		{Stripe: 0, Disk: -1, Row: 0, Size: 1},
		{Stripe: 0, Disk: 8, Row: 0, Size: 1},
		{Stripe: 0, Disk: 0, Row: 0, Size: 0},
		{Stripe: 0, Disk: 0, Row: 0, Size: 7}, // > p-1
		{Stripe: 0, Disk: 0, Row: -1, Size: 1},
		{Stripe: 0, Disk: 0, Row: 4, Size: 3}, // spills past last row
	}
	for _, e := range bad {
		if err := e.Validate(code); err == nil {
			t.Errorf("%v should be invalid", e)
		}
	}
}

func TestErrorLostCells(t *testing.T) {
	e := PartialStripeError{Stripe: 2, Disk: 3, Row: 1, Size: 3}
	cells := e.LostCells()
	want := []grid.Coord{{Row: 1, Col: 3}, {Row: 2, Col: 3}, {Row: 3, Col: 3}}
	if len(cells) != len(want) {
		t.Fatalf("LostCells = %v", cells)
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Errorf("LostCells[%d] = %v, want %v", i, cells[i], want[i])
		}
	}
	if e.String() == "" {
		t.Error("empty String()")
	}
}

func TestTypicalSchemeUsesHorizontalChains(t *testing.T) {
	for _, name := range codes.Names() {
		code := codes.MustNew(name, 7)
		e := PartialStripeError{Disk: 1, Row: 0, Size: 4}
		s, err := GenerateScheme(code, e, StrategyTypical)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, sel := range s.Selected {
			if sel.Chain.Kind != grid.Horizontal {
				t.Errorf("%s: typical scheme chose %v for %v", name, sel.Chain, sel.Lost)
			}
		}
		// Horizontal chains of distinct rows are disjoint: no sharing.
		if s.SharedChunks() != 0 {
			t.Errorf("%s: typical scheme shares %d chunks", name, s.SharedChunks())
		}
	}
}

func TestLoopedSchemeCyclesDirections(t *testing.T) {
	code := codes.MustNew("tip", 7)
	e := PartialStripeError{Disk: 0, Row: 0, Size: 5}
	s, err := GenerateScheme(code, e, StrategyLooped)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Selected) != 5 {
		t.Fatalf("selected %d chains", len(s.Selected))
	}
	wantKinds := []grid.ChainKind{grid.Horizontal, grid.Diagonal, grid.AntiDiagonal, grid.Horizontal, grid.Diagonal}
	for i, sel := range s.Selected {
		if sel.Chain.Kind != wantKinds[i] {
			t.Errorf("chain %d kind = %v, want %v", i, sel.Chain.Kind, wantKinds[i])
		}
	}
}

func TestLoopedSchemeSharesChunks(t *testing.T) {
	// The whole point of FBF scheme generation: crossing directions
	// produce shared chunks for multi-chunk errors.
	for _, name := range codes.Names() {
		code := codes.MustNew(name, 11)
		e := PartialStripeError{Disk: 2, Row: 0, Size: 6}
		s, err := GenerateScheme(code, e, StrategyLooped)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.SharedChunks() == 0 {
			t.Errorf("%s: looped scheme shares no chunks for a 6-chunk error", name)
		}
		if s.UniqueFetches() >= s.TotalRequests() {
			t.Errorf("%s: no request savings (unique %d, total %d)", name, s.UniqueFetches(), s.TotalRequests())
		}
	}
}

func TestPriorityCountsMatchChainMembership(t *testing.T) {
	code := codes.MustNew("star", 7)
	e := PartialStripeError{Disk: 3, Row: 1, Size: 5}
	s, err := GenerateScheme(code, e, StrategyLooped)
	if err != nil {
		t.Fatal(err)
	}
	// Recount from scratch.
	counts := map[grid.Coord]int{}
	for _, sel := range s.Selected {
		for _, m := range sel.Fetch {
			counts[m]++
		}
	}
	if len(counts) != len(s.Priorities) {
		t.Fatalf("priority map has %d entries, recount %d", len(s.Priorities), len(counts))
	}
	for cell, want := range counts {
		if got := s.Priorities[cell]; got != want {
			t.Errorf("priority of %v = %d, want %d", cell, got, want)
		}
	}
}

func TestSchemeRequestsOrdering(t *testing.T) {
	code := codes.MustNew("tip", 5)
	e := PartialStripeError{Stripe: 9, Disk: 0, Row: 0, Size: 3}
	s, err := GenerateScheme(code, e, StrategyLooped)
	if err != nil {
		t.Fatal(err)
	}
	reqs := s.Requests()
	if len(reqs) != s.TotalRequests() {
		t.Fatalf("Requests len %d != TotalRequests %d", len(reqs), s.TotalRequests())
	}
	// Requests must be the concatenation of per-chain fetch lists.
	i := 0
	for _, sel := range s.Selected {
		for _, m := range sel.Fetch {
			if reqs[i] != m {
				t.Fatalf("request %d = %v, want %v", i, reqs[i], m)
			}
			i++
		}
	}
	ids := s.RequestIDs()
	if len(ids) != len(reqs) {
		t.Fatal("RequestIDs length mismatch")
	}
	for i, id := range ids {
		if id.Stripe != 9 || id.Cell != reqs[i] {
			t.Fatalf("RequestIDs[%d] = %v", i, id)
		}
	}
	prio := s.PriorityIDs()
	if len(prio) != len(s.Priorities) {
		t.Fatal("PriorityIDs length mismatch")
	}
	for id, pr := range prio {
		if id.Stripe != 9 || s.Priorities[id.Cell] != pr {
			t.Fatalf("PriorityIDs[%v] = %d", id, pr)
		}
	}
}

// TestSchemeXORRecovers checks the scheme end to end against real chunk
// data: XOR-ing the fetched chunks of each selected chain must rebuild
// the lost chunk.
func TestSchemeXORRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, name := range codes.Names() {
		for _, p := range []int{5, 7} {
			code := codes.MustNew(name, p)
			stripe := code.NewStripe(64)
			for _, cell := range code.Layout().DataCells() {
				rng.Read(stripe[code.CellIndex(cell)])
			}
			code.Encode(stripe)
			for _, strategy := range []Strategy{StrategyTypical, StrategyLooped, StrategyGreedy} {
				for disk := 0; disk < code.Disks(); disk++ {
					size := min(p-1, code.Rows())
					e := PartialStripeError{Disk: disk, Row: 0, Size: size}
					s, err := GenerateScheme(code, e, strategy)
					if err != nil {
						t.Fatalf("%s p=%d disk=%d %v: %v", name, p, disk, strategy, err)
					}
					for _, sel := range s.Selected {
						acc := chunk.New(64)
						for _, m := range sel.Fetch {
							chunk.XORInto(acc, stripe[code.CellIndex(m)])
						}
						if !acc.Equal(stripe[code.CellIndex(sel.Lost)]) {
							t.Fatalf("%s p=%d %v: chain %v does not rebuild %v", name, p, strategy, sel.Chain, sel.Lost)
						}
					}
				}
			}
		}
	}
}

func TestGreedyReducesFetchesInAggregate(t *testing.T) {
	// Greedy is myopic per lost chunk, so it need not win on every single
	// error instance, but summed over all disks it must read no more
	// unique chunks than the paper's looping heuristic, and looping must
	// in turn beat the typical horizontal-only scheme.
	for _, name := range codes.Names() {
		code := codes.MustNew(name, 11)
		var typTotal, loopTotal, greedyTotal int
		for disk := 0; disk < code.Disks(); disk++ {
			e := PartialStripeError{Disk: disk, Row: 0, Size: 8}
			for _, run := range []struct {
				strategy Strategy
				total    *int
			}{
				{StrategyTypical, &typTotal},
				{StrategyLooped, &loopTotal},
				{StrategyGreedy, &greedyTotal},
			} {
				s, err := GenerateScheme(code, e, run.strategy)
				if err != nil {
					t.Fatal(err)
				}
				*run.total += s.UniqueFetches()
			}
		}
		if greedyTotal > loopTotal {
			t.Errorf("%s: greedy total fetches %d > looped %d", name, greedyTotal, loopTotal)
		}
		if loopTotal >= typTotal {
			t.Errorf("%s: looped total fetches %d >= typical %d", name, loopTotal, typTotal)
		}
	}
}

func TestPriorityGroups(t *testing.T) {
	code := codes.MustNew("tip", 7)
	e := PartialStripeError{Disk: 0, Row: 0, Size: 5}
	s, err := GenerateScheme(code, e, StrategyLooped)
	if err != nil {
		t.Fatal(err)
	}
	groups := s.PriorityGroups()
	total := len(groups[0]) + len(groups[1]) + len(groups[2])
	if total != s.UniqueFetches() {
		t.Errorf("groups hold %d chunks, want %d", total, s.UniqueFetches())
	}
	for gi, group := range groups {
		for _, cell := range group {
			if clampPriority(s.Priorities[cell]) != gi+1 {
				t.Errorf("cell %v in group %d has priority %d", cell, gi+1, s.Priorities[cell])
			}
		}
		// Groups are sorted.
		for i := 1; i < len(group); i++ {
			if group[i].Less(group[i-1]) {
				t.Errorf("group %d unsorted at %d", gi+1, i)
			}
		}
	}
}

func TestGenerateSchemeErrors(t *testing.T) {
	code := codes.MustNew("tip", 5)
	if _, err := GenerateScheme(code, PartialStripeError{Disk: 99, Row: 0, Size: 1}, StrategyLooped); err == nil {
		t.Error("invalid error accepted")
	}
	if _, err := GenerateScheme(code, PartialStripeError{Disk: 0, Row: 0, Size: 1}, Strategy(42)); err == nil {
		t.Error("invalid strategy accepted")
	}
}

func TestClampPriority(t *testing.T) {
	cases := map[int]int{-1: 1, 0: 1, 1: 1, 2: 2, 3: 3, 4: 3, 10: 3}
	for in, want := range cases {
		if got := clampPriority(in); got != want {
			t.Errorf("clampPriority(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSchemeSingleChunkError(t *testing.T) {
	// A single lost chunk has one chain and no shared chunks regardless
	// of strategy.
	for _, strategy := range []Strategy{StrategyTypical, StrategyLooped, StrategyGreedy} {
		code := codes.MustNew("triplestar", 5)
		s, err := GenerateScheme(code, PartialStripeError{Disk: 0, Row: 2, Size: 1}, strategy)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Selected) != 1 || s.SharedChunks() != 0 {
			t.Errorf("%v: %d chains, %d shared", strategy, len(s.Selected), s.SharedChunks())
		}
	}
}

func TestSchemeEveryDiskEveryRun(t *testing.T) {
	// Scheme generation must succeed for every disk, start row and size
	// in bounds, for every code and both paper strategies.
	for _, name := range codes.Names() {
		code := codes.MustNew(name, 5)
		for disk := 0; disk < code.Disks(); disk++ {
			for row := 0; row < code.Rows(); row++ {
				for size := 1; size <= code.P()-1 && row+size <= code.Rows(); size++ {
					for _, strategy := range []Strategy{StrategyTypical, StrategyLooped} {
						e := PartialStripeError{Disk: disk, Row: row, Size: size}
						if _, err := GenerateScheme(code, e, strategy); err != nil {
							t.Fatalf("%s %v %v: %v", name, e, strategy, err)
						}
					}
				}
			}
		}
	}
}
