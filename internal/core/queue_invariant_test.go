package core

import (
	"math/rand"
	"testing"

	"fbf/internal/cache"
)

// fbfModel is an executable statement of FBF's queue invariants: three
// ordered lists (LRU first), demote-exactly-one-level on hit, admit at
// the clamped priority in force at admission time, evict from the
// lowest non-empty queue. It additionally tracks, per resident chunk,
// the priority it was admitted with and the hits it has absorbed since,
// to assert the paper's semantic claim that a chunk sits in the queue
// matching its remaining reuse count.
type fbfModel struct {
	cap    int
	queues [3][]cache.ChunkID
	admit  map[cache.ChunkID]int // clamped priority at admission
	hits   map[cache.ChunkID]int // hits since admission
}

func newFBFModel(capacity int) *fbfModel {
	return &fbfModel{
		cap:   capacity,
		admit: map[cache.ChunkID]int{},
		hits:  map[cache.ChunkID]int{},
	}
}

func (m *fbfModel) queueOf(id cache.ChunkID) int {
	for q := range m.queues {
		for _, r := range m.queues[q] {
			if r == id {
				return q
			}
		}
	}
	return -1
}

// request mirrors FBF.Request and returns (hit, queue the chunk landed
// in) so the caller can assert the one-level-demotion rule directly.
func (m *fbfModel) request(id cache.ChunkID, prio int) (bool, int) {
	if q := m.queueOf(id); q >= 0 {
		m.hits[id]++
		for i, r := range m.queues[q] {
			if r == id {
				m.queues[q] = append(m.queues[q][:i], m.queues[q][i+1:]...)
				break
			}
		}
		if q > 0 {
			q--
		}
		m.queues[q] = append(m.queues[q], id)
		return true, q
	}
	if m.cap == 0 {
		return false, -1
	}
	if len(m.admit) >= m.cap {
		for q := range m.queues {
			if len(m.queues[q]) > 0 {
				victim := m.queues[q][0]
				m.queues[q] = m.queues[q][1:]
				delete(m.admit, victim)
				delete(m.hits, victim)
				break
			}
		}
	}
	q := clampPriority(prio) - 1
	m.queues[q] = append(m.queues[q], id)
	m.admit[id] = q + 1
	m.hits[id] = 0
	return false, q
}

// TestFBFQueueModelEquivalence drives FBF with randomized request streams and
// periodic priority reinstallation (as the recovery engines do between
// tasks), checking after every step that:
//
//  1. each queue's exact contents and LRU order match the model,
//  2. a hit demotes the chunk exactly one level (Queue1 refreshes),
//  3. every resident chunk sits in queue max(admit priority - hits, 1),
//  4. eviction always drains Queue1 before Queue2 before Queue3.
func TestFBFQueueModelEquivalence(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 8} {
		rng := rand.New(rand.NewSource(int64(41 * capacity)))
		f := NewFBF(capacity)
		model := newFBFModel(capacity)
		prio := map[cache.ChunkID]int{}
		universe := make([]cache.ChunkID, 4*capacity+8)
		for i := range universe {
			universe[i] = cache.ChunkID{Stripe: i}
		}
		for step := 0; step < 4000; step++ {
			if step%64 == 0 {
				prio = map[cache.ChunkID]int{}
				for _, id := range universe {
					if rng.Intn(2) == 0 {
						prio[id] = rng.Intn(5) // includes out-of-range 0 and 4
					}
				}
				f.SetPriorities(prio)
			}
			id := universe[rng.Intn(len(universe))]
			before := model.queueOf(id)
			hit := f.Request(id)
			refHit, landed := model.request(id, prio[id])
			if hit != refHit {
				t.Fatalf("cap %d step %d: hit=%v, model says %v", capacity, step, hit, refHit)
			}
			if hit {
				want := before
				if want > 0 {
					want--
				}
				if landed != want {
					t.Fatalf("cap %d step %d: hit moved %v from queue %d to %d, want exactly one level",
						capacity, step, id, before+1, landed+1)
				}
			}
			for q := 1; q <= 3; q++ {
				got := f.QueueContents(q)
				want := model.queues[q-1]
				if len(got) != len(want) {
					t.Fatalf("cap %d step %d: queue %d has %d chunks, model has %d",
						capacity, step, q, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("cap %d step %d: queue %d position %d is %v, model has %v",
							capacity, step, q, i, got[i], want[i])
					}
				}
				if f.QueueLen(q) != len(want) {
					t.Fatalf("cap %d step %d: QueueLen(%d)=%d, contents have %d",
						capacity, step, q, f.QueueLen(q), len(want))
				}
			}
			// Remaining-reuse invariant: queue = max(admit priority - hits, 1).
			for resident, admitted := range model.admit {
				want := admitted - model.hits[resident]
				if want < 1 {
					want = 1
				}
				if got := model.queueOf(resident) + 1; got != want {
					t.Fatalf("cap %d step %d: %v admitted at %d with %d hits sits in queue %d, want %d",
						capacity, step, resident, admitted, model.hits[resident], got, want)
				}
			}
		}
		if f.Len() > capacity {
			t.Fatalf("cap %d: %d residents exceed capacity", capacity, f.Len())
		}
	}
}
