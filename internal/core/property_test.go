package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fbf/internal/codes"
	"fbf/internal/grid"
)

// TestPropertySchemeInvariants checks structural invariants of every
// generated scheme on random errors, codes and strategies:
//
//  1. one selected chain per lost chunk, each containing its lost chunk,
//  2. fetch lists never contain lost chunks,
//  3. priority counts sum to the total request count,
//  4. every referenced cell is inside the stripe,
//  5. unique fetches <= total requests.
func TestPropertySchemeInvariants(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		name := codes.Names()[rng.Intn(len(codes.Names()))]
		p := []int{5, 7, 11}[rng.Intn(3)]
		code := codes.MustNew(name, p)
		strategy := []Strategy{StrategyTypical, StrategyLooped, StrategyGreedy}[rng.Intn(3)]
		size := 1 + rng.Intn(min(p-1, code.Rows()))
		e := PartialStripeError{
			Disk: rng.Intn(code.Disks()),
			Row:  rng.Intn(code.Rows() - size + 1),
			Size: size,
		}
		s, err := GenerateScheme(code, e, strategy)
		if err != nil {
			return false
		}
		if len(s.Selected) != size {
			return false
		}
		lost := map[grid.Coord]bool{}
		for _, c := range e.LostCells() {
			lost[c] = true
		}
		layout := code.Layout()
		sumPriorities := 0
		for _, pr := range s.Priorities {
			if pr < 1 {
				return false
			}
			sumPriorities += pr
		}
		if sumPriorities != s.TotalRequests() {
			return false
		}
		if s.UniqueFetches() > s.TotalRequests() {
			return false
		}
		for _, sel := range s.Selected {
			if !lost[sel.Lost] {
				return false
			}
			ch, ok := layout.Chain(sel.Chain)
			if !ok || !ch.Contains(sel.Lost) {
				return false
			}
			for _, f := range sel.Fetch {
				if lost[f] || !layout.InBounds(f) {
					return false
				}
				if !ch.Contains(f) {
					return false
				}
			}
			// Fetch = chain minus the lost cell, exactly.
			if len(sel.Fetch) != len(ch.Cells)-1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyTypicalNeverWorseThanLoopedOnRequests: the typical scheme
// replays one chain per lost chunk with no sharing, so its unique
// fetches always equal its total requests; looping can only reduce
// unique fetches relative to its own total.
func TestPropertyTypicalSchemesShareNothing(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		code := codes.MustNew("tip", 11)
		size := 1 + rng.Intn(10)
		e := PartialStripeError{Disk: rng.Intn(code.Disks()), Row: 0, Size: size}
		s, err := GenerateScheme(code, e, StrategyTypical)
		if err != nil {
			return false
		}
		return s.UniqueFetches() == s.TotalRequests() && s.SharedChunks() == 0
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyFBFQueueConservation: chunks never vanish — across any
// request sequence, every resident chunk is in exactly one queue.
func TestPropertyFBFQueueConservation(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := NewFBF(1 + rng.Intn(8))
		pri := map[int]int{}
		for i := 0; i < 12; i++ {
			pri[i] = 1 + rng.Intn(3)
		}
		f.SetPriorities(prios(pri))
		for i := 0; i < 300; i++ {
			f.Request(cid(rng.Intn(12)))
			seen := map[string]bool{}
			total := 0
			for q := 1; q <= 3; q++ {
				for _, id := range f.QueueContents(q) {
					key := id.String()
					if seen[key] {
						return false // chunk in two queues
					}
					seen[key] = true
					total++
					if !f.Contains(id) {
						return false
					}
				}
			}
			if total != f.Len() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}
