package core

import (
	"fbf/internal/chunk"
	"fbf/internal/grid"
)

// Geometry is the view of an erasure code that recovery-scheme
// generation needs: the stripe layout with its parity chains plus the
// partial-stripe size bound. Both the XOR-based 3DFT codes
// (internal/codes) and the Reed-Solomon-based LRC (internal/lrc)
// implement it.
type Geometry interface {
	// Layout returns the stripe geometry and chain set.
	Layout() *grid.Layout
	// Disks returns the number of disks (stripe columns).
	Disks() int
	// Rows returns the chunk rows per stripe.
	Rows() int
	// MaxPartialSize returns the largest partial stripe error handled at
	// chunk granularity (p-1 for the paper's codes; larger errors fall
	// to whole-stripe reconstruction).
	MaxPartialSize() int
}

// Rebuilder is implemented by codes that can materialize stripe
// contents and rebuild a lost chunk from one parity chain — what the
// engine's VerifyData mode uses to byte-check every recovery. Stripe
// slices are indexed row-major: index = row*Layout().Cols() + col.
type Rebuilder interface {
	Geometry
	// MaterializeStripe returns a deterministic, fully encoded stripe
	// with pseudo-random data contents derived from seed.
	MaterializeStripe(seed int64, chunkSize int) []chunk.Chunk
	// RebuildChunk recomputes the lost cell from the chain's other
	// members in the given stripe.
	RebuildChunk(chain grid.ChainID, lost grid.Coord, stripe []chunk.Chunk) (chunk.Chunk, error)
}

// RebuilderInto is an optional extension of Rebuilder for callers that
// recycle chunk buffers through a chunk.Pool: the Into variants write
// into caller-provided buffers instead of allocating fresh ones. The
// destination buffers may hold garbage on entry (chunk.Pool.GetRaw) —
// implementations overwrite every byte.
type RebuilderInto interface {
	Rebuilder
	// MaterializeStripeInto fills dst — Layout().Cells() chunks of one
	// size — with the stripe MaterializeStripe(seed, size) would return.
	MaterializeStripeInto(dst []chunk.Chunk, seed int64)
	// RebuildChunkInto recomputes the lost cell from the chain's other
	// members into dst.
	RebuildChunkInto(dst chunk.Chunk, chain grid.ChainID, lost grid.Coord, stripe []chunk.Chunk) error
}

// CellIndex is the row-major stripe index convention shared by
// Rebuilder implementations and the engine.
func CellIndex(layout *grid.Layout, c grid.Coord) int {
	return c.Row*layout.Cols() + c.Col
}
