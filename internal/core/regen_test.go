package core_test

import (
	"testing"

	"fbf/internal/chunk"
	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/grid"
)

func column(c *codes.Code, col int) []grid.Coord {
	out := make([]grid.Coord, 0, c.Rows())
	for r := 0; r < c.Rows(); r++ {
		out = append(out, grid.Coord{Row: r, Col: col})
	}
	return out
}

// xorFetch recomputes a selected chain's lost cell from its fetch list
// on a materialized stripe.
func xorFetch(c *codes.Code, stripe []chunk.Chunk, sel core.SelectedChain) chunk.Chunk {
	acc := chunk.New(len(stripe[0]))
	for _, m := range sel.Fetch {
		chunk.XORInto(acc, stripe[core.CellIndex(c.Layout(), m)])
	}
	return acc
}

func TestRegenerateMatchesGenerateWithoutEscalation(t *testing.T) {
	c := codes.MustNew("tip", 7)
	e := core.PartialStripeError{Stripe: 3, Disk: 2, Row: 1, Size: 3}
	want, err := core.GenerateScheme(c, e, core.StrategyLooped)
	if err != nil {
		t.Fatal(err)
	}
	got, lost, err := core.RegenerateScheme(c, e, e.LostCells(), nil, core.StrategyLooped)
	if err != nil || len(lost) != 0 {
		t.Fatalf("RegenerateScheme: lost=%v err=%v", lost, err)
	}
	if len(got.Selected) != len(want.Selected) {
		t.Fatalf("selected %d chains, want %d", len(got.Selected), len(want.Selected))
	}
	for i := range want.Selected {
		w, g := want.Selected[i], got.Selected[i]
		if g.Decoded || g.Lost != w.Lost || g.Chain != w.Chain || len(g.Fetch) != len(w.Fetch) {
			t.Errorf("chain %d: got %+v, want %+v", i, g, w)
		}
	}
	if len(got.Priorities) != len(want.Priorities) {
		t.Errorf("priorities differ: %d vs %d", len(got.Priorities), len(want.Priorities))
	}
}

func TestRegenerateDecoderFallbackIsByteExact(t *testing.T) {
	// Three whole columns erased: single chains cannot rebuild most cells
	// (every chain direction crosses the other dead columns), but a 3DFT
	// code still decodes everything — the GF(2) fallback must kick in and
	// its fetch lists must XOR to the original bytes.
	c := codes.MustNew("star", 5)
	e := core.PartialStripeError{Stripe: 0, Disk: 0, Row: 0, Size: 1}
	repair := column(c, 0)
	unavailable := append(column(c, 1), column(c, 2)...)
	scheme, lost, err := core.RegenerateScheme(c, e, repair, unavailable, core.StrategyLooped)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 0 {
		t.Fatalf("3-column loss should be recoverable for a 3DFT code, lost %v", lost)
	}
	if len(scheme.Selected) != len(repair) {
		t.Fatalf("selected %d chains for %d repair cells", len(scheme.Selected), len(repair))
	}
	decoded := 0
	stripe := c.MaterializeStripe(99, 64)
	for _, sel := range scheme.Selected {
		if sel.Decoded {
			decoded++
		}
		got := xorFetch(c, stripe, sel)
		want := stripe[core.CellIndex(c.Layout(), sel.Lost)]
		if !got.Equal(want) {
			t.Errorf("cell %v (decoded=%v): recovered bytes differ", sel.Lost, sel.Decoded)
		}
		// A decoded selection must never fetch an erased cell.
		for _, m := range sel.Fetch {
			if m.Col <= 2 {
				t.Errorf("cell %v fetches erased cell %v", sel.Lost, m)
			}
		}
	}
	if decoded == 0 {
		t.Error("expected at least one decoder-fallback selection")
	}
}

func TestRegenerateReportsUnrecoverableCells(t *testing.T) {
	// Four whole columns exceed triple-fault tolerance: the scheme must
	// come back with the unsolvable repair cells listed, not an error.
	c := codes.MustNew("star", 5)
	e := core.PartialStripeError{Stripe: 0, Disk: 0, Row: 0, Size: 1}
	repair := column(c, 0)
	var unavailable []grid.Coord
	for col := 1; col <= 3; col++ {
		unavailable = append(unavailable, column(c, col)...)
	}
	_, lost, err := core.RegenerateScheme(c, e, repair, unavailable, core.StrategyLooped)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) == 0 {
		t.Error("4-column loss should report lost cells")
	}
}

func TestRegenerateRejectsOutOfBounds(t *testing.T) {
	c := codes.MustNew("tip", 5)
	e := core.PartialStripeError{Stripe: 0, Disk: 0, Row: 0, Size: 1}
	if _, _, err := core.RegenerateScheme(c, e, []grid.Coord{{Row: 0, Col: 99}}, nil, core.StrategyLooped); err == nil {
		t.Error("out-of-bounds repair cell accepted")
	}
	if _, _, err := core.RegenerateScheme(c, e, []grid.Coord{{Row: 0, Col: 0}}, nil, core.Strategy(9)); err == nil {
		t.Error("invalid strategy accepted")
	}
}
