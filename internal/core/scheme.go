package core

import (
	"fmt"

	"fbf/internal/cache"
	"fbf/internal/grid"
)

// Strategy selects how recovery parity chains are chosen for the lost
// chunks of a partial stripe error.
type Strategy uint8

const (
	// StrategyTypical repairs every lost chunk through its horizontal
	// parity chain (falling back to other directions only when the
	// horizontal chain is unusable) — the conventional recovery the
	// paper's Figure 2(a) depicts. Chains of distinct rows never overlap,
	// so no chunk is shared.
	StrategyTypical Strategy = iota
	// StrategyLooped cycles through the three chain directions across
	// consecutive lost chunks (horizontal, diagonal, anti-diagonal,
	// horizontal, ...), the FBF recovery generation of Section III-A.1;
	// crossing directions makes chains share chunks.
	StrategyLooped
	// StrategyGreedy picks, per lost chunk, the usable chain that adds
	// the fewest chunks not already scheduled for fetching (ties broken
	// toward more sharing) — an ablation that pushes chain selection
	// beyond the paper's looping heuristic.
	StrategyGreedy
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyTypical:
		return "typical"
	case StrategyLooped:
		return "looped"
	case StrategyGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// ParseStrategy converts a name to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "typical":
		return StrategyTypical, nil
	case "looped", "fbf":
		return StrategyLooped, nil
	case "greedy":
		return StrategyGreedy, nil
	default:
		return 0, fmt.Errorf("core: unknown strategy %q", name)
	}
}

// SelectedChain records the repair chain chosen for one lost chunk.
type SelectedChain struct {
	Lost  grid.Coord   // the chunk being rebuilt
	Chain grid.ChainID // the chain used to rebuild it
	Fetch []grid.Coord // surviving chain members, in request order

	// Decoded marks a chain produced by the GF(2) decoder fallback of
	// RegenerateScheme rather than a single parity chain: Chain is zero
	// and Fetch lists the surviving cells whose XOR reproduces Lost.
	Decoded bool
}

// Scheme is a complete recovery plan for one partial stripe error: the
// chain per lost chunk, the resulting chunk-request sequence and the
// priority dictionary FBF's cache consults (Table II/III of the paper).
type Scheme struct {
	Code     Geometry
	Err      PartialStripeError
	Strategy Strategy
	Selected []SelectedChain

	// Priorities maps each fetched chunk to the number of selected
	// chains that share it (1, 2 or 3+). Chunks shared by more chains
	// save more re-reads and get higher cache priority.
	Priorities map[grid.Coord]int
}

// GenerateScheme builds the recovery scheme for one partial stripe error
// under the given strategy.
func GenerateScheme(code Geometry, e PartialStripeError, strategy Strategy) (*Scheme, error) {
	if err := e.Validate(code); err != nil {
		return nil, err
	}
	lost := e.LostCells()
	lostSet := make(map[grid.Coord]bool, len(lost))
	for _, c := range lost {
		lostSet[c] = true
	}

	scheme := &Scheme{Code: code, Err: e, Strategy: strategy, Priorities: make(map[grid.Coord]int)}
	planned := make(map[grid.Coord]bool) // chunks already scheduled for fetch

	for k, cell := range lost {
		chosen, err := chainFor(code, lostSet, planned, cell, k, strategy)
		if err != nil {
			return nil, err
		}
		if chosen == nil {
			return nil, fmt.Errorf("core: no usable chain for lost chunk %v of %v", cell, e)
		}
		scheme.addChain(cell, chosen, planned)
	}
	return scheme, nil
}

// chainFor picks the repair chain for one lost cell under the strategy
// (k is the cell's ordinal among the cells being repaired, which the
// looping strategy cycles on). It returns nil when no single chain can
// rebuild the cell — every chain through it holds another lost cell.
func chainFor(code Geometry, lostSet, planned map[grid.Coord]bool, cell grid.Coord, k int, strategy Strategy) (*grid.Chain, error) {
	// usable returns the chain of the given kind through cell, provided
	// it contains no other lost cell (a chain with two erasures cannot
	// rebuild either on its own).
	usable := func(kind grid.ChainKind) (*grid.Chain, bool) {
		ch, ok := code.Layout().ChainThrough(cell, kind)
		if !ok {
			return nil, false
		}
		for _, m := range ch.Cells {
			if m != cell && lostSet[m] {
				return nil, false
			}
		}
		return ch, true
	}

	switch strategy {
	case StrategyTypical:
		for _, kind := range grid.Kinds() {
			if ch, ok := usable(kind); ok {
				return ch, nil
			}
		}
	case StrategyLooped:
		kinds := grid.Kinds()
		for off := 0; off < len(kinds); off++ {
			if ch, ok := usable(kinds[(k+off)%len(kinds)]); ok {
				return ch, nil
			}
		}
	case StrategyGreedy:
		var chosen *grid.Chain
		bestFresh, bestOverlap := int(^uint(0)>>1), -1
		for _, kind := range grid.Kinds() {
			ch, ok := usable(kind)
			if !ok {
				continue
			}
			overlap, fresh := 0, 0
			for _, m := range ch.Cells {
				if m == cell {
					continue
				}
				if planned[m] {
					overlap++
				} else {
					fresh++
				}
			}
			// Minimize the marginal number of new chunks to read;
			// break ties toward more sharing (higher priorities).
			if fresh < bestFresh || (fresh == bestFresh && overlap > bestOverlap) {
				chosen, bestFresh, bestOverlap = ch, fresh, overlap
			}
		}
		return chosen, nil
	default:
		return nil, fmt.Errorf("core: invalid strategy %v", strategy)
	}
	return nil, nil
}

// addChain appends one chain selection to the scheme, updating the
// priority dictionary and the planned-fetch set.
func (s *Scheme) addChain(cell grid.Coord, ch *grid.Chain, planned map[grid.Coord]bool) {
	fetch := make([]grid.Coord, 0, len(ch.Cells)-1)
	for _, m := range ch.Cells {
		if m == cell {
			continue
		}
		fetch = append(fetch, m)
		s.Priorities[m]++
		planned[m] = true
	}
	s.Selected = append(s.Selected, SelectedChain{Lost: cell, Chain: ch.ID(), Fetch: fetch})
}

// Requests returns the chunk-request sequence the reconstruction engine
// replays against the cache: for each selected chain in order, its
// surviving members. Chunks shared by several chains appear once per
// chain — the repeats are exactly the requests a good cache turns into
// hits.
func (s *Scheme) Requests() []grid.Coord {
	var out []grid.Coord
	for _, sel := range s.Selected {
		out = append(out, sel.Fetch...)
	}
	return out
}

// RequestIDs is Requests with each coordinate qualified by the scheme's
// stripe, ready to feed a cache policy.
func (s *Scheme) RequestIDs() []cache.ChunkID {
	reqs := s.Requests()
	out := make([]cache.ChunkID, len(reqs))
	for i, r := range reqs {
		out[i] = cache.ChunkID{Stripe: s.Err.Stripe, Cell: r}
	}
	return out
}

// PriorityIDs returns the priority dictionary keyed by ChunkID, ready
// for cache.PriorityAware.SetPriorities.
func (s *Scheme) PriorityIDs() map[cache.ChunkID]int {
	out := make(map[cache.ChunkID]int, len(s.Priorities))
	for cell, pr := range s.Priorities {
		out[cache.ChunkID{Stripe: s.Err.Stripe, Cell: cell}] = pr
	}
	return out
}

// UniqueFetches returns the number of distinct chunks the scheme reads —
// the read I/O count when every shared request hits in cache.
func (s *Scheme) UniqueFetches() int { return len(s.Priorities) }

// TotalRequests returns the total number of chunk requests including
// shared re-references.
func (s *Scheme) TotalRequests() int {
	n := 0
	for _, sel := range s.Selected {
		n += len(sel.Fetch)
	}
	return n
}

// SharedChunks returns how many fetched chunks are shared by at least
// two selected chains.
func (s *Scheme) SharedChunks() int {
	n := 0
	for _, pr := range s.Priorities {
		if pr >= 2 {
			n++
		}
	}
	return n
}

// PriorityGroups returns the fetched chunks bucketed by FBF priority
// (index 0 → priority 1, index 1 → priority 2, index 2 → priority 3+),
// mirroring Table III of the paper.
func (s *Scheme) PriorityGroups() [3][]grid.Coord {
	var groups [3][]grid.Coord
	for cell, pr := range s.Priorities {
		groups[clampPriority(pr)-1] = append(groups[clampPriority(pr)-1], cell)
	}
	for i := range groups {
		sortCoords(groups[i])
	}
	return groups
}

func clampPriority(pr int) int {
	if pr >= 3 {
		return 3
	}
	if pr < 1 {
		return 1
	}
	return pr
}

func sortCoords(cs []grid.Coord) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Less(cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
