// Package ds holds small generic data structures shared by the cache
// policies and the FBF core: currently an intrusive doubly-linked list
// with O(1) node removal.
package ds

// Node is an element of List. Callers keep Node pointers (typically in a
// map) to get O(1) Remove and MoveToBack without interface boxing.
type Node[T any] struct {
	prev, next *Node[T]
	Val        T
}

// List is a doubly-linked list with O(1) operations at both ends. The
// zero value is an empty list. Convention across the cache policies: the
// back is the most-recently-used end, the front is the eviction end.
type List[T any] struct {
	head, tail *Node[T]
	size       int
}

// Len returns the number of elements.
func (l *List[T]) Len() int { return l.size }

// Front returns the front node, or nil when empty.
func (l *List[T]) Front() *Node[T] { return l.head }

// Back returns the back node, or nil when empty.
func (l *List[T]) Back() *Node[T] { return l.tail }

// PushBack appends v and returns its node.
func (l *List[T]) PushBack(v T) *Node[T] {
	n := &Node[T]{Val: v, prev: l.tail}
	if l.tail != nil {
		l.tail.next = n
	} else {
		l.head = n
	}
	l.tail = n
	l.size++
	return n
}

// PushBackNode links the caller-owned node n at the back. n must not be
// a member of any list. Policies that move entries between queues (or
// recycle evicted nodes) relink with this instead of paying a fresh
// node allocation per PushBack.
func (l *List[T]) PushBackNode(n *Node[T]) {
	n.prev, n.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = n
	} else {
		l.head = n
	}
	l.tail = n
	l.size++
}

// PushFront prepends v and returns its node.
func (l *List[T]) PushFront(v T) *Node[T] {
	n := &Node[T]{Val: v, next: l.head}
	if l.head != nil {
		l.head.prev = n
	} else {
		l.tail = n
	}
	l.head = n
	l.size++
	return n
}

// Remove unlinks n from the list. n must be a member of l.
func (l *List[T]) Remove(n *Node[T]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
	l.size--
}

// MoveToBack repositions n at the MRU end.
func (l *List[T]) MoveToBack(n *Node[T]) {
	if l.tail == n {
		return
	}
	l.Remove(n)
	n.prev = l.tail
	if l.tail != nil {
		l.tail.next = n
	} else {
		l.head = n
	}
	l.tail = n
	l.size++
}

// PopFront removes and returns the front node's value; it must not be
// called on an empty list.
func (l *List[T]) PopFront() T {
	n := l.head
	l.Remove(n)
	return n.Val
}

// Next returns the node after n, or nil at the back.
func (n *Node[T]) Next() *Node[T] { return n.next }

// Prev returns the node before n, or nil at the front.
func (n *Node[T]) Prev() *Node[T] { return n.prev }
