package ds

import (
	"math/rand"
	"testing"
)

func contents[T any](l *List[T]) []T {
	var out []T
	for n := l.Front(); n != nil; n = n.Next() {
		out = append(out, n.Val)
	}
	return out
}

func reverseContents[T any](l *List[T]) []T {
	var out []T
	for n := l.Back(); n != nil; n = n.Prev() {
		out = append(out, n.Val)
	}
	return out
}

func TestPushBackFront(t *testing.T) {
	var l List[int]
	if l.Len() != 0 || l.Front() != nil || l.Back() != nil {
		t.Fatal("zero list not empty")
	}
	l.PushBack(2)
	l.PushBack(3)
	l.PushFront(1)
	got := contents(&l)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("contents = %v", got)
	}
	rev := reverseContents(&l)
	if rev[0] != 3 || rev[2] != 1 {
		t.Fatalf("reverse = %v", rev)
	}
	if l.Front().Val != 1 || l.Back().Val != 3 {
		t.Fatal("Front/Back wrong")
	}
}

func TestRemove(t *testing.T) {
	var l List[int]
	a := l.PushBack(1)
	b := l.PushBack(2)
	c := l.PushBack(3)
	l.Remove(b) // middle
	if got := contents(&l); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("after middle remove: %v", got)
	}
	l.Remove(a) // head
	if got := contents(&l); len(got) != 1 || got[0] != 3 {
		t.Fatalf("after head remove: %v", got)
	}
	l.Remove(c) // tail and last
	if l.Len() != 0 || l.Front() != nil || l.Back() != nil {
		t.Fatal("list not empty after removing all")
	}
}

func TestMoveToBack(t *testing.T) {
	var l List[int]
	a := l.PushBack(1)
	l.PushBack(2)
	l.PushBack(3)
	l.MoveToBack(a)
	if got := contents(&l); got[0] != 2 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("after MoveToBack(head): %v", got)
	}
	// Moving the tail is a no-op.
	tail := l.Back()
	l.MoveToBack(tail)
	if got := contents(&l); got[2] != 1 || l.Len() != 3 {
		t.Fatalf("after MoveToBack(tail): %v", got)
	}
}

func TestPopFront(t *testing.T) {
	var l List[string]
	l.PushBack("a")
	l.PushBack("b")
	if got := l.PopFront(); got != "a" {
		t.Fatalf("PopFront = %q", got)
	}
	if got := l.PopFront(); got != "b" || l.Len() != 0 {
		t.Fatalf("PopFront = %q, len %d", got, l.Len())
	}
}

// TestAgainstSliceModel cross-checks the list against a slice reference
// under random operations.
func TestAgainstSliceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var l List[int]
	var model []int
	nodes := map[int]*Node[int]{}
	next := 0
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(4); {
		case op == 0 || l.Len() == 0: // push back
			v := next
			next++
			nodes[v] = l.PushBack(v)
			model = append(model, v)
		case op == 1: // push front
			v := next
			next++
			nodes[v] = l.PushFront(v)
			model = append([]int{v}, model...)
		case op == 2: // remove random
			idx := rng.Intn(len(model))
			v := model[idx]
			l.Remove(nodes[v])
			delete(nodes, v)
			model = append(model[:idx:idx], model[idx+1:]...)
		default: // move random to back
			idx := rng.Intn(len(model))
			v := model[idx]
			l.MoveToBack(nodes[v])
			model = append(model[:idx:idx], model[idx+1:]...)
			model = append(model, v)
		}
		if l.Len() != len(model) {
			t.Fatalf("step %d: len %d != %d", step, l.Len(), len(model))
		}
	}
	got := contents(&l)
	for i := range model {
		if got[i] != model[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, got[:i+1], model[:i+1])
		}
	}
}
